package metrics

import (
	"testing"
	"testing/quick"

	"meshalloc/internal/mesh"
)

func TestFragmentationEmptyMesh(t *testing.T) {
	m := mesh.New(6, 4)
	f := MeasureFragmentation(m, make([]bool, 24))
	if f.FreeProcs != 24 || f.LargestRect != 24 || f.External != 0 {
		t.Fatalf("empty mesh fragmentation = %+v", f)
	}
	if f.LargestRectW*f.LargestRectH != 24 {
		t.Fatalf("rect dims %dx%d", f.LargestRectW, f.LargestRectH)
	}
}

func TestFragmentationFullMesh(t *testing.T) {
	m := mesh.New(3, 3)
	busy := make([]bool, 9)
	for i := range busy {
		busy[i] = true
	}
	f := MeasureFragmentation(m, busy)
	if f.FreeProcs != 0 || f.LargestRect != 0 {
		t.Fatalf("full mesh fragmentation = %+v", f)
	}
}

func TestFragmentationWall(t *testing.T) {
	// A busy middle column splits an 5x4 mesh into 2x4 and 2x4 halves.
	m := mesh.New(5, 4)
	var busyIDs []int
	for y := 0; y < 4; y++ {
		busyIDs = append(busyIDs, m.ID(mesh.Point{X: 2, Y: y}))
	}
	f := MeasureFragmentation(m, BusyMask(m, busyIDs))
	if f.FreeProcs != 16 {
		t.Fatalf("free = %d", f.FreeProcs)
	}
	if f.LargestRect != 8 {
		t.Fatalf("largest rect = %d, want 8", f.LargestRect)
	}
	if f.External != 0.5 {
		t.Fatalf("external = %g, want 0.5", f.External)
	}
}

func TestFragmentationCheckerboard(t *testing.T) {
	m := mesh.New(4, 4)
	var busyIDs []int
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if (x+y)%2 == 0 {
				busyIDs = append(busyIDs, m.ID(mesh.Point{X: x, Y: y}))
			}
		}
	}
	f := MeasureFragmentation(m, BusyMask(m, busyIDs))
	if f.LargestRect != 1 {
		t.Fatalf("checkerboard largest rect = %d, want 1", f.LargestRect)
	}
	if f.External != 1-1.0/8.0 {
		t.Fatalf("external = %g", f.External)
	}
}

func TestFragmentationLShape(t *testing.T) {
	// Busy block in the top-right corner leaves an L; the largest free
	// rectangle is the full-height left part.
	m := mesh.New(6, 6)
	var busyIDs []int
	for y := 3; y < 6; y++ {
		for x := 3; x < 6; x++ {
			busyIDs = append(busyIDs, m.ID(mesh.Point{X: x, Y: y}))
		}
	}
	f := MeasureFragmentation(m, BusyMask(m, busyIDs))
	if f.LargestRect != 18 {
		t.Fatalf("L-shape largest rect = %d, want 18 (3x6)", f.LargestRect)
	}
}

func TestLargestRectProperty(t *testing.T) {
	// Property: the reported rectangle never exceeds the free count and
	// a brute-force scan over all rectangles agrees.
	m := mesh.New(5, 5)
	f := func(mask uint32) bool {
		busy := make([]bool, 25)
		for i := 0; i < 25; i++ {
			busy[i] = mask&(1<<uint(i)) != 0
		}
		got, _, _ := largestFreeRect(m, busy)
		want := bruteLargestRect(m, busy)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func bruteLargestRect(m *mesh.Mesh, busy []bool) int {
	best := 0
	for y0 := 0; y0 < m.Height(); y0++ {
		for x0 := 0; x0 < m.Width(); x0++ {
			for y1 := y0; y1 < m.Height(); y1++ {
				for x1 := x0; x1 < m.Width(); x1++ {
					ok := true
				scan:
					for y := y0; y <= y1; y++ {
						for x := x0; x <= x1; x++ {
							if busy[y*m.Width()+x] {
								ok = false
								break scan
							}
						}
					}
					if ok {
						if a := (x1 - x0 + 1) * (y1 - y0 + 1); a > best {
							best = a
						}
					}
				}
			}
		}
	}
	return best
}

func TestBusyMaskPanicsViaMeasure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch should panic")
		}
	}()
	MeasureFragmentation(mesh.New(4, 4), make([]bool, 3))
}
