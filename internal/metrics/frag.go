package metrics

import "meshalloc/internal/mesh"

// Fragmentation characterizes the free space of a machine state: how
// much of it could serve a contiguous (submesh) request. It quantifies
// the external fragmentation that makes contiguous-only allocators
// refuse requests smaller than the free processor count.
type Fragmentation struct {
	// FreeProcs is the number of free processors.
	FreeProcs int
	// LargestRect is the area of the largest fully-free submesh.
	LargestRect int
	// LargestRectW, LargestRectH are its dimensions.
	LargestRectW, LargestRectH int
	// External is 1 - LargestRect/FreeProcs: 0 when all free space is
	// one rectangle, approaching 1 as the free set shatters.
	External float64
}

// MeasureFragmentation computes the fragmentation of a machine state
// given the busy processor set.
func MeasureFragmentation(m *mesh.Mesh, busy []bool) Fragmentation {
	if len(busy) != m.Size() {
		panic("metrics: busy mask size mismatch")
	}
	var f Fragmentation
	for _, b := range busy {
		if !b {
			f.FreeProcs++
		}
	}
	if f.FreeProcs == 0 {
		return f
	}
	f.LargestRect, f.LargestRectW, f.LargestRectH = largestFreeRect(m, busy)
	f.External = 1 - float64(f.LargestRect)/float64(f.FreeProcs)
	return f
}

// largestFreeRect finds the maximal all-free axis-aligned rectangle via
// the classic row-histogram / stack algorithm in O(W*H).
func largestFreeRect(m *mesh.Mesh, busy []bool) (area, w, h int) {
	width := m.Width()
	heights := make([]int, width)
	type stackEntry struct{ height, start int }
	for y := 0; y < m.Height(); y++ {
		for x := 0; x < width; x++ {
			if busy[y*width+x] {
				heights[x] = 0
			} else {
				heights[x]++
			}
		}
		// Largest rectangle in histogram for this row.
		stack := make([]stackEntry, 0, width+1)
		for x := 0; x <= width; x++ {
			cur := 0
			if x < width {
				cur = heights[x]
			}
			start := x
			for len(stack) > 0 && stack[len(stack)-1].height > cur {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if a := top.height * (x - top.start); a > area {
					area, w, h = a, x-top.start, top.height
				}
				start = top.start
			}
			if cur > 0 && (len(stack) == 0 || stack[len(stack)-1].height < cur) {
				stack = append(stack, stackEntry{height: cur, start: start})
			}
		}
	}
	return area, w, h
}

// BusyMask builds a busy mask from a list of busy processor ids.
func BusyMask(m *mesh.Mesh, busyIDs []int) []bool {
	mask := make([]bool, m.Size())
	for _, id := range busyIDs {
		mask[id] = true
	}
	return mask
}
