// Package metrics implements the dispersal metrics of Mache and Lo for
// judging the quality of a processor allocation, beyond the average
// pairwise distance the paper's MC1x1 and Gen-Alg optimize. Section 4.3
// of the paper evaluates how such metrics correlate with running time;
// this package provides the full family for that kind of study.
package metrics

import (
	"math"

	"meshalloc/internal/mesh"
)

// Dispersal characterizes the geometric quality of one allocation.
type Dispersal struct {
	// AvgPairwise is the mean Manhattan distance over processor pairs,
	// the metric of Mache and Lo used throughout the paper.
	AvgPairwise float64
	// MaxPairwise is the allocation's diameter in hops.
	MaxPairwise int
	// AvgToCentroid is the mean Manhattan distance to the allocation's
	// centroid, a cheaper compactness proxy.
	AvgToCentroid float64
	// BoundingBoxFill is size / (bounding box area): 1.0 for perfect
	// rectangles, small for scattered allocations.
	BoundingBoxFill float64
	// Perimeter counts boundary edges: mesh-adjacent (processor,
	// non-processor-or-edge) pairs. Compact shapes minimize it.
	Perimeter int
	// Components is the number of rectilinearly-connected components;
	// Contiguous mirrors the paper's Figure 11 definition.
	Components int
	Contiguous bool
}

// Measure computes all dispersal metrics for the allocation ids on m.
// An empty allocation yields the zero Dispersal.
func Measure(m *mesh.Mesh, ids []int) Dispersal {
	if len(ids) == 0 {
		return Dispersal{}
	}
	var d Dispersal
	d.AvgPairwise = m.AvgPairwiseDist(ids)
	d.MaxPairwise = maxPairwise(m, ids)
	d.AvgToCentroid = avgToCentroid(m, ids)
	d.BoundingBoxFill = boundingBoxFill(m, ids)
	d.Perimeter = perimeter(m, ids)
	comps := m.Components(ids)
	d.Components = len(comps)
	d.Contiguous = len(comps) == 1
	return d
}

func maxPairwise(m *mesh.Mesh, ids []int) int {
	max := 0
	for i := 0; i < len(ids); i++ {
		pi := m.Coord(ids[i])
		for j := i + 1; j < len(ids); j++ {
			if d := pi.Manhattan(m.Coord(ids[j])); d > max {
				max = d
			}
		}
	}
	return max
}

func avgToCentroid(m *mesh.Mesh, ids []int) float64 {
	var cx, cy float64
	for _, id := range ids {
		p := m.Coord(id)
		cx += float64(p.X)
		cy += float64(p.Y)
	}
	cx /= float64(len(ids))
	cy /= float64(len(ids))
	total := 0.0
	for _, id := range ids {
		p := m.Coord(id)
		total += math.Abs(float64(p.X)-cx) + math.Abs(float64(p.Y)-cy)
	}
	return total / float64(len(ids))
}

func boundingBoxFill(m *mesh.Mesh, ids []int) float64 {
	minX, minY := m.Width(), m.Height()
	maxX, maxY := 0, 0
	for _, id := range ids {
		p := m.Coord(id)
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	area := (maxX - minX + 1) * (maxY - minY + 1)
	return float64(len(ids)) / float64(area)
}

func perimeter(m *mesh.Mesh, ids []int) int {
	in := make(map[int]bool, len(ids))
	for _, id := range ids {
		in[id] = true
	}
	edges := 0
	for _, id := range ids {
		for d := mesh.XPos; d <= mesh.YNeg; d++ {
			nb, ok := m.Neighbor(id, d)
			if !ok || !in[nb] {
				edges++
			}
		}
	}
	return edges
}

// Summary aggregates dispersal metrics over many allocations (e.g. all
// jobs of a run).
type Summary struct {
	N                  int
	MeanAvgPairwise    float64
	MeanBoundingFill   float64
	MeanComponents     float64
	PctContiguous      float64
	MeanPerimeterRatio float64 // perimeter / ideal square perimeter
}

// Summarize folds per-allocation metrics into a Summary.
func Summarize(ms []Dispersal, sizes []int) Summary {
	if len(ms) != len(sizes) {
		panic("metrics: mismatched metric and size slices")
	}
	var s Summary
	s.N = len(ms)
	if s.N == 0 {
		return s
	}
	contig := 0
	for i, d := range ms {
		s.MeanAvgPairwise += d.AvgPairwise
		s.MeanBoundingFill += d.BoundingBoxFill
		s.MeanComponents += float64(d.Components)
		if d.Contiguous {
			contig++
		}
		s.MeanPerimeterRatio += float64(d.Perimeter) / idealPerimeter(sizes[i])
	}
	n := float64(s.N)
	s.MeanAvgPairwise /= n
	s.MeanBoundingFill /= n
	s.MeanComponents /= n
	s.MeanPerimeterRatio /= n
	s.PctContiguous = 100 * float64(contig) / n
	return s
}

// idealPerimeter returns the boundary edge count of the most compact
// (near-square) arrangement of k processors.
func idealPerimeter(k int) float64 {
	if k <= 0 {
		return 1
	}
	side := math.Sqrt(float64(k))
	return 4 * side
}
