package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"meshalloc/internal/mesh"
)

func block(m *mesh.Mesh, x0, y0, w, h int) []int {
	return m.Nodes(mesh.Submesh{Origin: mesh.Point{X: x0, Y: y0}, W: w, H: h})
}

func TestMeasureSquareBlock(t *testing.T) {
	m := mesh.New(8, 8)
	d := Measure(m, block(m, 2, 2, 3, 3))
	if d.AvgPairwise != 2.0 {
		t.Errorf("AvgPairwise = %g, want 2 (3x3 block)", d.AvgPairwise)
	}
	if d.MaxPairwise != 4 {
		t.Errorf("MaxPairwise = %d, want 4", d.MaxPairwise)
	}
	if d.BoundingBoxFill != 1.0 {
		t.Errorf("BoundingBoxFill = %g, want 1", d.BoundingBoxFill)
	}
	if d.Perimeter != 12 {
		t.Errorf("Perimeter = %d, want 12", d.Perimeter)
	}
	if !d.Contiguous || d.Components != 1 {
		t.Error("3x3 block should be one component")
	}
	// Centroid is the middle cell: mean distance = (8*1 + ... )
	// distances to center of 3x3: four at 1, four at 2, one at 0 -> 12/9.
	if math.Abs(d.AvgToCentroid-12.0/9.0) > 1e-12 {
		t.Errorf("AvgToCentroid = %g", d.AvgToCentroid)
	}
}

func TestMeasureScattered(t *testing.T) {
	m := mesh.New(8, 8)
	corners := []int{
		m.ID(mesh.Point{X: 0, Y: 0}), m.ID(mesh.Point{X: 7, Y: 0}),
		m.ID(mesh.Point{X: 0, Y: 7}), m.ID(mesh.Point{X: 7, Y: 7}),
	}
	d := Measure(m, corners)
	if d.Components != 4 || d.Contiguous {
		t.Error("corners should be four components")
	}
	if d.MaxPairwise != 14 {
		t.Errorf("MaxPairwise = %d, want 14", d.MaxPairwise)
	}
	if d.BoundingBoxFill != 4.0/64.0 {
		t.Errorf("BoundingBoxFill = %g", d.BoundingBoxFill)
	}
	// Each corner node exposes all four sides (two to free processors,
	// two to the mesh edge).
	if d.Perimeter != 16 {
		t.Errorf("Perimeter = %d, want 16", d.Perimeter)
	}
}

func TestMeasureEmptyAndSingle(t *testing.T) {
	m := mesh.New(4, 4)
	if d := Measure(m, nil); d != (Dispersal{}) {
		t.Errorf("empty Measure = %+v", d)
	}
	d := Measure(m, []int{5})
	if d.AvgPairwise != 0 || d.Components != 1 || !d.Contiguous || d.BoundingBoxFill != 1 {
		t.Errorf("singleton Measure = %+v", d)
	}
}

func TestCompactBeatsScatteredOnEveryMetric(t *testing.T) {
	m := mesh.New(16, 16)
	compact := block(m, 0, 0, 4, 4)
	scattered := []int{}
	for i := 0; i < 16; i++ {
		scattered = append(scattered, m.ID(mesh.Point{X: (i * 5) % 16, Y: (i * 7) % 16}))
	}
	dc := Measure(m, compact)
	ds := Measure(m, scattered)
	if dc.AvgPairwise >= ds.AvgPairwise {
		t.Error("compact should have smaller pairwise distance")
	}
	if dc.Perimeter >= ds.Perimeter {
		t.Error("compact should have smaller perimeter")
	}
	if dc.BoundingBoxFill <= ds.BoundingBoxFill {
		t.Error("compact should fill its bounding box better")
	}
	if dc.Components >= ds.Components {
		t.Error("compact should have fewer components")
	}
}

func TestPerimeterProperty(t *testing.T) {
	// Property: perimeter is between the ideal (4*sqrt(k) rounded
	// shape) and the maximum 4k (isolated nodes).
	m := mesh.New(10, 10)
	f := func(mask uint64) bool {
		var ids []int
		for i := 0; i < 64; i++ {
			if mask&(1<<uint(i)) != 0 {
				ids = append(ids, i)
			}
		}
		if len(ids) == 0 {
			return true
		}
		d := Measure(m, ids)
		return d.Perimeter <= 4*len(ids) && d.Perimeter >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	m := mesh.New(8, 8)
	a := Measure(m, block(m, 0, 0, 2, 2))
	b := Measure(m, []int{0, 63})
	// b uses nodes 0 and 63 which overlap a's nodes; fine for metrics.
	s := Summarize([]Dispersal{a, b}, []int{4, 2})
	if s.N != 2 {
		t.Fatalf("N = %d", s.N)
	}
	if s.PctContiguous != 50 {
		t.Errorf("PctContiguous = %g, want 50", s.PctContiguous)
	}
	if s.MeanComponents != 1.5 {
		t.Errorf("MeanComponents = %g, want 1.5", s.MeanComponents)
	}
}

func TestSummarizePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slices should panic")
		}
	}()
	Summarize([]Dispersal{{}}, nil)
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, nil)
	if s.N != 0 || s.PctContiguous != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}
