package cube

import "testing"

// Literal transcriptions of the original self-contained 3-D curve
// constructions, kept so the delegation to the dimension-generic curve
// package is provably bit-identical — the 3-D study results must not
// shift under the topology-layer refactor.

func legacySnake3(m *Mesh3) []int {
	ascending := func(n int) []int {
		v := make([]int, n)
		for i := range v {
			v[i] = i
		}
		return v
	}
	descending := func(n int) []int {
		v := make([]int, n)
		for i := range v {
			v[i] = n - 1 - i
		}
		return v
	}
	order := make([]int, 0, m.Size())
	for z := 0; z < m.d; z++ {
		ys := ascending(m.h)
		if z%2 == 1 {
			ys = descending(m.h)
		}
		for yi, y := range ys {
			xs := ascending(m.w)
			if (yi+z*m.h)%2 == 1 {
				xs = descending(m.w)
			}
			for _, x := range xs {
				order = append(order, m.ID(Point3{X: x, Y: y, Z: z}))
			}
		}
	}
	return order
}

func legacyHilbert3(m *Mesh3) []int {
	hilbert3D2XYZ := func(n, d int) Point3 {
		const dims = 3
		b := 0
		for 1<<uint(b) < n {
			b++
		}
		var x [dims]uint32
		for lvl := 0; lvl < b; lvl++ {
			for i := 0; i < dims; i++ {
				if d>>(uint(dims*lvl+(dims-1-i)))&1 == 1 {
					x[i] |= 1 << uint(lvl)
				}
			}
		}
		t := x[dims-1] >> 1
		for i := dims - 1; i > 0; i-- {
			x[i] ^= x[i-1]
		}
		x[0] ^= t
		for q := uint32(2); q != uint32(n); q <<= 1 {
			p := q - 1
			for i := dims - 1; i >= 0; i-- {
				if x[i]&q != 0 {
					x[0] ^= p
				} else {
					t := (x[0] ^ x[i]) & p
					x[0] ^= t
					x[i] ^= t
				}
			}
		}
		return Point3{X: int(x[0]), Y: int(x[1]), Z: int(x[2])}
	}
	n := 2
	for n < m.w || n < m.h || n < m.d {
		n *= 2
	}
	order := make([]int, 0, m.Size())
	total := n * n * n
	for dd := 0; dd < total; dd++ {
		p := hilbert3D2XYZ(n, dd)
		if p.X < m.w && p.Y < m.h && p.Z < m.d {
			order = append(order, m.ID(p))
		}
	}
	return order
}

func TestDelegatedCurvesMatchLegacyConstructions(t *testing.T) {
	for _, dims := range [][3]int{{2, 2, 2}, {4, 4, 4}, {8, 8, 8}, {3, 5, 2}, {4, 3, 6}, {5, 7, 3}} {
		m := New3(dims[0], dims[1], dims[2])
		gotS := Snake3{}.Order(m)
		wantS := legacySnake3(m)
		for i := range wantS {
			if gotS[i] != wantS[i] {
				t.Fatalf("%v snake3 diverges from legacy at rank %d: %d vs %d", dims, i, gotS[i], wantS[i])
			}
		}
		gotH := Hilbert3{}.Order(m)
		wantH := legacyHilbert3(m)
		if len(gotH) != len(wantH) {
			t.Fatalf("%v hilbert3 length %d vs legacy %d", dims, len(gotH), len(wantH))
		}
		for i := range wantH {
			if gotH[i] != wantH[i] {
				t.Fatalf("%v hilbert3 diverges from legacy at rank %d: %d vs %d", dims, i, gotH[i], wantH[i])
			}
		}
	}
}
