// Package cube is the 3-D facade over the dimension-generic topology
// and curve layers: the allocation-quality study on three-dimensional
// meshes — the topology of CPlant itself (the paper projects it to 2-D)
// and the subject of its Alber–Niedermeier reference on multidimensional
// Hilbert indexings.
//
// The geometry lives in internal/topo and the 3-D Hilbert and snake
// constructions in internal/curve; this package keeps the 3-D
// vocabulary (Point3, Mesh3, Curve3) and the self-contained churn study
// comparing curve-order paging against ring growing by average pairwise
// distance. The full 3-D *network* simulation — allocation plus
// contention — is no longer out of scope: sim.Config{Dims: []int{w, h,
// d}} runs it natively, and the ext-cube3d experiment compares native
// 3-D allocation against the paper's 2-D projection on exactly that
// machine.
package cube

import (
	"fmt"

	"meshalloc/internal/curve"
	"meshalloc/internal/stats"
	"meshalloc/internal/topo"
)

// Point3 is a node coordinate on a 3-D mesh.
type Point3 struct {
	X, Y, Z int
}

// Manhattan returns the L1 distance between p and q.
func (p Point3) Manhattan(q Point3) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y) + abs(p.Z-q.Z)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Mesh3 is a W x H x D 3-D mesh with dense node ids in x-fastest order,
// a thin view over the generic grid.
type Mesh3 struct {
	g       *topo.Grid
	w, h, d int
}

// New3 returns a 3-D mesh. It panics on non-positive dimensions.
func New3(w, h, d int) *Mesh3 {
	if w <= 0 || h <= 0 || d <= 0 {
		panic(fmt.Sprintf("cube: invalid dimensions %dx%dx%d", w, h, d))
	}
	return &Mesh3{g: topo.New([]int{w, h, d}), w: w, h: h, d: d}
}

// Grid returns the underlying dimension-generic grid.
func (m *Mesh3) Grid() *topo.Grid { return m.g }

// Size returns the processor count.
func (m *Mesh3) Size() int { return m.g.Size() }

// Dims returns the mesh extents.
func (m *Mesh3) Dims() (w, h, d int) { return m.w, m.h, m.d }

// ID maps a coordinate to its dense id.
func (m *Mesh3) ID(p Point3) int {
	if p.X < 0 || p.X >= m.w || p.Y < 0 || p.Y >= m.h || p.Z < 0 || p.Z >= m.d {
		panic(fmt.Sprintf("cube: point %+v outside %dx%dx%d mesh", p, m.w, m.h, m.d))
	}
	return (p.Z*m.h+p.Y)*m.w + p.X
}

// Coord maps a dense id back to its coordinate.
func (m *Mesh3) Coord(id int) Point3 {
	p := m.g.Coord(id)
	return Point3{X: p[0], Y: p[1], Z: p[2]}
}

// Dist returns the hop distance between two nodes.
func (m *Mesh3) Dist(a, b int) int { return m.g.Dist(a, b) }

// AvgPairwiseDist returns the mean pairwise hop distance of a node set.
func (m *Mesh3) AvgPairwiseDist(ids []int) float64 { return m.g.AvgPairwiseDist(ids) }

// Curve3 orders the nodes of a 3-D mesh.
type Curve3 interface {
	Name() string
	// Order returns a permutation of the mesh's node ids.
	Order(m *Mesh3) []int
}

// Snake3 is the 3-D boustrophedon: x runs alternate within y layers,
// y runs alternate within z slabs. It delegates to the n-D snake of the
// curve package.
type Snake3 struct{}

// Name implements Curve3.
func (Snake3) Name() string { return "snake3" }

// Order implements Curve3.
func (Snake3) Order(m *Mesh3) []int {
	return curve.SCurve{}.OrderDims([]int{m.w, m.h, m.d})
}

// Hilbert3 is the 3-D Hilbert curve built from the Butz/Gray-code
// construction (Skilling's transpose algorithm) and truncated from the
// enclosing power-of-two cube, like the 2-D curves of the paper's
// Figure 6. It delegates to the n-D Hilbert of the curve package.
type Hilbert3 struct{}

// Name implements Curve3.
func (Hilbert3) Name() string { return "hilbert3" }

// Order implements Curve3.
func (Hilbert3) Order(m *Mesh3) []int {
	return curve.Hilbert{}.OrderDims([]int{m.w, m.h, m.d})
}

// RingAlloc is the 3-D MC1x1 analogue: it gathers the request size in
// Manhattan shells around the best free center (smallest resulting total
// pairwise distance approximated by shell cost).
type RingAlloc struct {
	m    *Mesh3
	busy []bool
}

// NewRingAlloc returns a 3-D shell-growing allocator.
func NewRingAlloc(m *Mesh3) *RingAlloc {
	return &RingAlloc{m: m, busy: make([]bool, m.Size())}
}

// Allocate marks and returns size free processors clustered around the
// lowest-cost free center.
func (a *RingAlloc) Allocate(size int) ([]int, error) {
	if size <= 0 || size > a.numFree() {
		return nil, fmt.Errorf("cube: cannot allocate %d processors", size)
	}
	bestCost := -1
	var best []int
	for c := 0; c < a.m.Size(); c++ {
		if a.busy[c] {
			continue
		}
		ids, cost := a.gather(c, size)
		if ids != nil && (bestCost == -1 || cost < bestCost) {
			bestCost, best = cost, ids
		}
	}
	for _, id := range best {
		a.busy[id] = true
	}
	return best, nil
}

// Release frees previously allocated processors.
func (a *RingAlloc) Release(ids []int) {
	for _, id := range ids {
		if !a.busy[id] {
			panic(fmt.Sprintf("cube: release of free id %d", id))
		}
		a.busy[id] = false
	}
}

func (a *RingAlloc) numFree() int {
	n := 0
	for _, b := range a.busy {
		if !b {
			n++
		}
	}
	return n
}

// gather collects size free nodes in Manhattan shells around center.
func (a *RingAlloc) gather(center, size int) ([]int, int) {
	c := a.m.Coord(center)
	ids := make([]int, 0, size)
	cost := 0
	maxR := a.m.w + a.m.h + a.m.d
	for r := 0; r <= maxR && len(ids) < size; r++ {
		for id := 0; id < a.m.Size(); id++ {
			if a.busy[id] || a.m.Coord(id).Manhattan(c) != r {
				continue
			}
			ids = append(ids, id)
			cost += r
			if len(ids) == size {
				break
			}
		}
	}
	if len(ids) < size {
		return nil, 0
	}
	return ids, cost
}

// PagedAlloc3 runs curve-order free-list allocation on a 3-D mesh: the
// direct 3-D transplant of the paper's Paging with sorted free list.
type PagedAlloc3 struct {
	order []int
	busy  []bool
	name  string
}

// NewPagedAlloc3 returns a 3-D paging allocator over the curve ordering.
func NewPagedAlloc3(m *Mesh3, c Curve3) *PagedAlloc3 {
	return &PagedAlloc3{order: c.Order(m), busy: make([]bool, m.Size()), name: c.Name()}
}

// Name returns the underlying curve name.
func (a *PagedAlloc3) Name() string { return a.name }

// Allocate returns the first size free nodes along the curve.
func (a *PagedAlloc3) Allocate(size int) ([]int, error) {
	ids := make([]int, 0, size)
	for _, id := range a.order {
		if !a.busy[id] {
			ids = append(ids, id)
			if len(ids) == size {
				break
			}
		}
	}
	if len(ids) < size {
		return nil, fmt.Errorf("cube: cannot allocate %d processors", size)
	}
	for _, id := range ids {
		a.busy[id] = true
	}
	return ids, nil
}

// Release frees previously allocated processors.
func (a *PagedAlloc3) Release(ids []int) {
	for _, id := range ids {
		if !a.busy[id] {
			panic(fmt.Sprintf("cube: release of free id %d", id))
		}
		a.busy[id] = false
	}
}

// StudyResult reports the mean allocation quality of one strategy over a
// synthetic occupancy workload.
type StudyResult struct {
	Name            string
	MeanAvgPairwise float64
	Allocations     int
}

// Study drives an allocate/release churn of jobs (uniform sizes in
// [minSize, maxSize]) through each strategy on an otherwise identical
// sequence and reports mean average pairwise distance — the 3-D version
// of the paper's allocation-quality comparison. The full contention
// simulation on the same machines lives in the ext-cube3d experiment.
func Study(m *Mesh3, jobs, minSize, maxSize int, seed int64) []StudyResult {
	type allocator interface {
		Allocate(size int) ([]int, error)
		Release(ids []int)
	}
	strategies := []struct {
		name string
		a    allocator
	}{
		{"hilbert3", NewPagedAlloc3(m, Hilbert3{})},
		{"snake3", NewPagedAlloc3(m, Snake3{})},
		{"ring3", NewRingAlloc(m)},
	}
	out := make([]StudyResult, len(strategies))
	for i, s := range strategies {
		rng := stats.NewRNG(seed) // identical sequence per strategy
		var live [][]int
		total, count := 0.0, 0
		for j := 0; j < jobs; j++ {
			// Churn: release one random live job half the time once
			// the machine is half full.
			if len(live) > 0 && rng.Float64() < 0.5 {
				k := rng.Intn(len(live))
				s.a.Release(live[k])
				live = append(live[:k], live[k+1:]...)
			}
			size := minSize + rng.Intn(maxSize-minSize+1)
			ids, err := s.a.Allocate(size)
			if err != nil {
				continue // machine full; skip, same for every strategy
			}
			live = append(live, ids)
			total += m.AvgPairwiseDist(ids)
			count++
		}
		out[i] = StudyResult{Name: s.name, MeanAvgPairwise: total / float64(count), Allocations: count}
	}
	return out
}
