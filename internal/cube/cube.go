// Package cube extends the paper's one-dimensional-reduction idea to
// three-dimensional meshes — the topology of CPlant itself (the paper
// projects it to 2-D) and the subject of its Alber–Niedermeier reference
// on multidimensional Hilbert indexings.
//
// The package is a self-contained allocation-quality study: a 3-D mesh,
// a 3-D Hilbert curve (the Butz construction specialized to three
// dimensions via Gray-code reflection), a 3-D snake, and a
// ring-growing MC1x1 analogue, with the average-pairwise-distance metric
// used to compare them under synthetic machine occupancy. It deliberately
// stops short of a full 3-D network simulation: the paper's network
// conclusions are 2-D, and allocation quality is the transferable part.
package cube

import (
	"fmt"

	"meshalloc/internal/stats"
)

// Point3 is a node coordinate on a 3-D mesh.
type Point3 struct {
	X, Y, Z int
}

// Manhattan returns the L1 distance between p and q.
func (p Point3) Manhattan(q Point3) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y) + abs(p.Z-q.Z)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Mesh3 is a W x H x D 3-D mesh with dense node ids in x-fastest order.
type Mesh3 struct {
	w, h, d int
}

// New3 returns a 3-D mesh. It panics on non-positive dimensions.
func New3(w, h, d int) *Mesh3 {
	if w <= 0 || h <= 0 || d <= 0 {
		panic(fmt.Sprintf("cube: invalid dimensions %dx%dx%d", w, h, d))
	}
	return &Mesh3{w: w, h: h, d: d}
}

// Size returns the processor count.
func (m *Mesh3) Size() int { return m.w * m.h * m.d }

// Dims returns the mesh extents.
func (m *Mesh3) Dims() (w, h, d int) { return m.w, m.h, m.d }

// ID maps a coordinate to its dense id.
func (m *Mesh3) ID(p Point3) int {
	if p.X < 0 || p.X >= m.w || p.Y < 0 || p.Y >= m.h || p.Z < 0 || p.Z >= m.d {
		panic(fmt.Sprintf("cube: point %+v outside %dx%dx%d mesh", p, m.w, m.h, m.d))
	}
	return (p.Z*m.h+p.Y)*m.w + p.X
}

// Coord maps a dense id back to its coordinate.
func (m *Mesh3) Coord(id int) Point3 {
	if id < 0 || id >= m.Size() {
		panic(fmt.Sprintf("cube: id %d out of range", id))
	}
	x := id % m.w
	y := (id / m.w) % m.h
	z := id / (m.w * m.h)
	return Point3{X: x, Y: y, Z: z}
}

// Dist returns the hop distance between two nodes.
func (m *Mesh3) Dist(a, b int) int { return m.Coord(a).Manhattan(m.Coord(b)) }

// AvgPairwiseDist returns the mean pairwise hop distance of a node set.
func (m *Mesh3) AvgPairwiseDist(ids []int) float64 {
	if len(ids) < 2 {
		return 0
	}
	total := 0
	for i := range ids {
		pi := m.Coord(ids[i])
		for j := i + 1; j < len(ids); j++ {
			total += pi.Manhattan(m.Coord(ids[j]))
		}
	}
	return float64(total) / float64(len(ids)*(len(ids)-1)/2)
}

// Curve3 orders the nodes of a 3-D mesh.
type Curve3 interface {
	Name() string
	// Order returns a permutation of the mesh's node ids.
	Order(m *Mesh3) []int
}

// Snake3 is the 3-D boustrophedon: x runs alternate within y layers,
// y runs alternate within z slabs.
type Snake3 struct{}

// Name implements Curve3.
func (Snake3) Name() string { return "snake3" }

// Order implements Curve3.
func (Snake3) Order(m *Mesh3) []int {
	order := make([]int, 0, m.Size())
	for z := 0; z < m.d; z++ {
		ys := ascending(m.h)
		if z%2 == 1 {
			ys = descending(m.h)
		}
		for yi, y := range ys {
			xs := ascending(m.w)
			if (yi+z*m.h)%2 == 1 {
				xs = descending(m.w)
			}
			for _, x := range xs {
				order = append(order, m.ID(Point3{X: x, Y: y, Z: z}))
			}
		}
	}
	return order
}

func ascending(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = i
	}
	return v
}

func descending(n int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = n - 1 - i
	}
	return v
}

// Hilbert3 is the 3-D Hilbert curve built from the Butz/Gray-code
// construction and truncated from the enclosing power-of-two cube, like
// the 2-D curves of the paper's Figure 6.
type Hilbert3 struct{}

// Name implements Curve3.
func (Hilbert3) Name() string { return "hilbert3" }

// Order implements Curve3.
func (Hilbert3) Order(m *Mesh3) []int {
	n := 2
	for n < m.w || n < m.h || n < m.d {
		n *= 2
	}
	order := make([]int, 0, m.Size())
	total := n * n * n
	for dd := 0; dd < total; dd++ {
		p := hilbert3D2XYZ(n, dd)
		if p.X < m.w && p.Y < m.h && p.Z < m.d {
			order = append(order, m.ID(p))
		}
	}
	return order
}

// hilbert3D2XYZ converts a curve index to 3-D coordinates on an n^3 cube
// (n a power of two) using Skilling's transpose algorithm ("Programming
// the Hilbert curve", AIP 2004), the standard multidimensional Hilbert
// construction the paper's Alber–Niedermeier reference generalizes.
func hilbert3D2XYZ(n, d int) Point3 {
	const dims = 3
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	// Untranspose the index: bit lvl of axis i comes from bit
	// (dims*lvl + (dims-1-i)) of d, most-significant level first.
	var x [dims]uint32
	for lvl := 0; lvl < b; lvl++ {
		for i := 0; i < dims; i++ {
			if d>>(uint(dims*lvl+(dims-1-i)))&1 == 1 {
				x[i] |= 1 << uint(lvl)
			}
		}
	}
	// Gray decode.
	t := x[dims-1] >> 1
	for i := dims - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != uint32(n); q <<= 1 {
		p := q - 1
		for i := dims - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p // invert low bits of x[0]
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t // exchange low bits of x[0] and x[i]
			}
		}
	}
	return Point3{X: int(x[0]), Y: int(x[1]), Z: int(x[2])}
}

// RingAlloc is the 3-D MC1x1 analogue: it gathers the request size in
// Manhattan shells around the best free center (smallest resulting total
// pairwise distance approximated by shell cost).
type RingAlloc struct {
	m    *Mesh3
	busy []bool
}

// NewRingAlloc returns a 3-D shell-growing allocator.
func NewRingAlloc(m *Mesh3) *RingAlloc {
	return &RingAlloc{m: m, busy: make([]bool, m.Size())}
}

// Allocate marks and returns size free processors clustered around the
// lowest-cost free center.
func (a *RingAlloc) Allocate(size int) ([]int, error) {
	if size <= 0 || size > a.numFree() {
		return nil, fmt.Errorf("cube: cannot allocate %d processors", size)
	}
	bestCost := -1
	var best []int
	for c := 0; c < a.m.Size(); c++ {
		if a.busy[c] {
			continue
		}
		ids, cost := a.gather(c, size)
		if ids != nil && (bestCost == -1 || cost < bestCost) {
			bestCost, best = cost, ids
		}
	}
	for _, id := range best {
		a.busy[id] = true
	}
	return best, nil
}

// Release frees previously allocated processors.
func (a *RingAlloc) Release(ids []int) {
	for _, id := range ids {
		if !a.busy[id] {
			panic(fmt.Sprintf("cube: release of free id %d", id))
		}
		a.busy[id] = false
	}
}

func (a *RingAlloc) numFree() int {
	n := 0
	for _, b := range a.busy {
		if !b {
			n++
		}
	}
	return n
}

// gather collects size free nodes in Manhattan shells around center.
func (a *RingAlloc) gather(center, size int) ([]int, int) {
	c := a.m.Coord(center)
	ids := make([]int, 0, size)
	cost := 0
	maxR := a.m.w + a.m.h + a.m.d
	for r := 0; r <= maxR && len(ids) < size; r++ {
		for id := 0; id < a.m.Size(); id++ {
			if a.busy[id] || a.m.Coord(id).Manhattan(c) != r {
				continue
			}
			ids = append(ids, id)
			cost += r
			if len(ids) == size {
				break
			}
		}
	}
	if len(ids) < size {
		return nil, 0
	}
	return ids, cost
}

// PagedAlloc3 runs curve-order free-list allocation on a 3-D mesh: the
// direct 3-D transplant of the paper's Paging with sorted free list.
type PagedAlloc3 struct {
	order []int
	busy  []bool
	name  string
}

// NewPagedAlloc3 returns a 3-D paging allocator over the curve ordering.
func NewPagedAlloc3(m *Mesh3, c Curve3) *PagedAlloc3 {
	return &PagedAlloc3{order: c.Order(m), busy: make([]bool, m.Size()), name: c.Name()}
}

// Name returns the underlying curve name.
func (a *PagedAlloc3) Name() string { return a.name }

// Allocate returns the first size free nodes along the curve.
func (a *PagedAlloc3) Allocate(size int) ([]int, error) {
	ids := make([]int, 0, size)
	for _, id := range a.order {
		if !a.busy[id] {
			ids = append(ids, id)
			if len(ids) == size {
				break
			}
		}
	}
	if len(ids) < size {
		return nil, fmt.Errorf("cube: cannot allocate %d processors", size)
	}
	for _, id := range ids {
		a.busy[id] = true
	}
	return ids, nil
}

// Release frees previously allocated processors.
func (a *PagedAlloc3) Release(ids []int) {
	for _, id := range ids {
		if !a.busy[id] {
			panic(fmt.Sprintf("cube: release of free id %d", id))
		}
		a.busy[id] = false
	}
}

// StudyResult reports the mean allocation quality of one strategy over a
// synthetic occupancy workload.
type StudyResult struct {
	Name            string
	MeanAvgPairwise float64
	Allocations     int
}

// Study drives an allocate/release churn of jobs (uniform sizes in
// [minSize, maxSize]) through each strategy on an otherwise identical
// sequence and reports mean average pairwise distance — the 3-D version
// of the paper's allocation-quality comparison.
func Study(m *Mesh3, jobs, minSize, maxSize int, seed int64) []StudyResult {
	type allocator interface {
		Allocate(size int) ([]int, error)
		Release(ids []int)
	}
	strategies := []struct {
		name string
		a    allocator
	}{
		{"hilbert3", NewPagedAlloc3(m, Hilbert3{})},
		{"snake3", NewPagedAlloc3(m, Snake3{})},
		{"ring3", NewRingAlloc(m)},
	}
	out := make([]StudyResult, len(strategies))
	for i, s := range strategies {
		rng := stats.NewRNG(seed) // identical sequence per strategy
		var live [][]int
		total, count := 0.0, 0
		for j := 0; j < jobs; j++ {
			// Churn: release one random live job half the time once
			// the machine is half full.
			if len(live) > 0 && rng.Float64() < 0.5 {
				k := rng.Intn(len(live))
				s.a.Release(live[k])
				live = append(live[:k], live[k+1:]...)
			}
			size := minSize + rng.Intn(maxSize-minSize+1)
			ids, err := s.a.Allocate(size)
			if err != nil {
				continue // machine full; skip, same for every strategy
			}
			live = append(live, ids)
			total += m.AvgPairwiseDist(ids)
			count++
		}
		out[i] = StudyResult{Name: s.name, MeanAvgPairwise: total / float64(count), Allocations: count}
	}
	return out
}
