package cube

import (
	"testing"
	"testing/quick"
)

func TestMesh3IDCoordRoundTrip(t *testing.T) {
	m := New3(4, 5, 3)
	for id := 0; id < m.Size(); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, got)
		}
	}
}

func TestNew3Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New3(0,1,1) should panic")
		}
	}()
	New3(0, 1, 1)
}

func TestManhattan3(t *testing.T) {
	a := Point3{1, 2, 3}
	b := Point3{4, 0, 5}
	if d := a.Manhattan(b); d != 7 {
		t.Fatalf("distance = %d, want 7", d)
	}
}

func isPermutation3(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, id := range order {
		if id < 0 || id >= n || seen[id] {
			t.Fatalf("order not a permutation at id %d", id)
		}
		seen[id] = true
	}
}

func TestSnake3IsHamiltonianPath(t *testing.T) {
	for _, dims := range [][3]int{{2, 2, 2}, {4, 4, 4}, {3, 5, 2}, {4, 3, 6}} {
		m := New3(dims[0], dims[1], dims[2])
		order := Snake3{}.Order(m)
		isPermutation3(t, order, m.Size())
		for i := 1; i < len(order); i++ {
			if m.Dist(order[i-1], order[i]) != 1 {
				t.Fatalf("%v snake3: non-adjacent step at %d (%+v -> %+v)",
					dims, i, m.Coord(order[i-1]), m.Coord(order[i]))
			}
		}
	}
}

func TestHilbert3CubeIsHamiltonianPath(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		m := New3(n, n, n)
		order := Hilbert3{}.Order(m)
		isPermutation3(t, order, m.Size())
		for i := 1; i < len(order); i++ {
			if m.Dist(order[i-1], order[i]) != 1 {
				t.Fatalf("%d^3 hilbert3: non-adjacent step at %d (%+v -> %+v)",
					n, i, m.Coord(order[i-1]), m.Coord(order[i]))
			}
		}
	}
}

func TestHilbert3TruncatedIsPermutation(t *testing.T) {
	m := New3(3, 5, 4)
	order := Hilbert3{}.Order(m)
	isPermutation3(t, order, m.Size())
}

func TestHilbert3ClustersBetterThanSnake(t *testing.T) {
	// Windows of consecutive curve ranks should be more compact under
	// the 3-D Hilbert curve than under the 3-D snake.
	m := New3(8, 8, 8)
	window := 16
	spread := func(order []int) float64 {
		total, count := 0.0, 0
		for s := 0; s+window <= len(order); s += window {
			total += m.AvgPairwiseDist(order[s : s+window])
			count++
		}
		return total / float64(count)
	}
	h := spread(Hilbert3{}.Order(m))
	s := spread(Snake3{}.Order(m))
	if h >= s {
		t.Fatalf("hilbert3 window spread %.2f should beat snake3 %.2f", h, s)
	}
}

func TestRingAllocCompactOnEmptyMesh(t *testing.T) {
	m := New3(6, 6, 6)
	a := NewRingAlloc(m)
	ids, err := a.Allocate(7)
	if err != nil {
		t.Fatal(err)
	}
	// Center plus 6 face neighbours: mean pairwise distance under 2.
	if d := m.AvgPairwiseDist(ids); d > 2 {
		t.Fatalf("ring allocation too dispersed: %g", d)
	}
	a.Release(ids)
	if a.numFree() != m.Size() {
		t.Fatal("release did not restore free count")
	}
}

func TestRingAllocErrors(t *testing.T) {
	m := New3(2, 2, 2)
	a := NewRingAlloc(m)
	if _, err := a.Allocate(0); err == nil {
		t.Fatal("size 0 should fail")
	}
	if _, err := a.Allocate(9); err == nil {
		t.Fatal("oversize should fail")
	}
}

func TestPagedAlloc3FreeListOrder(t *testing.T) {
	m := New3(4, 4, 4)
	a := NewPagedAlloc3(m, Hilbert3{})
	ids, err := a.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	want := Hilbert3{}.Order(m)[:8]
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("free list prefix mismatch: %v vs %v", ids, want)
		}
	}
	// A Hilbert prefix of 8 on a power-of-two cube is one octant.
	if d := m.AvgPairwiseDist(ids); d > 2 {
		t.Fatalf("hilbert3 prefix dispersed: %g", d)
	}
}

func TestAllocatorsNeverDoubleAllocate(t *testing.T) {
	m := New3(4, 4, 4)
	f := func(sizes []uint8) bool {
		a := NewPagedAlloc3(m, Snake3{})
		busy := map[int]bool{}
		var live [][]int
		for _, s := range sizes {
			size := int(s)%8 + 1
			ids, err := a.Allocate(size)
			if err != nil {
				if len(live) == 0 {
					continue
				}
				a.Release(live[0])
				for _, id := range live[0] {
					delete(busy, id)
				}
				live = live[1:]
				continue
			}
			for _, id := range ids {
				if busy[id] {
					return false
				}
				busy[id] = true
			}
			live = append(live, ids)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStudyRanksCurves(t *testing.T) {
	// On an 8x8x8 machine under churn, the locality-aware strategies
	// (hilbert3 free list and ring growing) must allocate more compactly
	// than the 3-D snake, echoing the paper's 2-D conclusion that the
	// choice of curve dominates.
	m := New3(8, 8, 8)
	results := Study(m, 120, 4, 32, 1)
	byName := map[string]StudyResult{}
	for _, r := range results {
		if r.Allocations == 0 {
			t.Fatalf("%s made no allocations", r.Name)
		}
		byName[r.Name] = r
	}
	if byName["hilbert3"].MeanAvgPairwise >= byName["snake3"].MeanAvgPairwise {
		t.Errorf("hilbert3 (%.2f) should beat snake3 (%.2f)",
			byName["hilbert3"].MeanAvgPairwise, byName["snake3"].MeanAvgPairwise)
	}
	if byName["ring3"].MeanAvgPairwise >= byName["snake3"].MeanAvgPairwise {
		t.Errorf("ring3 (%.2f) should beat snake3 (%.2f)",
			byName["ring3"].MeanAvgPairwise, byName["snake3"].MeanAvgPairwise)
	}
}
