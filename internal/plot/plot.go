// Package plot renders simple ASCII line and scatter charts for the
// experiment harness, so `cmd/experiments -plot` shows response-vs-load
// curves shaped like the paper's figures without external tooling.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one plotted dataset.
type Series struct {
	Label string
	X, Y  []float64
}

// Config controls chart geometry.
type Config struct {
	// Width and Height are the plot area in characters; zero values
	// default to 64 x 20.
	Width, Height int
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Title is printed above the chart.
	Title string
	// InvertX flips the x axis (the paper plots "Load (decreasing)").
	InvertX bool
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Height <= 0 {
		c.Height = 20
	}
	return c
}

// markers cycles per series, matching the paper's symbol-per-algorithm
// legends.
var markers = []byte{'+', 'o', '*', 'x', '#', '@', '%', '^', '~', '&'}

// Render draws the series into one chart. Series with no finite points
// are skipped; an empty chart is returned when nothing is plottable.
func Render(cfg Config, series []Series) string {
	cfg = cfg.withDefaults()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	usable := make([]Series, 0, len(series))
	for _, s := range series {
		ok := false
		for i := range s.X {
			if isFinite(s.X[i]) && isFinite(s.Y[i]) {
				ok = true
				minX = math.Min(minX, s.X[i])
				maxX = math.Max(maxX, s.X[i])
				minY = math.Min(minY, s.Y[i])
				maxY = math.Max(maxY, s.Y[i])
			}
		}
		if ok {
			usable = append(usable, s)
		}
	}
	if len(usable) == 0 {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, cfg.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range usable {
		mark := markers[si%len(markers)]
		pts := sortedPoints(s)
		var prevCol, prevRow int
		havePrev := false
		for _, p := range pts {
			col := scale(p.x, minX, maxX, cfg.Width-1)
			if cfg.InvertX {
				col = cfg.Width - 1 - col
			}
			row := cfg.Height - 1 - scale(p.y, minY, maxY, cfg.Height-1)
			if havePrev {
				drawLine(grid, prevCol, prevRow, col, row, '.')
			}
			grid[row][col] = mark
			prevCol, prevRow, havePrev = col, row, true
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(&b, "%s (%.4g .. %.4g)\n", cfg.YLabel, minY, maxY)
	}
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", cfg.Width))
	b.WriteString("\n")
	lo, hi := minX, maxX
	if cfg.InvertX {
		lo, hi = maxX, minX
	}
	if cfg.XLabel != "" {
		fmt.Fprintf(&b, " %s: %.4g .. %.4g\n", cfg.XLabel, lo, hi)
	}
	for si, s := range usable {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

type point struct{ x, y float64 }

func sortedPoints(s Series) []point {
	pts := make([]point, 0, len(s.X))
	for i := range s.X {
		if isFinite(s.X[i]) && isFinite(s.Y[i]) {
			pts = append(pts, point{s.X[i], s.Y[i]})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	return pts
}

// scale maps v in [lo, hi] onto [0, n].
func scale(v, lo, hi float64, n int) int {
	f := (v - lo) / (hi - lo)
	idx := int(math.Round(f * float64(n)))
	if idx < 0 {
		idx = 0
	}
	if idx > n {
		idx = n
	}
	return idx
}

// drawLine draws a Bresenham segment with filler, never overwriting
// series markers.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, filler byte) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	x, y := x0, y0
	for {
		if grid[y][x] == ' ' {
			grid[y][x] = filler
		}
		if x == x1 && y == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
