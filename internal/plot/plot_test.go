package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Render(Config{Width: 20, Height: 8, Title: "t", XLabel: "x", YLabel: "y"},
		[]Series{{Label: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}}})
	if !strings.Contains(out, "t\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "+ up") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "+--------------------") {
		t.Errorf("missing axis:\n%s", out)
	}
	// The increasing series puts a marker at bottom-left and top-right.
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			plotLines = append(plotLines, l)
		}
	}
	if len(plotLines) != 8 {
		t.Fatalf("%d plot rows, want 8", len(plotLines))
	}
	if plotLines[0][20] != '+' { // top row, rightmost column
		t.Errorf("expected marker at top right:\n%s", out)
	}
	if plotLines[7][1] != '+' { // bottom row, leftmost column
		t.Errorf("expected marker at bottom left:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(Config{}, nil); out != "(no data)\n" {
		t.Fatalf("empty render = %q", out)
	}
	if out := Render(Config{}, []Series{{Label: "nan", X: []float64{math.NaN()}, Y: []float64{1}}}); out != "(no data)\n" {
		t.Fatalf("nan render = %q", out)
	}
}

func TestRenderMultipleSeriesMarkers(t *testing.T) {
	out := Render(Config{Width: 30, Height: 10},
		[]Series{
			{Label: "a", X: []float64{0, 1}, Y: []float64{0, 0}},
			{Label: "b", X: []float64{0, 1}, Y: []float64{1, 1}},
		})
	if !strings.Contains(out, "+ a") || !strings.Contains(out, "o b") {
		t.Fatalf("legend markers missing:\n%s", out)
	}
}

func TestRenderInvertX(t *testing.T) {
	// With InvertX, the point with the largest x lands leftmost.
	out := Render(Config{Width: 21, Height: 5, InvertX: true, XLabel: "load"},
		[]Series{{Label: "s", X: []float64{0.2, 1.0}, Y: []float64{1, 0}}})
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			plotLines = append(plotLines, l)
		}
	}
	// y=1 (top row) belongs to x=0.2 which must be at the right edge
	// when inverted... x=0.2 is min, so inverted it goes to the right.
	if plotLines[0][21] != '+' {
		t.Fatalf("inverted x: min-x point should be rightmost:\n%s", out)
	}
	if !strings.Contains(out, "load: 1 .. 0.2") {
		t.Fatalf("inverted axis label missing:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out := Render(Config{Width: 10, Height: 4},
		[]Series{{Label: "c", X: []float64{5, 5}, Y: []float64{3, 3}}})
	if !strings.Contains(out, "+ c") {
		t.Fatalf("constant series unrendered:\n%s", out)
	}
}

func TestScaleBounds(t *testing.T) {
	if scale(0, 0, 1, 10) != 0 || scale(1, 0, 1, 10) != 10 || scale(0.5, 0, 1, 10) != 5 {
		t.Fatal("scale endpoints wrong")
	}
}
