// Package comm generates the message streams of the communication
// patterns studied in the paper: all-to-all, n-body (ring subphases plus a
// chordal subphase), and random, plus the ring and all-pairs ping-pong
// patterns from the CPlant communication test suite of Leung et al.
// (Figure 1).
//
// Messages are expressed in job-local ranks 0..p-1; the simulator maps
// ranks to the processors the allocator assigned. Patterns repeat forever;
// the job's message quota decides when to stop drawing from them.
package comm

import (
	"fmt"

	"meshalloc/internal/stats"
)

// Msg is one message between two job-local ranks.
type Msg struct {
	Src, Dst int
}

// Generator is an infinite stream of messages grouped into phases. A
// phase models one communication subphase in which all member messages
// are logically concurrent (e.g. one ring shift).
type Generator interface {
	// Next returns the next message and whether it begins a new phase.
	Next() (Msg, bool)
}

// Pattern builds generators for jobs of a given size.
type Pattern interface {
	// Name identifies the pattern, e.g. "nbody".
	Name() string
	// Generator returns the message stream for a job with p processors.
	// Randomized patterns draw from rng; deterministic patterns ignore
	// it. p must be positive.
	Generator(p int, rng *stats.RNG) Generator
}

// ByName returns the pattern registered under name. Recognized names:
// "alltoall", "nbody", "random", "ring", "pingpong", "testsuite".
func ByName(name string) (Pattern, error) {
	switch name {
	case "alltoall":
		return AllToAll{}, nil
	case "nbody":
		return NBody{}, nil
	case "random":
		return Random{}, nil
	case "ring":
		return Ring{}, nil
	case "pingpong":
		return PingPong{}, nil
	case "testsuite":
		return TestSuite{}, nil
	case "mixed":
		return Mixed{}, nil
	default:
		return nil, fmt.Errorf("comm: unknown pattern %q", name)
	}
}

// All returns every registered pattern name.
func All() []string {
	return []string{"alltoall", "nbody", "random", "ring", "pingpong", "testsuite", "mixed"}
}

// Cached wraps a deterministic pattern with a per-size schedule memo:
// every job of p processors shares one immutable phase table instead of
// rebuilding it (for all-to-all, p*(p-1) messages of garbage per job).
// Only patterns on an explicit allowlist are wrapped — a pattern must be
// known to produce the same schedule for every job of a size — so any
// other pattern, including future additions to ByName, passes through
// unwrapped and merely misses the optimization rather than replaying one
// job's random stream. Generators remain independently iterable; only
// the read-only schedule is shared. The wrapper is not safe for
// concurrent Generator calls, matching the Pattern contract.
func Cached(pat Pattern) Pattern {
	switch pat.(type) {
	case AllToAll, NBody, Ring, PingPong, TestSuite:
		return &cachedPattern{pat: pat, bySize: map[int][][]Msg{}}
	}
	return pat
}

type cachedPattern struct {
	pat    Pattern
	bySize map[int][][]Msg
}

// Name implements Pattern.
func (c *cachedPattern) Name() string { return c.pat.Name() }

// Generator implements Pattern.
func (c *cachedPattern) Generator(p int, rng *stats.RNG) Generator {
	checkSize(p)
	phases, ok := c.bySize[p]
	if !ok {
		gen := c.pat.Generator(p, rng)
		it, isPhase := gen.(*phaseIter)
		if !isPhase {
			// An allowlisted pattern grew a non-schedule generator;
			// degrade to pass-through rather than guessing.
			return gen
		}
		phases = it.phases
		c.bySize[p] = phases
	}
	return &phaseIter{name: c.pat.Name(), p: p, phases: phases}
}

// phaseIter drives a fixed per-round message schedule: rounds of phases of
// messages, repeated forever. name and p identify the schedule's origin
// so a snapshot can rebuild the (immutable, potentially shared) phase
// table from the pattern registry instead of serializing it.
type phaseIter struct {
	name   string
	p      int
	phases [][]Msg
	phase  int
	idx    int
}

// Next implements Generator.
func (it *phaseIter) Next() (Msg, bool) {
	ph := it.phases[it.phase]
	m := ph[it.idx]
	newPhase := it.idx == 0
	it.idx++
	if it.idx == len(ph) {
		it.idx = 0
		it.phase = (it.phase + 1) % len(it.phases)
	}
	return m, newPhase
}

// singleRank returns the degenerate schedule for one-processor jobs,
// which only talk to themselves.
func singleRank() *phaseIter {
	return &phaseIter{name: "single", p: 1, phases: [][]Msg{{{Src: 0, Dst: 0}}}}
}

// AllToAll is the all-to-all pattern: each processor sends one message to
// every other processor of the job. One round is a single phase of
// p*(p-1) logically concurrent messages.
type AllToAll struct{}

// Name implements Pattern.
func (AllToAll) Name() string { return "alltoall" }

// Generator implements Pattern.
func (AllToAll) Generator(p int, _ *stats.RNG) Generator {
	checkSize(p)
	if p == 1 {
		return singleRank()
	}
	msgs := make([]Msg, 0, p*(p-1))
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j {
				msgs = append(msgs, Msg{Src: i, Dst: j})
			}
		}
	}
	return &phaseIter{name: "alltoall", p: p, phases: [][]Msg{msgs}}
}

// NBody is the paper's n-body force-computation pattern. The processors
// form a virtual ring; one round consists of floor(p/2) ring subphases in
// which every processor sends to its successor, followed by one chordal
// subphase in which every processor sends halfway across the ring to
// return accumulated forces to the owning processor.
type NBody struct{}

// Name implements Pattern.
func (NBody) Name() string { return "nbody" }

// Generator implements Pattern.
func (NBody) Generator(p int, _ *stats.RNG) Generator {
	checkSize(p)
	if p == 1 {
		return singleRank()
	}
	var phases [][]Msg
	ringPhase := make([]Msg, p)
	for i := 0; i < p; i++ {
		ringPhase[i] = Msg{Src: i, Dst: (i + 1) % p}
	}
	for s := 0; s < p/2; s++ {
		phases = append(phases, ringPhase)
	}
	chordal := make([]Msg, p)
	for i := 0; i < p; i++ {
		chordal[i] = Msg{Src: i, Dst: (i + p/2) % p}
	}
	phases = append(phases, chordal)
	return &phaseIter{name: "nbody", p: p, phases: phases}
}

// Ring is the plain ring-shift pattern from the CPlant test suite: each
// processor sends to its successor, one phase per round.
type Ring struct{}

// Name implements Pattern.
func (Ring) Name() string { return "ring" }

// Generator implements Pattern.
func (Ring) Generator(p int, _ *stats.RNG) Generator {
	checkSize(p)
	if p == 1 {
		return singleRank()
	}
	msgs := make([]Msg, p)
	for i := 0; i < p; i++ {
		msgs[i] = Msg{Src: i, Dst: (i + 1) % p}
	}
	return &phaseIter{name: "ring", p: p, phases: [][]Msg{msgs}}
}

// PingPong is the all-pairs ping-pong pattern from the CPlant test suite:
// for every unordered pair, a message in each direction, each exchange
// its own phase.
type PingPong struct{}

// Name implements Pattern.
func (PingPong) Name() string { return "pingpong" }

// Generator implements Pattern.
func (PingPong) Generator(p int, _ *stats.RNG) Generator {
	checkSize(p)
	if p == 1 {
		return singleRank()
	}
	var phases [][]Msg
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			phases = append(phases, []Msg{{Src: i, Dst: j}, {Src: j, Dst: i}})
		}
	}
	return &phaseIter{name: "pingpong", p: p, phases: phases}
}

// Random sends each message between a uniformly random ordered pair of
// distinct ranks. Messages are grouped into phases of p so that, like the
// structured patterns, roughly every processor is active per subphase.
type Random struct{}

// Name implements Pattern.
func (Random) Name() string { return "random" }

// Generator implements Pattern.
func (Random) Generator(p int, rng *stats.RNG) Generator {
	checkSize(p)
	if p == 1 {
		return singleRank()
	}
	return &randomIter{p: p, rng: rng}
}

type randomIter struct {
	p     int
	rng   *stats.RNG
	count int
}

// Next implements Generator.
func (it *randomIter) Next() (Msg, bool) {
	src := it.rng.Intn(it.p)
	dst := it.rng.Intn(it.p - 1)
	if dst >= src {
		dst++
	}
	newPhase := it.count%it.p == 0
	it.count++
	return Msg{Src: src, Dst: dst}, newPhase
}

// TestSuite is the communication test of Leung et al. behind the paper's
// Figure 1: one round of all-to-all broadcast, one round of all-pairs
// ping-pong, and one ring shift, repeated (in the CPlant experiments, one
// hundred times).
type TestSuite struct{}

// Name implements Pattern.
func (TestSuite) Name() string { return "testsuite" }

// Generator implements Pattern.
func (TestSuite) Generator(p int, rng *stats.RNG) Generator {
	checkSize(p)
	if p == 1 {
		return singleRank()
	}
	var phases [][]Msg
	// All-to-all broadcast: one phase.
	broadcast := make([]Msg, 0, p*(p-1))
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j {
				broadcast = append(broadcast, Msg{Src: i, Dst: j})
			}
		}
	}
	phases = append(phases, broadcast)
	// All-pairs ping-pong: one exchange per phase.
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			phases = append(phases, []Msg{{Src: i, Dst: j}, {Src: j, Dst: i}})
		}
	}
	// Ring shift: one phase.
	ringPhase := make([]Msg, p)
	for i := 0; i < p; i++ {
		ringPhase[i] = Msg{Src: i, Dst: (i + 1) % p}
	}
	phases = append(phases, ringPhase)
	return &phaseIter{name: "testsuite", p: p, phases: phases}
}

// Mixed draws a pattern per job: all-to-all, n-body, random or ring with
// equal probability. The paper's experiments give every job the same
// pattern to maximize the pattern/allocator interaction and notes that
// this is "not realistic"; Mixed is the realistic-workload extension its
// Discussion section suggests evaluating.
type Mixed struct{}

// Name implements Pattern.
func (Mixed) Name() string { return "mixed" }

// Generator implements Pattern.
func (Mixed) Generator(p int, rng *stats.RNG) Generator {
	checkSize(p)
	pool := []Pattern{AllToAll{}, NBody{}, Random{}, Ring{}}
	return pool[rng.Intn(len(pool))].Generator(p, rng)
}

// GenState is the serializable state of a Generator. Schedules are not
// serialized: a phase-driven generator records which pattern built it
// ("single" for the one-rank degenerate schedule) and its cursor, a
// random generator records its message count (its variates come from
// the engine RNG, whose position the engine snapshot captures
// separately).
type GenState struct {
	Kind    string // "phase" or "random"
	Pattern string // phase: the originating pattern name
	P       int    // job size the generator was built for
	Phase   int    // phase cursor (phase kind)
	Idx     int    // intra-phase cursor (phase kind)
	Count   int    // messages emitted (random kind)
}

// StateOf captures a Generator built by this package for a snapshot.
// It errors on generator types it does not know how to rebuild.
func StateOf(g Generator) (GenState, error) {
	switch it := g.(type) {
	case *phaseIter:
		return GenState{Kind: "phase", Pattern: it.name, P: it.p, Phase: it.phase, Idx: it.idx}, nil
	case *randomIter:
		return GenState{Kind: "random", P: it.p, Count: it.count}, nil
	default:
		return GenState{}, fmt.Errorf("comm: cannot snapshot generator type %T", g)
	}
}

// RestoreGen rebuilds a Generator from a snapshot state. hint, if
// non-nil, is tried first when its Name matches the recorded pattern —
// passing the engine's Cached-wrapped pattern here shares the memoized
// schedule tables. rng is attached to random generators (deterministic
// rebuilds never draw from it). Out-of-range cursors are rejected, so
// a corrupt state cannot build a generator that panics later.
func RestoreGen(st GenState, hint Pattern, rng *stats.RNG) (Generator, error) {
	if st.P <= 0 {
		return nil, fmt.Errorf("comm: generator state has job size %d", st.P)
	}
	switch st.Kind {
	case "random":
		g := Random{}.Generator(st.P, rng)
		if it, ok := g.(*randomIter); ok {
			if st.Count < 0 {
				return nil, fmt.Errorf("comm: random generator count %d", st.Count)
			}
			it.count = st.Count
		}
		return g, nil
	case "phase":
		// Only deterministic patterns build phase schedules; rebuilding
		// via Random or Mixed would draw from rng, perturbing the
		// restored stream, so a state naming one is corrupt.
		if st.Pattern == "random" || st.Pattern == "mixed" {
			return nil, fmt.Errorf("comm: pattern %q cannot back a phase schedule", st.Pattern)
		}
		var g Generator
		if st.Pattern == "single" {
			g = singleRank()
		} else {
			pat := hint
			if pat == nil || pat.Name() != st.Pattern {
				var err error
				pat, err = ByName(st.Pattern)
				if err != nil {
					return nil, err
				}
			}
			g = pat.Generator(st.P, rng)
		}
		it, ok := g.(*phaseIter)
		if !ok {
			return nil, fmt.Errorf("comm: pattern %q rebuilt a non-schedule generator %T", st.Pattern, g)
		}
		if st.Phase < 0 || st.Phase >= len(it.phases) {
			return nil, fmt.Errorf("comm: phase cursor %d outside the %d-phase %q schedule", st.Phase, len(it.phases), st.Pattern)
		}
		if st.Idx < 0 || st.Idx >= len(it.phases[st.Phase]) {
			return nil, fmt.Errorf("comm: message cursor %d outside phase %d of %q", st.Idx, st.Phase, st.Pattern)
		}
		it.phase, it.idx = st.Phase, st.Idx
		return it, nil
	default:
		return nil, fmt.Errorf("comm: unknown generator kind %q", st.Kind)
	}
}

// RoundLen returns the number of messages in one full round of pattern
// pat for a job of p processors, used to size message quotas in tests and
// examples. Random reports its phase length p.
func RoundLen(pat Pattern, p int) int {
	if p == 1 {
		return 1
	}
	switch pat.(type) {
	case Random, Mixed:
		return p
	case AllToAll:
		return p * (p - 1)
	case NBody:
		return p*(p/2) + p
	case Ring:
		return p
	case PingPong:
		return p * (p - 1)
	case TestSuite:
		return 2*p*(p-1) + p
	}
	panic(fmt.Sprintf("comm: RoundLen of unknown pattern %T", pat))
}

func checkSize(p int) {
	if p <= 0 {
		panic(fmt.Sprintf("comm: invalid job size %d", p))
	}
}
