package comm

import (
	"testing"
	"testing/quick"

	"meshalloc/internal/stats"
)

// drain pulls n messages from a generator.
func drain(g Generator, n int) []Msg {
	msgs := make([]Msg, n)
	for i := range msgs {
		msgs[i], _ = g.Next()
	}
	return msgs
}

func TestByNameCoversAll(t *testing.T) {
	for _, name := range All() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("pattern %q reports name %q", name, p.Name())
		}
	}
	if _, err := ByName("butterfly"); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestMessagesStayInRange(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, name := range All() {
		pat, _ := ByName(name)
		for _, p := range []int{1, 2, 3, 5, 8, 15} {
			g := pat.Generator(p, rng)
			for _, m := range drain(g, 3*RoundLen(pat, p)) {
				if m.Src < 0 || m.Src >= p || m.Dst < 0 || m.Dst >= p {
					t.Fatalf("%s p=%d: message %v out of range", name, p, m)
				}
				if p > 1 && m.Src == m.Dst {
					t.Fatalf("%s p=%d: self message %v", name, p, m)
				}
			}
		}
	}
}

func TestGeneratorPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 should panic")
		}
	}()
	AllToAll{}.Generator(0, nil)
}

func TestAllToAllCoversAllPairs(t *testing.T) {
	p := 6
	g := AllToAll{}.Generator(p, nil)
	seen := map[Msg]int{}
	for _, m := range drain(g, p*(p-1)) {
		seen[m]++
	}
	if len(seen) != p*(p-1) {
		t.Fatalf("one round covers %d ordered pairs, want %d", len(seen), p*(p-1))
	}
	for m, c := range seen {
		if c != 1 {
			t.Fatalf("pair %v sent %d times in one round", m, c)
		}
	}
}

func TestAllToAllIsOnePhasePerRound(t *testing.T) {
	p := 4
	g := AllToAll{}.Generator(p, nil)
	newPhases := 0
	for i := 0; i < 2*p*(p-1); i++ {
		_, np := g.Next()
		if np {
			newPhases++
		}
	}
	if newPhases != 2 {
		t.Fatalf("two all-to-all rounds have %d phases, want 2", newPhases)
	}
}

func TestNBodyStructure(t *testing.T) {
	// For p=15 (the paper's Figure 5): 7 ring subphases of 15 messages,
	// then one chordal subphase of 15 messages.
	p := 15
	g := NBody{}.Generator(p, nil)
	round := RoundLen(NBody{}, p)
	if round != 15*7+15 {
		t.Fatalf("round length = %d", round)
	}
	msgs := drain(g, round)
	// Ring subphases: dst = src+1 mod p.
	for i := 0; i < 15*7; i++ {
		if msgs[i].Dst != (msgs[i].Src+1)%p {
			t.Fatalf("ring message %d is %v", i, msgs[i])
		}
	}
	// Chordal subphase: dst = src + 7 mod p.
	for i := 15 * 7; i < round; i++ {
		if msgs[i].Dst != (msgs[i].Src+7)%p {
			t.Fatalf("chordal message %d is %v", i, msgs[i])
		}
	}
}

func TestNBodyPhaseCount(t *testing.T) {
	p := 8
	g := NBody{}.Generator(p, nil)
	phases := 0
	for i := 0; i < RoundLen(NBody{}, p); i++ {
		if _, np := g.Next(); np {
			phases++
		}
	}
	if phases != p/2+1 {
		t.Fatalf("n-body round has %d phases, want %d", phases, p/2+1)
	}
}

func TestNBodyEvenOddRing(t *testing.T) {
	// Every rank sends in every ring subphase, covering the whole ring.
	for _, p := range []int{2, 3, 4, 7} {
		g := NBody{}.Generator(p, nil)
		srcs := map[int]bool{}
		for i := 0; i < p; i++ {
			m, _ := g.Next()
			srcs[m.Src] = true
		}
		if len(srcs) != p {
			t.Fatalf("p=%d: first subphase has %d distinct senders", p, len(srcs))
		}
	}
}

func TestRingPattern(t *testing.T) {
	p := 5
	g := Ring{}.Generator(p, nil)
	for i := 0; i < p; i++ {
		m, _ := g.Next()
		if m.Dst != (m.Src+1)%p {
			t.Fatalf("ring message %v", m)
		}
	}
}

func TestPingPongAlternates(t *testing.T) {
	p := 4
	g := PingPong{}.Generator(p, nil)
	for i := 0; i < RoundLen(PingPong{}, p)/2; i++ {
		a, _ := g.Next()
		b, _ := g.Next()
		if a.Src != b.Dst || a.Dst != b.Src {
			t.Fatalf("exchange %d: %v then %v", i, a, b)
		}
	}
}

func TestRandomUniformish(t *testing.T) {
	p := 8
	rng := stats.NewRNG(123)
	g := Random{}.Generator(p, rng)
	counts := map[Msg]int{}
	n := 56 * 500
	for i := 0; i < n; i++ {
		m, _ := g.Next()
		counts[m]++
	}
	if len(counts) != p*(p-1) {
		t.Fatalf("random pattern hit %d pairs, want %d", len(counts), p*(p-1))
	}
	for m, c := range counts {
		if c < 300 || c > 700 {
			t.Fatalf("pair %v count %d deviates far from uniform 500", m, c)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	g1 := Random{}.Generator(6, stats.NewRNG(9))
	g2 := Random{}.Generator(6, stats.NewRNG(9))
	for i := 0; i < 100; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a != b {
			t.Fatal("same-seed random generators diverge")
		}
	}
}

func TestTestSuiteComposition(t *testing.T) {
	p := 4
	g := TestSuite{}.Generator(p, nil)
	round := RoundLen(TestSuite{}, p)
	if round != 2*p*(p-1)+p {
		t.Fatalf("testsuite round length = %d", round)
	}
	msgs := drain(g, round)
	// First p(p-1) messages: the broadcast.
	bc := map[Msg]bool{}
	for _, m := range msgs[:p*(p-1)] {
		bc[m] = true
	}
	if len(bc) != p*(p-1) {
		t.Fatal("broadcast section incomplete")
	}
	// Last p messages: the ring.
	for _, m := range msgs[round-p:] {
		if m.Dst != (m.Src+1)%p {
			t.Fatalf("ring section message %v", m)
		}
	}
}

func TestSingleProcessorJobsSelfMessage(t *testing.T) {
	rng := stats.NewRNG(3)
	for _, name := range All() {
		pat, _ := ByName(name)
		g := pat.Generator(1, rng)
		m, _ := g.Next()
		if m.Src != 0 || m.Dst != 0 {
			t.Fatalf("%s p=1: message %v, want self", name, m)
		}
	}
}

func TestRoundsRepeatIdentically(t *testing.T) {
	// Deterministic patterns repeat the same round forever.
	for _, name := range []string{"alltoall", "nbody", "ring", "pingpong", "testsuite"} {
		pat, _ := ByName(name)
		p := 6
		round := RoundLen(pat, p)
		g := pat.Generator(p, nil)
		first := drain(g, round)
		second := drain(g, round)
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: round 2 message %d = %v, want %v", name, i, second[i], first[i])
			}
		}
	}
}

func TestPatternProperty(t *testing.T) {
	// Property: for any size and any prefix length, messages are valid
	// ranks and never self (p > 1).
	rng := stats.NewRNG(11)
	f := func(pRaw, nRaw uint8, which uint8) bool {
		names := All()
		pat, _ := ByName(names[int(which)%len(names)])
		p := int(pRaw)%20 + 2
		n := int(nRaw) + 1
		g := pat.Generator(p, rng)
		for i := 0; i < n; i++ {
			m, _ := g.Next()
			if m.Src < 0 || m.Src >= p || m.Dst < 0 || m.Dst >= p || m.Src == m.Dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
