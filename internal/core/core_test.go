package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// quickOpt keeps harness tests fast: a short trace at a coarse scale.
func quickOpt() Options {
	return Options{Jobs: 150, TimeScale: 0.01, Seed: 1, Loads: []float64{1.0, 0.2}}
}

func TestFig6RendersGaps(t *testing.T) {
	fig := Fig6()
	if fig.ID != "fig6" || len(fig.Tables) != 2 {
		t.Fatalf("fig6 structure: %+v", fig)
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hilbert", "hindex", "gaps after truncation"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 output missing %q", want)
		}
	}
}

func TestFig7StructureAndShape(t *testing.T) {
	fig, err := Fig7(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// 3 patterns x 9 allocators.
	if len(fig.Series) != 27 {
		t.Fatalf("fig7 has %d series, want 27", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 2 || len(s.Y) != 2 {
			t.Fatalf("series %q has %d points, want 2", s.Label, len(s.X))
		}
		// X is load descending: 1.0 then 0.2.
		if s.X[0] != 1.0 || s.X[1] != 0.2 {
			t.Fatalf("series %q x = %v", s.Label, s.X)
		}
		if s.Y[0] <= 0 || s.Y[1] <= 0 {
			t.Fatalf("series %q has non-positive responses", s.Label)
		}
		// Contracting arrivals 5x must not decrease mean response.
		if s.Y[1] < s.Y[0] {
			t.Errorf("series %q: response fell under 5x load (%g -> %g)", s.Label, s.Y[0], s.Y[1])
		}
	}
}

func TestFig8FiltersLargeJobs(t *testing.T) {
	// 16x16 mesh: the trace must lose its >256-processor jobs rather
	// than erroring.
	opt := quickOpt()
	opt.Jobs = 400
	fig, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 27 {
		t.Fatalf("fig8 has %d series", len(fig.Series))
	}
}

func TestFig9And10Correlations(t *testing.T) {
	if testing.Short() {
		t.Skip("correlation figures need a longer trace")
	}
	opt := Options{Jobs: 2500, TimeScale: 0.01, Seed: 1}
	fig9, err := Fig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	fig10, err := Fig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	r9 := pearsonFromNotes(t, fig9)
	r10 := pearsonFromNotes(t, fig10)
	// The paper's claim: message distance correlates tightly with
	// runtime, pairwise distance does not.
	if r10 < 0.5 {
		t.Errorf("fig10 Pearson r = %g, want strong positive", r10)
	}
	if abs(r9) > abs(r10)-0.2 {
		t.Errorf("fig9 r = %g should be much weaker than fig10 r = %g", r9, r10)
	}
}

func pearsonFromNotes(t *testing.T, fig *Figure) float64 {
	t.Helper()
	for _, n := range fig.Notes {
		if i := strings.Index(n, "Pearson r = "); i >= 0 {
			var r float64
			if _, err := sscanf(n[i:], "Pearson r = %g", &r); err == nil {
				return r
			}
		}
	}
	t.Fatalf("%s: no Pearson note found in %v", fig.ID, fig.Notes)
	return 0
}

func TestFig11Table(t *testing.T) {
	fig, err := Fig11(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 1 {
		t.Fatal("fig11 should have one table")
	}
	tab := fig.Tables[0]
	if len(tab.Rows) != 12 {
		t.Fatalf("fig11 has %d rows, want 12 algorithms", len(tab.Rows))
	}
	// Rows are sorted by percent contiguous descending.
	prev := 101.0
	for _, row := range tab.Rows {
		var pct float64
		if _, err := sscanf(row[1], "%g%%", &pct); err != nil {
			t.Fatalf("bad percent cell %q", row[1])
		}
		if pct > prev {
			t.Fatal("fig11 rows not sorted by contiguity")
		}
		prev = pct
	}
}

func TestFig1PositiveTrend(t *testing.T) {
	fig, err := Fig1(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || len(fig.Series[0].X) < 20 {
		t.Fatalf("fig1 series too small: %d points", len(fig.Series[0].X))
	}
	r := pearsonFromNotes(t, fig)
	if r < 0.3 {
		t.Errorf("fig1 Pearson r = %g, want clear positive trend", r)
	}
}

func TestFigureByID(t *testing.T) {
	for _, id := range []string{"6", "fig6"} {
		fig, err := FigureByID(id, Options{})
		if err != nil || fig.ID != "fig6" {
			t.Fatalf("FigureByID(%q) = %v, %v", id, fig, err)
		}
	}
	if _, err := FigureByID("fig99", Options{}); err == nil {
		t.Fatal("unknown figure should fail")
	}
	if len(AllFigureIDs()) != 7 {
		t.Fatalf("AllFigureIDs = %v", AllFigureIDs())
	}
}

func TestRenderTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	fig := &Figure{
		ID: "t", Title: "test",
		Tables: []Table{{
			Columns: []string{"a", "long-column"},
			Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
		}},
	}
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a     long-column") {
		t.Fatalf("table misaligned:\n%s", buf.String())
	}
}

func TestReplicationsAddErrorBars(t *testing.T) {
	opt := Options{Jobs: 60, TimeScale: 0.01, Seed: 1, Loads: []float64{0.4}, Replications: 3}
	fig, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if len(s.YErr) != len(s.Y) {
			t.Fatalf("series %q: %d error bars for %d points", s.Label, len(s.YErr), len(s.Y))
		}
		for _, e := range s.YErr {
			if e < 0 {
				t.Fatalf("negative std dev %g", e)
			}
		}
	}
	// With a single replication there are no error bars.
	opt.Replications = 1
	fig, err = Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Series[0].YErr != nil {
		t.Fatal("single replication should not carry error bars")
	}
}

func TestCheckScorecard(t *testing.T) {
	if testing.Short() {
		t.Skip("scorecard needs a long trace")
	}
	results, err := Check(Options{Jobs: 2500, TimeScale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 8 {
		t.Fatalf("only %d checks ran", len(results))
	}
	pass := 0
	for _, r := range results {
		if r.Pass {
			pass++
		} else {
			t.Logf("claim not reproduced at this scale: %s (%s)", r.Claim, r.Detail)
		}
	}
	// The scorecard is allowed one marginal miss at test scale, but the
	// overwhelming majority of the paper's claims must reproduce.
	if pass < len(results)-1 {
		t.Fatalf("%d/%d claims reproduced", pass, len(results))
	}
	rendered := RenderChecks(results)
	if !strings.Contains(rendered, "claims reproduced") {
		t.Fatal("render missing summary")
	}
}

func TestWriteCSV(t *testing.T) {
	fig := &Figure{
		ID: "t", Title: "test",
		Series: []Series{{Label: "a b", X: []float64{1, 0.5}, Y: []float64{10, 20}}},
		Tables: []Table{{Columns: []string{"k", "v"}, Rows: [][]string{{"x", "1"}}}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"series,x,y", "a b,1,10", "a b,0.5,20", "k,v", "x,1", "# hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Jobs != 1500 || o.TimeScale != 0.02 || len(o.Loads) != 5 || o.Parallelism < 1 {
		t.Fatalf("defaults = %+v", o)
	}
	if FullOptions().Jobs != 6087 {
		t.Fatal("FullOptions should replay the whole trace")
	}
}

func TestRunGridPropagatesErrors(t *testing.T) {
	_, err := runGrid([]int{1, 2, 3}, 2, func(k int) (int, error) {
		if k == 2 {
			return 0, errTest
		}
		return k, nil
	})
	if err != errTest {
		t.Fatalf("err = %v", err)
	}
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sscanf(s, format string, args ...any) (int, error) {
	return fmt.Sscanf(s, format, args...)
}
