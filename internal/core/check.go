package core

import (
	"fmt"
	"strings"

	"meshalloc/internal/alloc"
	"meshalloc/internal/sim"
	"meshalloc/internal/stats"
)

// CheckResult is one verdict of the reproduction scorecard.
type CheckResult struct {
	// Claim is the paper statement being tested.
	Claim string
	// Pass reports whether the measured data supports the claim.
	Pass bool
	// Detail carries the measured numbers behind the verdict.
	Detail string
}

// Check runs a scaled version of the paper's experiments and tests the
// headline claims programmatically — the executable form of
// EXPERIMENTS.md. Each claim is judged on the *shape* of the results
// (orderings and correlations), never absolute seconds.
func Check(o Options) ([]CheckResult, error) {
	o = o.withDefaults()
	var out []CheckResult

	// Run the 16x16 grid once at the heaviest load; most claims read
	// off these results.
	tr := newTrace(o, 256)
	type key struct {
		spec    string
		pattern string
	}
	var keys []key
	for _, p := range responsePatterns {
		for _, a := range alloc.Specs() {
			keys = append(keys, key{spec: a, pattern: p})
		}
	}
	results, err := runGrid(keys, o.Parallelism, func(k key) (*sim.Result, error) {
		return sim.Run(sim.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     k.spec,
			Pattern:   k.pattern,
			Load:      0.2,
			TimeScale: o.TimeScale,
			Seed:      o.Seed,
		}, tr)
	})
	if err != nil {
		return nil, err
	}
	resp := func(pattern, spec string) float64 { return results[key{spec, pattern}].MeanResponse }
	rank := func(pattern, spec string) int {
		r := 1
		for _, a := range alloc.Specs() {
			if a != spec && resp(pattern, a) < resp(pattern, spec) {
				r++
			}
		}
		return r
	}

	add := func(claim string, pass bool, detail string) {
		out = append(out, CheckResult{Claim: claim, Pass: pass, Detail: detail})
	}

	// Claim: Hilbert with Best Fit is the closest to an overall best
	// algorithm (among the best for all patterns on 16x16).
	worst := 0
	var ranks []string
	for _, p := range responsePatterns {
		r := rank(p, "hilbert/bestfit")
		if r > worst {
			worst = r
		}
		ranks = append(ranks, fmt.Sprintf("%s #%d", p, r))
	}
	add("hilbert/bestfit is among the best for all patterns on 16x16 (top 4 of 9)",
		worst <= 4, strings.Join(ranks, ", "))

	// Claim: the compact family (MC/MC1x1/Gen-Alg) is strong for
	// all-to-all: at least two of the three in the top four.
	top := 0
	for _, spec := range []string{"mc", "mc1x1", "genalg"} {
		if rank("alltoall", spec) <= 4 {
			top++
		}
	}
	add("the MC/MC1x1/Gen-Alg family dominates all-to-all",
		top >= 2, fmt.Sprintf("%d of 3 in the top four", top))

	// Claim: for n-body, the curve strategies beat the compact family;
	// Gen-Alg is near the bottom.
	curveBest := rank("nbody", "hilbert/bestfit") <= 2
	genalgBad := rank("nbody", "genalg") >= 7
	add("curve strategies win n-body (hilbert/bestfit top two)",
		curveBest, fmt.Sprintf("hilbert/bestfit #%d", rank("nbody", "hilbert/bestfit")))
	add("gen-alg trails for n-body (rank >= 7 of 9)",
		genalgBad, fmt.Sprintf("genalg #%d", rank("nbody", "genalg")))

	// Claim: plain free-list curves trail their Best Fit counterparts.
	flWorse := 0
	var flDetail []string
	for _, c := range []string{"hilbert", "hindex", "scurve"} {
		for _, p := range responsePatterns {
			if resp(p, c) >= resp(p, c+"/bestfit") {
				flWorse++
			}
		}
		flDetail = append(flDetail, c)
	}
	add("sorted free list trails Best Fit on the same curve (majority of pattern/curve pairs)",
		flWorse >= 6, fmt.Sprintf("%d of 9 pairs", flWorse))

	// Claim: the S-curve performs poorly on the square mesh.
	sWorst := 0
	for _, p := range responsePatterns {
		if rank(p, "scurve") >= 7 {
			sWorst++
		}
	}
	add("plain s-curve is in the bottom third on 16x16 for most patterns",
		sWorst >= 2, fmt.Sprintf("bottom-third in %d of 3 patterns", sWorst))

	// Claims from Figures 9/10: correlation contrast.
	recs, err := largeJobRecords(o)
	if err != nil {
		return nil, err
	}
	if len(recs) >= 8 {
		var pair, msg, y []float64
		for _, r := range recs {
			pair = append(pair, r.AvgPairwise)
			msg = append(msg, r.AvgMsgDist)
			y = append(y, r.RunTime*o.TimeScale*41000/float64(r.Quota))
		}
		r9 := stats.Pearson(pair, y)
		r10 := stats.Pearson(msg, y)
		add("running time correlates tightly with avg message distance (fig 10)",
			r10 > 0.5, fmt.Sprintf("r = %.3f over %d jobs", r10, len(recs)))
		add("running time does not correlate with pairwise distance (fig 9)",
			absf(r9) < absf(r10)-0.2, fmt.Sprintf("r = %.3f vs %.3f", r9, r10))
	} else {
		add("figures 9/10 correlation contrast", false,
			fmt.Sprintf("only %d large jobs in the band; increase Options.Jobs", len(recs)))
	}

	// Claim from Figure 11: packing strategies allocate contiguously far
	// more often than plain free lists.
	fig11, err := Fig11(o)
	if err != nil {
		return nil, err
	}
	pct := map[string]float64{}
	for _, row := range fig11.Tables[0].Rows {
		var v float64
		fmt.Sscanf(row[1], "%g%%", &v)
		pct[row[0]] = v
	}
	bfBeatsFL := pct["hilbert/bestfit"] > pct["hilbert"]+10 &&
		pct["scurve/bestfit"] > pct["scurve"]+10
	add("best-fit curves allocate contiguously far more often than free lists (fig 11)",
		bfBeatsFL,
		fmt.Sprintf("hilbert/bestfit %.1f%% vs hilbert %.1f%%; scurve/bestfit %.1f%% vs scurve %.1f%%",
			pct["hilbert/bestfit"], pct["hilbert"], pct["scurve/bestfit"], pct["scurve"]))

	return out, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderChecks formats a scorecard.
func RenderChecks(rs []CheckResult) string {
	var b strings.Builder
	pass := 0
	for _, r := range rs {
		mark := "FAIL"
		if r.Pass {
			mark = "PASS"
			pass++
		}
		fmt.Fprintf(&b, "[%s] %s\n       %s\n", mark, r.Claim, r.Detail)
	}
	fmt.Fprintf(&b, "%d/%d claims reproduced\n", pass, len(rs))
	return b.String()
}
