package core

import (
	"fmt"
	"strings"

	"meshalloc/internal/curve"
	"meshalloc/internal/mesh"
)

// Fig6 reproduces Figure 6: the top rows of the Hilbert and H-indexing
// orderings on the 16x22 mesh, truncated from 32x32 curves, with the rank
// gaps ("arrows" in the paper) that truncation introduces.
func Fig6() *Figure {
	fig := &Figure{
		ID:    "fig6",
		Title: "Truncated Hilbert and H-indexing orderings on the 16x22 mesh",
	}
	m := mesh.New(16, 22)
	for _, name := range []string{"hilbert", "hindex"} {
		c, err := curve.ByName(name)
		if err != nil {
			// The registry is static; a miss is a programming error.
			panic(err)
		}
		order := c.Order(16, 22)
		rep := curve.Locality(order, 16, 22)
		var gaps []string
		for i := 1; i < len(order); i++ {
			if m.Dist(order[i-1], order[i]) > 1 {
				gaps = append(gaps, fmt.Sprintf("%v->%v", m.Coord(order[i-1]), m.Coord(order[i])))
			}
		}
		t := Table{
			Columns: []string{name, ""},
			Rows: [][]string{
				{"rank grid (top 6 rows)", ""},
			},
		}
		rendered := curve.Render(order, 16, 22)
		lines := strings.Split(strings.TrimRight(rendered, "\n"), "\n")
		for i := 0; i < 6 && i < len(lines); i++ {
			t.Rows = append(t.Rows, []string{lines[i], ""})
		}
		fig.Tables = append(fig.Tables, t)
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("%s: %d gaps after truncation (paper's arrows): %s",
				name, rep.Gaps, strings.Join(gaps, ", ")))
	}
	return fig
}
