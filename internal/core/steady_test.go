package core

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtSteadyStructure(t *testing.T) {
	fig, err := ExtSteady(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "ext-steady" {
		t.Fatalf("id %q", fig.ID)
	}
	tab := fig.Tables[0]
	if len(tab.Rows) != 4*3 {
		t.Fatalf("%d rows, want 4 allocators x 3 loads", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		mean, err := strconv.ParseFloat(row[2], 64)
		if err != nil || mean <= 0 {
			t.Fatalf("bad steady mean cell %q", row[2])
		}
		util, err := strconv.ParseFloat(row[4], 64)
		if err != nil || util <= 0 || util > 100 {
			t.Fatalf("bad utilization cell %q", row[4])
		}
	}
	streaming := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "streaming aggregation") {
			streaming = true
		}
	}
	if !streaming {
		t.Fatal("missing streaming-aggregation note")
	}
}

// TestExtSteadySchedulerOption pins the Options.Scheduler plumbing: an
// unknown policy must surface as an error from the extension runs.
func TestExtSteadySchedulerOption(t *testing.T) {
	o := quickOpt()
	o.Scheduler = "bogus"
	if _, err := ExtSteady(o); err == nil {
		t.Fatal("bogus scheduler should fail")
	}
	o.Scheduler = "sjf"
	if _, err := ExtSteady(o); err != nil {
		t.Fatalf("sjf: %v", err)
	}
}
