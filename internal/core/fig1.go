package core

import (
	"fmt"

	"meshalloc/internal/comm"
	"meshalloc/internal/curve"
	"meshalloc/internal/mesh"
	"meshalloc/internal/netsim"
	"meshalloc/internal/stats"
)

// Fig1 reproduces Figure 1: the CPlant experiment of Leung et al. that
// motivated the paper. Thirty-processor jobs run the communication test
// suite (all-to-all broadcast, all-pairs ping-pong, ring — one hundred
// rounds) on allocations of varying dispersal; running time is plotted
// against the allocation's average pairwise hop count.
//
// The paper's version ran on CPlant hardware; here each allocation runs
// alone on a simulated 16x22 mesh, which reproduces the correlation the
// figure exists to show (self-contention grows with dispersal).
func Fig1(o Options) (*Figure, error) {
	o = o.withDefaults()
	const (
		jobSize = 30
		rounds  = 100
	)
	m := mesh.New(16, 22)
	rng := stats.NewRNG(o.Seed)

	// Sample allocations across the dispersal spectrum: the 30 nodes are
	// drawn from windows of the Hilbert order whose span grows from
	// perfectly compact (30) to the whole machine, then shuffled windows
	// for the high-dispersal tail.
	order := curve.Hilbert{}.Order(16, 22)
	allocations := make([][]int, 0, 40)
	for span := jobSize; span <= len(order); span += (len(order) - jobSize) / 12 {
		for trial := 0; trial < 3; trial++ {
			start := 0
			if len(order) > span {
				start = rng.Intn(len(order) - span)
			}
			window := order[start : start+span]
			pick := rng.Perm(len(window))[:jobSize]
			nodes := make([]int, jobSize)
			for i, w := range pick {
				nodes[i] = window[w]
			}
			allocations = append(allocations, nodes)
		}
	}

	s := Series{Label: "running time vs avg pairwise hops (30-proc test-suite job)"}
	var xs, ys []float64
	for _, nodes := range allocations {
		dur := runIsolatedJob(m, nodes, comm.TestSuite{}, rounds, o.Seed)
		x := m.AvgPairwiseDist(nodes)
		s.X = append(s.X, x)
		s.Y = append(s.Y, dur)
		xs = append(xs, x)
		ys = append(ys, dur)
	}
	fig := &Figure{
		ID:     "fig1",
		Title:  "Pairwise distance vs running time for the CPlant communication test suite",
		Series: []Series{s},
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("allocations: %d; Pearson r = %.3f (paper shows a clear positive trend)",
			len(allocations), stats.Pearson(xs, ys)))
	return fig, nil
}

// runIsolatedJob runs one job's communication to completion on an
// otherwise idle machine and returns the elapsed simulated time.
func runIsolatedJob(m *mesh.Mesh, nodes []int, pat comm.Pattern, rounds int, seed int64) float64 {
	net := netsim.New(m.Grid(), netsim.DefaultConfig())
	gen := pat.Generator(len(nodes), stats.NewRNG(seed))
	quota := rounds * comm.RoundLen(pat, len(nodes))

	now := 0.0
	var pending *comm.Msg
	for sent := 0; sent < quota; {
		// Issue one phase as a concurrent burst, barrier to the next.
		maxArr := now
		for sent < quota {
			var msg comm.Msg
			if pending != nil {
				msg, pending = *pending, nil
			} else {
				var newPhase bool
				msg, newPhase = gen.Next()
				if newPhase && maxArr > now {
					pending = &msg
					break
				}
			}
			r := net.Send(nodes[msg.Src], nodes[msg.Dst], now)
			if r.Arrival > maxArr {
				maxArr = r.Arrival
			}
			sent++
		}
		now = maxArr
	}
	return now
}
