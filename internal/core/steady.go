package core

import (
	"fmt"

	"meshalloc/internal/sim"
	"meshalloc/internal/stats"
	"meshalloc/internal/trace"
)

// ExtSteady is the open-system experiment the paper's fixed 6087-job
// replay cannot ask: which allocator sustains which offered load in
// steady state? Jobs arrive by an unbounded Poisson process whose rate
// is swept so the nominal offered load (arrival rate x mean job work /
// machine capacity) covers moderate to near-saturation traffic, and the
// engine streams records through an observer — no retained slice — so
// the per-(allocator, load) mean and P² median come from the streaming
// aggregation layer. The first fifth of the jobs are warmup and are
// excluded from the response statistics; utilization and queue length
// integrate over the whole run.
//
// With Options.Replications > 1 the sweep runner fans each (allocator,
// load) point out over independent replication streams (derived seeds
// drive both the Poisson source and the simulator) and the streaming
// aggregates merge across replications in index order: Welford.Merge
// pools the means exactly, MergeQuantile interpolates the per-shard P²
// medians, and utilization and queue length average arithmetically.
// One replication reproduces the unsharded table bit for bit.
func ExtSteady(o Options) (*Figure, error) {
	o = o.withDefaults()
	const (
		machineW, machineH = 16, 16
		// Mean job work under the SDSC fits: 14.5 nodes x 10944 s.
		meanWork = 14.5 * 10944
	)
	specs := []string{"hilbert/bestfit", "scurve", "mc1x1", "random"}
	rhos := []float64{0.5, 0.7, 0.85}

	type key struct {
		spec string
		rho  float64
	}
	type shard struct {
		mean     stats.Welford
		median   *stats.P2Quantile
		util     float64
		queueLen float64
	}
	type outcome struct {
		mean     float64
		median   float64
		util     float64
		queueLen float64
	}
	var keys []key
	for _, spec := range specs {
		for _, rho := range rhos {
			keys = append(keys, key{spec, rho})
		}
	}
	sweep, err := runSweep(keys, o, func(k key, rep int, seed int64) (shard, error) {
		cfg := sim.Config{
			MeshW: machineW, MeshH: machineH,
			Alloc:       k.spec,
			Pattern:     "nbody",
			TimeScale:   o.TimeScale,
			Seed:        seed,
			Scheduler:   o.Scheduler,
			KeepRecords: sim.Discard,
			KeepNodes:   sim.Discard,
		}
		e, err := sim.NewEngine(cfg)
		if err != nil {
			return shard{}, err
		}
		// Offered load rho: one job every meanWork/(rho*capacity) sec.
		meanInter := meanWork / (k.rho * float64(machineW*machineH))
		src := trace.Limit(trace.NewPoisson(meanInter, machineW*machineH, seed), o.Jobs)
		warmup := o.Jobs / 5
		sh := shard{median: stats.NewP2Quantile(0.5)}
		var seen int
		e.Observe(func(r sim.JobRecord) {
			seen++
			if seen <= warmup {
				return
			}
			sh.mean.Add(r.Response)
			sh.median.Add(r.Response)
		})
		if err := e.RunSource(src, 0); err != nil {
			return shard{}, err
		}
		res := e.Result()
		sh.util = res.UtilizationPct
		sh.queueLen = res.MeanQueueLen
		return sh, nil
	})
	if err != nil {
		return nil, err
	}

	// Reduce each point's replication shards in index order: the merge
	// is deterministic, so the table is bit-stable at any Parallelism.
	results := make(map[key]outcome, len(keys))
	for _, k := range keys {
		var (
			mean    stats.Welford
			medians []*stats.P2Quantile
			out     outcome
		)
		for _, sh := range sweep[k] {
			mean.Merge(sh.mean)
			medians = append(medians, sh.median)
			out.util += sh.util
			out.queueLen += sh.queueLen
		}
		out.mean = mean.Mean()
		out.median = stats.MergeQuantile(0.5, medians)
		out.util /= float64(len(sweep[k]))
		out.queueLen /= float64(len(sweep[k]))
		results[k] = out
	}

	t := Table{Columns: []string{
		"Algorithm", "offered load", "steady mean resp (s)", "P² median (s)", "utilization %", "mean queue",
	}}
	for _, spec := range specs {
		for _, rho := range rhos {
			r := results[key{spec, rho}]
			t.Rows = append(t.Rows, []string{
				spec,
				fmt.Sprintf("%.2f", rho),
				fmt.Sprintf("%.0f", r.mean),
				fmt.Sprintf("%.0f", r.median),
				fmt.Sprintf("%.1f", r.util),
				fmt.Sprintf("%.1f", r.queueLen),
			})
		}
	}
	fig := &Figure{
		ID:     "ext-steady",
		Title:  "Steady-state allocator comparison under Poisson arrivals (n-body, 16x16, swept offered load)",
		Tables: []Table{t},
		Notes: []string{
			fmt.Sprintf("open system: unbounded Poisson source, %d jobs per point, first %d warmup jobs excluded", o.Jobs, o.Jobs/5),
			"streaming aggregation (Welford mean, P² median): no per-job records retained",
			"contention inflates service beyond the nominal runtime, so a high offered load can be unsustainable — the mean response then grows with the job count and ranks allocators by sustainable throughput",
		},
	}
	if o.Replications > 1 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%d replications per point on derived RNG streams; means pooled by Welford merge, medians by weighted P² marker interpolation",
			o.Replications))
	}
	// Headline note: the contention gap between the best and worst
	// allocator at the highest swept load.
	worstRho := rhos[len(rhos)-1]
	best, worst := "", ""
	bestY, worstY := 0.0, 0.0
	for _, spec := range specs {
		y := results[key{spec, worstRho}].mean
		if best == "" || y < bestY {
			best, bestY = spec, y
		}
		if worst == "" || y > worstY {
			worst, worstY = spec, y
		}
	}
	if bestY > 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"at offered load %.2f: %s sustains %.0f s mean response vs %s at %.0f s (%.1fx)",
			worstRho, best, bestY, worst, worstY, worstY/bestY))
	}
	return fig, nil
}
