package core

import (
	"bytes"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// The fabric's determinism suite: figures rendered from parallel sweeps
// must be byte-identical to sequential ones, replication seeds must not
// depend on scheduling, and the worker pool must drain cleanly on
// error.

// renderFigure runs build and returns the rendered bytes.
func renderFigure(t *testing.T, build func() (*Figure, error)) []byte {
	t.Helper()
	fig, err := build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepParallelismIsByteIdentical pins the fabric's core promise on
// a replicated figure grid: Parallelism 1 and 8 render the same bytes.
func TestSweepParallelismIsByteIdentical(t *testing.T) {
	opt := Options{Jobs: 60, TimeScale: 0.01, Seed: 1, Loads: []float64{0.4}, Replications: 3}
	opt.Parallelism = 1
	seq := renderFigure(t, func() (*Figure, error) { return Fig7(opt) })
	for _, p := range []int{2, 8} {
		opt.Parallelism = p
		if par := renderFigure(t, func() (*Figure, error) { return Fig7(opt) }); !bytes.Equal(seq, par) {
			t.Fatalf("Fig7 output differs between -parallel 1 and %d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				p, seq, par)
		}
	}
}

// TestExtSteadyParallelismIsByteIdentical covers the streaming-merge
// reduction path: replicated ExtSteady tables (Welford merge, quantile
// merge) must not move a byte under parallel execution.
func TestExtSteadyParallelismIsByteIdentical(t *testing.T) {
	opt := Options{Jobs: 90, TimeScale: 0.01, Seed: 1, Replications: 3}
	opt.Parallelism = 1
	seq := renderFigure(t, func() (*Figure, error) { return ExtSteady(opt) })
	opt.Parallelism = 8
	if par := renderFigure(t, func() (*Figure, error) { return ExtSteady(opt) }); !bytes.Equal(seq, par) {
		t.Fatalf("ExtSteady output differs between -parallel 1 and 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq, par)
	}
}

// TestExtSteadySingleRepUnchanged pins backward compatibility: one
// replication reproduces the pre-fabric unsharded table (the reduction
// path through Merge/MergeQuantile must be exact for a single shard).
func TestExtSteadySingleRepUnchanged(t *testing.T) {
	opt := Options{Jobs: 90, TimeScale: 0.01, Seed: 1}
	one := renderFigure(t, func() (*Figure, error) { return ExtSteady(opt) })
	opt.Replications = 1
	opt.Parallelism = 4
	if got := renderFigure(t, func() (*Figure, error) { return ExtSteady(opt) }); !bytes.Equal(one, got) {
		t.Fatalf("explicit Replications=1 changed the table:\n%s\nvs\n%s", one, got)
	}
}

func TestRepSeedProperties(t *testing.T) {
	if RepSeed(42, 0) != 42 {
		t.Fatal("replication 0 must keep the base seed (single-rep bit compatibility)")
	}
	seen := map[int64]int{}
	for _, base := range []int64{1, 42, -7, 1 << 40} {
		for rep := 0; rep < 100; rep++ {
			s := RepSeed(base, rep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: RepSeed(%d,%d) == earlier seed %d", base, rep, prev)
			}
			seen[s] = rep
		}
	}
	// The derivation is a pure function of (base, rep): calling it from
	// any worker at any time gives the same stream.
	if RepSeed(1, 3) != RepSeed(1, 3) {
		t.Fatal("RepSeed is not deterministic")
	}
}

// TestForEachShardCoversAllOnce checks every shard runs exactly once at
// any worker count.
func TestForEachShardCoversAllOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 200
		var hits [n]atomic.Int32
		if err := forEachShard(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestForEachShardErrorDrains checks an error stops the pool, surfaces
// the lowest-indexed failure, and leaks no goroutines — the runner's
// early-exit contract.
func TestForEachShardErrorDrains(t *testing.T) {
	errBoom := errors.New("boom")
	base := runtime.NumGoroutine()
	err := forEachShard(100, 8, func(i int) error {
		if i%10 == 3 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("got %v, want %v", err, errBoom)
	}
	// The sequential path fails at the first failing shard; the parallel
	// path reports the lowest-indexed failure among started shards. Both
	// must leave zero pool goroutines behind.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= base {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > base {
		t.Fatalf("pool leaked goroutines: %d before, %d after", base, now)
	}

	// Sequential error path: exact first failure.
	err = forEachShard(10, 1, func(i int) error {
		if i >= 4 {
			return errors.New("later")
		}
		if i == 3 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("sequential: got %v, want first error %v", err, errBoom)
	}
}

// TestRunSweepSeedsIndependentOfWorkers checks the (key, rep) → seed
// assignment is a pure function of the options: the fabric may run
// shards in any order on any worker without moving a seed.
func TestRunSweepSeedsIndependentOfWorkers(t *testing.T) {
	keys := []string{"a", "b", "c"}
	collect := func(parallelism int) map[string][]int64 {
		o := Options{Seed: 11, Replications: 4, Parallelism: parallelism}
		res, err := runSweep(keys, o, func(k string, rep int, seed int64) (int64, error) {
			return seed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := collect(1)
	for _, p := range []int{2, 8} {
		got := collect(p)
		for _, k := range keys {
			for rep := range want[k] {
				if got[k][rep] != want[k][rep] {
					t.Fatalf("parallelism %d moved seed of (%s, rep %d): %d != %d",
						p, k, rep, got[k][rep], want[k][rep])
				}
				if want[k][rep] != RepSeed(11, rep) {
					t.Fatalf("(%s, rep %d) got seed %d, want RepSeed(11,%d)=%d",
						k, rep, want[k][rep], rep, RepSeed(11, rep))
				}
			}
		}
	}
}
