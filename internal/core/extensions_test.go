package core

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtContiguousQuantifiesUtilizationLoss(t *testing.T) {
	// The utilization gap needs a saturated queue to show; use a longer
	// trace than the other structure tests.
	fig, err := ExtContiguous(Options{Jobs: 600, TimeScale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab := fig.Tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	util := map[string]float64{}
	contig := map[string]string{}
	for _, row := range tab.Rows {
		u, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad utilization cell %q", row[3])
		}
		util[row[0]] = u
		contig[row[0]] = row[4]
	}
	// The paper's Section 2 claim: convex-only allocation costs
	// utilization. The buddy system must run the machine emptier than
	// the noncontiguous hilbert/bestfit.
	if util["buddy"] >= util["hilbert/bestfit"] {
		t.Errorf("buddy utilization %.1f should trail hilbert/bestfit %.1f",
			util["buddy"], util["hilbert/bestfit"])
	}
	// And the contiguous baselines are 100% contiguous by construction.
	for _, spec := range []string{"buddy", "submesh"} {
		if contig[spec] != "100.0%" {
			t.Errorf("%s contiguity = %s", spec, contig[spec])
		}
	}
}

func TestExtSchedulerStructure(t *testing.T) {
	fig, err := ExtScheduler(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := fig.Tables[0]
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows, want 9 allocators", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[3], "%") {
			t.Fatalf("gain cell %q not a percentage", row[3])
		}
	}
}

func TestExtRoutingStructure(t *testing.T) {
	fig, err := ExtRouting(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables[0].Rows) != 6 {
		t.Fatalf("%d rows, want 2 allocators x 3 routings", len(fig.Tables[0].Rows))
	}
}

func TestExtMixedRanksAllAllocators(t *testing.T) {
	fig, err := ExtMixed(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := fig.Tables[0]
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Sorted ascending by response.
	prev := -1.0
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad response cell %q", row[1])
		}
		if v < prev {
			t.Fatal("rows not sorted by response")
		}
		prev = v
	}
}

func TestExtensionByID(t *testing.T) {
	for _, id := range AllExtensionIDs() {
		if id[:4] != "ext-" {
			t.Fatalf("extension id %q lacks prefix", id)
		}
	}
	if _, err := ExtensionByID("ext-nope", Options{}); err == nil {
		t.Fatal("unknown extension should fail")
	}
	fig, err := ExtensionByID("ext-mixed", quickOpt())
	if err != nil || fig.ID != "ext-mixed" {
		t.Fatalf("ExtensionByID: %v, %v", fig, err)
	}
}

func TestExtCube3DStructure(t *testing.T) {
	fig, err := ExtCube3D(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := fig.Tables[0]
	if want := len(cube3DNative) + len(cube3DProjected); len(tab.Rows) != want {
		t.Fatalf("%d rows, want %d", len(tab.Rows), want)
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[3], "%") {
			t.Fatalf("contiguity cell %q not a percentage", row[3])
		}
	}
	penalties := 0
	for _, n := range fig.Notes {
		if strings.Contains(n, "projection penalty") {
			penalties++
		}
	}
	if penalties != 3 {
		t.Fatalf("%d projection-penalty notes, want 3", penalties)
	}
}
