package core

import (
	"sync"
	"sync/atomic"

	"meshalloc/internal/stats"
)

// The parallel experiment fabric, layer 1: Monte-Carlo sweeps shard
// their work — grid cells times replications — across a bounded worker
// pool, with each replication drawing its randomness from an RNG stream
// derived only from (base seed, replication index). Workers pull shard
// indexes from an atomic counter and write results into per-shard
// slots, so the output is a pure function of the inputs: the worker
// count and the OS schedule change only the wall clock, never a bit of
// the result. Reductions over shards (means, Welford/quantile merges)
// always run on the caller's goroutine in shard-index order, which is
// what makes the parallel figures bit-identical to the sequential ones.

// RepSeed derives the RNG seed of replication rep from the sweep's base
// seed with a splitmix64-style hash, so every replication gets an
// independent, well-separated stream no matter how replications are
// scheduled across workers. Replication 0 keeps the base seed itself:
// a single-replication sweep is bit-identical to the paper's unsharded
// single-seed runs.
func RepSeed(base int64, rep int) int64 {
	if rep == 0 {
		return base
	}
	return stats.Mix64(base, rep)
}

// forEachShard runs body(i) for every i in [0, n) on min(workers, n)
// goroutines pulling shard indexes from a shared counter. It returns
// the error of the lowest-indexed failing shard, or nil. The pool
// always drains before the call returns — an error stops workers from
// pulling new shards, but every started shard finishes and every
// goroutine exits, so the runner never leaks goroutines on early exit.
func forEachShard(n, workers int, body func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, same iteration order.
		for i := 0; i < n; i++ {
			if err := body(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		wg     sync.WaitGroup
		errAt  = -1
		err    error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if e := body(i); e != nil {
					failed.Store(true)
					mu.Lock()
					if errAt < 0 || i < errAt {
						errAt, err = i, e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}

// runSweep executes fn over the cross product of keys and
// o.Replications on one worker pool bounded by o.Parallelism, and
// returns results[key][rep]. Each (key, rep) cell receives the seed
// RepSeed(o.Seed, rep) — the same derived stream for every key of a
// replication, mirroring how the paper reuses one seed across a
// figure's grid — so the result depends only on (keys, o.Seed,
// o.Replications, fn). Callers reduce the per-key slices in
// replication order to keep the whole figure bit-stable under any
// worker count.
func runSweep[K comparable, V any](keys []K, o Options, fn func(k K, rep int, seed int64) (V, error)) (map[K][]V, error) {
	reps := o.Replications
	if reps < 1 {
		reps = 1
	}
	vals := make([][]V, len(keys))
	for i := range vals {
		vals[i] = make([]V, reps)
	}
	err := forEachShard(len(keys)*reps, o.Parallelism, func(i int) error {
		ki, rep := i/reps, i%reps
		v, err := fn(keys[ki], rep, RepSeed(o.Seed, rep))
		if err != nil {
			return err
		}
		vals[ki][rep] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := make(map[K][]V, len(keys))
	for i, k := range keys {
		res[k] = vals[i]
	}
	return res, nil
}
