package core

import (
	"bytes"
	"strconv"
	"testing"
)

// TestExtFaultsStructure: the robustness table carries one row per
// allocator x fault level, the fault-free rows show no degradation or
// waste, and the dense level actually kills jobs somewhere.
func TestExtFaultsStructure(t *testing.T) {
	fig, err := ExtFaults(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := fig.Tables[0]
	if want := len(extFaultSpecs) * len(faultLevels); len(tab.Rows) != want {
		t.Fatalf("%d rows, want %d", len(tab.Rows), want)
	}
	kills := 0
	for _, row := range tab.Rows {
		k, err := strconv.Atoi(row[7])
		if err != nil {
			t.Fatalf("bad kills cell %q", row[7])
		}
		if row[1] == "none" {
			if k != 0 || row[3] != "—" || row[5] != "0.00" {
				t.Errorf("%s fault-free row reports fault activity: %v", row[0], row)
			}
		}
		kills += k
	}
	if kills == 0 {
		t.Fatal("no kills anywhere: the failure intensities are too calm for the workload")
	}
}

// TestExtFaultsParallelDeterminism: the rendered figure is
// byte-identical at any sweep parallelism — fault schedules are a pure
// function of the seed, never of worker interleaving.
func TestExtFaultsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("three full grids")
	}
	render := func(parallelism int) []byte {
		o := quickOpt()
		o.Parallelism = parallelism
		fig, err := ExtFaults(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fig.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(1)
	for _, p := range []int{2, 8} {
		if got := render(p); !bytes.Equal(got, want) {
			t.Fatalf("parallelism %d changed the rendered figure", p)
		}
	}
}
