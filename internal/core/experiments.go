package core

import (
	"fmt"
	"sort"

	"meshalloc/internal/alloc"
	"meshalloc/internal/sim"
	"meshalloc/internal/stats"
	"meshalloc/internal/trace"
)

// Patterns evaluated in Figures 7 and 8.
var responsePatterns = []string{"alltoall", "nbody", "random"}

// newTrace builds the synthetic SDSC trace for the options.
func newTrace(o Options, maxSize int) *trace.Trace {
	tr := trace.NewSDSC(trace.SDSCConfig{Jobs: 6087, MaxSize: maxSize, Seed: o.Seed})
	return tr.Truncate(o.Jobs).FilterMaxSize(maxSize)
}

// gridKey identifies one cell in a response-time grid; replications are
// not part of the key — the sweep runner shards them underneath.
type gridKey struct {
	allocSpec string
	pattern   string
	load      float64
}

// responseFigure runs the 9-allocator x loads grid for each pattern on a
// w x h mesh and assembles the response-time-versus-load figure
// (Figures 7 and 8 of the paper). With Options.Replications > 1, every
// cell runs once per derived replication stream (each replication also
// redraws the synthetic trace from its RepSeed) and the series carry
// mean ± standard deviation, reduced in replication order so the figure
// is bit-identical at any Parallelism.
func responseFigure(id, title string, w, h int, o Options) (*Figure, error) {
	o = o.withDefaults()
	loads := sortedLoadsDescending(o.Loads)
	traces := make([]*trace.Trace, o.Replications)
	if err := forEachShard(o.Replications, o.Parallelism, func(r int) error {
		ro := o
		ro.Seed = RepSeed(o.Seed, r)
		traces[r] = newTrace(ro, w*h)
		return nil
	}); err != nil {
		return nil, err
	}

	var keys []gridKey
	for _, p := range responsePatterns {
		for _, a := range alloc.Specs() {
			for _, l := range loads {
				keys = append(keys, gridKey{allocSpec: a, pattern: p, load: l})
			}
		}
	}
	results, err := runSweep(keys, o, func(k gridKey, rep int, seed int64) (*sim.Result, error) {
		cfg := sim.Config{
			MeshW: w, MeshH: h,
			Alloc:     k.allocSpec,
			Pattern:   k.pattern,
			Load:      k.load,
			TimeScale: o.TimeScale,
			Seed:      seed,
		}
		return sim.Run(cfg, traces[rep])
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{ID: id, Title: title}
	for _, p := range responsePatterns {
		for _, a := range alloc.Specs() {
			s := Series{Label: fmt.Sprintf("%s %s", p, a)}
			for _, l := range loads {
				var ys []float64
				for _, r := range results[gridKey{allocSpec: a, pattern: p, load: l}] {
					ys = append(ys, r.MeanResponse)
				}
				s.X = append(s.X, l)
				s.Y = append(s.Y, stats.Mean(ys))
				if o.Replications > 1 {
					s.YErr = append(s.YErr, stats.StdDev(ys))
				}
			}
			fig.Series = append(fig.Series, s)
		}
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("trace: %d jobs, time scale %g, seed %d, replications %d",
			len(traces[0].Jobs), o.TimeScale, o.Seed, o.Replications),
		"y values are mean response times in (re-inflated) seconds; the paper's axis unit is 10M sec")
	return fig, nil
}

// Fig7 reproduces Figure 7: response time versus load on the 16x22 mesh
// for the all-to-all (a), n-body (b) and random (c) patterns.
func Fig7(o Options) (*Figure, error) {
	return responseFigure("fig7", "Response time vs load, 16x22 mesh (a) all-to-all (b) n-body (c) random", 16, 22, o)
}

// Fig8 reproduces Figure 8: the same grid on the 16x16 mesh, with jobs
// larger than 256 processors removed as in the paper.
func Fig8(o Options) (*Figure, error) {
	return responseFigure("fig8", "Response time vs load, 16x16 mesh (a) all-to-all (b) n-body (c) random", 16, 16, o)
}

// largeJobRecords runs the n-body pattern on the 16x16 mesh for every
// allocator at load 1.0 and collects the records of the largest jobs
// (128 processors) within a quota band around the paper's 39,900-44,000
// messages, scaled by TimeScale.
func largeJobRecords(o Options) ([]sim.JobRecord, error) {
	o = o.withDefaults()
	tr := newTrace(o, 256)
	results, err := runGrid(alloc.Specs(), o.Parallelism, func(a string) (*sim.Result, error) {
		cfg := sim.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     a,
			Pattern:   "nbody",
			Load:      1.0,
			TimeScale: o.TimeScale,
			Seed:      o.Seed,
		}
		return sim.Run(cfg, tr)
	})
	if err != nil {
		return nil, err
	}
	// The paper's band is 39,900-44,000 messages out of runtimes around
	// 40,000 s; accept jobs within a factor-2 band around the scaled
	// equivalent so the sample stays usefully large at small scales.
	lo := 20000 * o.TimeScale
	hi := 88000 * o.TimeScale
	var recs []sim.JobRecord
	for _, a := range alloc.Specs() {
		for _, r := range results[a].Records {
			if r.Size == 128 && float64(r.Quota) >= lo && float64(r.Quota) <= hi {
				recs = append(recs, r)
			}
		}
	}
	return recs, nil
}

// correlationFigure builds a runtime-versus-metric scatter from large
// n-body jobs and reports the Pearson correlation.
func correlationFigure(id, title string, o Options, metric func(sim.JobRecord) float64, metricName string) (*Figure, error) {
	o = o.withDefaults()
	recs, err := largeJobRecords(o)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("core: no 128-processor jobs in the quota band; increase Options.Jobs")
	}
	var xs, ys []float64
	s := Series{Label: fmt.Sprintf("running time vs %s (128-proc n-body jobs)", metricName)}
	for _, r := range recs {
		// Normalize to the running time of a full-scale 41,000-message
		// job: RunTime is re-inflated by 1/TimeScale, so per-message
		// time is RunTime*TimeScale/Quota.
		y := r.RunTime * o.TimeScale * 41000 / float64(r.Quota)
		x := metric(r)
		xs = append(xs, x)
		ys = append(ys, y)
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	fig := &Figure{ID: id, Title: title, Series: []Series{s}}
	r := stats.Pearson(xs, ys)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("jobs: %d; Pearson r = %.3f", len(recs), r),
		"runtimes normalized to a 41,000-message quota as in the paper's band")
	for _, b := range stats.BinXY(xs, ys, 6) {
		if b.Count > 0 {
			fig.Notes = append(fig.Notes,
				fmt.Sprintf("bin [%.2f,%.2f): n=%d mean runtime %.0f s", b.Lo, b.Hi, b.Count, b.MeanY))
		}
	}
	return fig, nil
}

// Fig9 reproduces Figure 9: running time versus average pairwise
// processor distance for large n-body jobs — the paper finds no clear
// relationship.
func Fig9(o Options) (*Figure, error) {
	return correlationFigure("fig9",
		"Running time vs avg pairwise processor distance (no clear relationship expected)",
		o, func(r sim.JobRecord) float64 { return r.AvgPairwise }, "avg pairwise distance")
}

// Fig10 reproduces Figure 10: running time versus average message
// distance for the same jobs — the paper finds a reasonably tight
// relationship.
func Fig10(o Options) (*Figure, error) {
	return correlationFigure("fig10",
		"Running time vs avg message distance (tight positive relationship expected)",
		o, func(r sim.JobRecord) float64 { return r.AvgMsgDist }, "avg message distance")
}

// Fig11 reproduces Figure 11: the percentage of jobs allocated
// contiguously and the mean number of components per job, for all twelve
// allocators, running all-to-all on the 16x16 mesh at load 1.0.
func Fig11(o Options) (*Figure, error) {
	o = o.withDefaults()
	tr := newTrace(o, 256)
	specs := alloc.Fig11Specs()
	results, err := runGrid(specs, o.Parallelism, func(a string) (*sim.Result, error) {
		cfg := sim.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     a,
			Pattern:   "alltoall",
			Load:      1.0,
			TimeScale: o.TimeScale,
			Seed:      o.Seed,
		}
		return sim.Run(cfg, tr)
	})
	if err != nil {
		return nil, err
	}
	type row struct {
		spec string
		pct  float64
		avg  float64
	}
	rows := make([]row, 0, len(specs))
	for _, a := range specs {
		rows = append(rows, row{spec: a, pct: results[a].PctContiguous, avg: results[a].AvgComponents})
	}
	// The paper sorts by percent contiguous, descending. SliceStable keeps
	// the spec order of Fig11Specs for ties, matching the previous
	// insertion sort.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].pct > rows[j].pct })
	t := Table{Columns: []string{"Algorithm", "% contiguous", "Ave. components"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.spec, fmt.Sprintf("%.1f%%", r.pct), fmt.Sprintf("%.2f", r.avg)})
	}
	return &Figure{
		ID:     "fig11",
		Title:  "Contiguity of allocations, all-to-all on 16x16 at load 1.0",
		Tables: []Table{t},
	}, nil
}

// FigureByID returns the named figure ("1", "6", "7", "8", "9", "10",
// "11" or "fig7" etc.).
func FigureByID(id string, o Options) (*Figure, error) {
	switch id {
	case "1", "fig1":
		return Fig1(o)
	case "6", "fig6":
		return Fig6(), nil
	case "7", "fig7":
		return Fig7(o)
	case "8", "fig8":
		return Fig8(o)
	case "9", "fig9":
		return Fig9(o)
	case "10", "fig10":
		return Fig10(o)
	case "11", "fig11":
		return Fig11(o)
	default:
		return nil, fmt.Errorf("core: unknown figure %q", id)
	}
}

// AllFigureIDs lists the reproducible figures in paper order.
func AllFigureIDs() []string { return []string{"1", "6", "7", "8", "9", "10", "11"} }
