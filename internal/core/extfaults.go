package core

import (
	"fmt"

	"meshalloc/internal/fault"
	"meshalloc/internal/sim"
)

// faultLevel is one failure intensity of the ext-faults grid. MTBF and
// MTTR are per-node exponential means in original trace seconds; the
// zero level is the fault-free baseline every degradation figure is
// relative to.
type faultLevel struct {
	name       string
	mtbf, mttr float64
}

var faultLevels = []faultLevel{
	{name: "none"},
	{name: "sparse", mtbf: 1.5e6, mttr: 2e4},
	{name: "dense", mtbf: 3e5, mttr: 1.5e4},
}

// extFaultSpecs are the allocators of the robustness study: the two
// curve baselines, both MC forms, the random lower bound, and the
// contiguous submesh allocator — the one the masking should hurt most,
// since a single dead node vetoes every submesh covering it.
var extFaultSpecs = []string{
	"hilbert/bestfit", "scurve", "mc", "mc1x1", "random", "submesh",
}

// ExtFaults measures allocator robustness to node failures: each
// allocator runs the same workload fault-free and under two
// exponential failure/repair intensities, reporting goodput, wasted
// work, retry traffic, and the mean-response degradation relative to
// its own fault-free baseline. Every cell is an independent
// deterministic simulation, so the table is bit-identical at any
// Options.Parallelism.
func ExtFaults(o Options) (*Figure, error) {
	o = o.withDefaults()
	// Cap job sizes at half the machine: full-machine jobs under dense
	// failures wait for a moment when every node is simultaneously up,
	// which stretches makespans without adding signal.
	tr := newTrace(o, 128)
	type key struct {
		spec  string
		level string
	}
	var keys []key
	for _, spec := range extFaultSpecs {
		for _, lv := range faultLevels {
			keys = append(keys, key{spec: spec, level: lv.name})
		}
	}
	levelByName := map[string]faultLevel{}
	for _, lv := range faultLevels {
		levelByName[lv.name] = lv
	}
	results, err := runGrid(keys, o.Parallelism, func(k key) (*sim.Result, error) {
		lv := levelByName[k.level]
		cfg := sim.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     k.spec,
			Pattern:   "nbody",
			Load:      0.4,
			TimeScale: o.TimeScale,
			Seed:      o.Seed,
			Scheduler: o.Scheduler,
		}
		if lv.mtbf > 0 {
			cfg.Faults = fault.Config{
				MTBF: fault.Dist{Kind: fault.DistExponential, Mean: lv.mtbf},
				MTTR: fault.Dist{Kind: fault.DistExponential, Mean: lv.mttr},
			}
			cfg.Retry = fault.Retry{
				Kind: fault.RetryBackoff, Base: 60, Cap: 3600, MaxAttempts: 4,
			}
		}
		return sim.Run(cfg, tr)
	})
	if err != nil {
		return nil, err
	}
	t := Table{Columns: []string{
		"Algorithm", "faults", "mean response (s)", "degradation",
		"goodput %", "wasted %", "down %", "kills", "retries", "gave up",
	}}
	for _, spec := range extFaultSpecs {
		base := results[key{spec, "none"}]
		for _, lv := range faultLevels {
			r := results[key{spec, lv.name}]
			deg := "—"
			if lv.mtbf > 0 && base.MeanResponse > 0 {
				deg = fmt.Sprintf("%+.1f%%",
					100*(r.MeanResponse-base.MeanResponse)/base.MeanResponse)
			}
			t.Rows = append(t.Rows, []string{
				spec, lv.name,
				fmt.Sprintf("%.0f", r.MeanResponse),
				deg,
				fmt.Sprintf("%.1f", r.GoodputPct),
				fmt.Sprintf("%.2f", r.WastedPct),
				fmt.Sprintf("%.2f", r.DownPct),
				fmt.Sprintf("%d", r.Killed),
				fmt.Sprintf("%d", r.Retried),
				fmt.Sprintf("%d", r.GivenUp),
			})
		}
	}
	return &Figure{
		ID:     "ext-faults",
		Title:  "Allocator robustness to node failures (n-body, 16x16, load 0.4, backoff retry)",
		Tables: []Table{t},
		Notes: []string{
			"sparse: per-node MTBF 1.5e6 s, MTTR 2e4 s; dense: MTBF 3e5 s, MTTR 1.5e4 s (exponential)",
			"killed jobs retry with 60 s base / 3600 s cap exponential backoff, at most 4 restarts",
			"goodput is utilization minus work thrown away by kills; degradation is vs the allocator's own fault-free run",
			"buddy and the paged forms cannot mask single nodes and are excluded",
		},
	}, nil
}
