// Package core is the experiment harness: one constructor per figure and
// table in the paper's evaluation section, each returning a Figure whose
// series or table rows mirror what the paper plots, plus the options
// machinery to run the full grid of simulations behind them.
package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Series is one plotted line: Y versus X, labeled by the allocator or
// metric it describes. YErr, when non-nil, carries the standard
// deviation across replications.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	YErr  []float64
}

// Table is one textual table (the paper's Figure 11 is a table).
type Table struct {
	Columns []string
	Rows    [][]string
}

// Figure is the reproduction of one paper figure: series for plots,
// tables for tabular data, and notes recording derived statistics such as
// correlation coefficients.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Tables []Table
	Notes  []string
}

// Render writes a plain-text rendition of the figure: aligned series
// values or table rows.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "\n%s\n", s.Label); err != nil {
			return err
		}
		for i := range s.X {
			if s.YErr != nil {
				if _, err := fmt.Fprintf(w, "  x=%-12.4g y=%.6g ±%.4g\n", s.X[i], s.Y[i], s.YErr[i]); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "  x=%-12.4g y=%.6g\n", s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	for _, t := range f.Tables {
		if err := renderTable(w, t); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the figure's data in CSV form for external plotting:
// series as (series,x,y) rows, tables verbatim with their headers, and
// notes as comment-style rows.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(f.Series) > 0 {
		if err := cw.Write([]string{"series", "x", "y"}); err != nil {
			return err
		}
		for _, s := range f.Series {
			for i := range s.X {
				rec := []string{
					s.Label,
					strconv.FormatFloat(s.X[i], 'g', -1, 64),
					strconv.FormatFloat(s.Y[i], 'g', -1, 64),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	for _, t := range f.Tables {
		if err := cw.Write(t.Columns); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	for _, n := range f.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func renderTable(w io.Writer, t Table) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(b.String(), " "))
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// Options scales the experiments. The zero value reproduces the paper's
// setup at a tractable scale; Full() replays the whole trace.
type Options struct {
	// Jobs is the synthetic trace length; 0 means 1500 (scaled default).
	Jobs int
	// TimeScale contracts the trace; 0 means 0.02. See sim.Config.
	TimeScale float64
	// Seed drives the synthetic trace and all randomized components.
	Seed int64
	// Loads are the arrival contraction factors; nil means the paper's
	// {1, 0.8, 0.6, 0.4, 0.2}.
	Loads []float64
	// Parallelism caps concurrent simulations across the whole sweep —
	// grid cells and replications share one worker pool — without ever
	// changing a result bit (see sweep.go); 0 means GOMAXPROCS.
	Parallelism int
	// Replications repeats every simulation with independent derived
	// RNG streams (RepSeed; replication 0 keeps Seed itself) and
	// reports mean and standard deviation; 0 means 1 (single run, as in
	// the paper).
	Replications int
	// Scheduler overrides the scheduling policy ("fcfs", "easy" or
	// "sjf") in the extension experiments; empty means each
	// experiment's own default (fcfs, as in the paper). The paper
	// figures always run fcfs and ignore this field.
	Scheduler string
}

func (o Options) withDefaults() Options {
	if o.Jobs == 0 {
		o.Jobs = 1500
	}
	if o.TimeScale == 0 {
		o.TimeScale = 0.02
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{1.0, 0.8, 0.6, 0.4, 0.2}
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Replications == 0 {
		o.Replications = 1
	}
	return o
}

// FullOptions replays the full 6087-job trace, the paper's exact setup.
func FullOptions() Options {
	return Options{Jobs: 6087}
}

// runGrid executes fn over keys on the shared shard pool (see sweep.go)
// and returns results keyed the same way; any error aborts the grid.
// The single-replication special case of runSweep, kept for grids whose
// cells carry no replication dimension.
func runGrid[K comparable, V any](keys []K, parallelism int, fn func(K) (V, error)) (map[K]V, error) {
	vals := make([]V, len(keys))
	err := forEachShard(len(keys), parallelism, func(i int) error {
		v, err := fn(keys[i])
		if err != nil {
			return err
		}
		vals[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := make(map[K]V, len(keys))
	for i, k := range keys {
		res[k] = vals[i]
	}
	return res, nil
}

// sortedLoadsDescending returns loads ordered 1.0 first, matching the
// paper's x axis ("Load (decreasing)").
func sortedLoadsDescending(loads []float64) []float64 {
	out := append([]float64(nil), loads...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
