package core

import (
	"fmt"
	"sort"

	"meshalloc/internal/alloc"
	"meshalloc/internal/cube"
	"meshalloc/internal/netsim"
	"meshalloc/internal/sim"
)

// Extension experiments beyond the paper's figures: the studies its
// Section 2 survey and Section 5 discussion point at but do not run.

// ExtContiguous compares the classic contiguous-only allocators (2-D
// buddy, first-fit submesh) against the paper's noncontiguous field on
// the 16x16 mesh — the "convex allocation reduces utilization" claim of
// Section 2, quantified.
func ExtContiguous(o Options) (*Figure, error) {
	o = o.withDefaults()
	tr := newTrace(o, 256)
	specs := []string{"buddy", "submesh", "hilbert/bestfit", "mc1x1", "hilbert/freelist/page1"}
	results, err := runGrid(specs, o.Parallelism, func(spec string) (*sim.Result, error) {
		return sim.Run(sim.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     spec,
			Pattern:   "alltoall",
			Load:      0.4,
			TimeScale: o.TimeScale,
			Seed:      o.Seed,
			Scheduler: o.Scheduler,
		}, tr)
	})
	if err != nil {
		return nil, err
	}
	t := Table{Columns: []string{
		"Algorithm", "mean response (s)", "mean queue", "utilization %", "% contiguous",
	}}
	for _, spec := range specs {
		r := results[spec]
		t.Rows = append(t.Rows, []string{
			spec,
			fmt.Sprintf("%.0f", r.MeanResponse),
			fmt.Sprintf("%.1f", r.MeanQueueLen),
			fmt.Sprintf("%.1f", r.UtilizationPct),
			fmt.Sprintf("%.1f%%", r.PctContiguous),
		})
	}
	return &Figure{
		ID:     "ext-contiguous",
		Title:  "Contiguous-only baselines vs noncontiguous allocation (all-to-all, 16x16, load 0.4)",
		Tables: []Table{t},
		Notes: []string{
			"buddy and submesh guarantee contiguity but block the FCFS head on fragmentation",
			"page1 is Lo et al.'s original Paging with 2x2 pages (internal fragmentation)",
		},
	}, nil
}

// ExtScheduler crosses the nine allocators with FCFS and EASY
// backfilling — the allocator/scheduler interaction the paper's
// discussion calls for.
func ExtScheduler(o Options) (*Figure, error) {
	o = o.withDefaults()
	tr := newTrace(o, 256)
	type key struct {
		spec  string
		sched string
	}
	var keys []key
	for _, spec := range alloc.Specs() {
		for _, s := range []string{"fcfs", "easy"} {
			keys = append(keys, key{spec: spec, sched: s})
		}
	}
	results, err := runGrid(keys, o.Parallelism, func(k key) (*sim.Result, error) {
		return sim.Run(sim.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     k.spec,
			Pattern:   "alltoall",
			Load:      0.4,
			TimeScale: o.TimeScale,
			Seed:      o.Seed,
			Scheduler: k.sched,
		}, tr)
	})
	if err != nil {
		return nil, err
	}
	t := Table{Columns: []string{"Algorithm", "FCFS resp (s)", "EASY resp (s)", "EASY gain"}}
	rows := make([][]string, 0, len(alloc.Specs()))
	for _, spec := range alloc.Specs() {
		f := results[key{spec, "fcfs"}].MeanResponse
		e := results[key{spec, "easy"}].MeanResponse
		gain := 0.0
		if f > 0 {
			gain = 100 * (f - e) / f
		}
		rows = append(rows, []string{
			spec,
			fmt.Sprintf("%.0f", f),
			fmt.Sprintf("%.0f", e),
			fmt.Sprintf("%+.1f%%", gain),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	t.Rows = rows
	return &Figure{
		ID:     "ext-scheduler",
		Title:  "FCFS vs EASY backfilling across allocators (all-to-all, 16x16, load 0.4)",
		Tables: []Table{t},
	}, nil
}

// ExtRouting compares x-y, y-x, and congestion-adaptive routing for a
// compact and a dispersing allocator, probing how much of the
// allocation effect routing can recover.
func ExtRouting(o Options) (*Figure, error) {
	o = o.withDefaults()
	tr := newTrace(o, 256)
	type key struct {
		spec  string
		route netsim.Routing
	}
	var keys []key
	specs := []string{"hilbert/bestfit", "scurve"}
	routes := []netsim.Routing{netsim.RouteXY, netsim.RouteYX, netsim.RouteAdaptive}
	for _, spec := range specs {
		for _, r := range routes {
			keys = append(keys, key{spec: spec, route: r})
		}
	}
	results, err := runGrid(keys, o.Parallelism, func(k key) (*sim.Result, error) {
		cfg := sim.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     k.spec,
			Pattern:   "alltoall",
			Load:      0.4,
			TimeScale: o.TimeScale,
			Seed:      o.Seed,
			Scheduler: o.Scheduler,
			Net:       netsim.DefaultConfig(),
		}
		cfg.Net.Routing = k.route
		return sim.Run(cfg, tr)
	})
	if err != nil {
		return nil, err
	}
	t := Table{Columns: []string{"Algorithm", "routing", "mean response (s)"}}
	for _, spec := range specs {
		for _, r := range routes {
			t.Rows = append(t.Rows, []string{
				spec, r.String(),
				fmt.Sprintf("%.0f", results[key{spec, r}].MeanResponse),
			})
		}
	}
	return &Figure{
		ID:     "ext-routing",
		Title:  "Routing sensitivity: x-y vs y-x vs adaptive (all-to-all, 16x16, load 0.4)",
		Tables: []Table{t},
		Notes:  []string{"the paper fixes x-y routing; adaptive routing cannot substitute for good allocation"},
	}, nil
}

// ExtMixed ranks the allocators when every job draws its own pattern —
// the realistic-workload experiment the paper's Section 3 defers.
func ExtMixed(o Options) (*Figure, error) {
	o = o.withDefaults()
	tr := newTrace(o, 256)
	results, err := runGrid(alloc.Specs(), o.Parallelism, func(spec string) (*sim.Result, error) {
		return sim.Run(sim.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     spec,
			Pattern:   "mixed",
			Load:      0.2,
			TimeScale: o.TimeScale,
			Seed:      o.Seed,
			Scheduler: o.Scheduler,
		}, tr)
	})
	if err != nil {
		return nil, err
	}
	type row struct {
		spec string
		resp float64
	}
	rows := make([]row, 0, len(alloc.Specs()))
	for _, spec := range alloc.Specs() {
		rows = append(rows, row{spec: spec, resp: results[spec].MeanResponse})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].resp < rows[j].resp })
	t := Table{Columns: []string{"Algorithm", "mean response (s)"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.spec, fmt.Sprintf("%.0f", r.resp)})
	}
	return &Figure{
		ID:     "ext-mixed",
		Title:  "Allocator ranking under per-job mixed patterns (16x16, load 0.2)",
		Tables: []Table{t},
	}, nil
}

// ExtCube runs the 3-D allocation-quality study: the paper's
// one-dimensional-reduction idea on the 3-D mesh CPlant actually had,
// using the multidimensional Hilbert indexing its Alber–Niedermeier
// reference describes.
func ExtCube(o Options) (*Figure, error) {
	o = o.withDefaults()
	m := cube.New3(8, 8, 8)
	jobs := o.Jobs / 10
	if jobs < 50 {
		jobs = 50
	}
	results := cube.Study(m, jobs, 4, 48, o.Seed)
	t := Table{Columns: []string{"Strategy", "mean avg pairwise distance", "allocations"}}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprintf("%.3f", r.MeanAvgPairwise), fmt.Sprintf("%d", r.Allocations),
		})
	}
	return &Figure{
		ID:     "ext-cube",
		Title:  "3-D mesh allocation quality under churn (8x8x8, sizes 4-48)",
		Tables: []Table{t},
		Notes: []string{
			"hilbert3 is the multidimensional Hilbert indexing (Skilling construction)",
			"the 2-D conclusion carries over: curve choice dominates allocation compactness",
		},
	}, nil
}

// cube3DNative and cube3DProjected are the allocator fields of the
// ext-cube3d experiment: each native strategy runs the curve (or shell
// scoring) directly on the 3-D machine, while the proj2d-* variants
// allocate as the paper did for CPlant — unfold the 3-D mesh into a 2-D
// plane, run the 2-D curve there — and then communicate on the real 3-D
// network.
var (
	cube3DNative    = []string{"hilbert", "hilbert/bestfit", "scurve", "mc", "mc1x1", "random"}
	cube3DProjected = []string{"proj2d-hilbert", "proj2d-hilbert/bestfit", "proj2d-scurve"}
)

// ExtCube3D runs the full contention simulation natively on the 8x8x8
// 3-D mesh: the experiment the paper could not run, answering how much
// contention signal the 2-D projection of CPlant loses versus native
// 3-D allocation. Every layer — n-D Hilbert/snake orderings, MC shells
// as box surfaces, dimension-ordered routing, per-link occupancy — runs
// in three dimensions; the proj2d-* rows reproduce the paper's
// projection strategy on the same machine for a like-for-like
// comparison.
func ExtCube3D(o Options) (*Figure, error) {
	o = o.withDefaults()
	dims := []int{8, 8, 8}
	tr := newTrace(o, 8*8*8)
	specs := append(append([]string(nil), cube3DNative...), cube3DProjected...)
	results, err := runGrid(specs, o.Parallelism, func(spec string) (*sim.Result, error) {
		return sim.Run(sim.Config{
			Dims:      dims,
			Alloc:     spec,
			Pattern:   "nbody",
			Load:      0.2,
			TimeScale: o.TimeScale,
			Seed:      o.Seed,
			Scheduler: o.Scheduler,
		}, tr)
	})
	if err != nil {
		return nil, err
	}
	t := Table{Columns: []string{
		"Algorithm", "mean response (s)", "avg msg dist (hops)", "% contiguous", "mean queue",
	}}
	for _, spec := range specs {
		r := results[spec]
		t.Rows = append(t.Rows, []string{
			spec,
			fmt.Sprintf("%.0f", r.MeanResponse),
			fmt.Sprintf("%.2f", r.Net.AvgHops()),
			fmt.Sprintf("%.1f%%", r.PctContiguous),
			fmt.Sprintf("%.1f", r.MeanQueueLen),
		})
	}
	fig := &Figure{
		ID:     "ext-cube3d",
		Title:  "Native 3-D allocation vs the paper's 2-D projection (n-body, 8x8x8, load 0.2)",
		Tables: []Table{t},
		Notes: []string{
			"proj2d-* allocates on the unfolded 8x64 plane (the paper's CPlant strategy) but routes on the true 3-D mesh",
		},
	}
	for _, pair := range [][2]string{
		{"hilbert", "proj2d-hilbert"},
		{"hilbert/bestfit", "proj2d-hilbert/bestfit"},
		{"scurve", "proj2d-scurve"},
	} {
		nat, proj := results[pair[0]].MeanResponse, results[pair[1]].MeanResponse
		if nat > 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"projection penalty for %s: %+.1f%% mean response (%.2f vs %.2f avg hops)",
				pair[0], 100*(proj-nat)/nat,
				results[pair[1]].Net.AvgHops(), results[pair[0]].Net.AvgHops()))
		}
	}
	return fig, nil
}

// AllExtensionIDs lists the extension experiments.
func AllExtensionIDs() []string {
	return []string{"ext-contiguous", "ext-scheduler", "ext-routing", "ext-mixed", "ext-cube", "ext-cube3d", "ext-steady", "ext-faults"}
}

// ExtensionByID returns the named extension experiment.
func ExtensionByID(id string, o Options) (*Figure, error) {
	switch id {
	case "ext-contiguous":
		return ExtContiguous(o)
	case "ext-scheduler":
		return ExtScheduler(o)
	case "ext-routing":
		return ExtRouting(o)
	case "ext-mixed":
		return ExtMixed(o)
	case "ext-cube":
		return ExtCube(o)
	case "ext-cube3d":
		return ExtCube3D(o)
	case "ext-steady":
		return ExtSteady(o)
	case "ext-faults":
		return ExtFaults(o)
	default:
		return nil, fmt.Errorf("core: unknown extension %q", id)
	}
}
