package stats

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a non-negative continuous distribution that can be sampled with
// an external random source.
type Dist interface {
	// Sample draws one variate using g.
	Sample(g *RNG) float64
	// Mean returns the distribution's analytic mean.
	Mean() float64
	// CV returns the distribution's analytic coefficient of variation
	// (standard deviation over mean).
	CV() float64
}

// Exponential is an exponential distribution.
type Exponential struct {
	MeanVal float64
}

// Sample implements Dist.
func (d Exponential) Sample(g *RNG) float64 { return g.ExpFloat64() * d.MeanVal }

// Mean implements Dist.
func (d Exponential) Mean() float64 { return d.MeanVal }

// CV implements Dist. An exponential always has CV 1.
func (d Exponential) CV() float64 { return 1 }

// HyperExp2 is a two-phase hyperexponential distribution: with probability
// P1 the variate is exponential with mean M1, otherwise exponential with
// mean M2. Hyperexponentials model the CV > 1 interarrival and runtime
// processes reported for the SDSC Paragon trace.
type HyperExp2 struct {
	P1     float64
	M1, M2 float64
}

// NewHyperExp2 fits a balanced-means two-phase hyperexponential to a target
// mean and coefficient of variation using the standard moment-matching fit.
// It panics if cv < 1, for which a hyperexponential cannot be fit.
func NewHyperExp2(mean, cv float64) HyperExp2 {
	if cv < 1 {
		panic(fmt.Sprintf("stats: hyperexponential requires cv >= 1, got %g", cv))
	}
	c2 := cv * cv
	p1 := 0.5 * (1 + math.Sqrt((c2-1)/(c2+1)))
	// Balanced means: p1*m1 == p2*m2 == mean/2.
	return HyperExp2{P1: p1, M1: mean / (2 * p1), M2: mean / (2 * (1 - p1))}
}

// Sample implements Dist.
func (d HyperExp2) Sample(g *RNG) float64 {
	if g.Float64() < d.P1 {
		return g.ExpFloat64() * d.M1
	}
	return g.ExpFloat64() * d.M2
}

// Mean implements Dist.
func (d HyperExp2) Mean() float64 { return d.P1*d.M1 + (1-d.P1)*d.M2 }

// CV implements Dist.
func (d HyperExp2) CV() float64 {
	m := d.Mean()
	m2 := 2 * (d.P1*d.M1*d.M1 + (1-d.P1)*d.M2*d.M2)
	return math.Sqrt(m2-m*m) / m
}

// Lognormal is a lognormal distribution parameterized by the mean and
// standard deviation of the underlying normal.
type Lognormal struct {
	Mu, Sigma float64
}

// NewLognormal fits a lognormal to a target mean and coefficient of
// variation.
func NewLognormal(mean, cv float64) Lognormal {
	s2 := math.Log(1 + cv*cv)
	return Lognormal{Mu: math.Log(mean) - s2/2, Sigma: math.Sqrt(s2)}
}

// Sample implements Dist.
func (d Lognormal) Sample(g *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*g.NormFloat64())
}

// Mean implements Dist.
func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// CV implements Dist.
func (d Lognormal) CV() float64 {
	return math.Sqrt(math.Exp(d.Sigma*d.Sigma) - 1)
}

// DiscreteDist is a finite distribution over integer values, used for job
// sizes. Weights need not be normalized.
type DiscreteDist struct {
	values  []int
	cum     []float64 // cumulative normalized weights
	mean    float64
	momtwo  float64 // second moment
	weights []float64
}

// NewDiscreteDist builds a discrete distribution over values with the
// given weights. It panics on mismatched lengths, empty input, or
// non-positive total weight: size distributions are static configuration.
func NewDiscreteDist(values []int, weights []float64) *DiscreteDist {
	if len(values) == 0 || len(values) != len(weights) {
		panic("stats: discrete distribution needs equal, non-empty values and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: total weight must be positive")
	}
	d := &DiscreteDist{
		values:  append([]int(nil), values...),
		cum:     make([]float64, len(values)),
		weights: append([]float64(nil), weights...),
	}
	acc := 0.0
	for i, w := range weights {
		p := w / total
		acc += p
		d.cum[i] = acc
		v := float64(values[i])
		d.mean += p * v
		d.momtwo += p * v * v
	}
	d.cum[len(d.cum)-1] = 1 // guard against rounding
	return d
}

// SampleInt draws one integer variate.
func (d *DiscreteDist) SampleInt(g *RNG) int {
	u := g.Float64()
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Mean returns the analytic mean.
func (d *DiscreteDist) Mean() float64 { return d.mean }

// CV returns the analytic coefficient of variation.
func (d *DiscreteDist) CV() float64 {
	v := d.momtwo - d.mean*d.mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v) / d.mean
}

// Values returns the support of the distribution.
func (d *DiscreteDist) Values() []int { return append([]int(nil), d.values...) }
