package stats

import (
	"math"
	"testing"
)

// addAll folds xs into a fresh Welford.
func addAll(xs []float64) Welford {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w
}

// relClose reports |a-b| <= tol * max(1, |a|, |b|).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func TestWelfordMergeMatchesSingleStream(t *testing.T) {
	rng := NewRNG(42)
	for _, n := range []int{0, 1, 2, 3, 10, 1000, 10000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*3 + 100
		}
		single := addAll(xs)
		for _, shards := range []int{1, 2, 3, 7} {
			var merged Welford
			for s := 0; s < shards; s++ {
				lo, hi := s*n/shards, (s+1)*n/shards
				part := addAll(xs[lo:hi])
				merged.Merge(part)
			}
			if merged.N() != single.N() {
				t.Fatalf("n=%d shards=%d: N %d != %d", n, shards, merged.N(), single.N())
			}
			if !relClose(merged.Mean(), single.Mean(), 1e-12) {
				t.Errorf("n=%d shards=%d: mean %g != %g", n, shards, merged.Mean(), single.Mean())
			}
			if !relClose(merged.Variance(), single.Variance(), 1e-9) {
				t.Errorf("n=%d shards=%d: variance %g != %g", n, shards, merged.Variance(), single.Variance())
			}
		}
	}
}

// TestWelfordMergeAssociativity checks that different shard groupings
// of the same stream agree to rounding error, and that the same shard
// list merged in the same order is bit-identical (the determinism
// contract the sweep runner's by-shard-index reduction relies on).
func TestWelfordMergeAssociativity(t *testing.T) {
	rng := NewRNG(7)
	xs := make([]float64, 999)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 50
	}
	a, b, c := addAll(xs[:100]), addAll(xs[100:617]), addAll(xs[617:])

	left := a // (a+b)+c
	left.Merge(b)
	left.Merge(c)
	bc := b // a+(b+c)
	bc.Merge(c)
	right := a
	right.Merge(bc)
	if !relClose(left.Mean(), right.Mean(), 1e-12) || !relClose(left.Variance(), right.Variance(), 1e-9) {
		t.Errorf("grouping changed result: (%g, %g) vs (%g, %g)",
			left.Mean(), left.Variance(), right.Mean(), right.Variance())
	}

	again := a
	again.Merge(b)
	again.Merge(c)
	if again != left {
		t.Error("same shard order must be bit-identical")
	}
}

func TestWelfordMergeIdentity(t *testing.T) {
	var zero Welford
	w := addAll([]float64{1, 2, 3})
	want := w
	w.Merge(zero)
	if w != want {
		t.Error("merging an empty accumulator must be a bit-level no-op")
	}
	zero.Merge(want)
	if zero != want {
		t.Error("merging into an empty accumulator must copy bit-exactly")
	}
}

func TestMergeQuantileSingleShard(t *testing.T) {
	rng := NewRNG(3)
	e := NewP2Quantile(0.5)
	for i := 0; i < 500; i++ {
		e.Add(rng.Float64())
	}
	if got, want := MergeQuantile(0.5, []*P2Quantile{e}), e.Value(); got != want {
		t.Fatalf("single shard must be exact: %g != %g", got, want)
	}
	if got := MergeQuantile(0.5, []*P2Quantile{nil, e, NewP2Quantile(0.5)}); got != e.Value() {
		t.Fatalf("nil/empty shards must be ignored: %g != %g", got, e.Value())
	}
	if got := MergeQuantile(0.5, nil); got != 0 {
		t.Fatalf("no shards: got %g, want 0", got)
	}
}

func TestMergeQuantileKnownDistributions(t *testing.T) {
	cases := []struct {
		name string
		gen  func(*RNG) float64
		p    float64
		want float64
	}{
		{"uniform-median", func(r *RNG) float64 { return r.Float64() }, 0.5, 0.5},
		{"uniform-p90", func(r *RNG) float64 { return r.Float64() }, 0.9, 0.9},
		{"exp-median", func(r *RNG) float64 { return r.ExpFloat64() }, 0.5, math.Ln2},
		{"normal-median", func(r *RNG) float64 { return r.NormFloat64()*2 + 10 }, 0.5, 10},
	}
	const n, shards = 20000, 4
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := NewRNG(11)
			parts := make([]*P2Quantile, shards)
			for i := range parts {
				parts[i] = NewP2Quantile(tc.p)
			}
			single := NewP2Quantile(tc.p)
			for i := 0; i < n; i++ {
				x := tc.gen(rng)
				parts[i%shards].Add(x)
				single.Add(x)
			}
			got := MergeQuantile(tc.p, parts)
			if !relClose(got, tc.want, 0.05) {
				t.Errorf("merged %s = %g, want ~%g", tc.name, got, tc.want)
			}
			if !relClose(got, single.Value(), 0.05) {
				t.Errorf("merged %g strays from single-stream P² %g", got, single.Value())
			}
			// Determinism: the same shard list merges to the same bits.
			if again := MergeQuantile(tc.p, parts); again != got {
				t.Error("merge is not bit-stable for a fixed shard list")
			}
		})
	}
}

// TestMergeQuantileShortShards exercises shards still in the exact boot
// phase (n <= 5), where the merge interpolates the raw order statistics.
func TestMergeQuantileShortShards(t *testing.T) {
	a, b := NewP2Quantile(0.5), NewP2Quantile(0.5)
	for _, x := range []float64{1, 2, 3} {
		a.Add(x)
	}
	for _, x := range []float64{4, 5, 6} {
		b.Add(x)
	}
	got := MergeQuantile(0.5, []*P2Quantile{a, b})
	if got < 3 || got > 4 {
		t.Fatalf("median of 1..6 estimated at %g, want within [3, 4]", got)
	}
	c := NewP2Quantile(0.5)
	c.Add(42)
	if got := MergeQuantile(0.5, []*P2Quantile{c, NewP2Quantile(0.5)}); got != 42 {
		t.Fatalf("single observation: %g, want 42", got)
	}
}

// FuzzWelfordMerge checks, for arbitrary observation streams and split
// points, that merging the two halves matches the single-stream
// accumulator within rounding tolerance and preserves the count
// exactly.
func FuzzWelfordMerge(f *testing.F) {
	f.Add(int64(1), uint16(10), uint16(3))
	f.Add(int64(99), uint16(1000), uint16(999))
	f.Add(int64(-5), uint16(2), uint16(0))
	f.Fuzz(func(t *testing.T, seed int64, count, split uint16) {
		n := int(count % 2048)
		cut := 0
		if n > 0 {
			cut = int(split) % (n + 1)
		}
		rng := NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			// Mixed magnitudes stress the numerics without overflowing.
			xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
		single := addAll(xs)
		merged := addAll(xs[:cut])
		merged.Merge(addAll(xs[cut:]))
		if merged.N() != single.N() {
			t.Fatalf("N %d != %d", merged.N(), single.N())
		}
		if !relClose(merged.Mean(), single.Mean(), 1e-9) {
			t.Errorf("mean %g != %g (n=%d cut=%d)", merged.Mean(), single.Mean(), n, cut)
		}
		if !relClose(merged.Variance(), single.Variance(), 1e-6) {
			t.Errorf("variance %g != %g (n=%d cut=%d)", merged.Variance(), single.Variance(), n, cut)
		}
	})
}
