package stats

// Merging for the streaming aggregates: when a sweep shards its
// replications (or one long stream) across workers, each shard folds its
// observations into private accumulators and the shards are combined
// afterwards in shard-index order. Welford accumulators merge exactly
// (up to float rounding) with the pairwise update of Chan, Golub and
// LeVeque; P² quantile estimators cannot be merged exactly — the five
// markers are a lossy sketch — so MergeQuantile combines them by
// n-weighted interpolation of the per-shard marker CDFs. Both
// reductions are deterministic functions of the shard list, so a merged
// result is bit-stable for a fixed shard count; across *different*
// shard counts the quantile merge is approximate by construction (the
// mean and variance merges agree to rounding error).

// Merge folds the observations summarized by o into w, as if every one
// of them had been Added to w directly (up to float rounding): the
// pairwise combination of Chan, Golub and LeVeque (1979). Merging a
// zero-value accumulator is the identity in either direction.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	wn, on := float64(w.n), float64(o.n)
	w.mean += delta * on / float64(n)
	w.m2 += o.m2 + delta*delta*wn*on/float64(n)
	w.n = n
}

// cdfAt evaluates the piecewise-linear empirical CDF through the points
// (xs[i], fs[i]) at v: 0 below the first point, 1 above the last,
// linear in between, with zero-width segments treated as steps. xs must
// be sorted ascending.
func cdfAt(xs, fs []float64, v float64) float64 {
	if len(xs) == 1 {
		if v < xs[0] {
			return 0
		}
		return 1
	}
	if v <= xs[0] {
		if v == xs[0] {
			return fs[0]
		}
		return 0
	}
	last := len(xs) - 1
	if v >= xs[last] {
		return 1
	}
	// Find the segment [xs[i], xs[i+1]) containing v.
	lo, hi := 0, last
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if xs[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	dx := xs[hi] - xs[lo]
	if dx <= 0 {
		return fs[hi]
	}
	return fs[lo] + (fs[hi]-fs[lo])*(v-xs[lo])/dx
}

// markerCDF extracts one shard's piecewise-linear CDF support points:
// the exact sorted observations while the estimator is still in its
// boot phase (n <= 5), the five P² markers with their actual rank
// positions afterwards. Returns nil for an empty shard.
func (e *P2Quantile) markerCDF() (xs, fs []float64) {
	if e.n == 0 {
		return nil, nil
	}
	if e.n <= 5 {
		s := append([]float64(nil), e.boot...)
		sortFloat64s(s)
		xs = s
		fs = make([]float64, len(s))
		if len(s) > 1 {
			for i := range s {
				fs[i] = float64(i) / float64(len(s)-1)
			}
		}
		return xs, fs
	}
	xs = append([]float64(nil), e.q[:]...)
	fs = make([]float64, 5)
	for i := range fs {
		fs[i] = (e.pos[i] - 1) / float64(e.n-1)
	}
	return xs, fs
}

// MergeQuantile estimates the p-quantile of the pooled stream behind
// the given per-shard P² estimators: each shard contributes its marker
// CDF weighted by its observation count, and the pooled quantile is the
// value v solving sum_i n_i * F_i(v) = p * N by bisection. Empty
// shards are ignored; a single non-empty shard returns its own Value()
// exactly, so a one-shard sweep is bit-identical to the unsharded run.
// The estimate is deterministic in the shard list (bit-stable at a
// fixed shard count) and approximate across shard counts, exactly like
// the underlying P² sketch is approximate in n.
func MergeQuantile(p float64, shards []*P2Quantile) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: MergeQuantile needs 0 < p < 1")
	}
	type cdf struct {
		xs, fs []float64
		n      float64
	}
	var (
		parts []cdf
		total float64
		last  *P2Quantile
	)
	for _, e := range shards {
		if e == nil || e.n == 0 {
			continue
		}
		xs, fs := e.markerCDF()
		parts = append(parts, cdf{xs: xs, fs: fs, n: float64(e.n)})
		total += float64(e.n)
		last = e
	}
	if len(parts) == 0 {
		return 0
	}
	if len(parts) == 1 {
		return last.Value()
	}
	lo, hi := parts[0].xs[0], parts[0].xs[len(parts[0].xs)-1]
	for _, c := range parts[1:] {
		if x := c.xs[0]; x < lo {
			lo = x
		}
		if x := c.xs[len(c.xs)-1]; x > hi {
			hi = x
		}
	}
	if lo == hi {
		return lo
	}
	target := p * total
	mass := func(v float64) float64 {
		s := 0.0
		for _, c := range parts {
			s += c.n * cdfAt(c.xs, c.fs, v)
		}
		return s
	}
	// Bisection: mass is nondecreasing in v, so 100 halvings pin the
	// crossing far below float precision of the data range.
	for i := 0; i < 100 && lo < hi; i++ {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break
		}
		if mass(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// sortFloat64s is a tiny insertion sort: merge inputs are at most five
// boot observations, not worth pulling sort.Float64s' interface
// machinery into the merge path.
func sortFloat64s(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
