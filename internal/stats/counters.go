package stats

// EventCoreStats counts what the simulation engine's event core did
// over a run: how many events of each kind it processed, how often the
// scheduler actually ran versus short-circuited on the head-blocked
// watermark, and how the calendar queue adapted. The counters are plain
// increments on the hot path — no locks, no allocation — and exist for
// the profiling layer: BENCH_9.json derives events/sec from Events, and
// `simrun -cpuprofile` runs print them so a queue that silently fell
// back to the heap is visible.
type EventCoreStats struct {
	// Events is the total number of job events popped (arrivals, steps,
	// finishes — the denominator of events/sec). FaultEvents counts
	// fault-stream applications, which interleave by time but pop from
	// their own stream.
	Events      int64
	Arrivals    int64
	Steps       int64
	Finishes    int64
	FaultEvents int64

	// SchedRounds counts trySchedule invocations that ran a full policy
	// round; SchedSkips counts the ones the head-blocked watermark
	// proved redundant and skipped in O(1).
	SchedRounds int64
	SchedSkips  int64

	// Calendar-queue adaptation counters, zero under EventQueue "heap":
	// CalResizes counts bucket-array reshapes, CalDirectScans the
	// empty-year cursor jumps, and CalFellBack reports a permanent
	// demotion to the binary heap on a pathological timestamp
	// distribution.
	CalResizes     int64
	CalDirectScans int64
	CalFellBack    bool
}
