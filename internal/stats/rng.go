// Package stats provides the deterministic random-variate generators used
// to synthesize the SDSC Paragon workload and the descriptive statistics
// used by the experiment harness (means, coefficients of variation,
// Pearson correlation, linear regression, histogram binning).
package stats

import (
	"fmt"
	"math/rand"
)

// countingSource wraps a rand.Source and counts Int63 draws. It
// deliberately does NOT implement rand.Source64: math/rand's Rand
// routes every method through Source.Int63 when the source lacks
// Source64 (only Rand.Uint64 differs, and RNG never exposes it), so
// interposing the counter leaves every variate bit-identical while the
// draw count becomes an exact stream position for checkpoint/restore.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// RNG is a deterministic pseudo-random source. All simulator randomness
// flows through RNG so that a (seed, config) pair fully determines a run.
type RNG struct {
	r    *rand.Rand
	cnt  *countingSource
	seed int64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	cnt := &countingSource{src: rand.NewSource(seed)}
	return &RNG{r: rand.New(cnt), cnt: cnt, seed: seed}
}

// NewRNGAt returns a generator seeded with seed and fast-forwarded to
// stream position pos (the value of Pos on the generator being
// restored).
func NewRNGAt(seed int64, pos uint64) *RNG {
	g := NewRNG(seed)
	for g.cnt.n < pos {
		g.cnt.Int63()
	}
	return g
}

// Seed returns the seed the generator was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Pos returns the stream position: the number of raw 63-bit draws
// consumed so far. (seed, Pos) fully determines the generator's future
// output, so snapshots store the pair instead of math/rand's opaque
// internal state.
func (g *RNG) Pos() uint64 { return g.cnt.n }

// SkipTo advances the generator to stream position pos. It errors if
// the generator is already past pos — a restore-time sanity check.
func (g *RNG) SkipTo(pos uint64) error {
	if g.cnt.n > pos {
		return fmt.Errorf("stats: RNG at position %d cannot rewind to %d", g.cnt.n, pos)
	}
	for g.cnt.n < pos {
		g.cnt.Int63()
	}
	return nil
}

// Float64 returns a uniform variate in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform variate in [0,n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// splitmix64 constants (Vigna): the golden-ratio increment and the two
// finalizer multipliers. Mix64 and Splitmix64 share them so a derived
// stream seed and the stream's own state walk use the same mixer.
const (
	smixGamma = 0x9e3779b97f4a7c15
	smixMul1  = 0xbf58476d1ce4e5b9
	smixMul2  = 0x94d049bb133111eb
)

// smix64 applies the splitmix64 finalizer to z.
func smix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * smixMul1
	z = (z ^ (z >> 27)) * smixMul2
	return z ^ (z >> 31)
}

// Mix64 derives the seed of stream number `stream` from a base seed:
// one splitmix64 step at offset stream. Streams are well separated for
// any stream index, so per-node or per-replication generators can be
// minted independently of iteration order — the property the parallel
// fabric and the fault injector both rely on for bit-reproducibility
// at any worker count.
func Mix64(base int64, stream int) int64 {
	return int64(smix64(uint64(base) + uint64(stream)*smixGamma))
}

// Splitmix64 is a tiny counter-based generator: 8 bytes of state, one
// multiply-xorshift per variate, no allocation. It backs the fault
// injector's per-node failure clocks, where thousands of independent
// streams must be cheap to mint and advance lazily.
type Splitmix64 struct {
	state uint64
}

// NewSplitmix64 returns a generator seeded with seed.
func NewSplitmix64(seed int64) *Splitmix64 { return &Splitmix64{state: uint64(seed)} }

// State returns the raw counter state; SetState restores it. The pair
// makes a Splitmix64 snapshot exactly 8 bytes.
func (g *Splitmix64) State() uint64 { return g.state }

// SetState restores a state previously returned by State.
func (g *Splitmix64) SetState(s uint64) { g.state = s }

// Next returns the next raw 64-bit value.
func (g *Splitmix64) Next() uint64 {
	g.state += smixGamma
	return smix64(g.state)
}

// Float64 returns a uniform variate in [0,1) with 53 random bits.
func (g *Splitmix64) Float64() float64 {
	return float64(g.Next()>>11) / (1 << 53)
}
