// Package stats provides the deterministic random-variate generators used
// to synthesize the SDSC Paragon workload and the descriptive statistics
// used by the experiment harness (means, coefficients of variation,
// Pearson correlation, linear regression, histogram binning).
package stats

import "math/rand"

// RNG is a deterministic pseudo-random source. All simulator randomness
// flows through RNG so that a (seed, config) pair fully determines a run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform variate in [0,n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
