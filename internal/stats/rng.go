// Package stats provides the deterministic random-variate generators used
// to synthesize the SDSC Paragon workload and the descriptive statistics
// used by the experiment harness (means, coefficients of variation,
// Pearson correlation, linear regression, histogram binning).
package stats

import "math/rand"

// RNG is a deterministic pseudo-random source. All simulator randomness
// flows through RNG so that a (seed, config) pair fully determines a run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform variate in [0,n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// splitmix64 constants (Vigna): the golden-ratio increment and the two
// finalizer multipliers. Mix64 and Splitmix64 share them so a derived
// stream seed and the stream's own state walk use the same mixer.
const (
	smixGamma = 0x9e3779b97f4a7c15
	smixMul1  = 0xbf58476d1ce4e5b9
	smixMul2  = 0x94d049bb133111eb
)

// smix64 applies the splitmix64 finalizer to z.
func smix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * smixMul1
	z = (z ^ (z >> 27)) * smixMul2
	return z ^ (z >> 31)
}

// Mix64 derives the seed of stream number `stream` from a base seed:
// one splitmix64 step at offset stream. Streams are well separated for
// any stream index, so per-node or per-replication generators can be
// minted independently of iteration order — the property the parallel
// fabric and the fault injector both rely on for bit-reproducibility
// at any worker count.
func Mix64(base int64, stream int) int64 {
	return int64(smix64(uint64(base) + uint64(stream)*smixGamma))
}

// Splitmix64 is a tiny counter-based generator: 8 bytes of state, one
// multiply-xorshift per variate, no allocation. It backs the fault
// injector's per-node failure clocks, where thousands of independent
// streams must be cheap to mint and advance lazily.
type Splitmix64 struct {
	state uint64
}

// NewSplitmix64 returns a generator seeded with seed.
func NewSplitmix64(seed int64) *Splitmix64 { return &Splitmix64{state: uint64(seed)} }

// Next returns the next raw 64-bit value.
func (g *Splitmix64) Next() uint64 {
	g.state += smixGamma
	return smix64(g.state)
}

// Float64 returns a uniform variate in [0,1) with 53 random bits.
func (g *Splitmix64) Float64() float64 {
	return float64(g.Next()>>11) / (1 << 53)
}
