package stats

import (
	"math"
	"sort"
	"testing"
)

func TestWelfordMatchesExact(t *testing.T) {
	rng := NewRNG(7)
	xs := make([]float64, 0, 10000)
	var w Welford
	for i := 0; i < 10000; i++ {
		x := rng.NormFloat64()*3 + 17
		xs = append(xs, x)
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if rel := math.Abs(w.Mean()-Mean(xs)) / math.Abs(Mean(xs)); rel > 1e-12 {
		t.Fatalf("Welford mean %g vs exact %g (rel %g)", w.Mean(), Mean(xs), rel)
	}
	if rel := math.Abs(w.Variance()-Variance(xs)) / Variance(xs); rel > 1e-9 {
		t.Fatalf("Welford variance %g vs exact %g (rel %g)", w.Variance(), Variance(xs), rel)
	}
	if w.StdDev() != math.Sqrt(w.Variance()) {
		t.Fatal("StdDev/Variance inconsistent")
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Fatal("zero value not zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Fatalf("single observation: mean %g var %g", w.Mean(), w.Variance())
	}
}

// TestP2QuantileKnownDistributions checks the P² estimate against the
// exact sample quantile on streams drawn from distributions with very
// different shapes: uniform, exponential (heavy right tail), normal,
// and a heavy-tailed lognormal like the SDSC runtimes.
func TestP2QuantileKnownDistributions(t *testing.T) {
	const n = 50000
	dists := []struct {
		name   string
		sample func(*RNG) float64
	}{
		{"uniform", func(r *RNG) float64 { return r.Float64() }},
		{"exponential", func(r *RNG) float64 { return r.ExpFloat64() * 100 }},
		{"normal", func(r *RNG) float64 { return r.NormFloat64()*5 + 50 }},
		{"lognormal", func(r *RNG) float64 { return math.Exp(r.NormFloat64()*1.13 + 8) }},
	}
	for _, d := range dists {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			rng := NewRNG(11)
			est := NewP2Quantile(p)
			xs := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				x := d.sample(rng)
				xs = append(xs, x)
				est.Add(x)
			}
			exact := Percentile(xs, p*100)
			got := est.Value()
			// P² converges to a few percent on smooth distributions at
			// this stream length; the tail quantiles of the lognormal
			// are the hardest case.
			if rel := math.Abs(got-exact) / exact; rel > 0.05 {
				t.Errorf("%s p=%g: P² %g vs exact %g (rel %g)", d.name, p, got, exact, rel)
			}
		}
	}
}

// TestP2QuantileShortStreamsExact pins the exact-order-statistic
// behaviour for five or fewer observations.
func TestP2QuantileShortStreamsExact(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatal("empty estimator should report 0")
	}
	obs := []float64{9, 1, 5, 3, 7}
	for i, x := range obs {
		est.Add(x)
		s := append([]float64(nil), obs[:i+1]...)
		sort.Float64s(s)
		if got, want := est.Value(), Percentile(s, 50); got != want {
			t.Fatalf("after %d obs: Value %g, want exact %g", i+1, got, want)
		}
	}
	if est.N() != 5 {
		t.Fatalf("N = %d", est.N())
	}
}

// TestP2QuantileMonotoneMarkers feeds a sorted stream; the estimate
// must stay within the observed range and close to the true quantile.
func TestP2QuantileMonotoneMarkers(t *testing.T) {
	est := NewP2Quantile(0.5)
	const n = 1001
	for i := 0; i < n; i++ {
		est.Add(float64(i))
	}
	if v := est.Value(); v < 0 || v > n-1 {
		t.Fatalf("estimate %g outside observed range", v)
	}
	if v := est.Value(); math.Abs(v-500) > 25 {
		t.Fatalf("median of 0..1000 estimated at %g", v)
	}
}

func TestP2QuantileRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%g should panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}
