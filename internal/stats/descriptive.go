package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (standard deviation over mean) of
// xs, or 0 when the mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank interpolation. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when the inputs are shorter than two points or either series
// is constant. It panics on length mismatch.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson needs equal-length series")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinReg fits y = a + b*x by least squares and returns the intercept a and
// slope b. It returns (0, 0) for fewer than two points or constant x. It
// panics on length mismatch.
func LinReg(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) {
		panic("stats: LinReg needs equal-length series")
	}
	if len(xs) < 2 {
		return 0, 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}

// Bin is one histogram bucket: the half-open interval [Lo, Hi) and the
// mean of the y values whose x fell in it.
type Bin struct {
	Lo, Hi float64
	Count  int
	MeanY  float64
}

// BinXY buckets the (x, y) points into n equal-width bins over the x range
// and reports the mean y per bin, the standard scatter-plot summary used
// for the paper's Figures 9 and 10. Empty input or n <= 0 yields nil.
func BinXY(xs, ys []float64, n int) []Bin {
	if len(xs) == 0 || len(xs) != len(ys) || n <= 0 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(n)
	bins := make([]Bin, n)
	sums := make([]float64, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = bins[i].Lo + width
	}
	for i, x := range xs {
		b := int((x - lo) / width)
		if b >= n {
			b = n - 1
		}
		bins[b].Count++
		sums[b] += ys[i]
	}
	for i := range bins {
		if bins[i].Count > 0 {
			bins[i].MeanY = sums[i] / float64(bins[i].Count)
		}
	}
	return bins
}
