package stats

import (
	"math"
	"sort"
)

// Streaming (single-pass, O(1)-memory) aggregates for open-system
// simulation: a Welford mean/variance accumulator and the P² quantile
// estimator, so million-job engine runs need not retain per-job records
// to report their summary statistics.

// Welford accumulates mean and variance online with Welford's update,
// numerically stable over arbitrarily long streams. The zero value is
// ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 before any observation.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance, or 0 for fewer than
// two observations, matching Variance on the retained series.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// WelfordState is the serializable state of a Welford accumulator.
type WelfordState struct {
	N    int
	Mean float64
	M2   float64
}

// State captures the accumulator for a snapshot.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2}
}

// SetState restores a state previously returned by State.
func (w *Welford) SetState(s WelfordState) {
	w.n, w.mean, w.m2 = s.N, s.Mean, s.M2
}

// P2Quantile estimates one quantile of a stream in O(1) memory with the
// P² algorithm of Jain and Chlamtac (CACM 1985): five markers straddle
// the target quantile and are nudged toward their desired rank
// positions by piecewise-parabolic interpolation as observations
// arrive. The first five observations are held exactly, so short
// streams report exact order statistics.
type P2Quantile struct {
	p    float64
	n    int
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based ranks)
	des  [5]float64 // desired marker positions
	inc  [5]float64 // per-observation desired-position increments
	boot []float64  // first five observations, pre-initialization
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1
// (0.5 = median). It panics on an out-of-range p.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P2Quantile needs 0 < p < 1")
	}
	return &P2Quantile{
		p:   p,
		inc: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// P2State is the serializable state of a P2Quantile estimator: the
// five marker heights/positions/targets plus the bootstrap buffer that
// holds the first five observations exactly.
type P2State struct {
	P    float64
	N    int
	Q    [5]float64
	Pos  [5]float64
	Des  [5]float64
	Inc  [5]float64
	Boot []float64
}

// State captures the estimator for a snapshot.
func (e *P2Quantile) State() P2State {
	return P2State{
		P: e.p, N: e.n, Q: e.q, Pos: e.pos, Des: e.des, Inc: e.inc,
		Boot: append([]float64(nil), e.boot...),
	}
}

// SetState restores a state previously returned by State.
func (e *P2Quantile) SetState(s P2State) {
	e.p, e.n, e.q, e.pos, e.des, e.inc = s.P, s.N, s.Q, s.Pos, s.Des, s.Inc
	e.boot = append(e.boot[:0], s.Boot...)
}

// Add folds one observation into the estimator.
func (e *P2Quantile) Add(x float64) {
	e.n++
	if e.n <= 5 {
		e.boot = append(e.boot, x)
		if e.n == 5 {
			sort.Float64s(e.boot)
			for i := 0; i < 5; i++ {
				e.q[i] = e.boot[i]
				e.pos[i] = float64(i + 1)
			}
			p := e.p
			e.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}

	// Locate the cell k with q[k] <= x < q[k+1], extending the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.des[i] += e.inc[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			qn := e.parabolic(i, s)
			if !(e.q[i-1] < qn && qn < e.q[i+1]) {
				qn = e.linear(i, s)
			}
			e.q[i] = qn
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots
// a neighboring marker.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// N returns the number of observations seen.
func (e *P2Quantile) N() int { return e.n }

// Value returns the current quantile estimate: exact for five or fewer
// observations, the P² middle marker afterwards. It returns 0 before
// any observation.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n <= 5 {
		s := append([]float64(nil), e.boot...)
		sort.Float64s(s)
		return Percentile(s, e.p*100)
	}
	return e.q[2]
}
