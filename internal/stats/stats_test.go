package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverge")
		}
	}
}

func TestExponentialMoments(t *testing.T) {
	d := Exponential{MeanVal: 50}
	if d.Mean() != 50 || d.CV() != 1 {
		t.Fatalf("exponential moments: %g, %g", d.Mean(), d.CV())
	}
	assertSampleMoments(t, d, 0.05)
}

func TestHyperExp2Fit(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{1301, 3.7}, {100, 1.0}, {10, 2.0}, {1e6, 5.5},
	} {
		d := NewHyperExp2(tc.mean, tc.cv)
		if math.Abs(d.Mean()-tc.mean)/tc.mean > 1e-9 {
			t.Errorf("fit mean = %g, want %g", d.Mean(), tc.mean)
		}
		if math.Abs(d.CV()-tc.cv)/tc.cv > 1e-9 {
			t.Errorf("fit cv = %g, want %g", d.CV(), tc.cv)
		}
	}
}

func TestHyperExp2RejectsLowCV(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cv < 1 should panic")
		}
	}()
	NewHyperExp2(10, 0.5)
}

func TestHyperExp2Sampling(t *testing.T) {
	assertSampleMoments(t, NewHyperExp2(1000, 3.0), 0.15)
}

func TestLognormalFit(t *testing.T) {
	d := NewLognormal(10944, 1.13)
	if math.Abs(d.Mean()-10944)/10944 > 1e-9 {
		t.Errorf("lognormal mean = %g", d.Mean())
	}
	if math.Abs(d.CV()-1.13)/1.13 > 1e-9 {
		t.Errorf("lognormal cv = %g", d.CV())
	}
	assertSampleMoments(t, d, 0.1)
}

// assertSampleMoments draws 200k samples and compares empirical moments
// with the analytic ones within relative tolerance tol.
func assertSampleMoments(t *testing.T, d Dist, tol float64) {
	t.Helper()
	g := NewRNG(99)
	n := 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := d.Sample(g)
		if x < 0 {
			t.Fatal("negative sample")
		}
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sum2/float64(n) - mean*mean)
	if math.Abs(mean-d.Mean())/d.Mean() > tol {
		t.Errorf("sample mean %g vs analytic %g", mean, d.Mean())
	}
	if math.Abs(sd/mean-d.CV())/d.CV() > tol+0.05 {
		t.Errorf("sample cv %g vs analytic %g", sd/mean, d.CV())
	}
}

func TestDiscreteDistMoments(t *testing.T) {
	d := NewDiscreteDist([]int{1, 2, 4}, []float64{1, 1, 2})
	// mean = (1 + 2 + 8)/4 = 2.75; E[X^2] = (1 + 4 + 32)/4 = 9.25.
	if math.Abs(d.Mean()-2.75) > 1e-12 {
		t.Fatalf("mean = %g", d.Mean())
	}
	wantCV := math.Sqrt(9.25-2.75*2.75) / 2.75
	if math.Abs(d.CV()-wantCV) > 1e-12 {
		t.Fatalf("cv = %g, want %g", d.CV(), wantCV)
	}
}

func TestDiscreteDistSampling(t *testing.T) {
	d := NewDiscreteDist([]int{3, 7}, []float64{0.25, 0.75})
	g := NewRNG(1)
	counts := map[int]int{}
	for i := 0; i < 100000; i++ {
		counts[d.SampleInt(g)]++
	}
	if len(counts) != 2 {
		t.Fatalf("support hit = %v", counts)
	}
	frac := float64(counts[7]) / 100000
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("P(7) = %g, want 0.75", frac)
	}
}

func TestDiscreteDistPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewDiscreteDist(nil, nil) },
		func() { NewDiscreteDist([]int{1}, []float64{1, 2}) },
		func() { NewDiscreteDist([]int{1}, []float64{-1}) },
		func() { NewDiscreteDist([]int{1, 2}, []float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDescriptiveBasics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %g", got)
	}
	if got := CV(xs); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("CV = %g", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 || CV(nil) != 0 {
		t.Fatal("degenerate inputs should be zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {12.5, 15},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("P%g = %g, want %g", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation r = %g", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation r = %g", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := Pearson(xs, flat); got != 0 {
		t.Fatalf("constant series r = %g", got)
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestLinReg(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := LinReg(xs, ys)
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("LinReg = %g + %g x", a, b)
	}
	a, b = LinReg([]float64{2, 2}, []float64{1, 5})
	if a != 0 || b != 0 {
		t.Fatal("constant x should give zero fit")
	}
}

func TestPearsonBounds(t *testing.T) {
	// Property: |r| <= 1 for any non-degenerate input pair.
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r := Pearson(xs, ys)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinXY(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	bins := BinXY(xs, ys, 5)
	if len(bins) != 5 {
		t.Fatalf("%d bins", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 10 {
		t.Fatalf("bins cover %d points", total)
	}
	// First bin holds x in [0, 1.8): points 0 and 1, mean y 5.
	if bins[0].Count != 2 || bins[0].MeanY != 5 {
		t.Fatalf("first bin = %+v", bins[0])
	}
	if BinXY(nil, nil, 3) != nil || BinXY(xs, ys, 0) != nil {
		t.Fatal("degenerate binning should be nil")
	}
}

func TestBinXYConstantX(t *testing.T) {
	bins := BinXY([]float64{5, 5, 5}, []float64{1, 2, 3}, 4)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("constant-x binning lost points: %v", bins)
	}
}
