// Package snap implements the versioned, checksummed binary container
// used by engine checkpoints. A snapshot is
//
//	magic "MSNP" | version uint32 | payload length uint64 | payload | CRC32
//
// all little-endian, with the CRC (IEEE) covering magic, version,
// length, and payload. The payload itself is a flat sequence of typed
// primitives written by Writer and read back by Reader; the layout is
// defined entirely by the code that writes it, so the container stays
// schema-free and the version number gates layout changes.
//
// Reader is sticky-error and bounds-checked: any read past the payload,
// any length prefix larger than the remaining bytes, and any malformed
// container surface as typed errors (ErrBadMagic, ErrVersion,
// ErrChecksum, ErrCorrupt) — never a panic — so corrupt or truncated
// snapshots from a crashed writer are rejected cleanly.
package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic identifies a snapshot container.
const Magic = "MSNP"

// Version is the current container layout version. Bump it whenever
// the payload layout written by the engine changes incompatibly; old
// snapshots are then rejected with ErrVersion rather than misread.
const Version uint32 = 1

// maxPayload bounds the declared payload length so a corrupt header
// cannot trigger a huge allocation before the checksum is verified.
const maxPayload = 1 << 32

// Typed container errors. They are wrapped with detail; match with
// errors.Is.
var (
	ErrBadMagic = errors.New("snap: bad magic (not a snapshot)")
	ErrVersion  = errors.New("snap: unsupported snapshot version")
	ErrChecksum = errors.New("snap: checksum mismatch")
	ErrCorrupt  = errors.New("snap: corrupt or truncated snapshot")
)

// Writer accumulates a payload of typed primitives and emits the
// framed, checksummed container with Flush.
type Writer struct {
	buf bytes.Buffer
	tmp [8]byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// U64 appends an unsigned 64-bit value.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.tmp[:], v)
	w.buf.Write(w.tmp[:])
}

// I64 appends a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int.
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// F64 appends a float64 by bit pattern (NaN and ±Inf round-trip).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf.WriteByte(b)
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	w.buf.Write(p)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf.WriteString(s)
}

// Len returns the current payload size in bytes.
func (w *Writer) Len() int { return w.buf.Len() }

// Flush writes the framed container (magic, version, length, payload,
// CRC32) to out. The Writer keeps its payload, so Flush may be retried
// on a transient write error.
func (w *Writer) Flush(out io.Writer) error {
	head := make([]byte, 0, 16)
	head = append(head, Magic...)
	head = binary.LittleEndian.AppendUint32(head, Version)
	head = binary.LittleEndian.AppendUint64(head, uint64(w.buf.Len()))
	crc := crc32.NewIEEE()
	crc.Write(head)
	crc.Write(w.buf.Bytes())
	if _, err := out.Write(head); err != nil {
		return err
	}
	if _, err := out.Write(w.buf.Bytes()); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := out.Write(tail[:])
	return err
}

// Reader decodes a container produced by Writer. All reads are
// sticky-error: after the first failure every subsequent read returns
// the zero value and Err reports the failure, so decode loops need a
// single error check at the end.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader consumes the whole stream from r, validates the container
// framing and checksum, and returns a Reader positioned at the start of
// the payload. It returns ErrBadMagic, ErrVersion, ErrChecksum, or
// ErrCorrupt (wrapped with detail) on a malformed container.
func NewReader(r io.Reader) (*Reader, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return newReaderBytes(raw)
}

func newReaderBytes(raw []byte) (*Reader, error) {
	const headLen = 4 + 4 + 8
	if len(raw) < headLen+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the container framing", ErrCorrupt, len(raw))
	}
	if string(raw[:4]) != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, raw[:4])
	}
	ver := binary.LittleEndian.Uint32(raw[4:8])
	if ver != Version {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads version %d", ErrVersion, ver, Version)
	}
	plen := binary.LittleEndian.Uint64(raw[8:16])
	if plen > maxPayload || int(plen) != len(raw)-headLen-4 {
		return nil, fmt.Errorf("%w: declared payload %d bytes, container holds %d", ErrCorrupt, plen, len(raw)-headLen-4)
	}
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	got := crc32.ChecksumIEEE(raw[:len(raw)-4])
	if got != want {
		return nil, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, got, want)
	}
	return &Reader{data: raw[headLen : len(raw)-4]}, nil
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread payload bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// U64 reads an unsigned 64-bit value.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("u64 past end of payload (offset %d of %d)", r.off, len(r.data))
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.data) {
		r.fail("bool past end of payload (offset %d of %d)", r.off, len(r.data))
		return false
	}
	b := r.data[r.off]
	r.off++
	if b > 1 {
		r.fail("bool byte %#x at offset %d", b, r.off-1)
		return false
	}
	return b == 1
}

// Bytes reads a length-prefixed byte slice. The returned slice aliases
// the Reader's buffer; copy it if it must outlive the Reader.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("byte slice of %d exceeds %d remaining payload bytes", n, len(r.data)-r.off)
		return nil
	}
	p := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Count reads a non-negative element count bounded by max, for sizing
// slice allocations before their contents are decoded. A corrupt count
// fails the Reader instead of triggering a huge allocation.
func (r *Reader) Count(max int) int {
	n := r.I64()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > int64(max) {
		r.fail("count %d outside [0, %d]", n, max)
		return 0
	}
	return int(n)
}
