package snap

import (
	"bytes"
	"errors"
	"testing"
)

// TestRoundTrip writes every primitive and reads it back.
func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U64(42)
	w.I64(-7)
	w.Int(123456)
	w.F64(3.14159)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -7 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 123456 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

// container returns a small valid snapshot for corruption tests.
func container(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	w.U64(1)
	w.String("payload")
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBadMagic(t *testing.T) {
	raw := container(t)
	raw[0] = 'X'
	if _, err := NewReader(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	raw := container(t)
	raw[4] = 99
	if _, err := NewReader(bytes.NewReader(raw)); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestChecksumMismatch(t *testing.T) {
	raw := container(t)
	raw[len(raw)-6] ^= 0x40 // flip a payload bit
	if _, err := NewReader(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestTruncated(t *testing.T) {
	raw := container(t)
	for cut := 0; cut < len(raw); cut++ {
		_, err := NewReader(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("truncation to %d: untyped error %v", cut, err)
		}
	}
}

// TestStickyReads verifies reading past the payload end is a typed
// error, not a panic, and subsequent reads stay failed.
func TestStickyReads(t *testing.T) {
	w := NewWriter()
	w.U64(7)
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r.U64()
	if got := r.U64(); got != 0 {
		t.Errorf("read past end = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
	if got := r.String(); got != "" {
		t.Errorf("sticky String = %q", got)
	}
}

// TestHugeLengthPrefix: a byte-slice length pointing past the payload
// must fail, not allocate or slice out of range.
func TestHugeLengthPrefix(t *testing.T) {
	w := NewWriter()
	w.U64(1 << 60) // bogus length with no bytes behind it
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Bytes(); got != nil {
		t.Errorf("Bytes = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
}

// FuzzReader throws arbitrary bytes at the container framing and, when
// a container is accepted, at every primitive decoder. Nothing here may
// panic; every rejection must carry one of the typed sentinels.
func FuzzReader(f *testing.F) {
	w := NewWriter()
	w.U64(42)
	w.String("seed")
	w.Bool(true)
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:5])
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped container rejection: %v", err)
			}
			return
		}
		r.U64()
		_ = r.String()
		r.Count(16)
		r.F64()
		r.Bool()
		_ = r.Bytes()
		if err := r.Err(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}

func TestCountBounds(t *testing.T) {
	w := NewWriter()
	w.Int(10)
	w.Int(-3)
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Count(100); got != 10 {
		t.Errorf("Count = %d", got)
	}
	if got := r.Count(100); got != 0 || r.Err() == nil {
		t.Errorf("negative count accepted: %d, err %v", got, r.Err())
	}
}
