package topo

// Dimension-ordered routing, generalized from the 2-D x-y algorithm of
// Paragon-/CPlant-style mesh routers: resolve one axis completely before
// moving to the next. Ascending axis order (axis 0 first) is the n-D
// generalization of x-y routing; descending order generalizes y-x, the
// alternative deterministic routing used for routing-sensitivity
// studies. On a torus each axis takes the shorter way around (positive
// on ties).

// Route returns the ascending dimension-ordered route from src to dst as
// the ordered sequence of directed links traversed. An empty slice means
// src == dst.
func (g *Grid) Route(src, dst int) []Link {
	return g.AppendRoute(make([]Link, 0, g.Dist(src, dst)), src, dst)
}

// AppendRoute appends the ascending dimension-ordered route from src to
// dst to links and returns the extended slice. It is the
// allocation-free variant of Route for callers that reuse a scratch
// buffer per message.
func (g *Grid) AppendRoute(links []Link, src, dst int) []Link {
	return g.appendRouteDimOrdered(links, src, dst, true)
}

// AppendRouteRev is AppendRoute with the axes resolved in descending
// order (the n-D generalization of y-x routing).
func (g *Grid) AppendRouteRev(links []Link, src, dst int) []Link {
	return g.appendRouteDimOrdered(links, src, dst, false)
}

func (g *Grid) appendRouteDimOrdered(links []Link, src, dst int, asc bool) []Link {
	cur, d := g.Coord(src), g.Coord(dst)
	// id is maintained incrementally: one multiply-free update per hop
	// instead of a full ID recomputation.
	id := src
	if asc {
		for axis := 0; axis < g.nd; axis++ {
			links, id = g.appendAxisHops(links, &cur, id, axis, d[axis])
		}
	} else {
		for axis := g.nd - 1; axis >= 0; axis-- {
			links, id = g.appendAxisHops(links, &cur, id, axis, d[axis])
		}
	}
	return links
}

// axisDir picks the traversal direction along one axis; on a torus it
// takes the shorter way around (positive on ties).
func (g *Grid) axisDir(from, to, axis int) Dir {
	pos, neg := Dir(2*axis), Dir(2*axis+1)
	if !g.torus {
		if to > from {
			return pos
		}
		return neg
	}
	extent := g.dim[axis]
	forward := ((to - from) + extent) % extent
	if forward <= extent-forward {
		return pos
	}
	return neg
}

// appendAxisHops walks cur along one axis to the target coordinate,
// appending the links traversed and returning the updated id.
func (g *Grid) appendAxisHops(links []Link, cur *Point, id, axis, target int) ([]Link, int) {
	extent, stride := g.dim[axis], g.stride[axis]
	for cur[axis] != target {
		dir := g.axisDir(cur[axis], target, axis)
		links = append(links, Link{From: id, Dir: dir})
		if dir.Positive() {
			cur[axis]++
			id += stride
			if cur[axis] == extent {
				cur[axis] = 0
				id -= extent * stride
			}
		} else {
			cur[axis]--
			id -= stride
			if cur[axis] < 0 {
				cur[axis] = extent - 1
				id += extent * stride
			}
		}
	}
	return links, id
}

// RouteLen returns the number of links on the dimension-ordered route
// from src to dst, which equals the (torus-aware) Manhattan distance.
func (g *Grid) RouteLen(src, dst int) int { return g.Dist(src, dst) }
