package topo

import (
	"reflect"
	"sort"
	"testing"
)

// --- Reference implementations: literal transcriptions of the original
// 2-D mesh algorithms, kept here so the generic walkers are provably
// bit-compatible with the code they replaced.

type refMesh struct{ w, h int }

func (m refMesh) ring(c Point, r int) []int {
	var ids []int
	if r == 0 {
		if c[0] >= 0 && c[0] < m.w && c[1] >= 0 && c[1] < m.h {
			ids = append(ids, c[1]*m.w+c[0])
		}
		return ids
	}
	for dy := -r; dy <= r; dy++ {
		y := c[1] + dy
		if y < 0 || y >= m.h {
			continue
		}
		dx := r - abs(dy)
		if x := c[0] - dx; x >= 0 && x < m.w {
			ids = append(ids, y*m.w+x)
		}
		if dx > 0 {
			if x := c[0] + dx; x >= 0 && x < m.w {
				ids = append(ids, y*m.w+x)
			}
		}
	}
	return ids
}

func (m refMesh) shell(c Point, w, h, k int) []int {
	type box struct{ ox, oy, w, h int }
	centered := func(cw, ch int) box {
		return box{ox: c[0] - cw/2, oy: c[1] - ch/2, w: cw, h: ch}
	}
	contains := func(b box, x, y int) bool {
		return x >= b.ox && x < b.ox+b.w && y >= b.oy && y < b.oy+b.h
	}
	outer := centered(w+2*k, h+2*k)
	inner := box{}
	if k > 0 {
		inner = centered(w+2*(k-1), h+2*(k-1))
	}
	var ids []int
	for y := outer.oy; y < outer.oy+outer.h; y++ {
		for x := outer.ox; x < outer.ox+outer.w; x++ {
			if (k > 0 && contains(inner, x, y)) || x < 0 || x >= m.w || y < 0 || y >= m.h {
				continue
			}
			ids = append(ids, y*m.w+x)
		}
	}
	return ids
}

func TestIDCoordRoundTrip(t *testing.T) {
	for _, dims := range [][]int{{7}, {16, 22}, {8, 8, 8}, {3, 4, 5}, {2, 3, 4, 5}} {
		g := New(dims)
		for id := 0; id < g.Size(); id++ {
			p := g.Coord(id)
			if !g.Contains(p) {
				t.Fatalf("dims %v: Coord(%d) = %v not contained", dims, id, p)
			}
			if back := g.ID(p); back != id {
				t.Fatalf("dims %v: ID(Coord(%d)) = %d", dims, id, back)
			}
		}
	}
}

func TestIDMatches2DRowMajor(t *testing.T) {
	g := New([]int{16, 22})
	for y := 0; y < 22; y++ {
		for x := 0; x < 16; x++ {
			if got, want := g.ID(XY(x, y)), y*16+x; got != want {
				t.Fatalf("ID(%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestID3DMatchesCubeOrder(t *testing.T) {
	// The cube package always used x-fastest ids: (z*h+y)*w + x.
	g := New([]int{4, 5, 6})
	for z := 0; z < 6; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 4; x++ {
				if got, want := g.ID(XYZ(x, y, z)), (z*5+y)*4+x; got != want {
					t.Fatalf("ID(%d,%d,%d) = %d, want %d", x, y, z, got, want)
				}
			}
		}
	}
}

func TestDistTorus(t *testing.T) {
	g := NewTorus([]int{8, 8, 8})
	a, b := g.ID(XYZ(0, 0, 0)), g.ID(XYZ(7, 7, 7))
	if d := g.Dist(a, b); d != 3 {
		t.Fatalf("torus corner distance = %d, want 3", d)
	}
	p := New([]int{8, 8, 8})
	if d := p.Dist(a, b); d != 21 {
		t.Fatalf("mesh corner distance = %d, want 21", d)
	}
}

func TestRouteProperties(t *testing.T) {
	for _, tc := range []struct {
		dims  []int
		torus bool
	}{
		{[]int{16, 22}, false},
		{[]int{16, 16}, true},
		{[]int{8, 8, 8}, false},
		{[]int{4, 6, 5}, true},
	} {
		var g *Grid
		if tc.torus {
			g = NewTorus(tc.dims)
		} else {
			g = New(tc.dims)
		}
		for _, pair := range [][2]int{{0, g.Size() - 1}, {g.Size() / 2, 3}, {5, 5}, {1, g.Size() / 3}} {
			src, dst := pair[0], pair[1]
			for _, rev := range []bool{false, true} {
				var route []Link
				if rev {
					route = g.AppendRouteRev(nil, src, dst)
				} else {
					route = g.Route(src, dst)
				}
				if len(route) != g.Dist(src, dst) {
					t.Fatalf("dims %v torus %v: route %d->%d has %d links, want %d",
						tc.dims, tc.torus, src, dst, len(route), g.Dist(src, dst))
				}
				// Walk the route link by link and confirm it lands on dst.
				cur := src
				for _, l := range route {
					if l.From != cur {
						t.Fatalf("dims %v: route %d->%d link from %d, at %d", tc.dims, src, dst, l.From, cur)
					}
					nb, ok := g.Neighbor(cur, l.Dir)
					if !ok {
						t.Fatalf("dims %v: route %d->%d walks off the grid", tc.dims, src, dst)
					}
					cur = nb
				}
				if cur != dst {
					t.Fatalf("dims %v torus %v rev %v: route %d->%d ends at %d", tc.dims, tc.torus, rev, src, dst, cur)
				}
			}
		}
	}
}

func TestRouteMatches2DXYOrder(t *testing.T) {
	// Ascending dimension order must resolve x before y, as the 2-D
	// router always did.
	g := New([]int{16, 22})
	route := g.Route(g.ID(XY(2, 3)), g.ID(XY(5, 7)))
	want := []Link{
		{From: g.ID(XY(2, 3)), Dir: 0}, {From: g.ID(XY(3, 3)), Dir: 0}, {From: g.ID(XY(4, 3)), Dir: 0},
		{From: g.ID(XY(5, 3)), Dir: 2}, {From: g.ID(XY(5, 4)), Dir: 2}, {From: g.ID(XY(5, 5)), Dir: 2},
		{From: g.ID(XY(5, 6)), Dir: 2},
	}
	if !reflect.DeepEqual(route, want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
}

func TestShellMatches2DReference(t *testing.T) {
	g := New([]int{16, 22})
	ref := refMesh{w: 16, h: 22}
	for _, c := range []Point{XY(8, 11), XY(0, 0), XY(15, 21), XY(3, 20)} {
		for _, wh := range [][2]int{{1, 1}, {4, 4}, {5, 3}} {
			for k := 0; k <= 8; k++ {
				ext := XY(wh[0], wh[1])
				got := g.AppendShell(nil, c, ext, k)
				want := ref.shell(c, wh[0], wh[1], k)
				if !sliceEq(got, want) {
					t.Fatalf("shell c=%v ext=%v k=%d: got %v want %v", c, ext, k, got, want)
				}
				// ShellEach must visit the same ids in the same order.
				var each []int
				g.ShellEach(c, ext, k, func(id int) bool {
					each = append(each, id)
					return true
				})
				if !sliceEq(each, want) {
					t.Fatalf("ShellEach c=%v ext=%v k=%d: got %v want %v", c, ext, k, each, want)
				}
			}
		}
	}
}

func TestShell3DSurface(t *testing.T) {
	g := New([]int{8, 8, 8})
	c := XYZ(4, 4, 4)
	// Shell 0 of a 2x2x2 box is the box; shell 1 is the surface of the
	// 4x4x4 box: 64 - 8 = 56 nodes.
	if n := len(g.Shell(c, XYZ(2, 2, 2), 0)); n != 8 {
		t.Fatalf("shell 0 has %d nodes, want 8", n)
	}
	if n := len(g.Shell(c, XYZ(2, 2, 2), 1)); n != 56 {
		t.Fatalf("shell 1 has %d nodes, want 56", n)
	}
	// Shells partition the grid: every node appears in exactly one shell.
	seen := make([]int, g.Size())
	for k := 0; k <= g.MaxShells(); k++ {
		for _, id := range g.Shell(c, XYZ(2, 2, 2), k) {
			seen[id]++
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("node %d appears in %d shells", id, n)
		}
	}
}

func TestRingMatches2DReference(t *testing.T) {
	g := New([]int{16, 22})
	ref := refMesh{w: 16, h: 22}
	for _, c := range []Point{XY(8, 11), XY(0, 0), XY(15, 0), XY(2, 21)} {
		for r := 0; r <= 40; r++ {
			got := g.AppendRing(nil, c, r)
			want := ref.ring(c, r)
			if !sliceEq(got, want) {
				t.Fatalf("ring c=%v r=%d: got %v want %v", c, r, got, want)
			}
		}
	}
}

func TestRing3D(t *testing.T) {
	g := New([]int{8, 8, 8})
	c := XYZ(4, 4, 4)
	total := 0
	for r := 0; r <= 24; r++ {
		ring := g.Ring(c, r)
		for _, id := range ring {
			if d := g.Coord(id).Manhattan(c); d != r {
				t.Fatalf("ring %d contains node at distance %d", r, d)
			}
		}
		// Row-major order within the ring.
		for i := 1; i < len(ring); i++ {
			if ring[i] <= ring[i-1] {
				t.Fatalf("ring %d not in row-major order: %v", r, ring)
			}
		}
		total += len(ring)
	}
	if total != g.Size() {
		t.Fatalf("rings cover %d nodes, want %d", total, g.Size())
	}
}

func TestLinkIndexRoundTrip(t *testing.T) {
	for _, dims := range [][]int{{16, 22}, {8, 8, 8}} {
		g := New(dims)
		seen := make([]bool, g.NumLinks())
		for id := 0; id < g.Size(); id++ {
			for d := Dir(0); int(d) < g.NumDirs(); d++ {
				l := Link{From: id, Dir: d}
				idx := g.LinkIndex(l)
				if idx < 0 || idx >= g.NumLinks() || seen[idx] {
					t.Fatalf("dims %v: bad or duplicate link index %d", dims, idx)
				}
				seen[idx] = true
				if back := g.LinkAt(idx); back != l {
					t.Fatalf("dims %v: LinkAt(LinkIndex(%v)) = %v", dims, l, back)
				}
			}
		}
	}
}

func TestNeighborTorusWrap(t *testing.T) {
	g := NewTorus([]int{4, 4, 4})
	nb, ok := g.Neighbor(g.ID(XYZ(0, 0, 0)), Dir(5)) // -z
	if !ok || nb != g.ID(XYZ(0, 0, 3)) {
		t.Fatalf("torus -z neighbor of origin = %d,%v", nb, ok)
	}
	p := New([]int{4, 4, 4})
	if _, ok := p.Neighbor(p.ID(XYZ(0, 0, 0)), Dir(5)); ok {
		t.Fatal("plain grid -z neighbor of origin should not exist")
	}
}

func TestComponents3D(t *testing.T) {
	g := New([]int{4, 4, 4})
	// Two separated 2x1x1 bars.
	ids := []int{
		g.ID(XYZ(0, 0, 0)), g.ID(XYZ(1, 0, 0)),
		g.ID(XYZ(3, 3, 3)), g.ID(XYZ(3, 2, 3)),
	}
	comps := g.Components(ids)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if g.Contiguous(ids) {
		t.Fatal("separated bars reported contiguous")
	}
	// A z-column is contiguous only through the z links.
	col := []int{g.ID(XYZ(2, 2, 0)), g.ID(XYZ(2, 2, 1)), g.ID(XYZ(2, 2, 2))}
	if !g.Contiguous(col) {
		t.Fatal("z column not contiguous")
	}
}

func TestDirString(t *testing.T) {
	want := []string{"+x", "-x", "+y", "-y", "+z", "-z", "+w", "-w"}
	for d, s := range want {
		if got := Dir(d).String(); got != s {
			t.Fatalf("Dir(%d).String() = %q, want %q", d, got, s)
		}
	}
}

func TestZeroAllocWalkers(t *testing.T) {
	g := New([]int{8, 8, 8})
	linkBuf := make([]Link, 0, 32)
	idBuf := make([]int, 0, g.Size())
	c := XYZ(4, 4, 4)
	n := testing.AllocsPerRun(200, func() {
		linkBuf = g.AppendRoute(linkBuf[:0], 0, g.Size()-1)
		linkBuf = g.AppendRouteRev(linkBuf[:0], g.Size()-1, 7)
		idBuf = g.AppendShell(idBuf[:0], c, XYZ(2, 2, 2), 2)
		idBuf = g.AppendRing(idBuf[:0], c, 5)
		g.ShellEach(c, XYZ(2, 2, 2), 3, func(int) bool { return true })
	})
	if n != 0 {
		t.Fatalf("generic walkers allocate %.1f objects/run, want 0", n)
	}
}

func sliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestComponentsOrdering(t *testing.T) {
	g := New([]int{16, 22})
	ids := []int{5, 4, 100, 101, 37, 21} // 5,4,21,37 form an L (4-5 adj, 21 below 5, 37 below 21)
	comps := g.Components(ids)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if !sort.IntsAreSorted(comps[0]) || !sort.IntsAreSorted(comps[1]) {
		t.Fatal("components not sorted")
	}
	if comps[0][0] > comps[1][0] {
		t.Fatal("components not ordered by smallest id")
	}
}

// TestGrownBoundsMatchesShellWalkClipping pins the counting-side clip
// arithmetic (GrownBounds/BoxVolume) to the walking side: the volume of
// shell k's clipped outer box must equal the nodes AppendShell visits
// across shells 0..k, for centers and extents all over the grid,
// including off-edge clipping.
func TestGrownBoundsMatchesShellWalkClipping(t *testing.T) {
	for _, dims := range [][]int{{7, 5}, {6, 4, 5}} {
		g := New(dims)
		var buf []int
		for id := 0; id < g.Size(); id += 3 {
			c := g.Coord(id)
			var ext Point
			for i := 0; i < MaxDims; i++ {
				ext[i] = 1
			}
			for i := 0; i < g.ND(); i++ {
				ext[i] = 1 + (id+i)%3
			}
			walked := 0
			for k := 0; k <= g.MaxShells(); k++ {
				walked += len(g.AppendShell(buf[:0], c, ext, k))
				lo, hi, ok := g.GrownBounds(c, ext, k)
				if !ok {
					t.Fatalf("dims %v c %v k %d: GrownBounds empty for on-grid center", dims, c, k)
				}
				if got := BoxVolume(lo, hi); got != walked {
					t.Fatalf("dims %v c %v ext %v k %d: BoxVolume %d, walked cumulative %d",
						dims, c, ext, k, got, walked)
				}
			}
		}
	}
}

func TestClipInterval(t *testing.T) {
	g := New([]int{10, 4})
	tests := []struct {
		axis, lo, hi   int
		wantLo, wantHi int
	}{
		{0, 2, 7, 2, 8},
		{0, -3, 100, 0, 10},
		{1, -1, 1, 0, 2},
		{1, 5, 9, 5, 4}, // off-grid: empty, signalled by chi <= clo
		{0, 9, 9, 9, 10},
	}
	for _, tc := range tests {
		clo, chi := g.ClipInterval(tc.axis, tc.lo, tc.hi)
		if clo != tc.wantLo || chi != tc.wantHi {
			t.Errorf("ClipInterval(%d, %d, %d) = [%d, %d), want [%d, %d)",
				tc.axis, tc.lo, tc.hi, clo, chi, tc.wantLo, tc.wantHi)
		}
	}
}
