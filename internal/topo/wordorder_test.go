package topo

import "testing"

func TestRowOfRoundTrip(t *testing.T) {
	for _, dims := range [][]int{{7}, {5, 3}, {4, 3, 2}, {3, 2, 2, 2}} {
		g := New(dims)
		if got, want := g.NumRows()*g.Dim(0), g.Size(); got != want {
			t.Fatalf("dims %v: NumRows*Dim(0) = %d, want %d", dims, got, want)
		}
		prevRow := -1
		for id := 0; id < g.Size(); id++ {
			row, off := g.RowOf(id)
			if row*g.Dim(0)+off != id {
				t.Fatalf("dims %v id %d: row %d offset %d does not round-trip", dims, id, row, off)
			}
			if off < 0 || off >= g.Dim(0) || row < 0 || row >= g.NumRows() {
				t.Fatalf("dims %v id %d: row %d offset %d out of range", dims, id, row, off)
			}
			// Offsets within a row must match axis-0 coordinates and rows
			// must advance monotonically in id order.
			if g.Coord(id)[0] != off {
				t.Fatalf("dims %v id %d: offset %d but coord x %d", dims, id, off, g.Coord(id)[0])
			}
			if row < prevRow {
				t.Fatalf("dims %v id %d: row went backwards", dims, id)
			}
			prevRow = row
		}
	}
}
