package topo

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomSubset draws n distinct ids from [0, size).
func randomSubset(rng *rand.Rand, size, n int) []int {
	perm := rng.Perm(size)
	return perm[:n]
}

// TestCountedMetricsMatchReference pins the counted forms against the
// materializing reference walks over random subsets of meshes and tori
// in 1..4 dimensions, including single-node, full-machine and clustered
// sets.
func TestCountedMetricsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{{16}, {16, 22}, {8, 8, 8}, {4, 3, 5, 2}, {2, 2}, {1, 9}}
	for _, dims := range shapes {
		for _, torus := range []bool{false, true} {
			var g *Grid
			if torus {
				g = NewTorus(dims)
			} else {
				g = New(dims)
			}
			var sc SetScratch
			name := fmt.Sprintf("%v/torus=%v", dims, torus)
			t.Run(name, func(t *testing.T) {
				sizes := []int{0, 1, 2, 3, g.Size() / 3, g.Size()}
				for _, n := range sizes {
					if n > g.Size() {
						continue
					}
					for rep := 0; rep < 8; rep++ {
						ids := randomSubset(rng, g.Size(), n)
						wantTotal := g.TotalPairwiseDist(ids)
						if got := g.TotalPairwiseDistCounted(ids, &sc); got != wantTotal {
							t.Fatalf("n=%d rep=%d: counted pairwise %d, reference %d", n, rep, got, wantTotal)
						}
						if got, want := g.AvgPairwiseDistCounted(ids, &sc), g.AvgPairwiseDist(ids); got != want {
							t.Fatalf("n=%d rep=%d: counted avg %v, reference %v", n, rep, got, want)
						}
						wantComps := len(g.Components(ids))
						if got := g.CountComponents(ids, &sc); got != wantComps {
							t.Fatalf("n=%d rep=%d: counted components %d, reference %d (ids %v)", n, rep, got, wantComps, ids)
						}
					}
				}
				// A contiguous box must count as one component.
				if g.Size() >= 4 && !torus {
					box := []int{0, 1}
					if dims[0] == 1 {
						box = []int{0, g.stride[1]}
					}
					if got := g.CountComponents(box, &sc); got != 1 {
						t.Fatalf("adjacent pair counts %d components", got)
					}
				}
			})
		}
	}
}

// TestCountedMetricsScratchReuse runs many calls through one scratch so
// the epoch-stamp clearing discipline (no per-call zeroing) is exercised
// across grids of different sizes.
func TestCountedMetricsScratchReuse(t *testing.T) {
	var sc SetScratch
	rng := rand.New(rand.NewSource(3))
	grids := []*Grid{New([]int{16, 16}), New([]int{4, 4}), NewTorus([]int{8, 8, 8})}
	for rep := 0; rep < 200; rep++ {
		g := grids[rep%len(grids)]
		ids := randomSubset(rng, g.Size(), 1+rng.Intn(g.Size()-1))
		if got, want := g.CountComponents(ids, &sc), len(g.Components(ids)); got != want {
			t.Fatalf("rep %d: components %d, want %d", rep, got, want)
		}
		if got, want := g.TotalPairwiseDistCounted(ids, &sc), g.TotalPairwiseDist(ids); got != want {
			t.Fatalf("rep %d: pairwise %d, want %d", rep, got, want)
		}
	}
}

// FuzzCountedMetricsEquivalence fuzzes the counted metrics against the
// reference walks on a mesh and a torus of the same shape.
func FuzzCountedMetricsEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(7), uint8(120))
	f.Add(uint64(99), uint8(16), uint8(16), uint8(3))
	f.Add(uint64(5), uint8(3), uint8(3), uint8(9))
	f.Fuzz(func(t *testing.T, seed uint64, w, h uint8, n uint8) {
		W, H := int(w%24)+1, int(h%24)+1
		size := W * H
		k := int(n) % (size + 1)
		rng := rand.New(rand.NewSource(int64(seed)))
		ids := randomSubset(rng, size, k)
		for _, torus := range []bool{false, true} {
			var g *Grid
			if torus {
				g = NewTorus([]int{W, H})
			} else {
				g = New([]int{W, H})
			}
			var sc SetScratch
			if got, want := g.TotalPairwiseDistCounted(ids, &sc), g.TotalPairwiseDist(ids); got != want {
				t.Fatalf("torus=%v: pairwise %d, want %d (ids %v)", torus, got, want, ids)
			}
			if got, want := g.CountComponents(ids, &sc), len(g.Components(ids)); got != want {
				t.Fatalf("torus=%v: components %d, want %d (ids %v)", torus, got, want, ids)
			}
		}
	})
}

// TestCountedMetricsZeroAlloc pins the counted metrics at zero
// allocations once the scratch is warm — they run once per finished job
// on the engine's hot path.
func TestCountedMetricsZeroAlloc(t *testing.T) {
	g := New([]int{16, 16})
	var sc SetScratch
	ids := make([]int, 0, 64)
	for i := 0; i < 64; i++ {
		ids = append(ids, (i*37)%g.Size())
	}
	// Warm the scratch (stack high-water mark included).
	g.CountComponents(ids, &sc)
	g.TotalPairwiseDistCounted(ids, &sc)
	n := testing.AllocsPerRun(200, func() {
		g.CountComponents(ids, &sc)
		g.TotalPairwiseDistCounted(ids, &sc)
	})
	if n != 0 {
		t.Fatalf("counted metrics allocate %.1f objects/run, want 0", n)
	}
}
