// Package topo is the dimension-generic topology core of the simulator:
// n-dimensional grid machines (meshes and tori), dense node ids, directed
// links, dimension-ordered routes, the box shells used by MC-style
// allocators, Manhattan rings, and rectilinear connectivity.
//
// The 2-D mesh package is a thin facade over this one, and the 3-D cube
// study and the native 3-D contention experiments instantiate it at three
// dimensions. Every walker keeps the zero-allocation caller-buffer /
// index-callback API shape established for the 2-D hot paths: Append*
// variants extend a caller-owned slice, *Each variants call back per node,
// and nothing on a steady-state path allocates.
//
// Nodes are identified by dense integer ids with axis 0 fastest:
// id = sum_i p[i] * stride[i] with stride[0] = 1 and
// stride[i] = stride[i-1] * dim[i-1] — row-major order in 2-D, the
// x-fastest order the cube package always used in 3-D.
package topo

import (
	"fmt"
	"sort"
)

// MaxDims is the compile-time cap on grid dimensionality. Keeping it a
// small constant lets Point be a value type, which is what keeps the
// route/shell/ring hot paths allocation-free.
const MaxDims = 4

// Point is a node coordinate. Axes at or above the grid's dimensionality
// are always zero, so component-wise operations may safely run over all
// MaxDims entries.
type Point [MaxDims]int

// Add returns the component-wise sum of p and q.
func (p Point) Add(q Point) Point {
	for i := range p {
		p[i] += q[i]
	}
	return p
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int {
	d := 0
	for i := range p {
		d += abs(p[i] - q[i])
	}
	return d
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// XY builds a 2-D point.
func XY(x, y int) Point { return Point{x, y} }

// XYZ builds a 3-D point.
func XYZ(x, y, z int) Point { return Point{x, y, z} }

// Dir identifies a directed link direction: axis Dir/2, toward increasing
// coordinates when Dir is even and decreasing when odd. The 2-D encoding
// (+x, -x, +y, -y) = (0, 1, 2, 3) is preserved exactly.
type Dir int

// Axis returns the axis the direction moves along.
func (d Dir) Axis() int { return int(d) / 2 }

// Positive reports whether the direction increases the coordinate.
func (d Dir) Positive() bool { return d%2 == 0 }

// String implements fmt.Stringer.
func (d Dir) String() string {
	const axes = "xyzw"
	a := d.Axis()
	if d < 0 || a >= len(axes) {
		return fmt.Sprintf("Dir(%d)", int(d))
	}
	sign := "+"
	if !d.Positive() {
		sign = "-"
	}
	return sign + string(axes[a])
}

// Link is a directed channel from node From to an adjacent node. Two
// adjacent nodes are joined by two links, one in each direction, as in a
// full-duplex machine.
type Link struct {
	From int
	Dir  Dir
}

// Grid is an n-dimensional grid of processors, optionally with torus
// wraparound links. The zero value is not usable; construct with New or
// NewTorus.
type Grid struct {
	nd     int
	dim    [MaxDims]int
	stride [MaxDims]int
	size   int
	torus  bool
}

// New returns a grid with the given extents. It panics on an empty or
// over-long dims list or a non-positive extent: machine shape is static
// configuration, so a bad shape is a programming error rather than a
// runtime condition.
func New(dims []int) *Grid {
	if len(dims) < 1 || len(dims) > MaxDims {
		panic(fmt.Sprintf("topo: grid needs 1..%d dimensions, got %d", MaxDims, len(dims)))
	}
	g := &Grid{nd: len(dims), size: 1}
	for i, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("topo: invalid extent %d on axis %d", d, i))
		}
		g.dim[i] = d
		g.stride[i] = g.size
		g.size *= d
	}
	// Unused axes have extent 1 and the full size as stride so Contains
	// and ID treat any nonzero coordinate there as off-grid.
	for i := len(dims); i < MaxDims; i++ {
		g.dim[i] = 1
		g.stride[i] = g.size
	}
	return g
}

// NewTorus returns a grid whose axes all wrap around. Distances and
// dimension-ordered routes take the shorter way around each axis.
func NewTorus(dims []int) *Grid {
	g := New(dims)
	g.torus = true
	return g
}

// ND returns the number of dimensions.
func (g *Grid) ND() int { return g.nd }

// Dim returns the extent of one axis.
func (g *Grid) Dim(axis int) int { return g.dim[axis] }

// Dims returns the extents as a fresh slice.
func (g *Grid) Dims() []int {
	out := make([]int, g.nd)
	for i := range out {
		out[i] = g.dim[i]
	}
	return out
}

// Size returns the total number of processors.
func (g *Grid) Size() int { return g.size }

// Torus reports whether the grid has wraparound links.
func (g *Grid) Torus() bool { return g.torus }

// Contains reports whether p lies on the grid.
func (g *Grid) Contains(p Point) bool {
	for i := 0; i < MaxDims; i++ {
		if p[i] < 0 || p[i] >= g.dim[i] {
			return false
		}
	}
	return true
}

// ID maps a coordinate to its dense id. It panics if p is off the grid.
// The panic messages here and in Coord are constant strings: both
// functions sit on every hot path and a fmt call — even an unreached
// one — would bloat them needlessly.
func (g *Grid) ID(p Point) int {
	if !g.Contains(p) {
		panic("topo: ID of point outside the grid")
	}
	id := 0
	for i := 0; i < g.nd; i++ {
		id += p[i] * g.stride[i]
	}
	return id
}

// Coord maps a dense id back to its coordinate. It panics on
// out-of-range ids. Digits are peeled from the highest axis down so the
// conversion costs one division per axis — this sits under every
// distance computation and shell walk.
func (g *Grid) Coord(id int) Point {
	if id < 0 || id >= g.size {
		panic("topo: Coord of id outside the grid")
	}
	var p Point
	rem := id
	for i := g.nd - 1; i > 0; i-- {
		v := rem / g.stride[i]
		rem -= v * g.stride[i]
		p[i] = v
	}
	p[0] = rem
	return p
}

// axisDist returns the hop distance along one axis, wrapping on a torus.
func (g *Grid) axisDist(a, b, extent int) int {
	d := abs(a - b)
	if g.torus && extent-d < d {
		d = extent - d
	}
	return d
}

// Dist returns the distance in hops between the nodes with ids a and b:
// Manhattan on a plain grid, wrapped per axis on a torus.
func (g *Grid) Dist(a, b int) int {
	pa, pb := g.Coord(a), g.Coord(b)
	d := 0
	for i := 0; i < g.nd; i++ {
		d += g.axisDist(pa[i], pb[i], g.dim[i])
	}
	return d
}

// AvgPairwiseDist returns the mean hop distance over all unordered pairs
// of the given node ids. It returns 0 for fewer than two nodes. This is
// the dispersal metric of Mache and Lo that MC1x1 and Gen-Alg minimize.
func (g *Grid) AvgPairwiseDist(ids []int) float64 {
	if len(ids) < 2 {
		return 0
	}
	pairs := len(ids) * (len(ids) - 1) / 2
	return float64(g.TotalPairwiseDist(ids)) / float64(pairs)
}

// TotalPairwiseDist returns the sum of hop distances over all unordered
// pairs of the given node ids.
func (g *Grid) TotalPairwiseDist(ids []int) int {
	total := 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			total += g.Dist(ids[i], ids[j])
		}
	}
	return total
}

// NumDirs returns the number of link directions (two per axis).
func (g *Grid) NumDirs() int { return 2 * g.nd }

// NumLinks returns the number of distinct directed links on the grid,
// used to size dense link-state tables. Every node nominally owns 2*ND
// outgoing links; edge nodes own fewer, but a dense table is simpler and
// the waste is tiny.
func (g *Grid) NumLinks() int { return g.size * g.NumDirs() }

// LinkIndex returns a dense index for l suitable for flat link-state
// arrays; the inverse of LinkAt.
func (g *Grid) LinkIndex(l Link) int {
	return l.From*g.NumDirs() + int(l.Dir)
}

// LinkAt returns the link with the given dense index.
func (g *Grid) LinkAt(idx int) Link {
	n := g.NumDirs()
	return Link{From: idx / n, Dir: Dir(idx % n)}
}

// Neighbor returns the node adjacent to id in direction d and true, or
// (-1, false) when the link would leave a plain grid. On a torus every
// direction wraps, so the second result is always true.
func (g *Grid) Neighbor(id int, d Dir) (int, bool) {
	axis := d.Axis()
	p := g.Coord(id)
	if d.Positive() {
		p[axis]++
	} else {
		p[axis]--
	}
	if p[axis] < 0 || p[axis] >= g.dim[axis] {
		if !g.torus {
			return -1, false
		}
		p[axis] = (p[axis] + g.dim[axis]) % g.dim[axis]
	}
	return g.ID(p), true
}

// Components partitions the given node ids into rectilinearly-connected
// components: two nodes are connected when they are grid-adjacent and
// both in the set. The paper calls a job "allocated contiguously" when
// this yields a single component. The returned components are each
// sorted by id and ordered by their smallest id.
func (g *Grid) Components(ids []int) [][]int {
	if len(ids) == 0 {
		return nil
	}
	// Dense membership bitmaps beat maps here: ids are bounded by the
	// grid size and Components runs once per finished job.
	in := make([]bool, g.size)
	for _, id := range ids {
		in[id] = true
	}
	seen := make([]bool, g.size)
	var comps [][]int
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	for _, start := range sorted {
		if seen[start] {
			continue
		}
		// BFS flood fill over grid adjacency restricted to the set.
		comp := []int{start}
		seen[start] = true
		for qi := 0; qi < len(comp); qi++ {
			u := comp[qi]
			for d := Dir(0); int(d) < g.NumDirs(); d++ {
				v, ok := g.Neighbor(u, d)
				if ok && in[v] && !seen[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Contiguous reports whether the node set forms a single rectilinear
// component.
func (g *Grid) Contiguous(ids []int) bool {
	return len(ids) == 0 || len(g.Components(ids)) == 1
}
