package topo

// Word-order helpers: the dense id layout (axis 0 fastest) means ids group
// naturally into "rows" of Dim(0) consecutive ids, which is exactly the
// shape word-parallel bitset free-maps want — one row per run of axis-0
// neighbours, packed into 64-bit words. These helpers name that mapping so
// allocators don't re-derive the arithmetic.

// NumRows returns the number of axis-0 rows in the grid: Size()/Dim(0).
// In 2-D this is the height; in higher dimensions every (axis-1, axis-2,
// ...) combination contributes one row.
func (g *Grid) NumRows() int { return g.size / g.dim[0] }

// RowOf splits a dense id into its axis-0 row index and the offset within
// that row: id == row*Dim(0) + offset with 0 <= offset < Dim(0). The row
// index equals the id of the row's first node divided by Dim(0), so rows
// number consecutively in id order.
func (g *Grid) RowOf(id int) (row, offset int) {
	return id / g.dim[0], id % g.dim[0]
}
