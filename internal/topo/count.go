package topo

// Clipped-box bound helpers: the counting primitives behind the
// occupancy index. MC-style scoring asks "how many free processors lie
// in shell k around this candidate" without walking the shell; for the
// answer to be bit-identical to the walk, the box bounds used for
// counting must clip exactly the way shellWalk clips. These helpers
// expose that arithmetic.

// GrownBounds returns the on-grid bounds of the box of active extents
// ext centered on c and grown by k on every side — the outer boundary
// of shell k, clipped to the grid exactly as shellWalk clips it. The
// region is the half-open box [lo, hi); axes at or above the grid's
// dimensionality are returned as [0, 1) so BoxVolume works over all
// MaxDims axes. The second result is false when the clipped box is
// empty (only possible for k < 0 or a zero extent).
func (g *Grid) GrownBounds(c, ext Point, k int) (lo, hi Point, ok bool) {
	for i := 0; i < g.nd; i++ {
		base := c[i] - ext[i]/2
		lo[i] = max(base-k, 0)
		hi[i] = min(base+ext[i]+k, g.dim[i])
		if lo[i] >= hi[i] {
			return lo, hi, false
		}
	}
	for i := g.nd; i < MaxDims; i++ {
		lo[i], hi[i] = 0, 1
	}
	return lo, hi, true
}

// BoxVolume returns the number of cells in the half-open box [lo, hi)
// as produced by GrownBounds. It assumes lo <= hi on every axis.
func BoxVolume(lo, hi Point) int {
	v := 1
	for i := 0; i < MaxDims; i++ {
		v *= hi[i] - lo[i]
	}
	return v
}

// ClipInterval returns the intersection of [lo, hi] (inclusive) with
// axis a's extent as a half-open interval [clo, chi); chi <= clo when
// the intersection is empty.
func (g *Grid) ClipInterval(a, lo, hi int) (clo, chi int) {
	return max(lo, 0), min(hi+1, g.dim[a])
}
