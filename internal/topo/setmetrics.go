package topo

// This file holds the count-only node-set metrics behind the simulator's
// per-finish record fields. Profiling the million-job open-system run
// (see DESIGN.md, "Event core") showed the engine spending ~70% of wall
// clock in the O(k²) pairwise-distance walk and another ~20% gathering
// component slices it only counted — so both metrics get count-don't-
// gather forms here, exact to the bit against the reference walks:
//
//   - TotalPairwiseDistCounted sums per-axis coordinate histograms in
//     O(k·nd + Σ extents) instead of decoding coordinates for every one
//     of the k(k-1)/2 pairs. Manhattan (and per-axis torus) distance
//     decomposes axis by axis, and each axis' pair sum is an integer
//     prefix-sum identity over the histogram, so the total is the same
//     int the double loop produces — not an approximation.
//   - CountComponents runs the same flood fill as Components but stamps
//     epochs into reusable scratch instead of building sorted [][]int
//     slices, and steps to neighbors by stride arithmetic instead of
//     Coord/ID round trips. The component count is traversal-order
//     independent, so it equals len(Components(ids)) exactly.
//
// Both take a *SetScratch the caller owns, keeping steady-state use
// allocation-free; the reference walks remain in topo.go for callers
// that need the materialized components and for equivalence testing.

// SetScratch is reusable state for CountComponents and
// TotalPairwiseDistCounted. The zero value is ready to use; one scratch
// may be shared across any grids but not across goroutines.
type SetScratch struct {
	in    []int64 // membership epoch stamps, indexed by node id
	seen  []int64 // visited epoch stamps, indexed by node id
	epoch int64
	stack []int
	hist  []int // per-axis coordinate histogram, sized to the widest extent
}

// ensure sizes the scratch for g. Epoch stamping makes clearing free:
// bumping the epoch invalidates every stale entry at once.
func (sc *SetScratch) ensure(g *Grid) {
	if len(sc.in) < g.size {
		sc.in = make([]int64, g.size)
		sc.seen = make([]int64, g.size)
		sc.epoch = 0
	}
	maxDim := 0
	for i := 0; i < g.nd; i++ {
		if g.dim[i] > maxDim {
			maxDim = g.dim[i]
		}
	}
	if len(sc.hist) < maxDim {
		sc.hist = make([]int, maxDim)
	}
	sc.epoch++
}

// TotalPairwiseDistCounted returns TotalPairwiseDist(ids) via per-axis
// histograms: O(k·nd + Σ extents) on a mesh, plus an O(extent²) occupied-
// bucket pass per wrapped axis on a torus (extents are small, so the
// quadratic term is over buckets, never over nodes). The result is
// integer-exact, so AvgPairwiseDist derived from it is bit-identical to
// the reference.
func (g *Grid) TotalPairwiseDistCounted(ids []int, sc *SetScratch) int {
	if len(ids) < 2 {
		return 0
	}
	sc.ensure(g)
	total := 0
	for axis := 0; axis < g.nd; axis++ {
		ext := g.dim[axis]
		if ext == 1 {
			continue
		}
		stride := g.stride[axis]
		hist := sc.hist[:ext]
		for i := range hist {
			hist[i] = 0
		}
		for _, id := range ids {
			hist[(id/stride)%ext]++
		}
		if g.torus {
			// Wrapped axis: pair buckets directly. O(ext²) over occupied
			// buckets, cheap because extents are machine side lengths.
			for a := 0; a < ext; a++ {
				ha := hist[a]
				if ha == 0 {
					continue
				}
				for b := a + 1; b < ext; b++ {
					hb := hist[b]
					if hb == 0 {
						continue
					}
					d := b - a
					if ext-d < d {
						d = ext - d
					}
					total += ha * hb * d
				}
			}
			continue
		}
		// Plain axis: sum of |a-b| over all pairs by ascending prefix
		// sums — each bucket contributes (count below)*v - (sum below).
		cnt, sum := 0, 0
		for v := 0; v < ext; v++ {
			h := hist[v]
			if h == 0 {
				continue
			}
			total += h * (cnt*v - sum)
			cnt += h
			sum += h * v
		}
	}
	return total
}

// AvgPairwiseDistCounted returns AvgPairwiseDist(ids) using the counted
// total — the same division over the same integer, hence bit-identical.
func (g *Grid) AvgPairwiseDistCounted(ids []int, sc *SetScratch) float64 {
	if len(ids) < 2 {
		return 0
	}
	pairs := len(ids) * (len(ids) - 1) / 2
	return float64(g.TotalPairwiseDistCounted(ids, sc)) / float64(pairs)
}

// CountComponents returns len(Components(ids)) without materializing the
// components: an epoch-stamped flood fill whose neighbor steps are
// stride additions guarded by one coordinate extraction per axis.
func (g *Grid) CountComponents(ids []int, sc *SetScratch) int {
	if len(ids) == 0 {
		return 0
	}
	sc.ensure(g)
	for _, id := range ids {
		sc.in[id] = sc.epoch
	}
	comps := 0
	stack := sc.stack[:0]
	for _, start := range ids {
		if sc.seen[start] == sc.epoch {
			continue
		}
		comps++
		sc.seen[start] = sc.epoch
		stack = append(stack, start)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for axis := 0; axis < g.nd; axis++ {
				ext := g.dim[axis]
				if ext == 1 {
					continue
				}
				stride := g.stride[axis]
				c := (u / stride) % ext
				// Toward increasing coordinates, wrapping on a torus.
				v := -1
				if c+1 < ext {
					v = u + stride
				} else if g.torus {
					v = u - stride*(ext-1)
				}
				if v >= 0 && sc.in[v] == sc.epoch && sc.seen[v] != sc.epoch {
					sc.seen[v] = sc.epoch
					stack = append(stack, v)
				}
				// Toward decreasing coordinates.
				v = -1
				if c > 0 {
					v = u - stride
				} else if g.torus {
					v = u + stride*(ext-1)
				}
				if v >= 0 && sc.in[v] == sc.epoch && sc.seen[v] != sc.epoch {
					sc.seen[v] = sc.epoch
					stack = append(stack, v)
				}
			}
		}
	}
	sc.stack = stack[:0]
	return comps
}
