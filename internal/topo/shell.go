package topo

// Boxes, shells and rings: the geometric gather primitives behind the
// MC shell-scoring allocator family (axis-aligned box shells, Figure 4
// of the paper) and Gen-Alg's nearest-free search (exact Manhattan
// rings). All walkers visit nodes in row-major order — axis 0 fastest —
// which keeps the n-D generalization bit-compatible with the original
// 2-D implementations.

// Box describes an axis-aligned box of nodes: per-axis origins and
// extents. Extents on axes at or above the grid's dimensionality must be
// 1 (the grid constructors below guarantee this); a zero-extent box
// contains nothing.
type Box struct {
	Origin Point // lowest-coordinate corner
	Ext    Point // per-axis extents
}

// Contains reports whether p lies in the box.
func (b Box) Contains(p Point) bool {
	for i := 0; i < MaxDims; i++ {
		if p[i] < b.Origin[i] || p[i] >= b.Origin[i]+b.Ext[i] {
			return false
		}
	}
	return true
}

// Volume returns the number of nodes covered by the box.
func (b Box) Volume() int {
	v := 1
	for i := 0; i < MaxDims; i++ {
		if b.Ext[i] <= 0 {
			return 0
		}
		v *= b.Ext[i]
	}
	return v
}

// CenteredBox returns the box with the given active-axis extents
// "centered" on c in the MC sense: c is placed at the integer center
// cell (ext/2 from the origin on each axis, rounding down). Axes beyond
// the grid's dimensionality get origin 0 and extent 1.
func (g *Grid) CenteredBox(c, ext Point) Box {
	var b Box
	for i := 0; i < g.nd; i++ {
		b.Origin[i] = c[i] - ext[i]/2
		b.Ext[i] = ext[i]
	}
	for i := g.nd; i < MaxDims; i++ {
		b.Ext[i] = 1
	}
	return b
}

// grownBox returns the box centered on c whose active extents are
// ext + 2k — the outer boundary of shell k.
func (g *Grid) grownBox(c, ext Point, k int) Box {
	for i := 0; i < g.nd; i++ {
		ext[i] += 2 * k
	}
	return g.CenteredBox(c, ext)
}

// Nodes returns the ids of the box's nodes that lie on g, in row-major
// order. Parts of the box hanging off the grid are skipped, which is how
// MC evaluates candidate allocations near machine edges.
func (g *Grid) Nodes(b Box) []int {
	return g.AppendNodes(make([]int, 0, b.Volume()), b)
}

// AppendNodes appends the ids of the box's on-grid nodes to ids in
// row-major order and returns the extended slice — the allocation-free
// variant of Nodes.
func (g *Grid) AppendNodes(ids []int, b Box) []int {
	return g.appendBoxSkip(ids, b, Box{})
}

// boxWalk is the shared engine of the box walkers: it visits outer's
// on-grid nodes in row-major order, skipping nodes inside inner, with
// the off-grid clipping hoisted out of the loop. The outer box is
// intersected with the grid per axis up front, so the inner loop emits
// whole axis-0 runs of precomputed dense ids (rows) with no per-cell
// containment test — that is what keeps MC's candidate scoring, which
// walks shells for every free center, at 2-D-hand-tuned speed.
//
// A zero inner box skips nothing. emit receives a half-open dense-id
// range whose ids are consecutive (an axis-0 run) and reports whether to
// continue.
func (g *Grid) boxWalk(outer, inner Box, emit func(lo, hi int) bool) {
	var lo, hi Point // outer clipped to the grid, per axis
	for i := 0; i < g.nd; i++ {
		lo[i] = max(outer.Origin[i], 0)
		hi[i] = min(outer.Origin[i]+outer.Ext[i], g.dim[i])
		if lo[i] >= hi[i] {
			return
		}
	}
	// Inner ranges; an empty inner box never matches.
	var inLo, inHi Point
	innerEmpty := false
	for i := 0; i < g.nd; i++ {
		inLo[i] = inner.Origin[i]
		inHi[i] = inner.Origin[i] + inner.Ext[i]
		if inner.Ext[i] <= 0 {
			innerEmpty = true
		}
	}
	g.rangeWalk(lo, hi, inLo, inHi, innerEmpty, emit)
}

// shellWalk is the box-free fast path behind AppendShell and ShellEach:
// the outer and inner bounds of shell k around the ext box centered on c
// are plain per-axis arithmetic (origin c - ext/2 shifted by k), so no
// Box values are built or copied per candidate — MC scores thousands of
// (center, shell) pairs per allocation and this walk is its inner loop.
func (g *Grid) shellWalk(c, ext Point, k int, emit func(lo, hi int) bool) {
	var lo, hi, inLo, inHi Point
	for i := 0; i < g.nd; i++ {
		base := c[i] - ext[i]/2
		lo[i] = max(base-k, 0)
		hi[i] = min(base+ext[i]+k, g.dim[i])
		if lo[i] >= hi[i] {
			return
		}
		inLo[i] = base - (k - 1)
		inHi[i] = base + ext[i] + (k - 1)
	}
	g.rangeWalk(lo, hi, inLo, inHi, k == 0, emit)
}

// rangeWalk emits the row-major axis-0 runs of the [lo, hi) region,
// skipping the [inLo, inHi) region unless innerEmpty.
func (g *Grid) rangeWalk(lo, hi, inLo, inHi Point, innerEmpty bool, emit func(lo, hi int) bool) {
	// Row odometer over axes 1..nd-1; axis 0 is emitted as runs.
	p := lo
	for {
		rowBase := 0
		rowInside := !innerEmpty
		for i := g.nd - 1; i >= 1; i-- {
			rowBase += p[i] * g.stride[i]
			if p[i] < inLo[i] || p[i] >= inHi[i] {
				rowInside = false
			}
		}
		if rowInside {
			// Emit [lo0, inLo0) and [inHi0, hi0), clipped.
			if l, h := lo[0], min(hi[0], inLo[0]); l < h {
				if !emit(rowBase+l, rowBase+h) {
					return
				}
			}
			if l, h := max(lo[0], inHi[0]), hi[0]; l < h {
				if !emit(rowBase+l, rowBase+h) {
					return
				}
			}
		} else {
			if !emit(rowBase+lo[0], rowBase+hi[0]) {
				return
			}
		}
		// Advance the row odometer.
		i := 1
		for ; i < g.nd; i++ {
			p[i]++
			if p[i] < hi[i] {
				break
			}
			p[i] = lo[i]
		}
		if i >= g.nd {
			return
		}
	}
}

// appendBoxSkip walks outer in row-major order, appending every on-grid
// node not contained in inner. A zero inner box skips nothing.
func (g *Grid) appendBoxSkip(ids []int, outer, inner Box) []int {
	g.boxWalk(outer, inner, func(lo, hi int) bool {
		for id := lo; id < hi; id++ {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Shell returns the ids of the nodes on g in shell k around the box of
// active extents ext centered on c: shell 0 is the box itself, shell
// k>0 is the boundary of the box grown by k on every side. This matches
// the growth rule of Mache et al.'s MC allocator, generalized to n
// dimensions (a ring in 2-D, a box surface in 3-D).
func (g *Grid) Shell(c, ext Point, k int) []int {
	if k == 0 {
		return g.Nodes(g.CenteredBox(c, ext))
	}
	outer := g.grownBox(c, ext, k)
	return g.AppendShell(make([]int, 0, outer.Volume()), c, ext, k)
}

// AppendShell appends the ids of shell k around the box centered on c to
// ids and returns the extended slice. It is the allocation-free variant
// of Shell: MC-style shell scoring reuses one scratch slice per
// allocator instead of allocating a fresh shell per candidate.
func (g *Grid) AppendShell(ids []int, c, ext Point, k int) []int {
	g.shellWalk(c, ext, k, func(lo, hi int) bool {
		for id := lo; id < hi; id++ {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}

// ShellEach calls fn with the id of every on-grid node of shell k in
// row-major order, stopping early when fn returns false. It reports
// whether the walk ran to completion. It is the index-callback variant
// of Shell for callers that do not need the ids materialized at all.
func (g *Grid) ShellEach(c, ext Point, k int, fn func(id int) bool) bool {
	done := true
	g.shellWalk(c, ext, k, func(lo, hi int) bool {
		for id := lo; id < hi; id++ {
			if !fn(id) {
				done = false
				return false
			}
		}
		return true
	})
	return done
}

// MaxShells returns an upper bound on the number of shells needed to
// cover the whole grid from any center. Growing by one node per side per
// shell, the largest extent always suffices.
func (g *Grid) MaxShells() int {
	n := 0
	for i := 0; i < g.nd; i++ {
		if g.dim[i] > n {
			n = g.dim[i]
		}
	}
	return n
}

// Ring returns the ids of grid nodes at exactly Manhattan distance r
// from c, in row-major order. Torus wraparound is ignored, as in the
// original Gen-Alg gather: rings are clipped at machine edges.
func (g *Grid) Ring(c Point, r int) []int {
	return g.AppendRing(nil, c, r)
}

// AppendRing appends the ids of grid nodes at exactly Manhattan distance
// r from c to ids, in row-major order — the allocation-free variant of
// Ring. The 2-D case is flattened into the classic diamond loop (it is
// Gen-Alg's innermost gather); higher dimensions recurse per axis.
func (g *Grid) AppendRing(ids []int, c Point, r int) []int {
	if g.nd == 2 {
		w, h := g.dim[0], g.dim[1]
		for dy := -r; dy <= r; dy++ {
			y := c[1] + dy
			if y < 0 || y >= h {
				continue
			}
			dx := r - abs(dy)
			row := y * w
			if x := c[0] - dx; x >= 0 && x < w {
				ids = append(ids, row+x)
			}
			if dx > 0 {
				if x := c[0] + dx; x >= 0 && x < w {
					ids = append(ids, row+x)
				}
			}
		}
		return ids
	}
	return g.appendRingAxis(ids, c, g.nd-1, r)
}

// appendRingAxis distributes the remaining distance rem over axes
// axis..0, choosing per-axis offsets in ascending order so the overall
// enumeration is row-major. The recursion depth is bounded by MaxDims
// and every frame is value-typed, so the walk never allocates.
func (g *Grid) appendRingAxis(ids []int, c Point, axis, rem int) []int {
	if axis == 0 {
		if rem == 0 {
			if g.Contains(c) {
				ids = append(ids, g.ID(c))
			}
			return ids
		}
		x := c[0]
		if v := x - rem; v >= 0 && v < g.dim[0] {
			c[0] = v
			ids = append(ids, g.ID(c))
		}
		if v := x + rem; v >= 0 && v < g.dim[0] {
			c[0] = v
			ids = append(ids, g.ID(c))
		}
		return ids
	}
	orig := c[axis]
	for d := -rem; d <= rem; d++ {
		v := orig + d
		if v < 0 || v >= g.dim[axis] {
			continue
		}
		c[axis] = v
		ids = g.appendRingAxis(ids, c, axis-1, rem-abs(d))
	}
	return ids
}
