// Package sched implements the job-start policies of the simulator. The
// paper fixes scheduling to First Come, First Serve; EASY backfilling is
// included as the extension the Discussion section calls for when
// studying allocator/scheduler interaction.
package sched

import "fmt"

// Pending describes one queued job.
type Pending struct {
	// Size is the processor request.
	Size int
	// EstRuntime is the job's runtime estimate in simulated seconds
	// (the traced runtime; "perfect" estimates).
	EstRuntime float64
}

// Running describes one running job, for backfilling's shadow-time
// computation.
type Running struct {
	Size int
	// EstEnd is the estimated completion time.
	EstEnd float64
}

// Policy picks the next queued job to start.
type Policy interface {
	// Name identifies the policy, e.g. "fcfs".
	Name() string
	// Pick returns the index in pending (arrival order) of the next job
	// to start given free processors, or -1 when none may start. The
	// caller re-invokes Pick after each start.
	Pick(pending []Pending, now float64, freeProcs int, running []Running) int
}

// SortedPolicy is implemented by policies that can exploit a running
// slice the caller already keeps sorted by ascending EstEnd (ties in
// any fixed deterministic order). PickSorted must return exactly what
// Pick returns on the same inputs — it just skips the per-call copy and
// sort. The engine maintains its running set end-time-ordered and calls
// PickSorted on every scheduling round, so the O(r²) sort in Pick stops
// being a per-round cost.
type SortedPolicy interface {
	Policy
	PickSorted(pending []Pending, now float64, freeProcs int, runningByEnd []Running) int
}

// ByName returns the policy registered under name ("fcfs", "easy" or
// "sjf").
func ByName(name string) (Policy, error) {
	switch name {
	case "fcfs":
		return FCFS{}, nil
	case "easy":
		return EASY{}, nil
	case "sjf":
		return SJF{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", name)
	}
}

// FCFS is strict First Come, First Serve: the head of the queue starts
// when it fits; no job may overtake it.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Policy.
func (FCFS) Pick(pending []Pending, _ float64, freeProcs int, _ []Running) int {
	if len(pending) > 0 && pending[0].Size <= freeProcs {
		return 0
	}
	return -1
}

// EASY is aggressive (EASY) backfilling: the queue head reserves the
// earliest time enough processors will be free, and later jobs may start
// out of order only if they cannot delay that reservation.
type EASY struct{}

// Name implements Policy.
func (EASY) Name() string { return "easy" }

// Pick implements Policy.
func (EASY) Pick(pending []Pending, now float64, freeProcs int, running []Running) int {
	if len(pending) == 0 {
		return -1
	}
	if pending[0].Size <= freeProcs {
		return 0
	}
	shadow, extra := shadowTime(pending[0].Size, freeProcs, running)
	for i := 1; i < len(pending); i++ {
		j := pending[i]
		if j.Size > freeProcs {
			continue
		}
		// A backfilled job must either finish before the head's
		// reservation or leave the reservation's processors untouched.
		if now+j.EstRuntime <= shadow || j.Size <= extra {
			return i
		}
	}
	return -1
}

// PickSorted implements SortedPolicy: identical decisions to Pick, with
// the shadow-time scan running directly over the pre-sorted running
// slice instead of copying and sorting it.
func (EASY) PickSorted(pending []Pending, now float64, freeProcs int, runningByEnd []Running) int {
	if len(pending) == 0 {
		return -1
	}
	if pending[0].Size <= freeProcs {
		return 0
	}
	shadow, extra := shadowTimeSorted(pending[0].Size, freeProcs, runningByEnd)
	for i := 1; i < len(pending); i++ {
		j := pending[i]
		if j.Size > freeProcs {
			continue
		}
		if now+j.EstRuntime <= shadow || j.Size <= extra {
			return i
		}
	}
	return -1
}

// SJF starts the shortest (by runtime estimate) fitting job, ignoring
// arrival order. It minimizes mean wait at the cost of potential
// starvation; included for scheduler/allocator interaction studies, not
// in the paper.
type SJF struct{}

// Name implements Policy.
func (SJF) Name() string { return "sjf" }

// Pick implements Policy.
func (SJF) Pick(pending []Pending, _ float64, freeProcs int, _ []Running) int {
	best := -1
	for i, j := range pending {
		if j.Size > freeProcs {
			continue
		}
		if best == -1 || j.EstRuntime < pending[best].EstRuntime {
			best = i
		}
	}
	return best
}

// shadowTime returns the earliest estimated time at which headSize
// processors are free (the head's reservation) and the number of extra
// processors free at that time beyond the head's need.
func shadowTime(headSize, freeProcs int, running []Running) (shadow float64, extra int) {
	// Scan running jobs in estimated-end order, accumulating releases.
	ends := append([]Running(nil), running...)
	sortByEnd(ends)
	return shadowTimeSorted(headSize, freeProcs, ends)
}

// shadowTimeSorted is shadowTime over a slice already in ascending
// EstEnd order: no copy, no sort.
func shadowTimeSorted(headSize, freeProcs int, ends []Running) (shadow float64, extra int) {
	free := freeProcs
	for _, r := range ends {
		free += r.Size
		if free >= headSize {
			return r.EstEnd, free - headSize
		}
	}
	// Without enough running work to ever free the processors, the
	// reservation is unsatisfiable; disallow all backfilling.
	return 0, -1
}

func sortByEnd(rs []Running) {
	// Insertion sort: running sets are small and this avoids pulling in
	// sort for a three-line comparator.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].EstEnd < rs[j-1].EstEnd; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
