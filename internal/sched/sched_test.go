package sched

import "testing"

func TestByName(t *testing.T) {
	for _, name := range []string{"fcfs", "easy", "sjf"} {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("gang"); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestSJFPicksShortestFitting(t *testing.T) {
	p := SJF{}
	pending := []Pending{
		{Size: 8, EstRuntime: 100},
		{Size: 20, EstRuntime: 1}, // shortest but does not fit
		{Size: 4, EstRuntime: 10},
		{Size: 2, EstRuntime: 50},
	}
	if got := p.Pick(pending, 0, 10, nil); got != 2 {
		t.Fatalf("Pick = %d, want 2 (shortest fitting)", got)
	}
	if got := p.Pick(pending, 0, 1, nil); got != -1 {
		t.Fatalf("Pick with nothing fitting = %d", got)
	}
}

func TestFCFSHeadFits(t *testing.T) {
	p := FCFS{}
	pending := []Pending{{Size: 8}, {Size: 2}}
	if got := p.Pick(pending, 0, 10, nil); got != 0 {
		t.Fatalf("Pick = %d, want 0", got)
	}
}

func TestFCFSHeadBlocks(t *testing.T) {
	p := FCFS{}
	// Head needs 8, only 4 free: strict FCFS starts nothing even though
	// the second job fits.
	pending := []Pending{{Size: 8}, {Size: 2}}
	if got := p.Pick(pending, 0, 4, nil); got != -1 {
		t.Fatalf("Pick = %d, want -1", got)
	}
}

func TestFCFSEmptyQueue(t *testing.T) {
	if got := (FCFS{}).Pick(nil, 0, 10, nil); got != -1 {
		t.Fatalf("Pick on empty queue = %d", got)
	}
}

func TestEASYHeadFirst(t *testing.T) {
	p := EASY{}
	pending := []Pending{{Size: 4}, {Size: 2}}
	if got := p.Pick(pending, 0, 4, nil); got != 0 {
		t.Fatalf("Pick = %d, want 0 (head fits)", got)
	}
}

func TestEASYBackfillsShortJob(t *testing.T) {
	p := EASY{}
	// Head needs 8; 4 free; a running 4-proc job ends at t=100, so the
	// head's reservation is t=100. A 2-proc job estimated to finish by
	// then may backfill.
	pending := []Pending{
		{Size: 8, EstRuntime: 50},
		{Size: 2, EstRuntime: 40},
	}
	running := []Running{{Size: 4, EstEnd: 100}}
	if got := p.Pick(pending, 10, 4, running); got != 1 {
		t.Fatalf("Pick = %d, want 1 (backfill)", got)
	}
}

func TestEASYRefusesDelayingBackfill(t *testing.T) {
	p := EASY{}
	// Same as above but the candidate would finish after the
	// reservation and would eat reserved processors.
	pending := []Pending{
		{Size: 8, EstRuntime: 50},
		{Size: 4, EstRuntime: 200},
	}
	running := []Running{{Size: 4, EstEnd: 100}}
	if got := p.Pick(pending, 10, 4, running); got != -1 {
		t.Fatalf("Pick = %d, want -1", got)
	}
}

func TestEASYAllowsExtraProcessorBackfill(t *testing.T) {
	p := EASY{}
	// Reservation at t=100 frees 12 procs for an 8-proc head: 4 extra.
	// A long 3-proc job cannot delay the head because it fits in the
	// extra processors.
	pending := []Pending{
		{Size: 8, EstRuntime: 50},
		{Size: 3, EstRuntime: 1e9},
	}
	running := []Running{{Size: 12, EstEnd: 100}}
	if got := p.Pick(pending, 10, 3, running); got != 1 {
		t.Fatalf("Pick = %d, want 1", got)
	}
}

func TestEASYUnsatisfiableReservation(t *testing.T) {
	p := EASY{}
	// Nothing running and the head can never fit: no backfilling
	// decisions can be justified.
	pending := []Pending{{Size: 100}, {Size: 2, EstRuntime: 1}}
	if got := p.Pick(pending, 0, 4, nil); got != -1 {
		t.Fatalf("Pick = %d, want -1", got)
	}
}

// TestSJFTieBreaking pins the tie rule: among fitting jobs with equal
// runtime estimates, the earliest-arrived (lowest index) wins, so SJF
// stays deterministic and starvation-ordered within a runtime class.
func TestSJFTieBreaking(t *testing.T) {
	p := SJF{}
	cases := []struct {
		name    string
		pending []Pending
		free    int
		want    int
	}{
		{
			name: "equal estimates pick earliest",
			pending: []Pending{
				{Size: 4, EstRuntime: 10},
				{Size: 4, EstRuntime: 10},
				{Size: 4, EstRuntime: 10},
			},
			free: 8, want: 0,
		},
		{
			name: "tie among later jobs when the first does not fit",
			pending: []Pending{
				{Size: 9, EstRuntime: 10},
				{Size: 4, EstRuntime: 10},
				{Size: 4, EstRuntime: 10},
			},
			free: 8, want: 1,
		},
		{
			name: "strictly shorter job beats an earlier equal-size one",
			pending: []Pending{
				{Size: 4, EstRuntime: 10},
				{Size: 4, EstRuntime: 9.999},
			},
			free: 8, want: 1,
		},
		{
			name: "zero-estimate jobs tie like any other value",
			pending: []Pending{
				{Size: 4, EstRuntime: 0},
				{Size: 4, EstRuntime: 0},
			},
			free: 8, want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.Pick(tc.pending, 0, tc.free, nil); got != tc.want {
				t.Fatalf("Pick = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestEASYShadowTimeEdges pins the boundary cases of the backfilling
// rule — a candidate finishing exactly at the reservation, zero
// runtime estimates, and a candidate exactly the size of the extra
// processors freed at the shadow time.
func TestEASYShadowTimeEdges(t *testing.T) {
	p := EASY{}
	cases := []struct {
		name    string
		pending []Pending
		running []Running
		now     float64
		free    int
		want    int
	}{
		{
			// Reservation at t=100; now=10. A candidate with
			// EstRuntime=90 ends exactly at the shadow: <= admits it.
			name: "exact-fit backfill at the shadow boundary",
			pending: []Pending{
				{Size: 8, EstRuntime: 50},
				{Size: 4, EstRuntime: 90},
			},
			running: []Running{{Size: 4, EstEnd: 100}},
			now:     10, free: 4, want: 1,
		},
		{
			// One tick past the shadow (and bigger than extra): refused.
			name: "just past the shadow is refused",
			pending: []Pending{
				{Size: 8, EstRuntime: 50},
				{Size: 4, EstRuntime: 90.001},
			},
			running: []Running{{Size: 4, EstEnd: 100}},
			now:     10, free: 4, want: -1,
		},
		{
			// A zero-estimate job finishes "immediately": always
			// before the reservation, so it backfills whenever it fits.
			name: "zero-estimate job backfills",
			pending: []Pending{
				{Size: 8, EstRuntime: 50},
				{Size: 4, EstRuntime: 0},
			},
			running: []Running{{Size: 4, EstEnd: 100}},
			now:     10, free: 4, want: 1,
		},
		{
			// 5 free now + 6 released at t=100 leaves 11 for the 8-proc
			// head: extra = 3. An arbitrarily long candidate of exactly
			// 3 procs slots into the extra capacity.
			name: "candidate exactly equal to the extra processors",
			pending: []Pending{
				{Size: 8, EstRuntime: 50},
				{Size: 3, EstRuntime: 1e12},
			},
			running: []Running{{Size: 6, EstEnd: 100}},
			now:     10, free: 5, want: 1,
		},
		{
			// Same shadow but one processor over the extra: a size-4
			// candidate fits the 5 free now, yet would eat into the
			// head's reservation, so it is refused.
			name: "candidate one over the extra is refused",
			pending: []Pending{
				{Size: 8, EstRuntime: 50},
				{Size: 4, EstRuntime: 1e12},
			},
			running: []Running{{Size: 6, EstEnd: 100}},
			now:     10, free: 5, want: -1,
		},
		{
			// A backfill candidate the same size as the head cannot
			// start now (head does not fit by definition of the branch)
			// unless it finishes by the shadow.
			name: "candidate equal to the head size within shadow",
			pending: []Pending{
				{Size: 8, EstRuntime: 50},
				{Size: 8, EstRuntime: 90},
			},
			running: []Running{{Size: 8, EstEnd: 100}},
			now:     10, free: 0, want: -1, // does not fit in 0 free
		},
		{
			// Head itself fits: backfilling logic never engages.
			name: "head starts before any backfill consideration",
			pending: []Pending{
				{Size: 4, EstRuntime: 50},
				{Size: 2, EstRuntime: 1},
			},
			running: []Running{{Size: 4, EstEnd: 100}},
			now:     10, free: 4, want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.Pick(tc.pending, tc.now, tc.free, tc.running); got != tc.want {
				t.Fatalf("Pick = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestEASYScansPastUnfitCandidates pins that backfilling keeps
// scanning: an unfit or shadow-violating candidate does not stop a
// later legitimate one.
func TestEASYScansPastUnfitCandidates(t *testing.T) {
	p := EASY{}
	pending := []Pending{
		{Size: 8, EstRuntime: 50},  // blocked head
		{Size: 6, EstRuntime: 1e9}, // too big for free procs
		{Size: 4, EstRuntime: 1e9}, // fits but would delay the head
		{Size: 2, EstRuntime: 10},  // legitimate backfill
	}
	running := []Running{{Size: 4, EstEnd: 100}}
	if got := p.Pick(pending, 10, 4, running); got != 3 {
		t.Fatalf("Pick = %d, want 3", got)
	}
}

func TestShadowTimeOrdering(t *testing.T) {
	// Releases accumulate in end order: 2 at t=10, 3 at t=20, 5 at t=30.
	running := []Running{
		{Size: 5, EstEnd: 30},
		{Size: 2, EstEnd: 10},
		{Size: 3, EstEnd: 20},
	}
	shadow, extra := shadowTime(5, 0, running)
	if shadow != 20 || extra != 0 {
		t.Fatalf("shadow = %g, extra = %d; want 20, 0", shadow, extra)
	}
	shadow, extra = shadowTime(6, 1, running)
	if shadow != 20 || extra != 0 {
		t.Fatalf("shadow = %g, extra = %d; want 20, 0", shadow, extra)
	}
	shadow, extra = shadowTime(10, 0, running)
	if shadow != 30 || extra != 0 {
		t.Fatalf("shadow = %g, extra = %d; want 30, 0", shadow, extra)
	}
	// More processors than will ever free up: unsatisfiable.
	if _, extra = shadowTime(11, 0, running); extra != -1 {
		t.Fatalf("unsatisfiable reservation extra = %d, want -1", extra)
	}
}
