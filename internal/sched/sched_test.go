package sched

import "testing"

func TestByName(t *testing.T) {
	for _, name := range []string{"fcfs", "easy", "sjf"} {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("gang"); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestSJFPicksShortestFitting(t *testing.T) {
	p := SJF{}
	pending := []Pending{
		{Size: 8, EstRuntime: 100},
		{Size: 20, EstRuntime: 1}, // shortest but does not fit
		{Size: 4, EstRuntime: 10},
		{Size: 2, EstRuntime: 50},
	}
	if got := p.Pick(pending, 0, 10, nil); got != 2 {
		t.Fatalf("Pick = %d, want 2 (shortest fitting)", got)
	}
	if got := p.Pick(pending, 0, 1, nil); got != -1 {
		t.Fatalf("Pick with nothing fitting = %d", got)
	}
}

func TestFCFSHeadFits(t *testing.T) {
	p := FCFS{}
	pending := []Pending{{Size: 8}, {Size: 2}}
	if got := p.Pick(pending, 0, 10, nil); got != 0 {
		t.Fatalf("Pick = %d, want 0", got)
	}
}

func TestFCFSHeadBlocks(t *testing.T) {
	p := FCFS{}
	// Head needs 8, only 4 free: strict FCFS starts nothing even though
	// the second job fits.
	pending := []Pending{{Size: 8}, {Size: 2}}
	if got := p.Pick(pending, 0, 4, nil); got != -1 {
		t.Fatalf("Pick = %d, want -1", got)
	}
}

func TestFCFSEmptyQueue(t *testing.T) {
	if got := (FCFS{}).Pick(nil, 0, 10, nil); got != -1 {
		t.Fatalf("Pick on empty queue = %d", got)
	}
}

func TestEASYHeadFirst(t *testing.T) {
	p := EASY{}
	pending := []Pending{{Size: 4}, {Size: 2}}
	if got := p.Pick(pending, 0, 4, nil); got != 0 {
		t.Fatalf("Pick = %d, want 0 (head fits)", got)
	}
}

func TestEASYBackfillsShortJob(t *testing.T) {
	p := EASY{}
	// Head needs 8; 4 free; a running 4-proc job ends at t=100, so the
	// head's reservation is t=100. A 2-proc job estimated to finish by
	// then may backfill.
	pending := []Pending{
		{Size: 8, EstRuntime: 50},
		{Size: 2, EstRuntime: 40},
	}
	running := []Running{{Size: 4, EstEnd: 100}}
	if got := p.Pick(pending, 10, 4, running); got != 1 {
		t.Fatalf("Pick = %d, want 1 (backfill)", got)
	}
}

func TestEASYRefusesDelayingBackfill(t *testing.T) {
	p := EASY{}
	// Same as above but the candidate would finish after the
	// reservation and would eat reserved processors.
	pending := []Pending{
		{Size: 8, EstRuntime: 50},
		{Size: 4, EstRuntime: 200},
	}
	running := []Running{{Size: 4, EstEnd: 100}}
	if got := p.Pick(pending, 10, 4, running); got != -1 {
		t.Fatalf("Pick = %d, want -1", got)
	}
}

func TestEASYAllowsExtraProcessorBackfill(t *testing.T) {
	p := EASY{}
	// Reservation at t=100 frees 12 procs for an 8-proc head: 4 extra.
	// A long 3-proc job cannot delay the head because it fits in the
	// extra processors.
	pending := []Pending{
		{Size: 8, EstRuntime: 50},
		{Size: 3, EstRuntime: 1e9},
	}
	running := []Running{{Size: 12, EstEnd: 100}}
	if got := p.Pick(pending, 10, 3, running); got != 1 {
		t.Fatalf("Pick = %d, want 1", got)
	}
}

func TestEASYUnsatisfiableReservation(t *testing.T) {
	p := EASY{}
	// Nothing running and the head can never fit: no backfilling
	// decisions can be justified.
	pending := []Pending{{Size: 100}, {Size: 2, EstRuntime: 1}}
	if got := p.Pick(pending, 0, 4, nil); got != -1 {
		t.Fatalf("Pick = %d, want -1", got)
	}
}

func TestShadowTimeOrdering(t *testing.T) {
	// Releases accumulate in end order: 2 at t=10, 3 at t=20, 5 at t=30.
	running := []Running{
		{Size: 5, EstEnd: 30},
		{Size: 2, EstEnd: 10},
		{Size: 3, EstEnd: 20},
	}
	shadow, extra := shadowTime(5, 0, running)
	if shadow != 20 || extra != 0 {
		t.Fatalf("shadow = %g, extra = %d; want 20, 0", shadow, extra)
	}
	shadow, extra = shadowTime(6, 1, running)
	if shadow != 20 || extra != 0 {
		t.Fatalf("shadow = %g, extra = %d; want 20, 0", shadow, extra)
	}
	shadow, extra = shadowTime(10, 0, running)
	if shadow != 30 || extra != 0 {
		t.Fatalf("shadow = %g, extra = %d; want 30, 0", shadow, extra)
	}
	// More processors than will ever free up: unsatisfiable.
	if _, extra = shadowTime(11, 0, running); extra != -1 {
		t.Fatalf("unsatisfiable reservation extra = %d, want -1", extra)
	}
}
