package curveopt

import (
	"testing"
	"testing/quick"

	"meshalloc/internal/curve"
	"meshalloc/internal/mesh"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate ignored
	g.AddEdge(1, 1) // self ignored
	g.AddEdge(1, 2)
	g.AddEdge(-1, 2) // out of range ignored
	if len(g.Neighbors(1)) != 2 {
		t.Fatalf("node 1 neighbours = %v", g.Neighbors(1))
	}
	if len(g.Neighbors(0)) != 1 {
		t.Fatalf("node 0 neighbours = %v", g.Neighbors(0))
	}
}

func TestNewGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGraph(0) should panic")
		}
	}()
	NewGraph(0)
}

func TestMeshGraphDegrees(t *testing.T) {
	m := mesh.New(4, 4)
	g := MeshGraph(m)
	// Corner nodes degree 2, edges 3, interior 4.
	wantDeg := func(id int) int {
		p := m.Coord(id)
		d := 4
		if p.X == 0 || p.X == 3 {
			d--
		}
		if p.Y == 0 || p.Y == 3 {
			d--
		}
		return d
	}
	for id := 0; id < 16; id++ {
		if got := len(g.Neighbors(id)); got != wantDeg(id) {
			t.Fatalf("node %d degree %d, want %d", id, got, wantDeg(id))
		}
	}
}

func TestCostOfKnownOrderings(t *testing.T) {
	// Path graph 0-1-2-3: identity ordering cost 3 (each edge spans 1).
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if c := Cost(g, []int{0, 1, 2, 3}); c != 3 {
		t.Fatalf("path identity cost = %d", c)
	}
	// Worst-ish ordering.
	if c := Cost(g, []int{0, 2, 1, 3}); c <= 3 {
		t.Fatalf("shuffled path cost = %d, should exceed 3", c)
	}
}

func TestOptimizeReturnsPermutation(t *testing.T) {
	m := mesh.New(6, 7)
	g := MeshGraph(m)
	order := Optimize(g, Options{Iters: 2000, Seed: 1})
	seen := make([]bool, g.N)
	for _, id := range order {
		if id < 0 || id >= g.N || seen[id] {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[id] = true
	}
	if len(order) != g.N {
		t.Fatalf("length %d", len(order))
	}
}

func TestOptimizeImprovesOnSeedOrder(t *testing.T) {
	m := mesh.New(8, 8)
	g := MeshGraph(m)
	seedCost := Cost(g, bfsOrder(g))
	opt := Optimize(g, Options{Iters: 30000, Seed: 1})
	optCost := Cost(g, opt)
	if optCost > seedCost {
		t.Fatalf("optimizer worsened cost: %d -> %d", seedCost, optCost)
	}
	// Row-major on an n x n mesh costs n*(n-1) (rows) + n*n*(n-1)
	// (column edges span n each): 8*7 + 64*7*... compute directly.
	rowMajor := curve.RowMajor{}.Order(8, 8)
	rmCost := Cost(g, rowMajor)
	if optCost > rmCost {
		t.Fatalf("optimized cost %d worse than row-major %d", optCost, rmCost)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	g := MeshGraph(mesh.New(5, 5))
	a := Optimize(g, Options{Iters: 5000, Seed: 7})
	b := Optimize(g, Options{Iters: 5000, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed optimization diverged")
		}
	}
}

func TestOptimizeDisconnectedGraph(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4) // nodes 2 and 5 isolated
	order := Optimize(g, Options{Iters: 500, Seed: 1})
	seen := map[int]bool{}
	for _, id := range order {
		seen[id] = true
	}
	if len(seen) != 6 {
		t.Fatalf("disconnected graph ordering incomplete: %v", order)
	}
}

func TestMeshCurveInterface(t *testing.T) {
	var c curve.Curve = MeshCurve{Iters: 1000, Seed: 1}
	if c.Name() != "optcurve" {
		t.Fatalf("name = %q", c.Name())
	}
	order := c.Order(4, 5)
	if len(order) != 20 {
		t.Fatalf("order length %d", len(order))
	}
	// Must be a valid ordering for the Paging machinery.
	ranks := curve.Ranks(order) // panics if not a permutation
	_ = ranks
}

func TestCostInvariantUnderRelabeling(t *testing.T) {
	// Property: reversing an ordering preserves its cost.
	g := MeshGraph(mesh.New(4, 4))
	f := func(seed int64) bool {
		order := Optimize(g, Options{Iters: 100, Seed: seed})
		rev := make([]int, len(order))
		for i, id := range order {
			rev[len(order)-1-i] = id
		}
		return Cost(g, order) == Cost(g, rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
