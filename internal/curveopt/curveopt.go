// Package curveopt searches for processor orderings with good locality
// on arbitrary machine graphs. The paper (Section 2.1) notes that "for
// non-mesh machines, Leung et al. developed an integer program to find
// curves with locality properties"; this package realizes that idea as a
// deterministic local search for the minimum-linear-arrangement
// objective — the sum over machine-graph edges of the rank distance
// between their endpoints — which is precisely the locality a page
// ordering needs: mesh neighbours close in rank.
//
// Exact ILP solving is NP-hard and needs an external solver; the local
// search reaches the same qualitative goal (orderings competitive with
// hand-designed space-filling curves) with stdlib-only code, and the
// optimizer applies unchanged to non-mesh topologies.
package curveopt

import (
	"fmt"

	"meshalloc/internal/mesh"
	"meshalloc/internal/stats"
)

// Graph is an undirected machine topology over nodes 0..N-1.
type Graph struct {
	N   int
	adj [][]int
}

// NewGraph returns an empty graph over n nodes. It panics on
// non-positive n: topology is static configuration.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("curveopt: invalid node count %d", n))
	}
	return &Graph{N: n, adj: make([][]int, n)}
}

// AddEdge records an undirected edge; duplicate and self edges are
// ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.N || v >= g.N {
		return
	}
	for _, w := range g.adj[u] {
		if w == v {
			return
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// Neighbors returns u's adjacency list (shared slice; do not modify).
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// MeshGraph builds the machine graph of a w x h mesh.
func MeshGraph(m *mesh.Mesh) *Graph {
	g := NewGraph(m.Size())
	for id := 0; id < m.Size(); id++ {
		for _, d := range []mesh.Direction{mesh.XPos, mesh.YPos} {
			if nb, ok := m.Neighbor(id, d); ok {
				g.AddEdge(id, nb)
			}
		}
	}
	return g
}

// Cost returns the linear-arrangement cost of an ordering: the sum over
// edges of |rank(u) - rank(v)|. Lower is better; a Hamiltonian-path-like
// ordering of a path graph achieves the minimum.
func Cost(g *Graph, order []int) int {
	rank := make([]int, g.N)
	for pos, id := range order {
		rank[id] = pos
	}
	total := 0
	for u := 0; u < g.N; u++ {
		ru := rank[u]
		for _, v := range g.adj[u] {
			if u < v {
				d := ru - rank[v]
				if d < 0 {
					d = -d
				}
				total += d
			}
		}
	}
	return total
}

// Options tunes the search.
type Options struct {
	// Iters is the number of local-search proposals; 0 means 20000.
	Iters int
	// Seed drives proposal sampling.
	Seed int64
}

// Optimize returns an ordering of g's nodes with low linear-arrangement
// cost: a BFS seed ordering improved by first-improvement swap and
// segment-reversal moves. The result is a permutation of [0, g.N) and is
// deterministic in (g, opts).
func Optimize(g *Graph, opts Options) []int {
	if opts.Iters == 0 {
		opts.Iters = 20000
	}
	rng := stats.NewRNG(opts.Seed)
	order := bfsOrder(g)
	rank := make([]int, g.N)
	for pos, id := range order {
		rank[id] = pos
	}

	// nodeCost returns the cost contribution of node id's edges.
	nodeCost := func(id int) int {
		total := 0
		r := rank[id]
		for _, v := range g.adj[id] {
			d := r - rank[v]
			if d < 0 {
				d = -d
			}
			total += d
		}
		return total
	}

	for it := 0; it < opts.Iters; it++ {
		if rng.Float64() < 0.7 {
			// Swap two positions.
			i := rng.Intn(g.N)
			j := rng.Intn(g.N)
			if i == j {
				continue
			}
			a, b := order[i], order[j]
			before := nodeCost(a) + nodeCost(b)
			order[i], order[j] = b, a
			rank[a], rank[b] = rank[b], rank[a]
			after := nodeCost(a) + nodeCost(b)
			// Adjacent-in-graph pairs double-count their shared edge
			// identically before and after, so the comparison stands.
			if after > before {
				order[i], order[j] = a, b
				rank[a], rank[b] = rank[b], rank[a]
			}
		} else {
			// Reverse a short segment.
			i := rng.Intn(g.N)
			l := 2 + rng.Intn(6)
			j := i + l
			if j >= g.N {
				continue
			}
			before := segmentCost(g, rank, order[i:j+1])
			reverse(order[i : j+1])
			for p := i; p <= j; p++ {
				rank[order[p]] = p
			}
			after := segmentCost(g, rank, order[i:j+1])
			if after > before {
				reverse(order[i : j+1])
				for p := i; p <= j; p++ {
					rank[order[p]] = p
				}
			}
		}
	}
	return order
}

// segmentCost sums the edge costs incident to the segment's nodes.
// Edges internal to the segment are counted twice, consistently across
// the before/after comparison.
func segmentCost(g *Graph, rank []int, seg []int) int {
	total := 0
	for _, u := range seg {
		ru := rank[u]
		for _, v := range g.adj[u] {
			d := ru - rank[v]
			if d < 0 {
				d = -d
			}
			total += d
		}
	}
	return total
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// bfsOrder seeds the search with a breadth-first ordering from node 0,
// appending any disconnected remainder in id order.
func bfsOrder(g *Graph) []int {
	order := make([]int, 0, g.N)
	seen := make([]bool, g.N)
	for start := 0; start < g.N; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		order = append(order, start)
		for qi := len(order) - 1; qi < len(order); qi++ {
			for _, v := range g.adj[order[qi]] {
				if !seen[v] {
					seen[v] = true
					order = append(order, v)
				}
			}
		}
	}
	return order
}

// MeshCurve adapts the optimizer to the curve.Curve interface so the
// Paging allocators can run on a searched ordering ("optcurve" spec).
type MeshCurve struct {
	// Iters and Seed mirror Options; zero values use the defaults.
	Iters int
	Seed  int64
}

// Name implements curve.Curve.
func (MeshCurve) Name() string { return "optcurve" }

// Order implements curve.Curve.
func (c MeshCurve) Order(w, h int) []int {
	g := MeshGraph(mesh.New(w, h))
	return Optimize(g, Options{Iters: c.Iters, Seed: c.Seed})
}
