package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"meshalloc/internal/mesh"
)

func testConfig() Config {
	return Config{MessageFlits: 10, FlitCycle: 0.01, HopLatency: 0.005, LocalDelay: 0.001}
}

func TestNewRejectsBadConfig(t *testing.T) {
	m := mesh.New(4, 4)
	for _, cfg := range []Config{
		{MessageFlits: 0, FlitCycle: 0.01},
		{MessageFlits: 4, FlitCycle: -1},
		{MessageFlits: 4, FlitCycle: 0.01, HopLatency: -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", cfg)
				}
			}()
			New(m.Grid(), cfg)
		}()
	}
}

func TestUncontendedLatency(t *testing.T) {
	m := mesh.New(8, 8)
	n := New(m.Grid(), testConfig())
	// 3 hops: 3*0.005 + 10*0.01 = 0.115.
	r := n.Send(m.ID(mesh.Point{X: 0, Y: 0}), m.ID(mesh.Point{X: 3, Y: 0}), 0)
	if r.Hops != 3 {
		t.Fatalf("hops = %d, want 3", r.Hops)
	}
	want := 0.115
	if math.Abs(r.Arrival-want) > 1e-12 {
		t.Fatalf("arrival = %g, want %g", r.Arrival, want)
	}
	if r.Queued != 0 {
		t.Fatalf("queued = %g on idle network", r.Queued)
	}
	if got := n.UncontendedLatency(3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("UncontendedLatency(3) = %g, want %g", got, want)
	}
}

func TestSelfMessageUsesLocalDelay(t *testing.T) {
	m := mesh.New(4, 4)
	n := New(m.Grid(), testConfig())
	r := n.Send(5, 5, 2.0)
	if r.Hops != 0 || r.Arrival != 2.001 {
		t.Fatalf("self message result = %+v", r)
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	m := mesh.New(8, 1)
	n := New(m.Grid(), testConfig())
	// Two messages crossing the same link 0->1 at the same time: the
	// second queues for one service time (0.1).
	r1 := n.Send(0, 2, 0)
	r2 := n.Send(0, 2, 0)
	if r1.Queued != 0 {
		t.Fatalf("first message queued %g", r1.Queued)
	}
	if math.Abs(r2.Queued-0.1) > 1e-12 {
		t.Fatalf("second message queued %g, want 0.1", r2.Queued)
	}
	if r2.Arrival <= r1.Arrival {
		t.Fatal("second message should arrive after the first")
	}
}

func TestOppositeDirectionsDoNotContend(t *testing.T) {
	m := mesh.New(8, 1)
	n := New(m.Grid(), testConfig())
	r1 := n.Send(0, 3, 0)
	r2 := n.Send(3, 0, 0) // full duplex: reverse links are distinct
	if r1.Queued != 0 || r2.Queued != 0 {
		t.Fatalf("duplex messages queued %g and %g", r1.Queued, r2.Queued)
	}
}

func TestDisjointPathsDoNotContend(t *testing.T) {
	m := mesh.New(8, 8)
	n := New(m.Grid(), testConfig())
	r1 := n.Send(m.ID(mesh.Point{X: 0, Y: 0}), m.ID(mesh.Point{X: 3, Y: 0}), 0)
	r2 := n.Send(m.ID(mesh.Point{X: 0, Y: 4}), m.ID(mesh.Point{X: 3, Y: 4}), 0)
	if r1.Queued != 0 || r2.Queued != 0 {
		t.Fatal("disjoint rows should not contend")
	}
}

func TestXYRoutingContention(t *testing.T) {
	// Under x-y routing, a message (0,0)->(2,2) uses link (2,0)->(2,1);
	// a message (2,0)->(2,2) uses the same link. They contend even
	// though their sources differ.
	m := mesh.New(4, 4)
	n := New(m.Grid(), testConfig())
	n.Send(m.ID(mesh.Point{X: 0, Y: 0}), m.ID(mesh.Point{X: 2, Y: 2}), 0)
	r2 := n.Send(m.ID(mesh.Point{X: 2, Y: 0}), m.ID(mesh.Point{X: 2, Y: 2}), 0)
	if r2.Queued <= 0 {
		t.Fatal("column-sharing messages should contend under x-y routing")
	}
}

func TestSendPanicsOnTimeTravel(t *testing.T) {
	m := mesh.New(4, 4)
	n := New(m.Grid(), testConfig())
	n.Send(0, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Send should panic")
		}
	}()
	n.Send(0, 1, 4)
}

func TestStatsAccumulate(t *testing.T) {
	m := mesh.New(8, 8)
	n := New(m.Grid(), testConfig())
	n.Send(0, 1, 0)
	n.Send(0, 2, 0)
	n.Send(3, 3, 1)
	s := n.Stats()
	if s.Messages != 3 {
		t.Fatalf("messages = %d", s.Messages)
	}
	if s.TotalHops != 3 {
		t.Fatalf("total hops = %d, want 3", s.TotalHops)
	}
	if got := s.AvgHops(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("avg hops = %g, want 1", got)
	}
	if s.AvgLatency() <= 0 {
		t.Fatal("avg latency should be positive")
	}
}

func TestReset(t *testing.T) {
	m := mesh.New(4, 4)
	n := New(m.Grid(), testConfig())
	n.Send(0, 5, 10)
	n.Reset()
	if n.Stats().Messages != 0 {
		t.Fatal("stats survive reset")
	}
	r := n.Send(0, 5, 0) // clock must also reset
	if r.Queued != 0 {
		t.Fatal("link state survives reset")
	}
}

func TestEmptyStatsAverages(t *testing.T) {
	var s Stats
	if s.AvgHops() != 0 || s.AvgLatency() != 0 {
		t.Fatal("empty stats should average to 0")
	}
}

// TestArrivalMonotoneInLoad checks the queueing property the whole
// simulation rests on: adding background traffic never speeds up a
// message.
func TestArrivalMonotoneInLoad(t *testing.T) {
	m := mesh.New(8, 8)
	f := func(srcRaw, dstRaw uint8, bg []uint16) bool {
		src := int(srcRaw) % m.Size()
		dst := int(dstRaw) % m.Size()

		quiet := New(m.Grid(), testConfig())
		probeQuiet := quiet.Send(src, dst, 1.0)

		busy := New(m.Grid(), testConfig())
		for _, b := range bg {
			s := int(b>>8) % m.Size()
			d := int(b&0xff) % m.Size()
			busy.Send(s, d, 0.5)
		}
		probeBusy := busy.Send(src, dst, 1.0)

		return probeBusy.Arrival >= probeQuiet.Arrival-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCloserDestinationsArriveSooner checks, on an idle network, the
// locality property allocation exploits: fewer hops means earlier
// delivery.
func TestCloserDestinationsArriveSooner(t *testing.T) {
	m := mesh.New(16, 16)
	n := New(m.Grid(), testConfig())
	prev := -1.0
	for d := 1; d < 16; d++ {
		nn := New(m.Grid(), testConfig())
		r := nn.Send(0, d, 0) // along the bottom row: d hops
		if r.Hops != d {
			t.Fatalf("hops to column %d = %d", d, r.Hops)
		}
		if r.Arrival <= prev {
			t.Fatalf("arrival not increasing with distance at %d hops", d)
		}
		prev = r.Arrival
	}
	_ = n
}

// TestQueueingConservation checks that the aggregate queueing statistic
// equals the sum of per-message queueing over an arbitrary workload.
func TestQueueingConservation(t *testing.T) {
	m := mesh.New(6, 6)
	n := New(m.Grid(), testConfig())
	total := 0.0
	hops := int64(0)
	for i := 0; i < 500; i++ {
		src := (i * 7) % m.Size()
		dst := (i*13 + 5) % m.Size()
		r := n.Send(src, dst, float64(i)*0.01)
		total += r.Queued
		hops += int64(r.Hops)
	}
	s := n.Stats()
	if math.Abs(s.TotalQueueSec-total) > 1e-9 {
		t.Fatalf("TotalQueueSec %g != sum of per-message queueing %g", s.TotalQueueSec, total)
	}
	if s.TotalHops != hops {
		t.Fatalf("TotalHops %d != %d", s.TotalHops, hops)
	}
	if s.Messages != 500 {
		t.Fatalf("Messages = %d", s.Messages)
	}
}

// TestLatencyDecomposition checks that per-message latency equals the
// uncontended baseline plus the queueing delay.
func TestLatencyDecomposition(t *testing.T) {
	m := mesh.New(8, 8)
	n := New(m.Grid(), testConfig())
	for i := 0; i < 200; i++ {
		src := (i * 11) % m.Size()
		dst := (i*17 + 3) % m.Size()
		if src == dst {
			continue
		}
		t0 := float64(i) * 0.02
		r := n.Send(src, dst, t0)
		want := n.UncontendedLatency(r.Hops) + r.Queued
		if math.Abs((r.Arrival-t0)-want) > 1e-9 {
			t.Fatalf("message %d: latency %g != baseline+queued %g", i, r.Arrival-t0, want)
		}
	}
}

func TestRoutingByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Routing
	}{{"", RouteXY}, {"xy", RouteXY}, {"yx", RouteYX}, {"adaptive", RouteAdaptive}} {
		got, err := RoutingByName(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("RoutingByName(%q) = %v, %v", tc.name, got, err)
		}
	}
	if _, err := RoutingByName("west-first"); err == nil {
		t.Error("unknown routing should fail")
	}
	if RouteXY.String() != "xy" || RouteYX.String() != "yx" || RouteAdaptive.String() != "adaptive" {
		t.Error("Routing.String mismatch")
	}
}

func TestYXRoutingUsesColumnFirst(t *testing.T) {
	m := mesh.New(4, 4)
	cfg := testConfig()
	cfg.Routing = RouteYX
	n := New(m.Grid(), cfg)
	// Under y-x routing, (0,0)->(2,2) and (0,2)->(2,2) share the row-2
	// links, unlike under x-y routing.
	n.Send(m.ID(mesh.Point{X: 0, Y: 0}), m.ID(mesh.Point{X: 2, Y: 2}), 0)
	r2 := n.Send(m.ID(mesh.Point{X: 0, Y: 2}), m.ID(mesh.Point{X: 2, Y: 2}), 0)
	if r2.Queued <= 0 {
		t.Fatal("row-sharing messages should contend under y-x routing")
	}
}

func TestAdaptiveRoutingAvoidsCongestion(t *testing.T) {
	m := mesh.New(4, 4)
	cfg := testConfig()
	cfg.Routing = RouteAdaptive
	n := New(m.Grid(), cfg)
	src := m.ID(mesh.Point{X: 0, Y: 0})
	dst := m.ID(mesh.Point{X: 2, Y: 2})
	// Congest the x-y route's first link (0,0)->(1,0) with row traffic.
	for i := 0; i < 5; i++ {
		n.Send(src, m.ID(mesh.Point{X: 3, Y: 0}), 0)
	}
	r := n.Send(src, dst, 0)
	// The adaptive router should take the y-first route and dodge the
	// queue entirely.
	if r.Queued != 0 {
		t.Fatalf("adaptive route queued %g, want 0", r.Queued)
	}

	// A plain x-y network must queue in the same situation.
	nxy := New(m.Grid(), testConfig())
	for i := 0; i < 5; i++ {
		nxy.Send(src, m.ID(mesh.Point{X: 3, Y: 0}), 0)
	}
	if r := nxy.Send(src, dst, 0); r.Queued <= 0 {
		t.Fatal("x-y control should have queued")
	}
}

func TestLinkUtilization(t *testing.T) {
	m := mesh.New(8, 1)
	n := New(m.Grid(), testConfig())
	if u := n.LinkUtilization(); len(u) != m.NumLinks() {
		t.Fatalf("utilization length %d", len(u))
	}
	// Before traffic: zeros.
	for _, u := range n.LinkUtilization() {
		if u != 0 {
			t.Fatal("idle network should have zero utilization")
		}
	}
	// One message 0->1 at t=1: link (0,+x) busy 0.1 over clock 1.
	n.Send(0, 1, 1.0)
	util := n.LinkUtilization()
	li := m.LinkIndex(mesh.Link{From: 0, Dir: mesh.XPos})
	if math.Abs(util[li]-0.1) > 1e-12 {
		t.Fatalf("link utilization %g, want 0.1", util[li])
	}
	// Unused links remain zero.
	other := m.LinkIndex(mesh.Link{From: 3, Dir: mesh.XPos})
	if util[other] != 0 {
		t.Fatal("unused link shows utilization")
	}
}

func TestNodeUtilizationAggregates(t *testing.T) {
	m := mesh.New(4, 4)
	n := New(m.Grid(), testConfig())
	n.Send(0, 3, 1.0) // bottom row eastward
	nu := n.NodeUtilization()
	if len(nu) != 16 {
		t.Fatalf("node utilization length %d", len(nu))
	}
	if nu[0] <= 0 || nu[1] <= 0 || nu[2] <= 0 {
		t.Fatal("sending nodes should show utilization")
	}
	if nu[15] != 0 {
		t.Fatal("far corner should be idle")
	}
}

func TestUtilizationResets(t *testing.T) {
	m := mesh.New(4, 4)
	n := New(m.Grid(), testConfig())
	n.Send(0, 3, 1.0)
	n.Reset()
	for _, u := range n.LinkUtilization() {
		if u != 0 {
			t.Fatal("utilization survives reset")
		}
	}
}

func TestDefaultConfigSane(t *testing.T) {
	// The default is calibrated to the paper's second-scale per-message
	// times (Figure 9: ~0.5-4.5 s per message): one link service time
	// must land in the low single-digit seconds.
	cfg := DefaultConfig()
	if cfg.serviceTime() < 0.5 || cfg.serviceTime() > 10 {
		t.Fatalf("default service time %g s out of the calibrated range", cfg.serviceTime())
	}
	if cfg.HopLatency <= 0 || cfg.HopLatency >= cfg.serviceTime() {
		t.Fatalf("hop latency %g should be positive and below service time", cfg.HopLatency)
	}
}
