// Package netsim is the interconnect model of the microsimulator: an
// event-driven, cycle-accurate link-pipeline approximation of the
// flit-level wormhole simulation performed by ProcSimity. It is
// dimension-generic: the same link pipeline serves the paper's 2-D
// meshes and the native 3-D machines of the ext-cube3d experiment,
// parameterized only by a topo.Grid.
//
// Every directed grid link is a FIFO resource that serializes one flit per
// flit cycle. A message of F flits sent along its dimension-ordered
// route occupies each link on the path for F flit cycles; the header
// advances one hop per hop latency and the body pipelines behind it. When
// a link is still busy with earlier traffic the message queues, which is
// where interjob contention — the phenomenon the allocation algorithms
// fight over — appears. Relative to true wormhole switching the model
// buffers blocked messages at links (virtual cut-through) instead of
// stalling them in place across multiple links; DESIGN.md discusses why
// this preserves the contention structure the paper measures.
//
// Callers must issue Send calls in nondecreasing time order, which the
// simulator's event loop guarantees.
package netsim

import (
	"fmt"

	"meshalloc/internal/topo"
)

// Routing selects the deterministic routing function.
type Routing int

const (
	// RouteXY is ascending dimension-ordered routing — x then y (then
	// z), the paper's (and the Paragon's) algorithm. Default.
	RouteXY Routing = iota
	// RouteYX routes axes in descending order (y then x in 2-D), for
	// routing-sensitivity ablations.
	RouteYX
	// RouteAdaptive picks whichever of the two dimension-ordered routes
	// currently has the lower total queueing delay — a minimal adaptive
	// router in the spirit of ProcSimity's selectable routing.
	RouteAdaptive
)

// String implements fmt.Stringer.
func (r Routing) String() string {
	switch r {
	case RouteYX:
		return "yx"
	case RouteAdaptive:
		return "adaptive"
	default:
		return "xy"
	}
}

// RoutingByName parses a routing name ("xy", "yx", "adaptive").
func RoutingByName(name string) (Routing, error) {
	switch name {
	case "", "xy":
		return RouteXY, nil
	case "yx":
		return RouteYX, nil
	case "adaptive":
		return RouteAdaptive, nil
	default:
		return 0, fmt.Errorf("netsim: unknown routing %q", name)
	}
}

// Config sets the network timing parameters. Times are in simulated
// seconds so they compose directly with trace timestamps.
type Config struct {
	// MessageFlits is the number of flits per message.
	MessageFlits int
	// FlitCycle is the time to move one flit across one link.
	FlitCycle float64
	// HopLatency is the per-hop header/routing latency.
	HopLatency float64
	// LocalDelay is the delivery time of a self-addressed message, which
	// never enters the network.
	LocalDelay float64
	// Routing selects the route function (default RouteXY, as in the
	// paper: "messages use x-y routing").
	Routing Routing
}

// DefaultConfig returns the timing used by the paper-reproduction
// experiments: 64-flit messages with a per-link service time of 3.84 s.
// The paper never states ProcSimity's flit time, but its Figure 9 shows
// ~40,000-message jobs running 20,000-180,000 seconds — second-scale
// per-message times. This default is calibrated so that a mean trace job
// running the all-to-all pattern communicates for roughly its traced
// runtime, which reproduces the machine occupancy (and hence the FCFS
// queueing regime) the paper's response-time figures show.
func DefaultConfig() Config {
	return Config{
		MessageFlits: 64,
		FlitCycle:    0.06,
		HopLatency:   0.05,
		LocalDelay:   0.01,
	}
}

// serviceTime returns how long a message occupies one link.
func (c Config) serviceTime() float64 {
	return float64(c.MessageFlits) * c.FlitCycle
}

// Stats aggregates network activity over a run.
type Stats struct {
	// Messages is the number of messages delivered.
	Messages int64
	// TotalHops is the sum of route lengths.
	TotalHops int64
	// TotalDistSec is the total in-network latency (arrival minus send).
	TotalDistSec float64
	// TotalQueueSec is the total time messages spent waiting for busy
	// links, the direct measure of contention.
	TotalQueueSec float64
}

// AvgHops returns the mean hops per message — the paper's "average
// message distance" metric of Figure 10.
func (s Stats) AvgHops() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Messages)
}

// AvgLatency returns the mean per-message delivery latency.
func (s Stats) AvgLatency() float64 {
	if s.Messages == 0 {
		return 0
	}
	return s.TotalDistSec / float64(s.Messages)
}

// Network is the link-state simulator for one grid machine.
type Network struct {
	m        *topo.Grid
	cfg      Config
	freeAt   []float64 // per directed link: earliest time it is idle
	busyTime []float64 // per directed link: accumulated service time
	stats    Stats
	clock    float64 // latest Send time, for the monotonicity check
	// routeBuf and altBuf are persistent route scratch so steady-state
	// Send is allocation-free; altBuf holds the alternative candidate
	// under adaptive routing.
	routeBuf []topo.Link
	altBuf   []topo.Link
}

// New returns a network over the grid g with the given configuration. It
// panics on non-positive flit counts or negative timings: network timing
// is static configuration.
func New(g *topo.Grid, cfg Config) *Network {
	if cfg.MessageFlits <= 0 || cfg.FlitCycle < 0 || cfg.HopLatency < 0 || cfg.LocalDelay < 0 {
		panic(fmt.Sprintf("netsim: invalid config %+v", cfg))
	}
	maxRoute := 0
	for i := 0; i < g.ND(); i++ {
		maxRoute += g.Dim(i)
	}
	return &Network{
		m:        g,
		cfg:      cfg,
		freeAt:   make([]float64, g.NumLinks()),
		busyTime: make([]float64, g.NumLinks()),
		routeBuf: make([]topo.Link, 0, maxRoute),
		altBuf:   make([]topo.Link, 0, maxRoute),
	}
}

// Result describes one delivered message.
type Result struct {
	// Arrival is the absolute time the last flit reaches the destination.
	Arrival float64
	// Hops is the route length in links (0 for self-addressed messages).
	Hops int
	// Queued is the total time spent waiting for busy links.
	Queued float64
}

// Send injects a message from node src to node dst at time t and returns
// its delivery result. Send must be called with nondecreasing t; it
// panics otherwise, since out-of-order sends would corrupt link state
// silently.
func (n *Network) Send(src, dst int, t float64) Result {
	if t < n.clock {
		panic(fmt.Sprintf("netsim: Send at %g before clock %g", t, n.clock))
	}
	n.clock = t

	if src == dst {
		n.stats.Messages++
		n.stats.TotalDistSec += n.cfg.LocalDelay
		return Result{Arrival: t + n.cfg.LocalDelay}
	}

	service := n.cfg.serviceTime()
	route := n.pickRoute(src, dst, t)
	cur := t
	queued := 0.0
	for _, l := range route {
		li := n.m.LinkIndex(l)
		depart := cur
		if n.freeAt[li] > depart {
			queued += n.freeAt[li] - depart
			depart = n.freeAt[li]
		}
		n.freeAt[li] = depart + service
		n.busyTime[li] += service
		// The header reaches the next router one hop latency after it
		// starts on this link; the body pipelines behind.
		cur = depart + n.cfg.HopLatency
	}
	// After the header arrives, the remaining flits stream in over one
	// link service time.
	arrival := cur + service

	n.stats.Messages++
	n.stats.TotalHops += int64(len(route))
	n.stats.TotalDistSec += arrival - t
	n.stats.TotalQueueSec += queued
	return Result{Arrival: arrival, Hops: len(route), Queued: queued}
}

// pickRoute returns the links a message injected at time t will take. The
// returned slice aliases the network's route scratch and is only valid
// until the next Send.
func (n *Network) pickRoute(src, dst int, t float64) []topo.Link {
	switch n.cfg.Routing {
	case RouteYX:
		n.routeBuf = n.m.AppendRouteRev(n.routeBuf[:0], src, dst)
	case RouteAdaptive:
		n.routeBuf = n.m.AppendRoute(n.routeBuf[:0], src, dst)
		n.altBuf = n.m.AppendRouteRev(n.altBuf[:0], src, dst)
		if n.routeWait(n.altBuf, t) < n.routeWait(n.routeBuf, t) {
			return n.altBuf
		}
	default:
		n.routeBuf = n.m.AppendRoute(n.routeBuf[:0], src, dst)
	}
	return n.routeBuf
}

// routeWait estimates the queueing a message would see on a route if its
// header could teleport: the sum of positive (freeAt - t) over links. It
// is a heuristic for adaptive route selection, not an exact simulation.
func (n *Network) routeWait(route []topo.Link, t float64) float64 {
	wait := 0.0
	for _, l := range route {
		if f := n.freeAt[n.m.LinkIndex(l)]; f > t {
			wait += f - t
		}
	}
	return wait
}

// Stats returns the accumulated network statistics.
func (n *Network) Stats() Stats { return n.stats }

// State is the serializable dynamic state of a Network: per-link idle
// times and busy accumulators, the aggregate statistics, and the send
// clock (which must restore so the monotonicity check keeps holding).
type State struct {
	FreeAt   []float64
	BusyTime []float64
	Stats    Stats
	Clock    float64
}

// State captures the network for a snapshot.
func (n *Network) State() State {
	return State{
		FreeAt:   append([]float64(nil), n.freeAt...),
		BusyTime: append([]float64(nil), n.busyTime...),
		Stats:    n.stats,
		Clock:    n.clock,
	}
}

// SetState restores a state previously captured from a network over the
// same grid. It errors on a link-count mismatch.
func (n *Network) SetState(s State) error {
	if len(s.FreeAt) != len(n.freeAt) || len(s.BusyTime) != len(n.busyTime) {
		return fmt.Errorf("netsim: state has %d/%d links, network has %d",
			len(s.FreeAt), len(s.BusyTime), len(n.freeAt))
	}
	copy(n.freeAt, s.FreeAt)
	copy(n.busyTime, s.BusyTime)
	n.stats = s.Stats
	n.clock = s.Clock
	return nil
}

// Config returns the network's timing configuration.
func (n *Network) Config() Config { return n.cfg }

// Reset clears all link state and statistics.
func (n *Network) Reset() {
	for i := range n.freeAt {
		n.freeAt[i] = 0
		n.busyTime[i] = 0
	}
	n.stats = Stats{}
	n.clock = 0
}

// LinkUtilization returns each directed link's busy fraction over the
// elapsed simulated time (the latest Send time). Before any traffic it
// returns all zeros. A heavily backlogged link can report slightly more
// than 1 because its queued service extends beyond the last send time.
// Index with the grid's LinkIndex.
func (n *Network) LinkUtilization() []float64 {
	util := make([]float64, len(n.busyTime))
	if n.clock <= 0 {
		return util
	}
	for i, b := range n.busyTime {
		util[i] = b / n.clock
	}
	return util
}

// NodeUtilization aggregates link utilization per node: the mean busy
// fraction of each node's outgoing links, a heatmap of where contention
// concentrates.
func (n *Network) NodeUtilization() []float64 {
	util := n.LinkUtilization()
	out := make([]float64, n.m.Size())
	for id := 0; id < n.m.Size(); id++ {
		count := 0
		total := 0.0
		for d := topo.Dir(0); int(d) < n.m.NumDirs(); d++ {
			if _, ok := n.m.Neighbor(id, d); !ok {
				continue
			}
			total += util[n.m.LinkIndex(topo.Link{From: id, Dir: d})]
			count++
		}
		if count > 0 {
			out[id] = total / float64(count)
		}
	}
	return out
}

// UncontendedLatency returns the delivery latency of a message over the
// given hop count on an idle network — the baseline the queueing delay
// adds to.
func (n *Network) UncontendedLatency(hops int) float64 {
	if hops == 0 {
		return n.cfg.LocalDelay
	}
	return float64(hops)*n.cfg.HopLatency + n.cfg.serviceTime()
}
