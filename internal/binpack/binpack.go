// Package binpack implements the processor-selection strategies that the
// Paging / one-dimensional-reduction allocators run along a curve
// linearization of the mesh.
//
// Following Leung et al., each maximal interval of free processors with
// contiguous curve ranks is a partially-filled "bin". An incoming request
// is served from a bin chosen by a bin-packing heuristic (First Fit, Best
// Fit, Sum-of-Squares) or, in the original Paging formulation of Lo et
// al., simply from the prefix of a sorted free list. When no bin is large
// enough, the request falls back to the set of free processors spanning
// the smallest range of curve ranks.
package binpack

import (
	"errors"
	"fmt"

	"meshalloc/internal/occupancy"
)

// Strategy selects which free-rank interval serves a request.
type Strategy int

// Available selection strategies.
const (
	// FreeList allocates the first Size free ranks along the curve
	// (Lo et al.'s sorted free list).
	FreeList Strategy = iota
	// FirstFit allocates from the first interval large enough.
	FirstFit
	// BestFit allocates from the interval that will have the fewest
	// processors remaining.
	BestFit
	// SumOfSquares allocates from the interval that minimizes the sum of
	// squared remaining interval lengths, the adaptation of the
	// Csirik-Johnson Sum-of-Squares bin-packing heuristic that Leung et
	// al. tried and found wanting.
	SumOfSquares
	// WorstFit allocates from the largest interval, the remaining
	// member of Johnson's classic heuristic family; equivalent to
	// SumOfSquares under this adaptation but kept distinct for clarity
	// in ablation studies.
	WorstFit
	// NextFit allocates from the first fitting interval at or after the
	// previously used one, wrapping around — Johnson's cheapest
	// heuristic.
	NextFit
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case FreeList:
		return "freelist"
	case FirstFit:
		return "firstfit"
	case BestFit:
		return "bestfit"
	case SumOfSquares:
		return "sumofsquares"
	case WorstFit:
		return "worstfit"
	case NextFit:
		return "nextfit"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// StrategyByName parses a strategy name as produced by String.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "freelist":
		return FreeList, nil
	case "firstfit":
		return FirstFit, nil
	case "bestfit":
		return BestFit, nil
	case "sumofsquares":
		return SumOfSquares, nil
	case "worstfit":
		return WorstFit, nil
	case "nextfit":
		return NextFit, nil
	default:
		return 0, fmt.Errorf("binpack: unknown strategy %q", name)
	}
}

// ErrInsufficient reports that a request exceeds the free processor count.
var ErrInsufficient = errors.New("binpack: not enough free processors")

// Interval is a maximal run of free curve ranks [Start, Start+Len).
type Interval struct {
	Start, Len int
}

// Packer tracks the free/busy state of processors along a fixed curve
// order and serves allocation requests by rank.
type Packer struct {
	order   []int // node id at each rank
	rankOf  []int // rank of each node id
	free    []bool
	numFree int
	// bits mirrors free in rank space (bit set = free) so interval and
	// prefix enumeration can scan 64 ranks per instruction. free stays the
	// ground truth for double-release detection; bits is kept in lockstep
	// by Allocate/Release/Reset.
	bits     *occupancy.Bitset
	wordScan bool
	// nextStart remembers where NextFit resumes scanning.
	nextStart int
	// ivsBuf and ranksBuf are persistent per-Allocate workspaces so the
	// steady state allocates only the returned id slice.
	ivsBuf   []Interval
	ranksBuf []int
}

// New returns a Packer over the given curve order (a permutation of node
// ids) with every processor free. It panics if order is not a
// permutation: the curve is static configuration.
func New(order []int) *Packer {
	p := &Packer{
		order:    append([]int(nil), order...),
		rankOf:   make([]int, len(order)),
		free:     make([]bool, len(order)),
		numFree:  len(order),
		bits:     occupancy.NewBitset(len(order)),
		wordScan: true,
	}
	p.bits.SetAll()
	for i := range p.rankOf {
		p.rankOf[i] = -1
	}
	for rank, id := range order {
		if id < 0 || id >= len(order) || p.rankOf[id] != -1 {
			panic(fmt.Sprintf("binpack: order is not a permutation (id %d)", id))
		}
		p.rankOf[id] = rank
		p.free[rank] = true
	}
	return p
}

// NumFree returns the number of free processors.
func (p *Packer) NumFree() int { return p.numFree }

// Size returns the total number of processors.
func (p *Packer) Size() int { return len(p.order) }

// Reset marks every processor free.
func (p *Packer) Reset() {
	for i := range p.free {
		p.free[i] = true
	}
	p.bits.SetAll()
	p.numFree = len(p.free)
	p.nextStart = 0
}

// SetWordScan toggles the word-parallel bitset scans (on by default). The
// naive boolean walk is retained as the reference path; both produce
// identical intervals and ranks, pinned by the equivalence tests.
func (p *Packer) SetWordScan(on bool) { p.wordScan = on }

// Intervals returns the current maximal free intervals in rank order.
func (p *Packer) Intervals() []Interval {
	return p.appendIntervals(nil)
}

// AppendIntervals appends the current maximal free intervals to ivs in
// rank order, reusing ivs' capacity. It is the candidate-enumeration hot
// path of every fit strategy, exported for benchmarks and external reuse.
func (p *Packer) AppendIntervals(ivs []Interval) []Interval {
	return p.appendIntervals(ivs)
}

// appendIntervals appends the current maximal free intervals to ivs in
// rank order. The word-parallel path hops between runs with
// TrailingZeros64 scans over the free bitset; the boolean walk is the
// bit-identical reference.
func (p *Packer) appendIntervals(ivs []Interval) []Interval {
	if !p.wordScan {
		return p.appendIntervalsRef(ivs)
	}
	for i := 0; ; {
		j := p.bits.NextSet(i)
		if j < 0 {
			break
		}
		k := p.bits.NextClear(j)
		ivs = append(ivs, Interval{Start: j, Len: k - j})
		i = k
	}
	return ivs
}

// appendIntervalsRef is the naive reference interval scan.
func (p *Packer) appendIntervalsRef(ivs []Interval) []Interval {
	i := 0
	for i < len(p.free) {
		if !p.free[i] {
			i++
			continue
		}
		start := i
		for i < len(p.free) && p.free[i] {
			i++
		}
		ivs = append(ivs, Interval{Start: start, Len: i - start})
	}
	return ivs
}

// Allocate selects size free processors using the strategy, marks them
// busy, and returns their node ids in rank order. It returns
// ErrInsufficient when fewer than size processors are free and rejects
// non-positive sizes.
func (p *Packer) Allocate(size int, s Strategy) ([]int, error) {
	if size <= 0 {
		return nil, fmt.Errorf("binpack: invalid request size %d", size)
	}
	if size > p.numFree {
		return nil, ErrInsufficient
	}
	var ranks []int
	switch s {
	case FreeList:
		ranks = p.prefixRanks(size)
	case FirstFit:
		ranks = p.fitRanks(size, p.pickFirstFit)
	case BestFit:
		ranks = p.fitRanks(size, p.pickBestFit)
	case SumOfSquares:
		ranks = p.fitRanks(size, p.pickSumOfSquares)
	case WorstFit:
		ranks = p.fitRanks(size, p.pickWorstFit)
	case NextFit:
		ranks = p.fitRanks(size, p.pickNextFit)
	default:
		return nil, fmt.Errorf("binpack: unknown strategy %v", s)
	}
	ids := make([]int, len(ranks))
	for i, r := range ranks {
		p.free[r] = false
		p.bits.Clear(r)
		ids[i] = p.order[r]
	}
	p.numFree -= size
	return ids, nil
}

// Release marks the processors with the given node ids free again. It
// panics if an id is already free or out of range, which would indicate a
// double release — a simulator bug worth failing loudly on.
func (p *Packer) Release(ids []int) {
	for _, id := range ids {
		if id < 0 || id >= len(p.rankOf) {
			panic(fmt.Sprintf("binpack: release of invalid id %d", id))
		}
		r := p.rankOf[id]
		if p.free[r] {
			panic(fmt.Sprintf("binpack: double release of id %d", id))
		}
		p.free[r] = true
		p.bits.Set(r)
	}
	p.numFree += len(ids)
}

// Occupy marks exactly the given node ids busy, as if an earlier
// Allocate had returned them — the restore path of a snapshot, where
// the job→nodes assignment is authoritative and the packer's indexes
// are rebuilt to match. It panics on an id that is already busy or out
// of range, which would indicate a corrupt snapshot the caller should
// have rejected.
func (p *Packer) Occupy(ids []int) {
	for _, id := range ids {
		if id < 0 || id >= len(p.rankOf) {
			panic(fmt.Sprintf("binpack: occupy of invalid id %d", id))
		}
		r := p.rankOf[id]
		if !p.free[r] {
			panic(fmt.Sprintf("binpack: occupy of busy id %d", id))
		}
		p.free[r] = false
		p.bits.Clear(r)
	}
	p.numFree -= len(ids)
}

// NextStart returns the NextFit resume rank, the packer's only state
// beyond the free set; SetNextStart restores it on snapshot restore.
func (p *Packer) NextStart() int { return p.nextStart }

// SetNextStart restores the NextFit resume rank. It errors on an
// out-of-range value. (nextStart may legitimately equal Size after an
// allocation ending at the last rank; pickNextFit then wraps.)
func (p *Packer) SetNextStart(r int) error {
	if r < 0 || r > len(p.order) {
		return fmt.Errorf("binpack: next-fit resume rank %d outside [0, %d]", r, len(p.order))
	}
	p.nextStart = r
	return nil
}

// Audit cross-checks the packer's redundant indexes — the boolean free
// array, the bitset mirror, and the cached free count — and returns an
// error describing the first divergence, or nil.
func (p *Packer) Audit() error {
	n := 0
	for r, f := range p.free {
		if f {
			n++
		}
		if p.bits.Get(r) != f {
			return fmt.Errorf("binpack: rank %d free=%v but bitset=%v", r, f, p.bits.Get(r))
		}
	}
	if n != p.numFree {
		return fmt.Errorf("binpack: counted %d free ranks, cached numFree %d", n, p.numFree)
	}
	return nil
}

// MarkDown removes a node from service: its rank reads as busy to
// every strategy, interval scan and free count until MarkUp, exactly
// as if a one-processor job occupied it. It panics if the node is
// currently allocated or already down — the simulator must kill and
// release the occupying job before masking the node.
func (p *Packer) MarkDown(id int) {
	if id < 0 || id >= len(p.rankOf) {
		panic(fmt.Sprintf("binpack: mark down of invalid id %d", id))
	}
	r := p.rankOf[id]
	if !p.free[r] {
		panic(fmt.Sprintf("binpack: mark down of busy or already-down id %d", id))
	}
	p.free[r] = false
	p.bits.Clear(r)
	p.numFree--
}

// MarkUp returns a downed node to service. It panics if the node is
// not currently masked out.
func (p *Packer) MarkUp(id int) {
	if id < 0 || id >= len(p.rankOf) {
		panic(fmt.Sprintf("binpack: mark up of invalid id %d", id))
	}
	r := p.rankOf[id]
	if p.free[r] {
		panic(fmt.Sprintf("binpack: mark up of id %d that is not down", id))
	}
	p.free[r] = true
	p.bits.Set(r)
	p.numFree++
}

// prefixRanks returns the first size free ranks (sorted free list) in the
// persistent rank workspace; the result is only valid until the next
// Allocate call. The word path walks free runs rather than testing every
// rank, so fully busy stretches cost one popcount-scan per 64 ranks.
func (p *Packer) prefixRanks(size int) []int {
	ranks := p.ranksBuf[:0]
	if p.wordScan {
		for i := 0; len(ranks) < size; {
			j := p.bits.NextSet(i)
			if j < 0 {
				break
			}
			k := p.bits.NextClear(j)
			for r := j; r < k && len(ranks) < size; r++ {
				ranks = append(ranks, r)
			}
			i = k
		}
	} else {
		for r := 0; r < len(p.free) && len(ranks) < size; r++ {
			if p.free[r] {
				ranks = append(ranks, r)
			}
		}
	}
	p.ranksBuf = ranks
	return ranks
}

// fitRanks serves a request from the interval chosen by pick, falling
// back to the minimal-span window when no interval is large enough. Like
// prefixRanks it returns a view of the persistent rank workspace.
func (p *Packer) fitRanks(size int, pick func([]Interval, int) int) []int {
	p.ivsBuf = p.appendIntervals(p.ivsBuf[:0])
	if idx := pick(p.ivsBuf, size); idx >= 0 {
		iv := p.ivsBuf[idx]
		ranks := p.ranksBuf[:0]
		for i := 0; i < size; i++ {
			ranks = append(ranks, iv.Start+i)
		}
		p.ranksBuf = ranks
		return ranks
	}
	return p.minSpanRanks(size)
}

// pickFirstFit returns the index of the first interval with Len >= size,
// or -1.
func (p *Packer) pickFirstFit(ivs []Interval, size int) int {
	for i, iv := range ivs {
		if iv.Len >= size {
			return i
		}
	}
	return -1
}

// pickBestFit returns the index of the smallest interval with Len >= size
// (fewest processors remaining), or -1. Ties go to the earliest interval.
func (p *Packer) pickBestFit(ivs []Interval, size int) int {
	best, bestLen := -1, 0
	for i, iv := range ivs {
		if iv.Len >= size && (best == -1 || iv.Len < bestLen) {
			best, bestLen = i, iv.Len
		}
	}
	return best
}

// pickSumOfSquares returns the index of the fitting interval that
// minimizes the sum of squared remaining free-interval lengths after the
// allocation, or -1. Allocating size from an interval of length L changes
// the sum by (L-size)^2 - L^2, so the minimizer is the largest fitting
// interval; ties go to the earliest.
func (p *Packer) pickSumOfSquares(ivs []Interval, size int) int {
	best, bestDelta := -1, 0
	for i, iv := range ivs {
		if iv.Len < size {
			continue
		}
		rem := iv.Len - size
		delta := rem*rem - iv.Len*iv.Len
		if best == -1 || delta < bestDelta {
			best, bestDelta = i, delta
		}
	}
	return best
}

// pickWorstFit returns the index of the largest fitting interval, or -1.
// Ties go to the earliest.
func (p *Packer) pickWorstFit(ivs []Interval, size int) int {
	best, bestLen := -1, 0
	for i, iv := range ivs {
		if iv.Len >= size && iv.Len > bestLen {
			best, bestLen = i, iv.Len
		}
	}
	return best
}

// pickNextFit returns the first fitting interval at or after the last
// allocation point, wrapping around, or -1. It also advances the resume
// point.
func (p *Packer) pickNextFit(ivs []Interval, size int) int {
	if len(ivs) == 0 {
		return -1
	}
	// Find the first interval whose start is >= nextStart.
	first := 0
	for i, iv := range ivs {
		if iv.Start >= p.nextStart {
			first = i
			break
		}
		if i == len(ivs)-1 {
			first = 0 // wrap
		}
	}
	for k := 0; k < len(ivs); k++ {
		i := (first + k) % len(ivs)
		if ivs[i].Len >= size {
			p.nextStart = ivs[i].Start + size
			return i
		}
	}
	return -1
}

// minSpanRanks returns the size free ranks whose range of ranks along the
// curve is smallest — the fallback of Leung et al. when no bin can hold
// the whole request. Ties go to the earliest window.
func (p *Packer) minSpanRanks(size int) []int {
	freeRanks := p.prefixRanks(p.numFree)
	bestStart, bestSpan := 0, -1
	for i := 0; i+size <= len(freeRanks); i++ {
		span := freeRanks[i+size-1] - freeRanks[i]
		if bestSpan == -1 || span < bestSpan {
			bestStart, bestSpan = i, span
		}
	}
	return freeRanks[bestStart : bestStart+size]
}
