package binpack

import (
	"testing"
	"testing/quick"
)

// identityOrder returns the trivial curve 0..n-1.
func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

func TestNewRejectsNonPermutation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New should panic on duplicate ids")
		}
	}()
	New([]int{0, 0, 2})
}

func TestAllocateErrors(t *testing.T) {
	p := New(identityOrder(4))
	if _, err := p.Allocate(0, BestFit); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := p.Allocate(-1, BestFit); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := p.Allocate(5, BestFit); err != ErrInsufficient {
		t.Errorf("oversize request error = %v, want ErrInsufficient", err)
	}
}

func TestFreeListTakesPrefix(t *testing.T) {
	// Curve order reverses ids so rank 0 is id 3.
	p := New([]int{3, 2, 1, 0})
	ids, err := p.Allocate(2, FreeList)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 2 {
		t.Fatalf("free list allocated %v, want [3 2]", ids)
	}
}

// carve sets up a packer with the free-interval profile given by lengths
// of alternating free/busy runs, starting free.
func carve(t *testing.T, freeRuns, busyRuns []int) *Packer {
	t.Helper()
	n := 0
	for _, l := range freeRuns {
		n += l
	}
	for _, l := range busyRuns {
		n += l
	}
	p := New(identityOrder(n))
	pos := 0
	for i := range freeRuns {
		pos += freeRuns[i]
		if i < len(busyRuns) {
			var busy []int
			for j := 0; j < busyRuns[i]; j++ {
				busy = append(busy, pos+j)
			}
			// Allocate the exact busy ids via free list on a fresh
			// sub-interval is fiddly; mark directly through Allocate
			// by temporarily using internal knowledge is worse. We
			// use Release/Allocate invariants instead: allocate
			// everything then release what should stay free.
			pos += busyRuns[i]
			_ = busy
		}
	}
	// Simpler: allocate all, then release the free runs.
	all, err := p.Allocate(n, FreeList)
	if err != nil {
		t.Fatal(err)
	}
	_ = all
	pos = 0
	for i := range freeRuns {
		var free []int
		for j := 0; j < freeRuns[i]; j++ {
			free = append(free, pos+j)
		}
		p.Release(free)
		pos += freeRuns[i]
		if i < len(busyRuns) {
			pos += busyRuns[i]
		}
	}
	return p
}

func TestIntervals(t *testing.T) {
	p := carve(t, []int{3, 5, 2}, []int{1, 4})
	ivs := p.Intervals()
	want := []Interval{{0, 3}, {4, 5}, {13, 2}}
	if len(ivs) != len(want) {
		t.Fatalf("intervals = %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", ivs, want)
		}
	}
}

func TestFirstFitPicksFirstBin(t *testing.T) {
	p := carve(t, []int{3, 5, 4}, []int{1, 1})
	ids, err := p.Allocate(3, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	// First bin [0,3) fits exactly.
	if ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("first fit allocated %v, want ranks 0-2", ids)
	}
}

func TestBestFitPicksTightestBin(t *testing.T) {
	p := carve(t, []int{5, 3, 4}, []int{1, 1})
	ids, err := p.Allocate(3, BestFit)
	if err != nil {
		t.Fatal(err)
	}
	// Bins are len 5 at 0, len 3 at 6, len 4 at 10; best fit is len 3.
	if ids[0] != 6 {
		t.Fatalf("best fit allocated %v, want start at rank 6", ids)
	}
}

func TestBestFitTieGoesEarliest(t *testing.T) {
	p := carve(t, []int{3, 3}, []int{2})
	ids, err := p.Allocate(2, BestFit)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 0 {
		t.Fatalf("best fit tie allocated %v, want start 0", ids)
	}
}

func TestSumOfSquaresPicksLargestBin(t *testing.T) {
	p := carve(t, []int{5, 3, 7}, []int{1, 1})
	ids, err := p.Allocate(3, SumOfSquares)
	if err != nil {
		t.Fatal(err)
	}
	// Largest bin (len 7 at rank 10) minimizes the resulting sum of
	// squares.
	if ids[0] != 10 {
		t.Fatalf("sum-of-squares allocated %v, want start at rank 10", ids)
	}
}

func TestFallbackMinSpan(t *testing.T) {
	// Bins: len 2 at 0, len 2 at 4, len 3 at 9; request 4 fits nowhere.
	p := carve(t, []int{2, 2, 3}, []int{2, 3})
	for _, s := range []Strategy{FirstFit, BestFit, SumOfSquares} {
		q := carve(t, []int{2, 2, 3}, []int{2, 3})
		ids, err := q.Allocate(4, s)
		if err != nil {
			t.Fatal(err)
		}
		// Candidate windows over free ranks [0,1,4,5,9,10,11]:
		// span(0,1,4,5)=5, span(1,4,5,9)=8, span(4,5,9,10)=6,
		// span(5,9,10,11)=6 — minimum is the first.
		if ids[0] != 0 || ids[3] != 5 {
			t.Errorf("%v fallback allocated %v, want [0 1 4 5]", s, ids)
		}
	}
	_ = p
}

func TestReleaseRestoresState(t *testing.T) {
	p := New(identityOrder(10))
	ids, _ := p.Allocate(4, BestFit)
	if p.NumFree() != 6 {
		t.Fatalf("NumFree = %d, want 6", p.NumFree())
	}
	p.Release(ids)
	if p.NumFree() != 10 {
		t.Fatalf("NumFree after release = %d, want 10", p.NumFree())
	}
	if len(p.Intervals()) != 1 {
		t.Fatalf("intervals after full release: %v", p.Intervals())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := New(identityOrder(4))
	ids, _ := p.Allocate(2, FreeList)
	p.Release(ids)
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	p.Release(ids)
}

func TestReset(t *testing.T) {
	p := New(identityOrder(8))
	p.Allocate(5, FreeList)
	p.Reset()
	if p.NumFree() != 8 {
		t.Fatalf("NumFree after reset = %d", p.NumFree())
	}
}

func TestWorstFitPicksLargestBin(t *testing.T) {
	p := carve(t, []int{5, 3, 7}, []int{1, 1})
	ids, err := p.Allocate(3, WorstFit)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 10 {
		t.Fatalf("worst fit allocated %v, want start at rank 10", ids)
	}
}

func TestNextFitResumesAndWraps(t *testing.T) {
	// Bins: [0,4) [5,9) [10,14).
	p := carve(t, []int{4, 4, 4}, []int{1, 1})
	a, err := p.Allocate(2, NextFit)
	if err != nil || a[0] != 0 {
		t.Fatalf("first next-fit = %v, %v", a, err)
	}
	// Resume point is rank 2; the remainder of bin 0 serves next.
	b, err := p.Allocate(2, NextFit)
	if err != nil || b[0] != 2 {
		t.Fatalf("second next-fit = %v, %v", b, err)
	}
	// Bin 0 exhausted; moves to bin at rank 5.
	c, err := p.Allocate(3, NextFit)
	if err != nil || c[0] != 5 {
		t.Fatalf("third next-fit = %v, %v", c, err)
	}
	// Request 4 only fits the last bin.
	d, err := p.Allocate(4, NextFit)
	if err != nil || d[0] != 10 {
		t.Fatalf("fourth next-fit = %v, %v", d, err)
	}
	// Wrap around: release the first bin and allocate again.
	p.Release(a)
	p.Release(b)
	e, err := p.Allocate(4, NextFit)
	if err != nil || e[0] != 0 {
		t.Fatalf("wrapped next-fit = %v, %v", e, err)
	}
}

func TestStrategyStringRoundTrip(t *testing.T) {
	for _, s := range []Strategy{FreeList, FirstFit, BestFit, SumOfSquares, WorstFit, NextFit} {
		got, err := StrategyByName(s.String())
		if err != nil || got != s {
			t.Errorf("round trip of %v failed: %v, %v", s, got, err)
		}
	}
	if _, err := StrategyByName("almostfit"); err == nil {
		t.Error("unknown strategy should fail")
	}
}

// TestAllocateReleaseProperty checks with testing/quick that any sequence
// of allocations and releases keeps the packer's bookkeeping consistent:
// allocated ids are unique, never handed out twice while busy, and
// NumFree matches the interval totals.
func TestAllocateReleaseProperty(t *testing.T) {
	f := func(ops []uint8, strat uint8) bool {
		p := New(identityOrder(24))
		s := Strategy(strat % 6)
		var live [][]int
		for _, op := range ops {
			if op%2 == 0 && p.NumFree() > 0 {
				size := int(op/2)%p.NumFree() + 1
				ids, err := p.Allocate(size, s)
				if err != nil || len(ids) != size {
					return false
				}
				live = append(live, ids)
			} else if len(live) > 0 {
				p.Release(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		total := 0
		for _, iv := range p.Intervals() {
			total += iv.Len
		}
		if total != p.NumFree() {
			return false
		}
		busy := 0
		for _, ids := range live {
			busy += len(ids)
		}
		return busy+p.NumFree() == 24
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
