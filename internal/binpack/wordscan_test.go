package binpack

import (
	"testing"
)

// bpRand is the repo-standard xorshift64 PRNG for deterministic tests.
type bpRand uint64

func (r *bpRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = bpRand(x)
	return x
}

var allStrategies = []Strategy{FreeList, FirstFit, BestFit, SumOfSquares, WorstFit, NextFit}

// churnPair drives two packers through the identical allocate/release
// sequence and fails if they ever disagree on ids, free counts, or
// intervals. steps and seed parameterize the workload.
func churnPair(t *testing.T, word, ref *Packer, s Strategy, seed uint64, steps int) {
	t.Helper()
	r := bpRand(seed)
	var live [][]int
	for step := 0; step < steps; step++ {
		if r.next()%3 != 0 && word.NumFree() > 0 {
			size := int(r.next())%word.NumFree() + 1
			if size < 0 {
				size = -size
			}
			a, errA := word.Allocate(size, s)
			b, errB := ref.Allocate(size, s)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("step %d: error mismatch %v vs %v", step, errA, errB)
			}
			if errA != nil {
				continue
			}
			if len(a) != len(b) {
				t.Fatalf("step %d: len %d vs %d", step, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("step %d id %d: word %d vs ref %d", step, i, a[i], b[i])
				}
			}
			live = append(live, a)
		} else if len(live) > 0 {
			i := int(r.next()) % len(live)
			if i < 0 {
				i = -i
			}
			word.Release(live[i])
			ref.Release(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if word.NumFree() != ref.NumFree() {
			t.Fatalf("step %d: NumFree %d vs %d", step, word.NumFree(), ref.NumFree())
		}
		wi, ri := word.Intervals(), ref.Intervals()
		if len(wi) != len(ri) {
			t.Fatalf("step %d: intervals %v vs %v", step, wi, ri)
		}
		for i := range wi {
			if wi[i] != ri[i] {
				t.Fatalf("step %d: intervals %v vs %v", step, wi, ri)
			}
		}
	}
}

// TestWordScanMatchesNaive churns word-scan and naive packers through the
// same workload for every strategy and several awkward sizes (word
// boundaries, sub-word, multi-word).
func TestWordScanMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 17, 64, 65, 127, 128, 300, 1024} {
		for _, s := range allStrategies {
			word := New(identityOrder(n))
			ref := New(identityOrder(n))
			ref.SetWordScan(false)
			churnPair(t, word, ref, s, uint64(n)*13+uint64(s)+1, 200)
		}
	}
}

// TestWordScanBitsMirrorsFree checks the bitset invariant directly after a
// churn: bit r set iff free[r], and pad bits clear.
func TestWordScanBitsMirrorsFree(t *testing.T) {
	p := New(identityOrder(130))
	r := bpRand(5)
	var live [][]int
	for step := 0; step < 400; step++ {
		if r.next()%3 != 0 && p.NumFree() > 0 {
			size := int(r.next()%uint64(p.NumFree())) + 1
			ids, err := p.Allocate(size, allStrategies[step%len(allStrategies)])
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, ids)
		} else if len(live) > 0 {
			p.Release(live[len(live)-1])
			live = live[:len(live)-1]
		}
		for rank, free := range p.free {
			if p.bits.Get(rank) != free {
				t.Fatalf("step %d: bit %d = %v, free = %v", step, rank, p.bits.Get(rank), free)
			}
		}
		if p.bits.Count() != p.NumFree() {
			t.Fatalf("step %d: bit count %d, NumFree %d", step, p.bits.Count(), p.NumFree())
		}
	}
}

// FuzzWordScanEquivalence fuzzes the word/naive pairing over arbitrary
// op streams: identical allocations, errors, and interval structure.
func FuzzWordScanEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(64), uint8(1))
	f.Add(uint64(99), uint8(200), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, size, strat uint8) {
		n := int(size)%512 + 1
		s := allStrategies[int(strat)%len(allStrategies)]
		word := New(identityOrder(n))
		ref := New(identityOrder(n))
		ref.SetWordScan(false)
		churnPair(t, word, ref, s, seed|1, 120)
	})
}
