package curve

// Dimension-generic orderings. The 2-D Curve interface stays the
// package's primary vocabulary (and the 2-D constructions stay
// bit-identical); curves that also order n-dimensional grids implement
// DimCurve, which is what lets the Paging family run unchanged on the
// native 3-D machines of the ext-cube3d experiment.
//
// The n-D Hilbert curve is Skilling's transpose construction
// ("Programming the Hilbert curve", AIP 2004) — the standard
// multidimensional Hilbert indexing that the paper's Alber–Niedermeier
// reference generalizes — truncated from the enclosing power-of-two
// hypercube exactly as the 2-D curves are truncated in Figure 6.

import (
	"fmt"

	"meshalloc/internal/topo"
)

// DimCurve orders the nodes of an n-dimensional grid. OrderDims returns
// all nodes of the dims grid as dense axis-0-fastest ids (topo.Grid's id
// order), a permutation of [0, prod(dims)).
type DimCurve interface {
	OrderDims(dims []int) []int
}

// SupportsDims reports whether curve c can order a grid of the given
// dimensionality.
func SupportsDims(c Curve, nd int) bool {
	if nd == 2 {
		return true
	}
	_, ok := c.(DimCurve)
	return ok
}

// GridOrder returns the nodes of the dims grid in curve order: the
// classic 2-D ordering for two-dimensional grids (bit-identical to
// c.Order) and the curve's n-D construction otherwise. Curves without an
// n-D construction (H-indexing and the Moore cycle are defined on
// squares) yield an error.
func GridOrder(c Curve, dims []int) ([]int, error) {
	if len(dims) == 2 {
		return c.Order(dims[0], dims[1]), nil
	}
	dc, ok := c.(DimCurve)
	if !ok {
		return nil, fmt.Errorf("curve: %s cannot order a %d-D grid", c.Name(), len(dims))
	}
	return dc.OrderDims(dims), nil
}

// strides returns the dense-id strides of a dims grid (axis 0 fastest)
// and the total node count.
func strides(dims []int) ([]int, int) {
	s := make([]int, len(dims))
	size := 1
	for i, d := range dims {
		s[i] = size
		size *= d
	}
	return s, size
}

// maxDim returns the largest extent.
func maxDim(dims []int) int {
	m := 0
	for _, d := range dims {
		if d > m {
			m = d
		}
	}
	return m
}

// OrderDims implements DimCurve: the identity (axis-0-fastest) ordering.
func (RowMajor) OrderDims(dims []int) []int {
	_, size := strides(dims)
	order := make([]int, size)
	for i := range order {
		order[i] = i
	}
	return order
}

// OrderDims implements DimCurve: the n-D boustrophedon. The runs move
// along axis 0; each axis reverses direction whenever any higher axis
// advances, so consecutive cells are always grid-adjacent — the direct
// generalization of the 3-D snake the cube study used. For 2-D grids it
// delegates to Order, which picks the run direction by mesh shape.
func (c SCurve) OrderDims(dims []int) []int {
	if len(dims) == 2 {
		return c.Order(dims[0], dims[1])
	}
	st, size := strides(dims)
	nd := len(dims)
	order := make([]int, 0, size)
	// it holds per-axis iteration positions; the coordinate on axis i
	// runs ascending or descending depending on the parity of the number
	// of completed axis-i runs, which is the mixed-radix value of the
	// iteration positions of all higher axes.
	it := make([]int, nd)
	for {
		id := 0
		for i := 0; i < nd; i++ {
			runs := 0
			mult := 1
			for j := i + 1; j < nd; j++ {
				runs += it[j] * mult
				mult *= dims[j]
			}
			v := it[i]
			if runs%2 == 1 {
				v = dims[i] - 1 - v
			}
			id += v * st[i]
		}
		order = append(order, id)
		i := 0
		for ; i < nd; i++ {
			it[i]++
			if it[i] < dims[i] {
				break
			}
			it[i] = 0
		}
		if i == nd {
			return order
		}
	}
}

// OrderDims implements DimCurve: the n-D Hilbert curve via Skilling's
// transpose construction, truncated from the enclosing power-of-two
// hypercube. For 2-D grids it delegates to Order so the paper's meshes
// keep the classic orientation.
func (h Hilbert) OrderDims(dims []int) []int {
	if len(dims) == 2 {
		return h.Order(dims[0], dims[1])
	}
	nd := len(dims)
	st, size := strides(dims)
	n := nextPow2(maxDim(dims))
	total := 1
	for i := 0; i < nd; i++ {
		total *= n
	}
	order := make([]int, 0, size)
	for d := 0; d < total; d++ {
		p := HilbertPoint(n, nd, d)
		id, ok := 0, true
		for i := 0; i < nd; i++ {
			if p[i] >= dims[i] {
				ok = false
				break
			}
			id += p[i] * st[i]
		}
		if ok {
			order = append(order, id)
		}
	}
	return order
}

// HilbertPoint converts a distance along the nd-dimensional Hilbert
// curve of an n^nd hypercube (n a power of two, nd <= topo.MaxDims) to
// coordinates, using Skilling's transpose algorithm. Unused axes of the
// returned point are zero.
func HilbertPoint(n, nd, d int) topo.Point {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	// Untranspose the index: bit lvl of axis i comes from bit
	// (nd*lvl + (nd-1-i)) of d, most-significant level first.
	var x [topo.MaxDims]uint32
	for lvl := 0; lvl < b; lvl++ {
		for i := 0; i < nd; i++ {
			if d>>(uint(nd*lvl+(nd-1-i)))&1 == 1 {
				x[i] |= 1 << uint(lvl)
			}
		}
	}
	// Gray decode.
	t := x[nd-1] >> 1
	for i := nd - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != uint32(n); q <<= 1 {
		p := q - 1
		for i := nd - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p // invert low bits of x[0]
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t // exchange low bits of x[0] and x[i]
			}
		}
	}
	var out topo.Point
	for i := 0; i < nd; i++ {
		out[i] = int(x[i])
	}
	return out
}

// HilbertIndex is the inverse of HilbertPoint: it returns the distance
// along the nd-dimensional Hilbert curve of the n^nd hypercube at which
// the curve visits p. HilbertIndex(n, nd, HilbertPoint(n, nd, d)) == d
// for every d in [0, n^nd) — the bijectivity the fuzz test pins.
func HilbertIndex(n, nd int, p topo.Point) int {
	var x [topo.MaxDims]uint32
	for i := 0; i < nd; i++ {
		x[i] = uint32(p[i])
	}
	// Inverse undo: reapply the excess work top-down.
	for q := uint32(n) / 2; q > 1; q >>= 1 {
		pmask := q - 1
		for i := 0; i < nd; i++ {
			if x[i]&q != 0 {
				x[0] ^= pmask
			} else {
				t := (x[0] ^ x[i]) & pmask
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < nd; i++ {
		x[i] ^= x[i-1]
	}
	t := uint32(0)
	for q := uint32(n) / 2; q > 1; q >>= 1 {
		if x[nd-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < nd; i++ {
		x[i] ^= t
	}
	// Transpose back to the index.
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	d := 0
	for lvl := 0; lvl < b; lvl++ {
		for i := 0; i < nd; i++ {
			if x[i]>>uint(lvl)&1 == 1 {
				d |= 1 << uint(nd*lvl+(nd-1-i))
			}
		}
	}
	return d
}

// OrderDims implements DimCurve: the n-D Morton (Z-order) curve, ranks
// interleaving the coordinate bits with axis 0 in the lowest position,
// truncated from the enclosing power-of-two hypercube.
func (z ZOrder) OrderDims(dims []int) []int {
	if len(dims) == 2 {
		return z.Order(dims[0], dims[1])
	}
	nd := len(dims)
	st, size := strides(dims)
	n := nextPow2(maxDim(dims))
	total := 1
	for i := 0; i < nd; i++ {
		total *= n
	}
	order := make([]int, 0, size)
	for d := 0; d < total; d++ {
		id, ok := 0, true
		for i := 0; i < nd; i++ {
			v := deinterleaveN(d>>uint(i), nd)
			if v >= dims[i] {
				ok = false
				break
			}
			id += v * st[i]
		}
		if ok {
			order = append(order, id)
		}
	}
	return order
}

// deinterleaveN extracts every nd-th bit of v, starting at bit 0.
func deinterleaveN(v, nd int) int {
	out := 0
	for bit := 0; v != 0; bit++ {
		out |= (v & 1) << uint(bit)
		v >>= uint(nd)
	}
	return out
}

// Projected lifts a 2-D curve onto higher-dimensional grids by
// projection: axes 1..n-1 are unfolded into one long y axis, the inner
// curve orders the resulting 2-D plane, and the ordering is mapped back
// to the full grid. This is exactly the strategy the paper applied to
// CPlant — treat the physically 3-D machine as a 2-D mesh for
// allocation — so comparing "proj2d-hilbert" against native "hilbert" on
// a 3-D grid measures the contention signal the projection loses. On
// 2-D grids the projection is the identity.
type Projected struct {
	Inner Curve
}

// ProjectedPrefix is the spec prefix naming projected curves, e.g.
// "proj2d-hilbert".
const ProjectedPrefix = "proj2d-"

// Name implements Curve.
func (p Projected) Name() string { return ProjectedPrefix + p.Inner.Name() }

// Order implements Curve: in 2-D the projection is the identity.
func (p Projected) Order(w, h int) []int { return p.Inner.Order(w, h) }

// OrderDims implements DimCurve.
func (p Projected) OrderDims(dims []int) []int {
	if len(dims) == 2 {
		return p.Order(dims[0], dims[1])
	}
	st, _ := strides(dims)
	w := dims[0]
	flatH := 1
	for _, d := range dims[1:] {
		flatH *= d
	}
	flat := p.Inner.Order(w, flatH)
	order := make([]int, len(flat))
	for i, fid := range flat {
		x, yy := fid%w, fid/w
		// Unfold yy back into axes 1..n-1 (axis 1 fastest), mirroring the
		// dense id layout.
		id := x * st[0]
		for a := 1; a < len(dims); a++ {
			id += (yy % dims[a]) * st[a]
			yy /= dims[a]
		}
		order[i] = id
	}
	return order
}
