package curve

import (
	"strings"
	"testing"
)

// Golden orderings pin down the exact curve constructions so silent
// changes to the recursions are caught. The 4x4 grids below are rank
// grids: the number at each cell is the cell's position along the curve.

func golden(t *testing.T, c Curve, w, h int, want string) {
	t.Helper()
	got := strings.TrimSpace(Render(c.Order(w, h), w, h))
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("%s %dx%d:\ngot:\n%s\nwant:\n%s", c.Name(), w, h, got, want)
	}
}

func TestGoldenHilbert4x4(t *testing.T) {
	golden(t, Hilbert{}, 4, 4, `
 0  1 14 15
 3  2 13 12
 4  7  8 11
 5  6  9 10`)
}

func TestGoldenSCurve4x4(t *testing.T) {
	golden(t, SCurve{}, 4, 4, `
 0  1  2  3
 7  6  5  4
 8  9 10 11
15 14 13 12`)
}

func TestGoldenHIndexing4x4(t *testing.T) {
	// The triangle recursion of hindex.go: T(4) then its point
	// reflection.
	golden(t, HIndexing{}, 4, 4, `
 0  1  2  3
15 14  5  4
12 13  6  7
11 10  9  8`)
}

func TestGoldenZOrder4x4(t *testing.T) {
	golden(t, ZOrder{}, 4, 4, `
 0  1  4  5
 2  3  6  7
 8  9 12 13
10 11 14 15`)
}

func TestGoldenRowMajor2x3(t *testing.T) {
	golden(t, RowMajor{}, 2, 3, `
0 1
2 3
4 5`)
}

func TestGoldenMoore4x4(t *testing.T) {
	// Four rotated 2x2 Hilbert curves chained into a cycle: left column
	// ascends, right column descends.
	golden(t, Moore{}, 4, 4, `
 1  0 15 14
 2  3 12 13
 5  4 11 10
 6  7  8  9`)
}
