// Package curve implements the mesh linearizations ("page orderings") used
// by the Paging / one-dimensional-reduction allocators: row-major, the
// boustrophedon S-curve, the Hilbert space-filling curve, and the
// H-indexing of Niedermeier, Reinhardt and Sanders.
//
// Hilbert and H-indexing are defined on 2^k x 2^k squares; for other mesh
// shapes they are truncated from the enclosing power-of-two square exactly
// as in the paper (Figure 6), which introduces rank gaps along the
// truncation edges.
package curve

import (
	"fmt"
	"sort"
	"strings"

	"meshalloc/internal/mesh"
)

// Curve produces an ordering of the nodes of a w x h mesh.
type Curve interface {
	// Name returns the curve's registry name, e.g. "hilbert".
	Name() string
	// Order returns all w*h row-major node ids in curve order. The
	// result is a permutation of [0, w*h).
	Order(w, h int) []int
}

// Ranks inverts an ordering: ranks[id] is the position of node id along
// the curve. It panics if order is not a permutation, since a malformed
// curve is a programming error.
func Ranks(order []int) []int {
	ranks := make([]int, len(order))
	for i := range ranks {
		ranks[i] = -1
	}
	for pos, id := range order {
		if id < 0 || id >= len(order) || ranks[id] != -1 {
			panic(fmt.Sprintf("curve: order is not a permutation (id %d at position %d)", id, pos))
		}
		ranks[id] = pos
	}
	return ranks
}

// pointsToIDs converts curve points to row-major node ids, dropping points
// outside the w x h mesh. This implements the truncation of a power-of-two
// curve to an arbitrary mesh.
func pointsToIDs(pts []mesh.Point, w, h int) []int {
	ids := make([]int, 0, w*h)
	for _, p := range pts {
		if p.X < w && p.Y < h && p.X >= 0 && p.Y >= 0 {
			ids = append(ids, p.Y*w+p.X)
		}
	}
	return ids
}

// nextPow2 returns the smallest power of two >= n (and >= 2).
func nextPow2(n int) int {
	p := 2
	for p < n {
		p *= 2
	}
	return p
}

// ByName returns the curve registered under name. Recognized names:
// "rowmajor", "scurve", "scurve-long", "hilbert", "hindex", "zorder",
// "moore", and "proj2d-<name>" for the 2-D projection of any of them
// onto higher-dimensional grids.
func ByName(name string) (Curve, error) {
	if rest, ok := strings.CutPrefix(name, ProjectedPrefix); ok {
		inner, err := ByName(rest)
		if err != nil {
			return nil, err
		}
		return Projected{Inner: inner}, nil
	}
	switch name {
	case "rowmajor":
		return RowMajor{}, nil
	case "scurve":
		return SCurve{}, nil
	case "scurve-long":
		return SCurve{LongDirection: true}, nil
	case "hilbert":
		return Hilbert{}, nil
	case "hindex":
		return HIndexing{}, nil
	case "zorder":
		return ZOrder{}, nil
	case "moore":
		return Moore{}, nil
	default:
		return nil, fmt.Errorf("curve: unknown curve %q", name)
	}
}

// All returns the registry names of every available curve.
func All() []string {
	names := []string{"rowmajor", "scurve", "scurve-long", "hilbert", "hindex", "zorder", "moore"}
	sort.Strings(names)
	return names
}

// RowMajor orders nodes row by row, left to right. It is the simplest
// page ordering considered by Lo et al. and serves as a baseline.
type RowMajor struct{}

// Name implements Curve.
func (RowMajor) Name() string { return "rowmajor" }

// Order implements Curve.
func (RowMajor) Order(w, h int) []int {
	order := make([]int, w*h)
	for i := range order {
		order[i] = i
	}
	return order
}

// SCurve is the boustrophedon ("snake") ordering. Following the paper, the
// long straight runs of the curve move along the mesh's shorter dimension
// by default ("quick simulations seemed to indicate that the short
// direction is better"); LongDirection flips that choice for ablation.
type SCurve struct {
	// LongDirection, when set, makes the runs follow the longer mesh
	// dimension instead of the shorter one.
	LongDirection bool
}

// Name implements Curve.
func (c SCurve) Name() string {
	if c.LongDirection {
		return "scurve-long"
	}
	return "scurve"
}

// Order implements Curve.
func (c SCurve) Order(w, h int) []int {
	runsAlongX := w <= h // runs along the shorter dimension
	if c.LongDirection {
		runsAlongX = !runsAlongX
	}
	order := make([]int, 0, w*h)
	if runsAlongX {
		for y := 0; y < h; y++ {
			if y%2 == 0 {
				for x := 0; x < w; x++ {
					order = append(order, y*w+x)
				}
			} else {
				for x := w - 1; x >= 0; x-- {
					order = append(order, y*w+x)
				}
			}
		}
	} else {
		for x := 0; x < w; x++ {
			if x%2 == 0 {
				for y := 0; y < h; y++ {
					order = append(order, y*w+x)
				}
			} else {
				for y := h - 1; y >= 0; y-- {
					order = append(order, y*w+x)
				}
			}
		}
	}
	return order
}

// Hilbert is the Hilbert space-filling curve, truncated from the enclosing
// power-of-two square for non-power-of-two or non-square meshes.
type Hilbert struct{}

// Name implements Curve.
func (Hilbert) Name() string { return "hilbert" }

// Order implements Curve.
func (Hilbert) Order(w, h int) []int {
	n := nextPow2(max(w, h))
	pts := make([]mesh.Point, 0, n*n)
	for d := 0; d < n*n; d++ {
		x, y := hilbertD2XY(n, d)
		pts = append(pts, mesh.Point{X: x, Y: y})
	}
	return pointsToIDs(pts, w, h)
}

// hilbertD2XY converts a distance along the Hilbert curve of an n x n grid
// (n a power of two) to grid coordinates, using the classic bit-twiddling
// construction.
func hilbertD2XY(n, d int) (x, y int) {
	t := d
	for s := 1; s < n; s *= 2 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// Moore is the Moore curve: the closed-loop variant of the Hilbert curve,
// built from four Hilbert sub-curves arranged in a cycle. Like
// H-indexing it is a Hamiltonian cycle of the power-of-two square, which
// makes it a useful control when studying whether H-indexing's behaviour
// comes from being a cycle or from its triangle structure.
type Moore struct{}

// Name implements Curve.
func (Moore) Name() string { return "moore" }

// Order implements Curve.
func (Moore) Order(w, h int) []int {
	n := nextPow2(max(w, h))
	pts := make([]mesh.Point, 0, n*n)
	if n == 2 {
		pts = []mesh.Point{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 0}}
		return pointsToIDs(pts, w, h)
	}
	s := n / 2
	// Four Hilbert curves of size s chained into a cycle. The canonical
	// Hilbert curve runs (0,0) -> (s-1,0); rotating it counterclockwise
	// puts both endpoints on the right edge running bottom-to-top, and
	// clockwise on the left edge running top-to-bottom. The left column
	// of quadrants climbs, the right column descends, and the four
	// junctions (and the closing edge) are all unit steps.
	ccw := func(x, y int) (int, int) { return s - 1 - y, x }
	cw := func(x, y int) (int, int) { return y, s - 1 - x }
	quadrants := []struct {
		rot        func(int, int) (int, int)
		offX, offY int
	}{
		{ccw, 0, 0}, // bottom-left: (s-1,0) up to (s-1,s-1)
		{ccw, 0, s}, // top-left: continues up the center line
		{cw, s, s},  // top-right: (s,2s-1) down to (s,s)
		{cw, s, 0},  // bottom-right: down to (s,0), closing next to (s-1,0)
	}
	for _, q := range quadrants {
		for d := 0; d < s*s; d++ {
			x, y := hilbertD2XY(s, d)
			rx, ry := q.rot(x, y)
			pts = append(pts, mesh.Point{X: rx + q.offX, Y: ry + q.offY})
		}
	}
	return pointsToIDs(pts, w, h)
}

// ZOrder is the Morton (Z-order) curve: ranks interleave the bits of the
// coordinates. Unlike Hilbert and H-indexing it is not a Hamiltonian
// path — consecutive ranks can jump — but it clusters well and is the
// cheapest recursively-local ordering, a classic alternative page
// ordering for the Paging family.
type ZOrder struct{}

// Name implements Curve.
func (ZOrder) Name() string { return "zorder" }

// Order implements Curve.
func (ZOrder) Order(w, h int) []int {
	n := nextPow2(max(w, h))
	pts := make([]mesh.Point, 0, n*n)
	for d := 0; d < n*n; d++ {
		pts = append(pts, mesh.Point{X: deinterleave(d), Y: deinterleave(d >> 1)})
	}
	return pointsToIDs(pts, w, h)
}

// deinterleave extracts the even-indexed bits of v.
func deinterleave(v int) int {
	out := 0
	for bit := 0; v != 0; bit++ {
		out |= (v & 1) << uint(bit)
		v >>= 2
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
