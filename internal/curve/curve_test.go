package curve

import (
	"testing"
	"testing/quick"

	"meshalloc/internal/mesh"
)

func isPermutation(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, id := range order {
		if id < 0 || id >= n {
			t.Fatalf("order contains out-of-range id %d", id)
		}
		if seen[id] {
			t.Fatalf("order visits id %d twice", id)
		}
		seen[id] = true
	}
}

var meshSizes = []struct{ w, h int }{
	{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}, {32, 32},
	{16, 22}, {22, 16}, {3, 5}, {5, 3}, {7, 7}, {1, 9}, {9, 1}, {13, 32},
}

func TestAllCurvesArePermutations(t *testing.T) {
	for _, name := range All() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		for _, sz := range meshSizes {
			isPermutation(t, c.Order(sz.w, sz.h), sz.w*sz.h)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("peano"); err == nil {
		t.Fatal("ByName(peano) should fail")
	}
}

func TestRowMajorOrder(t *testing.T) {
	order := RowMajor{}.Order(3, 2)
	want := []int{0, 1, 2, 3, 4, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("row-major order = %v, want %v", order, want)
		}
	}
}

func TestSCurveIsHamiltonianPath(t *testing.T) {
	for _, sz := range meshSizes {
		m := mesh.New(sz.w, sz.h)
		order := SCurve{}.Order(sz.w, sz.h)
		for i := 1; i < len(order); i++ {
			if m.Dist(order[i-1], order[i]) != 1 {
				t.Fatalf("%dx%d s-curve: step %d->%d has distance %d",
					sz.w, sz.h, order[i-1], order[i], m.Dist(order[i-1], order[i]))
			}
		}
	}
}

func TestSCurveRunsAlongShortDimension(t *testing.T) {
	// On a 16x22 mesh the short dimension is x, so the first 16 entries
	// must be the whole first row.
	order := SCurve{}.Order(16, 22)
	for x := 0; x < 16; x++ {
		if order[x] != x {
			t.Fatalf("s-curve on 16x22: position %d = id %d, want %d", x, order[x], x)
		}
	}
	// On a 22x16 mesh the short dimension is y, so the first 16 entries
	// must be the whole first column.
	order = SCurve{}.Order(22, 16)
	for y := 0; y < 16; y++ {
		if order[y] != y*22 {
			t.Fatalf("s-curve on 22x16: position %d = id %d, want %d", y, order[y], y*22)
		}
	}
}

func TestSCurveLongDirection(t *testing.T) {
	order := SCurve{LongDirection: true}.Order(16, 22)
	// Runs along y (the long dimension): first 22 entries are column 0.
	for y := 0; y < 22; y++ {
		if order[y] != y*16 {
			t.Fatalf("long s-curve on 16x22: position %d = id %d, want %d", y, order[y], y*16)
		}
	}
}

func TestHilbertSquareIsHamiltonianPath(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		m := mesh.New(n, n)
		order := Hilbert{}.Order(n, n)
		for i := 1; i < len(order); i++ {
			if m.Dist(order[i-1], order[i]) != 1 {
				t.Fatalf("%dx%d hilbert: non-adjacent step at %d", n, n, i)
			}
		}
	}
}

func TestHilbertStartsAtOrigin(t *testing.T) {
	order := Hilbert{}.Order(8, 8)
	if order[0] != 0 {
		t.Fatalf("hilbert starts at id %d, want 0", order[0])
	}
}

func TestHIndexingSquareIsHamiltonianCycle(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		m := mesh.New(n, n)
		order := HIndexing{}.Order(n, n)
		isPermutation(t, order, n*n)
		for i := 1; i < len(order); i++ {
			if m.Dist(order[i-1], order[i]) != 1 {
				t.Fatalf("%dx%d h-indexing: non-adjacent step at %d (%v -> %v)",
					n, n, i, m.Coord(order[i-1]), m.Coord(order[i]))
			}
		}
		// The defining property: the path closes into a cycle.
		if d := m.Dist(order[len(order)-1], order[0]); d != 1 {
			t.Fatalf("%dx%d h-indexing: cycle does not close (distance %d)", n, n, d)
		}
	}
}

func TestMooreIsHamiltonianCycle(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		m := mesh.New(n, n)
		order := Moore{}.Order(n, n)
		isPermutation(t, order, n*n)
		for i := 1; i < len(order); i++ {
			if m.Dist(order[i-1], order[i]) != 1 {
				t.Fatalf("%dx%d moore: non-adjacent step at %d (%v -> %v)",
					n, n, i, m.Coord(order[i-1]), m.Coord(order[i]))
			}
		}
		if d := m.Dist(order[len(order)-1], order[0]); d != 1 {
			t.Fatalf("%dx%d moore: cycle does not close (distance %d)", n, n, d)
		}
	}
}

func TestTruncatedCurvesHaveGaps(t *testing.T) {
	// Truncating the 32x32 Hilbert and H-indexing curves to 16x22
	// produces discontinuities (paper Figure 6); the S-curve stays
	// continuous.
	for _, tc := range []struct {
		c        Curve
		wantGaps bool
	}{
		{Hilbert{}, true},
		{HIndexing{}, true},
		{SCurve{}, false},
	} {
		rep := Locality(tc.c.Order(16, 22), 16, 22)
		if (rep.Gaps > 0) != tc.wantGaps {
			t.Errorf("%s on 16x22: gaps = %d, want gaps>0 == %v", tc.c.Name(), rep.Gaps, tc.wantGaps)
		}
	}
}

func TestLocalityOfSquareCurves(t *testing.T) {
	for _, name := range []string{"hilbert", "hindex", "scurve"} {
		c, _ := ByName(name)
		rep := Locality(c.Order(16, 16), 16, 16)
		if rep.MaxStep != 1 {
			t.Errorf("%s on 16x16: max step %d, want 1", name, rep.MaxStep)
		}
		if rep.Gaps != 0 {
			t.Errorf("%s on 16x16: %d gaps, want 0", name, rep.Gaps)
		}
	}
}

// windowSpread returns the mean pairwise Manhattan distance of consecutive
// rank windows of length k — the clustering property (Moon et al.) that
// makes space-filling curves good page orderings.
func windowSpread(order []int, w, h, k int) float64 {
	m := mesh.New(w, h)
	total, windows := 0.0, 0
	for start := 0; start+k <= len(order); start += k {
		total += m.AvgPairwiseDist(order[start : start+k])
		windows++
	}
	return total / float64(windows)
}

func TestHilbertClustersBetterThanSCurve(t *testing.T) {
	// A window of 16 consecutive ranks is a compact blob under Hilbert
	// and H-indexing but a long line segment under the s-curve, so the
	// fractal curves have smaller mean pairwise distance per window.
	snake := windowSpread(SCurve{}.Order(32, 32), 32, 32, 16)
	for _, name := range []string{"hilbert", "hindex"} {
		c, _ := ByName(name)
		spread := windowSpread(c.Order(32, 32), 32, 32, 16)
		if spread >= snake {
			t.Errorf("%s window spread %.2f should beat s-curve %.2f", name, spread, snake)
		}
	}
}

func TestRanksRoundTrip(t *testing.T) {
	order := Hilbert{}.Order(16, 22)
	ranks := Ranks(order)
	for pos, id := range order {
		if ranks[id] != pos {
			t.Fatalf("ranks[%d] = %d, want %d", id, ranks[id], pos)
		}
	}
}

func TestRanksRejectsNonPermutation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ranks should panic on duplicate ids")
		}
	}()
	Ranks([]int{0, 0, 1})
}

func TestCurvePermutationProperty(t *testing.T) {
	// Property: for arbitrary small mesh shapes every curve yields a
	// permutation, checked with testing/quick.
	f := func(w8, h8 uint8) bool {
		w := int(w8%20) + 1
		h := int(h8%20) + 1
		for _, name := range All() {
			c, err := ByName(name)
			if err != nil {
				return false
			}
			order := c.Order(w, h)
			if len(order) != w*h {
				return false
			}
			seen := make([]bool, w*h)
			for _, id := range order {
				if id < 0 || id >= w*h || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertD2XYRoundTrip(t *testing.T) {
	// d -> (x,y) must be injective and cover the grid.
	n := 16
	seen := map[mesh.Point]bool{}
	for d := 0; d < n*n; d++ {
		x, y := hilbertD2XY(n, d)
		p := mesh.Point{X: x, Y: y}
		if seen[p] {
			t.Fatalf("hilbertD2XY revisits %v", p)
		}
		if x < 0 || x >= n || y < 0 || y >= n {
			t.Fatalf("hilbertD2XY out of range: %v", p)
		}
		seen[p] = true
	}
}

func TestRenderShape(t *testing.T) {
	// On a 2x4 mesh the short dimension is x, so the snake serpentines
	// rows.
	out := Render(SCurve{}.Order(2, 4), 2, 4)
	want := "0 1\n3 2\n4 5\n7 6\n"
	if out != want {
		t.Fatalf("Render = %q, want %q", out, want)
	}
}

func TestFig6Truncation(t *testing.T) {
	// Reproduces the situation of paper Figure 6: the top rows of the
	// truncated 32x32 curves on a 16x22 mesh contain jumps ("arrows").
	for _, name := range []string{"hilbert", "hindex"} {
		c, _ := ByName(name)
		order := c.Order(16, 22)
		m := mesh.New(16, 22)
		gaps := 0
		for i := 1; i < len(order); i++ {
			if m.Dist(order[i-1], order[i]) > 1 {
				gaps++
			}
		}
		if gaps == 0 {
			t.Errorf("%s truncated to 16x22 should have gaps", name)
		}
		if gaps > 24 {
			t.Errorf("%s truncated to 16x22 has implausibly many gaps: %d", name, gaps)
		}
	}
}
