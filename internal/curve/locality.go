package curve

import "meshalloc/internal/mesh"

// LocalityReport summarizes how well a curve ordering preserves mesh
// locality, the property Leung et al. argue makes a page ordering good.
type LocalityReport struct {
	// MaxStep is the largest Manhattan distance between curve-consecutive
	// nodes (1 for a gap-free Hamiltonian path).
	MaxStep int
	// AvgStep is the mean Manhattan distance between curve-consecutive
	// nodes.
	AvgStep float64
	// Gaps counts curve-consecutive pairs that are not mesh-adjacent —
	// the discontinuities introduced by truncating a power-of-two curve
	// (arrows in the paper's Figure 6).
	Gaps int
	// MaxAdjacencyStretch is the largest rank difference between
	// mesh-adjacent nodes; small values mean mesh neighbours stay close
	// along the curve.
	MaxAdjacencyStretch int
}

// Locality computes the locality metrics of an ordering of a w x h mesh.
func Locality(order []int, w, h int) LocalityReport {
	m := mesh.New(w, h)
	ranks := Ranks(order)
	var rep LocalityReport
	total := 0
	for i := 1; i < len(order); i++ {
		d := m.Dist(order[i-1], order[i])
		total += d
		if d > rep.MaxStep {
			rep.MaxStep = d
		}
		if d > 1 {
			rep.Gaps++
		}
	}
	if len(order) > 1 {
		rep.AvgStep = float64(total) / float64(len(order)-1)
	}
	for id := 0; id < m.Size(); id++ {
		for dir := mesh.XPos; dir <= mesh.YNeg; dir++ {
			nb, ok := m.Neighbor(id, dir)
			if !ok {
				continue
			}
			stretch := ranks[id] - ranks[nb]
			if stretch < 0 {
				stretch = -stretch
			}
			if stretch > rep.MaxAdjacencyStretch {
				rep.MaxAdjacencyStretch = stretch
			}
		}
	}
	return rep
}

// Render draws the ordering as an ASCII grid of curve ranks, one row of
// the mesh per line, for the curve-visualization tool (paper Figures 2
// and 6).
func Render(order []int, w, h int) string {
	ranks := Ranks(order)
	width := 1
	for n := len(order) - 1; n >= 10; n /= 10 {
		width++
	}
	buf := make([]byte, 0, (width+1)*w*h+h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x > 0 {
				buf = append(buf, ' ')
			}
			buf = appendPadded(buf, ranks[y*w+x], width)
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}

func appendPadded(buf []byte, v, width int) []byte {
	digits := 1
	for n := v; n >= 10; n /= 10 {
		digits++
	}
	for i := digits; i < width; i++ {
		buf = append(buf, ' ')
	}
	start := len(buf)
	if v == 0 {
		return append(buf, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(buf[:start], tmp[i:]...)
}
