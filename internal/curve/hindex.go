package curve

import (
	"fmt"
	"sync"

	"meshalloc/internal/mesh"
)

// HIndexing is the H-indexing of Niedermeier, Reinhardt and Sanders
// ("Towards optimal locality in mesh-indexings", FCT 1997): a Hamiltonian
// cycle of the 2^k x 2^k grid built from two congruent triangle indexings
// that interlock along the main diagonal. Like Hilbert, it is truncated
// from the enclosing power-of-two square for other mesh shapes.
//
// Construction used here: let T(n) be a Hamiltonian path over the
// lower-right "half" of the n x n grid — the cells strictly below the main
// diagonal plus the even-indexed diagonal cells — running from cell (0,0)
// to cell (n-1, n-2). T satisfies the recursion
//
//	T(n) = T(n/2)                     in the lower-left quadrant
//	     ⊕ S(n/2) shifted by (n/2,0)  over the full lower-right quadrant
//	     ⊕ T(n/2) shifted by (n/2,n/2)
//
// where S(q) is the Hamiltonian path over the full q x q square from local
// cell (0, q-2) to (0, q-1), obtained by cutting the Hamiltonian cycle
// C(q) = T(q) followed by the point-reflection of T(q) at the edge
// {(0,q-2), (0,q-1)}. The full H-indexing of the square is the closed
// cycle C(n). Consecutive cells are always grid-adjacent, and the last
// cell is adjacent to the first — the defining property that distinguishes
// H-indexing (a cycle) from the Hilbert curve (an open path).
type HIndexing struct{}

// Name implements Curve.
func (HIndexing) Name() string { return "hindex" }

// Order implements Curve.
func (HIndexing) Order(w, h int) []int {
	n := nextPow2(max(w, h))
	return pointsToIDs(hCycle(n), w, h)
}

var (
	hMu    sync.Mutex
	hPaths = map[int][]mesh.Point{} // memoized canonical T(n)
)

// hCycle returns the Hamiltonian cycle C(n) over the n x n grid.
func hCycle(n int) []mesh.Point {
	t := hTriangle(n)
	cyc := make([]mesh.Point, 0, n*n)
	cyc = append(cyc, t...)
	for _, p := range t {
		cyc = append(cyc, mesh.Point{X: n - 1 - p.X, Y: n - 1 - p.Y})
	}
	return cyc
}

// hTriangle returns the canonical triangle path T(n) (memoized).
func hTriangle(n int) []mesh.Point {
	hMu.Lock()
	defer hMu.Unlock()
	return hTriangleLocked(n)
}

func hTriangleLocked(n int) []mesh.Point {
	if t, ok := hPaths[n]; ok {
		return t
	}
	var t []mesh.Point
	if n == 2 {
		t = []mesh.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	} else {
		q := n / 2
		sub := hTriangleLocked(q)
		sq := hSquarePathLocked(q)
		t = make([]mesh.Point, 0, n*n/2)
		t = append(t, sub...)
		for _, p := range sq {
			t = append(t, mesh.Point{X: p.X + q, Y: p.Y})
		}
		for _, p := range sub {
			t = append(t, mesh.Point{X: p.X + q, Y: p.Y + q})
		}
	}
	hPaths[n] = t
	return t
}

// hSquarePathLocked returns the Hamiltonian path over the q x q square
// from (0, q-2) to (0, q-1): the cycle C(q) cut at that edge.
func hSquarePathLocked(q int) []mesh.Point {
	sub := hTriangleLocked(q)
	cyc := make([]mesh.Point, 0, q*q)
	cyc = append(cyc, sub...)
	for _, p := range sub {
		cyc = append(cyc, mesh.Point{X: q - 1 - p.X, Y: q - 1 - p.Y})
	}
	from := mesh.Point{X: 0, Y: q - 2}
	to := mesh.Point{X: 0, Y: q - 1}
	fi, ti := indexOf(cyc, from), indexOf(cyc, to)
	if fi < 0 || ti < 0 {
		panic(fmt.Sprintf("curve: H-indexing cycle of size %d missing cut cells", q))
	}
	m := len(cyc)
	path := make([]mesh.Point, 0, m)
	switch {
	case (fi+1)%m == ti:
		// to follows from: walk backwards from `from` around to `to`.
		for k := 0; k < m; k++ {
			path = append(path, cyc[((fi-k)%m+m)%m])
		}
	case (ti+1)%m == fi:
		// from follows to: walk forwards from `from` around to `to`.
		for k := 0; k < m; k++ {
			path = append(path, cyc[(fi+k)%m])
		}
	default:
		panic(fmt.Sprintf("curve: H-indexing cut cells not adjacent in cycle of size %d", q))
	}
	return path
}

func indexOf(pts []mesh.Point, p mesh.Point) int {
	for i, q := range pts {
		if q == p {
			return i
		}
	}
	return -1
}
