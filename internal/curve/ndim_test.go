package curve

import (
	"testing"

	"meshalloc/internal/topo"
)

func isPermutationOfSize(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, id := range order {
		if id < 0 || id >= n || seen[id] {
			t.Fatalf("order not a permutation at id %d", id)
		}
		seen[id] = true
	}
}

func TestOrderDimsArePermutations(t *testing.T) {
	dimsCases := [][]int{{4, 4, 4}, {3, 5, 2}, {8, 8, 8}, {2, 3, 4, 2}, {5, 7}}
	for _, c := range []Curve{RowMajor{}, SCurve{}, Hilbert{}, ZOrder{}, Projected{Inner: Hilbert{}}, Projected{Inner: SCurve{}}} {
		dc := c.(DimCurve)
		for _, dims := range dimsCases {
			size := 1
			for _, d := range dims {
				size *= d
			}
			isPermutationOfSize(t, dc.OrderDims(dims), size)
		}
	}
}

func TestOrderDims2DMatchesOrder(t *testing.T) {
	// The n-D constructions must collapse to the classic 2-D orderings on
	// two-dimensional grids, keeping every existing result bit-identical.
	for _, c := range []Curve{RowMajor{}, SCurve{}, Hilbert{}, ZOrder{}} {
		dc := c.(DimCurve)
		for _, wh := range [][2]int{{8, 8}, {16, 22}, {5, 3}} {
			a := c.Order(wh[0], wh[1])
			b := dc.OrderDims([]int{wh[0], wh[1]})
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s %v: OrderDims diverges from Order at rank %d", c.Name(), wh, i)
				}
			}
		}
	}
}

func TestSnakeNDIsHamiltonianPath(t *testing.T) {
	g := topo.New([]int{3, 4, 5, 2})
	order := SCurve{}.OrderDims([]int{3, 4, 5, 2})
	for i := 1; i < len(order); i++ {
		if g.Dist(order[i-1], order[i]) != 1 {
			t.Fatalf("4-D snake breaks adjacency at rank %d", i)
		}
	}
}

func TestHilbertNDCubeIsHamiltonianPath(t *testing.T) {
	g := topo.New([]int{8, 8, 8})
	order := Hilbert{}.OrderDims([]int{8, 8, 8})
	for i := 1; i < len(order); i++ {
		if g.Dist(order[i-1], order[i]) != 1 {
			t.Fatalf("3-D hilbert breaks adjacency at rank %d", i)
		}
	}
}

func TestHilbertIndexInvertsPointExhaustive(t *testing.T) {
	for _, tc := range []struct{ n, nd int }{{2, 2}, {4, 2}, {8, 2}, {2, 3}, {4, 3}, {8, 3}, {2, 4}, {4, 4}} {
		total := 1
		for i := 0; i < tc.nd; i++ {
			total *= tc.n
		}
		for d := 0; d < total; d++ {
			p := HilbertPoint(tc.n, tc.nd, d)
			for i := 0; i < tc.nd; i++ {
				if p[i] < 0 || p[i] >= tc.n {
					t.Fatalf("n=%d nd=%d d=%d: coordinate %v off the cube", tc.n, tc.nd, d, p)
				}
			}
			if back := HilbertIndex(tc.n, tc.nd, p); back != d {
				t.Fatalf("n=%d nd=%d: HilbertIndex(HilbertPoint(%d)) = %d", tc.n, tc.nd, d, back)
			}
		}
	}
}

func TestProjectedUnfoldsZIntoY(t *testing.T) {
	// On a 2x2x2 grid the projection orders the unfolded 2x4 plane; cell
	// (x, yy) maps back to y = yy%2, z = yy/2.
	order := Projected{Inner: RowMajor{}}.OrderDims([]int{2, 2, 2})
	want := []int{0, 1, 2, 3, 4, 5, 6, 7} // row-major unfold is the identity
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("projected rowmajor = %v", order)
		}
	}
	// A projected snake serpentines within the unfolded plane: rank 2
	// visits (1, y=1, z=0), not (0, y=0, z=1).
	snake := Projected{Inner: SCurve{LongDirection: true}}.OrderDims([]int{2, 2, 2})
	isPermutationOfSize(t, snake, 8)
}

// FuzzHilbertNDRoundTrip fuzzes the bijectivity of the n-D Hilbert
// indexing: index -> coordinate -> index must round-trip on 2-D, 3-D and
// 4-D power-of-two cubes of any level, the property that makes the curve
// a valid page ordering on every machine the simulator can build.
func FuzzHilbertNDRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint32(0))
	f.Add(uint8(2), uint8(2), uint32(9))
	f.Add(uint8(3), uint8(3), uint32(500))
	f.Add(uint8(4), uint8(3), uint32(4095))
	f.Add(uint8(5), uint8(4), uint32(1<<19))
	f.Fuzz(func(t *testing.T, bitsRaw, ndRaw uint8, idxRaw uint32) {
		bits := int(bitsRaw)%5 + 1            // cube side 2..32
		nd := int(ndRaw)%(topo.MaxDims-1) + 2 // 2..MaxDims dimensions
		n := 1 << uint(bits)
		total := 1
		for i := 0; i < nd; i++ {
			total *= n
		}
		d := int(idxRaw) % total
		p := HilbertPoint(n, nd, d)
		for i := 0; i < nd; i++ {
			if p[i] < 0 || p[i] >= n {
				t.Fatalf("n=%d nd=%d d=%d: coordinate %v off the cube", n, nd, d, p)
			}
		}
		for i := nd; i < topo.MaxDims; i++ {
			if p[i] != 0 {
				t.Fatalf("unused axis %d nonzero in %v", i, p)
			}
		}
		if back := HilbertIndex(n, nd, p); back != d {
			t.Fatalf("n=%d nd=%d: round-trip %d -> %v -> %d", n, nd, d, p, back)
		}
		// Adjacent indices map to grid-adjacent cells (unit Manhattan
		// step) — the continuity that distinguishes Hilbert from Z-order.
		if d+1 < total {
			q := HilbertPoint(n, nd, d+1)
			dist := 0
			for i := 0; i < nd; i++ {
				dd := p[i] - q[i]
				if dd < 0 {
					dd = -dd
				}
				dist += dd
			}
			if dist != 1 {
				t.Fatalf("n=%d nd=%d: step %d->%d jumps distance %d", n, nd, d, d+1, dist)
			}
		}
	})
}
