package alloc

import (
	"testing"

	"meshalloc/internal/mesh"
	"meshalloc/internal/topo"
)

// Tests for the FaultAware masking path: a downed node must be
// invisible to every allocator family — the set-based trackers, the
// paging bin-packers, and the submesh word-scan — and repairing it must
// restore exactly the pre-failure state.

// faultSpecs are the allocator specs that implement FaultAware. The
// paged forms and buddy are absent deliberately: their free ledgers
// track blocks, not nodes, so they cannot mask a single dead node.
var faultSpecs = []string{
	"hilbert/bestfit", "scurve",
	"mc", "mc1x1", "genalg", "random", "submesh",
}

// TestMarkDownExcludesNodes downs a scattered set of nodes and drives
// an allocate/release churn: no allocation may include a downed node,
// and NumFree must account for the mask throughout.
func TestMarkDownExcludesNodes(t *testing.T) {
	for _, spec := range faultSpecs {
		t.Run(spec, func(t *testing.T) {
			g := topo.New([]int{8, 8})
			a, err := Spec(g, spec, 7)
			if err != nil {
				t.Fatal(err)
			}
			fa, ok := a.(FaultAware)
			if !ok {
				t.Fatalf("%s does not implement FaultAware", spec)
			}
			down := []int{0, 13, 27, 42, 63}
			downSet := map[int]bool{}
			for _, id := range down {
				fa.MarkDown(id)
				downSet[id] = true
			}
			if a.NumFree() != g.Size()-len(down) {
				t.Fatalf("NumFree = %d, want %d", a.NumFree(), g.Size()-len(down))
			}
			x := xorshift(11)
			var live [][]int
			for step := 0; step < 200; step++ {
				if x.intn(3) != 0 {
					size := 1 + x.intn(8)
					ids, err := a.Allocate(Request{Size: size})
					if err != nil {
						continue
					}
					for _, id := range ids {
						if downSet[id] {
							t.Fatalf("step %d: allocated downed node %d", step, id)
						}
					}
					live = append(live, ids)
				} else if len(live) > 0 {
					i := x.intn(len(live))
					a.Release(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			}
			for _, ids := range live {
				a.Release(ids)
			}
			for _, id := range down {
				fa.MarkUp(id)
			}
			if a.NumFree() != g.Size() {
				t.Fatalf("NumFree after repair = %d, want %d", a.NumFree(), g.Size())
			}
			// The whole machine must be allocatable again.
			if _, err := a.Allocate(Request{Size: g.Size()}); err != nil {
				t.Fatalf("full-machine allocation after repair: %v", err)
			}
		})
	}
}

// TestSubmeshMaskMatchesBusy pins the submesh row-bit masking to the
// tracker semantics: marking nodes down must yield bit-identical
// placements to an allocator where the same nodes are busy, on both
// the word-parallel and reference scan paths.
func TestSubmeshMaskMatchesBusy(t *testing.T) {
	for _, wordScan := range []bool{true, false} {
		x := xorshift(97)
		for trial := 0; trial < 20; trial++ {
			m := mesh.New(3+x.intn(10), 3+x.intn(10))
			masked := NewSubmeshFirstFit(m)
			busy := NewSubmeshFirstFit(m)
			masked.SetWordScan(wordScan)
			busy.SetWordScan(wordScan)
			var down []int
			for id := 0; id < m.Grid().Size(); id++ {
				if x.intn(8) == 0 {
					down = append(down, id)
				}
			}
			for _, id := range down {
				masked.MarkDown(id)
			}
			if len(down) > 0 {
				busy.take(down)
			}
			for step := 0; step < 30; step++ {
				size := 1 + x.intn(m.Grid().Size()/2)
				got, err1 := masked.Allocate(Request{Size: size})
				want, err2 := busy.Allocate(Request{Size: size})
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("wordScan=%v trial %d step %d: error mismatch %v vs %v",
						wordScan, trial, step, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if !sameIDs(got, want) {
					t.Fatalf("wordScan=%v trial %d step %d: ids %v vs %v",
						wordScan, trial, step, got, want)
				}
				masked.Release(got)
				busy.Release(want)
			}
			for _, id := range down {
				masked.MarkUp(id)
			}
			if masked.NumFree() != m.Grid().Size() {
				t.Fatalf("submesh NumFree after repair = %d", masked.NumFree())
			}
		}
	}
}

// TestMCMaskCacheConsistent interleaves mask churn with the same-size
// allocate/release steady state that keeps incremental score-cache
// entries alive: the cached scorer must stay bit-identical to the
// cache-off scorer through every MarkDown/MarkUp invalidation.
func TestMCMaskCacheConsistent(t *testing.T) {
	for _, oneByOne := range []bool{false, true} {
		x := xorshift(171)
		for trial := 0; trial < 15; trial++ {
			g := equivGrid(x.next())
			cached := NewMC(g)
			cached.oneByOne = oneByOne
			plain := NewMC(g)
			plain.oneByOne = oneByOne
			plain.SetScoreCache(false)
			size := 1 + x.intn(6)
			var live [][]int
			downSet := map[int]bool{}
			for step := 0; step < 60; step++ {
				switch x.intn(5) {
				case 0: // toggle a node's availability
					id := x.intn(g.Size())
					if downSet[id] {
						cached.MarkUp(id)
						plain.MarkUp(id)
						delete(downSet, id)
					} else if !cached.busy[id] {
						cached.MarkDown(id)
						plain.MarkDown(id)
						downSet[id] = true
					}
				case 1, 2, 3:
					if cached.NumFree() < size {
						continue
					}
					got, err1 := cached.Allocate(Request{Size: size})
					want, err2 := plain.Allocate(Request{Size: size})
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("trial %d step %d: error mismatch %v vs %v", trial, step, err1, err2)
					}
					if err1 != nil {
						continue
					}
					if !sameIDs(got, want) {
						t.Fatalf("oneByOne=%v trial %d step %d: ids %v vs %v",
							oneByOne, trial, step, got, want)
					}
					live = append(live, got)
				default:
					if len(live) > 0 {
						i := x.intn(len(live))
						cached.Release(live[i])
						plain.Release(live[i])
						live = append(live[:i], live[i+1:]...)
					}
				}
				if cached.NumFree() != plain.NumFree() {
					t.Fatalf("trial %d step %d: NumFree %d vs %d",
						trial, step, cached.NumFree(), plain.NumFree())
				}
			}
		}
	}
}

// TestMarkDownPanics pins the contract: masking a busy node and
// repairing a healthy one are engine bugs, caught loudly.
func TestMarkDownPanics(t *testing.T) {
	g := topo.New([]int{4, 4})
	a := NewMC(g)
	ids, err := a.Allocate(Request{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("MarkDown(busy)", func() { a.MarkDown(ids[0]) })
	mustPanic("MarkUp(free)", func() { a.MarkUp(15) })
}
