package alloc

import (
	"testing"

	"meshalloc/internal/topo"
)

// Tests pinning the incremental MC score cache: repeated same-size
// workloads (the case where entries actually survive between Allocate
// calls) must produce bit-identical allocations with the cache on, off,
// against the naive reference scorer, and at any worker count — and
// every entry the cache holds must equal a fresh exact recomputation.

// churnSteady drives pairs of allocators through a same-size
// allocate/release workload, the steady state the cache accelerates,
// failing on any divergence.
func churnSteady(t *testing.T, name string, a, b Allocator, seed uint64, size, steps int) {
	t.Helper()
	x := xorshift(seed | 1)
	var live [][]int
	for step := 0; step < steps; step++ {
		if a.NumFree() != b.NumFree() {
			t.Fatalf("%s step %d: NumFree %d vs %d", name, step, a.NumFree(), b.NumFree())
		}
		if a.NumFree() >= size && (len(live) == 0 || x.intn(3) != 0) {
			got, err1 := a.Allocate(Request{Size: size})
			want, err2 := b.Allocate(Request{Size: size})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s step %d: error mismatch %v vs %v", name, step, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !sameIDs(got, want) {
				t.Fatalf("%s step %d seed %#x: ids %v vs %v", name, step, seed, got, want)
			}
			live = append(live, got)
		} else if len(live) > 0 {
			i := x.intn(len(live))
			a.Release(live[i])
			b.Release(live[i])
			live = append(live[:i], live[i+1:]...)
		}
	}
}

// TestIncrementalMCMatchesNaiveSteady holds the request size fixed so
// cached scores are reused across consecutive jobs, and requires the
// cached scorer to track the naive reference exactly.
func TestIncrementalMCMatchesNaiveSteady(t *testing.T) {
	for _, oneByOne := range []bool{false, true} {
		name := "mc"
		if oneByOne {
			name = "mc1x1"
		}
		x := xorshift(31)
		for trial := 0; trial < 25; trial++ {
			g := equivGrid(x.next())
			cached := NewMC(g)
			cached.oneByOne = oneByOne
			naive := NewMCNaive(g)
			naive.oneByOne = oneByOne
			size := 1 + x.intn(9)
			churnSteady(t, name, cached, naive, x.next(), size, 30)
		}
	}
}

// TestScoreCacheOnOffIdentical compares the indexed scorer with the
// cache against itself with SetScoreCache(false), at several worker
// counts: allocations must match bit for bit.
func TestScoreCacheOnOffIdentical(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		x := xorshift(uint64(workers)*977 + 5)
		for trial := 0; trial < 20; trial++ {
			g := equivGrid(x.next())
			on := NewMC(g)
			on.SetParallelism(workers)
			off := NewMC(g)
			off.SetScoreCache(false)
			size := 1 + x.intn(9)
			churnSteady(t, "mc/cache-on-off", on, off, x.next(), size, 25)
		}
	}
}

// TestScoreCacheInvariant checks the cache's central invariant after a
// random churn: every exact entry equals a fresh unpruned countCost of
// that center under the current machine state, and every bound entry is
// at most it.
func TestScoreCacheInvariant(t *testing.T) {
	x := xorshift(61)
	for trial := 0; trial < 40; trial++ {
		g := equivGrid(x.next())
		a := NewMC(g)
		if x.intn(2) == 0 {
			a.oneByOne = true
		}
		size := 1 + x.intn(9)
		var live [][]int
		allocated := false
		for step := 0; step < 20; step++ {
			if a.NumFree() >= size && (len(live) == 0 || x.intn(3) != 0) {
				ids, err := a.Allocate(Request{Size: size})
				if err != nil {
					continue
				}
				allocated = true
				live = append(live, ids)
			} else if len(live) > 0 {
				i := x.intn(len(live))
				a.Release(live[i])
				live = append(live[:i], live[i+1:]...)
			}
			if !allocated {
				continue
			}
			if !a.cache.live {
				t.Fatalf("trial %d step %d: cache not live after Allocate", trial, step)
			}
			for center, st := range a.cache.state {
				if st == cacheInvalid {
					continue
				}
				cost, _, ok := a.countCost(g.Coord(center), a.cache.ext, a.cache.size, -1)
				switch st {
				case cacheExact:
					if !ok || cost != a.cache.cost[center] {
						t.Fatalf("trial %d step %d center %d: cached cost %d, fresh (%d, %v)",
							trial, step, center, a.cache.cost[center], cost, ok)
					}
				case cacheBound:
					// A stored bound must never exceed the exact cost; when
					// the shells exhaust (ok false, fewer free processors
					// than the request) the exact cost is unbounded and any
					// bound is trivially valid.
					if ok && cost < a.cache.cost[center] {
						t.Fatalf("trial %d step %d center %d: cached bound %d exceeds exact cost %d",
							trial, step, center, a.cache.cost[center], cost)
					}
				}
			}
		}
	}
}

// TestScoreCacheResetDropsEntries pins the lifecycle rules: Reset and
// shape changes drop the cache, and direct takes invalidate through the
// shadowing take method.
func TestScoreCacheResetDropsEntries(t *testing.T) {
	g := topo.New([]int{8, 8})
	a := NewMC(g)
	if _, err := a.Allocate(Request{Size: 4}); err != nil {
		t.Fatal(err)
	}
	if !a.cache.live {
		t.Fatal("cache should be live after Allocate")
	}
	a.Reset()
	if a.cache.live {
		t.Fatal("Reset must drop the cache")
	}
	if _, err := a.Allocate(Request{Size: 4}); err != nil {
		t.Fatal(err)
	}
	if a.cache.size != 4 {
		t.Fatalf("cache keyed to size %d, want 4", a.cache.size)
	}
	if _, err := a.Allocate(Request{Size: 6}); err != nil {
		t.Fatal(err)
	}
	if a.cache.size != 6 {
		t.Fatalf("cache keyed to size %d after shape change, want 6", a.cache.size)
	}
	// The winner's own region must have been invalidated by the take.
	for center, st := range a.cache.state {
		if st != cacheInvalid && a.busy[center] {
			// Live entries for busy centers are allowed (they are skipped
			// by the scan), but their stored boxes must still satisfy the
			// exactness invariant, which TestScoreCacheInvariant covers.
			_ = center
		}
	}
}

// FuzzIncrementalMC fuzzes cache-on versus cache-off over arbitrary
// machine shapes, densities, and request sizes.
func FuzzIncrementalMC(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(120), false)
	f.Add(uint64(77), uint8(6), uint8(40), true)
	f.Fuzz(func(t *testing.T, seed uint64, size, density uint8, oneByOne bool) {
		g := equivGrid(seed)
		on := NewMC(g)
		on.oneByOne = oneByOne
		off := NewMC(g)
		off.oneByOne = oneByOne
		off.SetScoreCache(false)
		x := xorshift(seed ^ 0xabcdef | 1)
		var busy []int
		for id := 0; id < g.Size(); id++ {
			if x.intn(256) < int(density) {
				busy = append(busy, id)
			}
		}
		if len(busy) > 0 {
			on.take(busy)
			off.take(busy)
		}
		sz := int(size)%12 + 1
		churnSteady(t, "fuzz", on, off, seed, sz, 15)
	})
}
