package alloc

import (
	"fmt"

	"meshalloc/internal/topo"
)

// Snapshot/restore support. A snapshot serializes only authoritative
// state — the job→nodes assignment and a handful of allocator cursors —
// and rebuilds every derived index on restore. The interfaces here are
// the contract between the engine's restore path and the allocators:
//
//   - Occupier re-marks a job's exact node set busy, as if Allocate had
//     returned it, with all internal indexes updated in lockstep.
//   - AuxState carries the small non-derivable extras some allocators
//     keep (a NextFit cursor, an RNG position) as raw words.
//   - Auditor cross-checks an allocator's redundant internal indexes,
//     feeding sim.Audit.
//
// Every Allocator in this package implements Occupier; AuxState and
// Auditor are optional and probed with type assertions.

// Occupier is implemented by allocators that can re-occupy an exact
// node set during snapshot restore. Callers must pass node sets that
// Allocate previously returned (valid ids, currently free); Occupy may
// panic on anything else, so restore paths validate ids first.
type Occupier interface {
	Occupy(ids []int)
}

// AuxState is implemented by allocators with internal state that is
// neither derivable from the busy set nor static configuration. The
// words are opaque to callers; SetAuxState errors on a word count or
// value that the allocator rejects.
type AuxState interface {
	AuxState() []uint64
	SetAuxState([]uint64) error
}

// Auditor is implemented by allocators that keep redundant internal
// indexes and can cross-check them against their ground-truth busy
// state. AuditIndexes returns nil when every index agrees.
type Auditor interface {
	AuditIndexes() error
}

// Occupy implements Occupier for the set-based allocators (Gen-Alg,
// Random, and — via the cache-invalidating shadow — MC).
func (t *tracker) Occupy(ids []int) {
	for _, id := range ids {
		if id < 0 || id >= len(t.busy) || t.busy[id] {
			panic(fmt.Sprintf("alloc: occupy of busy or invalid id %d", id))
		}
	}
	t.take(ids)
}

// wholeMachine returns the half-open box covering the entire grid.
func wholeMachine(g *topo.Grid) (lo, hi topo.Point) {
	for i := 0; i < topo.MaxDims; i++ {
		hi[i] = 1
	}
	for i := 0; i < g.ND(); i++ {
		hi[i] = g.Dim(i)
	}
	return lo, hi
}

// AuditIndexes cross-checks the busy bitmap, the cached free count,
// and — when present — the box/ball occupancy indexes, by comparing
// each index's whole-machine free count against a direct recount.
func (t *tracker) AuditIndexes() error {
	n := 0
	for _, b := range t.busy {
		if !b {
			n++
		}
	}
	if n != t.numFree {
		return fmt.Errorf("alloc: counted %d free nodes, cached numFree %d", n, t.numFree)
	}
	if t.boxes != nil {
		lo, hi := wholeMachine(t.g)
		if got := t.boxes.FreeIn(lo, hi); got != n {
			return fmt.Errorf("alloc: box index counts %d free nodes, busy bitmap %d", got, n)
		}
	}
	if t.balls != nil {
		maxR := 0
		for i := 0; i < t.g.ND(); i++ {
			maxR += t.g.Dim(i)
		}
		var c topo.Point
		if got := t.balls.FreeInBall(c, maxR); got != n {
			return fmt.Errorf("alloc: ball index counts %d free nodes, busy bitmap %d", got, n)
		}
	}
	return nil
}

// Occupy shadows tracker.Occupy so restore-time occupation invalidates
// cached MC scores exactly as an allocation would. (On a fresh restore
// the cache is empty; the shadow keeps direct uses correct too.)
func (a *MC) Occupy(ids []int) {
	for _, id := range ids {
		if id < 0 || id >= len(a.busy) || a.busy[id] {
			panic(fmt.Sprintf("alloc: occupy of busy or invalid id %d", id))
		}
	}
	a.take(ids)
}

// Occupy implements Occupier: the packer re-marks the exact ranks.
func (p *Paging) Occupy(ids []int) { p.packer.Occupy(ids) }

// AuxState implements AuxState: the only non-derivable packer state is
// the NextFit resume rank (meaningful only under the NextFit strategy,
// but harmless to carry for all of them).
func (p *Paging) AuxState() []uint64 {
	return []uint64{uint64(p.packer.NextStart())}
}

// SetAuxState implements AuxState.
func (p *Paging) SetAuxState(words []uint64) error {
	if len(words) != 1 {
		return fmt.Errorf("alloc: paging aux state wants 1 word, got %d", len(words))
	}
	return p.packer.SetNextStart(int(int64(words[0])))
}

// AuditIndexes implements Auditor via the packer's free-map/bitset/
// count cross-check.
func (p *Paging) AuditIndexes() error { return p.packer.Audit() }

// AuxState implements AuxState: Random's draw sequence must resume
// where it left off, so the snapshot carries the RNG stream position.
func (a *Random) AuxState() []uint64 {
	return []uint64{a.rng.Pos()}
}

// SetAuxState implements AuxState by fast-forwarding a fresh generator
// to the recorded position.
func (a *Random) SetAuxState(words []uint64) error {
	if len(words) != 1 {
		return fmt.Errorf("alloc: random aux state wants 1 word, got %d", len(words))
	}
	return a.rng.SkipTo(words[0])
}
