package alloc

// Batch allocation for simultaneous arrivals. A discrete-event simulator
// regularly sees several jobs arrive at the same timestamp (bursty
// sources, trace replays with second-resolution arrival stamps); serving
// them in one call lets the allocator amortize shared state — the MC
// score cache in particular carries every candidate score that survives
// one allocation's invalidation straight into the next request of the
// batch, so a burst of equal-sized jobs pays the full candidate scan only
// once. Composes with the sharded candidate scan: each allocation in the
// batch still fans out over SetParallelism workers.

// BatchAllocator is implemented by allocators that serve several requests
// in one call. AllocateBatch(reqs) is defined to be exactly equivalent to
// calling Allocate on each request in order — same ids, same machine
// state after, bit for bit. It stops at the first failure, returning the
// successful prefix's id slices alongside the error; prefix allocations
// remain in effect.
//
// Only exact-size allocators implement it: their Allocate consumes
// exactly req.Size processors and succeeds whenever req.Size <=
// NumFree(). That contract is what lets callers plan a whole batch from
// one NumFree snapshot — the engine's batch dispatch sums request sizes
// against a single free-count read and knows every allocation in the
// prefix will succeed. The contiguous baselines (submesh, buddy) can
// refuse with processors to spare and the paged allocator consumes whole
// pages, so they stay outside the interface and batch callers fall back
// to one-at-a-time allocation.
type BatchAllocator interface {
	Allocator
	// AllocateBatch serves the requests in order, stopping at the first
	// error; it returns one id slice per satisfied request.
	AllocateBatch(reqs []Request) ([][]int, error)
}

// Batch serves reqs through a's AllocateBatch when it implements
// BatchAllocator and one request at a time otherwise. The results are
// identical either way; only the amortization differs.
func Batch(a Allocator, reqs []Request) ([][]int, error) {
	if ba, ok := a.(BatchAllocator); ok {
		return ba.AllocateBatch(reqs)
	}
	return allocateSeq(a, reqs)
}

// allocateSeq is the definitional semantics of a batch: Allocate each
// request in order and stop at the first error.
func allocateSeq(a Allocator, reqs []Request) ([][]int, error) {
	out := make([][]int, 0, len(reqs))
	for _, r := range reqs {
		ids, err := a.Allocate(r)
		if err != nil {
			return out, err
		}
		out = append(out, ids)
	}
	return out, nil
}

// AllocateBatch implements BatchAllocator. Paging consumes exactly
// req.Size curve ranks per request.
func (p *Paging) AllocateBatch(reqs []Request) ([][]int, error) {
	return allocateSeq(p, reqs)
}

// AllocateBatch implements BatchAllocator. Consecutive same-shape
// requests in the batch reuse the incremental score cache, so only
// candidates near the previous winner are rescored.
func (a *MC) AllocateBatch(reqs []Request) ([][]int, error) {
	return allocateSeq(a, reqs)
}

// AllocateBatch implements BatchAllocator.
func (a *GenAlg) AllocateBatch(reqs []Request) ([][]int, error) {
	return allocateSeq(a, reqs)
}

// AllocateBatch implements BatchAllocator.
func (a *Random) AllocateBatch(reqs []Request) ([][]int, error) {
	return allocateSeq(a, reqs)
}
