package alloc

import (
	"testing"

	"meshalloc/internal/topo"
)

// Equivalence tests pinning the indexed (count-don't-gather) MC and
// Gen-Alg scorers to the retained naive reference scorers: same
// winner, same cost, same ids, on random busy patterns over random 2-D
// and 3-D grids. The indexed paths must be bit-identical — candidate
// iteration order, first-strictly-better tie-breaking and gather order
// included — so the comparison is exact id-slice equality, not
// score equality alone.

// xorshift is the deterministic pattern generator shared by the
// equivalence tests and the fuzz harness.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	if v == 0 {
		v = 0x9e3779b97f4a7c15
	}
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// equivGrid derives a small random 2-D or 3-D grid from sel.
func equivGrid(sel uint64) *topo.Grid {
	x := xorshift(sel | 1)
	if x.intn(2) == 0 {
		return topo.New([]int{2 + x.intn(10), 2 + x.intn(10)})
	}
	return topo.New([]int{2 + x.intn(5), 2 + x.intn(5), 2 + x.intn(5)})
}

// equivPair builds an indexed/naive allocator pair over g with an
// identical random busy pattern of roughly density/256 busy cells.
func equivPair(g *topo.Grid, pattern uint64, density int,
	mk func(*topo.Grid) Allocator) (indexed, naive Allocator, busy []int) {
	indexed = mk(g)
	x := xorshift(pattern | 1)
	for id := 0; id < g.Size(); id++ {
		if x.intn(256) < density {
			busy = append(busy, id)
		}
	}
	switch a := indexed.(type) {
	case *MC:
		n := NewMCNaive(g)
		n.oneByOne = a.oneByOne
		naive = n
		if len(busy) > 0 {
			a.take(busy)
			n.take(busy)
		}
	case *GenAlg:
		n := NewGenAlgNaive(g)
		naive = n
		if len(busy) > 0 {
			a.take(busy)
			n.take(busy)
		}
	}
	return indexed, naive, busy
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runEquivalence drives an indexed/naive pair through a short
// allocate/release workload and requires identical outcomes at every
// step.
func runEquivalence(t *testing.T, g *topo.Grid, pattern uint64, density int,
	name string, mk func(*topo.Grid) Allocator) {
	t.Helper()
	indexed, naive, _ := equivPair(g, pattern, density, mk)
	x := xorshift(pattern ^ 0xdeadbeef | 1)
	var live [][]int
	for step := 0; step < 6; step++ {
		free := indexed.NumFree()
		if free != naive.NumFree() {
			t.Fatalf("%s dims %v: NumFree diverged: %d vs %d", name, g.Dims(), free, naive.NumFree())
		}
		if free == 0 {
			break
		}
		size := 1 + x.intn(min(free, 24))
		req := Request{Size: size}
		if x.intn(3) == 0 {
			// Exercise explicit shapes on the shape-aware path.
			req.ShapeW, req.ShapeH = 1+x.intn(5), 1+x.intn(5)
		}
		got, err1 := indexed.Allocate(req)
		want, err2 := naive.Allocate(req)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s dims %v size %d: error mismatch: %v vs %v", name, g.Dims(), size, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !sameIDs(got, want) {
			t.Fatalf("%s dims %v size %d pattern %#x: indexed ids %v != naive ids %v",
				name, g.Dims(), size, pattern, got, want)
		}
		live = append(live, got)
		if len(live) > 1 && x.intn(2) == 0 {
			i := x.intn(len(live))
			indexed.Release(live[i])
			naive.Release(live[i])
			live = append(live[:i], live[i+1:]...)
		}
	}
}

var equivVariants = []struct {
	name string
	mk   func(*topo.Grid) Allocator
}{
	{"mc", func(g *topo.Grid) Allocator { return NewMC(g) }},
	{"mc1x1", func(g *topo.Grid) Allocator { return NewMC1x1(g) }},
	{"genalg", func(g *topo.Grid) Allocator { return NewGenAlg(g) }},
}

// TestIndexedMatchesNaiveRandom sweeps deterministic random grids,
// densities and workloads for every indexed allocator.
func TestIndexedMatchesNaiveRandom(t *testing.T) {
	for _, v := range equivVariants {
		t.Run(v.name, func(t *testing.T) {
			x := xorshift(42)
			for trial := 0; trial < 120; trial++ {
				g := equivGrid(x.next())
				density := x.intn(240)
				runEquivalence(t, g, x.next(), density, v.name, v.mk)
			}
		})
	}
}

// TestCountCostMatchesGather compares MC's counted candidate cost with
// the walked gather cost directly, center by center, pruning disabled.
func TestCountCostMatchesGather(t *testing.T) {
	x := xorshift(7)
	for trial := 0; trial < 80; trial++ {
		g := equivGrid(x.next())
		a, _, _ := equivPair(g, x.next(), x.intn(230), func(g *topo.Grid) Allocator { return NewMC(g) })
		mc := a.(*MC)
		size := 1 + x.intn(min(mc.NumFree()+1, 20))
		if size > mc.NumFree() {
			continue
		}
		ext := Request{Size: size}.ShapeExt(g.ND())
		for probe := 0; probe < 10; probe++ {
			center := x.intn(g.Size())
			if mc.busy[center] {
				continue
			}
			counted, _, okC := mc.countCost(g.Coord(center), ext, size, -1)
			walked, okW := mc.gather(g.Coord(center), ext, size)
			if okC != okW || counted != walked {
				t.Fatalf("dims %v center %d size %d: counted (%d, %v) != walked (%d, %v)",
					g.Dims(), center, size, counted, okC, walked, okW)
			}
		}
	}
}

// TestCountPairwiseMatchesGather compares Gen-Alg's counted pairwise
// score with the gathered set's score, center by center.
func TestCountPairwiseMatchesGather(t *testing.T) {
	x := xorshift(9)
	for trial := 0; trial < 80; trial++ {
		g := equivGrid(x.next())
		a, n, _ := equivPair(g, x.next(), x.intn(230), func(g *topo.Grid) Allocator { return NewGenAlg(g) })
		ga, ref := a.(*GenAlg), n.(*GenAlg)
		if ga.balls == nil {
			t.Fatalf("dims %v: indexed genalg lacks ball index", g.Dims())
		}
		k := 1 + x.intn(min(ga.NumFree()+1, 20))
		if k > ga.NumFree() {
			continue
		}
		ga.scratch.radius = x.intn(5) // any hint must give the same answer
		for probe := 0; probe < 10; probe++ {
			center := x.intn(g.Size())
			if ga.busy[center] {
				continue
			}
			counted := ga.countPairwise(&ga.scratch, center, k)
			ref.nearest(center, k)
			walked := ref.totalPairwise(ref.nearBuf)
			if counted != walked {
				t.Fatalf("dims %v center %d k %d: counted %d != walked %d",
					g.Dims(), center, k, counted, walked)
			}
		}
	}
}

// FuzzIndexedScoringEquivalence lets the fuzzer hunt for busy patterns
// where the indexed scorers diverge from the naive references.
func FuzzIndexedScoringEquivalence(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(80))
	f.Add(uint64(0xfeed), uint64(0xbeef), uint8(200))
	f.Add(uint64(0x1234), uint64(0x5678), uint8(10))
	f.Add(uint64(42), uint64(42), uint8(128))
	f.Fuzz(func(t *testing.T, dimSel, pattern uint64, density uint8) {
		g := equivGrid(dimSel)
		for _, v := range equivVariants {
			runEquivalence(t, g, pattern, int(density), v.name, v.mk)
		}
	})
}
