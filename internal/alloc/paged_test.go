package alloc

import (
	"testing"

	"meshalloc/internal/binpack"
	"meshalloc/internal/curve"
	"meshalloc/internal/mesh"
)

func TestPagedSpecRoundTrip(t *testing.T) {
	m := mesh.New(16, 16)
	for _, spec := range []string{
		"hilbert/freelist/page1", "scurve/bestfit/page2", "hindex/firstfit/page0",
	} {
		a, err := Spec(m.Grid(), spec, 1)
		if err != nil {
			t.Fatalf("Spec(%q): %v", spec, err)
		}
		if a.Name() != spec {
			t.Errorf("Spec(%q).Name() = %q", spec, a.Name())
		}
	}
	for _, bad := range []string{
		"hilbert/bestfit/page-1", "hilbert/bestfit/pageX",
		"hilbert/bestfit/page9", // 512-side page on a 16x16 mesh
		"hilbert/bestfit/page1/extra",
	} {
		if _, err := Spec(m.Grid(), bad, 1); err == nil {
			t.Errorf("Spec(%q) should fail", bad)
		}
	}
}

func TestPagedAllocatesWholePages(t *testing.T) {
	m := mesh.New(8, 8)
	a := NewPagedPaging(m.Grid(), curve.Hilbert{}, binpack.FreeList, 1) // 2x2 pages
	// A 3-processor job holds one full 2x2 page: one processor wasted.
	ids, err := a.Allocate(Request{Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("got %d ids", len(ids))
	}
	if a.NumFree() != 64-4 {
		t.Fatalf("NumFree = %d, want 60 (whole page taken)", a.NumFree())
	}
	// All three processors lie in the same 2x2 page.
	page := -1
	for _, id := range ids {
		p := m.Coord(id)
		pg := (p.Y/2)*4 + p.X/2
		if page == -1 {
			page = pg
		} else if pg != page {
			t.Fatalf("ids %v straddle pages", ids)
		}
	}
	a.Release(ids)
	if a.NumFree() != 64 {
		t.Fatalf("NumFree after release = %d", a.NumFree())
	}
}

func TestPagedFragmentationWastesProcessors(t *testing.T) {
	m := mesh.New(8, 8)
	a := NewPagedPaging(m.Grid(), curve.Hilbert{}, binpack.FreeList, 2) // 4x4 pages
	// Four 1-processor jobs each burn a 16-processor page; a fifth
	// request the size of the remaining free count still succeeds, but
	// a request exceeding it must fail with ErrInsufficient — the
	// fragmentation that made the paper choose s = 0.
	var live [][]int
	for i := 0; i < 4; i++ {
		ids, err := a.Allocate(Request{Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, ids)
	}
	if a.NumFree() != 0 {
		t.Fatalf("NumFree = %d, want 0: 4 single-proc jobs hold all four 4x4 pages", a.NumFree())
	}
	if _, err := a.Allocate(Request{Size: 1}); err != ErrInsufficient {
		t.Fatalf("allocation on fully-paged mesh: %v", err)
	}
	for _, ids := range live {
		a.Release(ids)
	}
	if a.NumFree() != 64 {
		t.Fatalf("NumFree after releases = %d", a.NumFree())
	}
}

func TestPagedClippedEdgePages(t *testing.T) {
	// A 5x5 mesh with 2x2 pages has clipped pages along the far edges;
	// allocation bookkeeping must still balance.
	m := mesh.New(5, 5)
	a := NewPagedPaging(m.Grid(), curve.SCurve{}, binpack.BestFit, 1)
	ids, err := a.Allocate(Request{Size: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 25 || a.NumFree() != 0 {
		t.Fatalf("full-mesh paged allocation: %d ids, %d free", len(ids), a.NumFree())
	}
	a.Release(ids)
	if a.NumFree() != 25 {
		t.Fatalf("NumFree = %d", a.NumFree())
	}
}

func TestPagedZeroIsPlainPaging(t *testing.T) {
	m := mesh.New(8, 8)
	paged := NewPagedPaging(m.Grid(), curve.Hilbert{}, binpack.BestFit, 0)
	plain := NewPaging(m.Grid(), curve.Hilbert{}, binpack.BestFit)
	for _, size := range []int{1, 7, 16, 5} {
		a, err1 := paged.Allocate(Request{Size: size})
		b, err2 := plain.Allocate(Request{Size: size})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(a) != len(b) {
			t.Fatalf("size mismatch: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("page0 differs from plain paging at size %d: %v vs %v", size, a, b)
			}
		}
	}
}

func TestPagedPanicsOnBadConfig(t *testing.T) {
	m := mesh.New(4, 4)
	for _, s := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("page size %d should panic", s)
				}
			}()
			NewPagedPaging(m.Grid(), curve.Hilbert{}, binpack.FreeList, s)
		}()
	}
}

func TestPagedDoubleReleasePanics(t *testing.T) {
	m := mesh.New(8, 8)
	a := NewPagedPaging(m.Grid(), curve.Hilbert{}, binpack.FreeList, 1)
	ids, _ := a.Allocate(Request{Size: 4})
	a.Release(ids)
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	a.Release(ids)
}

func TestPagedReset(t *testing.T) {
	m := mesh.New(8, 8)
	a := NewPagedPaging(m.Grid(), curve.Hilbert{}, binpack.FreeList, 1)
	a.Allocate(Request{Size: 10})
	a.Reset()
	if a.NumFree() != 64 {
		t.Fatalf("NumFree after reset = %d", a.NumFree())
	}
}
