package alloc

import (
	"runtime"
	"testing"
	"time"

	"meshalloc/internal/topo"
)

// Parallel-scoring determinism tests: a parallel allocator driven
// through the same allocate/release workload as a sequential twin must
// return identical id slices at every step — the lowest-id-wins argmin
// contract — at every worker count, on 2-D and 3-D machines.

// runParallelEquivalence drives a sequential/parallel allocator pair
// through a random workload and requires identical outcomes step by
// step. Releases happen in random order so busy patterns fragment the
// way long simulations fragment them.
func runParallelEquivalence(t *testing.T, g *topo.Grid, workers int, seed uint64,
	mk func(*topo.Grid) Allocator) {
	t.Helper()
	seq := mk(g)
	par := mk(g)
	ps, ok := par.(ParallelScorer)
	if !ok {
		t.Fatalf("%s does not implement ParallelScorer", par.Name())
	}
	ps.SetParallelism(workers)

	x := xorshift(seed | 1)
	var seqLive, parLive [][]int
	for step := 0; step < 40; step++ {
		if seq.NumFree() != par.NumFree() {
			t.Fatalf("%s dims %v workers %d step %d: NumFree %d vs %d",
				seq.Name(), g.Dims(), workers, step, seq.NumFree(), par.NumFree())
		}
		if free := seq.NumFree(); free > 0 && (len(seqLive) == 0 || x.intn(3) > 0) {
			size := 1 + x.intn(min(free, 24))
			req := Request{Size: size}
			if x.intn(4) == 0 {
				req.ShapeW, req.ShapeH = 1+x.intn(5), 1+x.intn(5)
			}
			got, err1 := seq.Allocate(req)
			want, err2 := par.Allocate(req)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s dims %v workers %d size %d: error mismatch %v vs %v",
					seq.Name(), g.Dims(), workers, size, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !sameIDs(got, want) {
				t.Fatalf("%s dims %v workers %d size %d seed %#x: sequential ids %v != parallel ids %v",
					seq.Name(), g.Dims(), workers, size, seed, got, want)
			}
			seqLive = append(seqLive, got)
			parLive = append(parLive, want)
		} else if len(seqLive) > 0 {
			i := x.intn(len(seqLive))
			seq.Release(seqLive[i])
			par.Release(parLive[i])
			seqLive = append(seqLive[:i], seqLive[i+1:]...)
			parLive = append(parLive[:i], parLive[i+1:]...)
		}
	}
}

func TestParallelScanMatchesSequential(t *testing.T) {
	grids := []*topo.Grid{
		topo.New([]int{16, 16}),
		topo.New([]int{16, 22}),
		topo.New([]int{8, 8, 8}),
	}
	mks := []struct {
		name string
		mk   func(*topo.Grid) Allocator
	}{
		{"mc", func(g *topo.Grid) Allocator { return NewMC(g) }},
		{"mc1x1", func(g *topo.Grid) Allocator { return NewMC1x1(g) }},
		{"genalg", func(g *topo.Grid) Allocator { return NewGenAlg(g) }},
	}
	for _, m := range mks {
		for gi, g := range grids {
			for _, workers := range []int{2, 3, 8} {
				runParallelEquivalence(t, g, workers, uint64(gi)*1021+uint64(workers), m.mk)
			}
		}
	}
}

// TestSetParallelismOneIsSequential checks that SetParallelism(1) and
// SetParallelism(0) restore the sequential loop (no goroutines spawned
// during Allocate).
func TestSetParallelismOneIsSequential(t *testing.T) {
	g := topo.New([]int{8, 8})
	for _, workers := range []int{0, 1, -3} {
		a := NewMC(g)
		a.SetParallelism(workers)
		if a.workers != 1 {
			t.Fatalf("SetParallelism(%d): workers = %d, want 1", workers, a.workers)
		}
		before := runtime.NumGoroutine()
		if _, err := a.Allocate(Request{Size: 4}); err != nil {
			t.Fatal(err)
		}
		if after := runtime.NumGoroutine(); after > before {
			t.Fatalf("sequential Allocate grew goroutines: %d -> %d", before, after)
		}
	}
}

// TestParallelScanLeavesNoGoroutines checks the chunked scans join all
// workers before Allocate returns.
func TestParallelScanLeavesNoGoroutines(t *testing.T) {
	g := topo.New([]int{16, 16})
	base := runtime.NumGoroutine()
	for _, mk := range []func(*topo.Grid) Allocator{
		func(g *topo.Grid) Allocator { return NewMC(g) },
		func(g *topo.Grid) Allocator { return NewGenAlg(g) },
	} {
		a := mk(g)
		a.(ParallelScorer).SetParallelism(8)
		for i := 0; i < 10; i++ {
			if _, err := a.Allocate(Request{Size: 9}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Workers are joined by wg.Wait before Allocate returns; any excess
	// here would be a leak. Allow a moment for exiting goroutines to be
	// reaped before declaring one.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", base, runtime.NumGoroutine())
}
