package alloc

import (
	"testing"

	"meshalloc/internal/mesh"
	"meshalloc/internal/topo"
)

// Edge-case coverage for the contiguous baselines (contiguous.go) and
// the paged allocators (paged.go, plus the page-size-0 Paging): a
// completely full machine, requests larger than the machine, and
// release-then-reallocate reuse of the exact same region.

// edgeVariants builds every allocator family with a deterministic
// placement rule on a fresh 8x8 machine.
func edgeVariants(t *testing.T) []struct {
	name string
	mk   func() Allocator
} {
	t.Helper()
	mk := func(spec string) func() Allocator {
		return func() Allocator {
			a, err := Spec(topo.New([]int{8, 8}), spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
	}
	return []struct {
		name string
		mk   func() Allocator
	}{
		{"submesh", mk("submesh")},
		{"buddy", mk("buddy")},
		{"paging-firstfit", mk("hilbert/firstfit")},
		{"paging-bestfit", mk("hilbert/bestfit")},
		{"paged-page1", mk("hilbert/freelist/page1")},
	}
}

// TestAllocatorFullMachine drives each allocator to a completely full
// machine with one whole-machine job: further requests must refuse with
// ErrInsufficient (not panic), and releasing restores the exact
// whole-machine allocation.
func TestAllocatorFullMachine(t *testing.T) {
	for _, v := range edgeVariants(t) {
		t.Run(v.name, func(t *testing.T) {
			a := v.mk()
			ids, err := a.Allocate(Request{Size: 64})
			if err != nil || len(ids) != 64 {
				t.Fatalf("whole-machine allocation: %d ids, %v", len(ids), err)
			}
			if a.NumFree() != 0 {
				t.Fatalf("NumFree = %d on a full machine", a.NumFree())
			}
			if _, err := a.Allocate(Request{Size: 1}); err != ErrInsufficient {
				t.Fatalf("allocation on a full machine: %v, want ErrInsufficient", err)
			}
			a.Release(ids)
			if a.NumFree() != 64 {
				t.Fatalf("NumFree = %d after releasing the machine", a.NumFree())
			}
			again, err := a.Allocate(Request{Size: 64})
			if err != nil || !sameIDs(ids, again) {
				t.Fatalf("whole-machine reallocation diverged: %v", err)
			}
		})
	}
}

// TestAllocatorOversizeRequest pins the too-large contract: a request
// exceeding the machine refuses with ErrInsufficient, changes nothing,
// and leaves the allocator able to serve a normal request.
func TestAllocatorOversizeRequest(t *testing.T) {
	for _, v := range edgeVariants(t) {
		t.Run(v.name, func(t *testing.T) {
			a := v.mk()
			for _, size := range []int{65, 1000} {
				if _, err := a.Allocate(Request{Size: size}); err != ErrInsufficient {
					t.Fatalf("size %d on a 64-proc machine: %v, want ErrInsufficient", size, err)
				}
				if a.NumFree() != 64 {
					t.Fatalf("failed oversize request consumed processors: NumFree = %d", a.NumFree())
				}
			}
			if _, err := a.Allocate(Request{Size: 9}); err != nil {
				t.Fatalf("allocation after oversize refusals: %v", err)
			}
		})
	}
}

// TestReleaseReallocateSameRegion allocates two jobs, releases the
// first, and re-requests its size: every deterministic first-position
// rule here (first-fit anchors, sorted free lists, best-fit holes,
// lowest-origin buddy blocks) must hand back exactly the region just
// vacated.
func TestReleaseReallocateSameRegion(t *testing.T) {
	for _, v := range edgeVariants(t) {
		t.Run(v.name, func(t *testing.T) {
			a := v.mk()
			size := 12
			if v.name == "buddy" {
				size = 16 // whole blocks, so the vacated region is exact
			}
			first, err := a.Allocate(Request{Size: size})
			if err != nil {
				t.Fatal(err)
			}
			second, err := a.Allocate(Request{Size: size})
			if err != nil {
				t.Fatal(err)
			}
			a.Release(first)
			got, err := a.Allocate(Request{Size: size})
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(got, first) {
				t.Fatalf("reallocation after release: got %v, want the vacated %v", got, first)
			}
			_ = second
		})
	}
}

// TestPagedClippedPagesFullMachine exercises the clipped-edge-page path
// of PagedPaging: on a 5x5 mesh with side-2 pages the edge pages hold
// fewer processors, and a whole-machine job must still account exactly.
func TestPagedClippedPagesFullMachine(t *testing.T) {
	a, err := Spec(topo.New([]int{5, 5}), "rowmajor/freelist/page1", 1)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := a.Allocate(Request{Size: 25})
	if err != nil || len(ids) != 25 {
		t.Fatalf("whole clipped machine: %d ids, %v", len(ids), err)
	}
	if a.NumFree() != 0 {
		t.Fatalf("NumFree = %d", a.NumFree())
	}
	if _, err := a.Allocate(Request{Size: 1}); err != ErrInsufficient {
		t.Fatalf("full clipped machine: %v", err)
	}
	a.Release(ids)
	if a.NumFree() != 25 {
		t.Fatalf("NumFree after release = %d", a.NumFree())
	}
	// A partial job wastes the remainder of its last page; releasing it
	// returns whole pages.
	ids, err = a.Allocate(Request{Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFree() != 25-4 {
		t.Fatalf("NumFree = %d after a 3-proc job on side-2 pages, want 21", a.NumFree())
	}
	a.Release(ids)
	if a.NumFree() != 25 {
		t.Fatalf("NumFree = %d after release, want 25", a.NumFree())
	}
}

// TestSubmeshWordScanMatchesNaive churns the word-parallel free-box
// search against the cell-by-cell reference on meshes around and past
// the 64-bit word boundary: identical anchors, errors, and free counts
// at every step.
func TestSubmeshWordScanMatchesNaive(t *testing.T) {
	for _, dims := range [][2]int{{5, 9}, {8, 8}, {16, 22}, {33, 7}, {70, 3}} {
		word := NewSubmeshFirstFit(mesh.New(dims[0], dims[1]))
		ref := NewSubmeshFirstFit(mesh.New(dims[0], dims[1]))
		ref.SetWordScan(false)
		x := xorshift(uint64(dims[0]*100+dims[1]) | 1)
		var live [][]int
		for step := 0; step < 80; step++ {
			if word.NumFree() != ref.NumFree() {
				t.Fatalf("%v step %d: NumFree %d vs %d", dims, step, word.NumFree(), ref.NumFree())
			}
			if word.NumFree() > 0 && (len(live) == 0 || x.intn(3) != 0) {
				size := 1 + x.intn(min(word.NumFree(), 14))
				got, err1 := word.Allocate(Request{Size: size})
				want, err2 := ref.Allocate(Request{Size: size})
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%v step %d size %d: error mismatch %v vs %v", dims, step, size, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if !sameIDs(got, want) {
					t.Fatalf("%v step %d size %d: word anchors %v, reference %v", dims, step, size, got, want)
				}
				live = append(live, got)
			} else if len(live) > 0 {
				i := x.intn(len(live))
				word.Release(live[i])
				ref.Release(live[i])
				live = append(live[:i], live[i+1:]...)
			}
		}
	}
}
