package alloc

import (
	"testing"
	"testing/quick"

	"meshalloc/internal/mesh"
)

func TestSubmeshAllocatesContiguous(t *testing.T) {
	m := mesh.New(8, 8)
	a := NewSubmeshFirstFit(m)
	for _, size := range []int{1, 4, 6, 9, 12} {
		ids, err := a.Allocate(Request{Size: size})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !m.Contiguous(ids) {
			t.Fatalf("size %d: allocation %v not contiguous", size, ids)
		}
		a.Release(ids)
	}
}

func TestSubmeshExternalFragmentation(t *testing.T) {
	// Occupy a checkerboard of 2x2 blocks so no 3x3 free submesh exists
	// even though half the mesh is free.
	m := mesh.New(8, 8)
	a := NewSubmeshFirstFit(m)
	var wall []int
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			if (bx+by)%2 == 0 {
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						wall = append(wall, m.ID(mesh.Point{X: bx*2 + dx, Y: by*2 + dy}))
					}
				}
			}
		}
	}
	a.take(wall)
	if a.NumFree() != 32 {
		t.Fatalf("NumFree = %d", a.NumFree())
	}
	// 9 processors are free but no 3x3 (nor any covering shape) is.
	if _, err := a.Allocate(Request{Size: 9}); err != ErrInsufficient {
		t.Fatalf("fragmented submesh allocation: %v", err)
	}
	// A 2x2 still fits.
	ids, err := a.Allocate(Request{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Contiguous(ids) {
		t.Fatal("2x2 not contiguous")
	}
}

func TestSubmeshFallbackShapes(t *testing.T) {
	// 20 processors on a 4x8 mesh: the near-square 5x4 does not fit a
	// width-4 mesh, but 4x5 (rotation) does.
	m := mesh.New(4, 8)
	a := NewSubmeshFirstFit(m)
	ids, err := a.Allocate(Request{Size: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 20 || !m.Contiguous(ids) {
		t.Fatalf("fallback shape allocation: %d ids", len(ids))
	}
	// The whole mesh as one job.
	a.Reset()
	if _, err := a.Allocate(Request{Size: 32}); err != nil {
		t.Fatalf("full-mesh submesh: %v", err)
	}
}

func TestSubmeshShapeCandidatesFitMesh(t *testing.T) {
	m := mesh.New(16, 22)
	a := NewSubmeshFirstFit(m)
	f := func(sz uint16) bool {
		size := int(sz)%352 + 1
		for _, s := range a.candidateShapes(Request{Size: size}) {
			if s[0] > 16 || s[1] > 22 || s[0]*s[1] < size {
				return false
			}
		}
		return len(a.candidateShapes(Request{Size: size})) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyRequiresSquarePow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("16x22 buddy should panic")
		}
	}()
	NewBuddy(mesh.New(16, 22))
}

func TestBuddySpecValidation(t *testing.T) {
	if _, err := Spec(mesh.New(16, 22).Grid(), "buddy", 1); err == nil {
		t.Fatal("buddy spec on non-square mesh should fail")
	}
	a, err := Spec(mesh.New(16, 16).Grid(), "buddy", 1)
	if err != nil || a.Name() != "buddy" {
		t.Fatalf("buddy spec: %v, %v", a, err)
	}
	s, err := Spec(mesh.New(16, 22).Grid(), "submesh", 1)
	if err != nil || s.Name() != "submesh" {
		t.Fatalf("submesh spec: %v, %v", s, err)
	}
}

func TestBuddyAllocatesSquareBlocks(t *testing.T) {
	m := mesh.New(8, 8)
	b := NewBuddy(m)
	// 5 processors round up to a 4x4 block: 16 processors held.
	ids, err := b.Allocate(Request{Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("%d ids", len(ids))
	}
	if b.NumFree() != 64-16 {
		t.Fatalf("NumFree = %d, want 48", b.NumFree())
	}
	if !m.Contiguous(ids) {
		t.Fatal("buddy allocation not contiguous")
	}
	b.Release(ids)
	if b.NumFree() != 64 {
		t.Fatalf("NumFree after release = %d", b.NumFree())
	}
}

func TestBuddySplitAndCoalesce(t *testing.T) {
	m := mesh.New(8, 8)
	b := NewBuddy(m)
	// Four 4x4 blocks fill the mesh.
	var live [][]int
	for i := 0; i < 4; i++ {
		ids, err := b.Allocate(Request{Size: 16})
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		live = append(live, ids)
	}
	if b.NumFree() != 0 {
		t.Fatalf("NumFree = %d", b.NumFree())
	}
	if _, err := b.Allocate(Request{Size: 1}); err != ErrInsufficient {
		t.Fatalf("full buddy mesh: %v", err)
	}
	// Release all; coalescing must restore the root block so a
	// full-mesh allocation succeeds.
	for _, ids := range live {
		b.Release(ids)
	}
	ids, err := b.Allocate(Request{Size: 64})
	if err != nil || len(ids) != 64 {
		t.Fatalf("root block after coalesce: %v, %v", len(ids), err)
	}
}

func TestBuddyExternalFragmentation(t *testing.T) {
	m := mesh.New(8, 8)
	b := NewBuddy(m)
	// Hold three 1-processor jobs: they burn 1x1 blocks out of one 2x2
	// region but force splits down the tree. Then a 64-proc request
	// cannot be served though 61 processors are free.
	var live [][]int
	for i := 0; i < 3; i++ {
		ids, err := b.Allocate(Request{Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, ids)
	}
	if _, err := b.Allocate(Request{Size: 64}); err != ErrInsufficient {
		t.Fatalf("fragmented buddy root: %v", err)
	}
	// A 16-proc request still fits in an untouched quadrant.
	if _, err := b.Allocate(Request{Size: 16}); err != nil {
		t.Fatalf("quadrant allocation: %v", err)
	}
	_ = live
}

func TestBuddyWorkloadProperty(t *testing.T) {
	// Random allocate/release sequences keep the accounting consistent
	// and always coalesce back to a full mesh.
	m := mesh.New(16, 16)
	f := func(ops []uint8) bool {
		b := NewBuddy(m)
		var live [][]int
		for _, op := range ops {
			if op%3 != 0 && b.NumFree() > 0 {
				size := int(op)%b.NumFree() + 1
				ids, err := b.Allocate(Request{Size: size})
				if err == ErrInsufficient {
					continue // fragmentation is legal
				}
				if err != nil || len(ids) != size {
					return false
				}
				live = append(live, ids)
			} else if len(live) > 0 {
				b.Release(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		for _, ids := range live {
			b.Release(ids)
		}
		if b.NumFree() != 256 {
			return false
		}
		ids, err := b.Allocate(Request{Size: 256})
		return err == nil && len(ids) == 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmeshReset(t *testing.T) {
	m := mesh.New(8, 8)
	a := NewSubmeshFirstFit(m)
	if _, err := a.Allocate(Request{Size: 10}); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if a.NumFree() != 64 {
		t.Fatalf("NumFree after reset = %d", a.NumFree())
	}
}

func TestBuddyReset(t *testing.T) {
	b := NewBuddy(mesh.New(8, 8))
	if _, err := b.Allocate(Request{Size: 10}); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.NumFree() != 64 {
		t.Fatalf("NumFree after reset = %d", b.NumFree())
	}
	if ids, err := b.Allocate(Request{Size: 64}); err != nil || len(ids) != 64 {
		t.Fatal("reset did not restore the root block")
	}
}
