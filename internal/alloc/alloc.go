// Package alloc implements the processor-allocation algorithms compared in
// the paper: the Paging / one-dimensional-reduction family (a space-filling
// curve plus a bin-packing selection strategy), Mache et al.'s shape-aware
// MC and its shape-oblivious CPlant variant MC1x1, Krumke et al.'s
// Gen-Alg, and a random baseline.
//
// The algorithms are dimension-generic: they run over a topo.Grid, so the
// same Paging, MC-family and Gen-Alg implementations serve the paper's
// 2-D meshes and the native 3-D machines of the ext-cube3d experiment.
// Only the contiguous baselines (submesh first fit, the 2-D buddy
// system) are inherently two-dimensional and are gated accordingly.
//
// An Allocator owns the free/busy state of one machine. The simulator
// calls Allocate when the FCFS scheduler starts a job and Release when the
// job terminates.
package alloc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"meshalloc/internal/binpack"
	"meshalloc/internal/curve"
	"meshalloc/internal/curveopt"
	"meshalloc/internal/mesh"
	"meshalloc/internal/occupancy"
	"meshalloc/internal/stats"
	"meshalloc/internal/topo"
)

// ErrInsufficient reports that a request exceeds the free processor count.
var ErrInsufficient = errors.New("alloc: not enough free processors")

// Request asks for Size processors. ShapeW x ShapeH is the submesh shape
// the user would request on an MC system; when zero, shape-aware
// allocators derive a near-square shape from Size.
type Request struct {
	Size   int
	ShapeW int
	ShapeH int
}

// Shape returns the request's submesh shape, deriving the most-square
// shape with ShapeW >= ShapeH covering Size when none was given — the
// bias toward rectangular allocations the paper attributes to real users.
func (r Request) Shape() (w, h int) {
	if r.ShapeW > 0 && r.ShapeH > 0 {
		return r.ShapeW, r.ShapeH
	}
	w = int(math.Ceil(math.Sqrt(float64(r.Size))))
	if w < 1 {
		w = 1
	}
	h = (r.Size + w - 1) / w
	if h < 1 {
		h = 1
	}
	return w, h
}

// ShapeExt returns the request's shape as nd-dimensional extents: the
// explicit 2-D shape when one was given on a 2-D machine, otherwise the
// near-cubic shape covering Size, derived greedily axis by axis. For
// nd = 2 this reproduces Shape exactly, which keeps MC's candidate
// scoring bit-identical on the paper's meshes.
func (r Request) ShapeExt(nd int) topo.Point {
	var ext topo.Point
	for i := range ext {
		ext[i] = 1
	}
	if nd == 2 {
		ext[0], ext[1] = r.Shape()
		return ext
	}
	remaining := r.Size
	for i := 0; i < nd; i++ {
		e := intRootCeil(remaining, nd-i)
		ext[i] = e
		remaining = (remaining + e - 1) / e
	}
	return ext
}

// intRootCeil returns the smallest e >= 1 with e^k >= n.
func intRootCeil(n, k int) int {
	if n <= 1 {
		return 1
	}
	e := int(math.Ceil(math.Pow(float64(n), 1/float64(k))))
	if e < 1 {
		e = 1
	}
	// Guard against floating-point undershoot/overshoot around exact
	// powers.
	for pow(e-1, k) >= n {
		e--
	}
	for pow(e, k) < n {
		e++
	}
	return e
}

func pow(b, k int) int {
	p := 1
	for i := 0; i < k; i++ {
		p *= b
	}
	return p
}

// Allocator assigns sets of processors to jobs on a fixed machine.
type Allocator interface {
	// Name identifies the algorithm, e.g. "hilbert/bestfit" or "mc1x1".
	Name() string
	// Allocate selects exactly req.Size free processors and marks them
	// busy. It returns ErrInsufficient when the machine cannot satisfy
	// the request.
	Allocate(req Request) ([]int, error)
	// Release frees processors previously returned by Allocate.
	Release(ids []int)
	// NumFree returns the current number of free processors.
	NumFree() int
	// Reset frees every processor.
	Reset()
}

// FaultAware is implemented by allocators that can mask individual
// nodes out of service for fault injection. A downed node reads as
// busy to every scoring, scanning and free-count path — candidate
// enumeration, occupancy indexes and word scans all treat it exactly
// like an allocated processor — until MarkUp returns it. Callers must
// release any job occupying the node before MarkDown, and must not
// MarkDown a node twice; Reset clears all marks along with the busy
// set. Allocators that do not implement FaultAware cannot run under
// fault injection (the engine rejects the configuration up front).
type FaultAware interface {
	MarkDown(id int)
	MarkUp(id int)
}

// Spec names an allocator configuration in the form used by the CLI tools
// and the experiment harness:
//
//	"mc", "mc1x1", "genalg", "random",
//	"submesh", "buddy" (contiguous baselines, 2-D only),
//	"<curve>" (Paging with sorted free list),
//	"<curve>/<strategy>" (Paging with a bin-packing strategy), or
//	"<curve>/<strategy>/page<s>" (Lo et al.'s Paging with 2^s-sided pages),
//
// e.g. "hilbert/bestfit", "scurve/firstfit", "hindex",
// "hilbert/freelist/page1". On machines with more than two dimensions
// the curve must order n-D grids (hilbert, scurve, rowmajor, zorder, and
// the proj2d-* projections); the 2-D-only curves are rejected.
func Spec(g *topo.Grid, spec string, seed int64) (Allocator, error) {
	switch spec {
	case "mc":
		return NewMC(g), nil
	case "mc1x1":
		return NewMC1x1(g), nil
	case "genalg":
		return NewGenAlg(g), nil
	case "random":
		return NewRandom(g, seed), nil
	case "submesh":
		if g.ND() != 2 {
			return nil, fmt.Errorf("alloc: submesh allocation requires a 2-D mesh, got %d-D", g.ND())
		}
		return NewSubmeshFirstFit(mesh.FromGrid(g)), nil
	case "buddy":
		if g.ND() != 2 {
			return nil, fmt.Errorf("alloc: buddy requires a 2-D mesh, got %d-D", g.ND())
		}
		if g.Dim(0) != g.Dim(1) || g.Dim(0)&(g.Dim(0)-1) != 0 {
			return nil, fmt.Errorf("alloc: buddy requires a square power-of-two mesh, got %dx%d",
				g.Dim(0), g.Dim(1))
		}
		return NewBuddy(mesh.FromGrid(g)), nil
	}
	parts := strings.Split(spec, "/")
	var c curve.Curve
	if parts[0] == "optcurve" {
		// Locality-searched ordering for arbitrary topologies (the
		// paper's integer-program idea); see the curveopt package.
		c = curveopt.MeshCurve{Seed: seed}
	} else {
		var err error
		c, err = curve.ByName(parts[0])
		if err != nil {
			return nil, fmt.Errorf("alloc: unknown allocator %q", spec)
		}
	}
	if !curve.SupportsDims(c, g.ND()) {
		return nil, fmt.Errorf("alloc: curve %s cannot order a %d-D machine", c.Name(), g.ND())
	}
	strat := binpack.FreeList
	if len(parts) >= 2 {
		var err error
		strat, err = binpack.StrategyByName(parts[1])
		if err != nil {
			return nil, err
		}
	}
	switch {
	case len(parts) == 2:
		return NewPaging(g, c, strat), nil
	case len(parts) == 3:
		var s int
		if _, err := fmt.Sscanf(parts[2], "page%d", &s); err != nil || s < 0 {
			return nil, fmt.Errorf("alloc: bad page suffix %q in %q", parts[2], spec)
		}
		side := 1 << uint(s)
		for i := 0; i < g.ND(); i++ {
			if side > g.Dim(i) {
				return nil, fmt.Errorf("alloc: page side %d exceeds machine axis %d (extent %d)", side, i, g.Dim(i))
			}
		}
		return NewPagedPaging(g, c, strat, s), nil
	case len(parts) > 3:
		return nil, fmt.Errorf("alloc: unknown allocator %q", spec)
	}
	return NewPaging(g, c, strat), nil
}

// Specs returns the nine allocator specs whose curves appear in the
// paper's Figures 7 and 8: MC, MC1x1, Gen-Alg, and the three curves each
// with sorted free list and Best Fit.
func Specs() []string {
	return []string{
		"mc", "mc1x1", "genalg",
		"hilbert", "hilbert/bestfit",
		"hindex", "hindex/bestfit",
		"scurve", "scurve/bestfit",
	}
}

// Fig11Specs returns the twelve allocator specs of the paper's Figure 11
// contiguity table: the nine graph algorithms plus First Fit for each
// curve.
func Fig11Specs() []string {
	return append(Specs(),
		"hilbert/firstfit", "hindex/firstfit", "scurve/firstfit")
}

// Paging is the one-dimensional-reduction allocator: processors are
// ordered by a space-filling curve and selected with a bin-packing
// strategy (page size 1, so no internal fragmentation).
type Paging struct {
	g      *topo.Grid
	c      curve.Curve
	strat  binpack.Strategy
	packer *binpack.Packer
}

// NewPaging returns a Paging allocator over g using curve c and selection
// strategy strat. It panics when the curve cannot order the grid's
// dimensionality (use Spec for an error-returning path): curve choice is
// static configuration.
func NewPaging(g *topo.Grid, c curve.Curve, strat binpack.Strategy) *Paging {
	order, err := curve.GridOrder(c, g.Dims())
	if err != nil {
		panic(fmt.Sprintf("alloc: %v", err))
	}
	return &Paging{
		g:      g,
		c:      c,
		strat:  strat,
		packer: binpack.New(order),
	}
}

// Name implements Allocator.
func (p *Paging) Name() string {
	if p.strat == binpack.FreeList {
		return p.c.Name()
	}
	return p.c.Name() + "/" + p.strat.String()
}

// Allocate implements Allocator.
func (p *Paging) Allocate(req Request) ([]int, error) {
	ids, err := p.packer.Allocate(req.Size, p.strat)
	if err == binpack.ErrInsufficient {
		return nil, ErrInsufficient
	}
	return ids, err
}

// Release implements Allocator.
func (p *Paging) Release(ids []int) { p.packer.Release(ids) }

// NumFree implements Allocator.
func (p *Paging) NumFree() int { return p.packer.NumFree() }

// Reset implements Allocator.
func (p *Paging) Reset() { p.packer.Reset() }

// MarkDown implements FaultAware: the node's rank is masked busy in
// the packer's free map and word-scan bitset.
func (p *Paging) MarkDown(id int) { p.packer.MarkDown(id) }

// MarkUp implements FaultAware.
func (p *Paging) MarkUp(id int) { p.packer.MarkUp(id) }

// tracker is the shared busy-set bookkeeping for the set-based allocators
// (MC, Gen-Alg, Random). When an allocator carries an occupancy index
// (boxes for MC shell counting, balls for Gen-Alg ball counting), every
// take, release and reset keeps the index in lockstep with the busy
// bitmap — the index is a counter over the same state, never a second
// source of truth.
type tracker struct {
	g       *topo.Grid
	busy    []bool
	numFree int
	boxes   *occupancy.Boxes
	balls   *occupancy.Balls
}

func newTracker(g *topo.Grid) tracker {
	return tracker{g: g, busy: make([]bool, g.Size()), numFree: g.Size()}
}

func (t *tracker) NumFree() int { return t.numFree }

func (t *tracker) Reset() {
	for i := range t.busy {
		t.busy[i] = false
	}
	t.numFree = len(t.busy)
	if t.boxes != nil {
		t.boxes.Reset()
	}
	if t.balls != nil {
		t.balls.Reset()
	}
}

func (t *tracker) Release(ids []int) {
	for _, id := range ids {
		if id < 0 || id >= len(t.busy) || !t.busy[id] {
			panic(fmt.Sprintf("alloc: release of free or invalid id %d", id))
		}
		t.busy[id] = false
		if t.boxes != nil {
			t.boxes.Release(id)
		}
		if t.balls != nil {
			t.balls.Release(id)
		}
	}
	t.numFree += len(ids)
}

func (t *tracker) take(ids []int) {
	for _, id := range ids {
		t.busy[id] = true
		if t.boxes != nil {
			t.boxes.Take(id)
		}
		if t.balls != nil {
			t.balls.Take(id)
		}
	}
	t.numFree -= len(ids)
}

// MarkDown implements FaultAware: the node joins the busy set (and
// every occupancy index) as if allocated, so shell counts, ball counts
// and free counts all see it as unavailable. It panics on a busy or
// already-down node — the engine kills and releases occupying jobs
// before masking.
func (t *tracker) MarkDown(id int) {
	if id < 0 || id >= len(t.busy) || t.busy[id] {
		panic(fmt.Sprintf("alloc: mark down of busy or invalid id %d", id))
	}
	t.busy[id] = true
	if t.boxes != nil {
		t.boxes.Take(id)
	}
	if t.balls != nil {
		t.balls.Take(id)
	}
	t.numFree--
}

// MarkUp implements FaultAware.
func (t *tracker) MarkUp(id int) {
	if id < 0 || id >= len(t.busy) || !t.busy[id] {
		panic(fmt.Sprintf("alloc: mark up of id %d that is not down", id))
	}
	t.busy[id] = false
	if t.boxes != nil {
		t.boxes.Release(id)
	}
	if t.balls != nil {
		t.balls.Release(id)
	}
	t.numFree++
}

func (t *tracker) check(size int) error {
	if size <= 0 {
		return fmt.Errorf("alloc: invalid request size %d", size)
	}
	if size > t.numFree {
		return ErrInsufficient
	}
	return nil
}

// MC is the shell-scoring allocator of Mache, Lo and Windisch. Every free
// processor evaluates an allocation centered on itself: free processors
// are gathered shell by shell outward from the requested submesh shape,
// weighted by shell index, and the candidate with the lowest total weight
// (cost) wins. MC1x1 is the same algorithm with shell 0 fixed at a
// single processor. On n-D machines the shells are box surfaces instead
// of rings; the scoring rule is unchanged.
//
// By default the candidate loop never touches the shells: an
// incremental occupancy index (see internal/occupancy) answers "free
// processors within shell k" from box counts, the per-shell weights are
// summed arithmetically, and a monotone lower bound prunes candidates
// that cannot undercut the incumbent. Only the single winning center
// performs a real shell walk to materialize ids, so the selection is
// bit-identical to the reference scorer by construction — the same
// shells, the same truncation, the same first-strictly-better
// tie-breaking — at a fraction of the work.
type MC struct {
	tracker
	oneByOne bool
	// gatherBuf and bestBuf are persistent candidate scratch: gather fills
	// gatherBuf, and when a candidate wins the two swap (reference
	// scorer) or the single winning gather lands there (indexed scorer),
	// so the steady state allocates only the returned slice.
	gatherBuf []int
	bestBuf   []int
	// workers belongs to the opt-in parallel candidate scan (see
	// parallel.go); workers <= 1 (the default) keeps the sequential loop.
	workers int
	// cache is the incremental score cache of the indexed scorer;
	// noCache (SetScoreCache(false)) restores scoring from scratch.
	cache   mcCache
	noCache bool
	// maskBuf feeds single-node fault deltas into cacheInvalidate
	// without a per-event allocation.
	maskBuf [1]int
}

// mcCache entry states: an entry is either the exact cost of centering
// the current (ext, size) request on a node, or a lower bound on that
// cost recorded when the incumbent prune aborted the scoring loop.
const (
	cacheInvalid uint8 = iota
	cacheExact
	cacheBound
)

// mcCache carries candidate scores across consecutive Allocate calls of
// the indexed scorer. A cached entry records either the exact cost of
// centering the current (ext, size) request on a node (cacheExact) or a
// lower bound on it from a pruned scoring loop (cacheBound), together
// with the clipped outer box of the shell the loop stopped at. Either
// kind stays correct until some allocate/release changes a node inside
// that box: the shell free counts the value was summed from can only
// change when one of their nodes flips, and all of them lie within the
// stopping box — a pruned bound in particular remains a lower bound under
// any occupancy outside its box, because the processors still missing at
// the stopping shell must sit at larger shells whatever happens out
// there. take/Release therefore invalidate exactly the entries whose
// stored box intersects the bounding box of the changed ids (a superset
// of the truly affected centers — over-invalidation is safe,
// under-invalidation never happens).
//
// During a scan, an exact entry substitutes for the scoring loop and a
// bound entry at or above the incumbent proves the candidate cannot win
// (its exact cost is at least the bound, and elections need strictly
// less). Which entries hold which kind may differ between worker counts
// or scan orders — pruning depends on the incumbent — but every stored
// value is occupancy-faithful, which is why cached scans stay
// bit-identical to uncached ones.
type mcCache struct {
	live   bool
	ext    topo.Point
	size   int
	state  []uint8
	cost   []int        // exact cost (cacheExact) or lower bound (cacheBound)
	lo, hi []topo.Point // clipped outer box of the cached stopping shell
}

// ensure arms the cache for one (ext, size) request shape, dropping every
// entry when the shape changed since the previous Allocate.
func (c *mcCache) ensure(n int, ext topo.Point, size int) {
	if c.state == nil {
		c.state = make([]uint8, n)
		c.cost = make([]int, n)
		c.lo = make([]topo.Point, n)
		c.hi = make([]topo.Point, n)
	}
	if !c.live || c.ext != ext || c.size != size {
		clear(c.state)
		c.live, c.ext, c.size = true, ext, size
	}
}

// store records a scored candidate — kind cacheExact with its exact cost,
// or cacheBound with the prune's lower bound — and the clipped outer box
// of the shell rad the scoring loop stopped at.
func (c *mcCache) store(g *topo.Grid, kind uint8, center int, coord, ext topo.Point, rad, cost int) {
	lo, hi, ok := g.GrownBounds(coord, ext, rad)
	if !ok {
		return
	}
	c.state[center] = kind
	c.cost[center] = cost
	c.lo[center], c.hi[center] = lo, hi
}

// cacheInvalidate drops every cached score whose stopping box intersects
// the bounding box of the changed node ids.
func (a *MC) cacheInvalidate(ids []int) {
	c := &a.cache
	if !c.live || len(ids) == 0 {
		return
	}
	blo := a.g.Coord(ids[0])
	bhi := blo
	nd := a.g.ND()
	for _, id := range ids[1:] {
		p := a.g.Coord(id)
		for ax := 0; ax < nd; ax++ {
			if p[ax] < blo[ax] {
				blo[ax] = p[ax]
			}
			if p[ax] > bhi[ax] {
				bhi[ax] = p[ax]
			}
		}
	}
	for center, st := range c.state {
		if st == cacheInvalid {
			continue
		}
		hit := true
		for ax := 0; ax < nd; ax++ {
			// Stored boxes are half-open; the changed box is inclusive.
			if bhi[ax] < c.lo[center][ax] || blo[ax] >= c.hi[center][ax] {
				hit = false
				break
			}
		}
		if hit {
			c.state[center] = cacheInvalid
		}
	}
}

// take shadows tracker.take so every path that marks nodes busy — the
// Allocate winner and the direct takes of in-package tests — also
// invalidates the affected cached scores.
func (a *MC) take(ids []int) {
	a.tracker.take(ids)
	a.cacheInvalidate(ids)
}

// Release implements Allocator.
func (a *MC) Release(ids []int) {
	a.tracker.Release(ids)
	a.cacheInvalidate(ids)
}

// MarkDown shadows tracker.MarkDown so fault deltas invalidate cached
// scores exactly like an allocation of the node would: a downed node
// changes the shell free counts of every candidate whose stopping box
// covers it.
func (a *MC) MarkDown(id int) {
	a.tracker.MarkDown(id)
	a.maskBuf[0] = id
	a.cacheInvalidate(a.maskBuf[:])
}

// MarkUp shadows tracker.MarkUp with the same cache invalidation on
// the repair delta.
func (a *MC) MarkUp(id int) {
	a.tracker.MarkUp(id)
	a.maskBuf[0] = id
	a.cacheInvalidate(a.maskBuf[:])
}

// Reset implements Allocator.
func (a *MC) Reset() {
	a.tracker.Reset()
	a.cache.live = false
}

// SetScoreCache toggles incremental score reuse between consecutive
// Allocate calls (on by default for the indexed scorer; the naive
// reference scorer never caches). Both settings produce bit-identical
// allocations — the cache only skips recomputing scores proven unchanged.
func (a *MC) SetScoreCache(on bool) {
	a.noCache = !on
	if !on {
		a.cache.live = false
	}
}

// NewMC returns the shape-aware MC allocator.
func NewMC(g *topo.Grid) *MC {
	a := &MC{tracker: newTracker(g)}
	a.boxes = occupancy.NewBoxes(g)
	return a
}

// NewMC1x1 returns the shape-oblivious CPlant variant whose shell 0 is a
// single processor.
func NewMC1x1(g *topo.Grid) *MC {
	a := NewMC(g)
	a.oneByOne = true
	return a
}

// NewMCNaive returns the reference MC scorer: the pre-index
// implementation that gathers shells for every candidate. It is
// retained as the ground truth the indexed scorer is fuzzed against,
// and as the baseline for the allocator benchmarks.
func NewMCNaive(g *topo.Grid) *MC { return &MC{tracker: newTracker(g)} }

// NewMC1x1Naive returns the reference MC1x1 scorer; see NewMCNaive.
func NewMC1x1Naive(g *topo.Grid) *MC {
	return &MC{tracker: newTracker(g), oneByOne: true}
}

// Name implements Allocator.
func (a *MC) Name() string {
	if a.oneByOne {
		return "mc1x1"
	}
	return "mc"
}

// Allocate implements Allocator.
func (a *MC) Allocate(req Request) ([]int, error) {
	if err := a.check(req.Size); err != nil {
		return nil, err
	}
	var ext topo.Point
	for i := range ext {
		ext[i] = 1
	}
	if !a.oneByOne {
		ext = req.ShapeExt(a.g.ND())
	}
	if a.boxes == nil {
		return a.allocateNaive(ext, req.Size)
	}
	var cache *mcCache
	if !a.noCache {
		a.cache.ensure(a.g.Size(), ext, req.Size)
		cache = &a.cache
	}
	bestCost, bestCenter := -1, -1
	if a.workers > 1 {
		bestCost, bestCenter = a.scanParallel(ext, req.Size, cache)
	} else {
		for center := 0; center < a.g.Size(); center++ {
			if a.busy[center] {
				continue
			}
			var cost int
			if cache != nil && cache.state[center] == cacheExact {
				// An exact entry is the cost the uncached loop would
				// recompute; candidates it would have pruned simply lose
				// the strict-< comparison below.
				cost = cache.cost[center]
			} else {
				if cache != nil && cache.state[center] == cacheBound &&
					bestCost >= 0 && cache.cost[center] >= bestCost {
					// The cached lower bound already proves this candidate
					// cannot strictly beat the incumbent.
					continue
				}
				coord := a.g.Coord(center)
				c, rad, ok := a.countCost(coord, ext, req.Size, bestCost)
				if !ok {
					if cache != nil && rad >= 0 {
						cache.store(a.g, cacheBound, center, coord, ext, rad, c)
					}
					continue
				}
				cost = c
				if cache != nil {
					cache.store(a.g, cacheExact, center, coord, ext, rad, cost)
				}
			}
			if bestCost == -1 || cost < bestCost {
				bestCost, bestCenter = cost, center
			}
		}
	}
	if bestCost == -1 {
		return nil, ErrInsufficient
	}
	cost, ok := a.gather(a.g.Coord(bestCenter), ext, req.Size)
	if !ok || cost != bestCost {
		panic("alloc: occupancy index diverged from the shell walk")
	}
	best := append([]int(nil), a.gatherBuf...)
	a.take(best)
	return best, nil
}

// allocateNaive is the reference scoring loop: gather shells for every
// free candidate and keep the first strictly-better one.
func (a *MC) allocateNaive(ext topo.Point, size int) ([]int, error) {
	bestCost := -1
	for center := 0; center < a.g.Size(); center++ {
		if a.busy[center] {
			continue
		}
		cost, ok := a.gather(a.g.Coord(center), ext, size)
		if !ok {
			continue
		}
		if bestCost == -1 || cost < bestCost {
			bestCost = cost
			a.bestBuf, a.gatherBuf = a.gatherBuf, a.bestBuf
		}
	}
	if bestCost == -1 {
		return nil, ErrInsufficient
	}
	best := append([]int(nil), a.bestBuf...)
	a.take(best)
	return best, nil
}

// countCost computes the exact shell-weight cost of a candidate from
// box counts alone: cost = sum over k of k * (freeBox(k) - freeBox(k-1))
// with the outermost shell truncated to exactly size, where freeBox(k)
// is the number of free processors within shell k's clipped outer box.
// The running value cost + (k+1)*(size - freeBox(k)) is a monotone
// lower bound on the final cost — every processor still missing sits at
// shell k+1 or beyond — so the loop aborts (ok == false) as soon as the
// bound proves the candidate cannot be strictly better than the
// incumbent cost. Pass incumbent < 0 to disable pruning. On success rad
// is the stopping shell index, which bounds the box the cost depends on
// (the score-cache invalidation region); on a prune, cost carries the
// aborting lower bound and rad the shell it was computed at, so the
// bound is cacheable with the same invalidation region. A rad of -1
// marks the unreachable shells-exhausted return, which caches nothing.
func (a *MC) countCost(c, ext topo.Point, size, incumbent int) (cost, rad int, ok bool) {
	prev := 0
	for k, maxK := 0, a.g.MaxShells(); k <= maxK; k++ {
		lo, hi, onGrid := a.g.GrownBounds(c, ext, k)
		if !onGrid {
			// Unreachable: a grown box always contains its on-grid center.
			continue
		}
		cur := a.boxes.FreeIn(lo, hi)
		if cur >= size {
			return cost + k*(size-prev), k, true
		}
		cost += k * (cur - prev)
		prev = cur
		if bound := cost + (k+1)*(size-cur); incumbent >= 0 && bound >= incumbent {
			return bound, k, false
		}
	}
	// Unreachable when numFree >= size: the box grown maxK times covers
	// the whole machine, mirroring the reference gather's termination.
	return 0, -1, false
}

// gather collects size free processors into a.gatherBuf in shells around
// center and returns the summed shell-weight cost, or (0, false) if the
// shells run out before size processors are found. The ShellEach walk
// keeps the whole scoring loop free of intermediate buffers; the closure
// stays on the stack because ShellEach does not retain it.
func (a *MC) gather(center, ext topo.Point, size int) (int, bool) {
	ids := a.gatherBuf[:0]
	cost := 0
	maxK := a.g.MaxShells()
	for k := 0; k <= maxK && len(ids) < size; k++ {
		a.g.ShellEach(center, ext, k, func(id int) bool {
			if a.busy[id] {
				return true
			}
			ids = append(ids, id)
			cost += k
			return len(ids) < size
		})
	}
	a.gatherBuf = ids
	if len(ids) < size {
		return 0, false
	}
	return cost, true
}

// GenAlg is the (2-2/k)-approximation of Krumke et al. for minimizing
// average pairwise distance: for every free processor p, take the k-1
// free processors closest to p and score the set by total pairwise
// distance; the best-scoring set wins.
//
// By default the candidate loop never gathers: the ball index (see
// internal/occupancy) binary-searches the Manhattan-ball radius holding
// size free processors, per-axis slice counts reconstruct the member
// set's coordinate marginals, the boundary ring alone is walked for the
// row-major tie-breaking tail, and the exact total pairwise distance
// follows from the marginals because L1 distance separates per axis.
// Only the winning center performs the real ring gather. Torus machines
// and dimensionalities without ball support fall back to the reference
// scorer (wrapped distances do not separate per axis).
type GenAlg struct {
	tracker
	// Persistent candidate scratch, as in MC: nearest fills nearBuf and
	// the buffers swap when a candidate wins.
	nearBuf []int
	bestBuf []int
	ringBuf []int
	axisBuf [topo.MaxDims][]int
	// scratch is the indexed-scoring workspace of the sequential
	// candidate loop; parallel scoring workers own private copies (see
	// parallel.go) so the loop can shard without sharing mutable state.
	scratch genScratch
	maxR    int
	// workers and parScratch belong to the opt-in parallel candidate
	// scan; workers <= 1 (the default) keeps the sequential loop.
	workers    int
	parScratch []genScratch
}

// genScratch is one candidate-scoring workspace for the indexed Gen-Alg
// loop: per-axis member marginals, and the previous candidate's ball
// radius seeding the next radius search (neighboring centers rarely
// differ by much). The radius hint only steers where ballCutoff starts
// searching — the cutoff it returns is a pure function of the machine
// state — so scoring through any scratch yields identical costs.
type genScratch struct {
	marg   [topo.MaxDims][]int
	radius int
}

func newGenScratch(g *topo.Grid) genScratch {
	var s genScratch
	for i := 0; i < g.ND(); i++ {
		s.marg[i] = make([]int, g.Dim(i))
	}
	return s
}

// NewGenAlg returns a Gen-Alg allocator over g.
func NewGenAlg(g *topo.Grid) *GenAlg {
	a := newGenAlg(g)
	if !g.Torus() {
		a.balls = occupancy.NewBalls(g) // nil on unsupported dimensionalities
	}
	return a
}

// NewGenAlgNaive returns the reference Gen-Alg scorer: the pre-index
// implementation that gathers rings for every candidate. It is retained
// as the ground truth the indexed scorer is fuzzed against, and as the
// baseline for the allocator benchmarks.
func NewGenAlgNaive(g *topo.Grid) *GenAlg { return newGenAlg(g) }

func newGenAlg(g *topo.Grid) *GenAlg {
	a := &GenAlg{tracker: newTracker(g), scratch: newGenScratch(g)}
	for i := 0; i < g.ND(); i++ {
		a.maxR += g.Dim(i)
	}
	return a
}

// Name implements Allocator.
func (a *GenAlg) Name() string { return "genalg" }

// Allocate implements Allocator.
func (a *GenAlg) Allocate(req Request) ([]int, error) {
	if err := a.check(req.Size); err != nil {
		return nil, err
	}
	if a.balls == nil {
		return a.allocateNaive(req.Size)
	}
	bestDist, bestCenter := -1, -1
	if a.workers > 1 {
		bestDist, bestCenter = a.scanParallel(req.Size)
	} else {
		a.scratch.radius = 0
		for center := 0; center < a.g.Size(); center++ {
			if a.busy[center] {
				continue
			}
			d := a.countPairwise(&a.scratch, center, req.Size)
			if bestDist == -1 || d < bestDist {
				bestDist, bestCenter = d, center
			}
		}
	}
	if bestCenter == -1 {
		return nil, ErrInsufficient
	}
	a.nearest(bestCenter, req.Size)
	if d := a.totalPairwise(a.nearBuf); d != bestDist {
		panic("alloc: occupancy index diverged from the ring gather")
	}
	best := append([]int(nil), a.nearBuf...)
	a.take(best)
	return best, nil
}

// allocateNaive is the reference scoring loop: gather the nearest set
// for every free candidate and keep the first strictly-better one.
func (a *GenAlg) allocateNaive(size int) ([]int, error) {
	bestDist := -1
	for center := 0; center < a.g.Size(); center++ {
		if a.busy[center] {
			continue
		}
		a.nearest(center, size)
		d := a.totalPairwise(a.nearBuf)
		if bestDist == -1 || d < bestDist {
			bestDist = d
			a.bestBuf, a.nearBuf = a.nearBuf, a.bestBuf
		}
	}
	best := append([]int(nil), a.bestBuf...)
	a.take(best)
	return best, nil
}

// countPairwise computes the exact total pairwise distance of the set
// nearest(center, k) would gather, without gathering it: the ball
// radius from the index, interior per-axis marginals from slice counts,
// and only the boundary ring walked for the row-major tail. All mutable
// state lives in s, so concurrent callers with distinct scratches score
// disjoint candidates safely (the index and busy bitmap are only read).
func (a *GenAlg) countPairwise(s *genScratch, center, k int) int {
	c := a.g.Coord(center)
	r, inner := a.ballCutoff(c, k, s.radius)
	s.radius = r
	nd := a.g.ND()
	for ax := 0; ax < nd; ax++ {
		lo, hi := a.g.ClipInterval(ax, c[ax]-r, c[ax]+r)
		m := s.marg[ax]
		for v := lo; v < hi; v++ {
			m[v] = 0
		}
	}
	if inner > 0 {
		for ax := 0; ax < nd; ax++ {
			a.balls.AddMarginal(ax, c, r-1, s.marg[ax])
		}
	}
	if tail := k - inner; tail > 0 {
		a.tailMarginals(s, c, r, tail)
	}
	total := 0
	for ax := 0; ax < nd; ax++ {
		lo, hi := a.g.ClipInterval(ax, c[ax]-r, c[ax]+r)
		m := s.marg[ax]
		seen, prefix := 0, 0
		for v := lo; v < hi; v++ {
			cnt := m[v]
			if cnt == 0 {
				continue
			}
			total += cnt * (v*seen - prefix)
			seen += cnt
			prefix += v * cnt
		}
	}
	return total
}

// tailMarginals walks ring r around c in exactly AppendRing's
// row-major order, adding the first tail free processors to the
// marginals — the tie-breaking boundary of the candidate set. The ring
// is enumerated with flat loops and direct id arithmetic (no Coord
// calls, nothing materialized): the tail is the only part of a
// candidate the indexed scorer still walks, so it must cost a probe
// per cell and no more.
func (a *GenAlg) tailMarginals(s *genScratch, c topo.Point, r, tail int) {
	if a.g.ND() == 2 {
		w, h := a.g.Dim(0), a.g.Dim(1)
		for dy := -r; dy <= r; dy++ {
			y := c[1] + dy
			if y < 0 || y >= h {
				continue
			}
			dx := r - abs(dy)
			row := y * w
			if x := c[0] - dx; x >= 0 && x < w && !a.busy[row+x] {
				s.marg[0][x]++
				s.marg[1][y]++
				if tail--; tail == 0 {
					return
				}
			}
			if dx > 0 {
				if x := c[0] + dx; x >= 0 && x < w && !a.busy[row+x] {
					s.marg[0][x]++
					s.marg[1][y]++
					if tail--; tail == 0 {
						return
					}
				}
			}
		}
		return
	}
	w, h, d := a.g.Dim(0), a.g.Dim(1), a.g.Dim(2)
	for dz := -r; dz <= r; dz++ {
		z := c[2] + dz
		if z < 0 || z >= d {
			continue
		}
		rem := r - abs(dz)
		zbase := z * w * h
		for dy := -rem; dy <= rem; dy++ {
			y := c[1] + dy
			if y < 0 || y >= h {
				continue
			}
			dx := rem - abs(dy)
			row := zbase + y*w
			if x := c[0] - dx; x >= 0 && x < w && !a.busy[row+x] {
				s.marg[0][x]++
				s.marg[1][y]++
				s.marg[2][z]++
				if tail--; tail == 0 {
					return
				}
			}
			if dx > 0 {
				if x := c[0] + dx; x >= 0 && x < w && !a.busy[row+x] {
					s.marg[0][x]++
					s.marg[1][y]++
					s.marg[2][z]++
					if tail--; tail == 0 {
						return
					}
				}
			}
		}
	}
}

// ballCutoff returns the smallest radius r whose clipped Manhattan
// ball around c holds at least k free processors — the cutoff
// nearest() stops at — together with the free count of the interior
// ball of radius r-1. It gallops outward or inward from the hint and
// binary-searches the bracket; with the previous candidate's radius as
// the hint the common case settles in a single fused two-ball count.
func (a *GenAlg) ballCutoff(c topo.Point, k, hint int) (r, inner int) {
	if hint < 0 {
		hint = 0
	}
	if hint > a.maxR {
		hint = a.maxR
	}
	cur, prev := a.balls.FreeInBall2(c, hint)
	var lo, hi int
	if cur >= k {
		if hint == 0 || prev < k {
			return hint, prev
		}
		// Shrink: gallop down while the smaller ball still holds k, then
		// binary-search the remaining bracket.
		lo, hi = 0, hint-1
		for step := 1; hi-step > 0; step *= 2 {
			if a.balls.FreeInBall(c, hi-step) < k {
				lo = hi - step + 1
				break
			}
			hi -= step
		}
	} else {
		// Grow: gallop up until a ball holds k (the ball of radius maxR
		// is the whole machine, which holds numFree >= k), then
		// binary-search.
		lo, hi = hint+1, hint+1
		for step := 1; hi < a.maxR && a.balls.FreeInBall(c, hi) < k; step *= 2 {
			lo = hi + 1
			hi += step
			if hi > a.maxR {
				hi = a.maxR
			}
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if a.balls.FreeInBall(c, mid) >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	_, prev = a.balls.FreeInBall2(c, lo)
	return lo, prev
}

// nearest fills a.nearBuf with the k free processors closest to center
// (inclusive), gathered ring by Manhattan ring with row-major tie-breaking
// inside a ring.
func (a *GenAlg) nearest(center, k int) {
	c := a.g.Coord(center)
	ids := a.nearBuf[:0]
	maxR := 0
	for i := 0; i < a.g.ND(); i++ {
		maxR += a.g.Dim(i)
	}
	for r := 0; r <= maxR && len(ids) < k; r++ {
		a.ringBuf = a.g.AppendRing(a.ringBuf[:0], c, r)
		for _, id := range a.ringBuf {
			if a.busy[id] {
				continue
			}
			ids = append(ids, id)
			if len(ids) == k {
				break
			}
		}
	}
	a.nearBuf = ids
}

// totalPairwise computes the total pairwise hop distance of the node set
// using the allocator's persistent axis workspace: in O(k log k) on a
// plain grid by handling each axis independently. Torus distances are
// not separable this way, so they fall back to the quadratic
// computation.
func (a *GenAlg) totalPairwise(ids []int) int {
	if a.g.Torus() {
		return a.g.TotalPairwiseDist(ids)
	}
	nd := a.g.ND()
	for axis := 0; axis < nd; axis++ {
		a.axisBuf[axis] = a.axisBuf[axis][:0]
	}
	for _, id := range ids {
		p := a.g.Coord(id)
		for axis := 0; axis < nd; axis++ {
			a.axisBuf[axis] = append(a.axisBuf[axis], p[axis])
		}
	}
	total := 0
	for axis := 0; axis < nd; axis++ {
		total += sortedAxisSum(a.axisBuf[axis])
	}
	return total
}

// totalPairwiseL1 computes the total pairwise hop distance of the node
// set, in O(k log k) on a plain grid by handling the axes independently;
// torus distances fall back to the quadratic computation.
func totalPairwiseL1(g *topo.Grid, ids []int) int {
	if g.Torus() {
		return g.TotalPairwiseDist(ids)
	}
	total := 0
	axis := make([]int, len(ids))
	for i := 0; i < g.ND(); i++ {
		for j, id := range ids {
			axis[j] = g.Coord(id)[i]
		}
		total += sortedAxisSum(axis)
	}
	return total
}

// sortedAxisSum returns sum over i<j of |v[i]-v[j]| via sorting and prefix
// arithmetic.
func sortedAxisSum(v []int) int {
	sort.Ints(v)
	total, prefix := 0, 0
	for i, x := range v {
		total += i*x - prefix
		prefix += x
	}
	return total
}

// Random allocates uniformly random free processors. It is not in the
// paper but provides the dispersal worst case that the contention model
// can be sanity-checked against.
type Random struct {
	tracker
	rng     *stats.RNG
	freeBuf []int // persistent scratch for the shuffled free list
}

// NewRandom returns a Random allocator seeded with seed.
func NewRandom(g *topo.Grid, seed int64) *Random {
	return &Random{tracker: newTracker(g), rng: stats.NewRNG(seed)}
}

// Name implements Allocator.
func (a *Random) Name() string { return "random" }

// Allocate implements Allocator.
func (a *Random) Allocate(req Request) ([]int, error) {
	if err := a.check(req.Size); err != nil {
		return nil, err
	}
	free := a.freeBuf[:0]
	for id, b := range a.busy {
		if !b {
			free = append(free, id)
		}
	}
	a.freeBuf = free
	a.rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	ids := append([]int(nil), free[:req.Size]...)
	sort.Ints(ids)
	a.take(ids)
	return ids, nil
}
