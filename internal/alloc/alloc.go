// Package alloc implements the processor-allocation algorithms compared in
// the paper: the Paging / one-dimensional-reduction family (a space-filling
// curve plus a bin-packing selection strategy), Mache et al.'s shape-aware
// MC and its shape-oblivious CPlant variant MC1x1, Krumke et al.'s
// Gen-Alg, and a random baseline.
//
// The algorithms are dimension-generic: they run over a topo.Grid, so the
// same Paging, MC-family and Gen-Alg implementations serve the paper's
// 2-D meshes and the native 3-D machines of the ext-cube3d experiment.
// Only the contiguous baselines (submesh first fit, the 2-D buddy
// system) are inherently two-dimensional and are gated accordingly.
//
// An Allocator owns the free/busy state of one machine. The simulator
// calls Allocate when the FCFS scheduler starts a job and Release when the
// job terminates.
package alloc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"meshalloc/internal/binpack"
	"meshalloc/internal/curve"
	"meshalloc/internal/curveopt"
	"meshalloc/internal/mesh"
	"meshalloc/internal/stats"
	"meshalloc/internal/topo"
)

// ErrInsufficient reports that a request exceeds the free processor count.
var ErrInsufficient = errors.New("alloc: not enough free processors")

// Request asks for Size processors. ShapeW x ShapeH is the submesh shape
// the user would request on an MC system; when zero, shape-aware
// allocators derive a near-square shape from Size.
type Request struct {
	Size   int
	ShapeW int
	ShapeH int
}

// Shape returns the request's submesh shape, deriving the most-square
// shape with ShapeW >= ShapeH covering Size when none was given — the
// bias toward rectangular allocations the paper attributes to real users.
func (r Request) Shape() (w, h int) {
	if r.ShapeW > 0 && r.ShapeH > 0 {
		return r.ShapeW, r.ShapeH
	}
	w = int(math.Ceil(math.Sqrt(float64(r.Size))))
	if w < 1 {
		w = 1
	}
	h = (r.Size + w - 1) / w
	if h < 1 {
		h = 1
	}
	return w, h
}

// ShapeExt returns the request's shape as nd-dimensional extents: the
// explicit 2-D shape when one was given on a 2-D machine, otherwise the
// near-cubic shape covering Size, derived greedily axis by axis. For
// nd = 2 this reproduces Shape exactly, which keeps MC's candidate
// scoring bit-identical on the paper's meshes.
func (r Request) ShapeExt(nd int) topo.Point {
	var ext topo.Point
	for i := range ext {
		ext[i] = 1
	}
	if nd == 2 {
		ext[0], ext[1] = r.Shape()
		return ext
	}
	remaining := r.Size
	for i := 0; i < nd; i++ {
		e := intRootCeil(remaining, nd-i)
		ext[i] = e
		remaining = (remaining + e - 1) / e
	}
	return ext
}

// intRootCeil returns the smallest e >= 1 with e^k >= n.
func intRootCeil(n, k int) int {
	if n <= 1 {
		return 1
	}
	e := int(math.Ceil(math.Pow(float64(n), 1/float64(k))))
	if e < 1 {
		e = 1
	}
	// Guard against floating-point undershoot/overshoot around exact
	// powers.
	for pow(e-1, k) >= n {
		e--
	}
	for pow(e, k) < n {
		e++
	}
	return e
}

func pow(b, k int) int {
	p := 1
	for i := 0; i < k; i++ {
		p *= b
	}
	return p
}

// Allocator assigns sets of processors to jobs on a fixed machine.
type Allocator interface {
	// Name identifies the algorithm, e.g. "hilbert/bestfit" or "mc1x1".
	Name() string
	// Allocate selects exactly req.Size free processors and marks them
	// busy. It returns ErrInsufficient when the machine cannot satisfy
	// the request.
	Allocate(req Request) ([]int, error)
	// Release frees processors previously returned by Allocate.
	Release(ids []int)
	// NumFree returns the current number of free processors.
	NumFree() int
	// Reset frees every processor.
	Reset()
}

// Spec names an allocator configuration in the form used by the CLI tools
// and the experiment harness:
//
//	"mc", "mc1x1", "genalg", "random",
//	"submesh", "buddy" (contiguous baselines, 2-D only),
//	"<curve>" (Paging with sorted free list),
//	"<curve>/<strategy>" (Paging with a bin-packing strategy), or
//	"<curve>/<strategy>/page<s>" (Lo et al.'s Paging with 2^s-sided pages),
//
// e.g. "hilbert/bestfit", "scurve/firstfit", "hindex",
// "hilbert/freelist/page1". On machines with more than two dimensions
// the curve must order n-D grids (hilbert, scurve, rowmajor, zorder, and
// the proj2d-* projections); the 2-D-only curves are rejected.
func Spec(g *topo.Grid, spec string, seed int64) (Allocator, error) {
	switch spec {
	case "mc":
		return NewMC(g), nil
	case "mc1x1":
		return NewMC1x1(g), nil
	case "genalg":
		return NewGenAlg(g), nil
	case "random":
		return NewRandom(g, seed), nil
	case "submesh":
		if g.ND() != 2 {
			return nil, fmt.Errorf("alloc: submesh allocation requires a 2-D mesh, got %d-D", g.ND())
		}
		return NewSubmeshFirstFit(mesh.FromGrid(g)), nil
	case "buddy":
		if g.ND() != 2 {
			return nil, fmt.Errorf("alloc: buddy requires a 2-D mesh, got %d-D", g.ND())
		}
		if g.Dim(0) != g.Dim(1) || g.Dim(0)&(g.Dim(0)-1) != 0 {
			return nil, fmt.Errorf("alloc: buddy requires a square power-of-two mesh, got %dx%d",
				g.Dim(0), g.Dim(1))
		}
		return NewBuddy(mesh.FromGrid(g)), nil
	}
	parts := strings.Split(spec, "/")
	var c curve.Curve
	if parts[0] == "optcurve" {
		// Locality-searched ordering for arbitrary topologies (the
		// paper's integer-program idea); see the curveopt package.
		c = curveopt.MeshCurve{Seed: seed}
	} else {
		var err error
		c, err = curve.ByName(parts[0])
		if err != nil {
			return nil, fmt.Errorf("alloc: unknown allocator %q", spec)
		}
	}
	if !curve.SupportsDims(c, g.ND()) {
		return nil, fmt.Errorf("alloc: curve %s cannot order a %d-D machine", c.Name(), g.ND())
	}
	strat := binpack.FreeList
	if len(parts) >= 2 {
		var err error
		strat, err = binpack.StrategyByName(parts[1])
		if err != nil {
			return nil, err
		}
	}
	switch {
	case len(parts) == 2:
		return NewPaging(g, c, strat), nil
	case len(parts) == 3:
		var s int
		if _, err := fmt.Sscanf(parts[2], "page%d", &s); err != nil || s < 0 {
			return nil, fmt.Errorf("alloc: bad page suffix %q in %q", parts[2], spec)
		}
		side := 1 << uint(s)
		for i := 0; i < g.ND(); i++ {
			if side > g.Dim(i) {
				return nil, fmt.Errorf("alloc: page side %d exceeds machine axis %d (extent %d)", side, i, g.Dim(i))
			}
		}
		return NewPagedPaging(g, c, strat, s), nil
	case len(parts) > 3:
		return nil, fmt.Errorf("alloc: unknown allocator %q", spec)
	}
	return NewPaging(g, c, strat), nil
}

// Specs returns the nine allocator specs whose curves appear in the
// paper's Figures 7 and 8: MC, MC1x1, Gen-Alg, and the three curves each
// with sorted free list and Best Fit.
func Specs() []string {
	return []string{
		"mc", "mc1x1", "genalg",
		"hilbert", "hilbert/bestfit",
		"hindex", "hindex/bestfit",
		"scurve", "scurve/bestfit",
	}
}

// Fig11Specs returns the twelve allocator specs of the paper's Figure 11
// contiguity table: the nine graph algorithms plus First Fit for each
// curve.
func Fig11Specs() []string {
	return append(Specs(),
		"hilbert/firstfit", "hindex/firstfit", "scurve/firstfit")
}

// Paging is the one-dimensional-reduction allocator: processors are
// ordered by a space-filling curve and selected with a bin-packing
// strategy (page size 1, so no internal fragmentation).
type Paging struct {
	g      *topo.Grid
	c      curve.Curve
	strat  binpack.Strategy
	packer *binpack.Packer
}

// NewPaging returns a Paging allocator over g using curve c and selection
// strategy strat. It panics when the curve cannot order the grid's
// dimensionality (use Spec for an error-returning path): curve choice is
// static configuration.
func NewPaging(g *topo.Grid, c curve.Curve, strat binpack.Strategy) *Paging {
	order, err := curve.GridOrder(c, g.Dims())
	if err != nil {
		panic(fmt.Sprintf("alloc: %v", err))
	}
	return &Paging{
		g:      g,
		c:      c,
		strat:  strat,
		packer: binpack.New(order),
	}
}

// Name implements Allocator.
func (p *Paging) Name() string {
	if p.strat == binpack.FreeList {
		return p.c.Name()
	}
	return p.c.Name() + "/" + p.strat.String()
}

// Allocate implements Allocator.
func (p *Paging) Allocate(req Request) ([]int, error) {
	ids, err := p.packer.Allocate(req.Size, p.strat)
	if err == binpack.ErrInsufficient {
		return nil, ErrInsufficient
	}
	return ids, err
}

// Release implements Allocator.
func (p *Paging) Release(ids []int) { p.packer.Release(ids) }

// NumFree implements Allocator.
func (p *Paging) NumFree() int { return p.packer.NumFree() }

// Reset implements Allocator.
func (p *Paging) Reset() { p.packer.Reset() }

// tracker is the shared busy-set bookkeeping for the set-based allocators
// (MC, Gen-Alg, Random).
type tracker struct {
	g       *topo.Grid
	busy    []bool
	numFree int
}

func newTracker(g *topo.Grid) tracker {
	return tracker{g: g, busy: make([]bool, g.Size()), numFree: g.Size()}
}

func (t *tracker) NumFree() int { return t.numFree }

func (t *tracker) Reset() {
	for i := range t.busy {
		t.busy[i] = false
	}
	t.numFree = len(t.busy)
}

func (t *tracker) Release(ids []int) {
	for _, id := range ids {
		if id < 0 || id >= len(t.busy) || !t.busy[id] {
			panic(fmt.Sprintf("alloc: release of free or invalid id %d", id))
		}
		t.busy[id] = false
	}
	t.numFree += len(ids)
}

func (t *tracker) take(ids []int) {
	for _, id := range ids {
		t.busy[id] = true
	}
	t.numFree -= len(ids)
}

func (t *tracker) check(size int) error {
	if size <= 0 {
		return fmt.Errorf("alloc: invalid request size %d", size)
	}
	if size > t.numFree {
		return ErrInsufficient
	}
	return nil
}

// MC is the shell-scoring allocator of Mache, Lo and Windisch. Every free
// processor evaluates an allocation centered on itself: free processors
// are gathered shell by shell outward from the requested submesh shape,
// weighted by shell index, and the candidate with the lowest total weight
// (cost) wins. MC1x1 is the same algorithm with shell 0 fixed at a
// single processor. On n-D machines the shells are box surfaces instead
// of rings; the scoring rule is unchanged.
type MC struct {
	tracker
	oneByOne bool
	// gatherBuf and bestBuf are persistent candidate scratch: gather fills
	// gatherBuf, and when a candidate wins the two swap, so the steady
	// state allocates only the returned slice.
	gatherBuf []int
	bestBuf   []int
}

// NewMC returns the shape-aware MC allocator.
func NewMC(g *topo.Grid) *MC { return &MC{tracker: newTracker(g)} }

// NewMC1x1 returns the shape-oblivious CPlant variant whose shell 0 is a
// single processor.
func NewMC1x1(g *topo.Grid) *MC {
	return &MC{tracker: newTracker(g), oneByOne: true}
}

// Name implements Allocator.
func (a *MC) Name() string {
	if a.oneByOne {
		return "mc1x1"
	}
	return "mc"
}

// Allocate implements Allocator.
func (a *MC) Allocate(req Request) ([]int, error) {
	if err := a.check(req.Size); err != nil {
		return nil, err
	}
	var ext topo.Point
	for i := range ext {
		ext[i] = 1
	}
	if !a.oneByOne {
		ext = req.ShapeExt(a.g.ND())
	}
	bestCost := -1
	for center := 0; center < a.g.Size(); center++ {
		if a.busy[center] {
			continue
		}
		cost, ok := a.gather(a.g.Coord(center), ext, req.Size)
		if !ok {
			continue
		}
		if bestCost == -1 || cost < bestCost {
			bestCost = cost
			a.bestBuf, a.gatherBuf = a.gatherBuf, a.bestBuf
		}
	}
	if bestCost == -1 {
		return nil, ErrInsufficient
	}
	best := append([]int(nil), a.bestBuf...)
	a.take(best)
	return best, nil
}

// gather collects size free processors into a.gatherBuf in shells around
// center and returns the summed shell-weight cost, or (0, false) if the
// shells run out before size processors are found. The ShellEach walk
// keeps the whole scoring loop free of intermediate buffers; the closure
// stays on the stack because ShellEach does not retain it.
func (a *MC) gather(center, ext topo.Point, size int) (int, bool) {
	ids := a.gatherBuf[:0]
	cost := 0
	maxK := a.g.MaxShells()
	for k := 0; k <= maxK && len(ids) < size; k++ {
		a.g.ShellEach(center, ext, k, func(id int) bool {
			if a.busy[id] {
				return true
			}
			ids = append(ids, id)
			cost += k
			return len(ids) < size
		})
	}
	a.gatherBuf = ids
	if len(ids) < size {
		return 0, false
	}
	return cost, true
}

// GenAlg is the (2-2/k)-approximation of Krumke et al. for minimizing
// average pairwise distance: for every free processor p, take the k-1
// free processors closest to p and score the set by total pairwise
// distance; the best-scoring set wins.
type GenAlg struct {
	tracker
	// Persistent candidate scratch, as in MC: nearest fills nearBuf and
	// the buffers swap when a candidate wins.
	nearBuf []int
	bestBuf []int
	ringBuf []int
	axisBuf [topo.MaxDims][]int
}

// NewGenAlg returns a Gen-Alg allocator over g.
func NewGenAlg(g *topo.Grid) *GenAlg { return &GenAlg{tracker: newTracker(g)} }

// Name implements Allocator.
func (a *GenAlg) Name() string { return "genalg" }

// Allocate implements Allocator.
func (a *GenAlg) Allocate(req Request) ([]int, error) {
	if err := a.check(req.Size); err != nil {
		return nil, err
	}
	bestDist := -1
	for center := 0; center < a.g.Size(); center++ {
		if a.busy[center] {
			continue
		}
		a.nearest(center, req.Size)
		d := a.totalPairwise(a.nearBuf)
		if bestDist == -1 || d < bestDist {
			bestDist = d
			a.bestBuf, a.nearBuf = a.nearBuf, a.bestBuf
		}
	}
	best := append([]int(nil), a.bestBuf...)
	a.take(best)
	return best, nil
}

// nearest fills a.nearBuf with the k free processors closest to center
// (inclusive), gathered ring by Manhattan ring with row-major tie-breaking
// inside a ring.
func (a *GenAlg) nearest(center, k int) {
	c := a.g.Coord(center)
	ids := a.nearBuf[:0]
	maxR := 0
	for i := 0; i < a.g.ND(); i++ {
		maxR += a.g.Dim(i)
	}
	for r := 0; r <= maxR && len(ids) < k; r++ {
		a.ringBuf = a.g.AppendRing(a.ringBuf[:0], c, r)
		for _, id := range a.ringBuf {
			if a.busy[id] {
				continue
			}
			ids = append(ids, id)
			if len(ids) == k {
				break
			}
		}
	}
	a.nearBuf = ids
}

// totalPairwise computes the total pairwise hop distance of the node set
// using the allocator's persistent axis workspace: in O(k log k) on a
// plain grid by handling each axis independently. Torus distances are
// not separable this way, so they fall back to the quadratic
// computation.
func (a *GenAlg) totalPairwise(ids []int) int {
	if a.g.Torus() {
		return a.g.TotalPairwiseDist(ids)
	}
	nd := a.g.ND()
	for axis := 0; axis < nd; axis++ {
		a.axisBuf[axis] = a.axisBuf[axis][:0]
	}
	for _, id := range ids {
		p := a.g.Coord(id)
		for axis := 0; axis < nd; axis++ {
			a.axisBuf[axis] = append(a.axisBuf[axis], p[axis])
		}
	}
	total := 0
	for axis := 0; axis < nd; axis++ {
		total += sortedAxisSum(a.axisBuf[axis])
	}
	return total
}

// totalPairwiseL1 computes the total pairwise hop distance of the node
// set, in O(k log k) on a plain grid by handling the axes independently;
// torus distances fall back to the quadratic computation.
func totalPairwiseL1(g *topo.Grid, ids []int) int {
	if g.Torus() {
		return g.TotalPairwiseDist(ids)
	}
	total := 0
	axis := make([]int, len(ids))
	for i := 0; i < g.ND(); i++ {
		for j, id := range ids {
			axis[j] = g.Coord(id)[i]
		}
		total += sortedAxisSum(axis)
	}
	return total
}

// sortedAxisSum returns sum over i<j of |v[i]-v[j]| via sorting and prefix
// arithmetic.
func sortedAxisSum(v []int) int {
	sort.Ints(v)
	total, prefix := 0, 0
	for i, x := range v {
		total += i*x - prefix
		prefix += x
	}
	return total
}

// Random allocates uniformly random free processors. It is not in the
// paper but provides the dispersal worst case that the contention model
// can be sanity-checked against.
type Random struct {
	tracker
	rng     *stats.RNG
	freeBuf []int // persistent scratch for the shuffled free list
}

// NewRandom returns a Random allocator seeded with seed.
func NewRandom(g *topo.Grid, seed int64) *Random {
	return &Random{tracker: newTracker(g), rng: stats.NewRNG(seed)}
}

// Name implements Allocator.
func (a *Random) Name() string { return "random" }

// Allocate implements Allocator.
func (a *Random) Allocate(req Request) ([]int, error) {
	if err := a.check(req.Size); err != nil {
		return nil, err
	}
	free := a.freeBuf[:0]
	for id, b := range a.busy {
		if !b {
			free = append(free, id)
		}
	}
	a.freeBuf = free
	a.rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	ids := append([]int(nil), free[:req.Size]...)
	sort.Ints(ids)
	a.take(ids)
	return ids, nil
}
