package alloc

import (
	"sync"

	"meshalloc/internal/topo"
)

// Parallel candidate scoring, layer 3 of the experiment fabric. The MC
// and Gen-Alg candidate loops score every free processor against a
// read-only snapshot of the machine (the busy bitmap and the occupancy
// indexes are only mutated between Allocate calls, never during a
// scan), so the loop shards cleanly: each worker scans one contiguous
// chunk of the center range with a private incumbent, and the chunks
// reduce in ascending order with a strict < comparison.
//
// Determinism contract: the sequential loops keep the FIRST strictly
// better candidate, so among equal-cost candidates the lowest center id
// wins. The chunked scan reproduces that exactly — a worker's local
// incumbent is the lowest-id best of its chunk, and the in-order
// strict-< reduction keeps the lowest-id best across chunks — so the
// parallel scan returns the same (cost, center) pair as the sequential
// scan for every machine state, and simulations are bit-identical at
// any worker count. Only the wall clock changes.
//
// Parallel scoring is opt-in (SetParallelism, or sim.Config.AllocWorkers
// through the engine); the default remains the sequential zero-alloc
// loop. Only the indexed scorers shard — the naive reference scorers
// share gather buffers across candidates and stay sequential.

// ParallelScorer is implemented by allocators whose candidate scoring
// loop can shard across worker goroutines without changing any result
// bit. SetParallelism(1) (or less) restores the sequential loop.
type ParallelScorer interface {
	SetParallelism(workers int)
}

// SetParallelism bounds the number of goroutines scoring MC candidates.
func (a *MC) SetParallelism(workers int) {
	if workers < 1 {
		workers = 1
	}
	a.workers = workers
}

// SetParallelism bounds the number of goroutines scoring Gen-Alg
// candidates, growing the pool of worker-private scoring scratches to
// match.
func (a *GenAlg) SetParallelism(workers int) {
	if workers < 1 {
		workers = 1
	}
	a.workers = workers
	for len(a.parScratch) < workers {
		a.parScratch = append(a.parScratch, newGenScratch(a.g))
	}
}

// chunkBest is one worker's chunk result: the lowest-id best candidate
// of its center range, or cost/center -1 when the chunk held none.
type chunkBest struct {
	cost   int
	center int
}

// reduceChunks folds per-chunk incumbents in ascending chunk order with
// strict <, electing the lowest-id candidate among global ties — the
// same candidate the sequential scan keeps.
func reduceChunks(res []chunkBest) (bestCost, bestCenter int) {
	bestCost, bestCenter = -1, -1
	for _, r := range res {
		if r.cost == -1 {
			continue
		}
		if bestCost == -1 || r.cost < bestCost {
			bestCost, bestCenter = r.cost, r.center
		}
	}
	return bestCost, bestCenter
}

// scanParallel shards MC's indexed candidate scan over a.workers
// goroutines. Pruning via the local incumbent only changes how much
// work a chunk does, never which candidate it elects, because countCost
// reports the exact cost of every candidate that beats the incumbent.
// The score cache composes: chunks cover disjoint center ranges and the
// cache is indexed by center, so workers read and write disjoint entries
// race-free. Which entries hold exact costs versus pruned lower bounds
// can vary with the worker count (different incumbents prune
// differently), but every cached value is occupancy-faithful, so
// elections stay bit-identical at any parallelism.
func (a *MC) scanParallel(ext topo.Point, size int, cache *mcCache) (bestCost, bestCenter int) {
	n := a.g.Size()
	workers := a.workers
	if workers > n {
		workers = n
	}
	res := make([]chunkBest, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			best := chunkBest{cost: -1, center: -1}
			for center := lo; center < hi; center++ {
				if a.busy[center] {
					continue
				}
				var cost int
				if cache != nil && cache.state[center] == cacheExact {
					cost = cache.cost[center]
				} else {
					if cache != nil && cache.state[center] == cacheBound &&
						best.cost >= 0 && cache.cost[center] >= best.cost {
						continue
					}
					coord := a.g.Coord(center)
					c, rad, ok := a.countCost(coord, ext, size, best.cost)
					if !ok {
						if cache != nil && rad >= 0 {
							cache.store(a.g, cacheBound, center, coord, ext, rad, c)
						}
						continue
					}
					cost = c
					if cache != nil {
						cache.store(a.g, cacheExact, center, coord, ext, rad, cost)
					}
				}
				if best.cost == -1 || cost < best.cost {
					best = chunkBest{cost: cost, center: center}
				}
			}
			res[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	return reduceChunks(res)
}

// scanParallel shards Gen-Alg's indexed candidate scan over a.workers
// goroutines, each scoring through its own genScratch. The radius hint
// resets per chunk, which is harmless: ballCutoff's result is
// independent of the hint, so scores do not depend on chunking.
func (a *GenAlg) scanParallel(k int) (bestDist, bestCenter int) {
	n := a.g.Size()
	workers := a.workers
	if workers > n {
		workers = n
	}
	res := make([]chunkBest, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := &a.parScratch[w]
			s.radius = 0
			best := chunkBest{cost: -1, center: -1}
			for center := lo; center < hi; center++ {
				if a.busy[center] {
					continue
				}
				d := a.countPairwise(s, center, k)
				if best.cost == -1 || d < best.cost {
					best = chunkBest{cost: d, center: center}
				}
			}
			res[w] = best
		}(w, lo, hi)
	}
	wg.Wait()
	return reduceChunks(res)
}
