package alloc

import (
	"testing"

	"meshalloc/internal/mesh"
)

// FuzzSpec checks the allocator spec parser never panics on arbitrary
// input and that every accepted spec produces a working allocator whose
// Name round-trips.
func FuzzSpec(f *testing.F) {
	for _, s := range append(Fig11Specs(), "buddy", "submesh", "random",
		"hilbert/bestfit/page2", "optcurve/bestfit", "zorder", "moore/nextfit") {
		f.Add(s)
	}
	f.Add("hilbert/bestfit/page")
	f.Add("///")
	f.Add("")
	m := mesh.New(8, 8)
	f.Fuzz(func(t *testing.T, spec string) {
		a, err := Spec(m.Grid(), spec, 1)
		if err != nil {
			return
		}
		if got := a.Name(); got != spec {
			t.Fatalf("Spec(%q).Name() = %q", spec, got)
		}
		ids, err := a.Allocate(Request{Size: 5})
		if err != nil {
			t.Fatalf("%q: fresh allocator refused size 5: %v", spec, err)
		}
		if len(ids) != 5 {
			t.Fatalf("%q: got %d ids", spec, len(ids))
		}
		a.Release(ids)
		if a.NumFree() != m.Size() {
			t.Fatalf("%q: NumFree %d after release", spec, a.NumFree())
		}
	})
}
