package alloc

import (
	"sort"
	"testing"
	"testing/quick"

	"meshalloc/internal/binpack"
	"meshalloc/internal/curve"
	"meshalloc/internal/mesh"
	"meshalloc/internal/topo"
)

func allAllocators(t *testing.T, m *mesh.Mesh) []Allocator {
	t.Helper()
	var as []Allocator
	for _, spec := range append(Fig11Specs(), "random") {
		a, err := Spec(m.Grid(), spec, 1)
		if err != nil {
			t.Fatalf("Spec(%q): %v", spec, err)
		}
		as = append(as, a)
	}
	return as
}

func TestSpecNames(t *testing.T) {
	m := mesh.New(8, 8)
	for _, spec := range append(Fig11Specs(), "random") {
		a, err := Spec(m.Grid(), spec, 1)
		if err != nil {
			t.Fatalf("Spec(%q): %v", spec, err)
		}
		if a.Name() != spec {
			t.Errorf("Spec(%q).Name() = %q", spec, a.Name())
		}
	}
	if _, err := Spec(m.Grid(), "nope", 1); err == nil {
		t.Error("unknown spec should fail")
	}
	if _, err := Spec(m.Grid(), "hilbert/nope", 1); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestRequestShape(t *testing.T) {
	tests := []struct {
		size, w, h int
	}{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {5, 3, 2}, {6, 3, 2},
		{9, 3, 3}, {12, 4, 3}, {24, 5, 5}, {30, 6, 5}, {128, 12, 11},
	}
	for _, tc := range tests {
		w, h := Request{Size: tc.size}.Shape()
		if w != tc.w || h != tc.h {
			t.Errorf("Shape(%d) = %dx%d, want %dx%d", tc.size, w, h, tc.w, tc.h)
		}
		if w*h < tc.size {
			t.Errorf("Shape(%d) = %dx%d does not cover the request", tc.size, w, h)
		}
	}
	// Explicit shape passes through.
	w, h := Request{Size: 6, ShapeW: 6, ShapeH: 1}.Shape()
	if w != 6 || h != 1 {
		t.Errorf("explicit shape = %dx%d", w, h)
	}
}

// TestAllocateInvariants drives every allocator through an
// allocate/release workload and checks the core contract: the right
// count, all free beforehand, no duplicates, and full recovery on
// release.
func TestAllocateInvariants(t *testing.T) {
	m := mesh.New(8, 8)
	for _, a := range allAllocators(t, m) {
		busy := map[int]bool{}
		var live [][]int
		sizes := []int{1, 5, 3, 16, 2, 7, 9, 4}
		for _, sz := range sizes {
			ids, err := a.Allocate(Request{Size: sz})
			if err != nil {
				t.Fatalf("%s: Allocate(%d): %v", a.Name(), sz, err)
			}
			if len(ids) != sz {
				t.Fatalf("%s: got %d ids, want %d", a.Name(), len(ids), sz)
			}
			for _, id := range ids {
				if id < 0 || id >= m.Size() {
					t.Fatalf("%s: id %d out of range", a.Name(), id)
				}
				if busy[id] {
					t.Fatalf("%s: id %d allocated twice", a.Name(), id)
				}
				busy[id] = true
			}
			live = append(live, ids)
		}
		want := m.Size() - len(busy)
		if a.NumFree() != want {
			t.Fatalf("%s: NumFree = %d, want %d", a.Name(), a.NumFree(), want)
		}
		for _, ids := range live {
			a.Release(ids)
		}
		if a.NumFree() != m.Size() {
			t.Fatalf("%s: NumFree after release = %d", a.Name(), a.NumFree())
		}
	}
}

func TestAllocateErrors(t *testing.T) {
	m := mesh.New(4, 4)
	for _, a := range allAllocators(t, m) {
		if _, err := a.Allocate(Request{Size: 17}); err != ErrInsufficient {
			t.Errorf("%s: oversize error = %v", a.Name(), err)
		}
		if _, err := a.Allocate(Request{Size: 0}); err == nil {
			t.Errorf("%s: zero size should fail", a.Name())
		}
	}
}

func TestReset(t *testing.T) {
	m := mesh.New(4, 4)
	for _, a := range allAllocators(t, m) {
		if _, err := a.Allocate(Request{Size: 10}); err != nil {
			t.Fatal(err)
		}
		a.Reset()
		if a.NumFree() != 16 {
			t.Errorf("%s: NumFree after reset = %d", a.Name(), a.NumFree())
		}
	}
}

func TestPagingFreeListOnEmptyMeshIsCurvePrefix(t *testing.T) {
	m := mesh.New(8, 8)
	c := curve.Hilbert{}
	a := NewPaging(m.Grid(), c, binpack.FreeList)
	ids, err := a.Allocate(Request{Size: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := c.Order(8, 8)[:16]
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("free-list prefix = %v, want %v", ids, want)
		}
	}
	// A Hilbert prefix of 16 on an empty mesh is a contiguous quadrant.
	if !m.Contiguous(ids) {
		t.Error("hilbert prefix should be contiguous")
	}
}

func TestMCAllocatesRequestedShapeOnEmptyMesh(t *testing.T) {
	m := mesh.New(8, 8)
	a := NewMC(m.Grid())
	ids, err := a.Allocate(Request{Size: 6, ShapeW: 3, ShapeH: 2})
	if err != nil {
		t.Fatal(err)
	}
	// On an empty mesh the best candidate is a full 3x2 submesh: cost 0.
	if !m.Contiguous(ids) {
		t.Errorf("MC shape allocation not contiguous: %v", ids)
	}
	xs, ys := bounds(m, ids)
	if xs != 3 || ys != 2 {
		t.Errorf("MC allocated %dx%d bounding box, want 3x2", xs, ys)
	}
}

func TestMC1x1CompactOnEmptyMesh(t *testing.T) {
	m := mesh.New(8, 8)
	a := NewMC1x1(m.Grid())
	ids, err := a.Allocate(Request{Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 1x1 shell 0 plus first shell (8 nodes) covers 5: all within
	// distance 2 of the center, and contiguous on an empty mesh.
	if !m.Contiguous(ids) {
		t.Errorf("MC1x1 allocation not contiguous: %v", ids)
	}
	if d := m.AvgPairwiseDist(ids); d > 2.0 {
		t.Errorf("MC1x1 allocation too dispersed: avg pairwise %g", d)
	}
}

func TestGenAlgPicksCompactSet(t *testing.T) {
	m := mesh.New(8, 8)
	a := NewGenAlg(m.Grid())
	ids, err := a.Allocate(Request{Size: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Gen-Alg is a (2-2/k)-approximation of the optimum; the optimal 9-set
	// is a 3x3 block with total pairwise distance 72. The heuristic's
	// center-plus-nearest sets come close but need not be optimal.
	got := m.TotalPairwiseDist(ids)
	if got < 72 {
		t.Errorf("Gen-Alg total pairwise distance %d beats the proven optimum 72", got)
	}
	if limit := int((2 - 2.0/9.0) * 72); got > limit {
		t.Errorf("Gen-Alg total pairwise distance = %d, want <= approximation bound %d", got, limit)
	}
	if !m.Contiguous(ids) {
		t.Errorf("Gen-Alg allocation on an empty mesh should be contiguous: %v", ids)
	}
}

func TestGenAlgApproximationProperty(t *testing.T) {
	// Gen-Alg is a (2 - 2/k)-approximation for total pairwise distance.
	// Verify against brute force on a small mesh with random busy sets.
	m := mesh.New(4, 4)
	f := func(mask uint16, kRaw uint8) bool {
		a := NewGenAlg(m.Grid())
		var busy []int
		for i := 0; i < 16; i++ {
			if mask&(1<<uint(i)) != 0 {
				busy = append(busy, i)
			}
		}
		if len(busy) >= 14 {
			return true // not enough room to be interesting
		}
		if len(busy) > 0 {
			a.take(busy)
		}
		var free []int
		for id := 0; id < 16; id++ {
			if !a.busy[id] {
				free = append(free, id)
			}
		}
		k := int(kRaw)%min(len(free), 5) + 1
		if k < 2 {
			return true
		}
		ids, err := a.Allocate(Request{Size: k})
		if err != nil {
			return false
		}
		got := totalPairwiseL1(m.Grid(), ids)
		best := bruteBest(m, free, k)
		return float64(got) <= (2-2/float64(k))*float64(best)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// bruteBest exhaustively finds the minimum total pairwise distance over
// all k-subsets of the given free nodes.
func bruteBest(m *mesh.Mesh, free []int, k int) int {
	best := -1
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == k {
			d := totalPairwiseL1(m.Grid(), chosen)
			if best == -1 || d < best {
				best = d
			}
			return
		}
		for i := start; i <= len(free)-(k-len(chosen)); i++ {
			rec(i+1, append(chosen, free[i]))
		}
	}
	rec(0, nil)
	return best
}

func bounds(m *mesh.Mesh, ids []int) (w, h int) {
	minX, minY := m.Width(), m.Height()
	maxX, maxY := 0, 0
	for _, id := range ids {
		p := m.Coord(id)
		if p.X < minX {
			minX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return maxX - minX + 1, maxY - minY + 1
}

func TestRingEnumeration(t *testing.T) {
	m := mesh.New(9, 9)
	c := mesh.Point{X: 4, Y: 4}
	for r := 0; r <= 8; r++ {
		ids := m.Grid().Ring(topo.Point{c.X, c.Y}, r)
		seen := map[int]bool{}
		for _, id := range ids {
			if m.Coord(id).Manhattan(c) != r {
				t.Fatalf("ring %d contains node at distance %d", r, m.Coord(id).Manhattan(c))
			}
			if seen[id] {
				t.Fatalf("ring %d repeats node %d", r, id)
			}
			seen[id] = true
		}
		if r >= 1 && r <= 4 && len(ids) != 4*r {
			t.Fatalf("interior ring %d has %d nodes, want %d", r, len(ids), 4*r)
		}
	}
	if got := m.Grid().Ring(topo.Point{c.X, c.Y}, 0); len(got) != 1 || got[0] != m.ID(c) {
		t.Fatalf("ring 0 = %v", got)
	}
}

func TestRingsCoverMesh(t *testing.T) {
	m := mesh.New(5, 7)
	c := mesh.Point{X: 0, Y: 6}
	seen := map[int]bool{}
	for r := 0; r <= 12; r++ {
		for _, id := range m.Grid().Ring(topo.Point{c.X, c.Y}, r) {
			if seen[id] {
				t.Fatalf("node %d in two rings", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != m.Size() {
		t.Fatalf("rings cover %d nodes, want %d", len(seen), m.Size())
	}
}

func TestTotalPairwiseL1MatchesMesh(t *testing.T) {
	m := mesh.New(6, 6)
	f := func(mask uint32) bool {
		var ids []int
		for i := 0; i < 32 && i < m.Size(); i++ {
			if mask&(1<<uint(i)) != 0 {
				ids = append(ids, i)
			}
		}
		return totalPairwiseL1(m.Grid(), ids) == m.TotalPairwiseDist(ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomAllocatorIsDeterministicPerSeed(t *testing.T) {
	m := mesh.New(8, 8)
	a1 := NewRandom(m.Grid(), 42)
	a2 := NewRandom(m.Grid(), 42)
	ids1, _ := a1.Allocate(Request{Size: 10})
	ids2, _ := a2.Allocate(Request{Size: 10})
	sort.Ints(ids1)
	sort.Ints(ids2)
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatal("same-seed random allocators disagree")
		}
	}
}

func TestMCPrefersCompactOverFragmented(t *testing.T) {
	// Occupy a column splitting the mesh, leaving a 3-wide and a 4-wide
	// region. MC1x1 asked for 9 should stay within one region rather
	// than straddling the wall when possible.
	m := mesh.New(8, 8)
	a := NewMC1x1(m.Grid())
	var wall []int
	for y := 0; y < 8; y++ {
		wall = append(wall, m.ID(mesh.Point{X: 3, Y: y}))
	}
	a.take(wall)
	ids, err := a.Allocate(Request{Size: 9})
	if err != nil {
		t.Fatal(err)
	}
	left, right := 0, 0
	for _, id := range ids {
		if m.Coord(id).X < 3 {
			left++
		} else {
			right++
		}
	}
	if left != 0 && right != 0 {
		t.Errorf("MC1x1 straddled the wall: %d left, %d right", left, right)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
