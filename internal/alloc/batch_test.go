package alloc

import (
	"testing"

	"meshalloc/internal/topo"
)

// batchVariants are the exact-size allocator families that implement
// BatchAllocator, each built twice so a batch run can be compared against
// a one-at-a-time twin.
var batchVariants = []struct {
	name string
	mk   func() Allocator
}{
	{"mc", func() Allocator { return NewMC(topo.New([]int{8, 8})) }},
	{"mc1x1", func() Allocator { return NewMC1x1(topo.New([]int{8, 8})) }},
	{"genalg", func() Allocator { return NewGenAlg(topo.New([]int{8, 8})) }},
	{"random", func() Allocator { return NewRandom(topo.New([]int{8, 8}), 7) }},
	{"hilbert/bestfit", func() Allocator {
		a, err := Spec(topo.New([]int{8, 8}), "hilbert/bestfit", 0)
		if err != nil {
			panic(err)
		}
		return a
	}},
	{"mc-3d", func() Allocator { return NewMC(topo.New([]int{4, 4, 4})) }},
}

// TestAllocateBatchMatchesSequential interleaves batches and releases on
// a batch allocator and a sequential twin: identical ids and free counts
// throughout.
func TestAllocateBatchMatchesSequential(t *testing.T) {
	for _, v := range batchVariants {
		t.Run(v.name, func(t *testing.T) {
			a, b := v.mk(), v.mk()
			ba, ok := a.(BatchAllocator)
			if !ok {
				t.Fatalf("%s does not implement BatchAllocator", v.name)
			}
			x := xorshift(11)
			var live [][]int
			for round := 0; round < 30; round++ {
				if free := a.NumFree(); free > 0 && (len(live) == 0 || x.intn(3) != 0) {
					var reqs []Request
					budget := free
					for len(reqs) < 1+x.intn(4) && budget > 0 {
						size := 1 + x.intn(min(budget, 9))
						reqs = append(reqs, Request{Size: size})
						budget -= size
					}
					got, err := ba.AllocateBatch(reqs)
					if err != nil {
						t.Fatalf("round %d: batch error %v", round, err)
					}
					if len(got) != len(reqs) {
						t.Fatalf("round %d: %d results for %d requests", round, len(got), len(reqs))
					}
					for i, r := range reqs {
						want, err := b.Allocate(r)
						if err != nil {
							t.Fatalf("round %d: sequential twin error %v", round, err)
						}
						if !sameIDs(got[i], want) {
							t.Fatalf("round %d req %d: batch ids %v, sequential %v", round, i, got[i], want)
						}
						live = append(live, got[i])
					}
				} else if len(live) > 0 {
					i := x.intn(len(live))
					a.Release(live[i])
					b.Release(live[i])
					live = append(live[:i], live[i+1:]...)
				}
				if a.NumFree() != b.NumFree() {
					t.Fatalf("round %d: NumFree %d vs %d", round, a.NumFree(), b.NumFree())
				}
			}
		})
	}
}

// TestAllocateBatchErrorPrefix pins the failure contract: the successful
// prefix is returned alongside the error and remains allocated.
func TestAllocateBatchErrorPrefix(t *testing.T) {
	a := NewMC(topo.New([]int{4, 4}))
	got, err := a.AllocateBatch([]Request{{Size: 6}, {Size: 6}, {Size: 6}})
	if err != ErrInsufficient {
		t.Fatalf("error = %v, want ErrInsufficient", err)
	}
	if len(got) != 2 {
		t.Fatalf("prefix length %d, want 2", len(got))
	}
	if a.NumFree() != 16-12 {
		t.Fatalf("NumFree = %d after failed batch, want 4 (prefix stays allocated)", a.NumFree())
	}
}

// TestBatchHelperFallsBack routes a non-batch allocator (the contiguous
// submesh baseline) through Batch and checks it matches plain Allocates.
func TestBatchHelperFallsBack(t *testing.T) {
	g := topo.New([]int{8, 8})
	mk := func() Allocator {
		a, err := Spec(g, "submesh", 0)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := mk(), mk()
	if _, ok := a.(BatchAllocator); ok {
		t.Fatal("submesh unexpectedly implements BatchAllocator; its refusal semantics break the batch contract")
	}
	reqs := []Request{{Size: 4}, {Size: 9}, {Size: 2}}
	got, err := Batch(a, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		want, err := b.Allocate(r)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got[i], want) {
			t.Fatalf("req %d: Batch ids %v, sequential %v", i, got[i], want)
		}
	}
	// Buddy and paged allocators must stay outside the interface too:
	// they consume more processors than req.Size.
	for _, spec := range []string{"buddy", "hilbert/freelist/page1"} {
		a, err := Spec(g, spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := a.(BatchAllocator); ok {
			t.Fatalf("%s unexpectedly implements BatchAllocator", spec)
		}
	}
}
