package alloc

import (
	"fmt"

	"meshalloc/internal/binpack"
	"meshalloc/internal/curve"
	"meshalloc/internal/topo"
)

// PagedPaging is the original Paging algorithm of Lo et al. with page
// size parameter s: the machine is divided into pages of side 2^s per
// axis, pages are ordered by a curve over the page grid, and jobs
// receive whole pages. The paper fixes s = 0 (package type Paging) to
// avoid the internal fragmentation this variant exhibits: a job of k
// processors holds ceil(k / pageVolume) pages, wasting the remainder of
// its last page.
//
// Pages that hang off a non-multiple-of-2^s machine are clipped, so edge
// pages may hold fewer processors than interior ones.
type PagedPaging struct {
	g        *topo.Grid
	c        curve.Curve
	strat    binpack.Strategy
	s        int   // page size exponent
	side     int   // page side length, 2^s
	pageOf   []int // processor id -> page index
	pages    [][]int
	packer   *binpack.Packer // over page indices in curve order
	pageBusy []bool
	numFree  int // free processors, counting whole free pages
}

// NewPagedPaging returns a Paging allocator with page size s (side 2^s
// per axis) using curve c over the page grid and selection strategy
// strat. It panics if s is negative, the page side exceeds any machine
// axis, or the curve cannot order the page grid: page geometry is static
// configuration.
func NewPagedPaging(g *topo.Grid, c curve.Curve, strat binpack.Strategy, s int) *PagedPaging {
	if s < 0 {
		panic(fmt.Sprintf("alloc: negative page size %d", s))
	}
	side := 1 << uint(s)
	nd := g.ND()
	pageDims := make([]int, nd)
	for i := 0; i < nd; i++ {
		if side > g.Dim(i) {
			panic(fmt.Sprintf("alloc: page side %d exceeds machine axis %d (extent %d)", side, i, g.Dim(i)))
		}
		pageDims[i] = (g.Dim(i) + side - 1) / side
	}

	p := &PagedPaging{
		g:     g,
		c:     c,
		strat: strat,
		s:     s,
		side:  side,
	}
	// Page grid ordering: run the curve over the page grid.
	pageOrder, err := curve.GridOrder(c, pageDims)
	if err != nil {
		panic(fmt.Sprintf("alloc: %v", err))
	}
	// Page strides mirror the dense-id layout of the page grid.
	pageStride := make([]int, nd)
	numPages := 1
	for i := 0; i < nd; i++ {
		pageStride[i] = numPages
		numPages *= pageDims[i]
	}
	p.pages = make([][]int, numPages)
	p.pageOf = make([]int, g.Size())
	for id := 0; id < g.Size(); id++ {
		pt := g.Coord(id)
		page := 0
		for i := 0; i < nd; i++ {
			page += (pt[i] / side) * pageStride[i]
		}
		p.pageOf[id] = page
		p.pages[page] = append(p.pages[page], id)
	}
	p.packer = binpack.New(pageOrder)
	p.pageBusy = make([]bool, numPages)
	p.numFree = g.Size()
	return p
}

// Name implements Allocator.
func (p *PagedPaging) Name() string {
	return fmt.Sprintf("%s/%s/page%d", p.c.Name(), p.strat.String(), p.s)
}

// Allocate implements Allocator. The returned ids are the first
// req.Size processors of the allocated pages in page-curve order; the
// remainder of the final page is wasted until release, exactly the
// fragmentation the paper's s = 0 choice avoids.
func (p *PagedPaging) Allocate(req Request) ([]int, error) {
	if req.Size <= 0 {
		return nil, fmt.Errorf("alloc: invalid request size %d", req.Size)
	}
	if req.Size > p.numFree {
		return nil, ErrInsufficient
	}
	// Gather pages until the processor count is covered; edge pages may
	// be clipped, so the page count is not simply size over page volume.
	var pageIDs []int
	covered := 0
	for covered < req.Size {
		n, err := p.packer.Allocate(1, p.strat)
		if err != nil {
			// Whole pages exhausted even though numFree said otherwise:
			// put gathered pages back and refuse.
			p.packer.Release(pageIDs)
			return nil, ErrInsufficient
		}
		pageIDs = append(pageIDs, n[0])
		covered += len(p.pages[n[0]])
	}
	ids := make([]int, 0, req.Size)
	for _, pg := range pageIDs {
		p.pageBusy[pg] = true
		for _, id := range p.pages[pg] {
			if len(ids) < req.Size {
				ids = append(ids, id)
			}
		}
		p.numFree -= len(p.pages[pg])
	}
	return ids, nil
}

// Release implements Allocator. The released ids identify their pages;
// whole pages (including wasted processors) return to the free pool.
func (p *PagedPaging) Release(ids []int) {
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= len(p.pageOf) {
			panic(fmt.Sprintf("alloc: release of invalid id %d", id))
		}
		pg := p.pageOf[id]
		if seen[pg] {
			continue
		}
		if !p.pageBusy[pg] {
			panic(fmt.Sprintf("alloc: release of free page %d (id %d)", pg, id))
		}
		seen[pg] = true
		p.pageBusy[pg] = false
		p.packer.Release([]int{pg})
		p.numFree += len(p.pages[pg])
	}
}

// Occupy implements Occupier. The ids identify their pages exactly as
// in Release — every page an allocation held contributes at least one
// id, because Allocate gathers pages only while the request is not yet
// covered — and whole pages (including the wasted remainder) are
// re-marked busy. It panics on an invalid id or an already-busy page.
func (p *PagedPaging) Occupy(ids []int) {
	seen := map[int]bool{}
	for _, id := range ids {
		if id < 0 || id >= len(p.pageOf) {
			panic(fmt.Sprintf("alloc: occupy of invalid id %d", id))
		}
		pg := p.pageOf[id]
		if seen[pg] {
			continue
		}
		if p.pageBusy[pg] {
			panic(fmt.Sprintf("alloc: occupy of busy page %d (id %d)", pg, id))
		}
		seen[pg] = true
		p.pageBusy[pg] = true
		p.packer.Occupy([]int{pg})
		p.numFree -= len(p.pages[pg])
	}
}

// AuxState implements AuxState: the page packer's NextFit resume rank.
func (p *PagedPaging) AuxState() []uint64 {
	return []uint64{uint64(p.packer.NextStart())}
}

// SetAuxState implements AuxState.
func (p *PagedPaging) SetAuxState(words []uint64) error {
	if len(words) != 1 {
		return fmt.Errorf("alloc: paged aux state wants 1 word, got %d", len(words))
	}
	return p.packer.SetNextStart(int(int64(words[0])))
}

// AuditIndexes implements Auditor: the page packer's internal indexes,
// the pageBusy mirror, and the processor-granular free count must all
// agree.
func (p *PagedPaging) AuditIndexes() error {
	if err := p.packer.Audit(); err != nil {
		return err
	}
	free := 0
	for pg, busy := range p.pageBusy {
		if !busy {
			free += len(p.pages[pg])
		}
	}
	if free != p.numFree {
		return fmt.Errorf("alloc: free pages hold %d processors, cached numFree %d", free, p.numFree)
	}
	return nil
}

// NumFree implements Allocator: processors in free pages. Wasted
// processors inside partially-used pages are not free.
func (p *PagedPaging) NumFree() int { return p.numFree }

// Reset implements Allocator.
func (p *PagedPaging) Reset() {
	p.packer.Reset()
	for i := range p.pageBusy {
		p.pageBusy[i] = false
	}
	p.numFree = p.g.Size()
}
