package alloc

import (
	"fmt"
	"math/bits"

	"meshalloc/internal/mesh"
	"meshalloc/internal/occupancy"
)

// The paper's Section 2 recounts that initial processor-allocation
// algorithms allocated only convex (contiguous) processor sets, which
// eliminates interjob contention but "reduces system utilization to
// levels unacceptable for any government-audited system". These two
// classic contiguous allocators reproduce that trade-off as baselines:
// they can refuse a request even when enough processors are free
// (external fragmentation), leaving the FCFS head blocked.

// SubmeshFirstFit is Zhu's first-fit submesh allocation: scan anchor
// positions in row-major order and allocate the first fully-free
// submesh of the request's shape (trying both orientations). It is
// inherently two-dimensional and keeps a mesh view beside the generic
// busy tracker.
//
// The free-box search is word-parallel by default: each mesh row keeps a
// free bitmask, a per-row RunMask marks every x where a horizontal run of
// the shape's width starts, and ANDing h consecutive rows' masks leaves
// exactly the anchors of fully-free w x h submeshes — the first set bit is
// the same anchor the cell-by-cell reference scan finds, 64 anchors per
// instruction.
type SubmeshFirstFit struct {
	tracker
	m *mesh.Mesh
	// rowBits holds one free bitmask per mesh row (bit x of row y set =
	// node (x,y) free), ww words per row; rmBuf is the per-row run-mask
	// scratch of findFree. wordScan selects the bitmask search; the naive
	// anchor probe is retained as the reference path.
	ww       int
	rowBits  []uint64
	rmBuf    []uint64
	wordScan bool
}

// NewSubmeshFirstFit returns a first-fit contiguous submesh allocator.
func NewSubmeshFirstFit(m *mesh.Mesh) *SubmeshFirstFit {
	a := &SubmeshFirstFit{
		tracker:  newTracker(m.Grid()),
		m:        m,
		ww:       (m.Width() + 63) >> 6,
		wordScan: true,
	}
	a.rowBits = make([]uint64, m.Height()*a.ww)
	a.rmBuf = make([]uint64, m.Height()*a.ww)
	a.fillRowBits()
	return a
}

// fillRowBits marks every node free in the row bitmasks, keeping pad bits
// past Width() clear so runs can never extend across a row boundary.
func (a *SubmeshFirstFit) fillRowBits() {
	w := a.m.Width()
	for y := 0; y < a.m.Height(); y++ {
		row := a.rowBits[y*a.ww : (y+1)*a.ww]
		for i := range row {
			row[i] = ^uint64(0)
		}
		if r := uint(w) & 63; r != 0 {
			row[len(row)-1] = (1 << r) - 1
		}
	}
}

// take shadows tracker.take to keep the row bitmasks in lockstep. All
// in-package callers (Allocate and the fragmentation tests) go through
// this method, so the masks can never drift from the busy bitmap.
func (a *SubmeshFirstFit) take(ids []int) {
	a.tracker.take(ids)
	for _, id := range ids {
		row, x := a.g.RowOf(id)
		a.rowBits[row*a.ww+x>>6] &^= 1 << (uint(x) & 63)
	}
}

// Release implements Allocator.
func (a *SubmeshFirstFit) Release(ids []int) {
	a.tracker.Release(ids)
	for _, id := range ids {
		row, x := a.g.RowOf(id)
		a.rowBits[row*a.ww+x>>6] |= 1 << (uint(x) & 63)
	}
}

// Reset implements Allocator.
func (a *SubmeshFirstFit) Reset() {
	a.tracker.Reset()
	a.fillRowBits()
}

// MarkDown shadows tracker.MarkDown to keep the row bitmasks in
// lockstep: a downed node must break free runs in the word-parallel
// anchor search exactly like an allocated one, or findFree would anchor
// submeshes on dead processors. Submesh allocation is the allocator
// that degrades hardest under failures — a single hole vetoes every
// submesh covering it — which is exactly the comparison the fault
// experiments are after.
func (a *SubmeshFirstFit) MarkDown(id int) {
	a.tracker.MarkDown(id)
	row, x := a.g.RowOf(id)
	a.rowBits[row*a.ww+x>>6] &^= 1 << (uint(x) & 63)
}

// MarkUp shadows tracker.MarkUp, restoring the node's run bit.
func (a *SubmeshFirstFit) MarkUp(id int) {
	a.tracker.MarkUp(id)
	row, x := a.g.RowOf(id)
	a.rowBits[row*a.ww+x>>6] |= 1 << (uint(x) & 63)
}

// SetWordScan toggles the word-parallel free-box search (on by default);
// both paths return bit-identical anchors, pinned by the equivalence
// tests.
func (a *SubmeshFirstFit) SetWordScan(on bool) { a.wordScan = on }

// Occupy shadows tracker.Occupy so restore-time occupation lands in the
// take shadow that keeps the row bitmasks in lockstep.
func (a *SubmeshFirstFit) Occupy(ids []int) {
	for _, id := range ids {
		if id < 0 || id >= len(a.busy) || a.busy[id] {
			panic(fmt.Sprintf("alloc: occupy of busy or invalid id %d", id))
		}
	}
	a.take(ids)
}

// AuditIndexes implements Auditor: the generic busy/free-count check
// plus the row bitmasks the word-parallel anchor search depends on.
func (a *SubmeshFirstFit) AuditIndexes() error {
	if err := a.tracker.AuditIndexes(); err != nil {
		return err
	}
	for id := range a.busy {
		row, x := a.g.RowOf(id)
		bit := a.rowBits[row*a.ww+x>>6]&(1<<(uint(x)&63)) != 0
		if bit == a.busy[id] {
			return fmt.Errorf("alloc: node %d busy=%v but row bitmask free=%v", id, a.busy[id], bit)
		}
	}
	return nil
}

// Name implements Allocator.
func (a *SubmeshFirstFit) Name() string { return "submesh" }

// Allocate implements Allocator. Unlike the noncontiguous algorithms it
// returns ErrInsufficient whenever no free submesh covering the request
// exists, even if enough processors are free in fragments.
func (a *SubmeshFirstFit) Allocate(req Request) ([]int, error) {
	if err := a.check(req.Size); err != nil {
		return nil, err
	}
	for _, s := range a.candidateShapes(req) {
		if ids := a.findFree(s[0], s[1], req.Size); ids != nil {
			a.take(ids)
			return ids, nil
		}
	}
	return nil, ErrInsufficient
}

// candidateShapes lists the submesh shapes that cover the request and
// fit the mesh, most-square first: the user-requested or derived shape
// and its rotation, then every (ceil(size/h), h) that fits. Without the
// fallback shapes a near-square request larger than the shorter mesh
// dimension squared could never be placed.
func (a *SubmeshFirstFit) candidateShapes(req Request) [][2]int {
	var shapes [][2]int
	seen := map[[2]int]bool{}
	add := func(w, h int) {
		s := [2]int{w, h}
		if w >= 1 && h >= 1 && w <= a.m.Width() && h <= a.m.Height() && w*h >= req.Size && !seen[s] {
			seen[s] = true
			shapes = append(shapes, s)
		}
	}
	w, h := req.Shape()
	add(w, h)
	add(h, w)
	for hh := 1; hh <= a.m.Height(); hh++ {
		add((req.Size+hh-1)/hh, hh)
	}
	// Most-square first so allocations stay compact when possible.
	for i := 1; i < len(shapes); i++ {
		for j := i; j > 0 && squareness(shapes[j]) < squareness(shapes[j-1]); j-- {
			shapes[j], shapes[j-1] = shapes[j-1], shapes[j]
		}
	}
	return shapes
}

func squareness(s [2]int) int { return abs(s[0] - s[1]) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// findFree returns the first size processors of the first fully-free
// w x h submesh in row-major anchor order, or nil.
func (a *SubmeshFirstFit) findFree(w, h, size int) []int {
	if w > a.m.Width() || h > a.m.Height() {
		return nil
	}
	if !a.wordScan {
		return a.findFreeRef(w, h, size)
	}
	// Per-row run masks: bit x of row y set iff cells (x..x+w-1, y) are
	// all free. Pad bits are clear, so no run crosses the right edge.
	for y := 0; y < a.m.Height(); y++ {
		occupancy.RunMask(a.rmBuf[y*a.ww:(y+1)*a.ww], a.rowBits[y*a.ww:(y+1)*a.ww], w)
	}
	for y := 0; y+h <= a.m.Height(); y++ {
		for wi := 0; wi < a.ww; wi++ {
			v := a.rmBuf[y*a.ww+wi]
			for dy := 1; dy < h && v != 0; dy++ {
				v &= a.rmBuf[(y+dy)*a.ww+wi]
			}
			if v != 0 {
				x := wi<<6 + bits.TrailingZeros64(v)
				ids := a.m.Nodes(mesh.Submesh{Origin: mesh.Point{X: x, Y: y}, W: w, H: h})
				return ids[:size]
			}
		}
	}
	return nil
}

// findFreeRef is the cell-by-cell reference anchor scan.
func (a *SubmeshFirstFit) findFreeRef(w, h, size int) []int {
	for y := 0; y+h <= a.m.Height(); y++ {
	anchors:
		for x := 0; x+w <= a.m.Width(); x++ {
			ids := a.m.Nodes(mesh.Submesh{Origin: mesh.Point{X: x, Y: y}, W: w, H: h})
			for _, id := range ids {
				if a.busy[id] {
					continue anchors
				}
			}
			return ids[:size]
		}
	}
	return nil
}

// Buddy is the two-dimensional buddy system of Li and Cheng: the mesh is
// viewed as a quadtree of square blocks; a job receives the smallest
// power-of-two square block that covers its request, splitting larger
// free blocks as needed and coalescing buddies on release. It requires
// a square mesh whose side is a power of two.
type Buddy struct {
	m    *mesh.Mesh
	side int
	// free[level] holds the origins of free blocks of side side>>level,
	// as a set for O(1) buddy lookups.
	free    []map[mesh.Point]bool
	alloced map[mesh.Point]int // origin -> level of live blocks
	byFirst map[int]mesh.Point // first processor id -> block origin
	numFree int
}

// NewBuddy returns a 2-D buddy allocator over m. It panics unless m is
// a square power-of-two mesh, the structural requirement of the
// algorithm.
func NewBuddy(m *mesh.Mesh) *Buddy {
	n := m.Width()
	if m.Height() != n || n&(n-1) != 0 {
		panic(fmt.Sprintf("alloc: buddy system needs a square power-of-two mesh, got %dx%d",
			m.Width(), m.Height()))
	}
	levels := 1
	for s := n; s > 1; s /= 2 {
		levels++
	}
	b := &Buddy{
		m:       m,
		side:    n,
		free:    make([]map[mesh.Point]bool, levels),
		alloced: map[mesh.Point]int{},
		byFirst: map[int]mesh.Point{},
		numFree: m.Size(),
	}
	for i := range b.free {
		b.free[i] = map[mesh.Point]bool{}
	}
	b.free[0][mesh.Point{X: 0, Y: 0}] = true
	return b
}

// Name implements Allocator.
func (b *Buddy) Name() string { return "buddy" }

// blockSide returns the side of blocks at a level.
func (b *Buddy) blockSide(level int) int { return b.side >> uint(level) }

// levelFor returns the deepest level whose block covers size processors.
func (b *Buddy) levelFor(size int) int {
	level := len(b.free) - 1
	for ; level > 0; level-- {
		s := b.blockSide(level)
		if s*s >= size {
			return level
		}
	}
	return 0
}

// Allocate implements Allocator. Jobs receive the first size processors
// of a square block; the rest of the block is wasted (internal
// fragmentation), and requests can fail on external fragmentation.
func (b *Buddy) Allocate(req Request) ([]int, error) {
	if req.Size <= 0 {
		return nil, fmt.Errorf("alloc: invalid request size %d", req.Size)
	}
	if req.Size > b.numFree {
		return nil, ErrInsufficient
	}
	level := b.levelFor(req.Size)
	origin, ok := b.acquire(level)
	if !ok {
		return nil, ErrInsufficient
	}
	side := b.blockSide(level)
	ids := b.m.Nodes(mesh.Submesh{Origin: origin, W: side, H: side})[:req.Size]
	b.alloced[origin] = level
	b.byFirst[b.m.ID(origin)] = origin
	b.numFree -= side * side
	return ids, nil
}

// acquire finds or splits a free block at the level, returning its
// origin.
func (b *Buddy) acquire(level int) (mesh.Point, bool) {
	if len(b.free[level]) > 0 {
		origin := smallestPoint(b.free[level])
		delete(b.free[level], origin)
		return origin, true
	}
	if level == 0 {
		return mesh.Point{}, false
	}
	parent, ok := b.acquire(level - 1)
	if !ok {
		return mesh.Point{}, false
	}
	// Split the parent: keep the NW child, free the other three.
	s := b.blockSide(level)
	for _, d := range []mesh.Point{{X: s, Y: 0}, {X: 0, Y: s}, {X: s, Y: s}} {
		b.free[level][parent.Add(d)] = true
	}
	return parent, true
}

// Release implements Allocator.
func (b *Buddy) Release(ids []int) {
	if len(ids) == 0 {
		return
	}
	first := ids[0]
	origin, ok := b.byFirst[first]
	if !ok {
		panic(fmt.Sprintf("alloc: buddy release of unknown block at id %d", first))
	}
	level := b.alloced[origin]
	delete(b.byFirst, first)
	delete(b.alloced, origin)
	side := b.blockSide(level)
	b.numFree += side * side
	b.freeAndCoalesce(origin, level)
}

// freeAndCoalesce returns a block to the free lists, merging buddies
// upward while all four children of a parent are free.
func (b *Buddy) freeAndCoalesce(origin mesh.Point, level int) {
	for level > 0 {
		s := b.blockSide(level)
		parent := mesh.Point{X: origin.X &^ (2*s - 1), Y: origin.Y &^ (2*s - 1)}
		siblings := []mesh.Point{
			parent,
			{X: parent.X + s, Y: parent.Y},
			{X: parent.X, Y: parent.Y + s},
			{X: parent.X + s, Y: parent.Y + s},
		}
		allFree := true
		for _, sib := range siblings {
			if sib != origin && !b.free[level][sib] {
				allFree = false
				break
			}
		}
		if !allFree {
			break
		}
		for _, sib := range siblings {
			delete(b.free[level], sib)
		}
		origin = parent
		level--
	}
	b.free[level][origin] = true
}

// Occupy implements Occupier by carving the job's block back out of
// the quadtree: the block level follows from the id count exactly as in
// Allocate, and the deepest free ancestor containing the block's origin
// is split downward, freeing the non-containing children. Eager
// coalescing on release plus this lazy splitting make the free-block
// set a pure function of the allocated-block set, so re-occupying jobs
// in any order reconstructs the same quadtree the run had at snapshot
// time. It panics on a block that is misaligned or not free — a corrupt
// snapshot the restore path converts to a typed error.
func (b *Buddy) Occupy(ids []int) {
	if len(ids) == 0 || len(ids) > b.m.Size() {
		panic(fmt.Sprintf("alloc: buddy occupy of %d ids", len(ids)))
	}
	if ids[0] < 0 || ids[0] >= b.m.Size() {
		panic(fmt.Sprintf("alloc: buddy occupy of invalid id %d", ids[0]))
	}
	level := b.levelFor(len(ids))
	s := b.blockSide(level)
	origin := b.m.Coord(ids[0])
	if origin.X&(s-1) != 0 || origin.Y&(s-1) != 0 {
		panic(fmt.Sprintf("alloc: buddy occupy of misaligned block at %v (side %d)", origin, s))
	}
	if _, taken := b.alloced[origin]; taken {
		panic(fmt.Sprintf("alloc: buddy occupy of allocated block at %v", origin))
	}
	// Find the deepest free ancestor containing the block.
	anc, ancLevel := mesh.Point{}, -1
	for l := level; l >= 0; l-- {
		S := b.blockSide(l)
		p := mesh.Point{X: origin.X &^ (S - 1), Y: origin.Y &^ (S - 1)}
		if b.free[l][p] {
			anc, ancLevel = p, l
			break
		}
	}
	if ancLevel < 0 {
		panic(fmt.Sprintf("alloc: buddy occupy with no free block covering %v", origin))
	}
	delete(b.free[ancLevel], anc)
	// Split down to the target level, keeping the child containing the
	// origin and freeing its three siblings at each step.
	for l := ancLevel; l < level; l++ {
		S := b.blockSide(l + 1)
		keep := mesh.Point{X: origin.X &^ (S - 1), Y: origin.Y &^ (S - 1)}
		for _, d := range []mesh.Point{{X: 0, Y: 0}, {X: S, Y: 0}, {X: 0, Y: S}, {X: S, Y: S}} {
			if child := anc.Add(d); child != keep {
				b.free[l+1][child] = true
			}
		}
		anc = keep
	}
	b.alloced[origin] = level
	b.byFirst[b.m.ID(origin)] = origin
	b.numFree -= s * s
}

// AuditIndexes implements Auditor: free-block areas must sum to the
// cached free count, allocated blocks must tile the remainder, and the
// byFirst index must mirror the allocated set.
func (b *Buddy) AuditIndexes() error {
	freeArea := 0
	for l, set := range b.free {
		s := b.blockSide(l)
		freeArea += len(set) * s * s
	}
	if freeArea != b.numFree {
		return fmt.Errorf("alloc: buddy free blocks cover %d processors, cached numFree %d", freeArea, b.numFree)
	}
	allocArea := 0
	for origin, l := range b.alloced {
		s := b.blockSide(l)
		allocArea += s * s
		if got, ok := b.byFirst[b.m.ID(origin)]; !ok || got != origin {
			return fmt.Errorf("alloc: buddy block at %v missing from the byFirst index", origin)
		}
	}
	if len(b.byFirst) != len(b.alloced) {
		return fmt.Errorf("alloc: buddy byFirst holds %d blocks, alloced %d", len(b.byFirst), len(b.alloced))
	}
	if freeArea+allocArea != b.m.Size() {
		return fmt.Errorf("alloc: buddy blocks cover %d of %d processors", freeArea+allocArea, b.m.Size())
	}
	return nil
}

// NumFree implements Allocator: processors in free blocks.
func (b *Buddy) NumFree() int { return b.numFree }

// Reset implements Allocator.
func (b *Buddy) Reset() {
	for i := range b.free {
		b.free[i] = map[mesh.Point]bool{}
	}
	b.free[0][mesh.Point{X: 0, Y: 0}] = true
	b.alloced = map[mesh.Point]int{}
	b.byFirst = map[int]mesh.Point{}
	b.numFree = b.m.Size()
}

// smallestPoint returns the lexicographically (y, x) smallest point of a
// set, keeping buddy allocation deterministic.
func smallestPoint(set map[mesh.Point]bool) mesh.Point {
	var best mesh.Point
	first := true
	for p := range set {
		if first || p.Y < best.Y || (p.Y == best.Y && p.X < best.X) {
			best = p
			first = false
		}
	}
	return best
}
