// Package mesh models the 2-D mesh interconnect topology used by the
// simulator: node coordinates, the Manhattan metric, x-y dimension-ordered
// routing, directed links, submeshes, the "shells" used by the MC allocator,
// and rectilinear connectivity (components) of processor sets.
//
// Nodes are identified by dense integer ids in row-major order:
// id = y*Width + x with 0 <= x < Width and 0 <= y < Height.
package mesh

import (
	"fmt"
	"sort"
)

// Point is a node coordinate on the mesh.
type Point struct {
	X, Y int
}

// Add returns the component-wise sum of p and q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Mesh is a Width x Height 2-D mesh of processors, optionally with
// torus wraparound links. The zero value is not usable; construct with
// New or NewTorus.
type Mesh struct {
	width  int
	height int
	torus  bool
}

// New returns a mesh with the given dimensions. It panics if either
// dimension is not positive; mesh sizes are static configuration, so a bad
// size is a programming error rather than a runtime condition.
func New(width, height int) *Mesh {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", width, height))
	}
	return &Mesh{width: width, height: height}
}

// NewTorus returns a mesh whose rows and columns wrap around — the
// topology of many production machines the paper's mesh results
// generalize to. Distances and dimension-ordered routes take the shorter
// way around each axis.
func NewTorus(width, height int) *Mesh {
	m := New(width, height)
	m.torus = true
	return m
}

// Torus reports whether the mesh has wraparound links.
func (m *Mesh) Torus() bool { return m.torus }

// Width returns the extent of the x dimension.
func (m *Mesh) Width() int { return m.width }

// Height returns the extent of the y dimension.
func (m *Mesh) Height() int { return m.height }

// Size returns the total number of processors.
func (m *Mesh) Size() int { return m.width * m.height }

// Contains reports whether p lies on the mesh.
func (m *Mesh) Contains(p Point) bool {
	return p.X >= 0 && p.X < m.width && p.Y >= 0 && p.Y < m.height
}

// ID maps a coordinate to its dense row-major id. It panics if p is off the
// mesh. The panic messages here and in Coord are constant strings rather
// than formatted ones: both functions sit on every hot path of the
// simulator and a fmt call — even an unreached one — would push them past
// the compiler's inlining budget.
func (m *Mesh) ID(p Point) int {
	if !m.Contains(p) {
		panic("mesh: ID of point outside the mesh")
	}
	return p.Y*m.width + p.X
}

// Coord maps a dense id back to its coordinate. It panics on out-of-range
// ids.
func (m *Mesh) Coord(id int) Point {
	if id < 0 || id >= m.width*m.height {
		panic("mesh: Coord of id outside the mesh")
	}
	return Point{X: id % m.width, Y: id / m.width}
}

// Dist returns the distance in hops between the nodes with ids a and b:
// Manhattan on a plain mesh, wrapped per axis on a torus.
func (m *Mesh) Dist(a, b int) int {
	pa, pb := m.Coord(a), m.Coord(b)
	return m.axisDist(pa.X, pb.X, m.width) + m.axisDist(pa.Y, pb.Y, m.height)
}

// axisDist returns the per-axis hop distance, wrapping on a torus.
func (m *Mesh) axisDist(a, b, extent int) int {
	d := abs(a - b)
	if m.torus && extent-d < d {
		d = extent - d
	}
	return d
}

// AvgPairwiseDist returns the mean hop distance over all unordered pairs
// of the given node ids. It returns 0 for fewer than two nodes. This is
// the dispersal metric of Mache and Lo that MC1x1 and Gen-Alg minimize.
func (m *Mesh) AvgPairwiseDist(ids []int) float64 {
	if len(ids) < 2 {
		return 0
	}
	pairs := len(ids) * (len(ids) - 1) / 2
	return float64(m.TotalPairwiseDist(ids)) / float64(pairs)
}

// TotalPairwiseDist returns the sum of hop distances over all unordered
// pairs of the given node ids.
func (m *Mesh) TotalPairwiseDist(ids []int) int {
	total := 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			total += m.Dist(ids[i], ids[j])
		}
	}
	return total
}

// Direction identifies one of the four mesh link directions.
type Direction int

// Link directions. XPos is toward increasing x, YNeg toward decreasing y,
// and so on.
const (
	XPos Direction = iota
	XNeg
	YPos
	YNeg
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case XPos:
		return "+x"
	case XNeg:
		return "-x"
	case YPos:
		return "+y"
	case YNeg:
		return "-y"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Link is a directed channel from node From to an adjacent node. Two
// adjacent nodes are joined by two links, one in each direction, as in a
// full-duplex mesh.
type Link struct {
	From int
	Dir  Direction
}

// NumLinks returns the number of distinct directed links on the mesh,
// used to size dense link-state tables.
func (m *Mesh) NumLinks() int {
	// Every node nominally owns 4 outgoing links; edge nodes own fewer,
	// but a dense 4-per-node table is simpler and the waste is tiny.
	return m.Size() * 4
}

// LinkIndex returns a dense index for l suitable for flat link-state
// arrays; the inverse of LinkAt.
func (m *Mesh) LinkIndex(l Link) int {
	return l.From*4 + int(l.Dir)
}

// LinkAt returns the link with the given dense index.
func (m *Mesh) LinkAt(idx int) Link {
	return Link{From: idx / 4, Dir: Direction(idx % 4)}
}

// step returns the coordinate delta for a direction.
func step(d Direction) Point {
	switch d {
	case XPos:
		return Point{1, 0}
	case XNeg:
		return Point{-1, 0}
	case YPos:
		return Point{0, 1}
	default:
		return Point{0, -1}
	}
}

// Neighbor returns the node adjacent to id in direction d and true, or
// (-1, false) when the link would leave a plain mesh. On a torus every
// direction wraps, so the second result is always true.
func (m *Mesh) Neighbor(id int, d Direction) (int, bool) {
	p := m.Coord(id).Add(step(d))
	if !m.Contains(p) {
		if !m.torus {
			return -1, false
		}
		p.X = (p.X + m.width) % m.width
		p.Y = (p.Y + m.height) % m.height
	}
	return m.ID(p), true
}

// Route returns the x-y dimension-ordered route from src to dst as the
// ordered sequence of directed links traversed: first all x hops, then all
// y hops, exactly as Paragon-/CPlant-style mesh routers forward wormhole
// packets. An empty slice means src == dst.
func (m *Mesh) Route(src, dst int) []Link {
	return m.AppendRoute(make([]Link, 0, m.Dist(src, dst)), src, dst)
}

// RouteYX returns the y-x dimension-ordered route (all y hops first), the
// alternative deterministic routing used for routing-sensitivity studies.
func (m *Mesh) RouteYX(src, dst int) []Link {
	return m.AppendRouteYX(make([]Link, 0, m.Dist(src, dst)), src, dst)
}

// AppendRoute appends the x-y dimension-ordered route from src to dst to
// links and returns the extended slice. It is the allocation-free variant
// of Route for callers that reuse a scratch buffer per message.
func (m *Mesh) AppendRoute(links []Link, src, dst int) []Link {
	return m.appendRouteDimOrdered(links, src, dst, true)
}

// AppendRouteYX is AppendRoute for y-x dimension-ordered routing.
func (m *Mesh) AppendRouteYX(links []Link, src, dst int) []Link {
	return m.appendRouteDimOrdered(links, src, dst, false)
}

func (m *Mesh) appendRouteDimOrdered(links []Link, src, dst int, xFirst bool) []Link {
	cur, d := m.Coord(src), m.Coord(dst)
	if xFirst {
		links = m.appendXHops(links, &cur, d.X)
		links = m.appendYHops(links, &cur, d.Y)
	} else {
		links = m.appendYHops(links, &cur, d.Y)
		links = m.appendXHops(links, &cur, d.X)
	}
	return links
}

// axisDir picks the traversal direction along one axis; on a torus it
// takes the shorter way around (positive on ties).
func (m *Mesh) axisDir(from, to, extent int, pos, neg Direction) Direction {
	if !m.torus {
		if to > from {
			return pos
		}
		return neg
	}
	forward := ((to - from) + extent) % extent
	if forward <= extent-forward {
		return pos
	}
	return neg
}

// appendXHops walks cur along the x axis to the target column, appending
// the links traversed.
func (m *Mesh) appendXHops(links []Link, cur *Point, target int) []Link {
	for cur.X != target {
		dir := m.axisDir(cur.X, target, m.width, XPos, XNeg)
		links = append(links, Link{From: m.ID(*cur), Dir: dir})
		if dir == XPos {
			cur.X++
			if cur.X == m.width {
				cur.X = 0
			}
		} else {
			cur.X--
			if cur.X < 0 {
				cur.X = m.width - 1
			}
		}
	}
	return links
}

// appendYHops walks cur along the y axis to the target row, appending the
// links traversed.
func (m *Mesh) appendYHops(links []Link, cur *Point, target int) []Link {
	for cur.Y != target {
		dir := m.axisDir(cur.Y, target, m.height, YPos, YNeg)
		links = append(links, Link{From: m.ID(*cur), Dir: dir})
		if dir == YPos {
			cur.Y++
			if cur.Y == m.height {
				cur.Y = 0
			}
		} else {
			cur.Y--
			if cur.Y < 0 {
				cur.Y = m.height - 1
			}
		}
	}
	return links
}

// RouteLen returns the number of links on the x-y route from src to dst,
// which equals the Manhattan distance.
func (m *Mesh) RouteLen(src, dst int) int { return m.Dist(src, dst) }

// Submesh describes an axis-aligned rectangle of nodes.
type Submesh struct {
	Origin Point // lowest-coordinate corner
	W, H   int   // extents; both positive
}

// Contains reports whether p lies in the submesh.
func (s Submesh) Contains(p Point) bool {
	return p.X >= s.Origin.X && p.X < s.Origin.X+s.W &&
		p.Y >= s.Origin.Y && p.Y < s.Origin.Y+s.H
}

// Area returns the number of nodes covered by the submesh.
func (s Submesh) Area() int { return s.W * s.H }

// Nodes returns the ids of the submesh's nodes that lie on m, in row-major
// order. Parts of the submesh hanging off the mesh are skipped, which is
// how MC evaluates candidate allocations near mesh edges.
func (m *Mesh) Nodes(s Submesh) []int {
	return m.AppendNodes(make([]int, 0, s.Area()), s)
}

// AppendNodes appends the ids of the submesh's on-mesh nodes to ids in
// row-major order and returns the extended slice — the allocation-free
// variant of Nodes.
func (m *Mesh) AppendNodes(ids []int, s Submesh) []int {
	for y := s.Origin.Y; y < s.Origin.Y+s.H; y++ {
		for x := s.Origin.X; x < s.Origin.X+s.W; x++ {
			p := Point{x, y}
			if m.Contains(p) {
				ids = append(ids, m.ID(p))
			}
		}
	}
	return ids
}

// CenteredSubmesh returns the W x H submesh "centered" on c in the MC
// sense: c is placed at the integer center cell (W/2, H/2 from the origin,
// rounding down).
func CenteredSubmesh(c Point, w, h int) Submesh {
	return Submesh{Origin: Point{c.X - w/2, c.Y - h/2}, W: w, H: h}
}

// Shell returns the ids of the nodes on m in shell k around the W x H
// submesh centered on c: shell 0 is the submesh itself, shell k>0 is the
// border ring of the (W+2k) x (H+2k) submesh. This matches the growth rule
// of Mache et al.'s MC allocator (Figure 4 of the paper).
func (m *Mesh) Shell(c Point, w, h, k int) []int {
	if k == 0 {
		return m.Nodes(CenteredSubmesh(c, w, h))
	}
	outer := CenteredSubmesh(c, w+2*k, h+2*k)
	return m.AppendShell(make([]int, 0, 2*(outer.W+outer.H)), c, w, h, k)
}

// AppendShell appends the ids of shell k around the W x H submesh centered
// on c to ids and returns the extended slice. It is the allocation-free
// variant of Shell: MC-style shell scoring reuses one scratch slice per
// allocator instead of allocating a fresh ring per candidate.
func (m *Mesh) AppendShell(ids []int, c Point, w, h, k int) []int {
	if k == 0 {
		return m.AppendNodes(ids, CenteredSubmesh(c, w, h))
	}
	outer := CenteredSubmesh(c, w+2*k, h+2*k)
	inner := CenteredSubmesh(c, w+2*(k-1), h+2*(k-1))
	for y := outer.Origin.Y; y < outer.Origin.Y+outer.H; y++ {
		for x := outer.Origin.X; x < outer.Origin.X+outer.W; x++ {
			p := Point{x, y}
			if inner.Contains(p) || !m.Contains(p) {
				continue
			}
			ids = append(ids, m.ID(p))
		}
	}
	return ids
}

// ShellEach calls fn with the id of every on-mesh node of shell k in
// row-major order, stopping early when fn returns false. It reports
// whether the walk ran to completion. It is the index-callback variant of
// Shell for callers that do not need the ids materialized at all.
func (m *Mesh) ShellEach(c Point, w, h, k int, fn func(id int) bool) bool {
	outer := CenteredSubmesh(c, w+2*k, h+2*k)
	inner := Submesh{}
	if k > 0 {
		inner = CenteredSubmesh(c, w+2*(k-1), h+2*(k-1))
	}
	for y := outer.Origin.Y; y < outer.Origin.Y+outer.H; y++ {
		for x := outer.Origin.X; x < outer.Origin.X+outer.W; x++ {
			p := Point{x, y}
			if (k > 0 && inner.Contains(p)) || !m.Contains(p) {
				continue
			}
			if !fn(m.ID(p)) {
				return false
			}
		}
	}
	return true
}

// MaxShells returns an upper bound on the number of shells needed to cover
// the whole mesh from any center for a W x H base submesh.
func (m *Mesh) MaxShells(w, h int) int {
	// Growing by one node per side per shell, max(width, height) shells
	// always suffice.
	n := m.width
	if m.height > n {
		n = m.height
	}
	return n
}

// Components partitions the given node ids into rectilinearly-connected
// components: two nodes are connected when they are mesh-adjacent and both
// in the set. The paper calls a job "allocated contiguously" when this
// yields a single component. The returned components are each sorted by id
// and ordered by their smallest id.
func (m *Mesh) Components(ids []int) [][]int {
	if len(ids) == 0 {
		return nil
	}
	// Dense membership bitmaps beat maps here: ids are bounded by the mesh
	// size and Components runs once per finished job.
	in := make([]bool, m.Size())
	for _, id := range ids {
		in[id] = true
	}
	seen := make([]bool, m.Size())
	var comps [][]int
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	for _, start := range sorted {
		if seen[start] {
			continue
		}
		// BFS flood fill over mesh adjacency restricted to the set.
		comp := []int{start}
		seen[start] = true
		for qi := 0; qi < len(comp); qi++ {
			u := comp[qi]
			for d := XPos; d <= YNeg; d++ {
				v, ok := m.Neighbor(u, d)
				if ok && in[v] && !seen[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Contiguous reports whether the node set forms a single rectilinear
// component.
func (m *Mesh) Contiguous(ids []int) bool {
	return len(ids) == 0 || len(m.Components(ids)) == 1
}
