// Package mesh is the 2-D facade over the dimension-generic topology
// core in internal/topo: node coordinates, the Manhattan metric, x-y
// dimension-ordered routing, directed links, submeshes, the "shells"
// used by the MC allocator, and rectilinear connectivity (components) of
// processor sets, all specialized to the Width x Height meshes the
// paper's experiments run on.
//
// Everything geometric delegates to topo.Grid — the mesh keeps only the
// 2-D vocabulary (Point with X/Y fields, Submesh, the four named link
// directions) plus the inlining-sensitive id arithmetic. Callers that
// need n-dimensional machines use topo.Grid directly; Grid exposes the
// underlying grid of a mesh so 2-D and n-D code interoperate.
//
// Nodes are identified by dense integer ids in row-major order:
// id = y*Width + x with 0 <= x < Width and 0 <= y < Height.
package mesh

import (
	"fmt"

	"meshalloc/internal/topo"
)

// Point is a node coordinate on the mesh.
type Point struct {
	X, Y int
}

// Add returns the component-wise sum of p and q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// pt converts a mesh coordinate to a generic grid coordinate.
func pt(p Point) topo.Point { return topo.Point{p.X, p.Y} }

// Mesh is a Width x Height 2-D mesh of processors, optionally with
// torus wraparound links. The zero value is not usable; construct with
// New or NewTorus.
type Mesh struct {
	g      *topo.Grid
	width  int
	height int
	torus  bool
}

// New returns a mesh with the given dimensions. It panics if either
// dimension is not positive; mesh sizes are static configuration, so a bad
// size is a programming error rather than a runtime condition.
func New(width, height int) *Mesh {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", width, height))
	}
	return &Mesh{g: topo.New([]int{width, height}), width: width, height: height}
}

// NewTorus returns a mesh whose rows and columns wrap around — the
// topology of many production machines the paper's mesh results
// generalize to. Distances and dimension-ordered routes take the shorter
// way around each axis.
func NewTorus(width, height int) *Mesh {
	m := New(width, height)
	m.g = topo.NewTorus([]int{width, height})
	m.torus = true
	return m
}

// FromGrid returns the 2-D mesh view of a two-dimensional grid, sharing
// the grid. It panics when the grid is not 2-D: callers gate on ND
// before asking for a mesh view.
func FromGrid(g *topo.Grid) *Mesh {
	if g.ND() != 2 {
		panic(fmt.Sprintf("mesh: FromGrid of %d-D grid", g.ND()))
	}
	return &Mesh{g: g, width: g.Dim(0), height: g.Dim(1), torus: g.Torus()}
}

// Grid returns the underlying dimension-generic grid.
func (m *Mesh) Grid() *topo.Grid { return m.g }

// Torus reports whether the mesh has wraparound links.
func (m *Mesh) Torus() bool { return m.torus }

// Width returns the extent of the x dimension.
func (m *Mesh) Width() int { return m.width }

// Height returns the extent of the y dimension.
func (m *Mesh) Height() int { return m.height }

// Size returns the total number of processors.
func (m *Mesh) Size() int { return m.width * m.height }

// Contains reports whether p lies on the mesh.
func (m *Mesh) Contains(p Point) bool {
	return p.X >= 0 && p.X < m.width && p.Y >= 0 && p.Y < m.height
}

// ID maps a coordinate to its dense row-major id. It panics if p is off the
// mesh. The panic messages here and in Coord are constant strings rather
// than formatted ones: both functions sit on every hot path of the
// simulator and a fmt call — even an unreached one — would push them past
// the compiler's inlining budget, which is also why the 2-D arithmetic is
// kept inline instead of delegating to the generic grid.
func (m *Mesh) ID(p Point) int {
	if !m.Contains(p) {
		panic("mesh: ID of point outside the mesh")
	}
	return p.Y*m.width + p.X
}

// Coord maps a dense id back to its coordinate. It panics on out-of-range
// ids.
func (m *Mesh) Coord(id int) Point {
	if id < 0 || id >= m.width*m.height {
		panic("mesh: Coord of id outside the mesh")
	}
	return Point{X: id % m.width, Y: id / m.width}
}

// Dist returns the distance in hops between the nodes with ids a and b:
// Manhattan on a plain mesh, wrapped per axis on a torus.
func (m *Mesh) Dist(a, b int) int {
	pa, pb := m.Coord(a), m.Coord(b)
	return m.axisDist(pa.X, pb.X, m.width) + m.axisDist(pa.Y, pb.Y, m.height)
}

// axisDist returns the per-axis hop distance, wrapping on a torus.
func (m *Mesh) axisDist(a, b, extent int) int {
	d := abs(a - b)
	if m.torus && extent-d < d {
		d = extent - d
	}
	return d
}

// AvgPairwiseDist returns the mean hop distance over all unordered pairs
// of the given node ids. It returns 0 for fewer than two nodes. This is
// the dispersal metric of Mache and Lo that MC1x1 and Gen-Alg minimize.
func (m *Mesh) AvgPairwiseDist(ids []int) float64 { return m.g.AvgPairwiseDist(ids) }

// TotalPairwiseDist returns the sum of hop distances over all unordered
// pairs of the given node ids.
func (m *Mesh) TotalPairwiseDist(ids []int) int { return m.g.TotalPairwiseDist(ids) }

// Direction identifies one of the four mesh link directions. It is the
// generic topo.Dir restricted to axes x and y.
type Direction = topo.Dir

// Link directions. XPos is toward increasing x, YNeg toward decreasing y,
// and so on.
const (
	XPos Direction = iota
	XNeg
	YPos
	YNeg
)

// Link is a directed channel from node From to an adjacent node. Two
// adjacent nodes are joined by two links, one in each direction, as in a
// full-duplex mesh.
type Link = topo.Link

// NumLinks returns the number of distinct directed links on the mesh,
// used to size dense link-state tables.
func (m *Mesh) NumLinks() int { return m.g.NumLinks() }

// LinkIndex returns a dense index for l suitable for flat link-state
// arrays; the inverse of LinkAt.
func (m *Mesh) LinkIndex(l Link) int { return m.g.LinkIndex(l) }

// LinkAt returns the link with the given dense index.
func (m *Mesh) LinkAt(idx int) Link { return m.g.LinkAt(idx) }

// Neighbor returns the node adjacent to id in direction d and true, or
// (-1, false) when the link would leave a plain mesh. On a torus every
// direction wraps, so the second result is always true.
func (m *Mesh) Neighbor(id int, d Direction) (int, bool) { return m.g.Neighbor(id, d) }

// Route returns the x-y dimension-ordered route from src to dst as the
// ordered sequence of directed links traversed: first all x hops, then all
// y hops, exactly as Paragon-/CPlant-style mesh routers forward wormhole
// packets. An empty slice means src == dst.
func (m *Mesh) Route(src, dst int) []Link { return m.g.Route(src, dst) }

// RouteYX returns the y-x dimension-ordered route (all y hops first), the
// alternative deterministic routing used for routing-sensitivity studies.
func (m *Mesh) RouteYX(src, dst int) []Link {
	return m.AppendRouteYX(make([]Link, 0, m.Dist(src, dst)), src, dst)
}

// AppendRoute appends the x-y dimension-ordered route from src to dst to
// links and returns the extended slice. It is the allocation-free variant
// of Route for callers that reuse a scratch buffer per message.
func (m *Mesh) AppendRoute(links []Link, src, dst int) []Link {
	return m.g.AppendRoute(links, src, dst)
}

// AppendRouteYX is AppendRoute for y-x dimension-ordered routing.
func (m *Mesh) AppendRouteYX(links []Link, src, dst int) []Link {
	return m.g.AppendRouteRev(links, src, dst)
}

// RouteLen returns the number of links on the x-y route from src to dst,
// which equals the Manhattan distance.
func (m *Mesh) RouteLen(src, dst int) int { return m.Dist(src, dst) }

// Submesh describes an axis-aligned rectangle of nodes.
type Submesh struct {
	Origin Point // lowest-coordinate corner
	W, H   int   // extents; both positive
}

// Contains reports whether p lies in the submesh.
func (s Submesh) Contains(p Point) bool {
	return p.X >= s.Origin.X && p.X < s.Origin.X+s.W &&
		p.Y >= s.Origin.Y && p.Y < s.Origin.Y+s.H
}

// Area returns the number of nodes covered by the submesh.
func (s Submesh) Area() int { return s.W * s.H }

// box converts a submesh to the generic box form.
func box(s Submesh) topo.Box {
	return topo.Box{Origin: topo.Point{s.Origin.X, s.Origin.Y}, Ext: topo.Point{s.W, s.H, 1, 1}}
}

// Nodes returns the ids of the submesh's nodes that lie on m, in row-major
// order. Parts of the submesh hanging off the mesh are skipped, which is
// how MC evaluates candidate allocations near mesh edges.
func (m *Mesh) Nodes(s Submesh) []int {
	return m.AppendNodes(make([]int, 0, s.Area()), s)
}

// AppendNodes appends the ids of the submesh's on-mesh nodes to ids in
// row-major order and returns the extended slice — the allocation-free
// variant of Nodes.
func (m *Mesh) AppendNodes(ids []int, s Submesh) []int {
	return m.g.AppendNodes(ids, box(s))
}

// CenteredSubmesh returns the W x H submesh "centered" on c in the MC
// sense: c is placed at the integer center cell (W/2, H/2 from the origin,
// rounding down).
func CenteredSubmesh(c Point, w, h int) Submesh {
	return Submesh{Origin: Point{c.X - w/2, c.Y - h/2}, W: w, H: h}
}

// Shell returns the ids of the nodes on m in shell k around the W x H
// submesh centered on c: shell 0 is the submesh itself, shell k>0 is the
// border ring of the (W+2k) x (H+2k) submesh. This matches the growth rule
// of Mache et al.'s MC allocator (Figure 4 of the paper).
func (m *Mesh) Shell(c Point, w, h, k int) []int {
	return m.g.Shell(pt(c), topo.Point{w, h}, k)
}

// AppendShell appends the ids of shell k around the W x H submesh centered
// on c to ids and returns the extended slice. It is the allocation-free
// variant of Shell: MC-style shell scoring reuses one scratch slice per
// allocator instead of allocating a fresh ring per candidate.
func (m *Mesh) AppendShell(ids []int, c Point, w, h, k int) []int {
	return m.g.AppendShell(ids, pt(c), topo.Point{w, h}, k)
}

// ShellEach calls fn with the id of every on-mesh node of shell k in
// row-major order, stopping early when fn returns false. It reports
// whether the walk ran to completion. It is the index-callback variant of
// Shell for callers that do not need the ids materialized at all.
func (m *Mesh) ShellEach(c Point, w, h, k int, fn func(id int) bool) bool {
	return m.g.ShellEach(pt(c), topo.Point{w, h}, k, fn)
}

// MaxShells returns an upper bound on the number of shells needed to cover
// the whole mesh from any center for a W x H base submesh.
func (m *Mesh) MaxShells(w, h int) int {
	// Growing by one node per side per shell, max(width, height) shells
	// always suffice.
	return m.g.MaxShells()
}

// Components partitions the given node ids into rectilinearly-connected
// components: two nodes are connected when they are mesh-adjacent and both
// in the set. The paper calls a job "allocated contiguously" when this
// yields a single component. The returned components are each sorted by id
// and ordered by their smallest id.
func (m *Mesh) Components(ids []int) [][]int { return m.g.Components(ids) }

// Contiguous reports whether the node set forms a single rectilinear
// component.
func (m *Mesh) Contiguous(ids []int) bool { return m.g.Contiguous(ids) }
