package mesh

import (
	"testing"
	"testing/quick"
)

func TestIDCoordRoundTrip(t *testing.T) {
	m := New(16, 22)
	for id := 0; id < m.Size(); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, got)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestManhattan(t *testing.T) {
	tests := []struct {
		a, b Point
		want int
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 7},
		{Point{3, 4}, Point{0, 0}, 7},
		{Point{5, 1}, Point{1, 5}, 8},
	}
	for _, tc := range tests {
		if got := tc.a.Manhattan(tc.b); got != tc.want {
			t.Errorf("%v.Manhattan(%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRouteIsXYOrdered(t *testing.T) {
	m := New(8, 8)
	links := m.Route(m.ID(Point{1, 1}), m.ID(Point{5, 3}))
	if len(links) != 6 {
		t.Fatalf("route length %d, want 6", len(links))
	}
	// First all x hops, then all y hops.
	sawY := false
	for _, l := range links {
		isY := l.Dir == YPos || l.Dir == YNeg
		if sawY && !isY {
			t.Fatalf("x hop after y hop in %v", links)
		}
		if isY {
			sawY = true
		}
	}
}

func TestRouteEndsAtDestination(t *testing.T) {
	m := New(7, 5)
	f := func(a, b uint8) bool {
		src := int(a) % m.Size()
		dst := int(b) % m.Size()
		links := m.Route(src, dst)
		if len(links) != m.Dist(src, dst) {
			return false
		}
		cur := src
		for _, l := range links {
			if l.From != cur {
				return false
			}
			next, ok := m.Neighbor(cur, l.Dir)
			if !ok {
				return false
			}
			cur = next
		}
		return cur == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteYXIsYOrdered(t *testing.T) {
	m := New(8, 8)
	links := m.RouteYX(m.ID(Point{1, 1}), m.ID(Point{5, 3}))
	if len(links) != 6 {
		t.Fatalf("route length %d, want 6", len(links))
	}
	// All y hops first, then x hops.
	sawX := false
	cur := m.ID(Point{1, 1})
	for _, l := range links {
		if l.From != cur {
			t.Fatalf("route not connected at %v", l)
		}
		isX := l.Dir == XPos || l.Dir == XNeg
		if sawX && !isX {
			t.Fatalf("y hop after x hop in %v", links)
		}
		if isX {
			sawX = true
		}
		next, ok := m.Neighbor(cur, l.Dir)
		if !ok {
			t.Fatal("route leaves mesh")
		}
		cur = next
	}
	if cur != m.ID(Point{5, 3}) {
		t.Fatal("route does not reach destination")
	}
}

func TestRouteSelfIsEmpty(t *testing.T) {
	m := New(4, 4)
	if links := m.Route(5, 5); len(links) != 0 {
		t.Fatalf("self route has %d links, want 0", len(links))
	}
}

func TestLinkIndexRoundTrip(t *testing.T) {
	m := New(6, 9)
	for idx := 0; idx < m.NumLinks(); idx++ {
		if got := m.LinkIndex(m.LinkAt(idx)); got != idx {
			t.Fatalf("LinkIndex(LinkAt(%d)) = %d", idx, got)
		}
	}
}

func TestNeighborEdges(t *testing.T) {
	m := New(3, 3)
	// Corner node 0 = (0,0) has only +x and +y neighbours.
	if _, ok := m.Neighbor(0, XNeg); ok {
		t.Error("corner should have no -x neighbour")
	}
	if _, ok := m.Neighbor(0, YNeg); ok {
		t.Error("corner should have no -y neighbour")
	}
	if nb, ok := m.Neighbor(0, XPos); !ok || nb != 1 {
		t.Errorf("+x neighbour of 0 = %d,%v, want 1,true", nb, ok)
	}
	if nb, ok := m.Neighbor(0, YPos); !ok || nb != 3 {
		t.Errorf("+y neighbour of 0 = %d,%v, want 3,true", nb, ok)
	}
}

func TestAvgPairwiseDist(t *testing.T) {
	m := New(4, 4)
	// 2x2 block at origin: pairs (01)(02)(03)... ids 0,1,4,5.
	got := m.AvgPairwiseDist([]int{0, 1, 4, 5})
	// Distances: 0-1:1 0-4:1 0-5:2 1-4:2 1-5:1 4-5:1 => total 8 / 6 pairs.
	want := 8.0 / 6.0
	if got != want {
		t.Fatalf("AvgPairwiseDist = %g, want %g", got, want)
	}
	if m.AvgPairwiseDist([]int{3}) != 0 {
		t.Fatal("singleton should have zero avg distance")
	}
	if m.TotalPairwiseDist([]int{0, 1, 4, 5}) != 8 {
		t.Fatal("TotalPairwiseDist mismatch")
	}
}

func TestCenteredSubmeshAndShells(t *testing.T) {
	m := New(9, 9)
	c := Point{4, 4}
	// Shell 0 of a 3x1 request is the 3x1 submesh centered on c.
	s0 := m.Shell(c, 3, 1, 0)
	if len(s0) != 3 {
		t.Fatalf("shell 0 size %d, want 3", len(s0))
	}
	// Shell 1 is the ring around the 3x1: a 5x3 minus the 3x1 = 12 nodes.
	s1 := m.Shell(c, 3, 1, 1)
	if len(s1) != 12 {
		t.Fatalf("shell 1 size %d, want 12", len(s1))
	}
	// Shells partition: no overlap between shells 0..3.
	seen := map[int]bool{}
	for k := 0; k <= 3; k++ {
		for _, id := range m.Shell(c, 3, 1, k) {
			if seen[id] {
				t.Fatalf("node %d in two shells", id)
			}
			seen[id] = true
		}
	}
}

func TestShellsCoverMesh(t *testing.T) {
	m := New(5, 7)
	c := Point{0, 0} // worst-case corner center
	seen := map[int]bool{}
	for k := 0; k <= m.MaxShells(1, 1); k++ {
		for _, id := range m.Shell(c, 1, 1, k) {
			seen[id] = true
		}
	}
	if len(seen) != m.Size() {
		t.Fatalf("shells cover %d nodes, want %d", len(seen), m.Size())
	}
}

func TestShellClippedAtEdge(t *testing.T) {
	m := New(4, 4)
	s1 := m.Shell(Point{0, 0}, 1, 1, 1)
	// Ring around (0,0) clipped to the mesh: (1,0),(0,1),(1,1).
	if len(s1) != 3 {
		t.Fatalf("clipped shell has %d nodes, want 3", len(s1))
	}
}

func TestComponents(t *testing.T) {
	m := New(4, 4)
	tests := []struct {
		name string
		ids  []int
		want int
	}{
		{"empty", nil, 0},
		{"single", []int{5}, 1},
		{"row", []int{0, 1, 2, 3}, 1},
		{"block", []int{0, 1, 4, 5}, 1},
		{"two corners", []int{0, 15}, 2},
		{"diagonal only", []int{0, 5, 10, 15}, 4},
		{"L-shape", []int{0, 4, 8, 9, 10}, 1},
		{"split", []int{0, 1, 3, 7}, 2},
	}
	for _, tc := range tests {
		comps := m.Components(tc.ids)
		if len(comps) != tc.want {
			t.Errorf("%s: %d components, want %d", tc.name, len(comps), tc.want)
		}
		total := 0
		for _, c := range comps {
			total += len(c)
		}
		if total != len(tc.ids) {
			t.Errorf("%s: components cover %d ids, want %d", tc.name, total, len(tc.ids))
		}
		if (len(comps) <= 1) != m.Contiguous(tc.ids) {
			t.Errorf("%s: Contiguous disagrees with Components", tc.name)
		}
	}
}

func TestComponentsPartitionProperty(t *testing.T) {
	m := New(6, 6)
	f := func(mask uint64) bool {
		var ids []int
		for i := 0; i < 36; i++ {
			if mask&(1<<uint(i)) != 0 {
				ids = append(ids, i)
			}
		}
		comps := m.Components(ids)
		seen := map[int]bool{}
		for _, c := range comps {
			for _, id := range c {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return len(seen) == len(ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusDist(t *testing.T) {
	m := NewTorus(8, 6)
	if !m.Torus() {
		t.Fatal("Torus() false")
	}
	// (0,0) to (7,0): 1 hop the short way around.
	if d := m.Dist(m.ID(Point{0, 0}), m.ID(Point{7, 0})); d != 1 {
		t.Fatalf("wrap x distance = %d, want 1", d)
	}
	// (0,0) to (0,5): 1 hop around y.
	if d := m.Dist(m.ID(Point{0, 0}), m.ID(Point{0, 5})); d != 1 {
		t.Fatalf("wrap y distance = %d, want 1", d)
	}
	// (0,0) to (4,3): 4 + 3 either way.
	if d := m.Dist(m.ID(Point{0, 0}), m.ID(Point{4, 3})); d != 7 {
		t.Fatalf("half-way distance = %d, want 7", d)
	}
	// A plain mesh disagrees.
	p := New(8, 6)
	if d := p.Dist(p.ID(Point{0, 0}), p.ID(Point{7, 0})); d != 7 {
		t.Fatalf("plain mesh distance = %d, want 7", d)
	}
}

func TestTorusNeighborWraps(t *testing.T) {
	m := NewTorus(4, 4)
	nb, ok := m.Neighbor(m.ID(Point{0, 0}), XNeg)
	if !ok || nb != m.ID(Point{3, 0}) {
		t.Fatalf("XNeg wrap = %d, %v", nb, ok)
	}
	nb, ok = m.Neighbor(m.ID(Point{2, 3}), YPos)
	if !ok || nb != m.ID(Point{2, 0}) {
		t.Fatalf("YPos wrap = %d, %v", nb, ok)
	}
}

func TestTorusRouteTakesShortWay(t *testing.T) {
	m := NewTorus(8, 8)
	src, dst := m.ID(Point{0, 0}), m.ID(Point{7, 7})
	links := m.Route(src, dst)
	if len(links) != 2 {
		t.Fatalf("torus route length %d, want 2 (one wrap per axis)", len(links))
	}
	// Route is connected and ends at dst.
	cur := src
	for _, l := range links {
		if l.From != cur {
			t.Fatalf("disconnected route %v", links)
		}
		next, ok := m.Neighbor(cur, l.Dir)
		if !ok {
			t.Fatal("route left mesh")
		}
		cur = next
	}
	if cur != dst {
		t.Fatalf("route ends at %d, want %d", cur, dst)
	}
}

func TestTorusRoutePropertyMatchesDist(t *testing.T) {
	m := NewTorus(7, 5)
	for src := 0; src < m.Size(); src += 3 {
		for dst := 0; dst < m.Size(); dst += 2 {
			if got := len(m.Route(src, dst)); got != m.Dist(src, dst) {
				t.Fatalf("route %d->%d has %d links, dist %d", src, dst, got, m.Dist(src, dst))
			}
		}
	}
}

func TestDirectionString(t *testing.T) {
	if XPos.String() != "+x" || YNeg.String() != "-y" {
		t.Fatal("Direction.String mismatch")
	}
}

func TestSubmeshNodesClipped(t *testing.T) {
	m := New(4, 4)
	s := Submesh{Origin: Point{3, 3}, W: 2, H: 2}
	nodes := m.Nodes(s)
	if len(nodes) != 1 || nodes[0] != 15 {
		t.Fatalf("clipped submesh nodes = %v, want [15]", nodes)
	}
}
