package trace

import (
	"strings"
	"testing"
)

const swfSample = `; SDSC Paragon-style sample
; Computer: Intel Paragon
1 100 5 3600 16 -1 -1 16 7200 -1 1 3 1 1 1 1 -1 -1
2 50 0 1800 -1 -1 -1 32 3600 -1 1 4 1 1 1 1 -1 -1
3 200 9 -1 8 -1 -1 8 600 -1 0 5 1 1 1 1 -1 -1
4 300 2 60 0 -1 -1 -1 60 -1 1 5 1 1 1 1 -1 -1
5 400 1 120 4 -1 -1 4 240 -1 1 5 1 1 1 1 -1 -1
`

func TestReadSWF(t *testing.T) {
	tr, err := ReadSWF(strings.NewReader(swfSample))
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 3 (runtime -1) and 4 (no valid size) are skipped; 3 remain.
	if len(tr.Jobs) != 3 {
		t.Fatalf("%d jobs, want 3", len(tr.Jobs))
	}
	// Sorted by submit and rebased: job with submit 50 first at 0.
	if tr.Jobs[0].Arrival != 0 || tr.Jobs[0].Size != 32 {
		t.Fatalf("first job = %+v (requested-processor fallback failed?)", tr.Jobs[0])
	}
	if tr.Jobs[1].Arrival != 50 || tr.Jobs[1].Size != 16 || tr.Jobs[1].Runtime != 3600 {
		t.Fatalf("second job = %+v", tr.Jobs[1])
	}
	if tr.Jobs[2].Arrival != 350 || tr.Jobs[2].Size != 4 {
		t.Fatalf("third job = %+v", tr.Jobs[2])
	}
	for i, j := range tr.Jobs {
		if j.ID != i {
			t.Fatal("jobs not renumbered")
		}
	}
}

func TestReadSWFErrors(t *testing.T) {
	for _, in := range []string{
		"1 2 3\n", // too few fields
		"1 x 5 3600 16 -1 -1 16 0 0 0 0 0 0 0 0 0 0\n", // bad submit
		"1 10 5 y 16 -1 -1 16 0 0 0 0 0 0 0 0 0 0\n",   // bad runtime
		"1 10 5 60 z -1 -1 16 0 0 0 0 0 0 0 0 0 0\n",   // bad procs
		"1 10 5 60 0 -1 -1 w 0 0 0 0 0 0 0 0 0 0\n",    // bad fallback
	} {
		if _, err := ReadSWF(strings.NewReader(in)); err == nil {
			t.Errorf("ReadSWF(%q) should fail", in)
		}
	}
}

func TestReadSWFEmpty(t *testing.T) {
	tr, err := ReadSWF(strings.NewReader("; only comments\n"))
	if err != nil || len(tr.Jobs) != 0 {
		t.Fatalf("empty swf: %v, %v", tr, err)
	}
}

// swfCorrupt interleaves valid jobs with every malformation class the
// lenient reader must survive.
const swfCorrupt = `; archive with stray garbage
1 100 5 3600 16 -1 -1 16 7200 -1 1 3 1 1 1 1 -1 -1
truncated line
2 x 5 1800 8 -1 -1 8 3600 -1 1 4 1 1 1 1 -1 -1
3 200 5 NaN 8 -1 -1 8 600 -1 1 5 1 1 1 1 -1 -1
4 300 1 120 4 -1 -1 4 240 -1 1 5 1 1 1 1 -1 -1
5 400 9 -1 8 -1 -1 8 600 -1 0 5 1 1 1 1 -1 -1
`

func TestReadSWFLenient(t *testing.T) {
	tr, skips, err := ReadSWFLenient(strings.NewReader(swfCorrupt))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("%d jobs, want 2 (the well-formed lines)", len(tr.Jobs))
	}
	if tr.Jobs[0].Size != 16 || tr.Jobs[1].Size != 4 {
		t.Fatalf("jobs = %+v", tr.Jobs)
	}
	// One skip per dropped line, each naming its 1-based line number.
	want := map[int]string{3: "fields", 4: "submit", 5: "run time", 7: "skipped"}
	if len(skips) != len(want) {
		t.Fatalf("skips = %v, want %d entries", skips, len(want))
	}
	for _, s := range skips {
		frag, ok := want[s.Line]
		if !ok {
			t.Errorf("unexpected skip %v", s)
			continue
		}
		if !strings.Contains(s.Reason, frag) {
			t.Errorf("skip %v does not mention %q", s, frag)
		}
		if !strings.Contains(s.String(), "line ") {
			t.Errorf("skip string %q lacks line number", s.String())
		}
	}
	// The same input aborts the strict reader at the first bad line.
	if _, err := ReadSWF(strings.NewReader(swfCorrupt)); err == nil ||
		!strings.Contains(err.Error(), "line 3") {
		t.Fatalf("strict reader error = %v, want line-3 failure", err)
	}
}

func TestReadSWFRejectsNonFinite(t *testing.T) {
	for _, in := range []string{
		"1 NaN 5 60 4 -1 -1 4 0 0 0 0 0 0 0 0 0 0\n",
		"1 10 5 +Inf 4 -1 -1 4 0 0 0 0 0 0 0 0 0 0\n",
	} {
		if _, err := ReadSWF(strings.NewReader(in)); err == nil {
			t.Errorf("ReadSWF(%q) accepted a non-finite field", in)
		}
	}
}
