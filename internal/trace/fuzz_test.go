package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the plain-text trace parser never panics and that any
// successfully-parsed trace is internally consistent and round-trips.
func FuzzRead(f *testing.F) {
	f.Add("100 4 50\n200 2 10\n")
	f.Add("# comment\n\n1.5 1 0.25\n")
	f.Add("x y z\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		prev := -1.0
		for i, j := range tr.Jobs {
			if j.ID != i {
				t.Fatalf("job %d has id %d", i, j.ID)
			}
			if j.Size <= 0 || j.Runtime < 0 {
				t.Fatalf("invalid parsed job %+v", j)
			}
			if j.Arrival < prev {
				t.Fatal("arrivals not sorted")
			}
			prev = j.Arrival
		}
		// Round trip: writing and re-reading preserves the job count.
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Jobs) != len(tr.Jobs) {
			t.Fatalf("round trip lost jobs: %d vs %d", len(back.Jobs), len(tr.Jobs))
		}
	})
}

// FuzzReadSWF checks the SWF parser never panics and produces valid jobs.
func FuzzReadSWF(f *testing.F) {
	f.Add("; hdr\n1 100 5 3600 16 -1 -1 16 7200 -1 1 3 1 1 1 1 -1 -1\n")
	f.Add("1 2 3 4 5 6 7 8\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadSWF(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, j := range tr.Jobs {
			if j.Size <= 0 || j.Runtime <= 0 || j.Arrival < 0 {
				t.Fatalf("invalid swf job %+v", j)
			}
		}
	})
}

// FuzzReadSWFLenient checks the lenient SWF reader never errors or
// panics on corrupt input, that every parsed job is valid, and that it
// agrees with the strict reader whenever the strict reader succeeds.
func FuzzReadSWFLenient(f *testing.F) {
	f.Add("; hdr\n1 100 5 3600 16 -1 -1 16 7200 -1 1 3 1 1 1 1 -1 -1\n")
	f.Add("truncated line\n1 2 3 4 5 6 7 8\n")
	f.Add("1 NaN 5 60 4 -1 -1 4 0\n1 10 5 60 4 -1 -1 4 0\n")
	f.Add("1 -5 5 60 4 -1 -1 4 0\n;\n\n9 9 9\n")
	f.Add("1 1e308 5 1e308 4 -1 -1 4 0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, skips, err := ReadSWFLenient(strings.NewReader(input))
		if err != nil {
			t.Fatalf("lenient reader errored on in-memory input: %v", err)
		}
		for _, j := range tr.Jobs {
			if j.Size <= 0 || j.Runtime <= 0 || j.Arrival < 0 {
				t.Fatalf("invalid lenient swf job %+v", j)
			}
		}
		for _, s := range skips {
			if s.Line <= 0 || s.Reason == "" {
				t.Fatalf("malformed skip diagnostic %+v", s)
			}
		}
		strictTr, strictErr := ReadSWF(strings.NewReader(input))
		if strictErr != nil {
			return
		}
		// Strict success means no malformed lines: the readers must
		// agree and every lenient skip is a conventional job skip.
		if len(strictTr.Jobs) != len(tr.Jobs) {
			t.Fatalf("strict %d jobs vs lenient %d", len(strictTr.Jobs), len(tr.Jobs))
		}
		for _, s := range skips {
			if !strings.HasPrefix(s.Reason, "skipped") {
				t.Fatalf("strict reader passed but lenient flagged %v", s)
			}
		}
	})
}
