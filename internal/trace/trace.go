// Package trace models the batch workload driving the simulation: the job
// stream of the 352-node NQS partition of the SDSC Intel Paragon
// (October-December 1996) that the paper replays.
//
// The original trace is not redistributable, so NewSDSC synthesizes a
// trace fitted to the published statistics: 6087 jobs, mean interarrival
// time 1301 s with coefficient of variation 3.7, mean size 14.5 nodes
// with CV 1.5 and a strong bias toward powers of two, and mean runtime
// 3.04 h with CV 1.13. A plain-text reader and writer let a real trace be
// substituted.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"meshalloc/internal/stats"
)

// Job is one batch job: it arrives, waits for Size processors, and runs a
// communication workload derived from Runtime (one message per second of
// traced runtime, per the paper).
type Job struct {
	// ID is the job's position in the trace.
	ID int
	// Arrival is the submission time in seconds from trace start.
	Arrival float64
	// Size is the number of processors requested.
	Size int
	// Runtime is the traced runtime in seconds, which sets the job's
	// message quota.
	Runtime float64
}

// Trace is an arrival-ordered job stream.
type Trace struct {
	Jobs []Job
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	return &Trace{Jobs: append([]Job(nil), t.Jobs...)}
}

// ScaleLoad multiplies every arrival time by factor, the paper's load
// contraction: factor 0.2 packs the same jobs into one fifth of the time,
// a 5x effective load increase. It panics on non-positive factors.
func (t *Trace) ScaleLoad(factor float64) *Trace {
	if factor <= 0 {
		panic(fmt.Sprintf("trace: invalid load factor %g", factor))
	}
	out := t.Clone()
	for i := range out.Jobs {
		out.Jobs[i].Arrival *= factor
	}
	return out
}

// ScaleTime contracts the whole trace — arrivals and runtimes — by
// factor, producing a statistically self-similar but shorter workload.
// The simulator uses this to keep full-trace experiments tractable;
// response times re-inflate by 1/factor.
func (t *Trace) ScaleTime(factor float64) *Trace {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("trace: invalid time scale %g", factor))
	}
	out := t.Clone()
	for i := range out.Jobs {
		out.Jobs[i].Arrival *= factor
		out.Jobs[i].Runtime *= factor
	}
	return out
}

// FilterMaxSize drops jobs larger than maxSize, renumbering IDs — the
// paper removes the three 320-node jobs when moving from the 16x22 to the
// 16x16 mesh.
func (t *Trace) FilterMaxSize(maxSize int) *Trace {
	out := &Trace{Jobs: make([]Job, 0, len(t.Jobs))}
	for _, j := range t.Jobs {
		if j.Size <= maxSize {
			j.ID = len(out.Jobs)
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// Truncate keeps the first n jobs (all jobs when n exceeds the length).
func (t *Trace) Truncate(n int) *Trace {
	out := t.Clone()
	if n < len(out.Jobs) {
		out.Jobs = out.Jobs[:n]
	}
	return out
}

// Summary holds the descriptive statistics the paper reports for the
// SDSC trace.
type Summary struct {
	Jobs             int
	MeanInterarrival float64
	CVInterarrival   float64
	MeanSize         float64
	CVSize           float64
	MeanRuntime      float64
	CVRuntime        float64
	MaxSize          int
}

// Summarize computes the trace's summary statistics.
func (t *Trace) Summarize() Summary {
	s := Summary{Jobs: len(t.Jobs)}
	if len(t.Jobs) == 0 {
		return s
	}
	var inter, sizes, runtimes []float64
	for i, j := range t.Jobs {
		if i > 0 {
			inter = append(inter, j.Arrival-t.Jobs[i-1].Arrival)
		}
		sizes = append(sizes, float64(j.Size))
		runtimes = append(runtimes, j.Runtime)
		if j.Size > s.MaxSize {
			s.MaxSize = j.Size
		}
	}
	s.MeanInterarrival = stats.Mean(inter)
	s.CVInterarrival = stats.CV(inter)
	s.MeanSize = stats.Mean(sizes)
	s.CVSize = stats.CV(sizes)
	s.MeanRuntime = stats.Mean(runtimes)
	s.CVRuntime = stats.CV(runtimes)
	return s
}

// SDSCConfig parameterizes the synthetic SDSC Paragon workload.
type SDSCConfig struct {
	// Jobs is the number of jobs to generate (paper: 6087).
	Jobs int
	// MaxSize caps job sizes at the machine size (paper: 352).
	MaxSize int
	// Seed drives all sampling.
	Seed int64
}

// DefaultSDSCConfig returns the published trace parameters.
func DefaultSDSCConfig() SDSCConfig {
	return SDSCConfig{Jobs: 6087, MaxSize: 352, Seed: 1}
}

// sdscSizeDist is the job-size distribution fitted numerically to the
// published moments (mean 14.5, CV 1.5) with the power-of-two bias the
// paper describes. Powers of two carry ~85% of the probability mass.
func sdscSizeDist() *stats.DiscreteDist {
	values := []int{
		1, 2, 4, 8, 16, 32, 64, 128, 256, // powers of two
		3, 5, 6, 10, 12, 20, 24, 48, 96, 200, 320, // other observed sizes
	}
	weights := []float64{
		0.150, 0.140, 0.170, 0.190, 0.140, 0.130, 0.050, 0.012, 0.0005,
		0.010, 0.008, 0.008, 0.007, 0.007, 0.005, 0.004, 0.003, 0.002, 0.0003, 0.0003,
	}
	return stats.NewDiscreteDist(values, weights)
}

// sdscRuntimeDist is the runtime distribution fitted to the published
// moments (mean 3.04 h, CV 1.13).
func sdscRuntimeDist() stats.Lognormal { return stats.NewLognormal(10944, 1.13) }

// sampleSDSCJob draws one job's size and runtime from the SDSC-fitted
// distributions, capping sizes at maxSize (0 = uncapped) and clamping
// runtimes to [30 s, 48 h], the span of a production NQS queue. Shared
// by the closed-trace synthesizer and the open-system sources so the
// two workload shapes can never drift apart.
func sampleSDSCJob(rng *stats.RNG, sizes *stats.DiscreteDist, runtimes stats.Lognormal, maxSize int) (size int, run float64) {
	size = sizes.SampleInt(rng)
	if maxSize > 0 && size > maxSize {
		size = maxSize
	}
	run = runtimes.Sample(rng)
	if run < 30 {
		run = 30
	}
	if run > 172800 {
		run = 172800
	}
	return size, run
}

// NewSDSC synthesizes a trace with the SDSC Paragon's published
// statistics.
func NewSDSC(cfg SDSCConfig) *Trace {
	if cfg.Jobs <= 0 {
		panic(fmt.Sprintf("trace: invalid job count %d", cfg.Jobs))
	}
	rng := stats.NewRNG(cfg.Seed)
	inter := stats.NewHyperExp2(1301, 3.7)
	sizes := sdscSizeDist()
	runtimes := sdscRuntimeDist()

	t := &Trace{Jobs: make([]Job, 0, cfg.Jobs)}
	now := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		now += inter.Sample(rng)
		size, run := sampleSDSCJob(rng, sizes, runtimes, cfg.MaxSize)
		t.Jobs = append(t.Jobs, Job{ID: i, Arrival: now, Size: size, Runtime: run})
	}
	return t
}

// Write emits the trace in a plain-text format: one "arrival size
// runtime" line per job, '#' comments allowed.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# meshalloc trace: arrival_sec size runtime_sec"); err != nil {
		return err
	}
	for _, j := range t.Jobs {
		if _, err := fmt.Fprintf(bw, "%.3f %d %.3f\n", j.Arrival, j.Size, j.Runtime); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write (or hand-made in the same
// format). Jobs are sorted by arrival and renumbered.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", line, len(fields))
		}
		arrival, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad arrival: %v", line, err)
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("trace: line %d: bad size %q", line, fields[1])
		}
		runtime, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || runtime < 0 {
			return nil, fmt.Errorf("trace: line %d: bad runtime %q", line, fields[2])
		}
		t.Jobs = append(t.Jobs, Job{Arrival: arrival, Size: size, Runtime: runtime})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(t.Jobs, func(i, k int) bool { return t.Jobs[i].Arrival < t.Jobs[k].Arrival })
	for i := range t.Jobs {
		t.Jobs[i].ID = i
	}
	return t, nil
}
