package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSDSCMatchesPublishedStatistics(t *testing.T) {
	// The paper: 6087 jobs; mean interarrival 1301 s (CV 3.7); mean size
	// 14.5 (CV 1.5), power-of-two biased; mean runtime 3.04 h (CV 1.13).
	tr := NewSDSC(DefaultSDSCConfig())
	s := tr.Summarize()
	if s.Jobs != 6087 {
		t.Fatalf("jobs = %d, want 6087", s.Jobs)
	}
	checks := []struct {
		name      string
		got, want float64
		tol       float64 // relative tolerance
	}{
		{"mean interarrival", s.MeanInterarrival, 1301, 0.10},
		{"cv interarrival", s.CVInterarrival, 3.7, 0.15},
		{"mean size", s.MeanSize, 14.5, 0.15},
		{"cv size", s.CVSize, 1.5, 0.20},
		{"mean runtime", s.MeanRuntime, 10944, 0.10},
		{"cv runtime", s.CVRuntime, 1.13, 0.15},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want)/c.want > c.tol {
			t.Errorf("%s = %.3g, want %.3g (±%.0f%%)", c.name, c.got, c.want, c.tol*100)
		}
	}
}

func TestSDSCPowerOfTwoBias(t *testing.T) {
	tr := NewSDSC(DefaultSDSCConfig())
	pow2 := 0
	for _, j := range tr.Jobs {
		if j.Size&(j.Size-1) == 0 {
			pow2++
		}
	}
	frac := float64(pow2) / float64(len(tr.Jobs))
	if frac < 0.75 {
		t.Errorf("power-of-two fraction = %.2f, want >= 0.75", frac)
	}
}

func TestSDSCDeterministicPerSeed(t *testing.T) {
	a := NewSDSC(SDSCConfig{Jobs: 100, MaxSize: 352, Seed: 5})
	b := NewSDSC(SDSCConfig{Jobs: 100, MaxSize: 352, Seed: 5})
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatal("same-seed traces differ")
		}
	}
	c := NewSDSC(SDSCConfig{Jobs: 100, MaxSize: 352, Seed: 6})
	same := true
	for i := range a.Jobs {
		if a.Jobs[i] != c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSDSCBounds(t *testing.T) {
	tr := NewSDSC(SDSCConfig{Jobs: 2000, MaxSize: 352, Seed: 2})
	prev := 0.0
	for _, j := range tr.Jobs {
		if j.Size < 1 || j.Size > 352 {
			t.Fatalf("job size %d out of range", j.Size)
		}
		if j.Runtime < 30 || j.Runtime > 172800 {
			t.Fatalf("job runtime %g out of range", j.Runtime)
		}
		if j.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = j.Arrival
	}
}

func TestScaleLoad(t *testing.T) {
	tr := &Trace{Jobs: []Job{{Arrival: 100, Size: 4, Runtime: 50}, {Arrival: 200, Size: 2, Runtime: 10}}}
	out := tr.ScaleLoad(0.2)
	if out.Jobs[0].Arrival != 20 || out.Jobs[1].Arrival != 40 {
		t.Fatalf("scaled arrivals = %v", out.Jobs)
	}
	// Runtimes untouched; original untouched.
	if out.Jobs[0].Runtime != 50 || tr.Jobs[0].Arrival != 100 {
		t.Fatal("ScaleLoad mutated the wrong fields")
	}
}

func TestScaleLoadPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaleLoad(0) should panic")
		}
	}()
	(&Trace{}).ScaleLoad(0)
}

func TestScaleTime(t *testing.T) {
	tr := &Trace{Jobs: []Job{{Arrival: 100, Size: 4, Runtime: 50}}}
	out := tr.ScaleTime(0.1)
	if out.Jobs[0].Arrival != 10 || out.Jobs[0].Runtime != 5 {
		t.Fatalf("time-scaled job = %+v", out.Jobs[0])
	}
}

func TestFilterMaxSize(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: 0, Size: 10}, {ID: 1, Size: 320}, {ID: 2, Size: 256}, {ID: 3, Size: 320},
	}}
	out := tr.FilterMaxSize(256)
	if len(out.Jobs) != 2 {
		t.Fatalf("filtered to %d jobs, want 2", len(out.Jobs))
	}
	for i, j := range out.Jobs {
		if j.ID != i {
			t.Fatalf("job %d has ID %d after renumbering", i, j.ID)
		}
	}
}

func TestTruncate(t *testing.T) {
	tr := NewSDSC(SDSCConfig{Jobs: 50, MaxSize: 64, Seed: 1})
	if got := tr.Truncate(10); len(got.Jobs) != 10 {
		t.Fatalf("truncated to %d jobs", len(got.Jobs))
	}
	if got := tr.Truncate(100); len(got.Jobs) != 50 {
		t.Fatalf("over-truncate gave %d jobs", len(got.Jobs))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := NewSDSC(SDSCConfig{Jobs: 200, MaxSize: 352, Seed: 3})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(back.Jobs), len(tr.Jobs))
	}
	for i := range tr.Jobs {
		if back.Jobs[i].Size != tr.Jobs[i].Size {
			t.Fatalf("job %d size mismatch", i)
		}
		if math.Abs(back.Jobs[i].Arrival-tr.Jobs[i].Arrival) > 0.001 {
			t.Fatalf("job %d arrival mismatch", i)
		}
		if math.Abs(back.Jobs[i].Runtime-tr.Jobs[i].Runtime) > 0.001 {
			t.Fatalf("job %d runtime mismatch", i)
		}
	}
}

func TestReadSortsAndValidates(t *testing.T) {
	in := "# comment\n\n200 4 50\n100 2 10\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].Arrival != 100 || tr.Jobs[0].ID != 0 {
		t.Fatalf("jobs not sorted/renumbered: %+v", tr.Jobs)
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{
		"1 2\n",         // too few fields
		"x 2 3\n",       // bad arrival
		"1 zero 3\n",    // bad size
		"1 0 3\n",       // non-positive size
		"1 2 -3\n",      // negative runtime
		"1 2 3 4 5 6\n", // too many fields
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := (&Trace{}).Summarize()
	if s.Jobs != 0 || s.MeanSize != 0 {
		t.Fatal("empty trace summary should be zero")
	}
}
