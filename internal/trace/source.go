package trace

import (
	"fmt"

	"meshalloc/internal/stats"
)

// Source is a pull-based job stream for open-system simulation: Next
// yields jobs in nondecreasing arrival order until the stream is
// exhausted. Unlike a Trace, a Source need not exist in memory all at
// once — the engine pulls the next arrival only when the clock reaches
// it, so an unbounded synthetic stream drives a constant-memory run.
type Source interface {
	// Next returns the next job and true, or a zero Job and false when
	// the stream is exhausted.
	Next() (Job, bool)
}

// traceSource replays a Trace's jobs in order.
type traceSource struct {
	jobs []Job
	i    int
}

// Source returns a Source replaying the trace's jobs in arrival order.
func (t *Trace) Source() Source {
	return &traceSource{jobs: t.Jobs}
}

func (s *traceSource) Next() (Job, bool) {
	if s.i >= len(s.jobs) {
		return Job{}, false
	}
	j := s.jobs[s.i]
	s.i++
	return j, true
}

// Synthetic is an unbounded open-system arrival generator: interarrival
// times from a Poisson or interrupted-Poisson (bursty on/off) process,
// job sizes and runtimes from the SDSC-fitted distributions of NewSDSC.
// Jobs are numbered from 0 in generation order.
type Synthetic struct {
	rng      *stats.RNG
	sizes    *stats.DiscreteDist
	runtimes stats.Lognormal
	maxSize  int

	meanInter float64
	// Bursty (interrupted Poisson) state: arrivals occur only during ON
	// periods; ON and OFF durations are exponential with means meanOn
	// and meanOff. meanOn == 0 means plain Poisson (always on).
	meanOn, meanOff float64
	onLeft          float64

	now  float64
	next int
}

// NewPoisson returns an open-system source with Poisson arrivals at the
// given mean interarrival time (seconds), sizes capped at maxSize. It
// panics on a non-positive mean interarrival.
func NewPoisson(meanInterarrival float64, maxSize int, seed int64) *Synthetic {
	if meanInterarrival <= 0 {
		panic(fmt.Sprintf("trace: invalid mean interarrival %g", meanInterarrival))
	}
	return &Synthetic{
		rng:       stats.NewRNG(seed),
		sizes:     sdscSizeDist(),
		runtimes:  sdscRuntimeDist(),
		maxSize:   maxSize,
		meanInter: meanInterarrival,
	}
}

// NewBursty returns an on/off (interrupted Poisson) source: during ON
// periods jobs arrive with the given mean interarrival; OFF periods
// contribute no arrivals. ON and OFF durations are exponential with
// means meanOn and meanOff, so the long-run arrival rate is the Poisson
// rate thinned by meanOn/(meanOn+meanOff) while bursts within ON
// periods hit the full rate. It panics on non-positive parameters.
func NewBursty(meanInterarrival, meanOn, meanOff float64, maxSize int, seed int64) *Synthetic {
	if meanInterarrival <= 0 || meanOn <= 0 || meanOff <= 0 {
		panic(fmt.Sprintf("trace: invalid bursty parameters %g/%g/%g",
			meanInterarrival, meanOn, meanOff))
	}
	s := NewPoisson(meanInterarrival, maxSize, seed)
	s.meanOn, s.meanOff = meanOn, meanOff
	s.onLeft = s.rng.ExpFloat64() * meanOn
	return s
}

// Next implements Source. Synthetic streams never exhaust; bound them
// with Limit or the engine's horizon.
func (s *Synthetic) Next() (Job, bool) {
	gap := s.rng.ExpFloat64() * s.meanInter
	if s.meanOn > 0 {
		// Consume ON time until the gap fits, skipping OFF periods.
		for gap > s.onLeft {
			gap -= s.onLeft
			s.now += s.onLeft + s.rng.ExpFloat64()*s.meanOff
			s.onLeft = s.rng.ExpFloat64() * s.meanOn
		}
		s.onLeft -= gap
	}
	s.now += gap

	size, run := sampleSDSCJob(s.rng, s.sizes, s.runtimes, s.maxSize)
	j := Job{ID: s.next, Arrival: s.now, Size: size, Runtime: run}
	s.next++
	return j, true
}

// SourceState is the serializable position of a Source built by this
// package. Synthetic sources restore by fast-forwarding a fresh
// generator's RNG to the recorded draw position (the stream itself is a
// pure function of the construction parameters); trace replays and
// limits restore their cursors. Inner nests for wrapped sources.
type SourceState struct {
	Kind   string // "synthetic", "trace", or "limit"
	RNGPos uint64
	OnLeft float64
	Now    float64
	Next   int
	Index  int
	Left   int
	Inner  *SourceState
}

// CaptureSource snapshots the position of a Source built by this
// package. It errors on source types it does not know how to restore.
func CaptureSource(src Source) (SourceState, error) {
	switch s := src.(type) {
	case *Synthetic:
		return SourceState{
			Kind: "synthetic", RNGPos: s.rng.Pos(),
			OnLeft: s.onLeft, Now: s.now, Next: s.next,
		}, nil
	case *traceSource:
		return SourceState{Kind: "trace", Index: s.i}, nil
	case *limited:
		inner, err := CaptureSource(s.src)
		if err != nil {
			return SourceState{}, err
		}
		return SourceState{Kind: "limit", Left: s.left, Inner: &inner}, nil
	default:
		return SourceState{}, fmt.Errorf("trace: cannot snapshot source type %T", src)
	}
}

// RestoreSource fast-forwards a freshly constructed source (built with
// the same parameters as the one captured) to the recorded position.
// It errors on a kind/type mismatch or an out-of-range cursor.
func RestoreSource(src Source, st SourceState) error {
	switch s := src.(type) {
	case *Synthetic:
		if st.Kind != "synthetic" {
			return fmt.Errorf("trace: source state kind %q does not match *Synthetic", st.Kind)
		}
		if err := s.rng.SkipTo(st.RNGPos); err != nil {
			return err
		}
		s.onLeft, s.now, s.next = st.OnLeft, st.Now, st.Next
		return nil
	case *traceSource:
		if st.Kind != "trace" {
			return fmt.Errorf("trace: source state kind %q does not match trace replay", st.Kind)
		}
		if st.Index < 0 || st.Index > len(s.jobs) {
			return fmt.Errorf("trace: replay cursor %d outside the %d-job trace", st.Index, len(s.jobs))
		}
		s.i = st.Index
		return nil
	case *limited:
		if st.Kind != "limit" || st.Inner == nil {
			return fmt.Errorf("trace: source state kind %q does not match a limited source", st.Kind)
		}
		if st.Left < 0 {
			return fmt.Errorf("trace: limit remainder %d is negative", st.Left)
		}
		s.left = st.Left
		return RestoreSource(s.src, *st.Inner)
	default:
		return fmt.Errorf("trace: cannot restore source type %T", src)
	}
}

// limited caps a Source at n jobs.
type limited struct {
	src  Source
	left int
}

// Limit returns a Source yielding at most n jobs from src.
func Limit(src Source, n int) Source {
	return &limited{src: src, left: n}
}

func (l *limited) Next() (Job, bool) {
	if l.left <= 0 {
		return Job{}, false
	}
	j, ok := l.src.Next()
	if ok {
		l.left--
	}
	return j, ok
}
