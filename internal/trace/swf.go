package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ReadSWF parses a trace in the Standard Workload Format (SWF) used by
// the Parallel Workloads Archive, which distributes the SDSC Paragon
// trace the paper replays. Comment lines start with ';'. Each job line
// has 18 whitespace-separated fields; the reader uses submit time
// (field 2), run time (field 4), and allocated processors (field 5,
// falling back to requested processors, field 8, when allocation was not
// recorded).
//
// Jobs with unknown (-1) or non-positive size or runtime are skipped, as
// is conventional when replaying SWF traces. Jobs are sorted by submit
// time and renumbered; submit times are rebased so the first job arrives
// at 0.
func ReadSWF(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 8 {
			return nil, fmt.Errorf("trace: swf line %d: want >= 8 fields, got %d", line, len(fields))
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad submit time %q", line, fields[1])
		}
		runtime, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad run time %q", line, fields[3])
		}
		procs, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("trace: swf line %d: bad processor count %q", line, fields[4])
		}
		if procs <= 0 {
			if procs, err = strconv.Atoi(fields[7]); err != nil {
				return nil, fmt.Errorf("trace: swf line %d: bad requested processors %q", line, fields[7])
			}
		}
		if procs <= 0 || runtime <= 0 || submit < 0 {
			continue // unknown or cancelled jobs, per SWF convention
		}
		t.Jobs = append(t.Jobs, Job{Arrival: submit, Size: procs, Runtime: runtime})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(t.Jobs, func(i, k int) bool { return t.Jobs[i].Arrival < t.Jobs[k].Arrival })
	if len(t.Jobs) > 0 {
		base := t.Jobs[0].Arrival
		for i := range t.Jobs {
			t.Jobs[i].Arrival -= base
			t.Jobs[i].ID = i
		}
	}
	return t, nil
}
