package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SWFSkip is one line the lenient SWF reader dropped, with the
// 1-based line number and the reason — the diagnostics a silent skip
// would hide.
type SWFSkip struct {
	Line   int
	Reason string
}

// String implements fmt.Stringer.
func (s SWFSkip) String() string {
	return fmt.Sprintf("line %d: %s", s.Line, s.Reason)
}

// ReadSWF parses a trace in the Standard Workload Format (SWF) used by
// the Parallel Workloads Archive, which distributes the SDSC Paragon
// trace the paper replays. Comment lines start with ';'. Each job line
// has 18 whitespace-separated fields; the reader uses submit time
// (field 2), run time (field 4), and allocated processors (field 5,
// falling back to requested processors, field 8, when allocation was not
// recorded).
//
// Malformed lines abort the read with a line-numbered error. Jobs with
// unknown (-1) or non-positive size or runtime are skipped, as is
// conventional when replaying SWF traces. Jobs are sorted by submit
// time and renumbered; submit times are rebased so the first job
// arrives at 0.
func ReadSWF(r io.Reader) (*Trace, error) {
	t, _, err := readSWF(r, false)
	return t, err
}

// ReadSWFLenient parses SWF like ReadSWF but tolerates malformed job
// lines: instead of aborting, every dropped line — malformed or
// skipped by the unknown/cancelled-job convention — is reported as a
// line-numbered SWFSkip. The error is non-nil only for I/O failures,
// so archive files with stray garbage still replay, with an exact
// record of what was ignored.
func ReadSWFLenient(r io.Reader) (*Trace, []SWFSkip, error) {
	return readSWF(r, true)
}

// readSWF is the shared scanner under both entry points. In strict
// mode a malformed line returns an error; in lenient mode it becomes a
// diagnostic and the scan continues.
func readSWF(r io.Reader, lenient bool) (*Trace, []SWFSkip, error) {
	t := &Trace{}
	var skips []SWFSkip
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		j, reason := parseSWFLine(text)
		if reason != "" {
			malformed := !strings.HasPrefix(reason, "skipped")
			if malformed && !lenient {
				return nil, nil, fmt.Errorf("trace: swf line %d: %s", line, reason)
			}
			if lenient {
				skips = append(skips, SWFSkip{Line: line, Reason: reason})
			}
			continue
		}
		t.Jobs = append(t.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	sort.SliceStable(t.Jobs, func(i, k int) bool { return t.Jobs[i].Arrival < t.Jobs[k].Arrival })
	if len(t.Jobs) > 0 {
		base := t.Jobs[0].Arrival
		for i := range t.Jobs {
			t.Jobs[i].Arrival -= base
			t.Jobs[i].ID = i
		}
	}
	return t, skips, nil
}

// parseSWFLine parses one non-comment SWF line into a job. A non-empty
// reason means the line carries no job: reasons starting with
// "skipped" are the conventional unknown/cancelled-job skips (never an
// error), everything else is a malformed line.
func parseSWFLine(text string) (Job, string) {
	fields := strings.Fields(text)
	if len(fields) < 8 {
		return Job{}, fmt.Sprintf("want >= 8 fields, got %d", len(fields))
	}
	submit, err := strconv.ParseFloat(fields[1], 64)
	if err != nil || math.IsNaN(submit) || math.IsInf(submit, 0) {
		return Job{}, fmt.Sprintf("bad submit time %q", fields[1])
	}
	runtime, err := strconv.ParseFloat(fields[3], 64)
	if err != nil || math.IsNaN(runtime) || math.IsInf(runtime, 0) {
		return Job{}, fmt.Sprintf("bad run time %q", fields[3])
	}
	procs, err := strconv.Atoi(fields[4])
	if err != nil {
		return Job{}, fmt.Sprintf("bad processor count %q", fields[4])
	}
	if procs <= 0 {
		if procs, err = strconv.Atoi(fields[7]); err != nil {
			return Job{}, fmt.Sprintf("bad requested processors %q", fields[7])
		}
	}
	if procs <= 0 || runtime <= 0 || submit < 0 {
		return Job{}, "skipped unknown or cancelled job" // per SWF convention
	}
	return Job{Arrival: submit, Size: procs, Runtime: runtime}, ""
}
