package trace

import (
	"math"
	"testing"
)

func TestTraceSourceReplaysInOrder(t *testing.T) {
	tr := NewSDSC(SDSCConfig{Jobs: 50, MaxSize: 64, Seed: 3})
	src := tr.Source()
	for i, want := range tr.Jobs {
		j, ok := src.Next()
		if !ok {
			t.Fatalf("source exhausted at %d", i)
		}
		if j != want {
			t.Fatalf("job %d: %+v, want %+v", i, j, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source should be exhausted")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source must stay exhausted")
	}
}

func TestPoissonSourceStatistics(t *testing.T) {
	const mean = 500.0
	src := NewPoisson(mean, 64, 1)
	var last float64
	var inter []float64
	n := 20000
	for i := 0; i < n; i++ {
		j, ok := src.Next()
		if !ok {
			t.Fatal("synthetic source must not exhaust")
		}
		if j.ID != i {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if j.Arrival < last {
			t.Fatalf("arrivals not nondecreasing: %g after %g", j.Arrival, last)
		}
		if j.Size < 1 || j.Size > 64 {
			t.Fatalf("size %d outside [1,64]", j.Size)
		}
		if j.Runtime < 30 || j.Runtime > 172800 {
			t.Fatalf("runtime %g outside clamp", j.Runtime)
		}
		inter = append(inter, j.Arrival-last)
		last = j.Arrival
	}
	// Poisson: mean interarrival near the configured mean, CV near 1.
	m, s := meanStd(inter)
	if math.Abs(m-mean)/mean > 0.05 {
		t.Fatalf("mean interarrival %g, want ~%g", m, mean)
	}
	if cv := s / m; math.Abs(cv-1) > 0.1 {
		t.Fatalf("interarrival CV %g, want ~1 (exponential)", cv)
	}
}

// TestBurstySourceBurstier pins the point of the on/off process: at the
// same long-run arrival rate, interarrivals are burstier (higher CV)
// than Poisson, because arrivals cluster inside ON periods.
func TestBurstySourceBurstier(t *testing.T) {
	src := NewBursty(200, 3600, 7200, 64, 1)
	var last float64
	var inter []float64
	for i := 0; i < 20000; i++ {
		j, ok := src.Next()
		if !ok {
			t.Fatal("bursty source must not exhaust")
		}
		if j.Arrival < last {
			t.Fatalf("arrivals not nondecreasing at %d", i)
		}
		inter = append(inter, j.Arrival-last)
		last = j.Arrival
	}
	m, s := meanStd(inter)
	// Long-run mean interarrival = 200 * (3600+7200)/3600 = 600.
	if math.Abs(m-600)/600 > 0.15 {
		t.Fatalf("long-run mean interarrival %g, want ~600", m)
	}
	if cv := s / m; cv < 1.3 {
		t.Fatalf("bursty CV %g, want well above Poisson's 1", cv)
	}
}

func TestLimitCapsSource(t *testing.T) {
	src := Limit(NewPoisson(100, 64, 1), 7)
	count := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		count++
		if count > 7 {
			t.Fatal("Limit did not cap the stream")
		}
	}
	if count != 7 {
		t.Fatalf("yielded %d jobs, want 7", count)
	}
	// A Limit over an already-short stream passes exhaustion through.
	tr := &Trace{Jobs: []Job{{ID: 0, Size: 1, Runtime: 30}}}
	src = Limit(tr.Source(), 5)
	if _, ok := src.Next(); !ok {
		t.Fatal("first job missing")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("underlying exhaustion not passed through")
	}
}

func TestSourceConstructorsValidate(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("poisson", func() { NewPoisson(0, 64, 1) })
	mustPanic("bursty inter", func() { NewBursty(0, 10, 10, 64, 1) })
	mustPanic("bursty on", func() { NewBursty(10, 0, 10, 64, 1) })
	mustPanic("bursty off", func() { NewBursty(10, 10, -1, 64, 1) })
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
