package sim

import (
	"math"
	"testing"

	"meshalloc/internal/trace"
)

// Batch-dispatch equivalence: the FCFS batch path (scheduleFCFSBatch
// over a BatchAllocator, fed by same-timestamp arrival draining) must
// produce bit-identical simulations to the one-at-a-time dispatch loop,
// on workloads dense with simultaneous arrivals and at several candidate
// -scan worker counts.

// burstTrace derives a trace whose arrivals are quantized onto a coarse
// clock so many jobs share exact timestamps — the workload the batch
// dispatch exists for.
func burstTrace(jobs, maxSize int, quantum float64) *trace.Trace {
	tr := trace.NewSDSC(trace.SDSCConfig{Jobs: jobs, MaxSize: maxSize, Seed: 1}).
		FilterMaxSize(maxSize).Clone()
	for i := range tr.Jobs {
		tr.Jobs[i].Arrival = math.Floor(tr.Jobs[i].Arrival/quantum) * quantum
	}
	return tr
}

// runDigest replays tr on a fresh engine, optionally with the batch
// dispatch disabled, and digests the full result.
func runDigest(t *testing.T, cfg Config, tr *trace.Trace, batch bool) string {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !batch {
		e.batcher = nil
	} else if e.batcher == nil {
		t.Fatalf("allocator %q does not batch-allocate", cfg.Alloc)
	}
	for _, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if e.Deadlocked() {
		t.Fatalf("deadlocked with %d queued", e.Pending())
	}
	return goldenDigest(e.Result())
}

// TestBatchDispatchEquivalence compares batch-on and batch-off runs for
// every batch-capable allocator family on a burst-heavy workload.
func TestBatchDispatchEquivalence(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"hilbert-bestfit", Config{MeshW: 16, MeshH: 16, Alloc: "hilbert/bestfit", Pattern: "alltoall",
			Load: 0.4, TimeScale: 0.01, Seed: 1}},
		{"hilbert-firstfit", Config{MeshW: 16, MeshH: 16, Alloc: "hilbert/firstfit", Pattern: "alltoall",
			Load: 0.4, TimeScale: 0.01, Seed: 1}},
		{"mc", Config{MeshW: 16, MeshH: 16, Alloc: "mc", Pattern: "nbody",
			Load: 0.4, TimeScale: 0.01, Seed: 1}},
		{"mc1x1", Config{MeshW: 16, MeshH: 16, Alloc: "mc1x1", Pattern: "nbody",
			Load: 0.4, TimeScale: 0.01, Seed: 1}},
		{"genalg", Config{MeshW: 16, MeshH: 16, Alloc: "genalg", Pattern: "nbody",
			Load: 0.4, TimeScale: 0.01, Seed: 1}},
		{"random", Config{MeshW: 16, MeshH: 16, Alloc: "random", Pattern: "alltoall",
			Load: 0.4, TimeScale: 0.01, Seed: 1}},
		{"mc-3d", Config{Dims: []int{8, 8, 8}, Alloc: "mc", Pattern: "nbody",
			Load: 0.2, TimeScale: 0.01, Seed: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			size := 256
			if tc.cfg.Dims != nil {
				size = 512
			}
			tr := burstTrace(120, size, 500)
			want := runDigest(t, tc.cfg, tr, false)
			if got := runDigest(t, tc.cfg, tr, true); got != want {
				t.Fatalf("batch dispatch digest %s, want sequential %s", got, want)
			}
		})
	}
}

// TestBatchDispatchWorkerInvariance crosses the batch dispatch with the
// parallel candidate scan: digests must agree with the sequential
// non-batch run at every worker count.
func TestBatchDispatchWorkerInvariance(t *testing.T) {
	cfg := Config{MeshW: 16, MeshH: 16, Alloc: "mc", Pattern: "alltoall",
		Load: 0.4, TimeScale: 0.01, Seed: 1}
	tr := burstTrace(120, 256, 500)
	want := runDigest(t, cfg, tr, false)
	for _, workers := range []int{1, 2, 4, 7} {
		c := cfg
		c.AllocWorkers = workers
		if got := runDigest(t, c, tr, true); got != want {
			t.Fatalf("workers=%d batch digest %s, want %s", workers, got, want)
		}
	}
}

// TestBatchDispatchNonFCFSUntouched pins that a batch-capable allocator
// under a queue-inspecting policy (SJF considers every pending job, so
// batching the head prefix would change its decisions) takes the
// one-at-a-time path: digests match with the batcher nulled out.
func TestBatchDispatchNonFCFSUntouched(t *testing.T) {
	cfg := Config{MeshW: 16, MeshH: 16, Alloc: "hilbert/bestfit", Pattern: "alltoall",
		Load: 0.4, TimeScale: 0.01, Seed: 1, Scheduler: "sjf"}
	tr := burstTrace(100, 256, 500)
	want := runDigest(t, cfg, tr, false)
	if got := runDigest(t, cfg, tr, true); got != want {
		t.Fatalf("non-FCFS batch digest %s, want %s", got, want)
	}
}

// TestDeltaObserverMirrorsOccupancy rebuilds the machine's free count
// purely from delta events and checks it tracks the allocator at every
// change, and that allocate/release deltas balance by the end.
func TestDeltaObserverMirrorsOccupancy(t *testing.T) {
	cfg := Config{MeshW: 16, MeshH: 16, Alloc: "hilbert/bestfit", Pattern: "alltoall",
		Load: 0.4, TimeScale: 0.01, Seed: 1}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	busy := make([]bool, e.MachineSize())
	numBusy, allocs, releases := 0, 0, 0
	lastT := math.Inf(-1)
	e.ObserveDeltas(func(now float64, ids []int, allocated bool) {
		if now < lastT {
			t.Fatalf("delta time went backwards: %v after %v", now, lastT)
		}
		lastT = now
		for _, id := range ids {
			if allocated {
				if busy[id] {
					t.Fatalf("allocate delta for already-busy node %d", id)
				}
				busy[id] = true
				numBusy++
			} else {
				if !busy[id] {
					t.Fatalf("release delta for free node %d", id)
				}
				busy[id] = false
				numBusy--
			}
		}
		if allocated {
			allocs++
		} else {
			releases++
		}
		// During a batch the allocator runs ahead of the per-job deltas
		// (AllocateBatch serves the whole prefix before the jobs start),
		// so instantaneous agreement is only guaranteed at releases,
		// which never interleave with a dispatch round.
		if !allocated && e.MachineSize()-numBusy != e.NumFree() {
			t.Fatalf("delta mirror says %d free, allocator says %d",
				e.MachineSize()-numBusy, e.NumFree())
		}
	})
	tr := burstTrace(100, 256, 500)
	for _, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if numBusy != 0 {
		t.Fatalf("%d nodes still busy after drain", numBusy)
	}
	if allocs != releases || allocs != e.Finished() {
		t.Fatalf("%d allocate deltas, %d release deltas, %d finished jobs",
			allocs, releases, e.Finished())
	}
}
