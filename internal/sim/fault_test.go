package sim

import (
	"errors"
	"testing"

	"meshalloc/internal/fault"
	"meshalloc/internal/trace"
)

// faultTrace builds a small closed-system workload for fault runs.
func faultTrace(jobs, maxSize int) *trace.Trace {
	return trace.NewSDSC(trace.SDSCConfig{Jobs: jobs, MaxSize: maxSize, Seed: 1}).
		FilterMaxSize(maxSize)
}

// TestFaultScriptKillAndRetry: a scripted failure under a running job
// kills it, the retry policy restarts it, and it completes on the
// repaired machine. Every fault counter must line up.
func TestFaultScriptKillAndRetry(t *testing.T) {
	cfg := Config{
		MeshW: 8, MeshH: 8,
		Alloc: "hilbert/bestfit", Pattern: "nbody", Seed: 1,
		Faults: fault.Config{Script: []fault.Event{
			{T: 5, Node: 0, Kind: fault.NodeDown},
			{T: 6, Node: 0, Kind: fault.NodeUp},
		}},
		Retry: fault.Retry{Kind: fault.RetryImmediate},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One 64-processor job: it must occupy node 0, so the scripted
	// failure is guaranteed to hit it mid-run.
	if err := e.Submit(trace.Job{ID: 1, Arrival: 0, Runtime: 100, Size: 64}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if e.Deadlocked() {
		t.Fatal("deadlocked")
	}
	res := e.Result()
	if res.Killed != 1 || res.Retried != 1 || res.GivenUp != 0 {
		t.Fatalf("killed/retried/givenup = %d/%d/%d, want 1/1/0", res.Killed, res.Retried, res.GivenUp)
	}
	if res.Jobs != 1 {
		t.Fatalf("finished %d jobs, want 1", res.Jobs)
	}
	if res.WastedPct <= 0 || res.WastedPct >= 100 {
		t.Fatalf("WastedPct = %v, want in (0,100)", res.WastedPct)
	}
	if res.DownPct <= 0 {
		t.Fatalf("DownPct = %v, want > 0", res.DownPct)
	}
	if res.GoodputPct <= 0 || res.GoodputPct >= res.UtilizationPct {
		t.Fatalf("GoodputPct = %v, want in (0, util=%v)", res.GoodputPct, res.UtilizationPct)
	}
	// The sole record must describe the restarted attempt: killed at 5,
	// and a 64-processor job cannot restart before the repair at 6 —
	// while Response still spans back to the original arrival at 0.
	if r := res.Records[0]; r.Start < 6 || r.Response < r.Finish {
		t.Fatalf("record start=%v finish=%v response=%v does not span the retry",
			r.Start, r.Finish, r.Response)
	}
}

// TestFaultGiveUp: with retries disabled the killed job is abandoned
// and the run still terminates cleanly.
func TestFaultGiveUp(t *testing.T) {
	cfg := Config{
		MeshW: 8, MeshH: 8,
		Alloc: "mc1x1", Pattern: "nbody", Seed: 1,
		Faults: fault.Config{Script: []fault.Event{
			{T: 5, Node: 0, Kind: fault.NodeDown},
		}},
		Retry: fault.Retry{Kind: fault.RetryNone},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(trace.Job{ID: 1, Arrival: 0, Runtime: 100, Size: 64}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	res := e.Result()
	if res.Killed != 1 || res.Retried != 0 || res.GivenUp != 1 {
		t.Fatalf("killed/retried/givenup = %d/%d/%d, want 1/0/1", res.Killed, res.Retried, res.GivenUp)
	}
	if res.Jobs != 0 {
		t.Fatalf("finished %d jobs, want 0", res.Jobs)
	}
	if e.Deadlocked() {
		t.Fatal("an abandoned job must not read as deadlock")
	}
}

// TestFaultMaxAttempts: a node that fails permanently at each restart
// exhausts the attempt bound. Node 0 goes down before arrival and
// never recovers, so a full-machine job can never start; a half-size
// job placed away from node 0 still runs.
func TestFaultMaxAttempts(t *testing.T) {
	cfg := Config{
		MeshW: 4, MeshH: 4,
		Alloc: "hilbert/bestfit", Pattern: "nbody", Seed: 1,
		Faults: fault.Config{Script: []fault.Event{
			{T: 1, Node: 2, Kind: fault.NodeDown},
			{T: 2, Node: 2, Kind: fault.NodeUp},
			{T: 3, Node: 3, Kind: fault.NodeDown},
			{T: 4, Node: 3, Kind: fault.NodeUp},
			{T: 5, Node: 5, Kind: fault.NodeDown},
			{T: 6, Node: 5, Kind: fault.NodeUp},
		}},
		Retry: fault.Retry{Kind: fault.RetryImmediate, MaxAttempts: 2},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(trace.Job{ID: 7, Arrival: 0, Runtime: 50, Size: 16}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	res := e.Result()
	if res.Killed != 3 || res.Retried != 2 || res.GivenUp != 1 {
		t.Fatalf("killed/retried/givenup = %d/%d/%d, want 3/2/1", res.Killed, res.Retried, res.GivenUp)
	}
	if res.Jobs != 0 {
		t.Fatalf("finished %d jobs, want 0", res.Jobs)
	}
}

// TestFaultMaskExcludesDownNodes: a node failed before any arrival
// must appear in no allocation, and a repaired node becomes placeable
// again.
func TestFaultMaskExcludesDownNodes(t *testing.T) {
	for _, spec := range []string{"hilbert/bestfit", "scurve", "mc", "mc1x1", "genalg", "random"} {
		t.Run(spec, func(t *testing.T) {
			cfg := Config{
				MeshW: 8, MeshH: 8,
				Alloc: spec, Pattern: "nbody", Seed: 1,
				Faults: fault.Config{Script: []fault.Event{
					{T: 0, Node: 27, Kind: fault.NodeDown},
					{T: 1000000, Node: 27, Kind: fault.NodeUp},
				}},
			}
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			e.Observe(func(r JobRecord) {
				if r.Finish <= 1000000 {
					for _, id := range r.Nodes {
						if id == 27 {
							t.Errorf("job %d allocated on downed node 27", r.ID)
						}
					}
				}
			})
			for _, j := range faultTrace(120, 63).Jobs {
				if err := e.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			// A 63-processor job (machine size minus the downed node)
			// must still be placeable: the mask leaves 63 free.
			e.Drain()
			if e.Deadlocked() {
				t.Fatal("deadlocked")
			}
			if e.Result().Jobs != 120 {
				t.Fatalf("finished %d, want 120", e.Result().Jobs)
			}
		})
	}
}

// TestFaultDrainLetsJobsFinish: draining an occupied node does not
// kill its job; the node is masked at the job's release and admits no
// new work until undrained.
func TestFaultDrainLetsJobsFinish(t *testing.T) {
	cfg := Config{
		MeshW: 4, MeshH: 4,
		Alloc: "hilbert/bestfit", Pattern: "nbody", Seed: 1,
		Faults: fault.Config{Script: []fault.Event{
			{T: 5, Node: 0, Kind: fault.NodeDrain},
		}},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(trace.Job{ID: 1, Arrival: 0, Runtime: 50, Size: 16}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	res := e.Result()
	if res.Killed != 0 || res.Jobs != 1 {
		t.Fatalf("killed=%d jobs=%d, want 0 kills and 1 finish", res.Killed, res.Jobs)
	}
	if free := e.NumFree(); free != 15 {
		t.Fatalf("NumFree after drain = %d, want 15 (node 0 masked)", free)
	}
}

// TestOversizeTypedError: Submit rejects impossible jobs with an
// *OversizeError matching the ErrOversize sentinel — fail fast instead
// of deadlocking at Drain.
func TestOversizeTypedError(t *testing.T) {
	e, err := NewEngine(Config{MeshW: 4, MeshH: 4, Alloc: "hilbert/bestfit", Pattern: "nbody"})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Submit(trace.Job{ID: 9, Arrival: 0, Runtime: 1, Size: 17})
	if err == nil {
		t.Fatal("oversize job accepted")
	}
	if !errors.Is(err, ErrOversize) {
		t.Fatalf("error %v does not match ErrOversize", err)
	}
	var oe *OversizeError
	if !errors.As(err, &oe) || oe.ID != 9 || oe.Size != 17 || oe.Capacity != 16 || oe.Strict {
		t.Fatalf("unexpected OversizeError %+v", oe)
	}
}

// TestStrictCapacitySubmit: with StrictCapacity, Submit also rejects
// jobs larger than the currently available node count.
func TestStrictCapacitySubmit(t *testing.T) {
	cfg := Config{
		MeshW: 4, MeshH: 4,
		Alloc: "hilbert/bestfit", Pattern: "nbody", Seed: 1,
		Faults: fault.Config{
			StrictCapacity: true,
			Script: []fault.Event{
				{T: 0, Node: 1, Kind: fault.NodeDown},
				{T: 0, Node: 2, Kind: fault.NodeDrain},
			},
		},
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(1)
	err = e.Submit(trace.Job{ID: 3, Arrival: 1, Runtime: 1, Size: 15})
	if err == nil {
		t.Fatal("job above available capacity accepted under StrictCapacity")
	}
	var oe *OversizeError
	if !errors.As(err, &oe) || !oe.Strict || oe.Capacity != 14 {
		t.Fatalf("unexpected error %v", err)
	}
	if err := e.Submit(trace.Job{ID: 4, Arrival: 1, Runtime: 1, Size: 14}); err != nil {
		t.Fatalf("job at available capacity rejected: %v", err)
	}
	e.Drain()
}

// TestFaultAllocatorGate: allocators that cannot mask nodes are
// rejected at construction, not at the first failure. Submesh can mask
// (its row bitmasks treat a downed node like a busy one), so it passes
// the gate; buddy's power-of-two block ledger and the paged free list
// cannot represent a single dead node and stay gated.
func TestFaultAllocatorGate(t *testing.T) {
	for _, spec := range []string{"buddy", "hilbert/freelist/page1"} {
		cfg := Config{
			MeshW: 8, MeshH: 8,
			Alloc: spec, Pattern: "nbody",
			Faults: fault.Config{MTBF: fault.Dist{Kind: fault.DistExponential, Mean: 100}},
		}
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("allocator %s accepted under fault injection", spec)
		}
		cfg.Faults = fault.Config{}
		if _, err := NewEngine(cfg); err != nil {
			t.Errorf("allocator %s rejected without faults: %v", spec, err)
		}
	}
	// Submesh is fault-aware: construction must succeed.
	if _, err := NewEngine(Config{
		MeshW: 8, MeshH: 8,
		Alloc: "submesh", Pattern: "nbody",
		Faults: fault.Config{MTBF: fault.Dist{Kind: fault.DistExponential, Mean: 100}},
	}); err != nil {
		t.Errorf("submesh rejected under fault injection: %v", err)
	}
}

// faultyCfg is the random-failure configuration the determinism suites
// share: exponential failures dense enough to kill jobs, quick
// repairs, and a bounded retry policy so the run terminates even if a
// long job keeps getting unlucky.
func faultyCfg(alloc string, workers int) Config {
	return Config{
		MeshW: 8, MeshH: 8,
		Alloc: alloc, Pattern: "nbody",
		Load: 0.4, TimeScale: 0.01, Seed: 1,
		AllocWorkers: workers,
		Faults: fault.Config{
			MTBF: fault.Dist{Kind: fault.DistExponential, Mean: 300000},
			MTTR: fault.Dist{Kind: fault.DistExponential, Mean: 10000},
		},
		Retry: fault.Retry{Kind: fault.RetryBackoff, Base: 60, Cap: 3600, MaxAttempts: 4},
	}
}

// TestFaultRunDeterministic: a fault-injected closed run is a pure
// function of its config — same digest run to run and at any allocator
// worker count — and it actually exercises the fault path.
func TestFaultRunDeterministic(t *testing.T) {
	for _, spec := range []string{"hilbert/bestfit", "mc1x1", "genalg"} {
		t.Run(spec, func(t *testing.T) {
			tr := faultTrace(150, 32)
			base, err := Run(faultyCfg(spec, 0), tr)
			if err != nil {
				t.Fatal(err)
			}
			if base.Killed == 0 {
				t.Fatalf("workload too calm: no kills (makespan %v, down %v%%)", base.Makespan, base.DownPct)
			}
			want := goldenDigest(base)
			for _, workers := range []int{1, 4} {
				res, err := Run(faultyCfg(spec, workers), tr)
				if err != nil {
					t.Fatal(err)
				}
				if got := goldenDigest(res); got != want {
					t.Fatalf("workers=%d digest %s, want %s", workers, got, want)
				}
				if res.Killed != base.Killed || res.Retried != base.Retried || res.GivenUp != base.GivenUp {
					t.Fatalf("workers=%d fault counters diverge", workers)
				}
			}
		})
	}
}

// TestFaultRunAcrossEventCoreToggles: a fault-injected run — kills,
// retries, mask/unmask churn and all — produces one digest across the
// whole event-core matrix: {calendar, heap} queue × {incremental,
// rebuild} scheduler state × {counted, naive} metrics. Fault events
// stress exactly the paths the fault-free goldens cannot (the
// fault-first tie rule against the queue head, watermark invalidation
// on mask/unmask, dead-handle recycling through the queue).
func TestFaultRunAcrossEventCoreToggles(t *testing.T) {
	for _, spec := range []string{"hilbert/bestfit", "mc1x1"} {
		t.Run(spec, func(t *testing.T) {
			tr := faultTrace(150, 32)
			base, err := Run(faultyCfg(spec, 0), tr)
			if err != nil {
				t.Fatal(err)
			}
			if base.Killed == 0 {
				t.Fatalf("workload too calm: no kills")
			}
			want := goldenDigest(base)
			for _, equeue := range []string{"calendar", "heap"} {
				for _, rebuild := range []bool{false, true} {
					for _, naive := range []bool{false, true} {
						cfg := faultyCfg(spec, 0)
						cfg.EventQueue = equeue
						cfg.RebuildSched = rebuild
						cfg.NaiveMetrics = naive
						res, err := Run(cfg, tr)
						if err != nil {
							t.Fatal(err)
						}
						if got := goldenDigest(res); got != want {
							t.Fatalf("%s/rebuild=%v/naive=%v digest %s, want %s",
								equeue, rebuild, naive, got, want)
						}
						if res.Killed != base.Killed || res.Retried != base.Retried || res.GivenUp != base.GivenUp {
							t.Fatalf("%s/rebuild=%v/naive=%v fault counters diverge", equeue, rebuild, naive)
						}
					}
				}
			}
		})
	}
}

// TestFaultsDisabledMatchesGolden: an explicitly zero fault config
// must reproduce every pinned golden digest — the fault-free path is
// bit-identical to the pre-fault engine.
func TestFaultsDisabledMatchesGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Faults = fault.Config{}
			cfg.Retry = fault.Retry{}
			tr := trace.NewSDSC(trace.SDSCConfig{Jobs: tc.jobs, MaxSize: tc.max, Seed: 1}).
				FilterMaxSize(tc.max)
			res, err := Run(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if got := goldenDigest(res); got != tc.digest {
				t.Fatalf("digest %s, want %s", got, tc.digest)
			}
		})
	}
}

// TestFaultDeltaMirror: delta observers see mask/unmask transitions as
// allocate/release deltas, so an external mirror of the free count
// stays in lockstep with the allocator through a faulty run. As in
// TestDeltaObserverMirrorsOccupancy, batch dispatch lets the allocator
// run ahead of the per-job allocate deltas, so instantaneous agreement
// is only checked at releases (which mask/unmask events also are) and
// at the end of the run.
func TestFaultDeltaMirror(t *testing.T) {
	cfg := faultyCfg("hilbert/bestfit", 0)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	free := e.MachineSize()
	bad := false
	e.ObserveDeltas(func(now float64, ids []int, allocated bool) {
		if allocated {
			free -= len(ids)
		} else {
			free += len(ids)
			if free != e.NumFree() {
				bad = true
			}
		}
	})
	for _, j := range faultTrace(150, 32).Jobs {
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if bad {
		t.Fatal("delta mirror diverged from allocator free count at a release")
	}
	if free != e.NumFree() {
		t.Fatalf("final mirror %d != NumFree %d", free, e.NumFree())
	}
	if e.Result().Killed == 0 {
		t.Fatal("workload too calm: no kills")
	}
}
