package sim

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"meshalloc/internal/snap"
	"meshalloc/internal/trace"
)

// resumeCases are the configurations the crash-resume equivalence suite
// runs: each exercises a different slice of snapshot state — the
// schedule-driven patterns, the engine RNG (random pattern), allocator
// aux state (NextFit cursor, the random allocator's RNG position), the
// EASY scheduler's running index, and active fault injection with
// retry/backoff bookkeeping and per-node failure clocks.
var resumeCases = []struct {
	name string
	cfg  Config
	tr   func() *trace.Trace
}{
	{
		name: "hilbert-alltoall",
		cfg: Config{MeshW: 16, MeshH: 22, Alloc: "hilbert/bestfit", Pattern: "alltoall",
			Load: 0.2, TimeScale: 0.01, Seed: 1},
		tr: func() *trace.Trace {
			return trace.NewSDSC(trace.SDSCConfig{Jobs: 120, MaxSize: 352, Seed: 1}).FilterMaxSize(352)
		},
	},
	{
		name: "random-pattern-random-alloc",
		cfg: Config{MeshW: 16, MeshH: 16, Alloc: "random", Pattern: "random",
			Load: 0.4, TimeScale: 0.01, Seed: 7},
		tr: func() *trace.Trace {
			return trace.NewSDSC(trace.SDSCConfig{Jobs: 120, MaxSize: 256, Seed: 2}).FilterMaxSize(256)
		},
	},
	{
		name: "easy-nextfit",
		cfg: Config{MeshW: 16, MeshH: 16, Alloc: "hilbert/nextfit", Pattern: "nbody",
			Load: 0.4, TimeScale: 0.01, Seed: 1, Scheduler: "easy"},
		tr: func() *trace.Trace {
			return trace.NewSDSC(trace.SDSCConfig{Jobs: 120, MaxSize: 256, Seed: 3}).FilterMaxSize(256)
		},
	},
	{
		name: "faulty-mc1x1",
		cfg:  faultyCfg("mc1x1", 0),
		tr:   func() *trace.Trace { return faultTrace(150, 32) },
	},
}

// snapshotAt submits the whole trace, steps exactly n events, and
// returns the engine's snapshot.
func snapshotAt(t *testing.T, cfg Config, tr *trace.Trace, n int) []byte {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if !e.Step() {
			t.Fatalf("engine exhausted after %d of %d events", i, n)
		}
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// countEvents runs cfg over tr to completion and returns the total
// number of Step calls that processed an event.
func countEvents(t *testing.T, cfg Config, tr *trace.Trace) int {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// TestSnapshotResumeGoldenEquivalence is the crash-safety contract:
// snapshot at an interior event count, throw the engine away, restore
// from the bytes, run to completion — and require the bit-identical
// golden digest of the run that never stopped. Three interior points ×
// both event-queue implementations × every resume case, including
// active fault injection.
func TestSnapshotResumeGoldenEquivalence(t *testing.T) {
	for _, tc := range resumeCases {
		for _, equeue := range []string{"calendar", "heap"} {
			cfg := tc.cfg
			cfg.EventQueue = equeue
			tr := tc.tr()
			res, err := Run(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			want := goldenDigest(res)
			total := countEvents(t, cfg, tr)
			for _, n := range []int{total / 4, total / 2, 3 * total / 4} {
				name := fmt.Sprintf("%s/%s/at=%d", tc.name, equeue, n)
				t.Run(name, func(t *testing.T) {
					blob := snapshotAt(t, cfg, tr, n)
					e, err := RestoreEngine(bytes.NewReader(blob), cfg)
					if err != nil {
						t.Fatal(err)
					}
					e.Drain()
					if e.Deadlocked() {
						t.Fatal("restored run deadlocked")
					}
					if err := e.Audit(); err != nil {
						t.Fatalf("post-drain audit: %v", err)
					}
					if got := goldenDigest(e.Result()); got != want {
						t.Fatalf("resumed digest %s, want %s (resume is not bit-identical)", got, want)
					}
				})
			}
		}
	}
}

// TestSnapshotResumeAcrossQueueImplementations: the snapshot is queue-
// agnostic — a calendar-queue run restored into a heap engine (and vice
// versa) still reproduces the uninterrupted digest, because EventQueue
// is excluded from the config fingerprint and events re-sort by (t, seq).
func TestSnapshotResumeAcrossQueueImplementations(t *testing.T) {
	tc := resumeCases[0]
	tr := tc.tr()
	res, err := Run(tc.cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenDigest(res)
	total := countEvents(t, tc.cfg, tr)
	for _, dir := range []struct{ from, to string }{{"calendar", "heap"}, {"heap", "calendar"}} {
		t.Run(dir.from+"-to-"+dir.to, func(t *testing.T) {
			cfgFrom, cfgTo := tc.cfg, tc.cfg
			cfgFrom.EventQueue = dir.from
			cfgTo.EventQueue = dir.to
			blob := snapshotAt(t, cfgFrom, tr, total/2)
			e, err := RestoreEngine(bytes.NewReader(blob), cfgTo)
			if err != nil {
				t.Fatal(err)
			}
			e.Drain()
			if got := goldenDigest(e.Result()); got != want {
				t.Fatalf("cross-queue resume digest %s, want %s", got, want)
			}
		})
	}
}

// TestSnapshotResumeOpenSystem covers the RunSource path: checkpoint
// mid-stream via the SetCheckpoint hook (including the held-job window
// while the clock advances toward a pulled arrival), restore engine and
// source, and require the streamed records to match the uninterrupted
// run record for record.
func TestSnapshotResumeOpenSystem(t *testing.T) {
	cfg := Config{MeshW: 8, MeshH: 8, Alloc: "hilbert/bestfit", Pattern: "nbody",
		TimeScale: 0.01, Seed: 5, KeepRecords: Discard, KeepNodes: Discard}
	const jobs = 200
	mkSource := func() trace.Source {
		return trace.Limit(trace.NewPoisson(40, 32, 5), jobs)
	}
	collect := func(e *Engine) *[]JobRecord {
		out := &[]JobRecord{}
		e.Observe(func(r JobRecord) { *out = append(*out, r) })
		return out
	}

	// Uninterrupted reference.
	ref, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRecs := collect(ref)
	if err := ref.RunSource(mkSource(), 0); err != nil {
		t.Fatal(err)
	}

	// Checkpointed run: snapshot engine + source every 512 events, stop
	// the run by abandoning it after enough checkpoints have fired.
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	collect(e)
	src := mkSource()
	var blob bytes.Buffer
	var srcState trace.SourceState
	ckpts := 0
	e.SetCheckpoint(512, func() {
		st, err := trace.CaptureSource(src)
		if err != nil {
			t.Fatal(err)
		}
		blob.Reset()
		if err := e.Snapshot(&blob); err != nil {
			t.Fatal(err)
		}
		srcState, ckpts = st, ckpts+1
	})
	if err := e.RunSource(src, 0); err != nil {
		t.Fatal(err)
	}
	if ckpts == 0 {
		t.Fatal("no checkpoint fired; lower the interval")
	}

	// Resume from the last checkpoint and finish.
	e2, err := RestoreEngine(bytes.NewReader(blob.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(e2)
	src2 := mkSource()
	if err := trace.RestoreSource(src2, srcState); err != nil {
		t.Fatal(err)
	}
	if err := e2.RunSource(src2, 0); err != nil {
		t.Fatal(err)
	}

	// The resumed run must emit exactly the reference records it had not
	// yet emitted at checkpoint time.
	all := *refRecs
	got := *recs
	if len(got) > len(all) {
		t.Fatalf("resumed run emitted %d records, reference %d", len(got), len(all))
	}
	tail := all[len(all)-len(got):]
	for i := range got {
		if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", tail[i]) {
			t.Fatalf("record %d diverged:\n  resumed %+v\n  reference %+v", i, got[i], tail[i])
		}
	}
	if got, want := goldenDigest(e2.Result()), goldenDigest(ref.Result()); got != want {
		t.Fatalf("resumed aggregate digest %s, want %s", got, want)
	}
}

// TestRestoreConfigMismatch: restoring under a semantically different
// config is refused with ErrConfigMismatch, while outcome-neutral
// fields may differ freely.
func TestRestoreConfigMismatch(t *testing.T) {
	tc := resumeCases[0]
	tr := tc.tr()
	blob := snapshotAt(t, tc.cfg, tr, 50)

	bad := tc.cfg
	bad.Seed = 99
	if _, err := RestoreEngine(bytes.NewReader(blob), bad); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("seed change: got %v, want ErrConfigMismatch", err)
	}
	bad = tc.cfg
	bad.Alloc = "mc1x1"
	if _, err := RestoreEngine(bytes.NewReader(blob), bad); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("alloc change: got %v, want ErrConfigMismatch", err)
	}
	ok := tc.cfg
	ok.EventQueue = "heap"
	ok.AllocWorkers = 4
	ok.RebuildSched = true
	ok.AuditEvery = 10
	if _, err := RestoreEngine(bytes.NewReader(blob), ok); err != nil {
		t.Fatalf("outcome-neutral changes rejected: %v", err)
	}
}

// TestRestoreRejectsDamage: truncations and bit flips anywhere in the
// blob are rejected with a typed snap error — never a panic, never a
// silently-wrong engine.
func TestRestoreRejectsDamage(t *testing.T) {
	tc := resumeCases[3] // faulty case: every snapshot section populated
	tr := tc.tr()
	blob := snapshotAt(t, tc.cfg, tr, 200)

	if _, err := RestoreEngine(bytes.NewReader(blob), tc.cfg); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	for _, cut := range []int{0, 1, 7, 16, len(blob) / 2, len(blob) - 1} {
		if _, err := RestoreEngine(bytes.NewReader(blob[:cut]), tc.cfg); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	for _, pos := range []int{0, 4, 8, 20, len(blob) / 3, len(blob) - 5} {
		dam := append([]byte(nil), blob...)
		dam[pos] ^= 0x10
		if _, err := RestoreEngine(bytes.NewReader(dam), tc.cfg); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
}

// FuzzRestoreEngine feeds arbitrary bytes — seeded with a valid
// snapshot plus truncated and bit-flipped variants — to RestoreEngine.
// The contract under fuzzing: corrupt input yields a typed error, never
// a panic, and any input accepted as valid yields an engine whose
// invariants audit clean and that can step without crashing.
func FuzzRestoreEngine(f *testing.F) {
	cfg := Config{MeshW: 8, MeshH: 8, Alloc: "mc1x1", Pattern: "nbody",
		Load: 0.4, TimeScale: 0.01, Seed: 1}
	cfgF := faultyCfg("mc1x1", 0)
	tr := faultTrace(60, 32)
	seed := func(c Config, n int) []byte {
		e, err := NewEngine(c)
		if err != nil {
			f.Fatal(err)
		}
		for _, j := range tr.Jobs {
			if err := e.Submit(j); err != nil {
				f.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			e.Step()
		}
		var buf bytes.Buffer
		if err := e.Snapshot(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := seed(cfg, 100)
	validF := seed(cfgF, 200)
	f.Add(valid)
	f.Add(validF)
	f.Add(valid[:len(valid)/2])
	f.Add(validF[:17])
	for _, pos := range []int{0, 5, 9, 16, 40, len(valid) / 2} {
		dam := append([]byte(nil), valid...)
		dam[pos] ^= 0x08
		f.Add(dam)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []Config{cfg, cfgF} {
			e, err := RestoreEngine(bytes.NewReader(data), c)
			if err != nil {
				if e != nil {
					t.Fatal("error with non-nil engine")
				}
				continue
			}
			// Accepted input: the engine must be fully usable.
			if err := e.Audit(); err != nil {
				t.Fatalf("restored engine fails audit: %v", err)
			}
			for i := 0; i < 50 && e.Step(); i++ {
			}
		}
	})
}

// TestRestoreContainerErrorsAreTyped pins the error taxonomy the CLI
// relies on: damaged container → snap.ErrBadMagic / snap.ErrVersion /
// snap.ErrChecksum; valid container with impossible payload →
// snap.ErrCorrupt.
func TestRestoreContainerErrorsAreTyped(t *testing.T) {
	tc := resumeCases[0]
	blob := snapshotAt(t, tc.cfg, tc.tr(), 50)

	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := RestoreEngine(bytes.NewReader(bad), tc.cfg); !errors.Is(err, snap.ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	bad = append([]byte(nil), blob...)
	bad[4] = 0xEE
	if _, err := RestoreEngine(bytes.NewReader(bad), tc.cfg); !errors.Is(err, snap.ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
	bad = append([]byte(nil), blob...)
	bad[20] ^= 0x01
	if _, err := RestoreEngine(bytes.NewReader(bad), tc.cfg); !errors.Is(err, snap.ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

// TestPeriodicAudit: Config.AuditEvery runs the invariant auditor
// between events without disturbing outputs, and a deliberately
// corrupted engine fails the audit with the named invariant.
func TestPeriodicAudit(t *testing.T) {
	tc := resumeCases[3]
	cfg := tc.cfg
	cfg.AuditEvery = 16
	res, err := Run(cfg, tc.tr())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(tc.cfg, tc.tr())
	if err != nil {
		t.Fatal(err)
	}
	if g, w := goldenDigest(res), goldenDigest(base); g != w {
		t.Fatalf("AuditEvery changed outputs: %s vs %s", g, w)
	}

	if _, err := NewEngine(Config{MeshW: 8, MeshH: 8, Alloc: "mc1x1", Pattern: "nbody", AuditEvery: -1}); err == nil {
		t.Fatal("negative AuditEvery accepted")
	}
}

// TestAuditDetectsCorruption corrupts engine bookkeeping directly and
// requires Audit to name the broken invariant as a typed *Violation.
func TestAuditDetectsCorruption(t *testing.T) {
	mk := func() *Engine {
		e, err := NewEngine(resumeCases[0].cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := resumeCases[0].tr()
		for _, j := range tr.Jobs {
			if err := e.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ {
			e.Step()
		}
		if err := e.Audit(); err != nil {
			t.Fatalf("healthy engine failed audit: %v", err)
		}
		return e
	}

	check := func(name, invariant string, corrupt func(*Engine)) {
		t.Run(name, func(t *testing.T) {
			e := mk()
			corrupt(e)
			err := e.Audit()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			var v *Violation
			if !errors.As(err, &v) {
				t.Fatalf("audit error %v carries no *Violation", err)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("%q", invariant)) {
				t.Fatalf("audit reported %v, want invariant %q", err, invariant)
			}
		})
	}

	check("busy-procs", "busy-procs", func(e *Engine) { e.busyProcs++ })
	check("store-live", "store-live", func(e *Engine) { e.store.live++ })
	check("job-conservation", "job-conservation", func(e *Engine) { e.submitted++ })
	check("event-seq", "event-seq", func(e *Engine) { e.seq = 0 })
}
