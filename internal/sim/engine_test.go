package sim

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"meshalloc/internal/trace"
)

// TestEngineMatchesRun pins the fundamental refactor contract: building
// an engine, submitting the whole trace and draining produces exactly
// what batch Run produces.
func TestEngineMatchesRun(t *testing.T) {
	tr := trace.NewSDSC(trace.SDSCConfig{Jobs: 150, MaxSize: 64, Seed: 5})
	cfg := baseConfig()
	cfg.TimeScale = 0.05
	want, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	got := e.Result()
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Fatal("engine records diverge from batch Run")
	}
	if got.MeanResponse != want.MeanResponse || got.MedianResponse != want.MedianResponse ||
		got.UtilizationPct != want.UtilizationPct || got.MeanQueueLen != want.MeanQueueLen ||
		got.Net != want.Net || got.Makespan != want.Makespan {
		t.Fatalf("engine aggregates diverge: %+v vs %+v", got, want)
	}
	if got.Jobs != len(want.Records) {
		t.Fatalf("Jobs = %d, want %d", got.Jobs, len(want.Records))
	}
}

// TestEngineStreamingAggregatesMatchRetained is the satellite
// equivalence test: a Discard run's streaming aggregates must match the
// retained-records aggregates of the same workload — exactly for the
// mean, contiguity and utilization (same arithmetic, same order), and
// within P² tolerance for the median.
func TestEngineStreamingAggregatesMatchRetained(t *testing.T) {
	tr := trace.NewSDSC(trace.SDSCConfig{Jobs: 400, MaxSize: 64, Seed: 2})
	cfg := baseConfig()
	cfg.TimeScale = 0.02
	retained, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	cfg.KeepRecords, cfg.KeepNodes = Discard, Discard
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	e.Observe(func(r JobRecord) {
		streamed++
		if r.Nodes != nil {
			t.Error("KeepNodes=Discard record still carries nodes")
		}
	})
	if err := e.RunSource(tr.Source(), 0); err != nil {
		t.Fatal(err)
	}
	got := e.Result()

	if got.Records != nil {
		t.Fatal("Discard run retained records")
	}
	if streamed != len(retained.Records) || got.Jobs != streamed {
		t.Fatalf("streamed %d records, want %d", streamed, len(retained.Records))
	}
	if got.MeanResponse != retained.MeanResponse {
		t.Fatalf("streaming mean %g != retained %g", got.MeanResponse, retained.MeanResponse)
	}
	if got.PctContiguous != retained.PctContiguous || got.AvgComponents != retained.AvgComponents {
		t.Fatal("streaming contiguity aggregates diverge")
	}
	if got.UtilizationPct != retained.UtilizationPct || got.MeanQueueLen != retained.MeanQueueLen {
		t.Fatal("streaming occupancy aggregates diverge")
	}
	if got.Makespan != retained.Makespan || got.Net != retained.Net {
		t.Fatal("streaming makespan/network diverge")
	}
	if rel := math.Abs(got.MedianResponse-retained.MedianResponse) / retained.MedianResponse; rel > 0.05 {
		t.Fatalf("P² median %g vs exact %g (rel %g)", got.MedianResponse, retained.MedianResponse, rel)
	}
}

// TestEngineObserverStreamsInFinishOrder checks observers fire once per
// job, in finish order, while records are still being retained.
func TestEngineObserverStreamsInFinishOrder(t *testing.T) {
	e, err := NewEngine(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var seen []JobRecord
	e.Observe(func(r JobRecord) { seen = append(seen, r) })
	for _, j := range tinyTrace().Jobs {
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	res := e.Result()
	if !reflect.DeepEqual(seen, res.Records) {
		t.Fatal("observed stream differs from retained records")
	}
}

// TestEngineOnlineSubmission submits a job while the clock is already
// running — the open-system capability batch Run never had.
func TestEngineOnlineSubmission(t *testing.T) {
	e, err := NewEngine(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(trace.Job{ID: 0, Arrival: 0, Size: 4, Runtime: 60}); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(30)
	if e.Now() != 30 {
		t.Fatalf("clock %g, want 30", e.Now())
	}
	// Submit mid-run: an arrival in the past clamps to the clock.
	if err := e.Submit(trace.Job{ID: 1, Arrival: 10, Size: 4, Runtime: 30}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	res := e.Result()
	if res.Jobs != 2 {
		t.Fatalf("%d jobs finished, want 2", res.Jobs)
	}
	for _, r := range res.Records {
		if r.ID == 1 && r.Arrival < 30 {
			t.Fatalf("late submission arrival %g, want clamped to >= 30", r.Arrival)
		}
	}
}

// TestEngineStepGranularity walks a run one event at a time.
func TestEngineStepGranularity(t *testing.T) {
	e, err := NewEngine(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tinyTrace().Jobs {
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	steps := 0
	last := 0.0
	for e.Step() {
		steps++
		if e.Now() < last {
			t.Fatal("clock moved backwards")
		}
		last = e.Now()
	}
	if steps < 4 {
		t.Fatalf("only %d events for 4 jobs", steps)
	}
	if e.Step() {
		t.Fatal("Step on drained engine should return false")
	}
	if e.Finished() != 4 {
		t.Fatalf("Finished = %d", e.Finished())
	}
}

// TestEngineSubmitValidates pins the Submit error contract.
func TestEngineSubmitValidates(t *testing.T) {
	e, err := NewEngine(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(trace.Job{ID: 0, Size: 65, Runtime: 10}); err == nil {
		t.Fatal("oversized job accepted")
	}
	if err := e.Submit(trace.Job{ID: 1, Size: 0, Runtime: 10}); err == nil {
		t.Fatal("zero-size job accepted")
	}
}

// TestEngineRunSourcePoisson drives the engine from an unbounded
// Poisson source under a horizon, the canonical open-system run.
func TestEngineRunSourcePoisson(t *testing.T) {
	cfg := baseConfig()
	cfg.KeepRecords, cfg.KeepNodes = Discard, Discard
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunSource(trace.NewPoisson(200, 64, 1), 100000); err != nil {
		t.Fatal(err)
	}
	e.Drain() // finish the jobs in flight at the horizon
	res := e.Result()
	// ~100000/200 = 500 expected arrivals.
	if res.Jobs < 350 || res.Jobs > 650 {
		t.Fatalf("%d jobs over the horizon, want ~500", res.Jobs)
	}
	if res.MeanResponse <= 0 || res.UtilizationPct <= 0 {
		t.Fatalf("degenerate open-system aggregates: %+v", res)
	}
	if e.Deadlocked() {
		t.Fatal("drained open run reports deadlock")
	}
}

// TestEngineRunSourceResumesPastHorizon pins that a split-horizon run
// replays the identical event sequence a continuous run would: the job
// pulled past the horizon is held (not lost), and a horizon stop does
// not run in-flight work past the boundary — the workload overlaps
// heavily, so draining at a horizon would advance the clock and clamp
// later arrivals, diverging the records.
func TestEngineRunSourceResumesPastHorizon(t *testing.T) {
	mk := func() *trace.Trace {
		tr := &trace.Trace{}
		for i := 0; i < 40; i++ {
			tr.Jobs = append(tr.Jobs, trace.Job{ID: i, Arrival: float64(i * 100), Size: 16, Runtime: 2000})
		}
		return tr
	}
	whole, err := NewEngine(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.RunSource(mk().Source(), 0); err != nil {
		t.Fatal(err)
	}

	split, err := NewEngine(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := mk().Source()
	// Horizons that fall between arrivals: each boundary pulls one job
	// past it, which must be held for the next call.
	for _, h := range []float64{450, 1250, 2650} {
		if err := split.RunSource(src, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := split.RunSource(src, 0); err != nil {
		t.Fatal(err)
	}
	if split.Finished() != whole.Finished() {
		t.Fatalf("split-horizon run finished %d jobs, whole run %d — an arrival was dropped",
			split.Finished(), whole.Finished())
	}
	if !reflect.DeepEqual(split.Result().Records, whole.Result().Records) {
		t.Fatal("split-horizon records diverge from single-run records")
	}
}

// TestEngineRunSourceBoundedHeap pins the lazy-feeding property: the
// event heap never holds more than the in-flight work even though the
// source yields thousands of jobs.
func TestEngineRunSourceBoundedHeap(t *testing.T) {
	cfg := baseConfig()
	cfg.KeepRecords, cfg.KeepNodes = Discard, Discard
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxHeap := 0
	src := trace.Limit(trace.NewPoisson(500, 64, 3), 3000)
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		e.RunUntil(j.Arrival) // Load and TimeScale default to 1
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
		if e.events.len() > maxHeap {
			maxHeap = e.events.len()
		}
	}
	e.Drain()
	if e.Result().Jobs != 3000 {
		t.Fatalf("finished %d jobs, want 3000", e.Result().Jobs)
	}
	// At mean interarrival 500 s the machine drains between arrivals;
	// the heap should stay tiny, never O(stream length).
	if maxHeap > 64 {
		t.Fatalf("event heap reached %d entries on a lazily-fed run", maxHeap)
	}
}

// TestEngineDiscardBoundedMemory is the constant-memory acceptance
// guard: a long Discard run must not grow the live heap with the job
// count (a Keep run of the same length retains tens of MB of records).
func TestEngineDiscardBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("long stream")
	}
	const jobs = 200000
	cfg := baseConfig()
	cfg.KeepRecords, cfg.KeepNodes = Discard, Discard
	// Tiny quotas keep the run fast: the point is job-count scaling.
	cfg.MsgsPerSecond = 1e-4

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)

	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	e.Observe(func(JobRecord) { count++ })
	if err := e.RunSource(trace.Limit(trace.NewPoisson(1000, 64, 1), jobs), 0); err != nil {
		t.Fatal(err)
	}
	if count != jobs {
		t.Fatalf("finished %d jobs, want %d", count, jobs)
	}

	res := e.Result()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if res.Jobs != jobs {
		t.Fatalf("Result.Jobs = %d", res.Jobs)
	}
	grew := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	// The engine itself (grid, network link arrays, pools) is well
	// under a megabyte; 8 MB of headroom keeps the guard robust while
	// still failing hard if per-job state is ever retained again
	// (200k records alone would be ~25 MB).
	if grew > 8<<20 {
		t.Fatalf("live heap grew %d bytes over a %d-job Discard run", grew, jobs)
	}
}

// TestEngineDeadlockDetection mirrors batch Run's deadlock error: a
// contiguous allocator refusing the head forever must be reported.
func TestEngineDeadlocked(t *testing.T) {
	e, err := NewEngine(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.Deadlocked() {
		t.Fatal("fresh engine is not deadlocked")
	}
	// A drained, finished engine is not deadlocked either.
	if err := e.Submit(trace.Job{ID: 0, Size: 4, Runtime: 10}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if e.Deadlocked() {
		t.Fatal("drained engine with empty queue reports deadlock")
	}
}
