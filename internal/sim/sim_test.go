package sim

import (
	"math"
	"reflect"
	"testing"

	"meshalloc/internal/netsim"
	"meshalloc/internal/trace"
)

// tinyTrace returns a small deterministic workload.
func tinyTrace() *trace.Trace {
	return &trace.Trace{Jobs: []trace.Job{
		{ID: 0, Arrival: 0, Size: 4, Runtime: 20},
		{ID: 1, Arrival: 5, Size: 9, Runtime: 30},
		{ID: 2, Arrival: 10, Size: 2, Runtime: 10},
		{ID: 3, Arrival: 50, Size: 16, Runtime: 40},
	}}
}

func baseConfig() Config {
	return Config{
		MeshW: 8, MeshH: 8,
		Alloc:   "hilbert/bestfit",
		Pattern: "alltoall",
		Seed:    1,
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	for _, pattern := range []string{"alltoall", "nbody", "random", "ring", "pingpong", "testsuite"} {
		cfg := baseConfig()
		cfg.Pattern = pattern
		res, err := Run(cfg, tinyTrace())
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if len(res.Records) != 4 {
			t.Fatalf("%s: %d records, want 4", pattern, len(res.Records))
		}
		for _, r := range res.Records {
			if r.Response <= 0 {
				t.Errorf("%s: job %d response %g", pattern, r.ID, r.Response)
			}
			if r.Finish < r.Start || r.Start < r.Arrival {
				t.Errorf("%s: job %d times out of order: %+v", pattern, r.ID, r)
			}
			if r.Quota < 1 {
				t.Errorf("%s: job %d quota %d", pattern, r.ID, r.Quota)
			}
		}
	}
}

func TestRunRejectsOversizedJob(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{{Size: 65, Runtime: 1}}}
	if _, err := Run(baseConfig(), tr); err == nil {
		t.Fatal("oversized job should be rejected")
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.Alloc = "bogus" },
		func(c *Config) { c.Pattern = "bogus" },
		func(c *Config) { c.Scheduler = "bogus" },
	} {
		cfg := baseConfig()
		mut(&cfg)
		if _, err := Run(cfg, tinyTrace()); err == nil {
			t.Fatal("bad config should fail")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.Pattern = "random"
	a, err := Run(cfg, tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse != b.MeanResponse {
		t.Fatalf("same config diverged: %g vs %g", a.MeanResponse, b.MeanResponse)
	}
	for i := range a.Records {
		if !reflect.DeepEqual(a.Records[i], b.Records[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestFCFSOrderRespected(t *testing.T) {
	// Two big jobs that cannot run together plus a small one behind
	// them; strict FCFS must start them in arrival order.
	tr := &trace.Trace{Jobs: []trace.Job{
		{ID: 0, Arrival: 0, Size: 40, Runtime: 50},
		{ID: 1, Arrival: 1, Size: 40, Runtime: 50},
		{ID: 2, Arrival: 2, Size: 4, Runtime: 10},
	}}
	res, err := Run(baseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	starts := map[int]float64{}
	for _, r := range res.Records {
		starts[r.ID] = r.Start
	}
	if !(starts[0] <= starts[1] && starts[1] <= starts[2]) {
		t.Fatalf("FCFS start order violated: %v", starts)
	}
	// Job 1 must wait for job 0 to finish.
	if starts[1] == 1 {
		t.Fatal("job 1 started immediately despite job 0 holding the mesh")
	}
}

func TestEASYBackfillsAroundBlockedHead(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{
		{ID: 0, Arrival: 0, Size: 40, Runtime: 2000},
		{ID: 1, Arrival: 1, Size: 40, Runtime: 50}, // blocked head
		{ID: 2, Arrival: 2, Size: 4, Runtime: 1},   // short: can backfill
	}}
	cfgF := baseConfig()
	resF, err := Run(cfgF, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfgE := baseConfig()
	cfgE.Scheduler = "easy"
	resE, err := Run(cfgE, tr)
	if err != nil {
		t.Fatal(err)
	}
	waitF := map[int]float64{}
	waitE := map[int]float64{}
	for i := range resF.Records {
		waitF[resF.Records[i].ID] = resF.Records[i].Wait
	}
	for i := range resE.Records {
		waitE[resE.Records[i].ID] = resE.Records[i].Wait
	}
	if waitE[2] >= waitF[2] {
		t.Fatalf("EASY should shorten job 2's wait: easy %g vs fcfs %g", waitE[2], waitF[2])
	}
}

func TestQuotaFollowsRuntime(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{{ID: 0, Arrival: 0, Size: 2, Runtime: 123}}}
	res, err := Run(baseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Quota != 123 {
		t.Fatalf("quota = %d, want 123", res.Records[0].Quota)
	}
	// Half message rate halves the quota.
	cfg := baseConfig()
	cfg.MsgsPerSecond = 0.5
	res, err = Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Quota != 62 {
		t.Fatalf("quota at 0.5 msg/s = %d, want 62", res.Records[0].Quota)
	}
}

func TestTimeScaleSelfSimilar(t *testing.T) {
	// Scaling the trace in time scales responses back to roughly the
	// same reported values (quotas round, so allow slack).
	tr := &trace.Trace{Jobs: []trace.Job{
		{ID: 0, Arrival: 0, Size: 8, Runtime: 1000},
		{ID: 1, Arrival: 100, Size: 8, Runtime: 1000},
		{ID: 2, Arrival: 200, Size: 8, Runtime: 1000},
	}}
	full, err := Run(baseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.TimeScale = 0.5
	half, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// The half-scale run does half the messages in half the time; its
	// re-inflated mean response should be within 20% of full scale.
	if rel := math.Abs(half.MeanResponse-full.MeanResponse) / full.MeanResponse; rel > 0.2 {
		t.Fatalf("time scaling broke self-similarity: full %g, half %g (rel %g)",
			full.MeanResponse, half.MeanResponse, rel)
	}
}

func TestLoadContractionIncreasesResponse(t *testing.T) {
	tr := trace.NewSDSC(trace.SDSCConfig{Jobs: 120, MaxSize: 64, Seed: 4})
	cfg := baseConfig()
	cfg.TimeScale = 0.05
	base, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Load = 0.2
	packed, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if packed.MeanResponse <= base.MeanResponse {
		t.Fatalf("5x load should increase mean response: %g vs %g",
			packed.MeanResponse, base.MeanResponse)
	}
}

func TestSequentialSlowerThanPhased(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{{ID: 0, Arrival: 0, Size: 16, Runtime: 200}}}
	phased, err := Run(baseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.Issue = IssueSequential
	seq, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Records[0].RunTime <= phased.Records[0].RunTime {
		t.Fatalf("sequential issue should be slower: %g vs %g",
			seq.Records[0].RunTime, phased.Records[0].RunTime)
	}
}

func TestContiguityMetrics(t *testing.T) {
	// A single job on an empty mesh under hilbert/bestfit is contiguous.
	tr := &trace.Trace{Jobs: []trace.Job{{ID: 0, Arrival: 0, Size: 16, Runtime: 10}}}
	res, err := Run(baseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Records[0].Contiguous || res.Records[0].Components != 1 {
		t.Fatalf("single hilbert job should be contiguous: %+v", res.Records[0])
	}
	if res.PctContiguous != 100 {
		t.Fatalf("PctContiguous = %g", res.PctContiguous)
	}
	if res.AvgComponents != 1 {
		t.Fatalf("AvgComponents = %g", res.AvgComponents)
	}
}

func TestRecordsMetricsPopulated(t *testing.T) {
	res, err := Run(baseConfig(), tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Size > 1 && r.AvgPairwise <= 0 {
			t.Errorf("job %d: AvgPairwise %g", r.ID, r.AvgPairwise)
		}
		if r.Size > 1 && r.AvgMsgDist <= 0 {
			t.Errorf("job %d: AvgMsgDist %g", r.ID, r.AvgMsgDist)
		}
	}
	if res.Net.Messages == 0 {
		t.Error("network stats empty")
	}
	if res.Makespan <= 0 {
		t.Error("makespan not set")
	}
}

func TestMaxPhaseCapsBursts(t *testing.T) {
	// With MaxPhase 1 every message is its own burst; results still
	// complete and runtimes lengthen relative to unlimited phases.
	tr := &trace.Trace{Jobs: []trace.Job{{ID: 0, Arrival: 0, Size: 12, Runtime: 100}}}
	free, err := Run(baseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.MaxPhase = 1
	capped, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Records[0].RunTime < free.Records[0].RunTime {
		t.Fatalf("capped bursts should not be faster: %g vs %g",
			capped.Records[0].RunTime, free.Records[0].RunTime)
	}
}

func TestCustomNetworkConfigUsed(t *testing.T) {
	tr := &trace.Trace{Jobs: []trace.Job{{ID: 0, Arrival: 0, Size: 8, Runtime: 50}}}
	slow := baseConfig()
	slow.Net = netsim.Config{MessageFlits: 64, FlitCycle: 0.1, HopLatency: 0.01, LocalDelay: 0.001}
	fast := baseConfig()
	fast.Net = netsim.Config{MessageFlits: 64, FlitCycle: 0.001, HopLatency: 0.001, LocalDelay: 0.001}
	rs, err := Run(slow, tr)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(fast, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Records[0].RunTime <= rf.Records[0].RunTime {
		t.Fatal("slower network should lengthen job runtime")
	}
}

func TestContiguousAllocatorsEndToEnd(t *testing.T) {
	// Contiguous allocators can refuse on fragmentation; the simulator
	// must keep the job queued and drain the whole workload anyway.
	tr := trace.NewSDSC(trace.SDSCConfig{Jobs: 80, MaxSize: 64, Seed: 9})
	for _, spec := range []string{"submesh", "buddy"} {
		cfg := baseConfig()
		cfg.Alloc = spec
		cfg.TimeScale = 0.01
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(res.Records) != 80 {
			t.Fatalf("%s: %d records", spec, len(res.Records))
		}
		// Contiguous by construction.
		for _, r := range res.Records {
			if !r.Contiguous {
				t.Fatalf("%s: job %d not contiguous", spec, r.ID)
			}
		}
	}
}

func TestPagedPagingEndToEnd(t *testing.T) {
	tr := trace.NewSDSC(trace.SDSCConfig{Jobs: 80, MaxSize: 64, Seed: 9})
	cfg := baseConfig()
	cfg.Alloc = "hilbert/freelist/page1"
	cfg.TimeScale = 0.01
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 80 {
		t.Fatalf("%d records", len(res.Records))
	}
}

func TestMixedPatternEndToEnd(t *testing.T) {
	cfg := baseConfig()
	cfg.Pattern = "mixed"
	res, err := Run(cfg, tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("%d records", len(res.Records))
	}
}

func TestRecordsIncludeAllocationNodes(t *testing.T) {
	res, err := Run(baseConfig(), tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if len(r.Nodes) != r.Size {
			t.Fatalf("job %d: %d nodes for size %d", r.ID, len(r.Nodes), r.Size)
		}
		for i := 1; i < len(r.Nodes); i++ {
			if r.Nodes[i] <= r.Nodes[i-1] {
				t.Fatalf("job %d: nodes not sorted unique: %v", r.ID, r.Nodes)
			}
		}
	}
}

func TestNodeUtilizationPopulated(t *testing.T) {
	res, err := Run(baseConfig(), tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeUtilization) != 64 {
		t.Fatalf("utilization length %d", len(res.NodeUtilization))
	}
	any := false
	for _, u := range res.NodeUtilization {
		if u < 0 || math.IsNaN(u) || math.IsInf(u, 0) {
			t.Fatalf("utilization %g out of range", u)
		}
		if u > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no link ever utilized")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	// One job holding 16 of 64 processors for its whole life: while it
	// runs, utilization is 25%; averaged over its makespan (arrival at
	// 0, starts immediately) it is exactly 25% up to the finish.
	tr := &trace.Trace{Jobs: []trace.Job{{ID: 0, Arrival: 0, Size: 16, Runtime: 100}}}
	res, err := Run(baseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.UtilizationPct-25) > 1.0 {
		t.Fatalf("UtilizationPct = %g, want ~25", res.UtilizationPct)
	}
	if res.MeanQueueLen != 0 {
		t.Fatalf("MeanQueueLen = %g, want 0 (no waiting)", res.MeanQueueLen)
	}
}

func TestContiguousAllocatorLowersUtilization(t *testing.T) {
	// The paper's Section 2 claim: convex-only allocation reduces
	// system utilization. Size-17 jobs round up to the whole 8x8 mesh
	// under the buddy system (internal fragmentation), forcing serial
	// execution, while the noncontiguous allocator runs three at once.
	var jobs []trace.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, trace.Job{ID: i, Arrival: float64(i), Size: 17, Runtime: 300})
	}
	tr := &trace.Trace{Jobs: jobs}
	free, err := Run(baseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.Alloc = "buddy"
	contig, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if contig.MeanQueueLen <= free.MeanQueueLen {
		t.Fatalf("buddy should queue more: %g vs %g", contig.MeanQueueLen, free.MeanQueueLen)
	}
	if contig.MeanResponse <= free.MeanResponse {
		t.Fatalf("buddy should respond slower: %g vs %g", contig.MeanResponse, free.MeanResponse)
	}
	if contig.UtilizationPct >= free.UtilizationPct+1 {
		t.Fatalf("buddy should not raise utilization: %g vs %g",
			contig.UtilizationPct, free.UtilizationPct)
	}
}

func TestRoutingConfigEndToEnd(t *testing.T) {
	tr := tinyTrace()
	for _, r := range []netsim.Routing{netsim.RouteXY, netsim.RouteYX, netsim.RouteAdaptive} {
		cfg := baseConfig()
		cfg.Net = netsim.DefaultConfig()
		cfg.Net.Routing = r
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if len(res.Records) != 4 {
			t.Fatalf("%v: %d records", r, len(res.Records))
		}
	}
}

func TestTorusShortensMessages(t *testing.T) {
	// One job spanning opposite mesh edges: wraparound links shorten
	// its messages, so the torus job finishes no later than the mesh
	// job under the same allocator and pattern.
	tr := &trace.Trace{Jobs: []trace.Job{{ID: 0, Arrival: 0, Size: 64, Runtime: 300}}}
	meshCfg := baseConfig()
	meshRes, err := Run(meshCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	torusCfg := baseConfig()
	torusCfg.Torus = true
	torusRes, err := Run(torusCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if torusRes.Net.AvgHops() > meshRes.Net.AvgHops() {
		t.Fatalf("torus avg hops %g should not exceed mesh %g",
			torusRes.Net.AvgHops(), meshRes.Net.AvgHops())
	}
}

func TestIssueModeString(t *testing.T) {
	if IssuePhased.String() != "phased" || IssueSequential.String() != "sequential" {
		t.Fatal("IssueMode.String mismatch")
	}
}

// TestDimsCompatibilityPath pins the 2-D compatibility contract of the
// dimension-generic topology layer: Dims{w, h} and MeshW/MeshH describe
// the same machine and must produce byte-for-byte identical results.
func TestDimsCompatibilityPath(t *testing.T) {
	legacy := baseConfig()
	legacy.Pattern = "nbody"
	viaDims := legacy
	viaDims.MeshW, viaDims.MeshH = 0, 0
	viaDims.Dims = []int{8, 8}
	r1, err := Run(legacy, tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(viaDims, tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Records, r2.Records) {
		t.Fatal("Dims{8,8} diverges from MeshW/MeshH 8x8")
	}
	if r1.MeanResponse != r2.MeanResponse || r1.Net != r2.Net {
		t.Fatal("summary metrics diverge between Dims and MeshW/MeshH")
	}
}

// TestRunOn3DMesh runs the full contention simulation natively on a 3-D
// machine for a cross-section of allocator families.
func TestRunOn3DMesh(t *testing.T) {
	for _, spec := range []string{"hilbert", "hilbert/bestfit", "scurve", "mc", "mc1x1", "genalg", "random", "proj2d-hilbert", "rowmajor/freelist/page1"} {
		cfg := Config{
			Dims:    []int{4, 4, 4},
			Alloc:   spec,
			Pattern: "nbody",
			Seed:    1,
		}
		res, err := Run(cfg, tinyTrace())
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(res.Records) != 4 {
			t.Fatalf("%s: %d records, want 4", spec, len(res.Records))
		}
		for _, r := range res.Records {
			if r.Response <= 0 || r.Components < 1 {
				t.Errorf("%s: bad record %+v", spec, r)
			}
			for _, id := range r.Nodes {
				if id < 0 || id >= 64 {
					t.Errorf("%s: node id %d off the 4x4x4 machine", spec, id)
				}
			}
		}
		if res.Net.Messages == 0 {
			t.Errorf("%s: no messages simulated", spec)
		}
		if len(res.NodeUtilization) != 64 {
			t.Errorf("%s: utilization length %d", spec, len(res.NodeUtilization))
		}
	}
}

// TestRunOn3DTorus exercises wraparound routing on a 3-D machine.
func TestRunOn3DTorus(t *testing.T) {
	cfg := Config{
		Dims:    []int{4, 4, 4},
		Torus:   true,
		Alloc:   "hilbert",
		Pattern: "alltoall",
		Seed:    1,
	}
	res, err := Run(cfg, tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("%d records, want 4", len(res.Records))
	}
}

// TestRun3DRejects2DOnlyAllocators pins the gating of inherently 2-D
// strategies on higher-dimensional machines.
func TestRun3DRejects2DOnlyAllocators(t *testing.T) {
	for _, spec := range []string{"buddy", "submesh", "hindex", "moore"} {
		cfg := Config{Dims: []int{4, 4, 4}, Alloc: spec, Pattern: "nbody", Seed: 1}
		if _, err := Run(cfg, tinyTrace()); err == nil {
			t.Errorf("%s should be rejected on a 3-D machine", spec)
		}
	}
}

// TestRunRejectsBadDims pins extent validation.
func TestRunRejectsBadDims(t *testing.T) {
	cfg := Config{Dims: []int{8, 0, 8}, Alloc: "hilbert", Pattern: "nbody", Seed: 1}
	if _, err := Run(cfg, tinyTrace()); err == nil {
		t.Fatal("zero extent should be rejected")
	}
}

// TestRunRejectsTooManyDims pins the error (not panic) contract for
// over-long Dims.
func TestRunRejectsTooManyDims(t *testing.T) {
	cfg := Config{Dims: []int{2, 2, 2, 2, 2}, Alloc: "hilbert", Pattern: "nbody", Seed: 1}
	if _, err := Run(cfg, tinyTrace()); err == nil {
		t.Fatal("5-D machine should be rejected with an error")
	}
}
