package sim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"meshalloc/internal/alloc"
	"meshalloc/internal/comm"
	"meshalloc/internal/fault"
	"meshalloc/internal/netsim"
	"meshalloc/internal/snap"
	"meshalloc/internal/stats"
	"meshalloc/internal/trace"
)

// ErrConfigMismatch is returned (wrapped) by RestoreEngine when the
// snapshot was taken under a semantically different Config than the one
// the restore supplies. Fields that cannot change outcomes — EventQueue,
// AllocWorkers, RebuildSched, NaiveMetrics, AuditEvery — are excluded
// from the comparison, so a run may legally resume under a different
// queue implementation or worker count.
var ErrConfigMismatch = errors.New("sim: snapshot was taken under a different configuration")

// cfgFingerprint hashes the semantic configuration fields — the ones
// that determine the event sequence and outputs. cfg must already have
// defaults applied so "" and "fcfs" schedulers hash identically.
func cfgFingerprint(cfg Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v|%v|%s|%s|%v|%v|%d|%+v|%s|%d|%v|%d|%d|%d|%+v|%+v",
		cfg.dims(), cfg.Torus, cfg.Alloc, cfg.Pattern, cfg.Load, cfg.TimeScale,
		cfg.Seed, cfg.Net, cfg.Scheduler, cfg.Issue, cfg.MsgsPerSecond,
		cfg.MaxPhase, cfg.KeepRecords, cfg.KeepNodes, cfg.Faults, cfg.Retry)
	return h.Sum64()
}

func writeJob(w *snap.Writer, j trace.Job) {
	w.Int(j.ID)
	w.Int(j.Size)
	w.F64(j.Arrival)
	w.F64(j.Runtime)
}

func (e *Engine) readJob(r *snap.Reader) (trace.Job, error) {
	j := trace.Job{ID: r.Int(), Size: r.Int(), Arrival: r.F64(), Runtime: r.F64()}
	if r.Err() != nil {
		return j, r.Err()
	}
	if j.Size <= 0 || j.Size > e.grid.Size() {
		return j, fmt.Errorf("sim: job %d size %d outside (0,%d]: %w", j.ID, j.Size, e.grid.Size(), snap.ErrCorrupt)
	}
	if !finite(j.Arrival) || !finite(j.Runtime) {
		return j, fmt.Errorf("sim: job %d has non-finite times: %w", j.ID, snap.ErrCorrupt)
	}
	return j, nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Snapshot serializes the engine's authoritative state — clock, streaming
// aggregates, the job store, the event queue, the pending queue, RNG
// stream positions, fault and network state, and (under the Keep policy)
// the retained records — as one versioned, checksummed binary blob.
// Derived indexes (allocator occupancy structures, fault masks, the
// scheduler's incremental mirrors) are not serialized; RestoreEngine
// rebuilds them. The engine must be between events: Snapshot is safe
// from a checkpoint hook (SetCheckpoint), between Step calls, or after
// RunUntil/RunSource returns.
//
// A run resumed from a snapshot replays the exact event sequence the
// uninterrupted run would have: every record, digest and aggregate is
// bit-identical.
func (e *Engine) Snapshot(out io.Writer) error {
	w := snap.NewWriter()
	w.U64(cfgFingerprint(e.cfg))

	// Clock, sequence and streaming aggregates.
	w.F64(e.now)
	w.I64(e.seq)
	w.Int(e.finished)
	w.F64(e.respSum)
	w.Int(e.totalComps)
	w.Int(e.contig)
	w.F64(e.makespan)
	w.Int(e.busyProcs)
	w.F64(e.lastAccount)
	w.F64(e.busyArea)
	w.F64(e.queueArea)
	w.Int(e.killed)
	w.Int(e.retried)
	w.Int(e.givenUp)
	w.Int(e.submitted)
	w.F64(e.wastedArea)
	w.F64(e.downArea)
	w.Bool(e.blocked)

	// Event-core profiling counters, so CoreStats survives a resume.
	w.I64(e.core.Events)
	w.I64(e.core.Arrivals)
	w.I64(e.core.Steps)
	w.I64(e.core.Finishes)
	w.I64(e.core.FaultEvents)
	w.I64(e.core.SchedRounds)
	w.I64(e.core.SchedSkips)

	// The P² median estimator and the engine RNG position.
	ps := e.respMedian.State()
	w.F64(ps.P)
	w.Int(ps.N)
	for i := 0; i < 5; i++ {
		w.F64(ps.Q[i])
		w.F64(ps.Pos[i])
		w.F64(ps.Des[i])
		w.F64(ps.Inc[i])
	}
	w.Int(len(ps.Boot))
	for _, v := range ps.Boot {
		w.F64(v)
	}
	w.U64(e.rng.Pos())

	// Job store: per-handle flags, live rows in full, and the pool free
	// list verbatim — recycle order decides future handle assignment,
	// which feeds event identity and scheduler tie-breaks.
	s := &e.store
	w.Int(len(s.job))
	for h := range s.job {
		w.Bool(s.inUse[h])
		w.Bool(s.dead[h])
		if !s.inUse[h] || s.dead[h] {
			continue
		}
		writeJob(w, s.job[h])
		w.Int(len(s.nodes[h]))
		for _, id := range s.nodes[h] {
			w.Int(id)
		}
		gs, err := comm.StateOf(s.gen[h])
		if err != nil {
			return err
		}
		w.String(gs.Kind)
		w.String(gs.Pattern)
		w.Int(gs.P)
		w.Int(gs.Phase)
		w.Int(gs.Idx)
		w.Int(gs.Count)
		w.I64(s.quota[h])
		w.I64(s.sent[h])
		w.I64(s.hops[h])
		w.F64(s.start[h])
		w.F64(s.lastArr[h])
		w.F64(s.queued[h])
		w.F64(s.estEnd[h])
		w.Int(s.pending[h].Src)
		w.Int(s.pending[h].Dst)
		w.Bool(s.havePend[h])
	}
	w.Int(len(s.free))
	for _, h := range s.free {
		w.Int(int(h))
	}

	// The pending FCFS queue and the event queue. Events are visited in
	// queue-internal order; each carries its assigned seq, so any visit
	// order restores an equivalent queue.
	w.Int(len(e.queue))
	for _, j := range e.queue {
		writeJob(w, j)
	}
	w.Int(e.events.len())
	e.events.each(func(ev event) {
		w.F64(ev.t)
		w.I64(ev.seq)
		w.Int(ev.kind)
		w.Int(int(ev.h))
		writeJob(w, ev.arr)
	})
	w.Bool(e.hasHeld)
	if e.hasHeld {
		writeJob(w, e.held)
	}

	// Fault-injection state: availability flags, retry bookkeeping, the
	// pending stream head, and the per-node failure-clock positions.
	// Presence is decided by the config (covered by the fingerprint),
	// so writer and reader always agree on whether this block exists.
	if e.faults != nil {
		for n := range e.down {
			w.Bool(e.down[n])
			w.Bool(e.drained[n])
		}
		ids := make([]int, 0, len(e.killCount))
		for id := range e.killCount {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		w.Int(len(ids))
		for _, id := range ids {
			w.Int(id)
			w.Int(e.killCount[id])
		}
		w.Bool(e.hasFault)
		if e.hasFault {
			w.F64(e.nextFault.T)
			w.Int(e.nextFault.Node)
			w.Int(int(e.nextFault.Kind))
		}
		fs := e.faults.State()
		w.Int(fs.ScriptAt)
		w.Int(len(fs.Clocks))
		for _, c := range fs.Clocks {
			w.F64(c.T)
			w.Int(c.Node)
			w.Bool(c.Down)
			w.U64(c.RNG)
		}
	}

	// Network link state and aggregate stats.
	ns := e.net.State()
	w.Int(len(ns.FreeAt))
	for _, v := range ns.FreeAt {
		w.F64(v)
	}
	w.Int(len(ns.BusyTime))
	for _, v := range ns.BusyTime {
		w.F64(v)
	}
	w.I64(ns.Stats.Messages)
	w.I64(ns.Stats.TotalHops)
	w.F64(ns.Stats.TotalDistSec)
	w.F64(ns.Stats.TotalQueueSec)
	w.F64(ns.Clock)

	// Allocator aux words (NextFit cursor, allocator RNG position, ...).
	if ax, ok := e.allocator.(alloc.AuxState); ok {
		words := ax.AuxState()
		w.Int(len(words))
		for _, v := range words {
			w.U64(v)
		}
	} else {
		w.Int(0)
	}

	// Retained records under the Keep policy.
	if e.cfg.KeepRecords == Keep {
		w.Int(len(e.records))
		for i := range e.records {
			rec := &e.records[i]
			w.Int(rec.ID)
			w.Int(rec.Size)
			w.I64(rec.Quota)
			w.F64(rec.Arrival)
			w.F64(rec.Start)
			w.F64(rec.Finish)
			w.F64(rec.Response)
			w.F64(rec.RunTime)
			w.F64(rec.Wait)
			w.F64(rec.AvgPairwise)
			w.F64(rec.AvgMsgDist)
			w.F64(rec.QueuedSec)
			w.Int(rec.Components)
			w.Bool(rec.Contiguous)
			w.Bool(rec.Nodes != nil)
			if rec.Nodes != nil {
				w.Int(len(rec.Nodes))
				for _, id := range rec.Nodes {
					w.Int(id)
				}
			}
		}
	}

	return w.Flush(out)
}

// RestoreEngine reads a Snapshot blob and returns an engine that resumes
// the run exactly where the snapshot left it: the subsequent event
// sequence, records and aggregates are bit-identical to the run that
// never stopped. cfg must match the snapshotting run's semantic
// configuration (ErrConfigMismatch otherwise); the outcome-neutral
// fields — EventQueue, AllocWorkers, RebuildSched, NaiveMetrics,
// AuditEvery — may differ freely.
//
// Corrupt input is rejected with a typed error, never a panic:
// snap.ErrBadMagic, snap.ErrVersion or snap.ErrChecksum for a damaged
// container, snap.ErrCorrupt (wrapped) for a container whose payload
// decodes to impossible state. After the payload is installed, every
// derived index is rebuilt and the invariant auditor runs; if it finds a
// violation the rebuild is retried from scratch once before the restore
// is abandoned with the audit error.
func RestoreEngine(in io.Reader, cfg Config) (*Engine, error) {
	r, err := snap.NewReader(in)
	if err != nil {
		return nil, err
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if got, want := r.U64(), cfgFingerprint(e.cfg); r.Err() == nil && got != want {
		return nil, fmt.Errorf("sim: snapshot fingerprint %016x, config fingerprint %016x: %w",
			got, want, ErrConfigMismatch)
	}

	e.now = r.F64()
	e.seq = r.I64()
	e.finished = r.Int()
	e.respSum = r.F64()
	e.totalComps = r.Int()
	e.contig = r.Int()
	e.makespan = r.F64()
	e.busyProcs = r.Int()
	e.lastAccount = r.F64()
	e.busyArea = r.F64()
	e.queueArea = r.F64()
	e.killed = r.Int()
	e.retried = r.Int()
	e.givenUp = r.Int()
	e.submitted = r.Int()
	e.wastedArea = r.F64()
	e.downArea = r.F64()
	blocked := r.Bool()
	if r.Err() == nil && (!finite(e.now) || e.now < 0 || e.seq < 0 || e.finished < 0 ||
		e.killed < 0 || e.retried < 0 || e.givenUp < 0 || e.submitted < 0 || e.busyProcs < 0) {
		return nil, fmt.Errorf("sim: negative or non-finite engine counters: %w", snap.ErrCorrupt)
	}

	e.core.Events = r.I64()
	e.core.Arrivals = r.I64()
	e.core.Steps = r.I64()
	e.core.Finishes = r.I64()
	e.core.FaultEvents = r.I64()
	e.core.SchedRounds = r.I64()
	e.core.SchedSkips = r.I64()

	var ps stats.P2State
	ps.P = r.F64()
	ps.N = r.Int()
	for i := 0; i < 5; i++ {
		ps.Q[i] = r.F64()
		ps.Pos[i] = r.F64()
		ps.Des[i] = r.F64()
		ps.Inc[i] = r.F64()
	}
	nboot := r.Count(8)
	for i := 0; i < nboot && r.Err() == nil; i++ {
		ps.Boot = append(ps.Boot, r.F64())
	}
	if r.Err() == nil {
		e.respMedian.SetState(ps)
	}
	if err := e.rng.SkipTo(r.U64()); err != nil && r.Err() == nil {
		return nil, fmt.Errorf("sim: %v: %w", err, snap.ErrCorrupt)
	}

	// Job store.
	s := &e.store
	nh := r.Count(1 << 31)
	for h := 0; h < nh && r.Err() == nil; h++ {
		inUse, dead := r.Bool(), r.Bool()
		s.job = append(s.job, trace.Job{})
		s.nodes = append(s.nodes, nil)
		s.gen = append(s.gen, nil)
		s.quota = append(s.quota, 0)
		s.sent = append(s.sent, 0)
		s.hops = append(s.hops, 0)
		s.start = append(s.start, 0)
		s.lastArr = append(s.lastArr, 0)
		s.queued = append(s.queued, 0)
		s.estEnd = append(s.estEnd, 0)
		s.pending = append(s.pending, comm.Msg{})
		s.havePend = append(s.havePend, false)
		s.dead = append(s.dead, dead)
		s.inUse = append(s.inUse, inUse)
		if !inUse || dead {
			continue
		}
		s.live++
		j, err := e.readJob(r)
		if err != nil {
			return nil, err
		}
		s.job[h] = j
		nn := r.Count(e.grid.Size())
		if r.Err() == nil && nn != j.Size {
			return nil, fmt.Errorf("sim: handle %d holds %d nodes for a %d-processor job: %w",
				h, nn, j.Size, snap.ErrCorrupt)
		}
		ids := make([]int, 0, nn)
		for i := 0; i < nn && r.Err() == nil; i++ {
			ids = append(ids, r.Int())
		}
		s.nodes[h] = ids
		gs := comm.GenState{
			Kind: r.String(), Pattern: r.String(),
			P: r.Int(), Phase: r.Int(), Idx: r.Int(), Count: r.Int(),
		}
		if r.Err() == nil {
			gen, err := comm.RestoreGen(gs, e.pattern, e.rng)
			if err != nil {
				return nil, fmt.Errorf("sim: handle %d: %v: %w", h, err, snap.ErrCorrupt)
			}
			s.gen[h] = gen
		}
		s.quota[h] = r.I64()
		s.sent[h] = r.I64()
		s.hops[h] = r.I64()
		s.start[h] = r.F64()
		s.lastArr[h] = r.F64()
		s.queued[h] = r.F64()
		s.estEnd[h] = r.F64()
		s.pending[h] = comm.Msg{Src: r.Int(), Dst: r.Int()}
		s.havePend[h] = r.Bool()
		if r.Err() == nil && !(finite(s.start[h]) && finite(s.lastArr[h]) && finite(s.estEnd[h])) {
			return nil, fmt.Errorf("sim: handle %d has non-finite times: %w", h, snap.ErrCorrupt)
		}
	}
	nf := r.Count(nh)
	for i := 0; i < nf && r.Err() == nil; i++ {
		fh := r.Int()
		if r.Err() == nil && (fh < 0 || fh >= nh) {
			return nil, fmt.Errorf("sim: free-list handle %d outside [0,%d): %w", fh, nh, snap.ErrCorrupt)
		}
		s.free = append(s.free, int32(fh))
	}

	// Pending queue and event queue.
	nq := r.Count(1 << 31)
	for i := 0; i < nq && r.Err() == nil; i++ {
		j, err := e.readJob(r)
		if err != nil {
			return nil, err
		}
		e.queue = append(e.queue, j)
	}
	ne := r.Count(1 << 31)
	for i := 0; i < ne && r.Err() == nil; i++ {
		ev := event{t: r.F64(), seq: r.I64(), kind: r.Int(), h: int32(r.Int())}
		if ev.kind == kindArrival {
			j, err := e.readJob(r)
			if err != nil {
				return nil, err
			}
			ev.arr = j
		} else {
			// Non-arrival events carry a zero job; skip its fields.
			if _, err := e.readJob(r); err != nil && r.Err() != nil {
				return nil, r.Err()
			}
			if r.Err() == nil && (ev.h < 0 || int(ev.h) >= nh) {
				return nil, fmt.Errorf("sim: event handle %d outside [0,%d): %w", ev.h, nh, snap.ErrCorrupt)
			}
		}
		if r.Err() != nil {
			break
		}
		if !finite(ev.t) || ev.t < e.now || ev.seq < 0 || ev.seq >= e.seq {
			return nil, fmt.Errorf("sim: event (t=%v seq=%d) inconsistent with clock %v seq %d: %w",
				ev.t, ev.seq, e.now, e.seq, snap.ErrCorrupt)
		}
		if ev.kind < kindArrival || ev.kind > kindFinish {
			return nil, fmt.Errorf("sim: unknown event kind %d: %w", ev.kind, snap.ErrCorrupt)
		}
		e.events.push(ev)
	}
	e.hasHeld = r.Bool()
	if e.hasHeld && r.Err() == nil {
		j, err := e.readJob(r)
		if err != nil {
			return nil, err
		}
		e.held = j
	}

	// Fault state.
	if e.faults != nil {
		for n := range e.down {
			e.down[n] = r.Bool()
			e.drained[n] = r.Bool()
		}
		nk := r.Count(1 << 31)
		for i := 0; i < nk && r.Err() == nil; i++ {
			id, kills := r.Int(), r.Int()
			if r.Err() == nil && kills <= 0 {
				return nil, fmt.Errorf("sim: job %d recorded %d kills: %w", id, kills, snap.ErrCorrupt)
			}
			e.killCount[id] = kills
		}
		e.hasFault = r.Bool()
		if e.hasFault && r.Err() == nil {
			e.nextFault = fault.Event{T: r.F64(), Node: r.Int(), Kind: fault.Kind(r.Int())}
			if r.Err() == nil && (!finite(e.nextFault.T) ||
				e.nextFault.Node < 0 || e.nextFault.Node >= e.grid.Size() ||
				e.nextFault.Kind > fault.NodeUndrain) {
				return nil, fmt.Errorf("sim: pending fault event %+v invalid: %w", e.nextFault, snap.ErrCorrupt)
			}
		}
		var fs fault.State
		fs.ScriptAt = r.Int()
		nc := r.Count(e.grid.Size())
		for i := 0; i < nc && r.Err() == nil; i++ {
			c := fault.ClockState{T: r.F64(), Node: r.Int(), Down: r.Bool(), RNG: r.U64()}
			if r.Err() == nil && (!finite(c.T) || c.Node < 0 || c.Node >= e.grid.Size()) {
				return nil, fmt.Errorf("sim: fault clock %+v invalid: %w", c, snap.ErrCorrupt)
			}
			fs.Clocks = append(fs.Clocks, c)
		}
		if r.Err() == nil {
			if err := e.faults.SetState(fs); err != nil {
				return nil, fmt.Errorf("sim: %v: %w", err, snap.ErrCorrupt)
			}
		}
	}

	// Network state.
	var ns netsim.State
	nl := r.Count(1 << 31)
	for i := 0; i < nl && r.Err() == nil; i++ {
		ns.FreeAt = append(ns.FreeAt, r.F64())
	}
	nb := r.Count(1 << 31)
	for i := 0; i < nb && r.Err() == nil; i++ {
		ns.BusyTime = append(ns.BusyTime, r.F64())
	}
	ns.Stats.Messages = r.I64()
	ns.Stats.TotalHops = r.I64()
	ns.Stats.TotalDistSec = r.F64()
	ns.Stats.TotalQueueSec = r.F64()
	ns.Clock = r.F64()
	if r.Err() == nil {
		if err := e.net.SetState(ns); err != nil {
			return nil, fmt.Errorf("sim: %v: %w", err, snap.ErrCorrupt)
		}
	}

	// Allocator aux words. They are applied after rebuildDerived — the
	// rebuild begins with allocator.Reset, which clears exactly the
	// cursors these words restore.
	nw := r.Count(64)
	var auxWords []uint64
	for i := 0; i < nw && r.Err() == nil; i++ {
		auxWords = append(auxWords, r.U64())
	}
	applyAux := func() error {
		if len(auxWords) == 0 {
			return nil
		}
		ax, ok := e.allocator.(alloc.AuxState)
		if !ok {
			return fmt.Errorf("sim: allocator %s holds no aux state but the snapshot carries %d words: %w",
				e.allocator.Name(), len(auxWords), snap.ErrCorrupt)
		}
		if err := ax.SetAuxState(auxWords); err != nil {
			return fmt.Errorf("sim: %v: %w", err, snap.ErrCorrupt)
		}
		return nil
	}

	// Retained records.
	if e.cfg.KeepRecords == Keep {
		nr := r.Count(1 << 31)
		for i := 0; i < nr && r.Err() == nil; i++ {
			rec := JobRecord{
				ID: r.Int(), Size: r.Int(), Quota: r.I64(),
				Arrival: r.F64(), Start: r.F64(), Finish: r.F64(),
				Response: r.F64(), RunTime: r.F64(), Wait: r.F64(),
				AvgPairwise: r.F64(), AvgMsgDist: r.F64(), QueuedSec: r.F64(),
				Components: r.Int(), Contiguous: r.Bool(),
			}
			if r.Bool() {
				nn := r.Count(e.grid.Size())
				rec.Nodes = make([]int, 0, nn)
				for k := 0; k < nn && r.Err() == nil; k++ {
					rec.Nodes = append(rec.Nodes, r.Int())
				}
			}
			e.records = append(e.records, rec)
		}
	}

	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("sim: %d bytes of trailing payload: %w", r.Remaining(), snap.ErrCorrupt)
	}

	// Rebuild every derived index from the authoritative state, audit,
	// and — should the audit fail — rebuild once more from scratch
	// before giving up. rebuildDerived converts allocator panics on
	// impossible (but checksum-valid) state into errors.
	if err := e.rebuildDerived(); err != nil {
		return nil, fmt.Errorf("%v: %w", err, snap.ErrCorrupt)
	}
	if err := applyAux(); err != nil {
		return nil, err
	}
	e.blocked = blocked && e.canBlock
	if err := e.Audit(); err != nil {
		if rerr := e.rebuildDerived(); rerr != nil {
			return nil, fmt.Errorf("%v: %w", rerr, snap.ErrCorrupt)
		}
		if rerr := applyAux(); rerr != nil {
			return nil, rerr
		}
		e.blocked = blocked && e.canBlock
		if err := e.Audit(); err != nil {
			return nil, fmt.Errorf("sim: restored state failed the invariant audit: %v: %w", err, snap.ErrCorrupt)
		}
	}
	return e, nil
}
