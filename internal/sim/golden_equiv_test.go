package sim

import (
	"fmt"
	"hash/fnv"
	"testing"

	"meshalloc/internal/trace"
)

// goldenDigest reduces a Result to one FNV-64a hash over every per-job
// field and every summary metric, formatted with %v so the shortest
// round-trippable float representation pins the exact bits.
func goldenDigest(res *Result) string {
	h := fnv.New64a()
	for _, r := range res.Records {
		fmt.Fprintf(h, "%d %d %d %v %v %v %v %v %v %v %v %v %d %t %v\n",
			r.ID, r.Size, r.Quota,
			r.Arrival, r.Start, r.Finish, r.Response, r.RunTime, r.Wait,
			r.AvgPairwise, r.AvgMsgDist, r.QueuedSec,
			r.Components, r.Contiguous, r.Nodes)
	}
	fmt.Fprintf(h, "mean=%v median=%v pctcontig=%v avgcomp=%v makespan=%v util=%v qlen=%v\n",
		res.MeanResponse, res.MedianResponse, res.PctContiguous, res.AvgComponents,
		res.Makespan, res.UtilizationPct, res.MeanQueueLen)
	fmt.Fprintf(h, "net=%v %v %v %v\n",
		res.Net.Messages, res.Net.TotalHops, res.Net.TotalDistSec, res.Net.TotalQueueSec)
	for _, u := range res.NodeUtilization {
		fmt.Fprintf(h, "%v ", u)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// goldenCases are the paper-figure configurations whose batch outputs
// are pinned bit-for-bit across the engine refactor: the 2-D Figure 7/8
// machines, the native 3-D ext-cube3d machine, the EASY scheduler path,
// and the sequential-issue ablation with a randomized pattern.
var goldenCases = []struct {
	name   string
	cfg    Config
	jobs   int
	max    int
	digest string
}{
	{
		name: "fig7-16x22-alltoall-hilbert",
		cfg: Config{MeshW: 16, MeshH: 22, Alloc: "hilbert/bestfit", Pattern: "alltoall",
			Load: 0.2, TimeScale: 0.01, Seed: 1},
		jobs: 300, max: 352,
		digest: "8f7442e91d71fb78",
	},
	{
		name: "fig8-16x16-nbody-mc1x1",
		cfg: Config{MeshW: 16, MeshH: 16, Alloc: "mc1x1", Pattern: "nbody",
			Load: 0.4, TimeScale: 0.01, Seed: 1},
		jobs: 300, max: 256,
		digest: "6cddb4f3b87c185e",
	},
	{
		name: "cube3d-8x8x8-nbody-hilbert",
		cfg: Config{Dims: []int{8, 8, 8}, Alloc: "hilbert/bestfit", Pattern: "nbody",
			Load: 0.2, TimeScale: 0.01, Seed: 1},
		jobs: 300, max: 512,
		digest: "08850c36d3f13630",
	},
	{
		name: "easy-16x16-alltoall-hilbert",
		cfg: Config{MeshW: 16, MeshH: 16, Alloc: "hilbert/bestfit", Pattern: "alltoall",
			Load: 0.4, TimeScale: 0.01, Seed: 1, Scheduler: "easy"},
		jobs: 300, max: 256,
		digest: "8c0bc3cd16040603",
	},
	{
		name: "seq-16x22-random-scurve",
		cfg: Config{MeshW: 16, MeshH: 22, Alloc: "scurve", Pattern: "random",
			Load: 0.6, TimeScale: 0.01, Seed: 1, Issue: IssueSequential},
		jobs: 200, max: 352,
		digest: "172a9d1ff350573c",
	},
}

// TestBatchRunGoldenDigests pins Run's batch outputs bit-for-bit against
// digests recorded before the Engine refactor: any change to event
// ordering, float arithmetic, or record contents fails here.
func TestBatchRunGoldenDigests(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.NewSDSC(trace.SDSCConfig{Jobs: tc.jobs, MaxSize: tc.max, Seed: 1}).
				FilterMaxSize(tc.max)
			res, err := Run(tc.cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if got := goldenDigest(res); got != tc.digest {
				t.Fatalf("digest %s, want %s (batch output changed bit-wise)", got, tc.digest)
			}
		})
	}
}

// TestGoldenDigestsAcrossEventCoreToggles re-runs every golden case
// through the full event-core configuration matrix — {calendar, heap}
// event queue × {incremental, rebuild-per-round} scheduler state ×
// {counted, naive} dispersal metrics — and requires the identical
// pre-overhaul digest from each of the eight combinations. This is the
// equivalence contract of the PR 9 overhaul: every fast path must be a
// pure performance change, indistinguishable in any output bit from the
// retained reference implementations.
func TestGoldenDigestsAcrossEventCoreToggles(t *testing.T) {
	for _, tc := range goldenCases {
		for _, equeue := range []string{"calendar", "heap"} {
			for _, rebuild := range []bool{false, true} {
				for _, naive := range []bool{false, true} {
					cfg := tc.cfg
					cfg.EventQueue = equeue
					cfg.RebuildSched = rebuild
					cfg.NaiveMetrics = naive
					name := fmt.Sprintf("%s/%s/rebuild=%v/naive=%v", tc.name, equeue, rebuild, naive)
					t.Run(name, func(t *testing.T) {
						tr := trace.NewSDSC(trace.SDSCConfig{Jobs: tc.jobs, MaxSize: tc.max, Seed: 1}).
							FilterMaxSize(tc.max)
						res, err := Run(cfg, tr)
						if err != nil {
							t.Fatal(err)
						}
						if got := goldenDigest(res); got != tc.digest {
							t.Fatalf("digest %s, want %s (toggle combination diverged)", got, tc.digest)
						}
					})
				}
			}
		}
	}
}
