package sim

// White-box allocation guards for the scheduler round itself, so the
// incremental structures of the event-core overhaul (persistent
// pendBuf, end-time-ordered running index, head-blocked watermark)
// cannot silently reintroduce per-event allocation. The repo-root
// zeroalloc_test.go pins the whole engine per job; these pin the
// trySchedule round in isolation.

import (
	"testing"

	"meshalloc/internal/trace"
)

// TestTryScheduleHeadBlockedZeroAlloc pins a head-blocked scheduling
// round at exactly zero allocations for every policy: FCFS and SJF
// short-circuit on the watermark, and EASY — which must re-scan because
// its backfill decisions depend on the clock — runs its full PickSorted
// round over the persistent pendBuf and runOrd without copying either.
func TestTryScheduleHeadBlockedZeroAlloc(t *testing.T) {
	for _, policy := range []string{"fcfs", "sjf", "easy"} {
		t.Run(policy, func(t *testing.T) {
			cfg := Config{
				MeshW: 8, MeshH: 8,
				Alloc: "hilbert/bestfit", Pattern: "nbody", Seed: 1,
				Scheduler:   policy,
				KeepRecords: Discard, KeepNodes: Discard,
			}
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Fill the machine, then queue jobs that cannot start.
			jobs := []trace.Job{
				{ID: 1, Size: 64, Arrival: 0, Runtime: 1000},
				{ID: 2, Size: 64, Arrival: 1, Runtime: 1000},
				{ID: 3, Size: 32, Arrival: 1, Runtime: 10},
				{ID: 4, Size: 48, Arrival: 1, Runtime: 500},
			}
			for _, j := range jobs {
				if err := e.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			e.RunUntil(2)
			if e.RunningJobs() != 1 || e.Pending() != 3 {
				t.Fatalf("setup: %d running, %d pending; want 1 running, 3 pending",
					e.RunningJobs(), e.Pending())
			}
			e.trySchedule(e.now) // warm any lazily-grown scratch
			n := testing.AllocsPerRun(200, func() {
				e.trySchedule(e.now)
			})
			if n != 0 {
				t.Fatalf("%s head-blocked round allocates %.1f objects, want 0", policy, n)
			}
			if e.RunningJobs() != 1 || e.Pending() != 3 {
				t.Fatalf("blocked rounds changed state: %d running, %d pending",
					e.RunningJobs(), e.Pending())
			}
		})
	}
}

// TestTryScheduleDispatchSteadyStateAllocs pins the full dispatching
// cycle — arrival event, scheduling round, allocation, message phases,
// finish with counted dispersal metrics — at a small constant per job
// on the Discard path: the allocator's returned id slice plus the
// pattern generator, nothing per-event and nothing per-round.
func TestTryScheduleDispatchSteadyStateAllocs(t *testing.T) {
	for _, policy := range []string{"fcfs", "easy"} {
		t.Run(policy, func(t *testing.T) {
			cfg := Config{
				MeshW: 8, MeshH: 8,
				Alloc: "hilbert/bestfit", Pattern: "nbody", Seed: 1,
				Scheduler:   policy,
				KeepRecords: Discard, KeepNodes: Discard,
			}
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			id := 0
			cycle := func() {
				id++
				if err := e.Submit(trace.Job{ID: id, Size: 16, Arrival: e.Now(), Runtime: 5}); err != nil {
					t.Fatal(err)
				}
				e.Drain()
			}
			for i := 0; i < 50; i++ {
				cycle() // warm pools, scratch and event-queue buckets
			}
			n := testing.AllocsPerRun(200, cycle)
			if n > 4 {
				t.Fatalf("%s dispatch cycle allocates %.1f objects/job, want <= 4", policy, n)
			}
			if e.Finished() != id {
				t.Fatalf("finished %d of %d jobs", e.Finished(), id)
			}
		})
	}
}
