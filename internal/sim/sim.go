// Package sim is the trace-driven microsimulator: it binds the scheduler,
// an allocation algorithm, a communication pattern, and the network model
// into one event-driven run over a job trace, producing the per-job
// records behind every figure in the paper.
//
// Job model, following Section 3 of the paper: a job arrives, waits in
// the FCFS queue until the allocator can place it, and then communicates.
// Its message quota is one message per second of traced runtime. The
// pattern's messages are issued subphase by subphase: all messages of a
// subphase enter the network together and the next subphase starts when
// the last of them arrives. The job terminates when the whole quota has
// been delivered, so a job's lifetime — and through queueing, every later
// job's response time — is determined by network contention, which is
// what the allocation algorithms fight over.
//
// The package has two entry points built on one core. Run replays a
// whole trace as a closed system and returns every record, exactly the
// paper's setup. Engine exposes the lifecycle underneath — online
// Submit while the clock runs, Step/RunUntil/Drain, streaming Observer
// callbacks, Result at any time — and, with the Discard retention
// policies, holds constant memory over unbounded open-system workloads
// fed from a trace.Source.
package sim

import (
	"fmt"

	"meshalloc/internal/fault"
	"meshalloc/internal/netsim"
	"meshalloc/internal/trace"
)

// IssueMode selects how a job's messages enter the network.
type IssueMode int

const (
	// IssuePhased injects each pattern subphase as one concurrent burst
	// with a barrier before the next subphase — the parallel-program
	// behaviour ProcSimity models. Default.
	IssuePhased IssueMode = iota
	// IssueSequential injects one message at a time per job, each send
	// blocking on the previous delivery; the ablation mode.
	IssueSequential
)

// String implements fmt.Stringer.
func (m IssueMode) String() string {
	if m == IssueSequential {
		return "sequential"
	}
	return "phased"
}

// KeepPolicy selects whether per-job data is retained in memory or only
// streamed to observers.
type KeepPolicy int

const (
	// Keep retains the data (default; what the batch experiments expect).
	Keep KeepPolicy = iota
	// Discard drops the data once observers have seen it, so unbounded
	// open-system runs hold O(1) memory.
	Discard
)

// String implements fmt.Stringer.
func (p KeepPolicy) String() string {
	if p == Discard {
		return "discard"
	}
	return "keep"
}

// Config describes one simulation run.
type Config struct {
	// MeshW, MeshH are the machine dimensions (paper: 16x22 and 16x16).
	// They are the 2-D compatibility path: when Dims is empty the
	// machine is the MeshW x MeshH mesh, exactly as before the topology
	// layer became dimension-generic.
	MeshW, MeshH int
	// Dims, when non-empty, gives the machine extents axis by axis and
	// overrides MeshW/MeshH — e.g. []int{8, 8, 8} simulates the 8x8x8
	// 3-D mesh CPlant physically was. Allocators, routing and link
	// accounting all run natively in n dimensions.
	Dims []int
	// Torus adds wraparound links (the paper's machines are plain
	// meshes; torus mode is an extension for other topologies).
	Torus bool
	// Alloc is the allocator spec (see alloc.Spec), e.g. "hilbert/bestfit".
	Alloc string
	// Pattern is the communication pattern name (see comm.ByName).
	Pattern string
	// Load is the arrival-contraction factor (1 down to 0.2).
	Load float64
	// TimeScale contracts the whole trace (arrivals, runtimes and hence
	// message quotas) to keep runs tractable; reported times re-inflate
	// by 1/TimeScale. 1.0 replays the trace at full length.
	TimeScale float64
	// Seed drives randomized patterns and allocators.
	Seed int64
	// Net is the network timing; zero value means netsim.DefaultConfig.
	Net netsim.Config
	// Scheduler is "fcfs" (default, as in the paper), "easy" or "sjf";
	// see sched.ByName.
	Scheduler string
	// Issue selects phased (default) or sequential message injection.
	Issue IssueMode
	// MsgsPerSecond converts traced runtime to message quota (paper: 1).
	MsgsPerSecond float64
	// MaxPhase caps messages issued per event to bound event sizes for
	// enormous all-to-all phases; 0 means no cap.
	MaxPhase int
	// KeepRecords selects whether Result.Records accumulates every
	// per-job record (Keep, default) or records only stream to
	// observers (Discard). Discard bounds memory for million-job runs;
	// MedianResponse then comes from the P² streaming estimator.
	KeepRecords KeepPolicy
	// KeepNodes selects whether each JobRecord retains its Nodes slice
	// (Keep, default). Discard skips the per-job copy; dispersal
	// metrics (AvgPairwise, Components) are computed either way.
	KeepNodes KeepPolicy
	// AllocWorkers shards the allocator's candidate-scoring loop over
	// this many goroutines when the allocator supports it (MC, MC1x1 and
	// Gen-Alg on their indexed paths). The parallel scan is bit-identical
	// to the sequential one — the lowest-id candidate wins ties either
	// way — so this knob only trades goroutines for wall clock. 0 or 1
	// keeps the sequential loop; other allocators ignore it.
	AllocWorkers int
	// Faults injects node failure/repair events (see fault.Config). The
	// zero value disables injection, leaving every code path and output
	// bit-identical to a fault-free engine. Fault times (MTBF/MTTR
	// draws, script times, retry delays) are given in original trace
	// seconds and contracted by TimeScale like job runtimes. When
	// Faults.Seed is zero, Seed derives the failure clocks. The
	// configured allocator must implement alloc.FaultAware; NewEngine
	// rejects contiguous baselines (submesh, buddy, paged forms) that
	// cannot mask individual nodes.
	Faults fault.Config
	// Retry is the policy for jobs killed by a node failure (see
	// fault.Retry). The zero value resubmits killed jobs immediately
	// with no attempt bound; parse "none", "immediate[:N]" or
	// "backoff:BASE,CAP[,N]" specs with fault.ParseRetry.
	Retry fault.Retry
	// EventQueue selects the event-core priority queue: "calendar"
	// (default — adaptive calendar queue, O(1) amortized, with an
	// automatic demotion to the heap on pathological timestamp
	// distributions) or "heap" (the retained binary-heap reference).
	// Both pop the identical (t, seq) order, so every output is
	// bit-identical either way; the knob exists for equivalence testing
	// and for profiling one against the other.
	EventQueue string
	// RebuildSched, when true, rebuilds the scheduler's pending/running
	// snapshots from scratch on every round and disables the
	// head-blocked watermark — the reference path the incremental
	// structures are equivalence-tested against. Outputs are identical;
	// the default (false) is just faster.
	RebuildSched bool
	// NaiveMetrics, when true, computes each finished job's dispersal
	// metrics (Components, AvgPairwise) with the materializing
	// reference walks instead of the counted forms in topo/setmetrics.go.
	// The counted forms are integer-exact, so outputs are bit-identical
	// either way; the knob exists for equivalence testing.
	NaiveMetrics bool
	// AuditEvery, when positive, runs the invariant auditor (see
	// Engine.Audit) after every AuditEvery-th processed event. A
	// violation panics — it means engine bookkeeping has diverged, the
	// same class of bug the engine's other internal checks treat as
	// fatal. 0 (default) disables periodic auditing; the audit always
	// runs once at the end of a batch Run and after a snapshot restore.
	AuditEvery int
}

// withDefaults fills zero fields with the paper-experiment defaults.
func (c Config) withDefaults() Config {
	if c.Load == 0 {
		c.Load = 1
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	if c.Net.MessageFlits == 0 {
		c.Net = netsim.DefaultConfig()
	}
	if c.Scheduler == "" {
		c.Scheduler = "fcfs"
	}
	if c.MsgsPerSecond == 0 {
		c.MsgsPerSecond = 1
	}
	if c.EventQueue == "" {
		c.EventQueue = "calendar"
	}
	return c
}

// dims resolves the machine extents: Dims when given, the MeshW x MeshH
// compatibility pair otherwise.
func (c Config) dims() []int {
	if len(c.Dims) > 0 {
		return c.Dims
	}
	return []int{c.MeshW, c.MeshH}
}

// JobRecord is the per-job outcome, in original (un-time-scaled) seconds.
type JobRecord struct {
	ID   int
	Size int
	// Quota is the number of messages the job had to deliver.
	Quota int64
	// Arrival, Start, Finish are absolute times; Response = Finish -
	// Arrival (the paper's metric), RunTime = Finish - Start.
	Arrival, Start, Finish float64
	Response, RunTime      float64
	Wait                   float64
	// AvgPairwise is the mean pairwise Manhattan distance of the job's
	// processors (the dispersal metric of Figure 9).
	AvgPairwise float64
	// AvgMsgDist is the mean hops per delivered message (Figure 10).
	AvgMsgDist float64
	// QueuedSec is the total time the job's messages spent blocked on
	// busy links.
	QueuedSec float64
	// Components is the number of rectilinearly-connected components of
	// the allocation; Contiguous means a single component (Figure 11).
	Components int
	Contiguous bool
	// Nodes is the allocation itself (sorted processor ids), retained so
	// consumers can compute further dispersal metrics post hoc. Nil
	// when Config.KeepNodes is Discard.
	Nodes []int
}

// Result is the outcome of one run.
type Result struct {
	Config Config
	// Records holds every per-job record in finish order, or nil when
	// Config.KeepRecords is Discard (records then only stream through
	// Engine.Observe).
	Records []JobRecord
	// Jobs is the number of jobs that completed, whether or not their
	// records were retained.
	Jobs int
	// MeanResponse is the mean job response time in original seconds.
	MeanResponse float64
	// MedianResponse is the 50th percentile response time: exact over
	// retained records, the P² streaming estimate under Discard.
	MedianResponse float64
	// PctContiguous is the percentage of jobs allocated contiguously.
	PctContiguous float64
	// AvgComponents is the mean number of allocation components per job.
	AvgComponents float64
	// Net is the aggregate network activity (in scaled time units).
	Net netsim.Stats
	// NodeUtilization is each node's mean outgoing-link busy fraction
	// over the run, a contention heatmap indexed by node id.
	NodeUtilization []float64
	// Makespan is the completion time of the last job, original seconds.
	Makespan float64
	// UtilizationPct is the time-weighted percentage of processors held
	// by jobs over the makespan — the system-utilization measure that
	// the paper says contiguous-only allocation drives unacceptably low.
	UtilizationPct float64
	// MeanQueueLen is the time-weighted mean number of queued jobs.
	MeanQueueLen float64

	// Fault-injection outcomes; all zero on a fault-free run. Killed
	// counts job kills by node failures (a job killed twice counts
	// twice), Retried the kills followed by a resubmission, GivenUp the
	// jobs abandoned by the retry policy.
	Killed, Retried, GivenUp int
	// WastedPct is the percentage of consumed processor-seconds thrown
	// away by kills (work a job had accumulated when a failure killed
	// it). GoodputPct is the time-weighted percentage of the machine
	// doing work that eventually completed — utilization minus waste.
	// DownPct is the time-weighted percentage of the machine masked out
	// by failures or drains.
	WastedPct, GoodputPct, DownPct float64
}

// Run simulates the trace under cfg and returns the per-job records. The
// trace is taken in original time units; Run applies Load and TimeScale
// itself. Jobs larger than the mesh are rejected with an error.
//
// Run is a thin closed-system wrapper over Engine: every job is
// submitted up front, the event heap drains to completion, and the
// resulting records and aggregates are bit-identical to the historical
// monolithic implementation (pinned by the golden digests in
// golden_equiv_test.go).
func Run(cfg Config, tr *trace.Trace) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	// Submit validates each job (oversized jobs error out here, before
	// any event is processed — the whole run is rejected, as always).
	for _, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			return nil, err
		}
	}
	e.Drain()
	if e.Deadlocked() {
		return nil, fmt.Errorf("sim: deadlock with %d queued and %d running jobs",
			e.Pending(), e.RunningJobs())
	}
	// Every batch run ends with one pass of the invariant auditor: the
	// cross-checks are O(machine) against a whole run's work, and a
	// divergence caught here names the broken invariant instead of
	// surfacing as a silently wrong digest.
	if err := e.Audit(); err != nil {
		return nil, err
	}
	return e.Result(), nil
}
