// Package sim is the trace-driven microsimulator: it binds the scheduler,
// an allocation algorithm, a communication pattern, and the network model
// into one event-driven run over a job trace, producing the per-job
// records behind every figure in the paper.
//
// Job model, following Section 3 of the paper: a job arrives, waits in
// the FCFS queue until the allocator can place it, and then communicates.
// Its message quota is one message per second of traced runtime. The
// pattern's messages are issued subphase by subphase: all messages of a
// subphase enter the network together and the next subphase starts when
// the last of them arrives. The job terminates when the whole quota has
// been delivered, so a job's lifetime — and through queueing, every later
// job's response time — is determined by network contention, which is
// what the allocation algorithms fight over.
package sim

import (
	"fmt"
	"math"
	"sort"

	"meshalloc/internal/alloc"
	"meshalloc/internal/comm"
	"meshalloc/internal/netsim"
	"meshalloc/internal/sched"
	"meshalloc/internal/stats"
	"meshalloc/internal/topo"
	"meshalloc/internal/trace"
)

// IssueMode selects how a job's messages enter the network.
type IssueMode int

const (
	// IssuePhased injects each pattern subphase as one concurrent burst
	// with a barrier before the next subphase — the parallel-program
	// behaviour ProcSimity models. Default.
	IssuePhased IssueMode = iota
	// IssueSequential injects one message at a time per job, each send
	// blocking on the previous delivery; the ablation mode.
	IssueSequential
)

// String implements fmt.Stringer.
func (m IssueMode) String() string {
	if m == IssueSequential {
		return "sequential"
	}
	return "phased"
}

// Config describes one simulation run.
type Config struct {
	// MeshW, MeshH are the machine dimensions (paper: 16x22 and 16x16).
	// They are the 2-D compatibility path: when Dims is empty the
	// machine is the MeshW x MeshH mesh, exactly as before the topology
	// layer became dimension-generic.
	MeshW, MeshH int
	// Dims, when non-empty, gives the machine extents axis by axis and
	// overrides MeshW/MeshH — e.g. []int{8, 8, 8} simulates the 8x8x8
	// 3-D mesh CPlant physically was. Allocators, routing and link
	// accounting all run natively in n dimensions.
	Dims []int
	// Torus adds wraparound links (the paper's machines are plain
	// meshes; torus mode is an extension for other topologies).
	Torus bool
	// Alloc is the allocator spec (see alloc.Spec), e.g. "hilbert/bestfit".
	Alloc string
	// Pattern is the communication pattern name (see comm.ByName).
	Pattern string
	// Load is the arrival-contraction factor (1 down to 0.2).
	Load float64
	// TimeScale contracts the whole trace (arrivals, runtimes and hence
	// message quotas) to keep runs tractable; reported times re-inflate
	// by 1/TimeScale. 1.0 replays the trace at full length.
	TimeScale float64
	// Seed drives randomized patterns and allocators.
	Seed int64
	// Net is the network timing; zero value means netsim.DefaultConfig.
	Net netsim.Config
	// Scheduler is "fcfs" (default, as in the paper) or "easy".
	Scheduler string
	// Issue selects phased (default) or sequential message injection.
	Issue IssueMode
	// MsgsPerSecond converts traced runtime to message quota (paper: 1).
	MsgsPerSecond float64
	// MaxPhase caps messages issued per event to bound event sizes for
	// enormous all-to-all phases; 0 means no cap.
	MaxPhase int
}

// withDefaults fills zero fields with the paper-experiment defaults.
func (c Config) withDefaults() Config {
	if c.Load == 0 {
		c.Load = 1
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	if c.Net.MessageFlits == 0 {
		c.Net = netsim.DefaultConfig()
	}
	if c.Scheduler == "" {
		c.Scheduler = "fcfs"
	}
	if c.MsgsPerSecond == 0 {
		c.MsgsPerSecond = 1
	}
	return c
}

// dims resolves the machine extents: Dims when given, the MeshW x MeshH
// compatibility pair otherwise.
func (c Config) dims() []int {
	if len(c.Dims) > 0 {
		return c.Dims
	}
	return []int{c.MeshW, c.MeshH}
}

// JobRecord is the per-job outcome, in original (un-time-scaled) seconds.
type JobRecord struct {
	ID   int
	Size int
	// Quota is the number of messages the job had to deliver.
	Quota int64
	// Arrival, Start, Finish are absolute times; Response = Finish -
	// Arrival (the paper's metric), RunTime = Finish - Start.
	Arrival, Start, Finish float64
	Response, RunTime      float64
	Wait                   float64
	// AvgPairwise is the mean pairwise Manhattan distance of the job's
	// processors (the dispersal metric of Figure 9).
	AvgPairwise float64
	// AvgMsgDist is the mean hops per delivered message (Figure 10).
	AvgMsgDist float64
	// QueuedSec is the total time the job's messages spent blocked on
	// busy links.
	QueuedSec float64
	// Components is the number of rectilinearly-connected components of
	// the allocation; Contiguous means a single component (Figure 11).
	Components int
	Contiguous bool
	// Nodes is the allocation itself (sorted processor ids), retained so
	// consumers can compute further dispersal metrics post hoc.
	Nodes []int
}

// Result is the outcome of one run.
type Result struct {
	Config  Config
	Records []JobRecord
	// MeanResponse is the mean job response time in original seconds.
	MeanResponse float64
	// MedianResponse is the 50th percentile response time.
	MedianResponse float64
	// PctContiguous is the percentage of jobs allocated contiguously.
	PctContiguous float64
	// AvgComponents is the mean number of allocation components per job.
	AvgComponents float64
	// Net is the aggregate network activity (in scaled time units).
	Net netsim.Stats
	// NodeUtilization is each node's mean outgoing-link busy fraction
	// over the run, a contention heatmap indexed by node id.
	NodeUtilization []float64
	// Makespan is the completion time of the last job, original seconds.
	Makespan float64
	// UtilizationPct is the time-weighted percentage of processors held
	// by jobs over the makespan — the system-utilization measure that
	// the paper says contiguous-only allocation drives unacceptably low.
	UtilizationPct float64
	// MeanQueueLen is the time-weighted mean number of queued jobs.
	MeanQueueLen float64
}

// event is a heap entry.
type event struct {
	t    float64
	seq  int64 // FIFO tie-break for determinism
	kind int   // kindArrival, kindStep or kindFinish
	job  *runningJob
	idx  int // arrival: trace index
}

const (
	kindArrival = iota
	kindStep
	kindFinish
)

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

// eventHeap is a hand-rolled binary min-heap of events ordered by (t,
// seq). container/heap would box every pushed and popped event into an
// interface — one garbage allocation per simulated event, right on the
// hottest loop of the simulator — so the sift operations are written out
// against the concrete slice instead.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the job pointer so the pool can recycle it
	*h = s[:n]
	s = s[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

type runningJob struct {
	job      trace.Job
	nodes    []int
	gen      comm.Generator
	quota    int64
	sent     int64
	start    float64
	lastArr  float64 // latest delivery so far
	hops     int64
	queued   float64
	pending  comm.Msg // first message of the next phase (phased mode)
	havePend bool
	estEnd   float64 // nominal end for backfilling estimates
}

// Run simulates the trace under cfg and returns the per-job records. The
// trace is taken in original time units; Run applies Load and TimeScale
// itself. Jobs larger than the mesh are rejected with an error.
func Run(cfg Config, tr *trace.Trace) (*Result, error) {
	cfg = cfg.withDefaults()
	dims := cfg.dims()
	if len(dims) < 1 || len(dims) > topo.MaxDims {
		return nil, fmt.Errorf("sim: machine needs 1..%d dimensions, got %d", topo.MaxDims, len(dims))
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("sim: invalid machine extent %d on axis %d", d, i)
		}
	}
	var m *topo.Grid
	if cfg.Torus {
		m = topo.NewTorus(dims)
	} else {
		m = topo.New(dims)
	}
	for _, j := range tr.Jobs {
		if j.Size > m.Size() {
			return nil, fmt.Errorf("sim: job %d needs %d processors, machine has %d (filter the trace first)",
				j.ID, j.Size, m.Size())
		}
	}
	allocator, err := alloc.Spec(m, cfg.Alloc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pattern, err := comm.ByName(cfg.Pattern)
	if err != nil {
		return nil, err
	}
	// Same-size jobs share one immutable phase schedule for the run.
	pattern = comm.Cached(pattern)
	policy, err := sched.ByName(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	net := netsim.New(m, cfg.Net)
	rng := stats.NewRNG(cfg.Seed)

	scaled := tr.ScaleLoad(cfg.Load).ScaleTime(cfg.TimeScale)

	var (
		events  = make(eventHeap, 0, len(scaled.Jobs)+64)
		seq     int64
		queue   = make([]trace.Job, 0, len(scaled.Jobs)) // FCFS arrival order
		running = map[*runningJob]bool{}
		records = make([]JobRecord, 0, len(scaled.Jobs))
		rjPool  []*runningJob // recycled runningJob structs

		// Time-weighted occupancy accounting.
		busyProcs   int
		lastAccount float64
		busyArea    float64 // processor-seconds held by jobs
		queueArea   float64 // job-seconds spent queued
	)
	account := func(now float64) {
		if now > lastAccount {
			busyArea += float64(busyProcs) * (now - lastAccount)
			queueArea += float64(len(queue)) * (now - lastAccount)
			lastAccount = now
		}
	}
	push := func(e event) {
		e.seq = seq
		seq++
		events.push(e)
	}
	for i := range scaled.Jobs {
		push(event{t: scaled.Jobs[i].Arrival, kind: kindArrival, idx: i})
	}

	quotaOf := func(j trace.Job) int64 {
		q := int64(math.Round(j.Runtime * cfg.MsgsPerSecond))
		if q < 1 {
			q = 1
		}
		return q
	}

	_, isFCFS := policy.(sched.FCFS)
	// pendBuf and runBuf are persistent scratch for the non-FCFS policy
	// path, refilled per trySchedule round.
	var (
		pendBuf []sched.Pending
		runBuf  []sched.Running
	)
	// trySchedule starts every job the policy allows at time now.
	trySchedule := func(now float64) {
		for {
			var pick int
			if isFCFS {
				// Fast path: strict FCFS only ever inspects the head.
				pick = -1
				if len(queue) > 0 && queue[0].Size <= allocator.NumFree() {
					pick = 0
				}
			} else {
				pendBuf = pendBuf[:0]
				for _, j := range queue {
					pendBuf = append(pendBuf, sched.Pending{Size: j.Size, EstRuntime: j.Runtime})
				}
				runBuf = runBuf[:0]
				for rj := range running {
					runBuf = append(runBuf, sched.Running{Size: rj.job.Size, EstEnd: rj.estEnd})
				}
				pick = policy.Pick(pendBuf, now, allocator.NumFree(), runBuf)
			}
			if pick < 0 {
				return
			}
			job := queue[pick]
			nodes, err := allocator.Allocate(alloc.Request{Size: job.Size})
			if err == alloc.ErrInsufficient {
				// Contiguous allocators (submesh, buddy) can refuse on
				// external fragmentation even when enough processors
				// are free; the job stays queued until a release.
				return
			}
			if err != nil {
				// Any other refusal is a bookkeeping bug.
				panic(fmt.Sprintf("sim: allocator %s refused %d procs with %d free: %v",
					allocator.Name(), job.Size, allocator.NumFree(), err))
			}
			queue = append(queue[:pick], queue[pick+1:]...)
			var rj *runningJob
			if n := len(rjPool); n > 0 {
				rj, rjPool = rjPool[n-1], rjPool[:n-1]
			} else {
				rj = new(runningJob)
			}
			*rj = runningJob{
				job:     job,
				nodes:   nodes,
				gen:     pattern.Generator(job.Size, rng),
				quota:   quotaOf(job),
				start:   now,
				lastArr: now,
				estEnd:  now + job.Runtime,
			}
			running[rj] = true
			busyProcs += job.Size
			push(event{t: now, kind: kindStep, job: rj})
		}
	}

	// finish runs as its own event at the time the job's last message
	// arrived, so processors are not released before that moment.
	finish := func(rj *runningJob, now float64) {
		delete(running, rj)
		allocator.Release(rj.nodes)
		busyProcs -= rj.job.Size
		end := rj.lastArr
		if end < now {
			end = now
		}
		inv := 1 / cfg.TimeScale
		comps := m.Components(rj.nodes)
		rec := JobRecord{
			ID:          rj.job.ID,
			Size:        rj.job.Size,
			Quota:       rj.quota,
			Arrival:     rj.job.Arrival * inv,
			Start:       rj.start * inv,
			Finish:      end * inv,
			Response:    (end - rj.job.Arrival) * inv,
			RunTime:     (end - rj.start) * inv,
			Wait:        (rj.start - rj.job.Arrival) * inv,
			AvgPairwise: m.AvgPairwiseDist(rj.nodes),
			QueuedSec:   rj.queued * inv,
			Components:  len(comps),
			Contiguous:  len(comps) == 1,
			Nodes:       sortedCopy(rj.nodes),
		}
		if rj.sent > 0 {
			rec.AvgMsgDist = float64(rj.hops) / float64(rj.sent)
		}
		records = append(records, rec)
		// The finish event was the job's last reference; recycle the
		// struct for a later arrival.
		*rj = runningJob{}
		rjPool = append(rjPool, rj)
		trySchedule(end)
	}

	// step issues the next burst of messages for rj at time now and
	// schedules the follow-up event.
	step := func(rj *runningJob, now float64) {
		burst := int64(1)
		if cfg.Issue == IssuePhased {
			burst = math.MaxInt64 // until phase boundary
		}
		if cfg.MaxPhase > 0 && burst > int64(cfg.MaxPhase) {
			burst = int64(cfg.MaxPhase)
		}
		maxArr := now
		var issued int64
		for issued < burst && rj.sent < rj.quota {
			var msg comm.Msg
			if rj.havePend {
				msg, rj.havePend = rj.pending, false
			} else {
				var newPhase bool
				msg, newPhase = rj.gen.Next()
				if newPhase && issued > 0 {
					// The phase ended; save the message for the next burst.
					rj.pending, rj.havePend = msg, true
					break
				}
			}
			r := net.Send(rj.nodes[msg.Src], rj.nodes[msg.Dst], now)
			rj.sent++
			rj.hops += int64(r.Hops)
			rj.queued += r.Queued
			if r.Arrival > maxArr {
				maxArr = r.Arrival
			}
			issued++
		}
		if maxArr > rj.lastArr {
			rj.lastArr = maxArr
		}
		if rj.sent >= rj.quota {
			push(event{t: maxArr, kind: kindFinish, job: rj})
			return
		}
		// Barrier: the next subphase starts when this burst has arrived.
		push(event{t: maxArr, kind: kindStep, job: rj})
	}

	for len(events) > 0 {
		e := events.pop()
		account(e.t)
		switch e.kind {
		case kindArrival:
			queue = append(queue, scaled.Jobs[e.idx])
			trySchedule(e.t)
		case kindStep:
			step(e.job, e.t)
		case kindFinish:
			finish(e.job, e.t)
		}
	}
	if len(queue) > 0 || len(running) > 0 {
		return nil, fmt.Errorf("sim: deadlock with %d queued and %d running jobs", len(queue), len(running))
	}

	res := &Result{Config: cfg, Records: records, Net: net.Stats(), NodeUtilization: net.NodeUtilization()}
	responses := make([]float64, 0, len(records))
	totalComps := 0
	contig := 0
	for _, r := range records {
		responses = append(responses, r.Response)
		totalComps += r.Components
		if r.Contiguous {
			contig++
		}
		if r.Finish > res.Makespan {
			res.Makespan = r.Finish
		}
	}
	res.MeanResponse = stats.Mean(responses)
	res.MedianResponse = stats.Percentile(responses, 50)
	if len(records) > 0 {
		res.PctContiguous = 100 * float64(contig) / float64(len(records))
		res.AvgComponents = float64(totalComps) / float64(len(records))
	}
	if lastAccount > 0 {
		res.UtilizationPct = 100 * busyArea / (lastAccount * float64(m.Size()))
		res.MeanQueueLen = queueArea / lastAccount
	}
	return res, nil
}
