package sim

import "math"

// eventQueue is the engine's event-core priority queue contract: events
// pop in strictly ascending (t, seq) order — the FIFO tie rule every
// golden digest depends on. Two implementations are kept: the binary
// eventHeap (the reference, O(log n) per op) and the adaptive calendar
// queue below (O(1) amortized on the clock-like timestamp streams a
// discrete-event simulation produces). Config.EventQueue selects one;
// both are equivalence- and fuzz-tested to pop identical orders.
type eventQueue interface {
	push(event)
	pop() event
	len() int
	// head returns the earliest event's time and kind without removing
	// it; ok is false on an empty queue.
	head() (t float64, kind int, ok bool)
	// each visits every queued event in unspecified order without
	// consuming it — the snapshot walk. Events carry their assigned seq,
	// so any visit order re-pushes into an equivalent queue.
	each(fn func(event))
}

func (h *eventHeap) len() int { return len(*h) }

func (h *eventHeap) each(fn func(event)) {
	for _, ev := range *h {
		fn(ev)
	}
}

func (h *eventHeap) head() (float64, int, bool) {
	if len(*h) == 0 {
		return 0, 0, false
	}
	return (*h)[0].t, (*h)[0].kind, true
}

const (
	calMinBuckets = 8
	// calFallbackWindow operations are costed together; if they average
	// more than calFallbackCost scan steps each, the timestamp
	// distribution has defeated the bucketing (everything clustered in a
	// few buckets, or pops forever walking empty years) and the queue
	// falls back to the binary heap for the rest of the run. The switch
	// cannot change outputs: both structures pop the same (t, seq)
	// order.
	calFallbackWindow = 2048
	calFallbackCost   = 48
)

// calQueue is an adaptive calendar queue (Brown 1988): a circular array
// of time buckets of width `width`, each holding its events sorted by
// (t, seq). An event at time t lands in absolute bucket floor(t/width),
// stored at that number modulo the bucket count; the dequeue cursor
// walks absolute bucket numbers, so with the width matched to the event
// density both ends cost O(1) amortized. Identical timestamps always
// share a bucket, so the (t, seq) tie contract is enforced by the
// in-bucket sort alone. Bucket membership is always decided by the one
// expression floor(t*inv) — never by incrementally accumulated bounds —
// so cursor scans cannot disagree with insertion about which year an
// event belongs to. The width and bucket count re-adapt on occupancy
// doublings/halvings, and a cost monitor (see calFallback*) demotes the
// whole queue to the retained binary heap on pathological
// distributions.
type calQueue struct {
	buckets [][]event
	mask    int64 // len(buckets)-1; bucket count is a power of two
	width   float64
	inv     float64 // 1/width
	count   int
	curA    int64 // cursor: absolute bucket number of the earliest event
	grow    int   // resize up when count exceeds this
	shrink  int   // resize down when count drops below this

	// Cost accounting for adaptation stats and the heap fallback.
	resizes     int64
	directScans int64
	opCost      int64
	ops         int64
	fellBack    bool
	hp          eventHeap
}

func newCalQueue() *calQueue {
	q := &calQueue{}
	q.reshape(calMinBuckets, 1)
	return q
}

// calMaxBucket clamps absolute bucket numbers so t/width cannot
// overflow the int64 conversion. Every clamped time shares one (sorted)
// bucket — still correct, just costly, and the cost monitor demotes
// such distributions to the heap.
const calMaxBucket = int64(1) << 53

// bucketOf returns the absolute bucket number of time t.
func (q *calQueue) bucketOf(t float64) int64 {
	y := math.Floor(t * q.inv)
	if y >= float64(calMaxBucket) {
		return calMaxBucket
	}
	if y <= -float64(calMaxBucket) {
		return -calMaxBucket
	}
	return int64(y)
}

// reshape installs a fresh bucket array and width and re-inserts any
// existing events, leaving the cursor on the earliest one.
func (q *calQueue) reshape(nb int, width float64) {
	old := q.buckets
	q.buckets = make([][]event, nb)
	q.mask = int64(nb - 1)
	q.width = width
	q.inv = 1 / width
	q.grow = 2 * nb
	q.shrink = nb / 2
	if nb == calMinBuckets {
		q.shrink = 0
	}
	q.count = 0
	q.curA = 0
	first := true
	for _, b := range old {
		for _, ev := range b {
			q.insert(ev)
			if a := q.bucketOf(ev.t); first || a < q.curA {
				q.curA = a
				first = false
			}
		}
	}
}

// insert places ev in its bucket, keeping the bucket (t, seq)-sorted.
// Returns the number of displaced entries (the insertion scan cost).
func (q *calQueue) insert(ev event) int {
	b := q.bucketOf(ev.t) & q.mask
	s := q.buckets[b]
	i := len(s)
	for i > 0 && (s[i-1].t > ev.t || (s[i-1].t == ev.t && s[i-1].seq > ev.seq)) {
		i--
	}
	s = append(s, event{})
	copy(s[i+1:], s[i:])
	s[i] = ev
	q.buckets[b] = s
	q.count++
	return len(s) - 1 - i
}

func (q *calQueue) push(ev event) {
	if q.fellBack {
		q.hp.push(ev)
		return
	}
	cost := q.insert(ev)
	// An event landing before the cursor's bucket must pull the cursor
	// back or it would be skipped. (The engine only pushes at or after
	// the last popped time, but the queue stays general — the fuzz
	// harness pushes arbitrarily.)
	if a := q.bucketOf(ev.t); a < q.curA {
		q.curA = a
	}
	q.noteCost(cost)
	if q.count > q.grow {
		q.adapt(2 * (int(q.mask) + 1))
	}
	q.checkFallback()
}

func (q *calQueue) len() int {
	if q.fellBack {
		return len(q.hp)
	}
	return q.count
}

// findHead locates the earliest event, advancing the cursor across
// empty or future-year buckets, and returns its bucket's storage index.
// Must only be called on a non-empty, non-fallen-back queue.
func (q *calQueue) findHead() int {
	for {
		a := q.curA
		for n := 0; n <= int(q.mask); n++ {
			b := q.buckets[a&q.mask]
			// The bucket's head is current exactly when its absolute
			// bucket number equals the cursor's — computed fresh by the
			// same expression insertion used, so no drift.
			if len(b) > 0 && q.bucketOf(b[0].t) == a {
				q.curA = a
				q.noteCost(n)
				return int(a & q.mask)
			}
			a++
		}
		// A whole year of buckets held nothing current: jump the cursor
		// straight to the globally earliest event (sparse far-future
		// tail) and rescan.
		q.directScans++
		best := -1
		for bi := range q.buckets {
			b := q.buckets[bi]
			if len(b) == 0 {
				continue
			}
			if best < 0 || b[0].t < q.buckets[best][0].t ||
				(b[0].t == q.buckets[best][0].t && b[0].seq < q.buckets[best][0].seq) {
				best = bi
			}
		}
		q.noteCost(int(q.mask) + 1)
		q.curA = q.bucketOf(q.buckets[best][0].t)
	}
}

func (q *calQueue) pop() event {
	if q.fellBack {
		return q.hp.pop()
	}
	bi := q.findHead()
	b := q.buckets[bi]
	ev := b[0]
	n := copy(b, b[1:])
	b[n] = event{}
	q.buckets[bi] = b[:n]
	q.count--
	if q.count < q.shrink {
		q.adapt((int(q.mask) + 1) / 2)
	}
	q.checkFallback()
	return ev
}

func (q *calQueue) head() (float64, int, bool) {
	if q.fellBack {
		return q.hp.head()
	}
	if q.count == 0 {
		return 0, 0, false
	}
	b := q.buckets[q.findHead()]
	return b[0].t, b[0].kind, true
}

// adapt resizes to nb buckets with a width re-sampled from the live
// event population: the mean inter-event gap targets one event per
// bucket under a uniform spread.
func (q *calQueue) adapt(nb int) {
	if nb < calMinBuckets {
		nb = calMinBuckets
	}
	if nb == int(q.mask)+1 && nb != calMinBuckets {
		return
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, b := range q.buckets {
		for i := range b {
			if b[i].t < minT {
				minT = b[i].t
			}
			if b[i].t > maxT {
				maxT = b[i].t
			}
		}
	}
	width := q.width
	if q.count > 1 && maxT > minT {
		width = (maxT - minT) / float64(q.count)
	}
	// Keep absolute bucket numbers (t/width) well inside int64 range.
	if m := math.Max(math.Abs(maxT), math.Abs(minT)); m > 0 && width < m*1e-15 {
		width = m * 1e-15
	}
	if width <= 0 || math.IsInf(width, 0) || math.IsNaN(width) {
		width = 1
	}
	q.resizes++
	q.reshape(nb, width)
}

// noteCost accumulates the scan-step cost of one operation for the
// fallback monitor.
func (q *calQueue) noteCost(c int) {
	q.opCost += int64(c)
	q.ops++
}

// checkFallback demotes the queue to the retained binary heap when the
// completed cost window averages more scan steps per operation than a
// heap would plausibly cost. Called only between operations, never
// mid-scan, so the structure is always consistent when it drains. The
// switch is invisible in outputs: both structures pop the same (t, seq)
// order.
func (q *calQueue) checkFallback() {
	if q.ops < calFallbackWindow {
		return
	}
	if q.opCost > calFallbackCost*q.ops {
		q.fallbackToHeap()
	}
	q.opCost, q.ops = 0, 0
}

// fallbackToHeap drains every bucket into the binary heap and routes
// all further operations there.
func (q *calQueue) fallbackToHeap() {
	for bi, b := range q.buckets {
		for _, ev := range b {
			q.hp.push(ev)
		}
		q.buckets[bi] = nil
	}
	q.count = 0
	q.fellBack = true
}

// each visits every queued event. After a heap fallback the buckets are
// all nil with count zero, so walking both structures unconditionally
// visits each event exactly once.
func (q *calQueue) each(fn func(event)) {
	for _, b := range q.buckets {
		for _, ev := range b {
			fn(ev)
		}
	}
	for _, ev := range q.hp {
		fn(ev)
	}
}

// queueStats reports the adaptation counters for the profiling layer.
func (q *calQueue) queueStats() (resizes, directScans int64, fellBack bool) {
	return q.resizes, q.directScans, q.fellBack
}
