package sim

import (
	"testing"

	"meshalloc/internal/alloc"
	"meshalloc/internal/comm"
	"meshalloc/internal/trace"
)

// TestAllocatorPatternMatrix drives every allocator spec against every
// pattern end-to-end and checks the cross-cutting invariants the rest of
// the suite verifies only per-component:
//   - every job completes exactly once,
//   - response = wait + runtime,
//   - timestamps are ordered and non-negative,
//   - the machine is empty at the end (utilization accounting balances).
func TestAllocatorPatternMatrix(t *testing.T) {
	tr := trace.NewSDSC(trace.SDSCConfig{Jobs: 40, MaxSize: 64, Seed: 21})
	specs := append(alloc.Fig11Specs(),
		"random", "submesh", "buddy", "zorder/bestfit", "moore",
		"hilbert/worstfit", "hilbert/nextfit", "hilbert/freelist/page1")
	for _, spec := range specs {
		for _, pattern := range comm.All() {
			cfg := Config{
				MeshW: 8, MeshH: 8,
				Alloc:     spec,
				Pattern:   pattern,
				TimeScale: 0.01,
				Seed:      3,
			}
			res, err := Run(cfg, tr)
			if err != nil {
				t.Fatalf("%s x %s: %v", spec, pattern, err)
			}
			if len(res.Records) != 40 {
				t.Fatalf("%s x %s: %d records", spec, pattern, len(res.Records))
			}
			seen := map[int]bool{}
			for _, r := range res.Records {
				if seen[r.ID] {
					t.Fatalf("%s x %s: job %d finished twice", spec, pattern, r.ID)
				}
				seen[r.ID] = true
				if r.Arrival < 0 || r.Start < r.Arrival || r.Finish < r.Start {
					t.Fatalf("%s x %s: job %d times disordered: %+v", spec, pattern, r.ID, r)
				}
				if diff := r.Response - (r.Wait + r.RunTime); diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("%s x %s: job %d response %g != wait %g + runtime %g",
						spec, pattern, r.ID, r.Response, r.Wait, r.RunTime)
				}
			}
			if res.UtilizationPct < 0 || res.UtilizationPct > 100.0001 {
				t.Fatalf("%s x %s: utilization %g", spec, pattern, res.UtilizationPct)
			}
		}
	}
}

// TestSeedSensitivity checks that different seeds change randomized
// outcomes but never the job count, and that the response distribution
// stays in a sane band across seeds.
func TestSeedSensitivity(t *testing.T) {
	base := trace.NewSDSC(trace.SDSCConfig{Jobs: 60, MaxSize: 64, Seed: 5})
	var responses []float64
	for seed := int64(1); seed <= 4; seed++ {
		cfg := Config{
			MeshW: 8, MeshH: 8,
			Alloc:     "hilbert/bestfit",
			Pattern:   "random",
			TimeScale: 0.01,
			Seed:      seed,
		}
		res, err := Run(cfg, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 60 {
			t.Fatalf("seed %d: %d records", seed, len(res.Records))
		}
		responses = append(responses, res.MeanResponse)
	}
	allSame := true
	for _, r := range responses[1:] {
		if r != responses[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("random pattern ignored the seed")
	}
	for _, r := range responses[1:] {
		if r > responses[0]*3 || r < responses[0]/3 {
			t.Fatalf("seed variance implausibly large: %v", responses)
		}
	}
}
