package sim

import (
	"testing"

	"meshalloc/internal/trace"
)

// TestParallelScoringGoldenDigests reruns the pinned golden
// configurations with parallel candidate scoring enabled: the digests
// must not move by a bit. Allocators without a parallel path must
// ignore the knob just as exactly.
func TestParallelScoringGoldenDigests(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.NewSDSC(trace.SDSCConfig{Jobs: tc.jobs, MaxSize: tc.max, Seed: 1}).
				FilterMaxSize(tc.max)
			cfg := tc.cfg
			cfg.AllocWorkers = 4
			res, err := Run(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if got := goldenDigest(res); got != tc.digest {
				t.Fatalf("AllocWorkers=4 digest %s, want %s (parallel scoring changed the simulation)", got, tc.digest)
			}
		})
	}
}

// TestParallelScoringWorkerCountInvariance drives the scoring
// allocators the golden cases do not cover (mc, genalg) through full
// simulations at several worker counts and checks the digests agree
// with the sequential run — the fabric's core promise that worker
// count is a pure wall-clock knob.
func TestParallelScoringWorkerCountInvariance(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"mc-16x16-alltoall", Config{MeshW: 16, MeshH: 16, Alloc: "mc", Pattern: "alltoall",
			Load: 0.4, TimeScale: 0.01, Seed: 1}},
		{"genalg-16x16-nbody", Config{MeshW: 16, MeshH: 16, Alloc: "genalg", Pattern: "nbody",
			Load: 0.4, TimeScale: 0.01, Seed: 1}},
		{"genalg-8x8x8-nbody", Config{Dims: []int{8, 8, 8}, Alloc: "genalg", Pattern: "nbody",
			Load: 0.2, TimeScale: 0.01, Seed: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			size := 256
			if tc.cfg.Dims != nil {
				size = 512
			}
			tr := trace.NewSDSC(trace.SDSCConfig{Jobs: 150, MaxSize: size, Seed: 1}).
				FilterMaxSize(size)
			run := func(workers int) string {
				cfg := tc.cfg
				cfg.AllocWorkers = workers
				res, err := Run(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				return goldenDigest(res)
			}
			want := run(1)
			for _, workers := range []int{2, 4, 7} {
				if got := run(workers); got != want {
					t.Fatalf("workers=%d digest %s, want sequential %s", workers, got, want)
				}
			}
		})
	}
}
