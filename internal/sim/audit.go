package sim

import (
	"errors"
	"fmt"
	"sort"

	"meshalloc/internal/alloc"
	"meshalloc/internal/sched"
)

// Violation is one failed engine invariant: Invariant names the rule,
// Detail carries the numbers. Audit joins every violation it finds with
// errors.Join, so callers can match individual rules with errors.As and
// a target *Violation.
type Violation struct {
	Invariant string
	Detail    string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("sim: invariant %q violated: %s", v.Invariant, v.Detail)
}

func violatef(invariant, format string, args ...any) error {
	return &Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
}

// Audit cross-checks every redundant structure the engine maintains —
// the allocator's occupancy indexes against its free count, the job
// store against the owner map and the running-set mirrors, the event
// queue's time and sequence discipline, the fault masks against the
// availability flags, and job conservation across queue, machine and
// retry bookkeeping. It returns nil when every invariant holds, or all
// violations found joined into one error.
//
// The walk is read-only and costs O(machine + events + jobs); it is
// cheap enough to run between events (see Config.AuditEvery) and is
// run automatically after a snapshot restore.
func (e *Engine) Audit() error {
	var errs []error
	s := &e.store

	// Job-store bookkeeping: the live count, the pool free list and the
	// inUse/dead flags must describe one consistent partition of the
	// handle space.
	live := 0
	for h := range s.inUse {
		if s.inUse[h] && !s.dead[h] {
			live++
		}
	}
	if live != s.live {
		errs = append(errs, violatef("store-live", "counted %d live handles, cached %d", live, s.live))
	}
	seenFree := make(map[int32]bool, len(s.free))
	for _, h := range s.free {
		if h < 0 || int(h) >= len(s.inUse) {
			errs = append(errs, violatef("store-free", "free-list handle %d outside [0,%d)", h, len(s.inUse)))
			continue
		}
		if seenFree[h] {
			errs = append(errs, violatef("store-free", "handle %d on the free list twice", h))
		}
		seenFree[h] = true
		if s.inUse[h] {
			errs = append(errs, violatef("store-free", "handle %d both in use and on the free list", h))
		}
	}
	for h := range s.inUse {
		if !s.inUse[int32(h)] && !seenFree[int32(h)] {
			errs = append(errs, violatef("store-free", "handle %d neither in use nor on the free list", h))
		}
	}

	// Occupancy: the busy-processor total is the sum of live job sizes,
	// and machine size decomposes into job-held, fault-masked and free.
	busy := 0
	for h := range s.inUse {
		if s.inUse[h] && !s.dead[h] {
			busy += s.job[h].Size
		}
	}
	if busy != e.busyProcs {
		errs = append(errs, violatef("busy-procs", "live jobs hold %d processors, cached busyProcs %d", busy, e.busyProcs))
	}
	slack := e.grid.Size() - e.busyProcs - e.maskedN - e.allocator.NumFree()
	if slack < 0 {
		errs = append(errs, violatef("free-count",
			"machine %d < busy %d + masked %d + free %d", e.grid.Size(), e.busyProcs, e.maskedN, e.allocator.NumFree()))
	} else if slack > 0 && e.batcher != nil {
		// Exact-size allocators (the BatchAllocator contract) leave no
		// internal fragmentation; paged forms legitimately strand the
		// tail of a partially-used page, so only slack < 0 is wrong there.
		errs = append(errs, violatef("free-count",
			"%d processors unaccounted for (machine %d, busy %d, masked %d, free %d)",
			slack, e.grid.Size(), e.busyProcs, e.maskedN, e.allocator.NumFree()))
	}
	if aud, ok := e.allocator.(alloc.Auditor); ok {
		if err := aud.AuditIndexes(); err != nil {
			errs = append(errs, &Violation{Invariant: "alloc-indexes", Detail: err.Error()})
		}
	}

	// Event queue: every queued event is in the clock's future, carries
	// a sequence number below the engine's counter, no two events share
	// one, and job events reference in-use handles.
	seqs := make(map[int64]bool)
	e.events.each(func(ev event) {
		if ev.t < e.now {
			errs = append(errs, violatef("event-time", "event seq %d at t=%v behind clock %v", ev.seq, ev.t, e.now))
		}
		if ev.seq < 0 || ev.seq >= e.seq {
			errs = append(errs, violatef("event-seq", "event seq %d outside [0,%d)", ev.seq, e.seq))
		}
		if seqs[ev.seq] {
			errs = append(errs, violatef("event-seq", "two events share seq %d", ev.seq))
		}
		seqs[ev.seq] = true
		if ev.kind == kindStep || ev.kind == kindFinish {
			if ev.h < 0 || int(ev.h) >= len(s.inUse) || !s.inUse[ev.h] {
				errs = append(errs, violatef("event-handle", "event seq %d references unused handle %d", ev.seq, ev.h))
			}
		}
	})

	// Scheduler mirrors: on the incremental path pendBuf shadows the
	// queue entry for entry and runOrd holds exactly the live set in
	// ascending (EstEnd, handle) order.
	if e.trackPend {
		if len(e.pendBuf) != len(e.queue) {
			errs = append(errs, violatef("pend-mirror", "pendBuf holds %d entries, queue %d", len(e.pendBuf), len(e.queue)))
		} else {
			for i := range e.queue {
				if e.pendBuf[i].Size != e.queue[i].Size || e.pendBuf[i].EstRuntime != e.queue[i].Runtime {
					errs = append(errs, violatef("pend-mirror", "pendBuf[%d]=%+v disagrees with queue job %+v", i, e.pendBuf[i], e.queue[i]))
					break
				}
			}
		}
	}
	if e.trackRun {
		if len(e.runOrd) != live || len(e.runOrdH) != len(e.runOrd) {
			errs = append(errs, violatef("run-mirror", "runOrd holds %d entries for %d live jobs", len(e.runOrd), live))
		} else {
			seen := make(map[int32]bool, live)
			for i, h := range e.runOrdH {
				if h < 0 || int(h) >= len(s.inUse) || !s.inUse[h] || s.dead[h] {
					errs = append(errs, violatef("run-mirror", "runOrd[%d] references non-live handle %d", i, h))
					continue
				}
				seen[h] = true
				if e.runOrd[i].EstEnd != s.estEnd[h] || e.runOrd[i].Size != s.job[h].Size {
					errs = append(errs, violatef("run-mirror", "runOrd[%d]=%+v disagrees with handle %d", i, e.runOrd[i], h))
				}
				if i > 0 && (e.runOrd[i-1].EstEnd > e.runOrd[i].EstEnd ||
					(e.runOrd[i-1].EstEnd == e.runOrd[i].EstEnd && e.runOrdH[i-1] > h)) {
					errs = append(errs, violatef("run-order", "runOrd[%d..%d] out of (EstEnd, handle) order", i-1, i))
				}
			}
			if len(seen) != len(e.runOrdH) {
				errs = append(errs, violatef("run-mirror", "runOrd repeats a handle"))
			}
		}
	}

	// Fault state: flags, masks and ownership must agree — a node is
	// masked exactly when it is flagged unavailable and unoccupied, and
	// the owner map mirrors the live jobs' node sets both ways.
	if e.faults != nil {
		flagged, maskedN := 0, 0
		for n := range e.down {
			if e.down[n] || e.drained[n] {
				flagged++
			}
			if e.masked[n] {
				maskedN++
			}
			want := (e.down[n] || e.drained[n]) && e.owner[n] < 0
			if e.masked[n] != want {
				errs = append(errs, violatef("fault-mask",
					"node %d: masked=%v with down=%v drained=%v owner=%d", n, e.masked[n], e.down[n], e.drained[n], e.owner[n]))
			}
		}
		if flagged != e.flagged {
			errs = append(errs, violatef("fault-flagged", "counted %d flagged nodes, cached %d", flagged, e.flagged))
		}
		if maskedN != e.maskedN {
			errs = append(errs, violatef("fault-masked", "counted %d masked nodes, cached %d", maskedN, e.maskedN))
		}
		owned := 0
		for h := range s.inUse {
			if !s.inUse[h] || s.dead[h] {
				continue
			}
			for _, id := range s.nodes[h] {
				owned++
				if id < 0 || id >= len(e.owner) || e.owner[id] != int32(h) {
					errs = append(errs, violatef("owner-map", "node %d of handle %d has owner %d", id, h, e.owner[id]))
				}
			}
		}
		for n, h := range e.owner {
			if h >= 0 {
				owned--
				if int(h) >= len(s.inUse) || !s.inUse[h] || s.dead[h] {
					errs = append(errs, violatef("owner-map", "node %d owned by non-live handle %d", n, h))
				}
			}
		}
		if owned != 0 {
			errs = append(errs, violatef("owner-map", "owner map and job node sets disagree by %d nodes", owned))
		}
	}

	// Job conservation: every run instance created — a Submit or a retry
	// resubmission — is, at any instant, exactly one of: an arrival
	// event still queued, a pending queue entry, a running job, a
	// finished job, or a kill victim (whose successor instance, if the
	// policy granted one, is counted under retried). A job RunSource
	// holds past the horizon is not yet submitted.
	arrivals := 0
	e.events.each(func(ev event) {
		if ev.kind == kindArrival {
			arrivals++
		}
	})
	if in, out := e.submitted+e.retried, arrivals+len(e.queue)+live+e.finished+e.killed; in != out {
		errs = append(errs, violatef("job-conservation",
			"%d submitted + %d retried != %d arrival events + %d queued + %d running + %d finished + %d killed",
			e.submitted, e.retried, arrivals, len(e.queue), live, e.finished, e.killed))
	}
	if e.killed != e.retried+e.givenUp {
		errs = append(errs, violatef("kill-split",
			"%d kills != %d retried + %d given up", e.killed, e.retried, e.givenUp))
	}

	return errors.Join(errs...)
}

// rebuildDerived reconstructs every derived index from the engine's
// authoritative state: the allocator's occupancy structures from the
// live jobs' node sets, the fault masks from the availability flags and
// ownership, and the scheduler's incremental mirrors from queue and
// store. It is idempotent — the restore path calls it once normally and
// once more as a last-resort repair when the post-restore audit fails —
// and returns an error (never panics) on state no allocator can hold.
func (e *Engine) rebuildDerived() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: derived-state rebuild failed: %v", r)
		}
	}()
	occ, ok := e.allocator.(alloc.Occupier)
	if !ok {
		return fmt.Errorf("sim: allocator %s cannot re-occupy nodes on restore", e.allocator.Name())
	}
	e.allocator.Reset()
	s := &e.store

	// Validate the node sets as a whole before touching the allocator:
	// ids in range and no processor claimed twice.
	size := e.grid.Size()
	claimed := make([]bool, size)
	busy := 0
	for h := range s.inUse {
		if !s.inUse[h] || s.dead[h] {
			continue
		}
		for _, id := range s.nodes[h] {
			if id < 0 || id >= size {
				return fmt.Errorf("sim: handle %d claims node %d outside [0,%d)", h, id, size)
			}
			if claimed[id] {
				return fmt.Errorf("sim: node %d claimed by two jobs", id)
			}
			claimed[id] = true
		}
		busy += s.job[h].Size
	}
	e.busyProcs = busy

	// Re-occupy in ascending handle order (deterministic, and for Buddy
	// any order reconstructs the same quadtree: eager coalescing makes
	// the free set a pure function of the allocated set).
	for h := range s.inUse {
		if s.inUse[h] && !s.dead[h] {
			occ.Occupy(s.nodes[h])
		}
	}

	// Fault-derived state: the owner map from the node sets, then the
	// mask for every flagged-and-unoccupied node. Flags themselves are
	// authoritative (restored from the snapshot).
	if e.faults != nil {
		for n := range e.owner {
			e.owner[n] = -1
			e.masked[n] = false
		}
		e.maskedN, e.flagged = 0, 0
		for h := range s.inUse {
			if !s.inUse[h] || s.dead[h] {
				continue
			}
			for _, id := range s.nodes[h] {
				e.owner[id] = int32(h)
			}
		}
		for n := range e.down {
			if e.down[n] || e.drained[n] {
				e.flagged++
				if e.owner[n] < 0 {
					e.faultable.MarkDown(n)
					e.masked[n] = true
					e.maskedN++
				}
			}
		}
	}

	// Scheduler mirrors.
	if e.trackPend {
		e.pendBuf = e.pendBuf[:0]
		for _, j := range e.queue {
			e.pendBuf = append(e.pendBuf, sched.Pending{Size: j.Size, EstRuntime: j.Runtime})
		}
	}
	if e.trackRun {
		e.runOrd, e.runOrdH = e.runOrd[:0], e.runOrdH[:0]
		var hs []int32
		for h := range s.inUse {
			if s.inUse[h] && !s.dead[h] {
				hs = append(hs, int32(h))
			}
		}
		sort.Slice(hs, func(i, j int) bool {
			a, b := hs[i], hs[j]
			if s.estEnd[a] != s.estEnd[b] {
				return s.estEnd[a] < s.estEnd[b]
			}
			return a < b
		})
		for _, h := range hs {
			e.runOrd = append(e.runOrd, sched.Running{Size: s.job[h].Size, EstEnd: s.estEnd[h]})
			e.runOrdH = append(e.runOrdH, h)
		}
	}
	// The watermark is only ever an optimization; a cleared watermark is
	// always safe, and restore re-applies the snapshot's value after the
	// rebuild when it was armed.
	if !e.canBlock {
		e.blocked = false
	}
	return nil
}
