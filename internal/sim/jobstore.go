package sim

import (
	"meshalloc/internal/comm"
	"meshalloc/internal/trace"
)

// jobStore holds every in-flight job's state as a struct of parallel
// arrays indexed by pooled int32 handles. Events reference jobs by
// handle, so the event queue — the largest long-lived structure on a
// Discard run — carries no pointers at all and costs the garbage
// collector nothing to scan; the pointered columns (nodes, gen) are
// bounded by the number of concurrently running jobs, not by queue
// depth. Handles are recycled LIFO through free, exactly as the old
// *runningJob pool recycled structs: a handle stays in use after a kill
// (dead=true) until the job's one stale queue event pops and releases
// it, so a recycled handle can never collide with a live queue entry.
type jobStore struct {
	job      []trace.Job
	nodes    [][]int
	gen      []comm.Generator
	quota    []int64
	sent     []int64
	hops     []int64
	start    []float64
	lastArr  []float64 // latest delivery so far
	queued   []float64
	estEnd   []float64  // nominal end for backfilling estimates
	pending  []comm.Msg // first message of the next phase (phased mode)
	havePend []bool
	dead     []bool // killed by a node failure; awaiting its stale event
	inUse    []bool
	free     []int32
	live     int // in-use and not dead: the running-job count
}

// alloc returns a zeroed handle, growing the columns when the pool is
// dry.
func (s *jobStore) alloc() int32 {
	if n := len(s.free); n > 0 {
		h := s.free[n-1]
		s.free = s.free[:n-1]
		s.inUse[h] = true
		s.live++
		return h
	}
	h := int32(len(s.job))
	s.job = append(s.job, trace.Job{})
	s.nodes = append(s.nodes, nil)
	s.gen = append(s.gen, nil)
	s.quota = append(s.quota, 0)
	s.sent = append(s.sent, 0)
	s.hops = append(s.hops, 0)
	s.start = append(s.start, 0)
	s.lastArr = append(s.lastArr, 0)
	s.queued = append(s.queued, 0)
	s.estEnd = append(s.estEnd, 0)
	s.pending = append(s.pending, comm.Msg{})
	s.havePend = append(s.havePend, false)
	s.dead = append(s.dead, false)
	s.inUse = append(s.inUse, true)
	s.live++
	return h
}

// markDead flags a killed job whose stale queue event still holds the
// handle; the handle leaves the running count now but returns to the
// pool only when that event pops.
func (s *jobStore) markDead(h int32) {
	s.dead[h] = true
	s.live--
	s.gen[h] = nil
	s.nodes[h] = nil
}

// release returns h to the pool: the job finished, or the stale event
// of a killed job popped.
func (s *jobStore) release(h int32) {
	if !s.dead[h] {
		s.live--
	}
	s.dead[h] = false
	s.inUse[h] = false
	s.gen[h] = nil
	s.nodes[h] = nil
	s.free = append(s.free, h)
}
