package sim

import (
	"math"
	"math/rand"
	"testing"
)

// drainCompare pops both queues dry and fails on the first divergence in
// (t, seq, kind) order. The heap is the reference.
func drainCompare(t *testing.T, ref *eventHeap, q eventQueue, tag string) {
	t.Helper()
	i := 0
	for ref.len() > 0 {
		if q.len() == 0 {
			t.Fatalf("%s: queue empty with %d reference events left", tag, ref.len())
		}
		ht, hk, ok := q.head()
		want := ref.pop()
		got := q.pop()
		if !ok || ht != got.t || hk != got.kind {
			t.Fatalf("%s: head() reported (%v, kind %d, ok %v) but pop returned (%v, kind %d)",
				tag, ht, hk, ok, got.t, got.kind)
		}
		if got.t != want.t || got.seq != want.seq || got.kind != want.kind {
			t.Fatalf("%s: pop %d: got (t=%v seq=%d kind=%d), want (t=%v seq=%d kind=%d)",
				tag, i, got.t, got.seq, got.kind, want.t, want.seq, want.kind)
		}
		i++
	}
	if q.len() != 0 {
		t.Fatalf("%s: %d stray events left in queue", tag, q.len())
	}
}

// streamGen produces one timestamp per call; implementations model the
// distributions the satellite names.
type streamGen func(rng *rand.Rand, i int) float64

var eventStreams = map[string]streamGen{
	"uniform": func(rng *rand.Rand, _ int) float64 {
		return rng.Float64() * 1000
	},
	"clustered": func(rng *rand.Rand, i int) float64 {
		// Tight bursts around a slowly advancing center — the shape a
		// bursty arrival process feeds the engine.
		center := float64(i/64) * 10
		return center + rng.Float64()*0.01
	},
	"heavy-tail": func(rng *rand.Rand, _ int) float64 {
		// Pareto-ish: most events near zero, rare ones far out.
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		return math.Pow(u, -2) - 1
	},
	"same-t-burst": func(rng *rand.Rand, i int) float64 {
		// Long runs of exactly equal timestamps: the FIFO seq tie rule
		// carries the whole ordering.
		return float64(i / 37)
	},
	"des-clock": func(rng *rand.Rand, i int) float64 {
		// Monotone-ish clock advance with short lookahead, the engine's
		// actual usage pattern.
		return float64(i)*0.5 + rng.Float64()*20
	},
}

// TestCalQueueMatchesHeapStreams pushes each stream into both queues and
// requires identical pop order, across push-all-then-pop-all and
// interleaved push/pop schedules.
func TestCalQueueMatchesHeapStreams(t *testing.T) {
	for name, gen := range eventStreams {
		t.Run(name, func(t *testing.T) {
			for _, n := range []int{0, 1, 7, 300, 5000} {
				rng := rand.New(rand.NewSource(int64(n) + 11))
				ref, q := &eventHeap{}, newCalQueue()
				for i := 0; i < n; i++ {
					ev := event{t: gen(rng, i), seq: int64(i), kind: i % 3}
					ref.push(ev)
					q.push(ev)
				}
				drainCompare(t, ref, q, name)

				// Interleaved: random mix of pushes and pops, then drain.
				rng = rand.New(rand.NewSource(int64(n) + 77))
				ref, q = &eventHeap{}, newCalQueue()
				seq := int64(0)
				for i := 0; i < 2*n; i++ {
					if q.len() > 0 && rng.Intn(3) == 0 {
						want, got := ref.pop(), q.pop()
						if got.t != want.t || got.seq != want.seq {
							t.Fatalf("%s interleaved: got (t=%v seq=%d), want (t=%v seq=%d)",
								name, got.t, got.seq, want.t, want.seq)
						}
						continue
					}
					ev := event{t: gen(rng, i), seq: seq, kind: i % 3}
					seq++
					ref.push(ev)
					q.push(ev)
				}
				drainCompare(t, ref, q, name+" interleaved drain")
			}
		})
	}
}

// TestCalQueueFaultFirstTieRule replays the engine's fault-versus-event
// tie decision over both queue implementations: a pending fault at
// exactly the head event's time must win (processFault runs first), and
// the head() t both queues report is what the engine compares against.
func TestCalQueueFaultFirstTieRule(t *testing.T) {
	for _, impl := range []string{"heap", "calendar"} {
		var q eventQueue
		if impl == "heap" {
			q = &eventHeap{}
		} else {
			q = newCalQueue()
		}
		// Three events at t=5 (seq order 1,2,3) and one at t=7.
		q.push(event{t: 5, seq: 2, kind: kindStep})
		q.push(event{t: 7, seq: 4, kind: kindFinish})
		q.push(event{t: 5, seq: 1, kind: kindArrival})
		q.push(event{t: 5, seq: 3, kind: kindFinish})
		faultT := 5.0
		ht, _, ok := q.head()
		if !ok || !(faultT <= ht) {
			t.Fatalf("%s: fault at %v must apply before head at %v", impl, faultT, ht)
		}
		for want := int64(1); want <= 3; want++ {
			if ev := q.pop(); ev.t != 5 || ev.seq != want {
				t.Fatalf("%s: tie pop got (t=%v seq=%d), want (5, %d)", impl, ev.t, ev.seq, want)
			}
		}
		if ev := q.pop(); ev.t != 7 || ev.seq != 4 {
			t.Fatalf("%s: final pop got (t=%v seq=%d), want (7, 4)", impl, ev.t, ev.seq)
		}
	}
}

// TestCalQueueFallback force-feeds a distribution engineered to defeat
// bucketing — astronomically spread timestamps pushed newest-first so
// every operation pays a full scan — and checks the queue demotes itself
// to the heap and still pops the exact reference order.
func TestCalQueueFallback(t *testing.T) {
	ref, q := &eventHeap{}, newCalQueue()
	rng := rand.New(rand.NewSource(9))
	seq := int64(0)
	// Interleave pops so the cursor keeps rescanning a nearly-empty
	// calendar with huge gaps: worst case for year walks.
	for i := 0; i < 40000; i++ {
		ev := event{t: math.Exp(rng.Float64() * 50), seq: seq}
		seq++
		ref.push(ev)
		q.push(ev)
		if i%2 == 1 {
			want, got := ref.pop(), q.pop()
			if got.t != want.t || got.seq != want.seq {
				t.Fatalf("pop %d diverged: got (t=%v seq=%d), want (t=%v seq=%d)",
					i, got.t, got.seq, want.t, want.seq)
			}
		}
	}
	drainCompare(t, ref, q, "fallback drain")
	if _, _, fell := q.queueStats(); !fell {
		t.Fatalf("pathological exponential spread did not trigger the heap fallback")
	}
}

// TestCalQueueAdaptsWithoutFallback checks the common case stays on the
// calendar: a million-event DES-like clock stream must never demote.
func TestCalQueueAdaptsWithoutFallback(t *testing.T) {
	q := newCalQueue()
	rng := rand.New(rand.NewSource(4))
	seq := int64(0)
	clock := 0.0
	for i := 0; i < 200000; i++ {
		// Hold ~200 events in flight, popping and pushing lookahead work.
		if q.len() >= 200 {
			ev := q.pop()
			clock = ev.t
		}
		q.push(event{t: clock + rng.Float64()*30, seq: seq})
		seq++
	}
	resizes, _, fell := q.queueStats()
	if fell {
		t.Fatalf("DES clock stream fell back to the heap (resizes=%d)", resizes)
	}
	if resizes == 0 {
		t.Fatalf("bucket-width adaptation never ran on a 200k-event stream")
	}
}

// FuzzCalQueueEquivalence drives random interleaved schedules through
// both implementations from a fuzzed seed and scale.
func FuzzCalQueueEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(10))
	f.Add(int64(42), uint16(4000), uint8(1))
	f.Add(int64(7), uint16(512), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, scale uint8) {
		rng := rand.New(rand.NewSource(seed))
		ref, q := &eventHeap{}, newCalQueue()
		mult := float64(scale)/8 + 0.001
		seq := int64(0)
		for i := 0; i < int(n); i++ {
			switch {
			case q.len() > 0 && rng.Intn(4) == 0:
				want, got := ref.pop(), q.pop()
				if got.t != want.t || got.seq != want.seq || got.kind != want.kind {
					t.Fatalf("pop diverged: got (t=%v seq=%d kind=%d), want (t=%v seq=%d kind=%d)",
						got.t, got.seq, got.kind, want.t, want.seq, want.kind)
				}
			default:
				// Mix exact repeats (ties) with scaled random spreads.
				tt := float64(rng.Intn(50)) * mult
				if rng.Intn(3) == 0 {
					tt = rng.Float64() * 1e6 * mult
				}
				ev := event{t: tt, seq: seq, kind: rng.Intn(3)}
				seq++
				ref.push(ev)
				q.push(ev)
			}
		}
		drainCompare(t, ref, q, "fuzz drain")
	})
}
