package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"meshalloc/internal/alloc"
	"meshalloc/internal/comm"
	"meshalloc/internal/fault"
	"meshalloc/internal/netsim"
	"meshalloc/internal/sched"
	"meshalloc/internal/stats"
	"meshalloc/internal/topo"
	"meshalloc/internal/trace"
)

// Observer receives each finished job's record the moment it completes,
// before the retention policy applies: observers see every record even
// when Config.KeepRecords is Discard, which is how results stream out
// of a constant-memory run.
type Observer func(JobRecord)

// DeltaObserver receives the node-id delta of every occupancy change:
// the ids a starting job just received (allocated true) or a finishing
// job just returned (allocated false), with the scaled simulation time
// of the change. Deltas are exactly the invalidation sets incremental
// consumers need — a caching scorer or an external mirror of the
// free-map updates only the changed region instead of re-reading the
// machine. The ids slice is the engine's own and must not be retained
// or mutated past the call.
type DeltaObserver func(now float64, ids []int, allocated bool)

// event is one entry of the event queue. It is deliberately
// pointer-free: running jobs are referenced by jobStore handle, so the
// queue — however deep a run makes it — contributes nothing to GC scan
// work.
type event struct {
	t    float64
	seq  int64     // FIFO tie-break for determinism
	kind int       // kindArrival, kindStep or kindFinish
	h    int32     // jobStore handle (kindStep/kindFinish)
	arr  trace.Job // arrival: the (already scaled) job
}

const (
	kindArrival = iota
	kindStep
	kindFinish
)

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

// eventHeap is a hand-rolled binary min-heap of events ordered by (t,
// seq). container/heap would box every pushed and popped event into an
// interface — one garbage allocation per simulated event, right on the
// hottest loop of the simulator — so the sift operations are written out
// against the concrete slice instead. The heap is the reference
// implementation of the eventQueue contract (see equeue.go) and the
// fallback for timestamp distributions that defeat the calendar queue's
// bucketing.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{}
	*h = s[:n]
	s = s[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// Engine is the resumable discrete-event core of the simulator. Where
// the batch Run builds the world, replays one trace to completion and
// returns every record in memory, an Engine exposes the lifecycle
// directly: construct with NewEngine, inject jobs at any time with
// Submit (online submission — the clock may already be running),
// advance with Step, RunUntil or Drain, stream per-job records through
// Observe, and read streaming aggregates with Result at any point.
//
// With Config.KeepRecords/KeepNodes set to Discard, the engine holds
// O(machine + in-flight jobs) memory regardless of how many jobs pass
// through — the shape a million-job open-system run needs.
//
// The engine clock runs in scaled simulation time (original seconds
// compressed by Config.Load on arrivals and Config.TimeScale overall);
// records re-inflate to original seconds exactly as in Run.
type Engine struct {
	cfg       Config
	grid      *topo.Grid
	allocator alloc.Allocator
	// batcher is non-nil when the allocator supports batch allocation;
	// the FCFS dispatch then serves each runnable queue prefix in one
	// call. Results are bit-identical to one-at-a-time dispatch (see
	// scheduleFCFSBatch); tests null it out to compare both paths.
	batcher alloc.BatchAllocator
	pattern comm.Pattern
	policy  sched.Policy
	// sorted is non-nil when the policy exploits the end-time-ordered
	// running index (EASY); used only on the incremental path.
	sorted sched.SortedPolicy
	isFCFS bool
	isSJF  bool
	net    *netsim.Network
	rng    *stats.RNG

	events eventQueue
	seq    int64
	now    float64
	queue  []trace.Job // FCFS arrival order, already scaled
	store  jobStore    // in-flight job state, SoA, handle-indexed

	// Scheduler-round state. On the incremental path (RebuildSched
	// false), pendBuf mirrors queue entry for entry (trackPend) and
	// runOrd/runOrdH hold the running set ordered by (EstEnd, handle)
	// (trackRun), both maintained at the events that change them instead
	// of rebuilt every round; runBuf only serves the rebuild reference
	// path. blocked is the head-blocked watermark: set when an FCFS/SJF
	// round ends without a dispatch, letting the next round short-
	// circuit in O(1), and invalidated only on release and fault
	// transitions (plus arrivals that can change the decision: any
	// arrival under SJF, an arrival into an empty queue under FCFS).
	// EASY never blocks — its backfill decisions depend on the clock.
	pendBuf   []sched.Pending
	runBuf    []sched.Running
	reqBuf    []alloc.Request
	runOrd    []sched.Running
	runOrdH   []int32
	trackPend bool
	trackRun  bool
	canBlock  bool
	blocked   bool

	// setScratch backs the counted per-finish dispersal metrics.
	setScratch topo.SetScratch
	core       stats.EventCoreStats

	observers []Observer
	deltaObs  []DeltaObserver
	records   []JobRecord

	// Streaming aggregates, updated at every finish so Result never
	// needs the retained records.
	finished   int
	respSum    float64
	respMedian *stats.P2Quantile
	totalComps int
	contig     int
	makespan   float64

	// Time-weighted occupancy accounting.
	busyProcs   int
	lastAccount float64
	busyArea    float64 // processor-seconds held by jobs
	queueArea   float64 // job-seconds spent queued

	// held buffers a job RunSource pulled from its source but not yet
	// submitted — because it arrives past the horizon, or because the
	// clock is still advancing toward its arrival. A later RunSource
	// call resumes with it instead of losing it, and a snapshot taken
	// mid-advance carries it.
	held    trace.Job
	hasHeld bool

	// submitted counts jobs accepted by Submit, the input side of the
	// job-conservation invariant Audit checks.
	submitted int

	// Periodic hooks, both driven by the count of processed events:
	// auditEvery runs Audit (panicking on violation, like every other
	// bookkeeping check), ckptEvery fires the checkpoint callback.
	auditEvery int64
	sinceAudit int64
	ckptEvery  int64
	sinceCkpt  int64
	ckptFn     func()

	// Fault-injection state; all nil/zero on a fault-free engine, and
	// every hot-path touch is gated on faults != nil so the fault-free
	// event loop is unchanged instruction for instruction.
	faults     *fault.Stream
	nextFault  fault.Event // pending head of the stream, time already scaled
	hasFault   bool
	faultable  alloc.FaultAware
	down       []bool      // hard-failed nodes
	drained    []bool      // administratively drained nodes
	masked     []bool      // nodes currently marked down in the allocator
	owner      []int32     // occupying job handle per node (-1 free), for O(1) kill lookup
	flagged    int         // count of down-or-drained nodes
	maskedN    int         // count of masked nodes
	killCount  map[int]int // kills per job ID, for retry bookkeeping
	maskBuf    [1]int      // single-node delta scratch for observers
	killed     int
	retried    int
	givenUp    int
	wastedArea float64 // processor-seconds consumed by later-killed jobs
	downArea   float64 // node-seconds masked out of service
}

// NewEngine validates cfg and builds an idle engine with an empty queue
// and the clock at zero.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	dims := cfg.dims()
	if len(dims) < 1 || len(dims) > topo.MaxDims {
		return nil, fmt.Errorf("sim: machine needs 1..%d dimensions, got %d", topo.MaxDims, len(dims))
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("sim: invalid machine extent %d on axis %d", d, i)
		}
	}
	var m *topo.Grid
	if cfg.Torus {
		m = topo.NewTorus(dims)
	} else {
		m = topo.New(dims)
	}
	allocator, err := alloc.Spec(m, cfg.Alloc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.AllocWorkers > 1 {
		if ps, ok := allocator.(alloc.ParallelScorer); ok {
			ps.SetParallelism(cfg.AllocWorkers)
		}
	}
	pattern, err := comm.ByName(cfg.Pattern)
	if err != nil {
		return nil, err
	}
	// Same-size jobs share one immutable phase schedule for the run.
	pattern = comm.Cached(pattern)
	policy, err := sched.ByName(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	if cfg.AuditEvery < 0 {
		return nil, fmt.Errorf("sim: AuditEvery must be >= 0, got %d", cfg.AuditEvery)
	}
	_, isFCFS := policy.(sched.FCFS)
	_, isSJF := policy.(sched.SJF)
	batcher, _ := allocator.(alloc.BatchAllocator)
	e := &Engine{
		cfg:        cfg,
		grid:       m,
		allocator:  allocator,
		batcher:    batcher,
		pattern:    pattern,
		policy:     policy,
		isFCFS:     isFCFS,
		isSJF:      isSJF,
		net:        netsim.New(m, cfg.Net),
		rng:        stats.NewRNG(cfg.Seed),
		respMedian: stats.NewP2Quantile(0.5),
		auditEvery: int64(cfg.AuditEvery),
	}
	switch cfg.EventQueue {
	case "calendar":
		e.events = newCalQueue()
	case "heap":
		e.events = &eventHeap{}
	default:
		return nil, fmt.Errorf("sim: unknown event queue %q (valid: calendar, heap)", cfg.EventQueue)
	}
	if !cfg.RebuildSched {
		e.trackPend = !isFCFS
		e.trackRun = !isFCFS
		e.canBlock = isFCFS || isSJF
		e.sorted, _ = policy.(sched.SortedPolicy)
	}
	if cfg.Faults.Enabled() {
		if err := e.initFaults(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// initFaults validates the fault configuration and arms the engine's
// fault state. The failure clocks default to the run seed so a plain
// Config{Seed: s, Faults: ...} is fully determined by s.
func (e *Engine) initFaults() error {
	fc := e.cfg.Faults
	if fc.Seed == 0 {
		fc.Seed = e.cfg.Seed
	}
	fa, ok := e.allocator.(alloc.FaultAware)
	if !ok {
		return fmt.Errorf("sim: allocator %s cannot mask failed nodes; fault injection needs a FaultAware allocator (mc, mc1x1, genalg, random, or a curve/strategy form)",
			e.allocator.Name())
	}
	if err := e.cfg.Retry.Validate(); err != nil {
		return err
	}
	s, err := fault.NewStream(fc, e.grid.Size())
	if err != nil {
		return err
	}
	n := e.grid.Size()
	e.faults = s
	e.faultable = fa
	e.down = make([]bool, n)
	e.drained = make([]bool, n)
	e.masked = make([]bool, n)
	e.owner = make([]int32, n)
	for i := range e.owner {
		e.owner[i] = -1
	}
	e.killCount = map[int]int{}
	e.advanceFault()
	return nil
}

// advanceFault pulls the next stream event into the pending slot,
// contracting its time by TimeScale exactly as job runtimes are (node
// lifetimes are machine wall clock, so Load — an arrival-rate knob —
// does not apply).
func (e *Engine) advanceFault() {
	ev, ok := e.faults.Next()
	if !ok {
		e.hasFault = false
		return
	}
	ev.T *= e.cfg.TimeScale
	e.nextFault, e.hasFault = ev, true
}

// Observe registers fn to be called with every finished job's record,
// in finish order. Observers registered later are called later.
func (e *Engine) Observe(fn Observer) {
	e.observers = append(e.observers, fn)
}

// ObserveDeltas registers fn to be called with every allocate/release
// node delta, in event order. Registration order is call order.
func (e *Engine) ObserveDeltas(fn DeltaObserver) {
	e.deltaObs = append(e.deltaObs, fn)
}

// MachineSize returns the number of processors in the machine.
func (e *Engine) MachineSize() int { return e.grid.Size() }

// NumFree returns the number of currently unallocated processors.
func (e *Engine) NumFree() int { return e.allocator.NumFree() }

// Now returns the engine clock in scaled simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of jobs queued but not yet started.
func (e *Engine) Pending() int { return len(e.queue) }

// RunningJobs returns the number of jobs currently holding processors.
func (e *Engine) RunningJobs() int { return e.store.live }

// Finished returns the number of jobs that have completed.
func (e *Engine) Finished() int { return e.finished }

// CoreStats snapshots the event-core counters: events processed by
// kind, scheduler rounds run versus skipped by the head-blocked
// watermark, and the calendar queue's adaptation history.
func (e *Engine) CoreStats() stats.EventCoreStats {
	cs := e.core
	if cq, ok := e.events.(*calQueue); ok {
		cs.CalResizes, cs.CalDirectScans, cs.CalFellBack = cq.queueStats()
	}
	return cs
}

// ErrOversize is the sentinel matched by errors.Is for jobs rejected
// because they can never (or, under strict capacity, currently cannot)
// be placed. The concrete error is an *OversizeError carrying the
// numbers.
var ErrOversize = errors.New("sim: job exceeds machine capacity")

// OversizeError reports a job rejected at Submit because its size
// exceeds Capacity — the whole machine, or, when Strict is set, the
// currently available (not failed, not drained) node count. Failing
// fast here, with the numbers attached, beats the old behaviour of
// letting the job sit queued until Deadlocked() tripped at the end of
// the run.
type OversizeError struct {
	ID       int
	Size     int
	Capacity int
	Strict   bool // rejection against available rather than total capacity
}

// Error implements error.
func (e *OversizeError) Error() string {
	if e.Strict {
		return fmt.Sprintf("sim: job %d needs %d processors, only %d currently in service",
			e.ID, e.Size, e.Capacity)
	}
	return fmt.Sprintf("sim: job %d needs %d processors, machine has %d (filter the trace first)",
		e.ID, e.Size, e.Capacity)
}

// Is reports equality against the ErrOversize sentinel.
func (e *OversizeError) Is(target error) bool { return target == ErrOversize }

// Submit injects a job given in original (unscaled) trace units: the
// engine applies Load to its arrival and TimeScale to both arrival and
// runtime, exactly as Run scales a whole trace. Jobs may be submitted
// while the clock runs; an arrival already in the past is clamped to
// the current clock. Oversized jobs are rejected with an *OversizeError
// (errors.Is(err, ErrOversize)); with Faults.StrictCapacity set, so are
// jobs larger than the currently available node count.
func (e *Engine) Submit(j trace.Job) error {
	if j.Size > e.grid.Size() {
		return &OversizeError{ID: j.ID, Size: j.Size, Capacity: e.grid.Size()}
	}
	if j.Size <= 0 {
		return fmt.Errorf("sim: job %d has invalid size %d", j.ID, j.Size)
	}
	if e.cfg.Faults.StrictCapacity && j.Size > e.grid.Size()-e.flagged {
		return &OversizeError{ID: j.ID, Size: j.Size, Capacity: e.grid.Size() - e.flagged, Strict: true}
	}
	// Mirror Trace.ScaleLoad followed by Trace.ScaleTime operation for
	// operation so batch outputs stay bit-identical.
	j.Arrival *= e.cfg.Load
	j.Arrival *= e.cfg.TimeScale
	j.Runtime *= e.cfg.TimeScale
	if j.Arrival < e.now {
		j.Arrival = e.now
	}
	e.submitted++
	e.push(event{t: j.Arrival, kind: kindArrival, arr: j})
	return nil
}

// SetCheckpoint arms (or, with every <= 0 or fn nil, disarms) the
// periodic checkpoint hook: fn runs after every `every`-th processed
// event, at a point where the engine is between events and therefore
// snapshot-consistent — the natural place for fn to call Snapshot.
func (e *Engine) SetCheckpoint(every int64, fn func()) {
	if every <= 0 || fn == nil {
		e.ckptEvery, e.ckptFn = 0, nil
		return
	}
	e.ckptEvery, e.ckptFn = every, fn
	e.sinceCkpt = 0
}

// afterEvent runs the periodic hooks once per fully-processed event
// (job or fault), when the engine is in a consistent between-events
// state. A failed periodic audit panics: it means engine bookkeeping
// has diverged, the same class of bug every other internal check
// treats as fatal.
func (e *Engine) afterEvent() {
	if e.auditEvery > 0 {
		if e.sinceAudit++; e.sinceAudit >= e.auditEvery {
			e.sinceAudit = 0
			if err := e.Audit(); err != nil {
				panic(fmt.Sprintf("sim: periodic audit at t=%v: %v", e.now, err))
			}
		}
	}
	if e.ckptEvery > 0 {
		if e.sinceCkpt++; e.sinceCkpt >= e.ckptEvery {
			e.sinceCkpt = 0
			e.ckptFn()
		}
	}
}

// enqueue appends an arrived job to the pending queue, keeping the
// incremental policy snapshot in lockstep.
func (e *Engine) enqueue(j trace.Job) {
	e.queue = append(e.queue, j)
	if e.trackPend {
		e.pendBuf = append(e.pendBuf, sched.Pending{Size: j.Size, EstRuntime: j.Runtime})
	}
}

// dequeueAt removes the queue entry a non-FCFS policy picked, keeping
// the incremental snapshot in lockstep.
func (e *Engine) dequeueAt(i int) {
	e.queue = append(e.queue[:i], e.queue[i+1:]...)
	if e.trackPend {
		e.pendBuf = append(e.pendBuf[:i], e.pendBuf[i+1:]...)
	}
}

// runInsert places handle h in the end-time-ordered running index at
// its (EstEnd, handle) position.
func (e *Engine) runInsert(h int32, end float64, size int) {
	i := len(e.runOrd)
	for i > 0 && (e.runOrd[i-1].EstEnd > end || (e.runOrd[i-1].EstEnd == end && e.runOrdH[i-1] > h)) {
		i--
	}
	e.runOrd = append(e.runOrd, sched.Running{})
	e.runOrdH = append(e.runOrdH, 0)
	copy(e.runOrd[i+1:], e.runOrd[i:])
	copy(e.runOrdH[i+1:], e.runOrdH[i:])
	e.runOrd[i] = sched.Running{Size: size, EstEnd: end}
	e.runOrdH[i] = h
}

// runRemove drops handle h from the end-time-ordered running index.
func (e *Engine) runRemove(h int32) {
	for i, hh := range e.runOrdH {
		if hh == h {
			e.runOrd = append(e.runOrd[:i], e.runOrd[i+1:]...)
			e.runOrdH = append(e.runOrdH[:i], e.runOrdH[i+1:]...)
			return
		}
	}
}

// Step processes the single earliest event and returns true, or returns
// false when no events remain. Fault events interleave by time with job
// events; on an exact tie the fault applies first, so a job finishing
// at the instant its node dies is killed, not completed — the
// conservative reading, and the ordering contract DESIGN.md documents.
func (e *Engine) Step() bool {
	if e.hasFault {
		ht, _, ok := e.events.head()
		if !ok {
			// No job events left. Keep the machine evolving only while
			// queued work could still be unblocked by a repair;
			// otherwise the run is over and the infinite failure
			// stream must not keep it alive.
			if len(e.queue) == 0 {
				return false
			}
			e.processFault()
			return true
		}
		if e.nextFault.T <= ht {
			e.processFault()
			return true
		}
	}
	if e.events.len() == 0 {
		return false
	}
	ev := e.events.pop()
	e.core.Events++
	e.account(ev.t)
	if ev.t > e.now {
		e.now = ev.t
	}
	switch ev.kind {
	case kindArrival:
		e.core.Arrivals++
		wasEmpty := len(e.queue) == 0
		e.enqueue(ev.arr)
		if e.isFCFS {
			// Drain every same-timestamp arrival at the head of the queue
			// before scheduling once, so simultaneous arrivals dispatch
			// as one batch. Under FCFS this is bit-identical to
			// scheduling after each arrival: the drain stops at any
			// earlier-sequenced non-arrival event, queue order is
			// arrival order either way, and the combined trySchedule
			// starts the same jobs in the same order consuming the RNG
			// identically. Policies that inspect the whole queue (SJF)
			// keep per-arrival scheduling.
			for {
				ht, hk, ok := e.events.head()
				if !ok || ht != ev.t || hk != kindArrival {
					break
				}
				next := e.events.pop()
				e.core.Events++
				e.core.Arrivals++
				e.enqueue(next.arr)
			}
		}
		// A new arrival re-arms a blocked FCFS round only when it
		// becomes the head (empty queue); under SJF any arrival can
		// change the pick.
		if wasEmpty || e.isSJF {
			e.blocked = false
		}
		e.trySchedule(ev.t)
	case kindStep:
		e.core.Steps++
		if e.store.dead[ev.h] {
			// Stale event of a killed job: the pop was its last
			// reference, so the handle recycles here.
			e.store.release(ev.h)
			break
		}
		e.step(ev.h, ev.t)
	case kindFinish:
		e.core.Finishes++
		if e.store.dead[ev.h] {
			e.store.release(ev.h)
			break
		}
		e.finish(ev.h, ev.t)
	}
	e.afterEvent()
	return true
}

// RunUntil processes every event with time <= t (scaled simulation
// time) and advances the clock and occupancy accounting to t. Pending
// fault events up to t are applied even when no job event forces them,
// so the machine's availability (and its down-time accounting) is
// current at t for the next submission.
func (e *Engine) RunUntil(t float64) {
	for {
		ht, _, ok := e.events.head()
		if e.hasFault && e.nextFault.T <= t && (!ok || e.nextFault.T <= ht) {
			e.processFault()
			continue
		}
		if ok && ht <= t {
			e.Step()
			continue
		}
		break
	}
	e.account(t)
	if t > e.now {
		e.now = t
	}
}

// Drain processes events until none remain.
func (e *Engine) Drain() {
	for e.Step() {
	}
}

// Deadlocked reports whether the engine has no events left but jobs
// still queued or running — the state batch Run reports as an error
// (a contiguous allocator can strand the queue head forever). Pending
// fault events count as events: a queued job stuck behind failed nodes
// is only deadlocked once the repair stream has nothing more to offer.
func (e *Engine) Deadlocked() bool {
	return e.events.len() == 0 && !e.hasFault && (len(e.queue) > 0 || e.store.live > 0)
}

// RunSource pumps src into the engine lazily: each job is submitted
// only when the clock reaches its arrival, so the event queue stays
// bounded by the in-flight work rather than the stream length. With
// horizon 0 the stream runs until the source is exhausted and the
// remaining events drain. horizon > 0 stops at the first job arriving
// after horizon (original trace seconds) and advances the clock
// exactly to the horizon, leaving in-flight work pending — so resumed
// calls with growing horizons replay the identical event sequence a
// single continuous run would, and the past-horizon job is held, not
// lost: the next RunSource call submits it before pulling from its
// source again. Call Drain to let a horizon-stopped run finish its
// in-flight jobs.
func (e *Engine) RunSource(src trace.Source, horizon float64) error {
	for {
		if !e.hasHeld {
			j, ok := src.Next()
			if !ok {
				break
			}
			// Hold the job the moment it leaves the source: a snapshot
			// taken while the clock advances toward its arrival then
			// carries it, and the restored engine re-submits it instead
			// of losing it.
			e.held, e.hasHeld = j, true
		}
		j := e.held
		if horizon > 0 && j.Arrival > horizon {
			e.RunUntil(horizon * e.cfg.Load * e.cfg.TimeScale)
			return nil
		}
		e.RunUntil(j.Arrival * e.cfg.Load * e.cfg.TimeScale)
		if err := e.Submit(j); err != nil {
			return err
		}
		e.held, e.hasHeld = trace.Job{}, false
	}
	e.Drain()
	if e.Deadlocked() {
		return fmt.Errorf("sim: deadlock with %d queued and %d running jobs",
			len(e.queue), e.store.live)
	}
	// The exhausted-source drain is the open-system run's natural end;
	// close it with the same invariant pass batch Run applies.
	return e.Audit()
}

// Result snapshots the run's aggregate outcome. With KeepRecords left
// at Keep it matches batch Run field for field; with Discard, Records
// is nil, MedianResponse is the P² streaming estimate, and everything
// else is exact.
func (e *Engine) Result() *Result {
	res := &Result{
		Config:          e.cfg,
		Records:         e.records,
		Jobs:            e.finished,
		Net:             e.net.Stats(),
		NodeUtilization: e.net.NodeUtilization(),
		Makespan:        e.makespan,
	}
	if e.finished > 0 {
		res.MeanResponse = e.respSum / float64(e.finished)
		res.PctContiguous = 100 * float64(e.contig) / float64(e.finished)
		res.AvgComponents = float64(e.totalComps) / float64(e.finished)
	}
	if e.cfg.KeepRecords == Keep {
		responses := make([]float64, 0, len(e.records))
		for i := range e.records {
			responses = append(responses, e.records[i].Response)
		}
		res.MedianResponse = stats.Percentile(responses, 50)
	} else {
		res.MedianResponse = e.respMedian.Value()
	}
	if e.lastAccount > 0 {
		res.UtilizationPct = 100 * e.busyArea / (e.lastAccount * float64(e.grid.Size()))
		res.MeanQueueLen = e.queueArea / e.lastAccount
	}
	res.Killed = e.killed
	res.Retried = e.retried
	res.GivenUp = e.givenUp
	if e.busyArea > 0 {
		res.WastedPct = 100 * e.wastedArea / e.busyArea
	}
	if e.lastAccount > 0 {
		area := e.lastAccount * float64(e.grid.Size())
		res.DownPct = 100 * e.downArea / area
		res.GoodputPct = 100 * (e.busyArea - e.wastedArea) / area
	}
	return res
}

// account integrates the time-weighted occupancy up to now.
func (e *Engine) account(now float64) {
	if now > e.lastAccount {
		e.busyArea += float64(e.busyProcs) * (now - e.lastAccount)
		e.queueArea += float64(len(e.queue)) * (now - e.lastAccount)
		e.downArea += float64(e.maskedN) * (now - e.lastAccount)
		e.lastAccount = now
	}
}

// processFault applies the pending fault event and pulls the next one
// from the stream. Availability flags (down, drained) and the
// allocator mask are kept separate: a node is masked in the allocator
// exactly when it is flagged unavailable and not occupied by a running
// job — an occupied node hit by NodeDown is masked right after its
// job's release, and a drained node's job runs to completion with the
// mask applied at finish.
func (e *Engine) processFault() {
	ev := e.nextFault
	e.advanceFault()
	e.core.FaultEvents++
	e.account(ev.T)
	if ev.T > e.now {
		e.now = ev.T
	}
	n := ev.Node
	switch ev.Kind {
	case fault.NodeDown:
		if e.down[n] {
			break
		}
		e.setFlag(n, true, true)
		if h := e.owner[n]; h >= 0 {
			e.killJob(h, e.now)
		} else if !e.masked[n] {
			e.mask(n)
		}
	case fault.NodeUp:
		if !e.down[n] {
			break
		}
		e.setFlag(n, true, false)
		if e.masked[n] && !e.drained[n] {
			e.unmask(n)
			e.trySchedule(e.now)
		}
	case fault.NodeDrain:
		if e.drained[n] {
			break
		}
		e.setFlag(n, false, true)
		if e.owner[n] < 0 && !e.masked[n] {
			e.mask(n)
		}
	case fault.NodeUndrain:
		if !e.drained[n] {
			break
		}
		e.setFlag(n, false, false)
		if e.masked[n] && !e.down[n] {
			e.unmask(n)
			e.trySchedule(e.now)
		}
	}
	e.afterEvent()
}

// setFlag sets the down (isDown true) or drained flag of node n and
// maintains the count of unavailable nodes behind strict-capacity
// submission.
func (e *Engine) setFlag(n int, isDown, v bool) {
	was := e.down[n] || e.drained[n]
	if isDown {
		e.down[n] = v
	} else {
		e.drained[n] = v
	}
	is := e.down[n] || e.drained[n]
	if is && !was {
		e.flagged++
	} else if was && !is {
		e.flagged--
	}
}

// mask marks a free node busy in the allocator — occupancy indexes,
// word scans and free counts all see it as taken — and notifies delta
// observers so external free-map mirrors track fault masking exactly
// like allocations. Any fault transition invalidates the head-blocked
// watermark: with SJF a shrunken free set can change which job is
// picked, and clearing on every transition is cheap because fault
// events are rare.
func (e *Engine) mask(n int) {
	e.faultable.MarkDown(n)
	e.masked[n] = true
	e.maskedN++
	e.blocked = false
	e.maskBuf[0] = n
	for _, fn := range e.deltaObs {
		fn(e.now, e.maskBuf[:], true)
	}
}

// unmask returns a masked node to the allocator's free set.
func (e *Engine) unmask(n int) {
	e.faultable.MarkUp(n)
	e.masked[n] = false
	e.maskedN--
	e.blocked = false
	e.maskBuf[0] = n
	for _, fn := range e.deltaObs {
		fn(e.now, e.maskBuf[:], false)
	}
}

// killJob tears down a running job hit by a node failure: release its
// processors (re-masking the members flagged down or drained), account
// the work lost, and requeue or abandon the job per the retry policy.
// The release may free survivors that admit queued jobs, so the
// scheduler runs before returning.
func (e *Engine) killJob(h int32, now float64) {
	s := &e.store
	nodes := s.nodes[h]
	job := s.job[h]
	e.allocator.Release(nodes)
	e.blocked = false
	e.busyProcs -= job.Size
	for _, fn := range e.deltaObs {
		fn(now, nodes, false)
	}
	e.wastedArea += float64(job.Size) * (now - s.start[h])
	for _, id := range nodes {
		e.owner[id] = -1
		if (e.down[id] || e.drained[id]) && !e.masked[id] {
			e.mask(id)
		}
	}
	e.killed++
	e.killCount[job.ID]++
	kills := e.killCount[job.ID]
	if e.trackRun {
		e.runRemove(h)
	}
	// The job's one outstanding step/finish event still references the
	// handle; it recycles when that stale event pops.
	s.markDead(h)
	if e.cfg.Retry.Allow(kills) {
		e.retried++
		delay := e.cfg.Retry.Delay(kills) * e.cfg.TimeScale
		e.push(event{t: now + delay, kind: kindArrival, arr: job})
	} else {
		e.givenUp++
		delete(e.killCount, job.ID)
	}
	e.trySchedule(now)
}

func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events.push(ev)
}

func (e *Engine) quotaOf(j trace.Job) int64 {
	q := int64(math.Round(j.Runtime * e.cfg.MsgsPerSecond))
	if q < 1 {
		q = 1
	}
	return q
}

// block arms the head-blocked watermark after a dispatch-free FCFS/SJF
// round: until a release, fault transition or decision-changing arrival,
// re-running the round is provably a no-op (a refused Allocate consumes
// no RNG and refusals are monotone under an unchanged or shrinking free
// set), so trySchedule short-circuits in O(1).
func (e *Engine) block() {
	if e.canBlock {
		e.blocked = true
	}
}

// trySchedule starts every job the policy allows at time now.
func (e *Engine) trySchedule(now float64) {
	if e.blocked {
		e.core.SchedSkips++
		return
	}
	e.core.SchedRounds++
	if e.isFCFS && e.batcher != nil {
		e.scheduleFCFSBatch(now)
		return
	}
	for {
		var pick int
		switch {
		case e.isFCFS:
			// Fast path: strict FCFS only ever inspects the head.
			pick = -1
			if len(e.queue) > 0 && e.queue[0].Size <= e.allocator.NumFree() {
				pick = 0
			}
		case e.cfg.RebuildSched:
			// Reference path: rebuild the policy's snapshots from
			// scratch every round, iterating live handles in ascending
			// order so equal-EstEnd running entries land in the same
			// relative order the incremental index keeps.
			e.pendBuf = e.pendBuf[:0]
			for _, j := range e.queue {
				e.pendBuf = append(e.pendBuf, sched.Pending{Size: j.Size, EstRuntime: j.Runtime})
			}
			e.runBuf = e.runBuf[:0]
			for h := 0; h < len(e.store.job); h++ {
				if e.store.inUse[h] && !e.store.dead[h] {
					e.runBuf = append(e.runBuf, sched.Running{Size: e.store.job[h].Size, EstEnd: e.store.estEnd[h]})
				}
			}
			pick = e.policy.Pick(e.pendBuf, now, e.allocator.NumFree(), e.runBuf)
		default:
			// Incremental path: pendBuf mirrors the queue and runOrd is
			// already (EstEnd, handle)-sorted, so the round costs one
			// policy scan and nothing else.
			if e.sorted != nil {
				pick = e.sorted.PickSorted(e.pendBuf, now, e.allocator.NumFree(), e.runOrd)
			} else {
				pick = e.policy.Pick(e.pendBuf, now, e.allocator.NumFree(), e.runOrd)
			}
		}
		if pick < 0 {
			e.block()
			return
		}
		job := e.queue[pick]
		nodes, err := e.allocator.Allocate(alloc.Request{Size: job.Size})
		if err == alloc.ErrInsufficient {
			// Contiguous allocators (submesh, buddy) can refuse on
			// external fragmentation even when enough processors
			// are free; the job stays queued until a release.
			e.block()
			return
		}
		if err != nil {
			// Any other refusal is a bookkeeping bug.
			panic(fmt.Sprintf("sim: allocator %s refused %d procs with %d free: %v",
				e.allocator.Name(), job.Size, e.allocator.NumFree(), err))
		}
		e.dequeueAt(pick)
		e.startJob(job, nodes, now)
	}
}

// scheduleFCFSBatch dispatches the runnable FCFS queue prefix in one
// AllocateBatch call. The BatchAllocator contract (exact-size
// consumption, success whenever size <= NumFree) makes the cumulative
// size check below exactly the head-fits rule the sequential loop
// applies after each allocation, and AllocateBatch is defined as the
// in-order sequence of Allocates, so the jobs started, their node sets,
// the RNG consumption, and the relative event order are all identical
// to the one-at-a-time loop — pinned by the golden digests and the
// batch equivalence suite.
func (e *Engine) scheduleFCFSBatch(now float64) {
	free := e.allocator.NumFree()
	n := 0
	for n < len(e.queue) && e.queue[n].Size <= free {
		free -= e.queue[n].Size
		n++
	}
	if n == 0 {
		e.block()
		return
	}
	if n == 1 {
		// Single-job rounds skip the batch call and its result slice —
		// the common steady-state case stays zero-alloc.
		job := e.queue[0]
		nodes, err := e.allocator.Allocate(alloc.Request{Size: job.Size})
		if err != nil {
			panic(fmt.Sprintf("sim: batch allocator %s refused %d procs with %d free: %v",
				e.allocator.Name(), job.Size, e.allocator.NumFree(), err))
		}
		e.queue = e.queue[:copy(e.queue, e.queue[1:])]
		e.startJob(job, nodes, now)
		e.block()
		return
	}
	e.reqBuf = e.reqBuf[:0]
	for i := 0; i < n; i++ {
		e.reqBuf = append(e.reqBuf, alloc.Request{Size: e.queue[i].Size})
	}
	batch, err := e.batcher.AllocateBatch(e.reqBuf)
	if err != nil || len(batch) != n {
		panic(fmt.Sprintf("sim: batch allocator %s served %d of %d requests with %d free: %v",
			e.allocator.Name(), len(batch), n, e.allocator.NumFree(), err))
	}
	for i := 0; i < n; i++ {
		e.startJob(e.queue[i], batch[i], now)
	}
	e.queue = e.queue[:copy(e.queue, e.queue[n:])]
	// n was the maximal runnable prefix, so the remaining head (if any)
	// exceeds the remaining free count: the round ends blocked.
	e.block()
}

// startJob registers an allocated job: claim a store handle, draw its
// communication generator (the single RNG consumer, so call order fixes
// determinism), account occupancy, notify delta observers, and schedule
// its first step.
func (e *Engine) startJob(job trace.Job, nodes []int, now float64) {
	h := e.store.alloc()
	s := &e.store
	s.job[h] = job
	s.nodes[h] = nodes
	s.gen[h] = e.pattern.Generator(job.Size, e.rng)
	s.quota[h] = e.quotaOf(job)
	s.sent[h] = 0
	s.hops[h] = 0
	s.start[h] = now
	s.lastArr[h] = now
	s.queued[h] = 0
	s.estEnd[h] = now + job.Runtime
	s.havePend[h] = false
	e.busyProcs += job.Size
	if e.owner != nil {
		for _, id := range nodes {
			e.owner[id] = h
		}
	}
	if e.trackRun {
		e.runInsert(h, s.estEnd[h], job.Size)
	}
	for _, fn := range e.deltaObs {
		fn(now, nodes, true)
	}
	e.push(event{t: now, kind: kindStep, h: h})
}

// finish runs as its own event at the time the job's last message
// arrived, so processors are not released before that moment.
func (e *Engine) finish(h int32, now float64) {
	s := &e.store
	nodes := s.nodes[h]
	job := s.job[h]
	e.allocator.Release(nodes)
	e.blocked = false
	e.busyProcs -= job.Size
	for _, fn := range e.deltaObs {
		fn(now, nodes, false)
	}
	if e.owner != nil {
		// A drained node lets its occupying job finish; the mask lands
		// here, the moment the release frees it.
		for _, id := range nodes {
			e.owner[id] = -1
			if (e.down[id] || e.drained[id]) && !e.masked[id] {
				e.mask(id)
			}
		}
		delete(e.killCount, job.ID)
	}
	if e.trackRun {
		e.runRemove(h)
	}
	end := s.lastArr[h]
	if end < now {
		end = now
	}
	inv := 1 / e.cfg.TimeScale
	var nComps int
	var avgPair float64
	if e.cfg.NaiveMetrics {
		// Reference walks: materialize the components, decode a
		// coordinate pair per distance.
		nComps = len(e.grid.Components(nodes))
		avgPair = e.grid.AvgPairwiseDist(nodes)
	} else {
		// Counted forms: integer-exact per-axis histograms and an
		// epoch-stamped flood fill — bit-identical results at a
		// fraction of the cost (see topo/setmetrics.go).
		nComps = e.grid.CountComponents(nodes, &e.setScratch)
		avgPair = e.grid.AvgPairwiseDistCounted(nodes, &e.setScratch)
	}
	rec := JobRecord{
		ID:          job.ID,
		Size:        job.Size,
		Quota:       s.quota[h],
		Arrival:     job.Arrival * inv,
		Start:       s.start[h] * inv,
		Finish:      end * inv,
		Response:    (end - job.Arrival) * inv,
		RunTime:     (end - s.start[h]) * inv,
		Wait:        (s.start[h] - job.Arrival) * inv,
		AvgPairwise: avgPair,
		QueuedSec:   s.queued[h] * inv,
		Components:  nComps,
		Contiguous:  nComps == 1,
	}
	if e.cfg.KeepNodes == Keep {
		rec.Nodes = sortedCopy(nodes)
	}
	if s.sent[h] > 0 {
		rec.AvgMsgDist = float64(s.hops[h]) / float64(s.sent[h])
	}

	// Streaming aggregates and observers see every record; the records
	// slice only grows under the Keep policy.
	e.finished++
	e.respSum += rec.Response
	e.respMedian.Add(rec.Response)
	e.totalComps += rec.Components
	if rec.Contiguous {
		e.contig++
	}
	if rec.Finish > e.makespan {
		e.makespan = rec.Finish
	}
	for _, fn := range e.observers {
		fn(rec)
	}
	if e.cfg.KeepRecords == Keep {
		e.records = append(e.records, rec)
	}

	// The finish event was the job's last reference; recycle the
	// handle for a later arrival.
	s.release(h)
	e.trySchedule(end)
}

// step issues the next burst of messages for the job at handle h at
// time now and schedules the follow-up event.
func (e *Engine) step(h int32, now float64) {
	s := &e.store
	burst := int64(1)
	if e.cfg.Issue == IssuePhased {
		burst = math.MaxInt64 // until phase boundary
	}
	if e.cfg.MaxPhase > 0 && burst > int64(e.cfg.MaxPhase) {
		burst = int64(e.cfg.MaxPhase)
	}
	maxArr := now
	var issued int64
	nodes := s.nodes[h]
	gen := s.gen[h]
	sent, quota := s.sent[h], s.quota[h]
	hops, queued := s.hops[h], s.queued[h]
	for issued < burst && sent < quota {
		var msg comm.Msg
		if s.havePend[h] {
			msg, s.havePend[h] = s.pending[h], false
		} else {
			var newPhase bool
			msg, newPhase = gen.Next()
			if newPhase && issued > 0 {
				// The phase ended; save the message for the next burst.
				s.pending[h], s.havePend[h] = msg, true
				break
			}
		}
		r := e.net.Send(nodes[msg.Src], nodes[msg.Dst], now)
		sent++
		hops += int64(r.Hops)
		queued += r.Queued
		if r.Arrival > maxArr {
			maxArr = r.Arrival
		}
		issued++
	}
	s.sent[h], s.hops[h], s.queued[h] = sent, hops, queued
	if maxArr > s.lastArr[h] {
		s.lastArr[h] = maxArr
	}
	if sent >= quota {
		e.push(event{t: maxArr, kind: kindFinish, h: h})
		return
	}
	// Barrier: the next subphase starts when this burst has arrived.
	e.push(event{t: maxArr, kind: kindStep, h: h})
}
