package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"meshalloc/internal/alloc"
	"meshalloc/internal/comm"
	"meshalloc/internal/fault"
	"meshalloc/internal/netsim"
	"meshalloc/internal/sched"
	"meshalloc/internal/stats"
	"meshalloc/internal/topo"
	"meshalloc/internal/trace"
)

// Observer receives each finished job's record the moment it completes,
// before the retention policy applies: observers see every record even
// when Config.KeepRecords is Discard, which is how results stream out
// of a constant-memory run.
type Observer func(JobRecord)

// DeltaObserver receives the node-id delta of every occupancy change:
// the ids a starting job just received (allocated true) or a finishing
// job just returned (allocated false), with the scaled simulation time
// of the change. Deltas are exactly the invalidation sets incremental
// consumers need — a caching scorer or an external mirror of the
// free-map updates only the changed region instead of re-reading the
// machine. The ids slice is the engine's own and must not be retained
// or mutated past the call.
type DeltaObserver func(now float64, ids []int, allocated bool)

// event is a heap entry.
type event struct {
	t    float64
	seq  int64 // FIFO tie-break for determinism
	kind int   // kindArrival, kindStep or kindFinish
	job  *runningJob
	arr  trace.Job // arrival: the (already scaled) job
}

const (
	kindArrival = iota
	kindStep
	kindFinish
)

func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

// eventHeap is a hand-rolled binary min-heap of events ordered by (t,
// seq). container/heap would box every pushed and popped event into an
// interface — one garbage allocation per simulated event, right on the
// hottest loop of the simulator — so the sift operations are written out
// against the concrete slice instead.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the job pointer so the pool can recycle it
	*h = s[:n]
	s = s[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

type runningJob struct {
	job      trace.Job
	nodes    []int
	gen      comm.Generator
	quota    int64
	sent     int64
	start    float64
	lastArr  float64 // latest delivery so far
	hops     int64
	queued   float64
	pending  comm.Msg // first message of the next phase (phased mode)
	havePend bool
	estEnd   float64 // nominal end for backfilling estimates
	// dead marks a job killed by a node failure. Its one outstanding
	// step/finish event still sits in the heap holding this pointer, so
	// the struct is recycled when that stale event pops, not at kill
	// time — recycling earlier would hand a pooled struct to a new job
	// while the heap still references it.
	dead bool
}

// Engine is the resumable discrete-event core of the simulator. Where
// the batch Run builds the world, replays one trace to completion and
// returns every record in memory, an Engine exposes the lifecycle
// directly: construct with NewEngine, inject jobs at any time with
// Submit (online submission — the clock may already be running),
// advance with Step, RunUntil or Drain, stream per-job records through
// Observe, and read streaming aggregates with Result at any point.
//
// With Config.KeepRecords/KeepNodes set to Discard, the engine holds
// O(machine + in-flight jobs) memory regardless of how many jobs pass
// through — the shape a million-job open-system run needs.
//
// The engine clock runs in scaled simulation time (original seconds
// compressed by Config.Load on arrivals and Config.TimeScale overall);
// records re-inflate to original seconds exactly as in Run.
type Engine struct {
	cfg       Config
	grid      *topo.Grid
	allocator alloc.Allocator
	// batcher is non-nil when the allocator supports batch allocation;
	// the FCFS dispatch then serves each runnable queue prefix in one
	// call. Results are bit-identical to one-at-a-time dispatch (see
	// scheduleFCFSBatch); tests null it out to compare both paths.
	batcher alloc.BatchAllocator
	pattern comm.Pattern
	policy  sched.Policy
	isFCFS  bool
	net     *netsim.Network
	rng     *stats.RNG

	events eventHeap
	seq    int64
	now    float64
	queue  []trace.Job // FCFS arrival order, already scaled
	runSet map[*runningJob]bool
	rjPool []*runningJob // recycled runningJob structs

	// pendBuf and runBuf are persistent scratch for the non-FCFS policy
	// path, refilled per trySchedule round; reqBuf is the batch-dispatch
	// request scratch.
	pendBuf []sched.Pending
	runBuf  []sched.Running
	reqBuf  []alloc.Request

	observers []Observer
	deltaObs  []DeltaObserver
	records   []JobRecord

	// Streaming aggregates, updated at every finish so Result never
	// needs the retained records.
	finished   int
	respSum    float64
	respMedian *stats.P2Quantile
	totalComps int
	contig     int
	makespan   float64

	// Time-weighted occupancy accounting.
	busyProcs   int
	lastAccount float64
	busyArea    float64 // processor-seconds held by jobs
	queueArea   float64 // job-seconds spent queued

	// held buffers a job RunSource pulled from its source but could not
	// submit because it arrives past the horizon; a later RunSource call
	// with a larger horizon resumes with it instead of losing it.
	held    trace.Job
	hasHeld bool

	// Fault-injection state; all nil/zero on a fault-free engine, and
	// every hot-path touch is gated on faults != nil so the fault-free
	// event loop is unchanged instruction for instruction.
	faults     *fault.Stream
	nextFault  fault.Event // pending head of the stream, time already scaled
	hasFault   bool
	faultable  alloc.FaultAware
	down       []bool        // hard-failed nodes
	drained    []bool        // administratively drained nodes
	masked     []bool        // nodes currently marked down in the allocator
	owner      []*runningJob // occupying job per node, for O(1) kill lookup
	flagged    int           // count of down-or-drained nodes
	maskedN    int           // count of masked nodes
	killCount  map[int]int   // kills per job ID, for retry bookkeeping
	maskBuf    [1]int        // single-node delta scratch for observers
	killed     int
	retried    int
	givenUp    int
	wastedArea float64 // processor-seconds consumed by later-killed jobs
	downArea   float64 // node-seconds masked out of service
}

// NewEngine validates cfg and builds an idle engine with an empty queue
// and the clock at zero.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	dims := cfg.dims()
	if len(dims) < 1 || len(dims) > topo.MaxDims {
		return nil, fmt.Errorf("sim: machine needs 1..%d dimensions, got %d", topo.MaxDims, len(dims))
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("sim: invalid machine extent %d on axis %d", d, i)
		}
	}
	var m *topo.Grid
	if cfg.Torus {
		m = topo.NewTorus(dims)
	} else {
		m = topo.New(dims)
	}
	allocator, err := alloc.Spec(m, cfg.Alloc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.AllocWorkers > 1 {
		if ps, ok := allocator.(alloc.ParallelScorer); ok {
			ps.SetParallelism(cfg.AllocWorkers)
		}
	}
	pattern, err := comm.ByName(cfg.Pattern)
	if err != nil {
		return nil, err
	}
	// Same-size jobs share one immutable phase schedule for the run.
	pattern = comm.Cached(pattern)
	policy, err := sched.ByName(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	_, isFCFS := policy.(sched.FCFS)
	batcher, _ := allocator.(alloc.BatchAllocator)
	e := &Engine{
		cfg:        cfg,
		grid:       m,
		allocator:  allocator,
		batcher:    batcher,
		pattern:    pattern,
		policy:     policy,
		isFCFS:     isFCFS,
		net:        netsim.New(m, cfg.Net),
		rng:        stats.NewRNG(cfg.Seed),
		runSet:     map[*runningJob]bool{},
		respMedian: stats.NewP2Quantile(0.5),
	}
	if cfg.Faults.Enabled() {
		if err := e.initFaults(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// initFaults validates the fault configuration and arms the engine's
// fault state. The failure clocks default to the run seed so a plain
// Config{Seed: s, Faults: ...} is fully determined by s.
func (e *Engine) initFaults() error {
	fc := e.cfg.Faults
	if fc.Seed == 0 {
		fc.Seed = e.cfg.Seed
	}
	fa, ok := e.allocator.(alloc.FaultAware)
	if !ok {
		return fmt.Errorf("sim: allocator %s cannot mask failed nodes; fault injection needs a FaultAware allocator (mc, mc1x1, genalg, random, or a curve/strategy form)",
			e.allocator.Name())
	}
	if err := e.cfg.Retry.Validate(); err != nil {
		return err
	}
	s, err := fault.NewStream(fc, e.grid.Size())
	if err != nil {
		return err
	}
	n := e.grid.Size()
	e.faults = s
	e.faultable = fa
	e.down = make([]bool, n)
	e.drained = make([]bool, n)
	e.masked = make([]bool, n)
	e.owner = make([]*runningJob, n)
	e.killCount = map[int]int{}
	e.advanceFault()
	return nil
}

// advanceFault pulls the next stream event into the pending slot,
// contracting its time by TimeScale exactly as job runtimes are (node
// lifetimes are machine wall clock, so Load — an arrival-rate knob —
// does not apply).
func (e *Engine) advanceFault() {
	ev, ok := e.faults.Next()
	if !ok {
		e.hasFault = false
		return
	}
	ev.T *= e.cfg.TimeScale
	e.nextFault, e.hasFault = ev, true
}

// Observe registers fn to be called with every finished job's record,
// in finish order. Observers registered later are called later.
func (e *Engine) Observe(fn Observer) {
	e.observers = append(e.observers, fn)
}

// ObserveDeltas registers fn to be called with every allocate/release
// node delta, in event order. Registration order is call order.
func (e *Engine) ObserveDeltas(fn DeltaObserver) {
	e.deltaObs = append(e.deltaObs, fn)
}

// MachineSize returns the number of processors in the machine.
func (e *Engine) MachineSize() int { return e.grid.Size() }

// NumFree returns the number of currently unallocated processors.
func (e *Engine) NumFree() int { return e.allocator.NumFree() }

// Now returns the engine clock in scaled simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of jobs queued but not yet started.
func (e *Engine) Pending() int { return len(e.queue) }

// RunningJobs returns the number of jobs currently holding processors.
func (e *Engine) RunningJobs() int { return len(e.runSet) }

// Finished returns the number of jobs that have completed.
func (e *Engine) Finished() int { return e.finished }

// ErrOversize is the sentinel matched by errors.Is for jobs rejected
// because they can never (or, under strict capacity, currently cannot)
// be placed. The concrete error is an *OversizeError carrying the
// numbers.
var ErrOversize = errors.New("sim: job exceeds machine capacity")

// OversizeError reports a job rejected at Submit because its size
// exceeds Capacity — the whole machine, or, when Strict is set, the
// currently available (not failed, not drained) node count. Failing
// fast here, with the numbers attached, beats the old behaviour of
// letting the job sit queued until Deadlocked() tripped at the end of
// the run.
type OversizeError struct {
	ID       int
	Size     int
	Capacity int
	Strict   bool // rejection against available rather than total capacity
}

// Error implements error.
func (e *OversizeError) Error() string {
	if e.Strict {
		return fmt.Sprintf("sim: job %d needs %d processors, only %d currently in service",
			e.ID, e.Size, e.Capacity)
	}
	return fmt.Sprintf("sim: job %d needs %d processors, machine has %d (filter the trace first)",
		e.ID, e.Size, e.Capacity)
}

// Is reports equality against the ErrOversize sentinel.
func (e *OversizeError) Is(target error) bool { return target == ErrOversize }

// Submit injects a job given in original (unscaled) trace units: the
// engine applies Load to its arrival and TimeScale to both arrival and
// runtime, exactly as Run scales a whole trace. Jobs may be submitted
// while the clock runs; an arrival already in the past is clamped to
// the current clock. Oversized jobs are rejected with an *OversizeError
// (errors.Is(err, ErrOversize)); with Faults.StrictCapacity set, so are
// jobs larger than the currently available node count.
func (e *Engine) Submit(j trace.Job) error {
	if j.Size > e.grid.Size() {
		return &OversizeError{ID: j.ID, Size: j.Size, Capacity: e.grid.Size()}
	}
	if j.Size <= 0 {
		return fmt.Errorf("sim: job %d has invalid size %d", j.ID, j.Size)
	}
	if e.cfg.Faults.StrictCapacity && j.Size > e.grid.Size()-e.flagged {
		return &OversizeError{ID: j.ID, Size: j.Size, Capacity: e.grid.Size() - e.flagged, Strict: true}
	}
	// Mirror Trace.ScaleLoad followed by Trace.ScaleTime operation for
	// operation so batch outputs stay bit-identical.
	j.Arrival *= e.cfg.Load
	j.Arrival *= e.cfg.TimeScale
	j.Runtime *= e.cfg.TimeScale
	if j.Arrival < e.now {
		j.Arrival = e.now
	}
	e.push(event{t: j.Arrival, kind: kindArrival, arr: j})
	return nil
}

// Step processes the single earliest event and returns true, or returns
// false when no events remain. Fault events interleave by time with job
// events; on an exact tie the fault applies first, so a job finishing
// at the instant its node dies is killed, not completed — the
// conservative reading, and the ordering contract DESIGN.md documents.
func (e *Engine) Step() bool {
	if e.hasFault {
		if len(e.events) == 0 {
			// No job events left. Keep the machine evolving only while
			// queued work could still be unblocked by a repair;
			// otherwise the run is over and the infinite failure
			// stream must not keep it alive.
			if len(e.queue) == 0 {
				return false
			}
			e.processFault()
			return true
		}
		if e.nextFault.T <= e.events[0].t {
			e.processFault()
			return true
		}
	}
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.account(ev.t)
	if ev.t > e.now {
		e.now = ev.t
	}
	switch ev.kind {
	case kindArrival:
		e.queue = append(e.queue, ev.arr)
		if e.isFCFS {
			// Drain every same-timestamp arrival at the top of the heap
			// before scheduling once, so simultaneous arrivals dispatch
			// as one batch. Under FCFS this is bit-identical to
			// scheduling after each arrival: the drain stops at any
			// earlier-sequenced non-arrival event, queue order is
			// arrival order either way, and the combined trySchedule
			// starts the same jobs in the same order consuming the RNG
			// identically. Policies that inspect the whole queue (SJF)
			// keep per-arrival scheduling.
			for len(e.events) > 0 && e.events[0].t == ev.t && e.events[0].kind == kindArrival {
				next := e.events.pop()
				e.queue = append(e.queue, next.arr)
			}
		}
		e.trySchedule(ev.t)
	case kindStep:
		if ev.job.dead {
			e.recycle(ev.job)
			break
		}
		e.step(ev.job, ev.t)
	case kindFinish:
		if ev.job.dead {
			e.recycle(ev.job)
			break
		}
		e.finish(ev.job, ev.t)
	}
	return true
}

// recycle returns a killed job's struct to the pool once its stale
// heap event — the last live reference — has popped.
func (e *Engine) recycle(rj *runningJob) {
	*rj = runningJob{}
	e.rjPool = append(e.rjPool, rj)
}

// RunUntil processes every event with time <= t (scaled simulation
// time) and advances the clock and occupancy accounting to t. Pending
// fault events up to t are applied even when no job event forces them,
// so the machine's availability (and its down-time accounting) is
// current at t for the next submission.
func (e *Engine) RunUntil(t float64) {
	for {
		if e.hasFault && e.nextFault.T <= t &&
			(len(e.events) == 0 || e.nextFault.T <= e.events[0].t) {
			e.processFault()
			continue
		}
		if len(e.events) > 0 && e.events[0].t <= t {
			e.Step()
			continue
		}
		break
	}
	e.account(t)
	if t > e.now {
		e.now = t
	}
}

// Drain processes events until none remain.
func (e *Engine) Drain() {
	for e.Step() {
	}
}

// Deadlocked reports whether the engine has no events left but jobs
// still queued or running — the state batch Run reports as an error
// (a contiguous allocator can strand the queue head forever). Pending
// fault events count as events: a queued job stuck behind failed nodes
// is only deadlocked once the repair stream has nothing more to offer.
func (e *Engine) Deadlocked() bool {
	return len(e.events) == 0 && !e.hasFault && (len(e.queue) > 0 || len(e.runSet) > 0)
}

// RunSource pumps src into the engine lazily: each job is submitted
// only when the clock reaches its arrival, so the event heap stays
// bounded by the in-flight work rather than the stream length. With
// horizon 0 the stream runs until the source is exhausted and the
// remaining events drain. horizon > 0 stops at the first job arriving
// after horizon (original trace seconds) and advances the clock
// exactly to the horizon, leaving in-flight work pending — so resumed
// calls with growing horizons replay the identical event sequence a
// single continuous run would, and the past-horizon job is held, not
// lost: the next RunSource call submits it before pulling from its
// source again. Call Drain to let a horizon-stopped run finish its
// in-flight jobs.
func (e *Engine) RunSource(src trace.Source, horizon float64) error {
	for {
		var j trace.Job
		if e.hasHeld {
			j = e.held
		} else {
			var ok bool
			j, ok = src.Next()
			if !ok {
				break
			}
		}
		if horizon > 0 && j.Arrival > horizon {
			e.held, e.hasHeld = j, true
			e.RunUntil(horizon * e.cfg.Load * e.cfg.TimeScale)
			return nil
		}
		e.hasHeld = false
		e.RunUntil(j.Arrival * e.cfg.Load * e.cfg.TimeScale)
		if err := e.Submit(j); err != nil {
			return err
		}
	}
	e.Drain()
	if e.Deadlocked() {
		return fmt.Errorf("sim: deadlock with %d queued and %d running jobs",
			len(e.queue), len(e.runSet))
	}
	return nil
}

// Result snapshots the run's aggregate outcome. With KeepRecords left
// at Keep it matches batch Run field for field; with Discard, Records
// is nil, MedianResponse is the P² streaming estimate, and everything
// else is exact.
func (e *Engine) Result() *Result {
	res := &Result{
		Config:          e.cfg,
		Records:         e.records,
		Jobs:            e.finished,
		Net:             e.net.Stats(),
		NodeUtilization: e.net.NodeUtilization(),
		Makespan:        e.makespan,
	}
	if e.finished > 0 {
		res.MeanResponse = e.respSum / float64(e.finished)
		res.PctContiguous = 100 * float64(e.contig) / float64(e.finished)
		res.AvgComponents = float64(e.totalComps) / float64(e.finished)
	}
	if e.cfg.KeepRecords == Keep {
		responses := make([]float64, 0, len(e.records))
		for i := range e.records {
			responses = append(responses, e.records[i].Response)
		}
		res.MedianResponse = stats.Percentile(responses, 50)
	} else {
		res.MedianResponse = e.respMedian.Value()
	}
	if e.lastAccount > 0 {
		res.UtilizationPct = 100 * e.busyArea / (e.lastAccount * float64(e.grid.Size()))
		res.MeanQueueLen = e.queueArea / e.lastAccount
	}
	res.Killed = e.killed
	res.Retried = e.retried
	res.GivenUp = e.givenUp
	if e.busyArea > 0 {
		res.WastedPct = 100 * e.wastedArea / e.busyArea
	}
	if e.lastAccount > 0 {
		area := e.lastAccount * float64(e.grid.Size())
		res.DownPct = 100 * e.downArea / area
		res.GoodputPct = 100 * (e.busyArea - e.wastedArea) / area
	}
	return res
}

// account integrates the time-weighted occupancy up to now.
func (e *Engine) account(now float64) {
	if now > e.lastAccount {
		e.busyArea += float64(e.busyProcs) * (now - e.lastAccount)
		e.queueArea += float64(len(e.queue)) * (now - e.lastAccount)
		e.downArea += float64(e.maskedN) * (now - e.lastAccount)
		e.lastAccount = now
	}
}

// processFault applies the pending fault event and pulls the next one
// from the stream. Availability flags (down, drained) and the
// allocator mask are kept separate: a node is masked in the allocator
// exactly when it is flagged unavailable and not occupied by a running
// job — an occupied node hit by NodeDown is masked right after its
// job's release, and a drained node's job runs to completion with the
// mask applied at finish.
func (e *Engine) processFault() {
	ev := e.nextFault
	e.advanceFault()
	e.account(ev.T)
	if ev.T > e.now {
		e.now = ev.T
	}
	n := ev.Node
	switch ev.Kind {
	case fault.NodeDown:
		if e.down[n] {
			break
		}
		e.setFlag(n, true, true)
		if rj := e.owner[n]; rj != nil {
			e.killJob(rj, e.now)
		} else if !e.masked[n] {
			e.mask(n)
		}
	case fault.NodeUp:
		if !e.down[n] {
			break
		}
		e.setFlag(n, true, false)
		if e.masked[n] && !e.drained[n] {
			e.unmask(n)
			e.trySchedule(e.now)
		}
	case fault.NodeDrain:
		if e.drained[n] {
			break
		}
		e.setFlag(n, false, true)
		if e.owner[n] == nil && !e.masked[n] {
			e.mask(n)
		}
	case fault.NodeUndrain:
		if !e.drained[n] {
			break
		}
		e.setFlag(n, false, false)
		if e.masked[n] && !e.down[n] {
			e.unmask(n)
			e.trySchedule(e.now)
		}
	}
}

// setFlag sets the down (isDown true) or drained flag of node n and
// maintains the count of unavailable nodes behind strict-capacity
// submission.
func (e *Engine) setFlag(n int, isDown, v bool) {
	was := e.down[n] || e.drained[n]
	if isDown {
		e.down[n] = v
	} else {
		e.drained[n] = v
	}
	is := e.down[n] || e.drained[n]
	if is && !was {
		e.flagged++
	} else if was && !is {
		e.flagged--
	}
}

// mask marks a free node busy in the allocator — occupancy indexes,
// word scans and free counts all see it as taken — and notifies delta
// observers so external free-map mirrors track fault masking exactly
// like allocations.
func (e *Engine) mask(n int) {
	e.faultable.MarkDown(n)
	e.masked[n] = true
	e.maskedN++
	e.maskBuf[0] = n
	for _, fn := range e.deltaObs {
		fn(e.now, e.maskBuf[:], true)
	}
}

// unmask returns a masked node to the allocator's free set.
func (e *Engine) unmask(n int) {
	e.faultable.MarkUp(n)
	e.masked[n] = false
	e.maskedN--
	e.maskBuf[0] = n
	for _, fn := range e.deltaObs {
		fn(e.now, e.maskBuf[:], false)
	}
}

// killJob tears down a running job hit by a node failure: release its
// processors (re-masking the members flagged down or drained), account
// the work lost, and requeue or abandon the job per the retry policy.
// The release may free survivors that admit queued jobs, so the
// scheduler runs before returning.
func (e *Engine) killJob(rj *runningJob, now float64) {
	delete(e.runSet, rj)
	e.allocator.Release(rj.nodes)
	e.busyProcs -= rj.job.Size
	for _, fn := range e.deltaObs {
		fn(now, rj.nodes, false)
	}
	e.wastedArea += float64(rj.job.Size) * (now - rj.start)
	for _, id := range rj.nodes {
		e.owner[id] = nil
		if (e.down[id] || e.drained[id]) && !e.masked[id] {
			e.mask(id)
		}
	}
	job := rj.job
	e.killed++
	e.killCount[job.ID]++
	kills := e.killCount[job.ID]
	// The job's one outstanding step/finish event still references the
	// struct; recycling happens when that stale event pops.
	*rj = runningJob{dead: true}
	if e.cfg.Retry.Allow(kills) {
		e.retried++
		delay := e.cfg.Retry.Delay(kills) * e.cfg.TimeScale
		e.push(event{t: now + delay, kind: kindArrival, arr: job})
	} else {
		e.givenUp++
		delete(e.killCount, job.ID)
	}
	e.trySchedule(now)
}

func (e *Engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.events.push(ev)
}

func (e *Engine) quotaOf(j trace.Job) int64 {
	q := int64(math.Round(j.Runtime * e.cfg.MsgsPerSecond))
	if q < 1 {
		q = 1
	}
	return q
}

// trySchedule starts every job the policy allows at time now.
func (e *Engine) trySchedule(now float64) {
	if e.isFCFS && e.batcher != nil {
		e.scheduleFCFSBatch(now)
		return
	}
	for {
		var pick int
		if e.isFCFS {
			// Fast path: strict FCFS only ever inspects the head.
			pick = -1
			if len(e.queue) > 0 && e.queue[0].Size <= e.allocator.NumFree() {
				pick = 0
			}
		} else {
			e.pendBuf = e.pendBuf[:0]
			for _, j := range e.queue {
				e.pendBuf = append(e.pendBuf, sched.Pending{Size: j.Size, EstRuntime: j.Runtime})
			}
			e.runBuf = e.runBuf[:0]
			for rj := range e.runSet {
				e.runBuf = append(e.runBuf, sched.Running{Size: rj.job.Size, EstEnd: rj.estEnd})
			}
			pick = e.policy.Pick(e.pendBuf, now, e.allocator.NumFree(), e.runBuf)
		}
		if pick < 0 {
			return
		}
		job := e.queue[pick]
		nodes, err := e.allocator.Allocate(alloc.Request{Size: job.Size})
		if err == alloc.ErrInsufficient {
			// Contiguous allocators (submesh, buddy) can refuse on
			// external fragmentation even when enough processors
			// are free; the job stays queued until a release.
			return
		}
		if err != nil {
			// Any other refusal is a bookkeeping bug.
			panic(fmt.Sprintf("sim: allocator %s refused %d procs with %d free: %v",
				e.allocator.Name(), job.Size, e.allocator.NumFree(), err))
		}
		e.queue = append(e.queue[:pick], e.queue[pick+1:]...)
		e.startJob(job, nodes, now)
	}
}

// scheduleFCFSBatch dispatches the runnable FCFS queue prefix in one
// AllocateBatch call. The BatchAllocator contract (exact-size
// consumption, success whenever size <= NumFree) makes the cumulative
// size check below exactly the head-fits rule the sequential loop
// applies after each allocation, and AllocateBatch is defined as the
// in-order sequence of Allocates, so the jobs started, their node sets,
// the RNG consumption, and the relative event order are all identical
// to the one-at-a-time loop — pinned by the golden digests and the
// batch equivalence suite.
func (e *Engine) scheduleFCFSBatch(now float64) {
	free := e.allocator.NumFree()
	n := 0
	for n < len(e.queue) && e.queue[n].Size <= free {
		free -= e.queue[n].Size
		n++
	}
	if n == 0 {
		return
	}
	if n == 1 {
		// Single-job rounds skip the batch call and its result slice —
		// the common steady-state case stays zero-alloc.
		job := e.queue[0]
		nodes, err := e.allocator.Allocate(alloc.Request{Size: job.Size})
		if err != nil {
			panic(fmt.Sprintf("sim: batch allocator %s refused %d procs with %d free: %v",
				e.allocator.Name(), job.Size, e.allocator.NumFree(), err))
		}
		e.queue = e.queue[:copy(e.queue, e.queue[1:])]
		e.startJob(job, nodes, now)
		return
	}
	e.reqBuf = e.reqBuf[:0]
	for i := 0; i < n; i++ {
		e.reqBuf = append(e.reqBuf, alloc.Request{Size: e.queue[i].Size})
	}
	batch, err := e.batcher.AllocateBatch(e.reqBuf)
	if err != nil || len(batch) != n {
		panic(fmt.Sprintf("sim: batch allocator %s served %d of %d requests with %d free: %v",
			e.allocator.Name(), len(batch), n, e.allocator.NumFree(), err))
	}
	for i := 0; i < n; i++ {
		e.startJob(e.queue[i], batch[i], now)
	}
	e.queue = e.queue[:copy(e.queue, e.queue[n:])]
}

// startJob registers an allocated job: pool a runningJob, draw its
// communication generator (the single RNG consumer, so call order fixes
// determinism), account occupancy, notify delta observers, and schedule
// its first step.
func (e *Engine) startJob(job trace.Job, nodes []int, now float64) {
	var rj *runningJob
	if n := len(e.rjPool); n > 0 {
		rj, e.rjPool = e.rjPool[n-1], e.rjPool[:n-1]
	} else {
		rj = new(runningJob)
	}
	*rj = runningJob{
		job:     job,
		nodes:   nodes,
		gen:     e.pattern.Generator(job.Size, e.rng),
		quota:   e.quotaOf(job),
		start:   now,
		lastArr: now,
		estEnd:  now + job.Runtime,
	}
	e.runSet[rj] = true
	e.busyProcs += job.Size
	if e.owner != nil {
		for _, id := range nodes {
			e.owner[id] = rj
		}
	}
	for _, fn := range e.deltaObs {
		fn(now, nodes, true)
	}
	e.push(event{t: now, kind: kindStep, job: rj})
}

// finish runs as its own event at the time the job's last message
// arrived, so processors are not released before that moment.
func (e *Engine) finish(rj *runningJob, now float64) {
	delete(e.runSet, rj)
	e.allocator.Release(rj.nodes)
	e.busyProcs -= rj.job.Size
	for _, fn := range e.deltaObs {
		fn(now, rj.nodes, false)
	}
	if e.owner != nil {
		// A drained node lets its occupying job finish; the mask lands
		// here, the moment the release frees it.
		for _, id := range rj.nodes {
			e.owner[id] = nil
			if (e.down[id] || e.drained[id]) && !e.masked[id] {
				e.mask(id)
			}
		}
		delete(e.killCount, rj.job.ID)
	}
	end := rj.lastArr
	if end < now {
		end = now
	}
	inv := 1 / e.cfg.TimeScale
	comps := e.grid.Components(rj.nodes)
	rec := JobRecord{
		ID:          rj.job.ID,
		Size:        rj.job.Size,
		Quota:       rj.quota,
		Arrival:     rj.job.Arrival * inv,
		Start:       rj.start * inv,
		Finish:      end * inv,
		Response:    (end - rj.job.Arrival) * inv,
		RunTime:     (end - rj.start) * inv,
		Wait:        (rj.start - rj.job.Arrival) * inv,
		AvgPairwise: e.grid.AvgPairwiseDist(rj.nodes),
		QueuedSec:   rj.queued * inv,
		Components:  len(comps),
		Contiguous:  len(comps) == 1,
	}
	if e.cfg.KeepNodes == Keep {
		rec.Nodes = sortedCopy(rj.nodes)
	}
	if rj.sent > 0 {
		rec.AvgMsgDist = float64(rj.hops) / float64(rj.sent)
	}

	// Streaming aggregates and observers see every record; the records
	// slice only grows under the Keep policy.
	e.finished++
	e.respSum += rec.Response
	e.respMedian.Add(rec.Response)
	e.totalComps += rec.Components
	if rec.Contiguous {
		e.contig++
	}
	if rec.Finish > e.makespan {
		e.makespan = rec.Finish
	}
	for _, fn := range e.observers {
		fn(rec)
	}
	if e.cfg.KeepRecords == Keep {
		e.records = append(e.records, rec)
	}

	// The finish event was the job's last reference; recycle the
	// struct for a later arrival.
	*rj = runningJob{}
	e.rjPool = append(e.rjPool, rj)
	e.trySchedule(end)
}

// step issues the next burst of messages for rj at time now and
// schedules the follow-up event.
func (e *Engine) step(rj *runningJob, now float64) {
	burst := int64(1)
	if e.cfg.Issue == IssuePhased {
		burst = math.MaxInt64 // until phase boundary
	}
	if e.cfg.MaxPhase > 0 && burst > int64(e.cfg.MaxPhase) {
		burst = int64(e.cfg.MaxPhase)
	}
	maxArr := now
	var issued int64
	for issued < burst && rj.sent < rj.quota {
		var msg comm.Msg
		if rj.havePend {
			msg, rj.havePend = rj.pending, false
		} else {
			var newPhase bool
			msg, newPhase = rj.gen.Next()
			if newPhase && issued > 0 {
				// The phase ended; save the message for the next burst.
				rj.pending, rj.havePend = msg, true
				break
			}
		}
		r := e.net.Send(rj.nodes[msg.Src], rj.nodes[msg.Dst], now)
		rj.sent++
		rj.hops += int64(r.Hops)
		rj.queued += r.Queued
		if r.Arrival > maxArr {
			maxArr = r.Arrival
		}
		issued++
	}
	if maxArr > rj.lastArr {
		rj.lastArr = maxArr
	}
	if rj.sent >= rj.quota {
		e.push(event{t: maxArr, kind: kindFinish, job: rj})
		return
	}
	// Barrier: the next subphase starts when this burst has arrived.
	e.push(event{t: maxArr, kind: kindStep, job: rj})
}
