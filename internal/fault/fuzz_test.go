package fault

import "testing"

// FuzzParseDist: no input may panic, and every accepted spec must pass
// Validate — the CLI relies on parse-time rejection being complete.
func FuzzParseDist(f *testing.F) {
	for _, s := range []string{
		"", "3600", "exp:250", "weibull:100,0.7", "weibull:1e3,2",
		"exp:", "exp:-1", "exp:inf", "exp:NaN", "weibull:1", "weibull:0,1",
		"gamma:5", ":", "exp:1e309", "weibull:1,,2", " exp:5 ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDist(s)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ParseDist(%q) accepted an invalid dist %+v: %v", s, d, verr)
		}
	})
}

// FuzzParseRetry: same contract for retry-policy specs.
func FuzzParseRetry(f *testing.F) {
	for _, s := range []string{
		"", "none", "immediate", "immediate:3", "backoff:10,300",
		"backoff:10,300,5", "backoff:10", "backoff:0,1", "backoff:2,1",
		"immediate:-1", "none:1", "bogus", ":", "backoff:1e308,1e309",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRetry(s)
		if err != nil {
			return
		}
		if verr := r.Validate(); verr != nil {
			t.Fatalf("ParseRetry(%q) accepted an invalid policy %+v: %v", s, r, verr)
		}
	})
}
