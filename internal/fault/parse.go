package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseDist parses a CLI lifetime-distribution spec:
//
//	""                    disabled
//	"MEAN"                exponential with the given mean (seconds)
//	"exp:MEAN"            exponential
//	"weibull:MEAN,SHAPE"  Weibull with mean and shape
//
// Means and shapes must be positive finite numbers.
func ParseDist(s string) (Dist, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Dist{}, nil
	}
	family, arg := "exp", s
	if i := strings.IndexByte(s, ':'); i >= 0 {
		family, arg = s[:i], s[i+1:]
	}
	switch family {
	case "exp":
		mean, err := parsePositive(arg, "mean")
		if err != nil {
			return Dist{}, err
		}
		return Dist{Kind: DistExponential, Mean: mean}, nil
	case "weibull":
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			return Dist{}, fmt.Errorf("fault: weibull spec wants MEAN,SHAPE, got %q", arg)
		}
		mean, err := parsePositive(parts[0], "mean")
		if err != nil {
			return Dist{}, err
		}
		shape, err := parsePositive(parts[1], "shape")
		if err != nil {
			return Dist{}, err
		}
		return Dist{Kind: DistWeibull, Mean: mean, Shape: shape}, nil
	}
	return Dist{}, fmt.Errorf("fault: unknown distribution family %q (want exp or weibull)", family)
}

// ParseRetry parses a CLI retry-policy spec:
//
//	"none"                 killed jobs are given up immediately
//	"immediate"            resubmit at the kill instant, unlimited
//	"immediate:N"          resubmit, give up after N kills
//	"backoff:BASE,CAP"     capped exponential backoff, unlimited
//	"backoff:BASE,CAP,N"   backoff, give up after N kills
//
// The empty string parses as "immediate".
func ParseRetry(s string) (Retry, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Retry{Kind: RetryImmediate}, nil
	}
	kind, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		kind, arg = s[:i], s[i+1:]
	}
	switch kind {
	case "none":
		if arg != "" {
			return Retry{}, fmt.Errorf("fault: retry policy none takes no arguments, got %q", arg)
		}
		return Retry{Kind: RetryNone}, nil
	case "immediate":
		r := Retry{Kind: RetryImmediate}
		if arg != "" {
			n, err := parseAttempts(arg)
			if err != nil {
				return Retry{}, err
			}
			r.MaxAttempts = n
		}
		return r, nil
	case "backoff":
		parts := strings.Split(arg, ",")
		if len(parts) != 2 && len(parts) != 3 {
			return Retry{}, fmt.Errorf("fault: backoff spec wants BASE,CAP[,N], got %q", arg)
		}
		base, err := parsePositive(parts[0], "backoff base")
		if err != nil {
			return Retry{}, err
		}
		cap, err := parsePositive(parts[1], "backoff cap")
		if err != nil {
			return Retry{}, err
		}
		r := Retry{Kind: RetryBackoff, Base: base, Cap: cap}
		if len(parts) == 3 {
			n, err := parseAttempts(parts[2])
			if err != nil {
				return Retry{}, err
			}
			r.MaxAttempts = n
		}
		if err := r.Validate(); err != nil {
			return Retry{}, err
		}
		return r, nil
	}
	return Retry{}, fmt.Errorf("fault: unknown retry policy %q (want none, immediate[:N] or backoff:BASE,CAP[,N])", kind)
}

// parsePositive parses a strictly positive finite float.
func parsePositive(s, what string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return 0, fmt.Errorf("fault: %s must be a positive finite number, got %q", what, s)
	}
	return v, nil
}

// parseAttempts parses a positive attempt bound.
func parseAttempts(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 1 {
		return 0, fmt.Errorf("fault: attempt bound must be a positive integer, got %q", s)
	}
	return n, nil
}
