// Package fault generates deterministic node failure/repair event
// streams and the retry policies that govern what happens to jobs
// killed by a failure. Random failures draw per-node MTBF/MTTR clocks
// from splitmix64 streams derived only from (seed, node id), so a
// schedule is a pure function of the configuration — bit-reproducible
// at any simulation worker count — and scripted drain/undrain events
// can be merged into the same totally-ordered stream for maintenance
// scenarios.
package fault

import (
	"fmt"
	"math"
)

// Kind labels a fault event.
type Kind uint8

const (
	// NodeDown marks a hard failure: any job occupying the node is
	// killed and the node becomes unavailable until NodeUp.
	NodeDown Kind = iota
	// NodeUp repairs a failed node.
	NodeUp
	// NodeDrain marks a graceful drain: running jobs finish, but no
	// new job may be placed on the node until NodeUndrain.
	NodeDrain
	// NodeUndrain returns a drained node to service.
	NodeUndrain
)

// String returns the event kind's scripted-schedule spelling.
func (k Kind) String() string {
	switch k {
	case NodeDown:
		return "down"
	case NodeUp:
		return "up"
	case NodeDrain:
		return "drain"
	case NodeUndrain:
		return "undrain"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one node state transition at simulated time T.
type Event struct {
	T    float64
	Node int
	Kind Kind
}

// DistKind selects a lifetime distribution family.
type DistKind uint8

const (
	// DistNone disables the clock (no random events).
	DistNone DistKind = iota
	// DistExponential draws exponential lifetimes with the given mean
	// (the memoryless MTBF/MTTR model).
	DistExponential
	// DistWeibull draws Weibull lifetimes with the given mean and
	// shape; shape < 1 models infant-mortality failure clustering,
	// shape > 1 wear-out.
	DistWeibull
)

// Dist describes a node lifetime distribution: the family, the mean in
// simulated seconds, and (Weibull only) the shape parameter.
type Dist struct {
	Kind  DistKind
	Mean  float64
	Shape float64
}

// Enabled reports whether the distribution generates events.
func (d Dist) Enabled() bool { return d.Kind != DistNone }

// Validate checks the parameters for the selected family.
func (d Dist) Validate() error {
	switch d.Kind {
	case DistNone:
		return nil
	case DistExponential:
		if !(d.Mean > 0) || math.IsInf(d.Mean, 0) {
			return fmt.Errorf("fault: exponential mean must be positive and finite, got %v", d.Mean)
		}
		return nil
	case DistWeibull:
		if !(d.Mean > 0) || math.IsInf(d.Mean, 0) {
			return fmt.Errorf("fault: weibull mean must be positive and finite, got %v", d.Mean)
		}
		if !(d.Shape > 0) || math.IsInf(d.Shape, 0) {
			return fmt.Errorf("fault: weibull shape must be positive and finite, got %v", d.Shape)
		}
		return nil
	}
	return fmt.Errorf("fault: unknown distribution kind %d", d.Kind)
}

// scale returns the multiplier that maps a unit-scale variate of the
// family onto the requested mean. For Weibull the unit-scale mean is
// Gamma(1 + 1/shape), so scale = mean / Gamma(1+1/shape).
func (d Dist) scale() float64 {
	switch d.Kind {
	case DistExponential:
		return d.Mean
	case DistWeibull:
		return d.Mean / math.Gamma(1+1/d.Shape)
	}
	return 0
}

// sample draws one lifetime from the distribution given a uniform
// variate u in [0,1) and the precomputed scale. Inverse-CDF sampling
// keeps the draw a pure function of u: -ln(1-u) is a unit exponential,
// and (-ln(1-u))^(1/shape) a unit-scale Weibull.
func (d Dist) sample(scale, u float64) float64 {
	e := -math.Log1p(-u) // unit exponential; Log1p keeps precision near u=0
	switch d.Kind {
	case DistExponential:
		return scale * e
	case DistWeibull:
		return scale * math.Pow(e, 1/d.Shape)
	}
	return math.Inf(1)
}

// Config describes a fault workload: the derivation seed for the
// per-node random clocks, the failure (MTBF) and repair (MTTR)
// distributions, and an optional scripted schedule of events merged
// into the random stream. The zero value disables fault injection.
type Config struct {
	// Seed derives every per-node failure clock via stats.Mix64(Seed,
	// node). Two configs with equal Seed produce identical schedules
	// regardless of how the simulation is sharded.
	Seed int64
	// MTBF is the time-to-failure distribution of a healthy node.
	// DistNone disables random failures (scripted events still fire).
	MTBF Dist
	// MTTR is the time-to-repair distribution of a failed node. If
	// disabled while MTBF is enabled, failed nodes never recover.
	MTTR Dist
	// Script holds hand-written events (typically drain/undrain
	// maintenance windows) merged into the stream in time order.
	Script []Event
	// StrictCapacity makes Engine.Submit reject jobs larger than the
	// currently *available* (non-down, non-drained) capacity rather
	// than only jobs larger than the machine.
	StrictCapacity bool
}

// Enabled reports whether the config produces any fault events.
func (c Config) Enabled() bool {
	return c.MTBF.Enabled() || len(c.Script) > 0
}

// Validate checks distributions and script entries (node bounds are
// checked against n, the machine size).
func (c Config) Validate(n int) error {
	if err := c.MTBF.Validate(); err != nil {
		return err
	}
	if err := c.MTTR.Validate(); err != nil {
		return err
	}
	if c.MTBF.Enabled() && !c.MTTR.Enabled() {
		// Permanent failures are allowed, but flag the common
		// misconfiguration of a zero-mean MTTR explicitly.
		if c.MTTR.Kind != DistNone {
			return fmt.Errorf("fault: MTTR distribution invalid")
		}
	}
	for i, ev := range c.Script {
		if ev.Node < 0 || ev.Node >= n {
			return fmt.Errorf("fault: script event %d: node %d out of range [0,%d)", i, ev.Node, n)
		}
		if ev.T < 0 || math.IsNaN(ev.T) || math.IsInf(ev.T, 0) {
			return fmt.Errorf("fault: script event %d: time %v must be finite and non-negative", i, ev.T)
		}
		if ev.Kind > NodeUndrain {
			return fmt.Errorf("fault: script event %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// RetryKind selects what happens to a job killed by a node failure.
type RetryKind uint8

const (
	// RetryImmediate requeues the job at the kill instant. It is the
	// zero value, so an unset policy restarts killed jobs — the least
	// surprising default for a fault-injected run.
	RetryImmediate RetryKind = iota
	// RetryNone gives up immediately: killed jobs are never requeued.
	RetryNone
	// RetryBackoff requeues after min(Base·2^(kills-1), Cap) seconds.
	RetryBackoff
)

// Retry is the policy applied to jobs killed by node failures.
// MaxAttempts bounds the number of restarts (0 = unlimited); a job
// killed more than MaxAttempts times is given up.
type Retry struct {
	Kind        RetryKind
	Base        float64 // backoff base delay, simulated seconds
	Cap         float64 // backoff delay ceiling, simulated seconds
	MaxAttempts int
}

// Validate checks the policy parameters.
func (r Retry) Validate() error {
	switch r.Kind {
	case RetryImmediate, RetryNone:
	case RetryBackoff:
		if !(r.Base > 0) || math.IsInf(r.Base, 0) {
			return fmt.Errorf("fault: backoff base must be positive and finite, got %v", r.Base)
		}
		if !(r.Cap >= r.Base) || math.IsInf(r.Cap, 0) {
			return fmt.Errorf("fault: backoff cap must be >= base and finite, got %v", r.Cap)
		}
	default:
		return fmt.Errorf("fault: unknown retry kind %d", r.Kind)
	}
	if r.MaxAttempts < 0 {
		return fmt.Errorf("fault: max attempts must be >= 0, got %d", r.MaxAttempts)
	}
	return nil
}

// Allow reports whether a job killed for the kills-th time (1-based)
// may be restarted.
func (r Retry) Allow(kills int) bool {
	if r.Kind == RetryNone {
		return false
	}
	return r.MaxAttempts == 0 || kills <= r.MaxAttempts
}

// Delay returns the requeue delay after the kills-th kill (1-based):
// zero for immediate resubmission, capped exponential backoff
// otherwise.
func (r Retry) Delay(kills int) float64 {
	if r.Kind != RetryBackoff {
		return 0
	}
	d := r.Base
	for i := 1; i < kills; i++ {
		d *= 2
		if d >= r.Cap {
			return r.Cap
		}
	}
	return math.Min(d, r.Cap)
}
