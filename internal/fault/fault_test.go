package fault

import (
	"math"
	"reflect"
	"testing"

	"meshalloc/internal/stats"
)

func expCfg(seed int64, mtbf, mttr float64) Config {
	return Config{
		Seed: seed,
		MTBF: Dist{Kind: DistExponential, Mean: mtbf},
		MTTR: Dist{Kind: DistExponential, Mean: mttr},
	}
}

// TestStreamDeterministic pins the core reproducibility contract: the
// schedule is a pure function of (config, n).
func TestStreamDeterministic(t *testing.T) {
	cfg := expCfg(42, 1000, 100)
	a, err := NewStream(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Schedule(20000), b.Schedule(20000)
	if len(sa) == 0 {
		t.Fatal("expected events in 20 MTBF horizons over 64 nodes")
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("same config produced different schedules: %d vs %d events", len(sa), len(sb))
	}
}

// TestStreamPerNodeIndependence: node k's events depend only on (seed,
// k), never on the machine size, because each node owns its own
// derived generator. A 4-node stream must be the node<4 projection of
// an 8-node stream.
func TestStreamPerNodeIndependence(t *testing.T) {
	cfg := expCfg(7, 500, 50)
	small, _ := NewStream(cfg, 4)
	big, _ := NewStream(cfg, 8)
	var proj []Event
	for _, ev := range big.Schedule(10000) {
		if ev.Node < 4 {
			proj = append(proj, ev)
		}
	}
	if got := small.Schedule(10000); !reflect.DeepEqual(got, proj) {
		t.Fatalf("small-machine schedule is not the projection of the large one:\n got %v\nwant %v", got, proj)
	}
}

// TestStreamAlternates: per node the event sequence strictly
// alternates down/up with increasing times.
func TestStreamAlternates(t *testing.T) {
	s, _ := NewStream(expCfg(3, 200, 40), 16)
	lastKind := make(map[int]Kind)
	lastT := make(map[int]float64)
	n := 0
	for {
		ev, ok := s.Next()
		if !ok || ev.T > 5000 {
			break
		}
		n++
		if k, seen := lastKind[ev.Node]; seen {
			if k == ev.Kind {
				t.Fatalf("node %d: consecutive %v events", ev.Node, ev.Kind)
			}
			if ev.T <= lastT[ev.Node] {
				t.Fatalf("node %d: non-increasing times %v -> %v", ev.Node, lastT[ev.Node], ev.T)
			}
		} else if ev.Kind != NodeDown {
			t.Fatalf("node %d: first event is %v, want down", ev.Node, ev.Kind)
		}
		lastKind[ev.Node] = ev.Kind
		lastT[ev.Node] = ev.T
	}
	if n < 100 {
		t.Fatalf("expected a dense schedule, got %d events", n)
	}
}

// TestStreamGlobalOrder: the merged stream is non-decreasing in time.
func TestStreamGlobalOrder(t *testing.T) {
	s, _ := NewStream(expCfg(9, 100, 10), 32)
	last := -1.0
	for i := 0; i < 2000; i++ {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if ev.T < last {
			t.Fatalf("event %d out of order: %v after %v", i, ev.T, last)
		}
		last = ev.T
	}
}

// TestStreamScript: scripted drains merge at their times; ties against
// random events resolve script-first; script-only streams terminate.
func TestStreamScript(t *testing.T) {
	script := []Event{
		{T: 50, Node: 3, Kind: NodeDrain},
		{T: 10, Node: 1, Kind: NodeDrain},
		{T: 60, Node: 3, Kind: NodeUndrain},
	}
	s, err := NewStream(Config{Script: script}, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Schedule(math.Inf(1))
	want := []Event{
		{T: 10, Node: 1, Kind: NodeDrain},
		{T: 50, Node: 3, Kind: NodeDrain},
		{T: 60, Node: 3, Kind: NodeUndrain},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("script schedule %v, want %v", got, want)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("script-only stream should be exhausted")
	}
}

// TestStreamPermanentFailures: a disabled MTTR means each node fails
// exactly once and never recovers.
func TestStreamPermanentFailures(t *testing.T) {
	cfg := Config{Seed: 5, MTBF: Dist{Kind: DistExponential, Mean: 100}}
	s, err := NewStream(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	evs := s.Schedule(math.Inf(1))
	if len(evs) != 16 {
		t.Fatalf("got %d events, want one permanent failure per node", len(evs))
	}
	seen := map[int]bool{}
	for _, ev := range evs {
		if ev.Kind != NodeDown {
			t.Fatalf("unexpected %v", ev)
		}
		if seen[ev.Node] {
			t.Fatalf("node %d failed twice without repair", ev.Node)
		}
		seen[ev.Node] = true
	}
}

// TestDistMeans: empirical lifetime means land near the configured
// mean for both families (law of large numbers sanity, not a
// distribution test).
func TestDistMeans(t *testing.T) {
	for _, d := range []Dist{
		{Kind: DistExponential, Mean: 250},
		{Kind: DistWeibull, Mean: 250, Shape: 0.7},
		{Kind: DistWeibull, Mean: 250, Shape: 2.0},
	} {
		scale := d.scale()
		rng := stats.NewSplitmix64(11)
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			sum += d.sample(scale, rng.Float64())
		}
		got := sum / n
		if math.Abs(got-d.Mean) > 0.03*d.Mean {
			t.Errorf("%+v: empirical mean %.1f, want ~%.0f", d, got, d.Mean)
		}
	}
}

// TestRetryPolicy pins Allow/Delay semantics.
func TestRetryPolicy(t *testing.T) {
	none := Retry{Kind: RetryNone}
	if none.Allow(1) {
		t.Error("none must not retry")
	}
	imm := Retry{Kind: RetryImmediate, MaxAttempts: 2}
	if !imm.Allow(1) || !imm.Allow(2) || imm.Allow(3) {
		t.Error("immediate:2 must allow exactly 2 restarts")
	}
	if d := imm.Delay(1); d != 0 {
		t.Errorf("immediate delay = %v, want 0", d)
	}
	bo := Retry{Kind: RetryBackoff, Base: 10, Cap: 55}
	wants := []float64{10, 20, 40, 55, 55}
	for i, want := range wants {
		if got := bo.Delay(i + 1); got != want {
			t.Errorf("backoff delay(%d) = %v, want %v", i+1, got, want)
		}
	}
	if !bo.Allow(1000) {
		t.Error("unlimited backoff must always allow")
	}
}

func TestParseDist(t *testing.T) {
	cases := []struct {
		in   string
		want Dist
	}{
		{"", Dist{}},
		{"3600", Dist{Kind: DistExponential, Mean: 3600}},
		{"exp:250.5", Dist{Kind: DistExponential, Mean: 250.5}},
		{"weibull:100,0.7", Dist{Kind: DistWeibull, Mean: 100, Shape: 0.7}},
	}
	for _, c := range cases {
		got, err := ParseDist(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDist(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"-1", "0", "exp:", "exp:abc", "exp:inf", "exp:nan", "weibull:100", "weibull:100,0", "gamma:5", "weibull:1,2,3"} {
		if d, err := ParseDist(bad); err == nil {
			t.Errorf("ParseDist(%q) = %+v, want error", bad, d)
		}
	}
}

func TestParseRetry(t *testing.T) {
	cases := []struct {
		in   string
		want Retry
	}{
		{"", Retry{Kind: RetryImmediate}},
		{"none", Retry{Kind: RetryNone}},
		{"immediate", Retry{Kind: RetryImmediate}},
		{"immediate:3", Retry{Kind: RetryImmediate, MaxAttempts: 3}},
		{"backoff:10,300", Retry{Kind: RetryBackoff, Base: 10, Cap: 300}},
		{"backoff:10,300,5", Retry{Kind: RetryBackoff, Base: 10, Cap: 300, MaxAttempts: 5}},
	}
	for _, c := range cases {
		got, err := ParseRetry(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseRetry(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"bogus", "none:1", "immediate:0", "immediate:x", "backoff:10", "backoff:0,5", "backoff:10,5", "backoff:1,2,0", "backoff:1,2,3,4"} {
		if r, err := ParseRetry(bad); err == nil {
			t.Errorf("ParseRetry(%q) = %+v, want error", bad, r)
		}
	}
}
