package fault

import (
	"fmt"
	"sort"

	"meshalloc/internal/stats"
)

// Stream merges the per-node random failure/repair clocks and the
// scripted schedule into one totally-ordered event sequence. Each node
// owns an independent splitmix64 generator seeded stats.Mix64(seed,
// node) and alternates MTBF and MTTR draws lazily, so minting a stream
// for a million-node machine costs one small struct per node and no
// draws until events are consumed. The merge order is (T, scripted
// before random, node id) — a pure function of the Config, never of
// goroutine scheduling.
type Stream struct {
	cfg       Config
	mtbfScale float64
	mttrScale float64

	// clocks is a binary min-heap of per-node next events.
	clocks []clock
	// script is the sorted scripted schedule; scriptAt indexes the
	// next unconsumed entry.
	script   []Event
	scriptAt int
}

// clock is one node's pending random event.
type clock struct {
	t    float64
	node int
	down bool // next transition: true = failure, false = repair
	rng  stats.Splitmix64
}

// NewStream builds the event stream for an n-node machine. It returns
// an error if the config fails validation.
func NewStream(cfg Config, n int) (*Stream, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	s := &Stream{
		cfg:       cfg,
		mtbfScale: cfg.MTBF.scale(),
		mttrScale: cfg.MTTR.scale(),
	}
	if len(cfg.Script) > 0 {
		s.script = append([]Event(nil), cfg.Script...)
		sort.SliceStable(s.script, func(i, j int) bool {
			a, b := s.script[i], s.script[j]
			if a.T != b.T {
				return a.T < b.T
			}
			return a.Node < b.Node
		})
	}
	if cfg.MTBF.Enabled() {
		s.clocks = make([]clock, 0, n)
		for node := 0; node < n; node++ {
			c := clock{node: node, down: true, rng: *stats.NewSplitmix64(stats.Mix64(cfg.Seed, node))}
			c.t = cfg.MTBF.sample(s.mtbfScale, c.rng.Float64())
			s.clocks = append(s.clocks, c)
		}
		// Heapify: sift down from the last parent.
		for i := len(s.clocks)/2 - 1; i >= 0; i-- {
			s.siftDown(i)
		}
	}
	return s, nil
}

// clockLess orders heap entries by (t, node); node breaks ties so the
// pop order is deterministic even when two clocks collide exactly.
func (s *Stream) clockLess(i, j int) bool {
	a, b := &s.clocks[i], &s.clocks[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.node < b.node
}

func (s *Stream) siftDown(i int) {
	n := len(s.clocks)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.clockLess(l, m) {
			m = l
		}
		if r < n && s.clockLess(r, m) {
			m = r
		}
		if m == i {
			return
		}
		s.clocks[i], s.clocks[m] = s.clocks[m], s.clocks[i]
		i = m
	}
}

// Peek returns the next event without consuming it, or ok=false when
// the stream is exhausted (possible only for script-only streams or
// permanent failures that have all fired).
func (s *Stream) Peek() (Event, bool) {
	hasScript := s.scriptAt < len(s.script)
	hasClock := len(s.clocks) > 0
	if !hasScript && !hasClock {
		return Event{}, false
	}
	if hasScript && (!hasClock || s.script[s.scriptAt].T <= s.clocks[0].t) {
		// Scripted events win exact-time ties against random clocks:
		// maintenance windows are stated intent, failures are noise.
		return s.script[s.scriptAt], true
	}
	c := &s.clocks[0]
	kind := NodeUp
	if c.down {
		kind = NodeDown
	}
	return Event{T: c.t, Node: c.node, Kind: kind}, true
}

// Next consumes and returns the next event.
func (s *Stream) Next() (Event, bool) {
	ev, ok := s.Peek()
	if !ok {
		return Event{}, false
	}
	if s.scriptAt < len(s.script) && ev == s.script[s.scriptAt] {
		s.scriptAt++
		return ev, true
	}
	// Advance the popped node's clock to its next transition. A
	// disabled MTTR leaves the node down forever: drop the clock.
	c := &s.clocks[0]
	c.down = !c.down
	if !c.down && !s.cfg.MTTR.Enabled() {
		last := len(s.clocks) - 1
		s.clocks[0] = s.clocks[last]
		s.clocks = s.clocks[:last]
	} else {
		if c.down {
			c.t += s.cfg.MTBF.sample(s.mtbfScale, c.rng.Float64())
		} else {
			c.t += s.cfg.MTTR.sample(s.mttrScale, c.rng.Float64())
		}
	}
	if len(s.clocks) > 0 {
		s.siftDown(0)
	}
	return ev, true
}

// ClockState is the serializable state of one node's failure clock.
type ClockState struct {
	T    float64
	Node int
	Down bool
	RNG  uint64 // splitmix64 counter state
}

// State is the serializable state of a Stream: the clock heap verbatim
// (heap-array order, so restoring preserves the heap property without
// re-heapifying) plus the scripted-schedule cursor. The script itself
// is a pure function of the Config and is rebuilt by NewStream.
type State struct {
	Clocks   []ClockState
	ScriptAt int
}

// State captures the stream for a snapshot.
func (s *Stream) State() State {
	st := State{ScriptAt: s.scriptAt}
	st.Clocks = make([]ClockState, len(s.clocks))
	for i, c := range s.clocks {
		st.Clocks[i] = ClockState{T: c.t, Node: c.node, Down: c.down, RNG: c.rng.State()}
	}
	return st
}

// SetState restores a state previously captured from a Stream built
// with the same Config. It errors on out-of-range values rather than
// installing inconsistent state.
func (s *Stream) SetState(st State) error {
	if st.ScriptAt < 0 || st.ScriptAt > len(s.script) {
		return fmt.Errorf("fault: script cursor %d outside [0, %d]", st.ScriptAt, len(s.script))
	}
	// Clocks only ever shrink (permanent failures drop them), so a
	// snapshot can never hold more clocks than the stream minted.
	if len(st.Clocks) > cap(s.clocks) {
		return fmt.Errorf("fault: %d clocks exceed the stream's %d", len(st.Clocks), cap(s.clocks))
	}
	s.clocks = s.clocks[:0]
	for _, c := range st.Clocks {
		var rng stats.Splitmix64
		rng.SetState(c.RNG)
		s.clocks = append(s.clocks, clock{t: c.T, node: c.Node, down: c.Down, rng: rng})
	}
	s.scriptAt = st.ScriptAt
	return nil
}

// Schedule materializes every event with T < horizon, mainly for tests
// and schedule dumps. The stream is consumed.
func (s *Stream) Schedule(horizon float64) []Event {
	var out []Event
	for {
		ev, ok := s.Peek()
		if !ok || ev.T >= horizon {
			return out
		}
		s.Next()
		out = append(out, ev)
	}
}

// String summarizes the stream configuration.
func (s *Stream) String() string {
	return fmt.Sprintf("fault.Stream{mtbf=%v mttr=%v script=%d}", s.cfg.MTBF, s.cfg.MTTR, len(s.script))
}
