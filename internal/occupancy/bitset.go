package occupancy

import "math/bits"

// Bitset is a word-parallel free-map: one bit per node (or per rank in a
// curve order), packed little-endian into []uint64 words. Callers decide the
// polarity; the allocators in internal/alloc and internal/binpack keep a set
// bit per FREE slot so candidate enumeration can skip busy regions 64 nodes
// per instruction with OnesCount64/TrailingZeros64 word scans.
//
// Pad bits past Len() in the last word are always zero. Every mutator
// preserves that invariant, so run scans can never extend past the end and
// Count never over-counts.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an all-clear Bitset of n bits.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("occupancy: negative Bitset length")
	}
	return &Bitset{words: make([]uint64, (n+63)>>6), n: n}
}

// Len reports the number of addressable bits.
func (b *Bitset) Len() int { return b.n }

// Words exposes the backing words read-only (callers must not mutate them;
// the slice is shared, not copied). Bit i of the set lives at
// Words()[i>>6] bit (i&63).
func (b *Bitset) Words() []uint64 { return b.words }

// Set sets bit i.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		panic("occupancy: Bitset index out of range")
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		panic("occupancy: Bitset index out of range")
	}
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports bit i.
func (b *Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic("occupancy: Bitset index out of range")
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// SetAll sets every addressable bit, keeping pad bits clear.
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := uint(b.n) & 63; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << r) - 1
	}
}

// ClearAll clears every bit.
func (b *Bitset) ClearAll() {
	clear(b.words)
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextSet returns the index of the first set bit at or after from, or -1 if
// none. from may be out of range; values past Len() report -1.
func (b *Bitset) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return -1
	}
	wi := from >> 6
	w := b.words[wi] & (^uint64(0) << (uint(from) & 63))
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(b.words) {
			return -1
		}
		w = b.words[wi]
	}
}

// NextClear returns the index of the first clear bit at or after from,
// clamped to Len(): if every bit in [from, Len()) is set it returns Len().
// This asymmetry with NextSet makes the run-scan idiom
//
//	for i := 0; ; { j := b.NextSet(i); if j < 0 { break }; k := b.NextClear(j); ... ; i = k }
//
// terminate cleanly at the end of the set.
func (b *Bitset) NextClear(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return b.n
	}
	wi := from >> 6
	w := ^b.words[wi] & (^uint64(0) << (uint(from) & 63))
	for {
		if w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			if i > b.n {
				return b.n
			}
			return i
		}
		wi++
		if wi >= len(b.words) {
			return b.n
		}
		w = ^b.words[wi]
	}
}

// AndShiftRight folds v &= v >> s in place across word boundaries, reading
// bits shifted in from higher words and zero past the top. It is the word-
// parallel doubling step for run detection: if bit x of v means "bits
// x..x+d-1 are all set", then after AndShiftRight(v, s) with s <= d it means
// "bits x..x+d+s-1 are all set".
func AndShiftRight(v []uint64, s int) {
	if s <= 0 {
		return
	}
	o, r := s>>6, uint(s)&63
	for i := range v {
		var w uint64
		if i+o < len(v) {
			w = v[i+o] >> r
			if r != 0 && i+o+1 < len(v) {
				w |= v[i+o+1] << (64 - r)
			}
		}
		v[i] &= w
	}
}

// RunMask writes into dst the run-start mask of src for window w: bit x of
// dst is set iff bits x..x+w-1 of src are all set (reading zero past the
// top). dst and src must have equal length; dst may alias src only if they
// are the same slice. Cost is O(len(src) * log w) via doubling.
func RunMask(dst, src []uint64, w int) {
	if len(dst) != len(src) {
		panic("occupancy: RunMask length mismatch")
	}
	if w <= 0 {
		panic("occupancy: RunMask window must be positive")
	}
	copy(dst, src)
	// Invariant: bit x of dst == "bits x..x+d-1 of src all set".
	for d := 1; d < w; {
		s := d
		if s > w-d {
			s = w - d
		}
		AndShiftRight(dst, s)
		d += s
	}
}
