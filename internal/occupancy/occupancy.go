// Package occupancy maintains incremental indexes over an allocator's
// busy bitmap so that MC-style shell scoring and Gen-Alg's nearest-free
// search can *count* candidate allocations instead of gathering them.
//
// Two structures are provided:
//
//   - Boxes answers "free processors inside this clipped axis-aligned
//     box". The general layout is an n-dimensional Fenwick
//     (binary-indexed) tree over the busy cells: O(log^d n) point
//     updates, O(2^d log^d n) box counts by inclusion–exclusion over
//     the box corners. On the 2-D and 3-D machines the experiments
//     actually run, profiling showed the Fenwick's scattered
//     log-structured reads cost almost as much as walking the shells
//     outright, so those dimensionalities keep dense slab prefixes
//     instead — per-row prefix sums in 2-D (O(n) updates, two
//     sequential reads per row of the box), per-plane summed-area
//     tables in 3-D (O(n^2) updates, four reads per plane). Queries
//     outnumber updates by the candidate count times the shell count,
//     which makes trading update cost for query cost a large net win;
//     see DESIGN.md ("The occupancy index") for the measurements.
//
//   - Balls (balls.go) answers "free processors at Manhattan distance
//     at most r", the geometry of Gen-Alg's nearest-free gather, plus
//     the per-slice cross-section counts Gen-Alg needs to reconstruct
//     exact pairwise-distance scores without touching the member
//     processors.
//
// Both indexes are pure counters: they never own the busy state, they
// mirror it. The alloc package's tracker feeds every take/release into
// them, and equivalence tests in internal/alloc pin the counted scores
// to the walked ones bit for bit.
package occupancy

import "meshalloc/internal/topo"

// Boxes is an incremental free-count index over axis-aligned boxes of
// one machine. The zero value is not usable; construct with NewBoxes.
type Boxes struct {
	g  *topo.Grid
	nd int
	n  [topo.MaxDims]int // per-axis extents
	// nd <= 2: per-row prefix sums over axis 0. rows[y*prow+x] counts
	// busy cells in row y with coordinate < x.
	rows []int
	prow int // ints per row: n[0]+1
	// nd == 3: per-plane summed-area tables. planes[z*pplane+y*prow+x]
	// counts busy cells in plane z with coordinates < (x, y).
	planes []int
	pplane int // ints per plane: (n[0]+1)*(n[1]+1)
	// nd == 4: the n-D Fenwick tree, 1-based per axis.
	tree []int
	fs   [topo.MaxDims]int // Fenwick layout strides over (n_i+1)-sized axes
}

// NewBoxes returns an empty box index over g (every processor free).
func NewBoxes(g *topo.Grid) *Boxes {
	b := &Boxes{g: g, nd: g.ND()}
	for i := 0; i < b.nd; i++ {
		b.n[i] = g.Dim(i)
	}
	for i := b.nd; i < topo.MaxDims; i++ {
		b.n[i] = 1
	}
	b.prow = b.n[0] + 1
	switch {
	case b.nd <= 2:
		b.rows = make([]int, b.n[1]*b.prow)
	case b.nd == 3:
		b.pplane = b.prow * (b.n[1] + 1)
		b.planes = make([]int, b.n[2]*b.pplane)
	default:
		sz := 1
		for i := 0; i < b.nd; i++ {
			b.fs[i] = sz
			sz *= b.n[i] + 1
		}
		b.tree = make([]int, sz)
	}
	return b
}

// Take marks one processor busy.
func (b *Boxes) Take(id int) { b.add(b.g.Coord(id), 1) }

// Release marks one processor free.
func (b *Boxes) Release(id int) { b.add(b.g.Coord(id), -1) }

// Reset marks every processor free.
func (b *Boxes) Reset() {
	clear(b.rows)
	clear(b.planes)
	clear(b.tree)
}

// add applies a +-1 point update at p.
func (b *Boxes) add(p topo.Point, d int) {
	switch {
	case b.nd <= 2:
		row := b.rows[p[1]*b.prow:]
		for i := p[0] + 1; i < b.prow; i++ {
			row[i] += d
		}
	case b.nd == 3:
		plane := b.planes[p[2]*b.pplane:]
		for j := p[1] + 1; j <= b.n[1]; j++ {
			row := plane[j*b.prow:]
			for i := p[0] + 1; i < b.prow; i++ {
				row[i] += d
			}
		}
	default:
		b.addFenwick(p, d)
	}
}

// BusyIn returns the number of busy processors in the half-open box
// [lo, hi), which must already be clipped to the grid (topo.GrownBounds
// produces exactly this form).
func (b *Boxes) BusyIn(lo, hi topo.Point) int {
	s := 0
	switch {
	case b.nd <= 2:
		x0, x1 := lo[0], hi[0]
		for base := lo[1] * b.prow; base < hi[1]*b.prow; base += b.prow {
			s += b.rows[base+x1] - b.rows[base+x0]
		}
	case b.nd == 3:
		a := hi[1]*b.prow + hi[0]
		c := lo[1]*b.prow + hi[0]
		d := hi[1]*b.prow + lo[0]
		e := lo[1]*b.prow + lo[0]
		for base := lo[2] * b.pplane; base < hi[2]*b.pplane; base += b.pplane {
			s += b.planes[base+a] - b.planes[base+c] - b.planes[base+d] + b.planes[base+e]
		}
	default:
		// Inclusion–exclusion over the 2^d box corners.
		for mask := 0; mask < 1<<b.nd; mask++ {
			var q topo.Point
			sign := 1
			for i := 0; i < b.nd; i++ {
				if mask&(1<<i) != 0 {
					q[i] = lo[i]
					sign = -sign
				} else {
					q[i] = hi[i]
				}
			}
			s += sign * b.prefixFenwick(q)
		}
	}
	return s
}

// FreeIn returns the number of free processors in the half-open clipped
// box [lo, hi): the clipped volume minus the busy count.
func (b *Boxes) FreeIn(lo, hi topo.Point) int {
	return topo.BoxVolume(lo, hi) - b.BusyIn(lo, hi)
}

// addFenwick is the general-dimensional point update: O(log^d n).
func (b *Boxes) addFenwick(p topo.Point, d int) {
	t, f1, f2, f3 := b.tree, b.fs[1], b.fs[2], b.fs[3]
	for i := p[0] + 1; i <= b.n[0]; i += i & -i {
		for j := p[1] + 1; j <= b.n[1]; j += j & -j {
			for k := p[2] + 1; k <= b.n[2]; k += k & -k {
				row := i + j*f1 + k*f2
				for l := p[3] + 1; l <= b.n[3]; l += l & -l {
					t[row+l*f3] += d
				}
			}
		}
	}
}

// prefixFenwick returns the busy count below q per axis: O(log^d n).
func (b *Boxes) prefixFenwick(q topo.Point) int {
	t, f1, f2, f3, s := b.tree, b.fs[1], b.fs[2], b.fs[3], 0
	q3 := q[3]
	for i := q[0]; i > 0; i -= i & -i {
		for j := q[1]; j > 0; j -= j & -j {
			for k := q[2]; k > 0; k -= k & -k {
				row := i + j*f1 + k*f2
				for l := q3; l > 0; l -= l & -l {
					s += t[row+l*f3]
				}
			}
		}
	}
	return s
}
