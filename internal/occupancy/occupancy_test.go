package occupancy

import (
	"math/rand"
	"testing"

	"meshalloc/internal/topo"
)

// busyModel is the brute-force mirror the indexes are tested against.
type busyModel struct {
	g    *topo.Grid
	busy []bool
}

func newModel(g *topo.Grid) *busyModel {
	return &busyModel{g: g, busy: make([]bool, g.Size())}
}

func (m *busyModel) freeInBox(lo, hi topo.Point) int {
	n := 0
	for id := 0; id < m.g.Size(); id++ {
		p := m.g.Coord(id)
		in := true
		for i := 0; i < topo.MaxDims; i++ {
			if p[i] < lo[i] || p[i] >= hi[i] {
				in = false
				break
			}
		}
		if in && !m.busy[id] {
			n++
		}
	}
	return n
}

func (m *busyModel) freeInBall(c topo.Point, r int) int {
	n := 0
	for id := 0; id < m.g.Size(); id++ {
		if !m.busy[id] && m.g.Coord(id).Manhattan(c) <= r {
			n++
		}
	}
	return n
}

func (m *busyModel) sliceFree(axis, v int, c topo.Point, rad int) int {
	n := 0
	for id := 0; id < m.g.Size(); id++ {
		p := m.g.Coord(id)
		if m.busy[id] || p[axis] != v {
			continue
		}
		d := 0
		for i := 0; i < m.g.ND(); i++ {
			if i == axis {
				continue
			}
			dd := p[i] - c[i]
			if dd < 0 {
				dd = -dd
			}
			d += dd
		}
		if d <= rad {
			n++
		}
	}
	return n
}

// toggleRandom flips a random cell's busy state across model and both
// indexes, keeping the three views in lockstep.
func toggleRandom(rng *rand.Rand, m *busyModel, boxes *Boxes, balls *Balls) {
	id := rng.Intn(m.g.Size())
	if m.busy[id] {
		m.busy[id] = false
		boxes.Release(id)
		if balls != nil {
			balls.Release(id)
		}
	} else {
		m.busy[id] = true
		boxes.Take(id)
		if balls != nil {
			balls.Take(id)
		}
	}
}

func TestBoxesMatchesBruteForce(t *testing.T) {
	for _, dims := range [][]int{{7}, {6, 9}, {16, 22}, {5, 4, 6}, {3, 4, 2, 3}} {
		g := topo.New(dims)
		m := newModel(g)
		boxes := NewBoxes(g)
		rng := rand.New(rand.NewSource(1))
		for step := 0; step < 200; step++ {
			toggleRandom(rng, m, boxes, nil)
			// Random clipped boxes, including degenerate and full-grid.
			var lo, hi topo.Point
			for i := 0; i < topo.MaxDims; i++ {
				lo[i], hi[i] = 0, 1
			}
			for i := 0; i < g.ND(); i++ {
				a, b := rng.Intn(g.Dim(i)+1), rng.Intn(g.Dim(i)+1)
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = a, b
			}
			want := m.freeInBox(lo, hi)
			if got := boxes.FreeIn(lo, hi); got != want {
				t.Fatalf("dims %v step %d: FreeIn(%v, %v) = %d, want %d",
					dims, step, lo, hi, got, want)
			}
		}
	}
}

func TestBoxesShellCountsMatchShellWalk(t *testing.T) {
	// The box index's raison d'etre: free counts per MC shell must agree
	// with the walked shells, clipping included.
	for _, dims := range [][]int{{9, 7}, {8, 8, 8}} {
		g := topo.New(dims)
		m := newModel(g)
		boxes := NewBoxes(g)
		rng := rand.New(rand.NewSource(2))
		for step := 0; step < 60; step++ {
			toggleRandom(rng, m, boxes, nil)
			var c, ext topo.Point
			for i := 0; i < topo.MaxDims; i++ {
				ext[i] = 1
			}
			for i := 0; i < g.ND(); i++ {
				c[i] = rng.Intn(g.Dim(i))
				ext[i] = 1 + rng.Intn(4)
			}
			prev := 0
			for k := 0; k <= g.MaxShells(); k++ {
				walked := 0
				g.ShellEach(c, ext, k, func(id int) bool {
					if !m.busy[id] {
						walked++
					}
					return true
				})
				lo, hi, ok := g.GrownBounds(c, ext, k)
				if !ok {
					t.Fatalf("dims %v: GrownBounds empty for on-grid center", dims)
				}
				cur := boxes.FreeIn(lo, hi)
				if cur-prev != walked {
					t.Fatalf("dims %v c %v ext %v shell %d: counted %d, walked %d",
						dims, c, ext, k, cur-prev, walked)
				}
				prev = cur
			}
		}
	}
}

func TestBallsMatchesBruteForce(t *testing.T) {
	for _, dims := range [][]int{{6, 9}, {16, 22}, {5, 4, 6}, {8, 8, 8}} {
		g := topo.New(dims)
		m := newModel(g)
		boxes := NewBoxes(g)
		balls := NewBalls(g)
		if balls == nil {
			t.Fatalf("dims %v: NewBalls returned nil", dims)
		}
		maxR := 0
		for i := 0; i < g.ND(); i++ {
			maxR += g.Dim(i)
		}
		rng := rand.New(rand.NewSource(3))
		for step := 0; step < 120; step++ {
			toggleRandom(rng, m, boxes, balls)
			var c topo.Point
			for i := 0; i < g.ND(); i++ {
				c[i] = rng.Intn(g.Dim(i))
			}
			r := rng.Intn(maxR+2) - 1 // includes -1 and beyond-grid radii
			if got, want := balls.FreeInBall(c, r), m.freeInBall(c, r); got != want {
				t.Fatalf("dims %v step %d: FreeInBall(%v, %d) = %d, want %d",
					dims, step, c, r, got, want)
			}
			axis := rng.Intn(g.ND())
			v := rng.Intn(g.Dim(axis)+2) - 1
			rad := rng.Intn(maxR+2) - 1
			got := balls.SliceFree(axis, v, c, rad)
			want := 0
			if v >= 0 && v < g.Dim(axis) && rad >= 0 {
				want = m.sliceFree(axis, v, c, rad)
			}
			if got != want {
				t.Fatalf("dims %v step %d: SliceFree(%d, %d, %v, %d) = %d, want %d",
					dims, step, axis, v, c, rad, got, want)
			}
		}
	}
}

func TestBallsUnsupportedDimensions(t *testing.T) {
	if b := NewBalls(topo.New([]int{9})); b != nil {
		t.Error("1-D grid should not build a ball index")
	}
	if b := NewBalls(topo.New([]int{3, 3, 3, 3})); b != nil {
		t.Error("4-D grid should not build a ball index")
	}
}

func TestResetClearsCounts(t *testing.T) {
	g := topo.New([]int{6, 5, 4})
	boxes := NewBoxes(g)
	balls := NewBalls(g)
	for id := 0; id < g.Size(); id += 3 {
		boxes.Take(id)
		balls.Take(id)
	}
	boxes.Reset()
	balls.Reset()
	lo, hi, _ := g.GrownBounds(topo.XYZ(3, 2, 2), topo.XYZ(1, 1, 1), g.MaxShells())
	if got := boxes.FreeIn(lo, hi); got != g.Size() {
		t.Errorf("boxes after Reset: FreeIn(all) = %d, want %d", got, g.Size())
	}
	if got := balls.FreeInBall(topo.XYZ(3, 2, 2), 100); got != g.Size() {
		t.Errorf("balls after Reset: FreeInBall(all) = %d, want %d", got, g.Size())
	}
}
