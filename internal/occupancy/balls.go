package occupancy

import "meshalloc/internal/topo"

// Balls counts free processors in clipped Manhattan balls — the
// geometry of Gen-Alg's nearest-free gather. Torus wraparound is
// deliberately ignored, exactly as topo's rings ignore it.
//
// The machinery is one family of per-slice counters per axis: family a
// slices the grid at each coordinate of axis a and indexes the busy
// cells of that slice by the remaining axes. A ball cross-section
// restricted to a slice is an L1 ball of the remaining dimensionality —
// an interval on 2-D grids, a diamond on 3-D grids. Intervals are
// counted by a dense prefix sum per slice (two reads); diamonds become
// axis-aligned boxes under the 45-degree rotation (u, v) = (p+q, p-q),
// so each 3-D slice keeps a dense summed-area table over rotated
// coordinates (four reads) plus a family-wide static prefix table
// counting which rotated points are real cells (the rotated lattice has
// parity holes and machine-edge clips). As with Boxes, dense prefixes
// beat log-structured trees here because Gen-Alg issues hundreds of
// counts per allocation but only tens of updates.
//
// Only 2-D and 3-D grids are supported — NewBalls returns nil
// otherwise, and callers fall back to walking.
type Balls struct {
	g    *topo.Grid
	nd   int
	dim  [topo.MaxDims]int
	fams [3]fam
}

// fam is the per-slice counter family for one slicing axis.
type fam struct {
	p, q     int // remaining axes, ascending; q == -1 on 2-D grids
	np, nq   int
	s        int   // rotated extent np+nq-1 (3-D families only)
	planeLen int   // ints per slice in pref
	pref     []int // dense per-slice prefix sums over the remaining axes
	cells    []int // (s+1)^2 static prefix of real rotated cells, 3-D only
}

// NewBalls returns an empty ball index over g (every processor free),
// or nil when the grid's dimensionality is not 2 or 3.
func NewBalls(g *topo.Grid) *Balls {
	nd := g.ND()
	if nd != 2 && nd != 3 {
		return nil
	}
	b := &Balls{g: g, nd: nd}
	for i := 0; i < nd; i++ {
		b.dim[i] = g.Dim(i)
	}
	for a := 0; a < nd; a++ {
		f := &b.fams[a]
		f.p, f.q = -1, -1
		for i := 0; i < nd; i++ {
			if i == a {
				continue
			}
			if f.p < 0 {
				f.p = i
			} else {
				f.q = i
			}
		}
		f.np = b.dim[f.p]
		if nd == 2 {
			// pref[v*planeLen+i] counts busy cells of slice v with
			// remaining coordinate < i.
			f.planeLen = f.np + 1
			f.pref = make([]int, b.dim[a]*f.planeLen)
			continue
		}
		f.nq = b.dim[f.q]
		f.s = f.np + f.nq - 1
		// pref[v*planeLen+u*(s+1)+w] counts busy cells of slice v with
		// rotated coordinates below (u, w).
		f.planeLen = (f.s + 1) * (f.s + 1)
		f.pref = make([]int, b.dim[a]*f.planeLen)
		// Static rotated-cell prefix table, shared by every slice of the
		// family: cells[u*(s+1)+v] counts real cells with rotated
		// coordinates below (u, v).
		f.cells = make([]int, (f.s+1)*(f.s+1))
		w := f.s + 1
		for p := 0; p < f.np; p++ {
			for q := 0; q < f.nq; q++ {
				u, v := p+q, p-q+f.nq-1
				f.cells[(u+1)*w+v+1]++
			}
		}
		for u := 0; u <= f.s; u++ {
			for v := 0; v <= f.s; v++ {
				i := u*w + v
				if v > 0 {
					f.cells[i] += f.cells[i-1]
				}
				if u > 0 {
					f.cells[i] += f.cells[i-w]
					if v > 0 {
						f.cells[i] -= f.cells[i-w-1]
					}
				}
			}
		}
	}
	return b
}

// Take marks one processor busy.
func (b *Balls) Take(id int) { b.add(b.g.Coord(id), 1) }

// Release marks one processor free.
func (b *Balls) Release(id int) { b.add(b.g.Coord(id), -1) }

// Reset marks every processor free.
func (b *Balls) Reset() {
	for a := 0; a < b.nd; a++ {
		clear(b.fams[a].pref)
	}
}

func (b *Balls) add(p topo.Point, d int) {
	for a := 0; a < b.nd; a++ {
		f := &b.fams[a]
		slice := f.pref[p[a]*f.planeLen:]
		if b.nd == 2 {
			for i := p[f.p] + 1; i < f.planeLen; i++ {
				slice[i] += d
			}
			continue
		}
		u, v := p[f.p]+p[f.q], p[f.p]-p[f.q]+f.nq-1
		w := f.s + 1
		for i := u + 1; i <= f.s; i++ {
			row := slice[i*w:]
			for j := v + 1; j <= f.s; j++ {
				row[j] += d
			}
		}
	}
}

// SliceFree returns the number of free processors in the cross-section
// of the Manhattan ball of radius rad around c with the slice
// axis = v: the cells x with x[axis] == v and the distance over the
// remaining axes at most rad, clipped to the grid. A negative rad or an
// off-grid slice counts zero.
func (b *Balls) SliceFree(axis, v int, c topo.Point, rad int) int {
	if rad < 0 || v < 0 || v >= b.dim[axis] {
		return 0
	}
	f := &b.fams[axis]
	if b.nd == 2 {
		lo := max(c[f.p]-rad, 0)
		hi := min(c[f.p]+rad+1, f.np)
		if lo >= hi {
			return 0
		}
		slice := f.pref[v*f.planeLen:]
		return hi - lo - (slice[hi] - slice[lo])
	}
	return b.sliceFree3(f, v, c, rad)
}

// sliceFree3 counts the free cells of a rotated clipped diamond: real
// cells from the static table minus busy cells from the slice's
// summed-area prefix.
func (b *Balls) sliceFree3(f *fam, v int, c topo.Point, rad int) int {
	u0, v0 := c[f.p]+c[f.q], c[f.p]-c[f.q]+f.nq-1
	ulo, uhi := max(u0-rad, 0), min(u0+rad+1, f.s)
	vlo, vhi := max(v0-rad, 0), min(v0+rad+1, f.s)
	if ulo >= uhi || vlo >= vhi {
		return 0
	}
	w := f.s + 1
	a, bb, cc, dd := uhi*w+vhi, ulo*w+vhi, uhi*w+vlo, ulo*w+vlo
	cells := f.cells[a] - f.cells[bb] - f.cells[cc] + f.cells[dd]
	slice := f.pref[v*f.planeLen:]
	busy := slice[a] - slice[bb] - slice[cc] + slice[dd]
	return cells - busy
}

// FreeInBall returns the number of free processors at Manhattan
// distance at most r from c, clipped at machine edges. A negative r
// counts zero.
func (b *Balls) FreeInBall(c topo.Point, r int) int {
	cur, _ := b.FreeInBall2(c, r)
	return cur
}

// FreeInBall2 returns the free counts of the balls of radius r and
// r-1 around c in one pass over the slices — the pair every
// ball-radius cutoff test needs. The per-dimensionality loops are
// fused: Gen-Alg calls this for every candidate center, so the
// per-slice work must be a handful of reads, not a method call.
func (b *Balls) FreeInBall2(c topo.Point, r int) (cur, prev int) {
	if r < 0 {
		return 0, 0
	}
	if b.nd == 2 {
		f := &b.fams[1]
		cx, cy := c[0], c[1]
		for v, ve := max(cy-r, 0), min(cy+r, b.dim[1]-1); v <= ve; v++ {
			rad := r - abs(v-cy)
			lo, hi := max(cx-rad, 0), min(cx+rad+1, f.np)
			if lo >= hi {
				continue
			}
			row := f.pref[v*f.planeLen:]
			cur += hi - lo - (row[hi] - row[lo])
			if rad > 0 {
				lo1, hi1 := max(cx-rad+1, 0), min(cx+rad, f.np)
				if lo1 < hi1 {
					prev += hi1 - lo1 - (row[hi1] - row[lo1])
				}
			}
		}
		return cur, prev
	}
	f := &b.fams[2]
	u0, v0 := c[f.p]+c[f.q], c[f.p]-c[f.q]+f.nq-1
	cz := c[2]
	for z, ze := max(cz-r, 0), min(cz+r, b.dim[2]-1); z <= ze; z++ {
		rad := r - abs(z-cz)
		slice := f.pref[z*f.planeLen:]
		cur += diamondFree(f, slice, u0, v0, rad)
		if rad > 0 {
			prev += diamondFree(f, slice, u0, v0, rad-1)
		}
	}
	return cur, prev
}

// diamondFree counts the free cells of one rotated clipped diamond of
// radius rad in a 3-D family slice.
func diamondFree(f *fam, slice []int, u0, v0, rad int) int {
	ulo, uhi := max(u0-rad, 0), min(u0+rad+1, f.s)
	vlo, vhi := max(v0-rad, 0), min(v0+rad+1, f.s)
	if ulo >= uhi || vlo >= vhi {
		return 0
	}
	w := f.s + 1
	a, b, c, d := uhi*w+vhi, ulo*w+vhi, uhi*w+vlo, ulo*w+vlo
	return f.cells[a] - f.cells[b] - f.cells[c] + f.cells[d] -
		(slice[a] - slice[b] - slice[c] + slice[d])
}

// AddMarginal accumulates the per-slice free counts of the ball of
// radius rad around c into m, indexed by the slice coordinate along
// axis: m[v] += SliceFree(axis, v, c, rad - |v - c[axis]|) for every
// on-grid v the ball reaches. This is how Gen-Alg reconstructs a
// candidate set's coordinate marginal in one fused pass.
func (b *Balls) AddMarginal(axis int, c topo.Point, rad int, m []int) {
	if rad < 0 {
		return
	}
	f := &b.fams[axis]
	ca := c[axis]
	if b.nd == 2 {
		cp := c[f.p]
		for v, ve := max(ca-rad, 0), min(ca+rad, b.dim[axis]-1); v <= ve; v++ {
			rv := rad - abs(v-ca)
			lo, hi := max(cp-rv, 0), min(cp+rv+1, f.np)
			if lo >= hi {
				continue
			}
			row := f.pref[v*f.planeLen:]
			m[v] += hi - lo - (row[hi] - row[lo])
		}
		return
	}
	u0, v0 := c[f.p]+c[f.q], c[f.p]-c[f.q]+f.nq-1
	for v, ve := max(ca-rad, 0), min(ca+rad, b.dim[axis]-1); v <= ve; v++ {
		rv := rad - abs(v-ca)
		m[v] += diamondFree(f, f.pref[v*f.planeLen:], u0, v0, rv)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
