package occupancy

import (
	"math/bits"
	"testing"
)

// xorshift64 is the repo-standard deterministic PRNG for tests.
type bsRand uint64

func (r *bsRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = bsRand(x)
	return x
}

func randomBitset(r *bsRand, n int, density uint64) (*Bitset, []bool) {
	b := NewBitset(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if r.next()%8 < density {
			b.Set(i)
			ref[i] = true
		}
	}
	return b, ref
}

func padOK(t *testing.T, b *Bitset) {
	t.Helper()
	if r := uint(b.Len()) & 63; r != 0 {
		last := b.Words()[len(b.Words())-1]
		if last&^((1<<r)-1) != 0 {
			t.Fatalf("pad bits set in last word: %#x (n=%d)", last, b.Len())
		}
	}
}

func TestBitsetBasics(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		b := NewBitset(n)
		if b.Len() != n || b.Count() != 0 {
			t.Fatalf("n=%d: fresh bitset Len=%d Count=%d", n, b.Len(), b.Count())
		}
		b.SetAll()
		padOK(t, b)
		if b.Count() != n {
			t.Fatalf("n=%d: SetAll Count=%d", n, b.Count())
		}
		b.ClearAll()
		if b.Count() != 0 {
			t.Fatalf("n=%d: ClearAll Count=%d", n, b.Count())
		}
		if n == 0 {
			continue
		}
		b.Set(n - 1)
		padOK(t, b)
		if !b.Get(n-1) || b.Count() != 1 {
			t.Fatalf("n=%d: Set(n-1) not observed", n)
		}
		b.Clear(n - 1)
		if b.Get(n-1) || b.Count() != 0 {
			t.Fatalf("n=%d: Clear(n-1) not observed", n)
		}
	}
}

func TestBitsetOutOfRangePanics(t *testing.T) {
	b := NewBitset(10)
	for _, f := range []func(){
		func() { b.Set(10) }, func() { b.Clear(-1) }, func() { b.Get(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on out-of-range index")
				}
			}()
			f()
		}()
	}
}

func TestBitsetNextSetNextClear(t *testing.T) {
	r := bsRand(0x9e3779b97f4a7c15)
	for _, n := range []int{1, 63, 64, 65, 130, 517} {
		for _, density := range []uint64{0, 1, 4, 7, 8} {
			b, ref := randomBitset(&r, n, density)
			for from := -1; from <= n+1; from++ {
				wantSet := -1
				for i := max(from, 0); i < n; i++ {
					if ref[i] {
						wantSet = i
						break
					}
				}
				if got := b.NextSet(from); got != wantSet {
					t.Fatalf("n=%d d=%d NextSet(%d)=%d want %d", n, density, from, got, wantSet)
				}
				wantClear := n
				for i := max(from, 0); i < n; i++ {
					if !ref[i] {
						wantClear = i
						break
					}
				}
				if got := b.NextClear(from); got != wantClear {
					t.Fatalf("n=%d d=%d NextClear(%d)=%d want %d", n, density, from, got, wantClear)
				}
			}
		}
	}
}

func TestBitsetRunScanIdiom(t *testing.T) {
	r := bsRand(42)
	for trial := 0; trial < 50; trial++ {
		n := 1 + int(r.next()%300)
		b, ref := randomBitset(&r, n, 5)
		type run struct{ start, length int }
		var got, want []run
		for i := 0; ; {
			j := b.NextSet(i)
			if j < 0 {
				break
			}
			k := b.NextClear(j)
			got = append(got, run{j, k - j})
			i = k
		}
		for i := 0; i < n; {
			if !ref[i] {
				i++
				continue
			}
			j := i
			for i < n && ref[i] {
				i++
			}
			want = append(want, run{j, i - j})
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d runs, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d run %d: %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// refRunMask is the bit-at-a-time reference for RunMask.
func refRunMask(src []uint64, nbits, w int) []uint64 {
	get := func(i int) bool {
		if i >= nbits {
			return false
		}
		return src[i>>6]&(1<<(uint(i)&63)) != 0
	}
	dst := make([]uint64, len(src))
	for x := 0; x < nbits; x++ {
		ok := true
		for d := 0; d < w; d++ {
			if !get(x + d) {
				ok = false
				break
			}
		}
		if ok {
			dst[x>>6] |= 1 << (uint(x) & 63)
		}
	}
	return dst
}

func TestRunMaskMatchesReference(t *testing.T) {
	r := bsRand(7)
	for trial := 0; trial < 40; trial++ {
		n := 1 + int(r.next()%260)
		b, _ := randomBitset(&r, n, 5)
		src := b.Words()
		nbits := len(src) * 64
		for _, w := range []int{1, 2, 3, 7, 13, 63, 64, 65, 70, 129} {
			dst := make([]uint64, len(src))
			RunMask(dst, src, w)
			want := refRunMask(src, nbits, w)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("trial %d w=%d word %d: got %#x want %#x", trial, w, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestAndShiftRightWideShift(t *testing.T) {
	// Shifts of >= 64 cross whole words; >= len(v)*64 clears everything.
	v := []uint64{^uint64(0), ^uint64(0), ^uint64(0)}
	AndShiftRight(v, 64)
	if v[0] != ^uint64(0) || v[1] != ^uint64(0) || v[2] != 0 {
		t.Fatalf("shift 64: %#x", v)
	}
	v = []uint64{^uint64(0), ^uint64(0)}
	AndShiftRight(v, 200)
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("shift past end: %#x", v)
	}
}

func TestBitsetCountMatchesOnesCount(t *testing.T) {
	r := bsRand(99)
	b, ref := randomBitset(&r, 777, 3)
	want := 0
	for _, set := range ref {
		if set {
			want++
		}
	}
	if got := b.Count(); got != want {
		t.Fatalf("Count=%d want %d", got, want)
	}
	// Cross-check the exposed words against the reference too.
	total := 0
	for _, w := range b.Words() {
		total += bits.OnesCount64(w)
	}
	if total != want {
		t.Fatalf("Words popcount=%d want %d", total, want)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
