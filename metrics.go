package meshalloc

import (
	"meshalloc/internal/core"
	"meshalloc/internal/metrics"
)

// Dispersal is the Mache–Lo allocation-quality metric family.
type Dispersal = metrics.Dispersal

// Fragmentation characterizes a machine state's free space.
type Fragmentation = metrics.Fragmentation

// MeasureDispersal computes the dispersal metrics of an allocation, e.g.
// of a JobRecord's Nodes.
func MeasureDispersal(m *Mesh, ids []int) Dispersal { return metrics.Measure(m, ids) }

// MeasureFragmentation computes external fragmentation given the busy
// processor ids of a machine state.
func MeasureFragmentation(m *Mesh, busyIDs []int) Fragmentation {
	return metrics.MeasureFragmentation(m, metrics.BusyMask(m, busyIDs))
}

// CheckResult is one verdict of the reproduction scorecard.
type CheckResult = core.CheckResult

// CheckReproduction runs the scaled experiments behind the paper's
// headline claims and reports a pass/fail verdict per claim.
func CheckReproduction(o ExperimentOptions) ([]CheckResult, error) {
	return core.Check(o)
}
