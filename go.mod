module meshalloc

go 1.24
