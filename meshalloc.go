// Package meshalloc is a trace-driven microsimulator for studying how
// processor-allocation algorithms interact with job communication
// patterns on space-shared mesh parallel machines: the paper's 2-D
// meshes and, via the dimension-generic topology layer, native n-D
// grids and tori (Config.Dims, e.g. []int{8, 8, 8} for the 3-D mesh
// CPlant physically was). It reproduces the system of Leung, Bunde and
// Mache, "Communication Patterns and Allocation Strategies"
// (SAND2003-4522 / IPPS 2004).
//
// The package is a facade over the implementation packages:
//
//   - allocation algorithms: Paging over space-filling curves (S-curve,
//     Hilbert, H-indexing) with free-list / First Fit / Best Fit /
//     Sum-of-Squares selection, the shell-scoring MC and MC1x1, Gen-Alg,
//     and a random baseline;
//   - communication patterns: all-to-all, n-body, random, ring,
//     all-pairs ping-pong, and the CPlant test suite;
//   - a flit-level-approximating wormhole network model of the mesh;
//   - a synthetic SDSC-Paragon workload generator and trace I/O;
//   - FCFS (and, as an extension, EASY backfilling) scheduling;
//   - versioned, checksummed engine snapshots (Engine.Snapshot /
//     RestoreEngine) for crash-safe resume, plus a runtime invariant
//     auditor (Engine.Audit, Config.AuditEvery);
//   - an experiment harness regenerating every figure in the paper.
//
// Quick start (closed-system batch replay, the paper's setup):
//
//	tr := meshalloc.NewSDSCTrace(meshalloc.SDSCConfig{Jobs: 500, MaxSize: 352, Seed: 1})
//	res, err := meshalloc.Run(meshalloc.Config{
//		MeshW: 16, MeshH: 22, // or Dims: []int{8, 8, 8} for native 3-D
//		Alloc:   "hilbert/bestfit",
//		Pattern: "nbody",
//		Load:    0.6,
//		TimeScale: 0.02,
//	}, tr)
//
// Open-system streaming (online submission, constant memory):
//
//	eng, err := meshalloc.NewEngine(meshalloc.Config{
//		MeshW: 16, MeshH: 16,
//		Alloc: "hilbert/bestfit", Pattern: "nbody",
//		KeepRecords: meshalloc.Discard, KeepNodes: meshalloc.Discard,
//	})
//	eng.Observe(func(r meshalloc.JobRecord) { /* stream each record */ })
//	err = eng.RunSource(meshalloc.NewPoissonSource(900, 256, 1), 1e6)
//	summary := eng.Result() // streaming mean, P² median, utilization
package meshalloc

import (
	"io"

	"meshalloc/internal/core"
	"meshalloc/internal/fault"
	"meshalloc/internal/sim"
	"meshalloc/internal/snap"
	"meshalloc/internal/trace"
)

// Config describes one simulation run; see the field documentation in
// the sim package.
type Config = sim.Config

// Result is the outcome of one simulation run.
type Result = sim.Result

// JobRecord is the per-job outcome record.
type JobRecord = sim.JobRecord

// IssueMode selects phased or sequential message injection.
type IssueMode = sim.IssueMode

// Issue modes.
const (
	IssuePhased     = sim.IssuePhased
	IssueSequential = sim.IssueSequential
)

// Engine is the resumable discrete-event core: online Submit while the
// clock runs, Step/RunUntil/Drain, streaming Observer callbacks, and
// constant-memory open-system runs under the Discard policies.
type Engine = sim.Engine

// Observer receives each finished job's record as it completes.
type Observer = sim.Observer

// KeepPolicy selects whether per-job data is retained (Keep, default)
// or only streamed to observers (Discard).
type KeepPolicy = sim.KeepPolicy

// Retention policies.
const (
	Keep    = sim.Keep
	Discard = sim.Discard
)

// Source is a pull-based job stream for open-system simulation.
type Source = trace.Source

// Trace is an arrival-ordered job stream.
type Trace = trace.Trace

// Job is one batch job of a trace.
type Job = trace.Job

// SDSCConfig parameterizes the synthetic SDSC Paragon workload.
type SDSCConfig = trace.SDSCConfig

// FaultConfig injects deterministic node failure/repair streams into a
// run via Config.Faults; the zero value disables injection. See
// fault.Config.
type FaultConfig = fault.Config

// FaultDist is a node lifetime (MTBF/MTTR) distribution.
type FaultDist = fault.Dist

// FaultEvent is one scripted node state transition.
type FaultEvent = fault.Event

// RetryPolicy governs jobs killed by node failures; set via
// Config.Retry. See fault.Retry.
type RetryPolicy = fault.Retry

// Fault event kinds and distribution families.
const (
	NodeDown        = fault.NodeDown
	NodeUp          = fault.NodeUp
	NodeDrain       = fault.NodeDrain
	NodeUndrain     = fault.NodeUndrain
	DistExponential = fault.DistExponential
	DistWeibull     = fault.DistWeibull
	RetryImmediate  = fault.RetryImmediate
	RetryNone       = fault.RetryNone
	RetryBackoff    = fault.RetryBackoff
)

// ParseFaultDist parses an MTBF/MTTR spec: "MEAN", "exp:MEAN" or
// "weibull:MEAN,SHAPE". See fault.ParseDist.
func ParseFaultDist(spec string) (FaultDist, error) { return fault.ParseDist(spec) }

// ParseRetryPolicy parses "none", "immediate[:N]" or
// "backoff:BASE,CAP[,N]". See fault.ParseRetry.
func ParseRetryPolicy(spec string) (RetryPolicy, error) { return fault.ParseRetry(spec) }

// ErrOversize is matched (via errors.Is) by the typed error
// Engine.Submit returns for jobs that can never be placed.
var ErrOversize = sim.ErrOversize

// OversizeError carries the offending job and capacity details of an
// ErrOversize rejection.
type OversizeError = sim.OversizeError

// RestoreEngine rebuilds an engine from a snapshot written by
// Engine.Snapshot. cfg must describe the same simulation as the
// snapshotted run (same seed, mesh, allocator, workload and fault
// parameters); ErrConfigMismatch reports a divergence. The restored
// engine continues bit-identically to the original. See
// sim.RestoreEngine.
func RestoreEngine(r io.Reader, cfg Config) (*Engine, error) { return sim.RestoreEngine(r, cfg) }

// ErrConfigMismatch is matched (via errors.Is) by RestoreEngine when
// the snapshot was taken under a different configuration.
var ErrConfigMismatch = sim.ErrConfigMismatch

// Snapshot container errors, matched via errors.Is against
// RestoreEngine failures: a non-snapshot file, an incompatible format
// version, a checksum failure, or any other corruption.
var (
	ErrSnapshotBadMagic = snap.ErrBadMagic
	ErrSnapshotVersion  = snap.ErrVersion
	ErrSnapshotChecksum = snap.ErrChecksum
	ErrSnapshotCorrupt  = snap.ErrCorrupt
)

// InvariantViolation is one failed engine invariant reported by
// Engine.Audit (matched via errors.As). See sim.Violation.
type InvariantViolation = sim.Violation

// SourceState is the serializable position of a Source built by this
// package; capture alongside Engine.Snapshot to checkpoint an
// open-system run. See trace.SourceState.
type SourceState = trace.SourceState

// CaptureSource snapshots a source's position. See trace.CaptureSource.
func CaptureSource(src Source) (SourceState, error) { return trace.CaptureSource(src) }

// RestoreSource fast-forwards a freshly built source to a captured
// position. See trace.RestoreSource.
func RestoreSource(src Source, st SourceState) error { return trace.RestoreSource(src, st) }

// SWFSkip is a line-numbered diagnostic from the lenient SWF reader.
type SWFSkip = trace.SWFSkip

// ReadSWFTrace parses a Standard Workload Format trace strictly:
// malformed lines abort with a line-numbered error. See trace.ReadSWF.
func ReadSWFTrace(r io.Reader) (*Trace, error) { return trace.ReadSWF(r) }

// ReadSWFTraceLenient parses SWF tolerantly, reporting every dropped
// line as a diagnostic instead of aborting. See trace.ReadSWFLenient.
func ReadSWFTraceLenient(r io.Reader) (*Trace, []SWFSkip, error) {
	return trace.ReadSWFLenient(r)
}

// Figure is one reproduced paper figure.
type Figure = core.Figure

// ExperimentOptions scales the figure-reproduction experiments.
type ExperimentOptions = core.Options

// Run simulates tr under cfg. See sim.Run.
func Run(cfg Config, tr *Trace) (*Result, error) { return sim.Run(cfg, tr) }

// NewEngine builds an idle engine for cfg. See sim.NewEngine.
func NewEngine(cfg Config) (*Engine, error) { return sim.NewEngine(cfg) }

// NewSDSCTrace synthesizes a workload with the SDSC Paragon's published
// statistics. See trace.NewSDSC.
func NewSDSCTrace(cfg SDSCConfig) *Trace { return trace.NewSDSC(cfg) }

// NewPoissonSource returns an unbounded open-system source with Poisson
// arrivals at the given mean interarrival time. See trace.NewPoisson.
func NewPoissonSource(meanInterarrival float64, maxSize int, seed int64) Source {
	return trace.NewPoisson(meanInterarrival, maxSize, seed)
}

// NewBurstySource returns an on/off (interrupted Poisson) open-system
// source. See trace.NewBursty.
func NewBurstySource(meanInterarrival, meanOn, meanOff float64, maxSize int, seed int64) Source {
	return trace.NewBursty(meanInterarrival, meanOn, meanOff, maxSize, seed)
}

// LimitSource caps a source at n jobs. See trace.Limit.
func LimitSource(src Source, n int) Source { return trace.Limit(src, n) }

// Allocators returns the nine allocator specs evaluated in the paper's
// response-time figures.
func Allocators() []string { return allocSpecs() }

// ReproduceFigure regenerates the paper figure with the given id ("1",
// "6", "7", "8", "9", "10", "11").
func ReproduceFigure(id string, o ExperimentOptions) (*Figure, error) {
	return core.FigureByID(id, o)
}
