// Allocation-regression guards for the simulator's steady-state hot
// paths. The grid experiments spend their time in shell scoring and
// message sends; these tests pin the zero-allocation refactor of those
// paths so a future change cannot silently reintroduce per-candidate or
// per-message garbage. See DESIGN.md ("Zero-allocation hot paths").
//
// The topology layer is dimension-generic, so every guard runs on both
// the paper's 2-D meshes (through the mesh facade, pinning the original
// contract) and a 3-D grid (pinning the generalized route, shell, ring
// and Send paths the ext-cube3d experiment rides on).
package meshalloc

import (
	"fmt"
	"testing"

	"meshalloc/internal/alloc"
	"meshalloc/internal/binpack"
	"meshalloc/internal/curve"
	"meshalloc/internal/mesh"
	"meshalloc/internal/netsim"
	"meshalloc/internal/occupancy"
	"meshalloc/internal/sim"
	"meshalloc/internal/topo"
	"meshalloc/internal/trace"
)

// TestShellIterationZeroAlloc pins mesh shell walking (the inner loop of
// MC's candidate scoring) at zero allocations when the caller reuses a
// scratch buffer.
func TestShellIterationZeroAlloc(t *testing.T) {
	m := mesh.New(16, 22)
	buf := make([]int, 0, m.Size())
	center := mesh.Point{X: 8, Y: 11}
	n := testing.AllocsPerRun(200, func() {
		for k := 0; k <= 8; k++ {
			buf = m.AppendShell(buf[:0], center, 4, 4, k)
		}
	})
	if n != 0 {
		t.Fatalf("AppendShell iteration allocates %.1f objects/run, want 0", n)
	}
}

// TestShellEachZeroAlloc pins the index-callback variant at zero
// allocations, including the closure itself.
func TestShellEachZeroAlloc(t *testing.T) {
	m := mesh.New(16, 22)
	center := mesh.Point{X: 3, Y: 20}
	sum := 0
	n := testing.AllocsPerRun(200, func() {
		for k := 0; k <= 8; k++ {
			m.ShellEach(center, 4, 4, k, func(id int) bool {
				sum += id
				return true
			})
		}
	})
	if n != 0 {
		t.Fatalf("ShellEach iteration allocates %.1f objects/run, want 0", n)
	}
	_ = sum
}

// TestRouteAppendZeroAlloc pins dimension-ordered route construction into
// a reused buffer at zero allocations.
func TestRouteAppendZeroAlloc(t *testing.T) {
	m := mesh.New(16, 22)
	buf := make([]mesh.Link, 0, m.Width()+m.Height())
	n := testing.AllocsPerRun(200, func() {
		buf = m.AppendRoute(buf[:0], 0, m.Size()-1)
		buf = m.AppendRouteYX(buf[:0], m.Size()-1, 3)
	})
	if n != 0 {
		t.Fatalf("AppendRoute allocates %.1f objects/run, want 0", n)
	}
}

// TestNetworkSendZeroAlloc pins steady-state netsim.Send — the
// per-message path of every simulation — at zero allocations, for each
// routing mode.
func TestNetworkSendZeroAlloc(t *testing.T) {
	for _, r := range []netsim.Routing{netsim.RouteXY, netsim.RouteYX, netsim.RouteAdaptive} {
		t.Run(r.String(), func(t *testing.T) {
			m := mesh.New(16, 22)
			cfg := netsim.DefaultConfig()
			cfg.Routing = r
			net := netsim.New(m.Grid(), cfg)
			clock := 0.0
			src := 0
			n := testing.AllocsPerRun(500, func() {
				net.Send(src%m.Size(), (src*7+13)%m.Size(), clock)
				src++
				clock++
			})
			if n != 0 {
				t.Fatalf("Send(%s) allocates %.1f objects/run, want 0", r, n)
			}
		})
	}
}

// TestAllocatorSteadyStateAllocs pins each allocator's Allocate/Release
// cycle at exactly one allocation: the returned id slice, which the
// caller owns for the lifetime of the job and which therefore cannot be
// recycled. Everything else (shell scoring, ring gathering, bin-pack
// interval scans, free-list shuffles) must run in persistent scratch.
func TestAllocatorSteadyStateAllocs(t *testing.T) {
	m := mesh.New(16, 22)
	for _, spec := range append(alloc.Specs(), "random") {
		t.Run(spec, func(t *testing.T) {
			a, err := alloc.Spec(m.Grid(), spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the scratch buffers past their high-water mark.
			for i := 0; i < 3; i++ {
				ids, err := a.Allocate(alloc.Request{Size: 16})
				if err != nil {
					t.Fatal(err)
				}
				a.Release(ids)
			}
			n := testing.AllocsPerRun(100, func() {
				ids, err := a.Allocate(alloc.Request{Size: 16})
				if err != nil {
					t.Fatal(err)
				}
				a.Release(ids)
			})
			if n > 1 {
				t.Fatalf("%s Allocate+Release allocates %.1f objects/run, want <= 1 (the returned slice)", spec, n)
			}
		})
	}
}

// TestIndexedAllocatorSteadyStateAllocs pins the count-don't-gather
// MC/MC1x1/Gen-Alg scorers at one allocation per cycle on a
// production-scale machine at mixed occupancy: the occupancy-index
// queries (box counts, ball counts, marginals) and the winner-only
// gather must all run in persistent scratch.
func TestIndexedAllocatorSteadyStateAllocs(t *testing.T) {
	for _, dims := range [][]int{{32, 32}, {16, 16, 16}} {
		g := topo.New(dims)
		for _, spec := range []string{"mc", "mc1x1", "genalg"} {
			t.Run(fmt.Sprintf("%v/%s", dims, spec), func(t *testing.T) {
				a, err := alloc.Spec(g, spec, 1)
				if err != nil {
					t.Fatal(err)
				}
				// Mixed occupancy plus scratch warm-up.
				var live [][]int
				for a.NumFree() > g.Size()/3 {
					ids, err := a.Allocate(alloc.Request{Size: 1 + len(live)%29})
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, ids)
				}
				for i := 0; i < len(live); i += 4 {
					a.Release(live[i])
				}
				n := testing.AllocsPerRun(30, func() {
					ids, err := a.Allocate(alloc.Request{Size: 48})
					if err != nil {
						t.Fatal(err)
					}
					a.Release(ids)
				})
				if n > 1 {
					t.Fatalf("%s Allocate+Release allocates %.1f objects/run at mixed occupancy, want <= 1", spec, n)
				}
			})
		}
	}
}

// TestEngineDiscardPerJobAllocs pins the engine's Discard retention
// path at a small constant allocation count per job, independent of
// message quota and stream length: the pooled job-store handles, the
// recycled event-queue entries, zero-alloc Send, the counted dispersal
// metrics and the skipped record/node copies must keep per-job garbage
// down to the allocator's returned id slice plus a handful of per-job
// objects (pattern generator). Batch-retention overhead (record slice
// growth, node copies) or any per-message allocation would push this
// well past the bound.
func TestEngineDiscardPerJobAllocs(t *testing.T) {
	const jobs = 2000
	cfg := sim.Config{
		MeshW: 16, MeshH: 16,
		Alloc: "hilbert/bestfit", Pattern: "nbody",
		Seed:          1,
		MsgsPerSecond: 0.01, // ~100 messages per job: quota-linear garbage would dominate
		KeepRecords:   sim.Discard,
		KeepNodes:     sim.Discard,
	}
	n := testing.AllocsPerRun(1, func() {
		e, err := sim.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		e.Observe(func(sim.JobRecord) { count++ })
		if err := e.RunSource(trace.Limit(trace.NewPoisson(1000, 256, 1), jobs), 0); err != nil {
			t.Fatal(err)
		}
		if count != jobs {
			t.Fatalf("finished %d jobs", count)
		}
	})
	// PR 9's counted dispersal metrics (no per-finish component slices)
	// and SoA job store tightened this from the original 20.
	if perJob := n / jobs; perJob > 8 {
		t.Fatalf("Discard engine allocates %.1f objects/job, want <= 8", perJob)
	}
}

// TestBitsetScanZeroAlloc pins the word-parallel free-map primitives —
// the run-scan idiom (NextSet/NextClear) and the width-w run mask — at
// zero allocations when the caller reuses its buffers. These are the
// inner loops of every bitset-backed enumeration (see DESIGN.md,
// "Word-parallel free maps").
func TestBitsetScanZeroAlloc(t *testing.T) {
	bs := occupancy.NewBitset(1024)
	bs.SetAll()
	// Scattered mixed-size holes so the scan crosses many runs.
	for i := 0; i < 1024; i += 3 {
		bs.Clear(i)
	}
	dst := make([]uint64, len(bs.Words()))
	runs, free := 0, 0
	n := testing.AllocsPerRun(200, func() {
		for i := 0; i < bs.Len(); {
			j := bs.NextSet(i)
			if j < 0 {
				break
			}
			k := bs.NextClear(j)
			runs++
			free += k - j
			i = k
		}
		occupancy.RunMask(dst, bs.Words(), 7)
	})
	if n != 0 {
		t.Fatalf("bitset run scan allocates %.1f objects/run, want 0", n)
	}
	_, _ = runs, free
}

// TestBinpackIntervalScanZeroAlloc pins the word-parallel free-interval
// enumeration of the bin-packing substrate at zero allocations into a
// reused buffer, at mixed occupancy where the naive scan used to walk
// rank by rank.
func TestBinpackIntervalScanZeroAlloc(t *testing.T) {
	order := curve.Hilbert{}.Order(32, 32)
	p := binpack.New(order)
	var live [][]int
	for p.NumFree() > 64 {
		ids, err := p.Allocate(1+len(live)%13, binpack.FirstFit)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, ids)
	}
	for i := 0; i < len(live); i += 3 {
		p.Release(live[i])
	}
	buf := make([]binpack.Interval, 0, 1024)
	n := testing.AllocsPerRun(200, func() {
		buf = p.AppendIntervals(buf[:0])
	})
	if n != 0 {
		t.Fatalf("AppendIntervals allocates %.1f objects/run, want 0", n)
	}
	if len(buf) == 0 {
		t.Fatal("no free intervals at mixed occupancy")
	}
}

// TestIncrementalMCSteadyStateAllocs pins the cached MC scorer's steady
// state — the same-size churn where score reuse actually pays — at one
// allocation per Allocate/Release cycle: the cache arrays are persistent
// after warm-up, and store/invalidate must not generate garbage.
func TestIncrementalMCSteadyStateAllocs(t *testing.T) {
	for _, dims := range [][]int{{32, 32}, {16, 16, 16}} {
		t.Run(fmt.Sprint(dims), func(t *testing.T) {
			g := topo.New(dims)
			a := alloc.NewMC(g)
			var live [][]int
			for a.NumFree() > g.Size()/3 {
				ids, err := a.Allocate(alloc.Request{Size: 1 + len(live)%29})
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, ids)
			}
			for i := 0; i < len(live); i += 4 {
				a.Release(live[i])
			}
			// Warm the cache arrays and scratch at the steady-state size.
			for i := 0; i < 3; i++ {
				ids, err := a.Allocate(alloc.Request{Size: 48})
				if err != nil {
					t.Fatal(err)
				}
				a.Release(ids)
			}
			n := testing.AllocsPerRun(30, func() {
				ids, err := a.Allocate(alloc.Request{Size: 48})
				if err != nil {
					t.Fatal(err)
				}
				a.Release(ids)
			})
			if n > 1 {
				t.Fatalf("cached MC Allocate+Release allocates %.1f objects/run, want <= 1", n)
			}
		})
	}
}

// TestGridWalkersZeroAlloc pins the dimension-generic route, shell and
// ring walkers at zero allocations on 2-D and 3-D grids alike.
func TestGridWalkersZeroAlloc(t *testing.T) {
	for _, dims := range [][]int{{16, 22}, {8, 8, 8}} {
		t.Run(fmt.Sprint(dims), func(t *testing.T) {
			g := topo.New(dims)
			var c, ext topo.Point
			for i, d := range dims {
				c[i] = d / 2
				ext[i] = 2
			}
			linkBuf := make([]topo.Link, 0, 64)
			idBuf := make([]int, 0, g.Size())
			n := testing.AllocsPerRun(200, func() {
				linkBuf = g.AppendRoute(linkBuf[:0], 0, g.Size()-1)
				linkBuf = g.AppendRouteRev(linkBuf[:0], g.Size()-1, 3)
				for k := 0; k <= 6; k++ {
					idBuf = g.AppendShell(idBuf[:0], c, ext, k)
				}
				idBuf = g.AppendRing(idBuf[:0], c, 4)
				g.ShellEach(c, ext, 2, func(int) bool { return true })
			})
			if n != 0 {
				t.Fatalf("grid walkers allocate %.1f objects/run, want 0", n)
			}
		})
	}
}

// TestNetworkSend3DZeroAlloc pins steady-state Send on a native 3-D
// machine at zero allocations for every routing mode, the guarantee the
// ext-cube3d contention runs depend on.
func TestNetworkSend3DZeroAlloc(t *testing.T) {
	for _, r := range []netsim.Routing{netsim.RouteXY, netsim.RouteYX, netsim.RouteAdaptive} {
		t.Run(r.String(), func(t *testing.T) {
			g := topo.New([]int{8, 8, 8})
			cfg := netsim.DefaultConfig()
			cfg.Routing = r
			net := netsim.New(g, cfg)
			clock := 0.0
			src := 0
			n := testing.AllocsPerRun(500, func() {
				net.Send(src%g.Size(), (src*7+13)%g.Size(), clock)
				src++
				clock++
			})
			if n != 0 {
				t.Fatalf("Send(%s) allocates %.1f objects/run on 3-D, want 0", r, n)
			}
		})
	}
}

// TestAllocatorSteadyState3DAllocs pins the generic allocators on a 3-D
// machine at one allocation per cycle (the returned slice), mirroring
// the 2-D guard: the dimension-generic refactor must not cost the
// shell/ring scoring paths their persistent-scratch discipline.
func TestAllocatorSteadyState3DAllocs(t *testing.T) {
	g := topo.New([]int{8, 8, 8})
	for _, spec := range []string{"mc", "mc1x1", "genalg", "random", "hilbert", "hilbert/bestfit", "scurve", "proj2d-hilbert"} {
		t.Run(spec, func(t *testing.T) {
			a, err := alloc.Spec(g, spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				ids, err := a.Allocate(alloc.Request{Size: 16})
				if err != nil {
					t.Fatal(err)
				}
				a.Release(ids)
			}
			n := testing.AllocsPerRun(50, func() {
				ids, err := a.Allocate(alloc.Request{Size: 16})
				if err != nil {
					t.Fatal(err)
				}
				a.Release(ids)
			})
			if n > 1 {
				t.Fatalf("%s Allocate+Release allocates %.1f objects/run on 3-D, want <= 1", spec, n)
			}
		})
	}
}
