// Quickstart: simulate a small synthetic workload on a 16x16 mesh under
// two allocation algorithms and compare mean response time.
//
//	go run ./examples/quickstart [-jobs N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"meshalloc"
)

func main() {
	jobs := flag.Int("jobs", 400, "synthetic trace length (lower for a quick smoke run)")
	flag.Parse()
	if err := run(*jobs, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(jobs int, w io.Writer) error {
	// A workload statistically matched to the SDSC Paragon trace,
	// capped to fit a 16x16 machine.
	tr := meshalloc.NewSDSCTrace(meshalloc.SDSCConfig{Jobs: jobs, MaxSize: 256, Seed: 7})

	for _, spec := range []string{"hilbert/bestfit", "scurve"} {
		res, err := meshalloc.Run(meshalloc.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     spec,
			Pattern:   "alltoall",
			Load:      0.4,  // pack arrivals 2.5x tighter than traced
			TimeScale: 0.02, // contract the trace for a fast demo
			Seed:      7,
		}, tr)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s mean response %8.0f s   contiguous %5.1f%%   avg components %.2f\n",
			spec, res.MeanResponse, res.PctContiguous, res.AvgComponents)
	}
	fmt.Fprintln(w, "\nHilbert with Best Fit keeps jobs compact, so all-to-all traffic")
	fmt.Fprintln(w, "contends less and the FCFS queue drains faster than under the")
	fmt.Fprintln(w, "plain sorted-free-list S-curve allocator.")
	return nil
}
