package main

import (
	"strings"
	"testing"
)

// TestRunSmoke executes the example end to end with a tiny trace and
// checks both allocators report.
func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(40, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"hilbert/bestfit", "scurve", "mean response"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
