package main

import (
	"strings"
	"testing"
)

// TestRunSmoke runs both arrival processes with a tiny job cap and
// checks the streaming summary appears with no records retained.
func TestRunSmoke(t *testing.T) {
	for _, bursty := range []bool{false, true} {
		var b strings.Builder
		if err := run(30, bursty, &b); err != nil {
			t.Fatalf("bursty=%t: %v", bursty, err)
		}
		out := b.String()
		if !strings.Contains(out, "records retained: 0") {
			t.Fatalf("bursty=%t: open-system run retained records:\n%s", bursty, out)
		}
		if !strings.Contains(out, "mean response") || !strings.Contains(out, "worst job") {
			t.Fatalf("bursty=%t: summary incomplete:\n%s", bursty, out)
		}
	}
}
