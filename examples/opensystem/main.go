// Opensystem: drive the engine with an unbounded Poisson arrival
// stream instead of a fixed trace — the open-system shape the batch
// experiments cannot take. Records stream through an observer and are
// never retained, so the same program scales to millions of jobs in
// constant memory; the summary comes from the engine's streaming
// aggregates (running mean, P² median).
//
//	go run ./examples/opensystem [-jobs N] [-bursty]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"meshalloc"
)

func main() {
	jobs := flag.Int("jobs", 2000, "number of open-system arrivals to simulate")
	bursty := flag.Bool("bursty", false, "use the on/off bursty arrival process instead of Poisson")
	flag.Parse()
	if err := run(*jobs, *bursty, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(jobs int, bursty bool, w io.Writer) error {
	eng, err := meshalloc.NewEngine(meshalloc.Config{
		MeshW: 16, MeshH: 16,
		Alloc:   "hilbert/bestfit",
		Pattern: "nbody",
		Seed:    7,
		// Discard per-job data once observers have seen it: the run
		// holds O(machine + in-flight jobs) memory however long the
		// stream gets.
		KeepRecords: meshalloc.Discard,
		KeepNodes:   meshalloc.Discard,
	})
	if err != nil {
		return err
	}

	// An observer sees every record the moment its job finishes; here
	// it just tracks the worst response so far.
	worst := meshalloc.JobRecord{}
	eng.Observe(func(r meshalloc.JobRecord) {
		if r.Response > worst.Response {
			worst = r
		}
	})

	// Jobs arrive every ~620 s on average — about 0.7 offered load for
	// SDSC-sized jobs on 256 processors. The bursty variant clusters
	// the same long-run rate into on/off periods.
	var src meshalloc.Source
	if bursty {
		src = meshalloc.NewBurstySource(200, 3600, 7200, 256, 7)
	} else {
		src = meshalloc.NewPoissonSource(620, 256, 7)
	}
	if err := eng.RunSource(meshalloc.LimitSource(src, jobs), 0); err != nil {
		return err
	}

	res := eng.Result()
	fmt.Fprintf(w, "open-system run: %d jobs, records retained: %d\n", res.Jobs, len(res.Records))
	fmt.Fprintf(w, "  mean response      %10.0f s (streaming)\n", res.MeanResponse)
	fmt.Fprintf(w, "  median response    %10.0f s (P² estimate)\n", res.MedianResponse)
	fmt.Fprintf(w, "  utilization        %10.1f %%\n", res.UtilizationPct)
	fmt.Fprintf(w, "  mean queue length  %10.2f jobs\n", res.MeanQueueLen)
	fmt.Fprintf(w, "  worst job: id %d, size %d, response %.0f s\n", worst.ID, worst.Size, worst.Response)
	return nil
}
