// fragmentation watches how external fragmentation (the share of free
// processors unreachable by a contiguous request) evolves under
// different allocators — the failure mode that pushed production systems
// from convex to noncontiguous allocation, as the paper's Section 2
// recounts.
//
//	go run ./examples/fragmentation [-jobs N]
package main

import (
	"flag"
	"fmt"
	"log"

	"meshalloc"
)

func main() {
	jobs := flag.Int("jobs", 250, "synthetic trace length (lower for a quick smoke run)")
	flag.Parse()
	tr := meshalloc.NewSDSCTrace(meshalloc.SDSCConfig{Jobs: *jobs, MaxSize: 256, Seed: 13})
	m := meshalloc.NewMesh(16, 16)

	fmt.Println("allocator          mean frag   worst frag   mean resp (s)")
	for _, spec := range []string{"hilbert/bestfit", "mc1x1", "random", "scurve"} {
		res, err := meshalloc.Run(meshalloc.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     spec,
			Pattern:   "alltoall",
			Load:      0.4,
			TimeScale: 0.02,
			Seed:      13,
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		// Rebuild machine snapshots at each job start from the records:
		// jobs running at time t are those with Start <= t < Finish.
		meanFrag, worstFrag := 0.0, 0.0
		samples := 0
		for _, at := range res.Records {
			var busy []int
			for _, other := range res.Records {
				if other.Start <= at.Start && at.Start < other.Finish {
					busy = append(busy, other.Nodes...)
				}
			}
			f := meshalloc.MeasureFragmentation(m, busy)
			if f.FreeProcs == 0 {
				continue
			}
			meanFrag += f.External
			if f.External > worstFrag {
				worstFrag = f.External
			}
			samples++
		}
		if samples > 0 {
			meanFrag /= float64(samples)
		}
		fmt.Printf("%-18s %9.2f   %10.2f   %13.0f\n", spec, meanFrag, worstFrag, res.MeanResponse)
	}
	fmt.Println("\nDispersing allocators shatter the free set: most free processors")
	fmt.Println("sit outside the largest free rectangle, which is why contiguous-")
	fmt.Println("only allocation cannot keep a production machine busy.")
}
