// loadsweep performs the paper's load sweep (arrival contraction factors
// 1.0 down to 0.2) for one allocator/pattern pair and prints the response
// curve — one series of Figure 7 — plus queueing diagnostics useful for
// capacity planning.
//
//	go run ./examples/loadsweep -alloc mc -pattern alltoall
package main

import (
	"flag"
	"fmt"
	"log"

	"meshalloc"
)

func main() {
	allocSpec := flag.String("alloc", "hilbert/bestfit", "allocator spec")
	pattern := flag.String("pattern", "alltoall", "communication pattern")
	jobs := flag.Int("jobs", 800, "synthetic trace length (lower for a quick smoke run)")
	flag.Parse()

	tr := meshalloc.NewSDSCTrace(meshalloc.SDSCConfig{Jobs: *jobs, MaxSize: 352, Seed: 11})

	fmt.Printf("allocator %s, pattern %s, 16x22 mesh, %d jobs\n\n", *allocSpec, *pattern, *jobs)
	fmt.Println("load   mean resp (s)   median (s)   mean wait (s)   net avg hops")
	for _, load := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
		res, err := meshalloc.Run(meshalloc.Config{
			MeshW: 16, MeshH: 22,
			Alloc:     *allocSpec,
			Pattern:   *pattern,
			Load:      load,
			TimeScale: 0.02,
			Seed:      11,
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		var wait float64
		for _, r := range res.Records {
			wait += r.Wait
		}
		wait /= float64(len(res.Records))
		fmt.Printf("%.1f    %12.0f   %10.0f   %13.0f   %12.2f\n",
			load, res.MeanResponse, res.MedianResponse, wait, res.Net.AvgHops())
	}
	fmt.Println("\nAs the load factor shrinks (x axis of the paper's Figures 7-8),")
	fmt.Println("arrivals pack tighter, the FCFS queue saturates, and waiting time")
	fmt.Println("comes to dominate response time.")
}
