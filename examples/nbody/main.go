// nbody ranks every allocation algorithm of the paper for the n-body
// communication pattern — the workload whose CPlant behaviour (ring jobs
// finishing faster under the 1-D allocator than under MC1x1) motivated
// the study.
//
//	go run ./examples/nbody [-jobs N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"meshalloc"
)

func main() {
	jobs := flag.Int("jobs", 600, "synthetic trace length (lower for a quick smoke run)")
	flag.Parse()
	if err := run(*jobs, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(jobs int, w io.Writer) error {
	tr := meshalloc.NewSDSCTrace(meshalloc.SDSCConfig{Jobs: jobs, MaxSize: 256, Seed: 3})

	type entry struct {
		spec string
		resp float64
	}
	var ranking []entry
	for _, spec := range meshalloc.Allocators() {
		res, err := meshalloc.Run(meshalloc.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     spec,
			Pattern:   "nbody",
			Load:      0.2, // 5x load: the regime where allocators separate
			TimeScale: 0.02,
			Seed:      3,
		}, tr)
		if err != nil {
			return err
		}
		ranking = append(ranking, entry{spec: spec, resp: res.MeanResponse})
	}
	sort.Slice(ranking, func(i, j int) bool { return ranking[i].resp < ranking[j].resp })

	fmt.Fprintln(w, "n-body on 16x16 at 5x load — allocators best to worst:")
	for i, e := range ranking {
		fmt.Fprintf(w, "%2d. %-18s mean response %9.0f s\n", i+1, e.spec, e.resp)
	}
	fmt.Fprintln(w, "\nThe paper's observation: space-filling-curve strategies suit the")
	fmt.Fprintln(w, "ring-structured n-body pattern (curve neighbours are mesh")
	fmt.Fprintln(w, "neighbours), while the blob-building MC/MC1x1/Gen-Alg family")
	fmt.Fprintln(w, "scatters ring neighbours and trails the field.")
	return nil
}
