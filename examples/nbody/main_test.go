package main

import (
	"strings"
	"testing"

	"meshalloc"
)

// TestRunSmoke executes the ranking with a tiny trace and checks every
// allocator appears exactly once.
func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(30, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, spec := range meshalloc.Allocators() {
		if n := strings.Count(out, " "+spec+" "); n != 1 {
			t.Fatalf("allocator %q appears %d times, want 1:\n%s", spec, n, out)
		}
	}
}
