// curves renders the three page orderings of the paper side by side on a
// small mesh (Figure 2) and compares their locality on the truncated
// 16x22 machine (Figure 6).
//
//	go run ./examples/curves
package main

import (
	"fmt"
	"log"
	"strings"

	"meshalloc"
)

func main() {
	fmt.Println("Figure 2 — page orderings on an 8x8 mesh:")
	grids := make([][]string, 0, 3)
	names := []string{"scurve", "hilbert", "hindex"}
	for _, name := range names {
		order, err := meshalloc.CurveOrder(name, 8, 8)
		if err != nil {
			log.Fatal(err)
		}
		grids = append(grids, renderGrid(order, 8, 8))
	}
	fmt.Printf("%-28s%-28s%-28s\n", names[0], names[1], names[2])
	for row := 0; row < 8; row++ {
		for _, g := range grids {
			fmt.Printf("%-28s", g[row])
		}
		fmt.Println()
	}

	fmt.Println("\nFigure 6 — locality after truncating to the 16x22 CPlant-scale mesh:")
	for _, name := range names {
		order, err := meshalloc.CurveOrder(name, 16, 22)
		if err != nil {
			log.Fatal(err)
		}
		gaps := 0
		for i := 1; i < len(order); i++ {
			a := point(order[i-1], 16)
			b := point(order[i], 16)
			if manhattan(a, b) > 1 {
				gaps++
			}
		}
		fmt.Printf("  %-8s %d discontinuities along the curve\n", name, gaps)
	}
	fmt.Println("\nThe power-of-two Hilbert and H-indexing curves pick up gaps when")
	fmt.Println("truncated (the arrows of the paper's Figure 6); the S-curve stays")
	fmt.Println("continuous but clusters poorly.")
}

func renderGrid(order []int, w, h int) []string {
	rank := make([]int, w*h)
	for pos, id := range order {
		rank[id] = pos
	}
	rows := make([]string, h)
	for y := 0; y < h; y++ {
		var b strings.Builder
		for x := 0; x < w; x++ {
			fmt.Fprintf(&b, "%3d", rank[y*w+x])
		}
		rows[y] = b.String()
	}
	return rows
}

func point(id, w int) [2]int { return [2]int{id % w, id / w} }

func manhattan(a, b [2]int) int {
	dx, dy := a[0]-b[0], a[1]-b[1]
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}
