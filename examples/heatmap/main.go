// heatmap visualizes where network contention concentrates on the mesh
// under a good allocator versus a dispersing one — the physical mechanism
// behind every response-time difference in the paper.
//
//	go run ./examples/heatmap [-jobs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"meshalloc"
)

func main() {
	jobs := flag.Int("jobs", 300, "synthetic trace length (lower for a quick smoke run)")
	flag.Parse()
	tr := meshalloc.NewSDSCTrace(meshalloc.SDSCConfig{Jobs: *jobs, MaxSize: 256, Seed: 5})

	for _, spec := range []string{"hilbert/bestfit", "random"} {
		res, err := meshalloc.Run(meshalloc.Config{
			MeshW: 16, MeshH: 16,
			Alloc:     spec,
			Pattern:   "alltoall",
			Load:      0.4,
			TimeScale: 0.02,
			Seed:      5,
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — mean response %.0f s, avg message distance %.2f hops\n",
			spec, res.MeanResponse, res.Net.AvgHops())
		fmt.Println(render(res.NodeUtilization, 16, 16))
	}
	fmt.Println("Random placement stretches messages across the whole mesh, so")
	fmt.Println("utilization (and queueing) spreads and intensifies; the curve")
	fmt.Println("allocator keeps traffic inside compact per-job regions.")
}

// render maps node utilization onto a 0-9 intensity grid.
func render(util []float64, w, h int) string {
	max := 0.0
	for _, u := range util {
		if u > max {
			max = u
		}
	}
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := util[y*w+x]
			if u == 0 || max == 0 {
				b.WriteString(". ")
				continue
			}
			level := int(u / max * 9)
			if level > 9 {
				level = 9
			}
			fmt.Fprintf(&b, "%d ", level)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
