// Command curveviz renders a mesh linearization as a grid of curve ranks
// (paper Figures 2 and 6) and prints its locality metrics.
//
//	curveviz -curve hilbert -mesh 16x22
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"meshalloc/internal/curve"
)

func main() {
	var (
		name     = flag.String("curve", "hilbert", "curve name (rowmajor, scurve, scurve-long, hilbert, hindex)")
		meshSpec = flag.String("mesh", "8x8", "mesh dimensions WxH")
		list     = flag.Bool("list", false, "list available curves and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range curve.All() {
			fmt.Println(n)
		}
		return
	}

	var w, h int
	if _, err := fmt.Sscanf(*meshSpec, "%dx%d", &w, &h); err != nil || w <= 0 || h <= 0 {
		fmt.Fprintf(os.Stderr, "curveviz: bad mesh spec %q\n", *meshSpec)
		os.Exit(1)
	}
	c, err := curve.ByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "curveviz: %v\nvalid -curve values: %s (or proj2d-<curve>)\n",
			err, strings.Join(curve.All(), ", "))
		os.Exit(1)
	}
	order := c.Order(w, h)
	fmt.Printf("%s on %dx%d:\n\n%s\n", c.Name(), w, h, curve.Render(order, w, h))
	rep := curve.Locality(order, w, h)
	fmt.Printf("locality: max step %d, avg step %.3f, gaps %d, max adjacency stretch %d\n",
		rep.MaxStep, rep.AvgStep, rep.Gaps, rep.MaxAdjacencyStretch)
}
