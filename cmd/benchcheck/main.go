// Command benchcheck compares a freshly produced BENCH_*.json artifact
// against a committed baseline and fails when a watched metric has
// regressed beyond tolerance. It is the CI tripwire of the event-core
// overhaul: the committed BENCH_9.json records the events/sec the
// calendar-queue engine reached, and a PR that silently halves it fails
// the bench-smoke job instead of surfacing in the next paper figure.
//
// Perf comparisons are host-metadata-gated: BENCH_*.json artifacts are
// self-describing (go version, GOOS/GOARCH, GOMAXPROCS, NumCPU — see
// BENCH.md), and comparing a 16-core workstation baseline against a
// single-core CI container would only measure the container. When the
// host blocks differ, benchcheck checks shape only — every watched
// (benchmark, metric) pair in the baseline must still exist in the
// fresh artifact with a sane value — and skips the ratio test.
//
// Example:
//
//	benchcheck -baseline BENCH_9.json -fresh BENCH_9.fresh.json
//	benchcheck -baseline BENCH_9.json -fresh f.json -metric events_per_sec -max-regress 15
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
)

// benchDoc mirrors the BENCH_*.json schema written by the root-package
// TestMain collector (see bench_test.go and BENCH.md).
type benchDoc struct {
	Host struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		NumCPU     int    `json:"num_cpu"`
	} `json:"host"`
	Entries []struct {
		Benchmark string  `json:"benchmark"`
		Metric    string  `json:"metric"`
		Value     float64 `json:"value"`
	} `json:"entries"`
}

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_9.json", "committed baseline artifact")
		fresh    = flag.String("fresh", "", "freshly produced artifact to check (required)")
		metric   = flag.String("metric", "events_per_sec", "comma-separated higher-is-better metrics to watch")
		maxReg   = flag.Float64("max-regress", 15, "maximum tolerated regression in percent")
	)
	flag.Parse()
	if *fresh == "" {
		fatal(fmt.Errorf("-fresh is required"))
	}
	if *maxReg < 0 || *maxReg >= 100 || math.IsNaN(*maxReg) {
		fatal(fmt.Errorf("-max-regress wants a percentage in [0, 100), got %v", *maxReg))
	}
	watched := map[string]bool{}
	for _, m := range strings.Split(*metric, ",") {
		if m = strings.TrimSpace(m); m != "" {
			watched[m] = true
		}
	}
	if len(watched) == 0 {
		fatal(fmt.Errorf("-metric names no metrics"))
	}

	base, err := readDoc(*baseline)
	if err != nil {
		fatal(err)
	}
	got, err := readDoc(*fresh)
	if err != nil {
		fatal(err)
	}

	freshVals := map[string]float64{}
	for _, e := range got.Entries {
		freshVals[e.Benchmark+"\x00"+e.Metric] = e.Value
	}

	// The perf gate: ratio tests are meaningful only between like hosts.
	// GOMAXPROCS and NumCPU decide whether parallel machinery has cores
	// to use; GOOS/GOARCH decide whether the numbers are comparable at
	// all. The Go patch version is allowed to drift — flagging every
	// toolchain bump would train people to ignore the check.
	sameHost := base.Host.GOOS == got.Host.GOOS &&
		base.Host.GOARCH == got.Host.GOARCH &&
		base.Host.GOMAXPROCS == got.Host.GOMAXPROCS &&
		base.Host.NumCPU == got.Host.NumCPU
	if !sameHost {
		fmt.Printf("benchcheck: hosts differ (baseline %s/%s %d cpu / gomaxprocs %d, fresh %s/%s %d cpu / gomaxprocs %d); shape check only\n",
			base.Host.GOOS, base.Host.GOARCH, base.Host.NumCPU, base.Host.GOMAXPROCS,
			got.Host.GOOS, got.Host.GOARCH, got.Host.NumCPU, got.Host.GOMAXPROCS)
	}

	checked, failed := 0, 0
	for _, e := range base.Entries {
		if !watched[e.Metric] {
			continue
		}
		checked++
		v, ok := freshVals[e.Benchmark+"\x00"+e.Metric]
		if !ok {
			fmt.Printf("FAIL %s %s: present in baseline, missing from fresh artifact\n", e.Benchmark, e.Metric)
			failed++
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			fmt.Printf("FAIL %s %s: degenerate fresh value %v\n", e.Benchmark, e.Metric, v)
			failed++
			continue
		}
		if !sameHost {
			fmt.Printf("ok   %s %s: present (%.4g; perf not compared across hosts)\n", e.Benchmark, e.Metric, v)
			continue
		}
		floor := e.Value * (1 - *maxReg/100)
		if v < floor {
			fmt.Printf("FAIL %s %s: %.4g is %.1f%% below baseline %.4g (tolerance %.0f%%)\n",
				e.Benchmark, e.Metric, v, (1-v/e.Value)*100, e.Value, *maxReg)
			failed++
			continue
		}
		fmt.Printf("ok   %s %s: %.4g vs baseline %.4g (%+.1f%%)\n",
			e.Benchmark, e.Metric, v, e.Value, (v/e.Value-1)*100)
	}
	if checked == 0 {
		fatal(fmt.Errorf("baseline %s has no entries for watched metrics %s", *baseline, *metric))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d watched metrics failed", failed, checked))
	}
}

func readDoc(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(doc.Entries) == 0 {
		return nil, fmt.Errorf("%s: no bench entries", path)
	}
	return &doc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
