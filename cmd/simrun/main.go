// Command simrun executes a single allocation/pattern simulation and
// prints the summary metrics: mean/median response time, contiguity,
// and network statistics. The workload is a closed-system replay of a
// synthetic SDSC Paragon trace (or a trace file), or — with -arrival —
// an open-system stream whose per-job records stream out as NDJSON and
// whose aggregates come from the engine's constant-memory streaming
// statistics.
//
// Example:
//
//	simrun -mesh 16x22 -alloc hilbert/bestfit -pattern nbody -load 0.6
//	simrun -mesh 8x8x8 -alloc hilbert/bestfit -pattern nbody      # native 3-D
//	simrun -mesh 16x16 -arrival poisson:900 -duration 1e6 -stream  # open system
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"meshalloc/internal/alloc"
	"meshalloc/internal/curve"
	"meshalloc/internal/fault"
	"meshalloc/internal/mesh"
	"meshalloc/internal/metrics"
	"meshalloc/internal/netsim"
	"meshalloc/internal/sched"
	"meshalloc/internal/sim"
	"meshalloc/internal/snap"
	"meshalloc/internal/topo"
	"meshalloc/internal/trace"
)

func main() {
	var (
		meshSpec  = flag.String("mesh", "16x22", "mesh dimensions, e.g. 16x22 or 8x8x8")
		allocSpec = flag.String("alloc", "hilbert/bestfit", "allocator spec (e.g. mc, mc1x1, genalg, hilbert/bestfit, scurve)")
		pattern   = flag.String("pattern", "alltoall", "communication pattern (alltoall, nbody, random, ring, pingpong, testsuite)")
		load      = flag.Float64("load", 1.0, "arrival contraction factor (1 down to 0.2)")
		timeScale = flag.Float64("timescale", 0.02, "trace time contraction for tractability")
		jobs      = flag.Int("jobs", 6087, "number of synthetic trace jobs (also caps open-system streams)")
		seed      = flag.Int64("seed", 1, "random seed")
		scheduler = flag.String("sched", "fcfs", "scheduling policy (fcfs, easy or sjf)")
		issue     = flag.String("issue", "phased", "message issue mode (phased or sequential)")
		routing   = flag.String("routing", "xy", "network routing (xy, yx, adaptive)")
		torus     = flag.Bool("torus", false, "wraparound (torus) links")
		traceFile = flag.String("trace", "", "replay a trace file instead of synthesizing one")
		swf       = flag.Bool("swf", false, "parse -trace as Standard Workload Format")
		swfLoose  = flag.Bool("swf-lenient", false, "with -swf: skip malformed lines (reported to stderr) instead of aborting")
		verbose   = flag.Bool("v", false, "print per-job records")
		heatmap   = flag.Bool("heatmap", false, "print a node-level link-utilization heatmap")
		disperse  = flag.Bool("dispersal", false, "print aggregate dispersal metrics of the allocations")
		stream    = flag.Bool("stream", false, "stream per-job records as NDJSON to stdout (summary goes to stderr); records are not retained")
		arrival   = flag.String("arrival", "", "open-system arrival process: poisson:MEANSEC or bursty:MEANSEC,ONSEC,OFFSEC (empty = closed trace replay)")
		duration  = flag.Float64("duration", 0, "open-system horizon in trace seconds (0 = run until the -jobs cap)")
		allocWk   = flag.Int("alloc-workers", 0, "goroutines scoring allocation candidates (mc, mc1x1, genalg); results are bit-identical at any value")
		mtbf      = flag.String("mtbf", "", "per-node mean time between failures: MEANSEC, exp:MEANSEC or weibull:MEANSEC,SHAPE (trace seconds; empty = no failures)")
		mttr      = flag.String("mttr", "", "per-node mean time to repair, same forms as -mtbf (empty with -mtbf = permanent failures)")
		retrySpec = flag.String("retry", "", "retry policy for killed jobs: none, immediate[:MAXATTEMPTS] or backoff:BASESEC,CAPSEC[,MAXATTEMPTS] (empty = immediate, unlimited)")
		equeue    = flag.String("equeue", "", "event queue implementation: calendar or heap (empty = calendar)")
		rebuild   = flag.Bool("rebuild-sched", false, "rebuild scheduler state from scratch every round (reference path; slower, bit-identical)")
		ckptPath  = flag.String("checkpoint", "", "write a resumable checkpoint to this file every -checkpoint-every events (atomic replace)")
		ckptEvery = flag.Int64("checkpoint-every", 0, "events between checkpoints (requires -checkpoint)")
		resume    = flag.String("resume", "", "resume from a -checkpoint file; pass the same configuration flags as the original run")
		auditEv   = flag.Int("audit-every", 0, "run the engine invariant auditor every N events (0 = audit only at end of run)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
		memProf   = flag.String("memprofile", "", "write a pprof allocation profile (after the run) to this file")
	)
	flag.Parse()

	dims, err := parseMesh(*meshSpec)
	if err != nil {
		fatal(err)
	}
	size := 1
	for _, d := range dims {
		size *= d
	}

	// Reject a typo'd -alloc or -sched up front with a usage error that
	// lists the valid names, before any trace is synthesized or replayed:
	// in sweep scripts a late failure (or a silently defaulted value)
	// masks the typo.
	if _, err := alloc.Spec(topo.New(dims), *allocSpec, *seed); err != nil {
		fatal(fmt.Errorf("%v\n%s", err, allocUsage()))
	}
	if _, err := sched.ByName(*scheduler); err != nil {
		fatal(fmt.Errorf("%v (valid -sched values: fcfs, easy, sjf)", err))
	}
	switch *equeue {
	case "", "calendar", "heap":
	default:
		fatal(fmt.Errorf("unknown -equeue value %q (valid -equeue values: calendar, heap)", *equeue))
	}

	// Durability flags fail fast before any workload is built: a typo'd
	// checkpoint cadence must not surface hours into a sweep.
	if *auditEv < 0 {
		fatal(fmt.Errorf("-audit-every must be >= 0 (got %d)", *auditEv))
	}
	if *ckptEvery < 0 {
		fatal(fmt.Errorf("-checkpoint-every must be > 0 (got %d)", *ckptEvery))
	}
	if (*ckptPath != "") != (*ckptEvery > 0) {
		fatal(fmt.Errorf("-checkpoint and -checkpoint-every must be used together"))
	}
	if *resume != "" && *traceFile != "" {
		fatal(fmt.Errorf("-resume restores the workload from the checkpoint; drop -trace"))
	}

	cfg := sim.Config{
		Dims:         dims,
		Torus:        *torus,
		Alloc:        *allocSpec,
		Pattern:      *pattern,
		Load:         *load,
		TimeScale:    *timeScale,
		Seed:         *seed,
		Scheduler:    *scheduler,
		AllocWorkers: *allocWk,
		EventQueue:   *equeue,
		RebuildSched: *rebuild,
		AuditEvery:   *auditEv,
	}
	if *issue == "sequential" {
		cfg.Issue = sim.IssueSequential
	} else if *issue != "phased" {
		fatal(fmt.Errorf("unknown issue mode %q", *issue))
	}

	// Fault flags fail fast at parse time — a malformed -mtbf in a
	// sweep script must die before hours of simulation, not after.
	cfg.Faults.MTBF, err = fault.ParseDist(*mtbf)
	if err != nil {
		fatal(fmt.Errorf("-mtbf: %v", err))
	}
	cfg.Faults.MTTR, err = fault.ParseDist(*mttr)
	if err != nil {
		fatal(fmt.Errorf("-mttr: %v", err))
	}
	if cfg.Faults.MTTR.Enabled() && !cfg.Faults.MTBF.Enabled() {
		fatal(fmt.Errorf("-mttr without -mtbf: nothing ever fails"))
	}
	cfg.Retry, err = fault.ParseRetry(*retrySpec)
	if err != nil {
		fatal(fmt.Errorf("-retry: %v", err))
	}
	route, err := netsim.RoutingByName(*routing)
	if err != nil {
		fatal(err)
	}
	cfg.Net = netsim.DefaultConfig()
	cfg.Net.Routing = route

	// Streaming and open-system runs discard records; the per-record
	// reports need the retained slice.
	if (*stream || *arrival != "") && (*verbose || *disperse) {
		fatal(fmt.Errorf("-v and -dispersal need retained records; drop -stream/-arrival"))
	}

	// Profile files are created (and the CPU profile started) before the
	// workload is built, so an unwritable path dies in milliseconds, not
	// after the simulation. Trace synthesis is inside the profiled span:
	// for large open-system runs it is part of the event loop's cost.
	stopCPU := func() {}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(fmt.Errorf("-cpuprofile: %v", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("-cpuprofile: %v", err))
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(fmt.Errorf("-cpuprofile: %v", err))
			}
		}
	}

	ck := ckptSpec{path: *ckptPath, every: *ckptEvery}
	var res *sim.Result
	var eng *sim.Engine
	if *resume != "" {
		res, eng, err = runResume(cfg, *resume, *arrival, size, *seed, *jobs, *duration, *stream, ck)
	} else if *arrival != "" {
		if *traceFile != "" {
			fatal(fmt.Errorf("-arrival generates its own workload; drop -trace"))
		}
		res, eng, err = runOpen(cfg, *arrival, size, *seed, *jobs, *duration, *stream, ck)
	} else {
		var tr *trace.Trace
		if *traceFile != "" {
			f, oerr := os.Open(*traceFile)
			if oerr != nil {
				fatal(oerr)
			}
			if *swf && *swfLoose {
				var skips []trace.SWFSkip
				tr, skips, err = trace.ReadSWFLenient(f)
				for _, s := range skips {
					fmt.Fprintf(os.Stderr, "simrun: %s: swf %s\n", *traceFile, s)
				}
			} else if *swf {
				tr, err = trace.ReadSWF(f)
			} else {
				tr, err = trace.Read(f)
			}
			f.Close()
			if err != nil {
				fatal(err)
			}
		} else {
			tr = trace.NewSDSC(trace.SDSCConfig{Jobs: *jobs, MaxSize: size, Seed: *seed})
		}
		tr = tr.FilterMaxSize(size)
		if *stream {
			res, eng, err = runStreaming(cfg, tr, ck)
		} else {
			res, eng, err = runBatch(cfg, tr, ck)
		}
	}
	if err != nil {
		fatal(err)
	}
	stopCPU()
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(fmt.Errorf("-memprofile: %v", err))
		}
		runtime.GC() // report live objects, not dead garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(fmt.Errorf("-memprofile: %v", err))
		}
		if err := f.Close(); err != nil {
			fatal(fmt.Errorf("-memprofile: %v", err))
		}
	}

	// With -stream, stdout carries the NDJSON records; the summary
	// moves to stderr so the record stream stays machine-readable.
	sum := os.Stdout
	if *stream {
		sum = os.Stderr
	}
	fmt.Fprintf(sum, "mesh %s  alloc %-18s pattern %-9s load %.2f  jobs %d\n",
		*meshSpec, *allocSpec, *pattern, *load, res.Jobs)
	fmt.Fprintf(sum, "mean response    %14.0f s\n", res.MeanResponse)
	// Without retained records the median is the P² streaming estimate
	// (coarse on short heavy-tailed runs); say so.
	if res.Records == nil {
		fmt.Fprintf(sum, "median response  %14.0f s (P² estimate)\n", res.MedianResponse)
	} else {
		fmt.Fprintf(sum, "median response  %14.0f s\n", res.MedianResponse)
	}
	fmt.Fprintf(sum, "makespan         %14.0f s\n", res.Makespan)
	fmt.Fprintf(sum, "contiguous       %13.1f %%   avg components %.2f\n", res.PctContiguous, res.AvgComponents)
	fmt.Fprintf(sum, "network: %d messages, avg %.2f hops, avg latency %.3f s (scaled)\n",
		res.Net.Messages, res.Net.AvgHops(), res.Net.AvgLatency())
	if cfg.Faults.Enabled() {
		fmt.Fprintf(sum, "faults: %d kills, %d retries, %d given up\n",
			res.Killed, res.Retried, res.GivenUp)
		fmt.Fprintf(sum, "goodput          %13.1f %%   wasted %.2f %%   down %.2f %%\n",
			res.GoodputPct, res.WastedPct, res.DownPct)
	}

	// Profiling runs also print the event-core counters: a profile whose
	// calendar queue silently fell back to the heap is measuring the
	// wrong code, and the counters make that visible next to the profile.
	if *cpuProf != "" || *memProf != "" {
		cs := eng.CoreStats()
		fmt.Fprintf(os.Stderr, "event core: %d events (%d arrivals, %d steps, %d finishes), %d fault events\n",
			cs.Events, cs.Arrivals, cs.Steps, cs.Finishes, cs.FaultEvents)
		fmt.Fprintf(os.Stderr, "scheduler: %d rounds, %d head-blocked skips\n", cs.SchedRounds, cs.SchedSkips)
		fmt.Fprintf(os.Stderr, "calendar queue: %d resizes, %d direct scans, fell back to heap: %v\n",
			cs.CalResizes, cs.CalDirectScans, cs.CalFellBack)
	}

	if *heatmap {
		if len(dims) != 2 {
			fatal(fmt.Errorf("-heatmap renders 2-D meshes only (got %s)", *meshSpec))
		}
		fmt.Fprintln(sum, "\nlink-utilization heatmap (0-9 per node, '.' = idle):")
		fmt.Fprint(sum, renderHeatmap(res.NodeUtilization, dims[0], dims[1]))
	}

	if *disperse {
		if len(dims) != 2 {
			fatal(fmt.Errorf("-dispersal supports 2-D meshes only (got %s)", *meshSpec))
		}
		m := meshForDims(dims[0], dims[1], *torus)
		ms := make([]metrics.Dispersal, len(res.Records))
		sizes := make([]int, len(res.Records))
		for i, r := range res.Records {
			ms[i] = metrics.Measure(m, r.Nodes)
			sizes[i] = r.Size
		}
		s := metrics.Summarize(ms, sizes)
		fmt.Printf("\ndispersal over %d allocations:\n", s.N)
		fmt.Printf("  mean avg pairwise distance  %6.2f hops\n", s.MeanAvgPairwise)
		fmt.Printf("  mean bounding-box fill      %6.2f\n", s.MeanBoundingFill)
		fmt.Printf("  mean perimeter ratio        %6.2f (1.0 = ideal square)\n", s.MeanPerimeterRatio)
		fmt.Printf("  mean components             %6.2f\n", s.MeanComponents)
		fmt.Printf("  contiguous                  %6.1f %%\n", s.PctContiguous)
	}

	if *verbose {
		fmt.Println("\n  id  size     quota     response      runtime  pairwise  msgdist comps")
		for _, r := range res.Records {
			fmt.Printf("%4d  %4d  %8d  %11.0f  %11.0f  %8.2f  %7.2f  %4d\n",
				r.ID, r.Size, r.Quota, r.Response, r.RunTime, r.AvgPairwise, r.AvgMsgDist, r.Components)
		}
	}
}

// runOpen simulates an open-system workload: arrivals from the spec'd
// process, streamed through the engine with record retention off so
// the run holds constant memory no matter how many jobs pass through.
// Node lists stay on (the per-record copies are transient), so -stream
// emits the same NDJSON schema in open and closed mode. The stream
// ends at the horizon (trace seconds) or the jobs cap, whichever comes
// first.
func runOpen(cfg sim.Config, spec string, maxSize int, seed int64, jobs int, horizon float64, stream bool, ck ckptSpec) (*sim.Result, *sim.Engine, error) {
	src, err := parseArrival(spec, maxSize, seed)
	if err != nil {
		return nil, nil, err
	}
	cfg.KeepRecords = sim.Discard
	e, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	flush := func() {}
	if stream {
		flush = observeNDJSON(e)
	}
	lim := trace.Limit(src, jobs)
	armCheckpoint(e, lim, ck)
	if err := e.RunSource(lim, horizon); err != nil {
		return nil, nil, err
	}
	// A horizon stop leaves in-flight jobs pending; let them finish so
	// the summary covers every admitted job.
	e.Drain()
	flush()
	return e.Result(), e, nil
}

// runStreaming replays a closed-system trace but streams every record
// as NDJSON instead of retaining it; summary statistics come from the
// engine's streaming aggregates. Jobs are submitted up front exactly
// as sim.Run does, so -stream changes the output format only — even
// event-time ties resolve in the same order as the batch path.
func runStreaming(cfg sim.Config, tr *trace.Trace, ck ckptSpec) (*sim.Result, *sim.Engine, error) {
	cfg.KeepRecords = sim.Discard
	e, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	flush := observeNDJSON(e)
	for _, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			return nil, nil, err
		}
	}
	armCheckpoint(e, nil, ck)
	e.Drain()
	if e.Deadlocked() {
		return nil, nil, fmt.Errorf("deadlock with %d queued and %d running jobs", e.Pending(), e.RunningJobs())
	}
	flush()
	return e.Result(), e, nil
}

// runBatch is sim.Run with the engine handle kept, so the profiling
// report can read the event-core counters. Submission order, event
// processing and the deadlock check match sim.Run exactly.
func runBatch(cfg sim.Config, tr *trace.Trace, ck ckptSpec) (*sim.Result, *sim.Engine, error) {
	e, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			return nil, nil, err
		}
	}
	armCheckpoint(e, nil, ck)
	e.Drain()
	if e.Deadlocked() {
		return nil, nil, fmt.Errorf("deadlock with %d queued and %d running jobs", e.Pending(), e.RunningJobs())
	}
	return e.Result(), e, nil
}

// ckptSpec carries the -checkpoint flags: where to write and how many
// events between writes. A zero spec disables checkpointing.
type ckptSpec struct {
	path  string
	every int64
}

// armCheckpoint hooks the engine's periodic checkpoint callback to
// write ck.path atomically every ck.every events. src is the live
// open-system source whose position rides along in the file (nil for
// closed-system runs, whose arrivals are already engine events). A
// checkpoint that cannot be written aborts the run: continuing would
// silently drop the durability the user asked for.
func armCheckpoint(e *sim.Engine, src trace.Source, ck ckptSpec) {
	if ck.path == "" {
		return
	}
	e.SetCheckpoint(ck.every, func() {
		if err := writeCheckpoint(ck.path, e, src); err != nil {
			fatal(fmt.Errorf("-checkpoint: %v", err))
		}
	})
}

// writeCheckpoint serializes the engine (and, for open systems, the
// arrival source position) into a snap container at path. The file is
// staged as path.tmp and renamed into place so a crash mid-write never
// corrupts the previous good checkpoint.
func writeCheckpoint(path string, e *sim.Engine, src trace.Source) error {
	var blob bytes.Buffer
	if err := e.Snapshot(&blob); err != nil {
		return err
	}
	w := snap.NewWriter()
	w.Bytes(blob.Bytes())
	if src != nil {
		st, err := trace.CaptureSource(src)
		if err != nil {
			return err
		}
		w.Bool(true)
		writeSourceState(w, st)
	} else {
		w.Bool(false)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := w.Flush(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func writeSourceState(w *snap.Writer, st trace.SourceState) {
	w.String(st.Kind)
	w.U64(st.RNGPos)
	w.F64(st.OnLeft)
	w.F64(st.Now)
	w.Int(st.Next)
	w.Int(st.Index)
	w.Int(st.Left)
	w.Bool(st.Inner != nil)
	if st.Inner != nil {
		writeSourceState(w, *st.Inner)
	}
}

func readSourceState(r *snap.Reader, depth int) (trace.SourceState, error) {
	var st trace.SourceState
	if depth > 8 {
		return st, fmt.Errorf("source state nests deeper than any source this binary builds")
	}
	st.Kind = r.String()
	st.RNGPos = r.U64()
	st.OnLeft = r.F64()
	st.Now = r.F64()
	st.Next = r.Int()
	st.Index = r.Int()
	st.Left = r.Int()
	if r.Bool() {
		inner, err := readSourceState(r, depth+1)
		if err != nil {
			return st, err
		}
		st.Inner = &inner
	}
	return st, r.Err()
}

// runResume restores a checkpoint written by -checkpoint and finishes
// the run. Closed-system checkpoints carry every pending arrival as
// engine events, so the trace is not re-read; open-system checkpoints
// additionally record the arrival-source position, and the caller must
// pass the original -arrival spec (and -jobs/-duration) to rebuild it.
func runResume(cfg sim.Config, path, arrivalSpec string, maxSize int, seed int64, jobs int, horizon float64, stream bool, ck ckptSpec) (*sim.Result, *sim.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := snap.NewReader(f)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("-resume %s: %v", path, err)
	}
	blob := r.Bytes()
	hasSrc := r.Bool()
	var st trace.SourceState
	if hasSrc {
		if st, err = readSourceState(r, 0); err != nil {
			return nil, nil, fmt.Errorf("-resume %s: %v", path, err)
		}
	}
	if r.Err() != nil {
		return nil, nil, fmt.Errorf("-resume %s: %v", path, r.Err())
	}
	if n := r.Remaining(); n != 0 {
		return nil, nil, fmt.Errorf("-resume %s: %d trailing bytes after checkpoint payload", path, n)
	}
	if hasSrc && arrivalSpec == "" {
		return nil, nil, fmt.Errorf("-resume %s: checkpoint holds an open-system source; pass the original -arrival spec", path)
	}
	if !hasSrc && arrivalSpec != "" {
		return nil, nil, fmt.Errorf("-resume %s: checkpoint is a closed-system run; drop -arrival", path)
	}

	// Mirror the KeepRecords choice the original run modes make, so the
	// restore config fingerprint matches the checkpointed engine's.
	if stream || arrivalSpec != "" {
		cfg.KeepRecords = sim.Discard
	}
	e, err := sim.RestoreEngine(bytes.NewReader(blob), cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("-resume %s: %v", path, err)
	}
	flush := func() {}
	if stream {
		flush = observeNDJSON(e)
	}
	if hasSrc {
		src, err := parseArrival(arrivalSpec, maxSize, seed)
		if err != nil {
			return nil, nil, err
		}
		lim := trace.Limit(src, jobs)
		if err := trace.RestoreSource(lim, st); err != nil {
			return nil, nil, fmt.Errorf("-resume %s: %v", path, err)
		}
		armCheckpoint(e, lim, ck)
		if err := e.RunSource(lim, horizon); err != nil {
			return nil, nil, err
		}
		e.Drain()
	} else {
		armCheckpoint(e, nil, ck)
		e.Drain()
		if e.Deadlocked() {
			return nil, nil, fmt.Errorf("deadlock with %d queued and %d running jobs", e.Pending(), e.RunningJobs())
		}
	}
	flush()
	return e.Result(), e, nil
}

// observeNDJSON attaches an observer encoding each record as one JSON
// line on stdout and returns the buffer flush.
func observeNDJSON(e *sim.Engine) (flush func()) {
	w := bufio.NewWriter(os.Stdout)
	enc := json.NewEncoder(w)
	e.Observe(func(r sim.JobRecord) {
		if err := enc.Encode(r); err != nil {
			fatal(err)
		}
	})
	return func() {
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	}
}

// parseArrival builds the open-system source from its flag spec:
// "poisson:MEANSEC" or "bursty:MEANSEC,ONSEC,OFFSEC".
func parseArrival(spec string, maxSize int, seed int64) (trace.Source, error) {
	kind, args, _ := strings.Cut(spec, ":")
	var nums []float64
	if args != "" {
		for _, p := range strings.Split(args, ",") {
			v, err := strconv.ParseFloat(p, 64)
			// NaN fails every comparison and ±Inf passes v > 0, so
			// reject non-finite values explicitly.
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return nil, fmt.Errorf("bad arrival parameter %q in %q", p, spec)
			}
			nums = append(nums, v)
		}
	}
	switch kind {
	case "poisson":
		if len(nums) != 1 {
			return nil, fmt.Errorf("poisson arrival wants poisson:MEANSEC, got %q", spec)
		}
		return trace.NewPoisson(nums[0], maxSize, seed), nil
	case "bursty":
		if len(nums) != 3 {
			return nil, fmt.Errorf("bursty arrival wants bursty:MEANSEC,ONSEC,OFFSEC, got %q", spec)
		}
		return trace.NewBursty(nums[0], nums[1], nums[2], maxSize, seed), nil
	default:
		return nil, fmt.Errorf("unknown arrival process %q (want poisson or bursty)", kind)
	}
}

// renderHeatmap draws per-node utilization as digit intensities.
func renderHeatmap(util []float64, w, h int) string {
	max := 0.0
	for _, u := range util {
		if u > max {
			max = u
		}
	}
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := util[y*w+x]
			switch {
			case u == 0 || max == 0:
				b.WriteByte('.')
			default:
				level := int(u / max * 9)
				if level > 9 {
					level = 9
				}
				b.WriteByte(byte('0' + level))
			}
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func meshForDims(w, h int, torus bool) *mesh.Mesh {
	if torus {
		return mesh.NewTorus(w, h)
	}
	return mesh.New(w, h)
}

func parseMesh(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	if len(parts) < 2 || len(parts) > topo.MaxDims {
		return nil, fmt.Errorf("bad mesh spec %q, want WxH or WxHxD", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		d, err := strconv.Atoi(p)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad mesh spec %q: extent %q", s, p)
		}
		dims[i] = d
	}
	return dims, nil
}

// allocUsage lists the valid -alloc spec forms and the registry names
// they can be built from, so a rejected spec is a one-stop fix.
func allocUsage() string {
	return fmt.Sprintf(`valid -alloc forms:
  mc | mc1x1 | genalg | random | submesh | buddy
  <curve>                       Paging with a sorted free list
  <curve>/<strategy>            Paging with a bin-packing strategy
  <curve>/<strategy>/page<s>    Lo et al.'s Paging with 2^s-sided pages
curves: %s, optcurve, or proj2d-<curve> (2-D projection on n-D grids)
strategies: freelist, firstfit, bestfit, sumofsquares, worstfit, nextfit`,
		strings.Join(curve.All(), ", "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}
