// Command simrun executes a single allocation/pattern simulation over a
// synthetic SDSC Paragon trace (or a trace file) and prints the summary
// metrics: mean/median response time, contiguity, and network statistics.
//
// Example:
//
//	simrun -mesh 16x22 -alloc hilbert/bestfit -pattern nbody -load 0.6
//	simrun -mesh 8x8x8 -alloc hilbert/bestfit -pattern nbody      # native 3-D
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"meshalloc/internal/mesh"
	"meshalloc/internal/metrics"
	"meshalloc/internal/netsim"
	"meshalloc/internal/sim"
	"meshalloc/internal/topo"
	"meshalloc/internal/trace"
)

func main() {
	var (
		meshSpec  = flag.String("mesh", "16x22", "mesh dimensions, e.g. 16x22 or 8x8x8")
		allocSpec = flag.String("alloc", "hilbert/bestfit", "allocator spec (e.g. mc, mc1x1, genalg, hilbert/bestfit, scurve)")
		pattern   = flag.String("pattern", "alltoall", "communication pattern (alltoall, nbody, random, ring, pingpong, testsuite)")
		load      = flag.Float64("load", 1.0, "arrival contraction factor (1 down to 0.2)")
		timeScale = flag.Float64("timescale", 0.02, "trace time contraction for tractability")
		jobs      = flag.Int("jobs", 6087, "number of synthetic trace jobs")
		seed      = flag.Int64("seed", 1, "random seed")
		scheduler = flag.String("sched", "fcfs", "scheduling policy (fcfs or easy)")
		issue     = flag.String("issue", "phased", "message issue mode (phased or sequential)")
		routing   = flag.String("routing", "xy", "network routing (xy, yx, adaptive)")
		torus     = flag.Bool("torus", false, "wraparound (torus) links")
		traceFile = flag.String("trace", "", "replay a trace file instead of synthesizing one")
		swf       = flag.Bool("swf", false, "parse -trace as Standard Workload Format")
		verbose   = flag.Bool("v", false, "print per-job records")
		heatmap   = flag.Bool("heatmap", false, "print a node-level link-utilization heatmap")
		disperse  = flag.Bool("dispersal", false, "print aggregate dispersal metrics of the allocations")
	)
	flag.Parse()

	dims, err := parseMesh(*meshSpec)
	if err != nil {
		fatal(err)
	}
	size := 1
	for _, d := range dims {
		size *= d
	}

	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		if *swf {
			tr, err = trace.ReadSWF(f)
		} else {
			tr, err = trace.Read(f)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		tr = trace.NewSDSC(trace.SDSCConfig{Jobs: *jobs, MaxSize: size, Seed: *seed})
	}
	tr = tr.FilterMaxSize(size)

	cfg := sim.Config{
		Dims:      dims,
		Torus:     *torus,
		Alloc:     *allocSpec,
		Pattern:   *pattern,
		Load:      *load,
		TimeScale: *timeScale,
		Seed:      *seed,
		Scheduler: *scheduler,
	}
	if *issue == "sequential" {
		cfg.Issue = sim.IssueSequential
	} else if *issue != "phased" {
		fatal(fmt.Errorf("unknown issue mode %q", *issue))
	}
	route, err := netsim.RoutingByName(*routing)
	if err != nil {
		fatal(err)
	}
	cfg.Net = netsim.DefaultConfig()
	cfg.Net.Routing = route

	res, err := sim.Run(cfg, tr)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("mesh %s  alloc %-18s pattern %-9s load %.2f  jobs %d\n",
		*meshSpec, *allocSpec, *pattern, *load, len(res.Records))
	fmt.Printf("mean response    %14.0f s\n", res.MeanResponse)
	fmt.Printf("median response  %14.0f s\n", res.MedianResponse)
	fmt.Printf("makespan         %14.0f s\n", res.Makespan)
	fmt.Printf("contiguous       %13.1f %%   avg components %.2f\n", res.PctContiguous, res.AvgComponents)
	fmt.Printf("network: %d messages, avg %.2f hops, avg latency %.3f s (scaled)\n",
		res.Net.Messages, res.Net.AvgHops(), res.Net.AvgLatency())

	if *heatmap {
		if len(dims) != 2 {
			fatal(fmt.Errorf("-heatmap renders 2-D meshes only (got %s)", *meshSpec))
		}
		fmt.Println("\nlink-utilization heatmap (0-9 per node, '.' = idle):")
		fmt.Print(renderHeatmap(res.NodeUtilization, dims[0], dims[1]))
	}

	if *disperse {
		if len(dims) != 2 {
			fatal(fmt.Errorf("-dispersal supports 2-D meshes only (got %s)", *meshSpec))
		}
		m := meshForDims(dims[0], dims[1], *torus)
		ms := make([]metrics.Dispersal, len(res.Records))
		sizes := make([]int, len(res.Records))
		for i, r := range res.Records {
			ms[i] = metrics.Measure(m, r.Nodes)
			sizes[i] = r.Size
		}
		s := metrics.Summarize(ms, sizes)
		fmt.Printf("\ndispersal over %d allocations:\n", s.N)
		fmt.Printf("  mean avg pairwise distance  %6.2f hops\n", s.MeanAvgPairwise)
		fmt.Printf("  mean bounding-box fill      %6.2f\n", s.MeanBoundingFill)
		fmt.Printf("  mean perimeter ratio        %6.2f (1.0 = ideal square)\n", s.MeanPerimeterRatio)
		fmt.Printf("  mean components             %6.2f\n", s.MeanComponents)
		fmt.Printf("  contiguous                  %6.1f %%\n", s.PctContiguous)
	}

	if *verbose {
		fmt.Println("\n  id  size     quota     response      runtime  pairwise  msgdist comps")
		for _, r := range res.Records {
			fmt.Printf("%4d  %4d  %8d  %11.0f  %11.0f  %8.2f  %7.2f  %4d\n",
				r.ID, r.Size, r.Quota, r.Response, r.RunTime, r.AvgPairwise, r.AvgMsgDist, r.Components)
		}
	}
}

// renderHeatmap draws per-node utilization as digit intensities.
func renderHeatmap(util []float64, w, h int) string {
	max := 0.0
	for _, u := range util {
		if u > max {
			max = u
		}
	}
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := util[y*w+x]
			switch {
			case u == 0 || max == 0:
				b.WriteByte('.')
			default:
				level := int(u / max * 9)
				if level > 9 {
					level = 9
				}
				b.WriteByte(byte('0' + level))
			}
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func meshForDims(w, h int, torus bool) *mesh.Mesh {
	if torus {
		return mesh.NewTorus(w, h)
	}
	return mesh.New(w, h)
}

func parseMesh(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	if len(parts) < 2 || len(parts) > topo.MaxDims {
		return nil, fmt.Errorf("bad mesh spec %q, want WxH or WxHxD", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		d, err := strconv.Atoi(p)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad mesh spec %q: extent %q", s, p)
		}
		dims[i] = d
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}
