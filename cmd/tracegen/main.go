// Command tracegen emits a synthetic SDSC-Paragon-like trace in the
// plain-text format understood by simrun's -trace flag, and prints the
// trace's summary statistics next to the published targets.
package main

import (
	"flag"
	"fmt"
	"os"

	"meshalloc/internal/trace"
)

func main() {
	var (
		jobs    = flag.Int("jobs", 6087, "number of jobs")
		maxSize = flag.Int("maxsize", 352, "maximum job size")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	// Fail fast on nonsense parameters: a -jobs 0 or -maxsize 0 typo in a
	// sweep script must die with a usage error here, not emit an empty or
	// degenerate trace that poisons every downstream simrun.
	if *jobs <= 0 {
		fmt.Fprintf(os.Stderr, "tracegen: -jobs must be positive (got %d)\n", *jobs)
		os.Exit(1)
	}
	if *maxSize <= 0 {
		fmt.Fprintf(os.Stderr, "tracegen: -maxsize must be positive (got %d)\n", *maxSize)
		os.Exit(1)
	}

	tr := trace.NewSDSC(trace.SDSCConfig{Jobs: *jobs, MaxSize: *maxSize, Seed: *seed})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	s := tr.Summarize()
	fmt.Fprintf(os.Stderr, "jobs %d (paper: 6087)\n", s.Jobs)
	fmt.Fprintf(os.Stderr, "mean interarrival %.0f s, CV %.2f (paper: 1301 s, 3.7)\n", s.MeanInterarrival, s.CVInterarrival)
	fmt.Fprintf(os.Stderr, "mean size %.1f, CV %.2f (paper: 14.5, 1.5)\n", s.MeanSize, s.CVSize)
	fmt.Fprintf(os.Stderr, "mean runtime %.0f s, CV %.2f (paper: 10944 s, 1.13)\n", s.MeanRuntime, s.CVRuntime)
}
