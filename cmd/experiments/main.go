// Command experiments regenerates the paper's figures and tables.
//
//	experiments                 # all figures at the scaled default
//	experiments -fig 7          # one figure
//	experiments -full           # the full 6087-job trace (slow)
//	experiments -jobs 3000      # custom trace length
//
// Output is a plain-text rendition of each figure's series or table, with
// derived statistics (Pearson correlations, gap lists) as notes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"meshalloc/internal/core"
	"meshalloc/internal/plot"
	"meshalloc/internal/sched"
)

func main() {
	var (
		figID     = flag.String("fig", "", "figure to regenerate (1, 6, 7, 8, 9, 10, 11, or an ext-* id); empty = all paper figures")
		jobs      = flag.Int("jobs", 0, "synthetic trace length (0 = scaled default)")
		scale     = flag.Float64("timescale", 0, "trace time contraction (0 = default 0.02)")
		seed      = flag.Int64("seed", 1, "random seed")
		full      = flag.Bool("full", false, "replay the full 6087-job trace (slow)")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations; grid cells and replications share one worker pool and output is identical at any value (0 = GOMAXPROCS)")
		reps      = flag.Int("reps", 1, "replications per configuration on independent derived RNG streams (mean ± sd across seeds)")
		ext       = flag.Bool("ext", false, "also run the extension experiments (ext-contiguous, ext-scheduler, ext-routing, ext-mixed, ext-cube, ext-cube3d, ext-steady, ext-faults)")
		schedName = flag.String("sched", "", "scheduling policy for extension runs (fcfs, easy or sjf; empty = each experiment's default)")
		csvDir    = flag.String("csv", "", "also write each figure as <dir>/<id>.csv")
		doPlot    = flag.Bool("plot", false, "render ASCII charts for figures with series data")
		check     = flag.Bool("check", false, "run the reproduction scorecard instead of figures")
	)
	flag.Parse()

	// Reject typo'd -fig and -sched values up front with the list of
	// valid names: a silently defaulted or late-failing value masks the
	// typo in sweep scripts.
	if *figID != "" && !validFigID(*figID) {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\nvalid -fig values: %s (or figN), %s\n",
			*figID, strings.Join(core.AllFigureIDs(), ", "), strings.Join(core.AllExtensionIDs(), ", "))
		os.Exit(1)
	}
	if *schedName != "" {
		if _, err := sched.ByName(*schedName); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v (valid -sched values: fcfs, easy, sjf)\n", err)
			os.Exit(1)
		}
	}

	opt := core.Options{Jobs: *jobs, TimeScale: *scale, Seed: *seed, Parallelism: *parallel, Replications: *reps, Scheduler: *schedName}
	if *full {
		opt.Jobs = 6087
	}

	if *check {
		results, err := core.Check(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(core.RenderChecks(results))
		for _, r := range results {
			if !r.Pass {
				os.Exit(1)
			}
		}
		return
	}

	ids := core.AllFigureIDs()
	if *ext {
		ids = append(ids, core.AllExtensionIDs()...)
	}
	if *figID != "" {
		ids = []string{*figID}
	}
	for _, id := range ids {
		start := time.Now()
		fig, err := runExperiment(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := fig.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, fig); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
		if *doPlot {
			printCharts(fig)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", fig.ID, time.Since(start).Round(time.Millisecond))
	}
}

// validFigID reports whether id names a paper figure ("7" or "fig7") or
// an extension experiment ("ext-*").
func validFigID(id string) bool {
	for _, f := range core.AllFigureIDs() {
		if id == f || id == "fig"+f {
			return true
		}
	}
	for _, e := range core.AllExtensionIDs() {
		if id == e {
			return true
		}
	}
	return false
}

// runExperiment dispatches paper figures and extension experiments.
func runExperiment(id string, opt core.Options) (*core.Figure, error) {
	if len(id) >= 4 && id[:4] == "ext-" {
		return core.ExtensionByID(id, opt)
	}
	return core.FigureByID(id, opt)
}

// printCharts renders a figure's series as ASCII charts, one chart per
// label-prefix group (figures 7 and 8 carry one group per pattern).
func printCharts(fig *core.Figure) {
	if len(fig.Series) == 0 {
		return
	}
	groups := map[string][]plot.Series{}
	var order []string
	for _, s := range fig.Series {
		prefix := s.Label
		if i := strings.IndexByte(prefix, ' '); i > 0 {
			prefix = prefix[:i]
		}
		if _, ok := groups[prefix]; !ok {
			order = append(order, prefix)
		}
		groups[prefix] = append(groups[prefix], plot.Series{Label: s.Label, X: s.X, Y: s.Y})
	}
	for _, prefix := range order {
		invert := len(groups[prefix]) > 0 && strings.Contains(fig.Title, "load")
		fmt.Println(plot.Render(plot.Config{
			Title:   fmt.Sprintf("%s — %s", fig.ID, prefix),
			XLabel:  "x",
			YLabel:  "y",
			InvertX: invert,
		}, groups[prefix]))
	}
}

// writeCSV saves one figure's data under dir.
func writeCSV(dir string, fig *core.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, fig.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return fig.WriteCSV(f)
}
