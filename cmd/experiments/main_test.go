package main

import (
	"bytes"
	"testing"

	"meshalloc/internal/core"
)

// render runs one experiment in process and returns the bytes the CLI
// would print for it — the same Render path main uses.
func render(t *testing.T, id string, opt core.Options) []byte {
	t.Helper()
	fig, err := runExperiment(id, opt)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelFlagDoesNotChangeOutput is the CLI determinism smoke
// test: `-reps 3 -parallel 2` must print exactly the tables that
// `-reps 3 -parallel 1` prints, for a figure grid and for the
// ext-steady extension (which consumes -parallel through the same
// sweep fabric).
func TestParallelFlagDoesNotChangeOutput(t *testing.T) {
	for _, id := range []string{"7", "ext-steady"} {
		opt := core.Options{Jobs: 60, TimeScale: 0.01, Seed: 1,
			Loads: []float64{0.4}, Replications: 3, Parallelism: 1}
		seq := render(t, id, opt)
		opt.Parallelism = 2
		if par := render(t, id, opt); !bytes.Equal(seq, par) {
			t.Fatalf("%s: -parallel 2 output differs from -parallel 1:\n--- parallel 1 ---\n%s\n--- parallel 2 ---\n%s",
				id, seq, par)
		}
	}
}

// TestRunExperimentDispatch checks both dispatch arms resolve.
func TestRunExperimentDispatch(t *testing.T) {
	if _, err := runExperiment("nope", core.Options{}); err == nil {
		t.Fatal("unknown figure id must error")
	}
	if _, err := runExperiment("ext-nope", core.Options{}); err == nil {
		t.Fatal("unknown extension id must error")
	}
}
