// Benchmarks regenerating every table and figure of the paper at a
// reduced scale, plus the ablation benches for the design choices called
// out in DESIGN.md and micro-benchmarks of the substrates.
//
// The figure benches report the experiment's headline quantity (mean
// response time, Pearson r, percent contiguous) through b.ReportMetric so
// `go test -bench` doubles as a tabular summary of the reproduction.
package meshalloc

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"meshalloc/internal/alloc"
	"meshalloc/internal/binpack"
	"meshalloc/internal/core"
	"meshalloc/internal/curve"
	"meshalloc/internal/fault"
	"meshalloc/internal/mesh"
	"meshalloc/internal/netsim"
	"meshalloc/internal/sim"
	"meshalloc/internal/topo"
	"meshalloc/internal/trace"
)

// reportMetric forwards a headline metric to the bench framework and,
// when the BENCH_JSON environment variable names a file, to the JSON
// collector flushed by TestMain — the machine-readable counterpart of
// the `go test -bench` table (see BENCH.md).
func reportMetric(b *testing.B, unit string, v float64) {
	b.Helper()
	b.ReportMetric(v, unit)
	recordMetric(b.Name(), unit, v)
}

// benchEntry is one (benchmark, metric) observation in BENCH_JSON.
type benchEntry struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
}

// benchHost describes the machine a BENCH_*.json artifact was produced
// on, so single-core results (where parallel speedups are honestly ~1x)
// are self-describing. See BENCH.md for the schema.
type benchHost struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

var benchJSON struct {
	mu      sync.Mutex
	entries []benchEntry
}

func recordMetric(name, unit string, v float64) {
	benchJSON.mu.Lock()
	defer benchJSON.mu.Unlock()
	// Benches report once per b.N iteration; keep the latest value per
	// (benchmark, metric) so reruns overwrite instead of duplicating.
	for i := range benchJSON.entries {
		if benchJSON.entries[i].Benchmark == name && benchJSON.entries[i].Metric == unit {
			benchJSON.entries[i].Value = v
			return
		}
	}
	benchJSON.entries = append(benchJSON.entries, benchEntry{Benchmark: name, Metric: unit, Value: v})
}

// TestMain flushes collected bench metrics to the file named by
// BENCH_JSON (e.g. BENCH_2.json) after the run:
//
//	BENCH_JSON=BENCH_2.json go test -run '^$' -bench 'Fig|Ablation|ExtContiguous|Cube3D' -benchtime 1x .
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" {
		benchJSON.mu.Lock()
		entries := benchJSON.entries
		benchJSON.mu.Unlock()
		if len(entries) > 0 {
			sort.Slice(entries, func(i, j int) bool {
				if entries[i].Benchmark != entries[j].Benchmark {
					return entries[i].Benchmark < entries[j].Benchmark
				}
				return entries[i].Metric < entries[j].Metric
			})
			doc := struct {
				Host    benchHost    `json:"host"`
				Entries []benchEntry `json:"entries"`
			}{
				Host: benchHost{
					GoVersion:  runtime.Version(),
					GOOS:       runtime.GOOS,
					GOARCH:     runtime.GOARCH,
					GOMAXPROCS: runtime.GOMAXPROCS(0),
					NumCPU:     runtime.NumCPU(),
				},
				Entries: entries,
			}
			out, err := json.MarshalIndent(doc, "", "  ")
			if err == nil {
				err = os.WriteFile(path, append(out, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench json:", err)
				code = 1
			}
		}
	}
	os.Exit(code)
}

// benchOpt is the reduced experiment scale used by the figure benches.
func benchOpt() core.Options {
	return core.Options{Jobs: 300, TimeScale: 0.01, Seed: 1, Loads: []float64{1.0, 0.2}}
}

// benchTrace returns a small shared workload for single-run benches.
func benchTrace(jobs, maxSize int) *trace.Trace {
	return trace.NewSDSC(trace.SDSCConfig{Jobs: jobs, MaxSize: maxSize, Seed: 1}).FilterMaxSize(maxSize)
}

func BenchmarkFig1TestSuiteCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := core.Fig1(core.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		reportPearson(b, fig)
	}
}

func BenchmarkFig6Truncation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := core.Fig6()
		if len(fig.Tables) != 2 {
			b.Fatal("fig6 incomplete")
		}
	}
}

// benchResponseFigure runs one pattern/mesh slice of Figures 7/8 and
// reports the best and worst allocator's mean response at 5x load.
func benchResponseFigure(b *testing.B, w, h int, pattern string) {
	tr := benchTrace(300, w*h)
	for i := 0; i < b.N; i++ {
		best, worst := "", ""
		bestY, worstY := 0.0, 0.0
		for _, spec := range alloc.Specs() {
			res, err := sim.Run(sim.Config{
				MeshW: w, MeshH: h,
				Alloc: spec, Pattern: pattern,
				Load: 0.2, TimeScale: 0.01, Seed: 1,
			}, tr)
			if err != nil {
				b.Fatal(err)
			}
			if best == "" || res.MeanResponse < bestY {
				best, bestY = spec, res.MeanResponse
			}
			if worst == "" || res.MeanResponse > worstY {
				worst, worstY = spec, res.MeanResponse
			}
		}
		reportMetric(b, "best_resp_s", bestY)
		reportMetric(b, "worst_resp_s", worstY)
		if i == 0 {
			b.Logf("%s %dx%d: best %s (%.0f s), worst %s (%.0f s)", pattern, w, h, best, bestY, worst, worstY)
		}
	}
}

func BenchmarkFig7aAllToAll16x22(b *testing.B) { benchResponseFigure(b, 16, 22, "alltoall") }
func BenchmarkFig7bNBody16x22(b *testing.B)    { benchResponseFigure(b, 16, 22, "nbody") }
func BenchmarkFig7cRandom16x22(b *testing.B)   { benchResponseFigure(b, 16, 22, "random") }
func BenchmarkFig8aAllToAll16x16(b *testing.B) { benchResponseFigure(b, 16, 16, "alltoall") }
func BenchmarkFig8bNBody16x16(b *testing.B)    { benchResponseFigure(b, 16, 16, "nbody") }
func BenchmarkFig8cRandom16x16(b *testing.B)   { benchResponseFigure(b, 16, 16, "random") }

func BenchmarkFig9PairwiseDistance(b *testing.B) {
	opt := core.Options{Jobs: 1200, TimeScale: 0.01, Seed: 1}
	for i := 0; i < b.N; i++ {
		fig, err := core.Fig9(opt)
		if err != nil {
			b.Fatal(err)
		}
		reportPearson(b, fig)
	}
}

func BenchmarkFig10MessageDistance(b *testing.B) {
	opt := core.Options{Jobs: 1200, TimeScale: 0.01, Seed: 1}
	for i := 0; i < b.N; i++ {
		fig, err := core.Fig10(opt)
		if err != nil {
			b.Fatal(err)
		}
		reportPearson(b, fig)
	}
}

func BenchmarkFig11Contiguity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := core.Fig11(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		// Top row's contiguity percentage.
		var pct float64
		fmt.Sscanf(fig.Tables[0].Rows[0][1], "%g%%", &pct)
		reportMetric(b, "top_pct_contig", pct)
	}
}

func reportPearson(b *testing.B, fig *core.Figure) {
	b.Helper()
	for _, n := range fig.Notes {
		var r float64
		if i := indexOf(n, "Pearson r = "); i >= 0 {
			if _, err := fmt.Sscanf(n[i:], "Pearson r = %g", &r); err == nil {
				reportMetric(b, "pearson_r", r)
				return
			}
		}
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

func ablationRun(b *testing.B, mutate func(*sim.Config)) float64 {
	b.Helper()
	tr := benchTrace(250, 256)
	cfg := sim.Config{
		MeshW: 16, MeshH: 16,
		Alloc: "hilbert/bestfit", Pattern: "nbody",
		Load: 0.4, TimeScale: 0.01, Seed: 1,
	}
	mutate(&cfg)
	res, err := sim.Run(cfg, tr)
	if err != nil {
		b.Fatal(err)
	}
	return res.MeanResponse
}

func BenchmarkAblationIssueMode(b *testing.B) {
	for _, mode := range []sim.IssueMode{sim.IssuePhased, sim.IssueSequential} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				y := ablationRun(b, func(c *sim.Config) { c.Issue = mode })
				reportMetric(b, "mean_resp_s", y)
			}
		})
	}
}

func BenchmarkAblationStrategy(b *testing.B) {
	for _, strat := range []string{"hilbert", "hilbert/firstfit", "hilbert/bestfit", "hilbert/sumofsquares"} {
		b.Run(strat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				y := ablationRun(b, func(c *sim.Config) { c.Alloc = strat })
				reportMetric(b, "mean_resp_s", y)
			}
		})
	}
}

func BenchmarkAblationTruncation(b *testing.B) {
	// S-curve runs along the short versus long dimension on the
	// non-square 16x22 mesh.
	tr := benchTrace(250, 352)
	for _, spec := range []string{"scurve/bestfit", "scurve-long/bestfit"} {
		b.Run(spec, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					MeshW: 16, MeshH: 22,
					Alloc: spec, Pattern: "nbody",
					Load: 0.4, TimeScale: 0.01, Seed: 1,
				}, tr)
				if err != nil {
					b.Fatal(err)
				}
				reportMetric(b, "mean_resp_s", res.MeanResponse)
			}
		})
	}
}

func BenchmarkAblationFlits(b *testing.B) {
	for _, flits := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("flits%d", flits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				y := ablationRun(b, func(c *sim.Config) {
					c.Net = netsim.DefaultConfig()
					c.Net.MessageFlits = flits
				})
				reportMetric(b, "mean_resp_s", y)
			}
		})
	}
}

func BenchmarkAblationMCShape(b *testing.B) {
	for _, spec := range []string{"mc", "mc1x1"} {
		b.Run(spec, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				y := ablationRun(b, func(c *sim.Config) { c.Alloc = spec })
				reportMetric(b, "mean_resp_s", y)
			}
		})
	}
}

func BenchmarkAblationRouting(b *testing.B) {
	for _, r := range []netsim.Routing{netsim.RouteXY, netsim.RouteYX, netsim.RouteAdaptive} {
		b.Run(r.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				y := ablationRun(b, func(c *sim.Config) {
					c.Net = netsim.DefaultConfig()
					c.Net.Routing = r
				})
				reportMetric(b, "mean_resp_s", y)
			}
		})
	}
}

func BenchmarkExtContiguousBaselines(b *testing.B) {
	tr := benchTrace(200, 256)
	for _, spec := range []string{"buddy", "submesh", "hilbert/bestfit"} {
		b.Run(spec, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					MeshW: 16, MeshH: 16,
					Alloc: spec, Pattern: "alltoall",
					Load: 0.4, TimeScale: 0.01, Seed: 1,
				}, tr)
				if err != nil {
					b.Fatal(err)
				}
				reportMetric(b, "utilization_pct", res.UtilizationPct)
				reportMetric(b, "mean_resp_s", res.MeanResponse)
			}
		})
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	for _, sch := range []string{"fcfs", "easy"} {
		b.Run(sch, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				y := ablationRun(b, func(c *sim.Config) { c.Scheduler = sch })
				reportMetric(b, "mean_resp_s", y)
			}
		})
	}
}

// BenchmarkAblationCube3D probes the tentpole question of the 3-D
// extension: how much contention signal does the paper's 2-D projection
// of CPlant lose versus native 3-D allocation? Same machine, same
// trace; only the allocator's view of the topology changes.
func BenchmarkAblationCube3D(b *testing.B) {
	tr := benchTrace(250, 512)
	for _, spec := range []string{"hilbert/bestfit", "proj2d-hilbert/bestfit", "hilbert", "proj2d-hilbert", "mc1x1"} {
		b.Run(spec, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Dims:  []int{8, 8, 8},
					Alloc: spec, Pattern: "nbody",
					Load: 0.2, TimeScale: 0.01, Seed: 1,
				}, tr)
				if err != nil {
					b.Fatal(err)
				}
				reportMetric(b, "mean_resp_s", res.MeanResponse)
				reportMetric(b, "avg_hops", res.Net.AvgHops())
			}
		})
	}
}

// --- Engine / open-system benches (see BENCH.md: BENCH_4.json) ---

// BenchmarkEngineVsBatch compares the batch Run wrapper against the
// streaming engine on the same closed workload: "batch" retains every
// record and node slice, "engine-discard" streams records through an
// observer and keeps O(1) per-job state. The outputs agree exactly
// (see sim's equivalence tests); the difference is wall time and
// allocated bytes, reported per job for BENCH_4.json.
func BenchmarkEngineVsBatch(b *testing.B) {
	const jobs = 5000
	tr := benchTrace(jobs, 256)
	cfg := sim.Config{
		MeshW: 16, MeshH: 16,
		Alloc: "hilbert/bestfit", Pattern: "nbody",
		Load: 0.4, TimeScale: 0.01, Seed: 1,
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(cfg, tr)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Records) != jobs {
				b.Fatal("short run")
			}
		}
		reportMetric(b, "ns_per_job", float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs))
	})
	b.Run("engine-discard", func(b *testing.B) {
		scfg := cfg
		scfg.KeepRecords, scfg.KeepNodes = sim.Discard, sim.Discard
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := sim.NewEngine(scfg)
			if err != nil {
				b.Fatal(err)
			}
			count := 0
			e.Observe(func(sim.JobRecord) { count++ })
			if err := e.RunSource(tr.Source(), 0); err != nil {
				b.Fatal(err)
			}
			if count != jobs {
				b.Fatal("short run")
			}
		}
		reportMetric(b, "ns_per_job", float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs))
	})
}

// BenchmarkOpenSystemMillionJobs is the scale acceptance bench: one
// million open-system jobs through a Discard engine. Tiny message
// quotas keep the bench about event-loop and allocation machinery, not
// network arithmetic; bytes_per_job and live_heap_mb document the
// constant-memory claim in BENCH_4.json. Since PR 9 the run also
// reports events_per_sec (engine event-core counter over wall time) and
// peak_live_heap_mb (HeapAlloc sampled every 50k finishes) — the
// BENCH_9.json headline numbers guarded by cmd/benchcheck in CI.
func BenchmarkOpenSystemMillionJobs(b *testing.B) {
	const jobs = 1_000_000
	var m0, m1 runtime.MemStats
	var events int64
	peakHeap := uint64(0)
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{
			MeshW: 16, MeshH: 16,
			Alloc: "hilbert/bestfit", Pattern: "nbody",
			Seed:          1,
			MsgsPerSecond: 1e-4,
			KeepRecords:   sim.Discard,
			KeepNodes:     sim.Discard,
		}
		e, err := sim.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		var ms runtime.MemStats
		e.Observe(func(sim.JobRecord) {
			count++
			// A stop-the-world ReadMemStats every 50k jobs is ~20 samples
			// across the run: enough to catch live-heap growth, too rare
			// to perturb the timing measurably.
			if count%50_000 == 0 {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap {
					peakHeap = ms.HeapAlloc
				}
			}
		})
		if err := e.RunSource(trace.Limit(trace.NewPoisson(1000, 256, 1), jobs), 0); err != nil {
			b.Fatal(err)
		}
		if count != jobs {
			b.Fatalf("finished %d jobs", count)
		}
		res := e.Result()
		if res.Jobs != jobs || res.MeanResponse <= 0 {
			b.Fatalf("degenerate result: %+v", res)
		}
		events += e.CoreStats().Events
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	reportMetric(b, "ns_per_job", float64(b.Elapsed().Nanoseconds())/float64(b.N*jobs))
	reportMetric(b, "bytes_per_job", float64(m1.TotalAlloc-m0.TotalAlloc)/float64(uint64(b.N)*jobs))
	reportMetric(b, "live_heap_mb", float64(m1.HeapAlloc)/(1<<20))
	reportMetric(b, "peak_live_heap_mb", float64(peakHeap)/(1<<20))
	reportMetric(b, "events_per_sec", float64(events)/b.Elapsed().Seconds())
}

// --- Event-core overhaul benches (see BENCH.md: BENCH_9.json) ---

// BenchmarkEventCore isolates the event-queue choice: the same 100k-job
// open-system workload through the calendar queue and the retained
// binary heap, everything else identical (both runs produce bit-equal
// results; sim's equivalence tests pin that). ns_per_event divides wall
// time by the engine's own event counter.
func BenchmarkEventCore(b *testing.B) {
	const jobs = 100_000
	for _, equeue := range []string{"calendar", "heap"} {
		b.Run(equeue, func(b *testing.B) {
			var events int64
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{
					MeshW: 16, MeshH: 16,
					Alloc: "hilbert/bestfit", Pattern: "nbody",
					Seed:          1,
					MsgsPerSecond: 1e-4,
					EventQueue:    equeue,
					KeepRecords:   sim.Discard,
					KeepNodes:     sim.Discard,
				}
				e, err := sim.NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.RunSource(trace.Limit(trace.NewPoisson(1000, 256, 1), jobs), 0); err != nil {
					b.Fatal(err)
				}
				cs := e.CoreStats()
				if cs.Events == 0 || cs.CalFellBack {
					b.Fatalf("degenerate run: %+v", cs)
				}
				events += cs.Events
			}
			reportMetric(b, "ns_per_event", float64(b.Elapsed().Nanoseconds())/float64(events))
			reportMetric(b, "events_per_sec", float64(events)/b.Elapsed().Seconds())
		})
	}
}

// BenchmarkSchedulerRound isolates the incremental scheduler state: the
// EASY backfill policy — the one whose shadow-time scan used to copy and
// sort the running set every round — over a saturated closed workload,
// with the persistent end-time-ordered index against the retained
// rebuild-per-round reference. ns_per_round divides wall time by rounds
// actually run (head-blocked skips are the watermark's job and count for
// neither side; EASY never skips).
func BenchmarkSchedulerRound(b *testing.B) {
	tr := benchTrace(5000, 256)
	for _, variant := range []string{"incremental", "rebuild"} {
		b.Run(variant, func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{
					MeshW: 16, MeshH: 16,
					Alloc: "hilbert/bestfit", Pattern: "nbody",
					Load: 0.4, TimeScale: 0.01, Seed: 1,
					Scheduler:    "easy",
					RebuildSched: variant == "rebuild",
					KeepRecords:  sim.Discard,
					KeepNodes:    sim.Discard,
				}
				e, err := sim.NewEngine(cfg)
				if err != nil {
					b.Fatal(err)
				}
				count := 0
				e.Observe(func(sim.JobRecord) { count++ })
				if err := e.RunSource(tr.Source(), 0); err != nil {
					b.Fatal(err)
				}
				if count != len(tr.Jobs) {
					b.Fatal("short run")
				}
				rounds += e.CoreStats().SchedRounds
			}
			reportMetric(b, "ns_per_round", float64(b.Elapsed().Nanoseconds())/float64(rounds))
		})
	}
}

// --- Parallel experiment fabric (see BENCH.md: BENCH_5.json) ---

// benchSweepScaling runs one replicated experiment at several worker
// counts and reports wall_s per count plus the speedup of the widest
// pool over the sequential run. Because the fabric is bit-deterministic
// the runs produce identical figures — only wall_s moves, and only with
// real cores: on a single-core host every worker count reports ~the
// same wall time (the honest result; see BENCH.md).
func benchSweepScaling(b *testing.B, name string, build func(core.Options) (*core.Figure, error)) {
	var wall [4]float64
	counts := []int{1, 2, 4, 8}
	for ci, workers := range counts {
		b.Run(fmt.Sprintf("%s/workers%d", name, workers), func(b *testing.B) {
			opt := core.Options{Jobs: 120, TimeScale: 0.01, Seed: 1,
				Loads: []float64{1.0, 0.4}, Replications: 4, Parallelism: workers}
			for i := 0; i < b.N; i++ {
				fig, err := build(opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(fig.Series) == 0 && len(fig.Tables) == 0 {
					b.Fatal("empty figure")
				}
			}
			wall[ci] = b.Elapsed().Seconds() / float64(b.N)
			reportMetric(b, "wall_s", wall[ci])
			if ci > 0 && wall[0] > 0 {
				reportMetric(b, "speedup_vs_seq", wall[0]/wall[ci])
			}
		})
	}
}

// BenchmarkParallelSweepFig7b scales the replicated Figure 7(b) grid —
// 9 allocators x 2 loads x 4 replications — across the sweep pool.
func BenchmarkParallelSweepFig7b(b *testing.B) {
	benchSweepScaling(b, "fig7b", func(o core.Options) (*core.Figure, error) {
		return core.Fig7(o)
	})
}

// BenchmarkParallelSweepExtSteady scales the replicated open-system
// steady-state table, whose reduction exercises the streaming merges.
func BenchmarkParallelSweepExtSteady(b *testing.B) {
	benchSweepScaling(b, "ext-steady", func(o core.Options) (*core.Figure, error) {
		return core.ExtSteady(o)
	})
}

// BenchmarkAllocateParallel times the sharded candidate scan against
// the sequential loop on a large machine at realistic occupancy. The
// parallel scan answers are bit-identical (see alloc's parallel tests);
// the question here is only the goroutine overhead versus core count.
func BenchmarkAllocateParallel(b *testing.B) {
	variants := []struct {
		name string
		mk   func(*topo.Grid) alloc.Allocator
	}{
		{"mc", func(g *topo.Grid) alloc.Allocator { return alloc.NewMC(g) }},
		{"genalg", func(g *topo.Grid) alloc.Allocator { return alloc.NewGenAlg(g) }},
	}
	for _, v := range variants {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("32x32/%s/workers%d", v.name, workers), func(b *testing.B) {
				g := topo.New([]int{32, 32})
				a := v.mk(g)
				a.(alloc.ParallelScorer).SetParallelism(workers)
				prefillAllocator(b, a, g.Size())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ids, err := a.Allocate(alloc.Request{Size: 64})
					if err != nil {
						b.Fatal(err)
					}
					a.Release(ids)
				}
				reportMetric(b, "ns_per_alloc", float64(b.Elapsed().Nanoseconds())/float64(b.N))
			})
		}
	}
}

// --- Micro-benchmarks of the substrates ---

func BenchmarkAllocate(b *testing.B) {
	m := mesh.New(16, 22)
	for _, spec := range alloc.Specs() {
		b.Run(spec, func(b *testing.B) {
			a, err := alloc.Spec(m.Grid(), spec, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids, err := a.Allocate(alloc.Request{Size: 16})
				if err != nil {
					b.Fatal(err)
				}
				a.Release(ids)
			}
		})
	}
}

// prefillAllocator drives the allocator to a realistic mixed occupancy:
// a deterministic stream of mixed-size jobs is allocated until the
// machine is ~97% busy — the paper's Figure 7/8 runs push machines past
// saturation, where utilization sits in the 80-95% band — and then
// every fifth job is released, leaving ~80% busy with scattered
// mixed-size holes in the allocator's own placement pattern. Because
// the indexed and reference scorers are bit-identical, both reach the
// exact same state and the benchmark compares pure scoring cost.
func prefillAllocator(b *testing.B, a alloc.Allocator, total int) {
	b.Helper()
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	var live [][]int
	for a.NumFree() > total*3/100 {
		size := 1 + next(32)
		if size > a.NumFree() {
			size = a.NumFree()
		}
		ids, err := a.Allocate(alloc.Request{Size: size})
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, ids)
	}
	for i := 0; i < len(live); i += 5 {
		a.Release(live[i])
	}
}

// BenchmarkAllocateLarge times the MC-family and Gen-Alg scorers on
// production-scale machines at realistic mixed occupancy, with the
// retained reference (pre-index) scorers alongside for the
// before/after comparison. The ns_per_alloc metric feeds BENCH_JSON
// (see BENCH.md: BENCH_3.json).
func BenchmarkAllocateLarge(b *testing.B) {
	machines := []struct {
		name string
		dims []int
	}{
		{"32x32", []int{32, 32}},
		{"16x16x16", []int{16, 16, 16}},
	}
	variants := []struct {
		name string
		mk   func(*topo.Grid) alloc.Allocator
	}{
		{"mc", func(g *topo.Grid) alloc.Allocator { return alloc.NewMC(g) }},
		{"mc/naive", func(g *topo.Grid) alloc.Allocator { return alloc.NewMCNaive(g) }},
		{"mc1x1", func(g *topo.Grid) alloc.Allocator { return alloc.NewMC1x1(g) }},
		{"mc1x1/naive", func(g *topo.Grid) alloc.Allocator { return alloc.NewMC1x1Naive(g) }},
		{"genalg", func(g *topo.Grid) alloc.Allocator { return alloc.NewGenAlg(g) }},
		{"genalg/naive", func(g *topo.Grid) alloc.Allocator { return alloc.NewGenAlgNaive(g) }},
	}
	for _, m := range machines {
		for _, v := range variants {
			b.Run(m.name+"/"+v.name, func(b *testing.B) {
				g := topo.New(m.dims)
				a := v.mk(g)
				prefillAllocator(b, a, g.Size())
				// A 64-processor request is a typical SDSC-trace job on a
				// machine this size (the trace mean is 10-30% of the
				// machine); tiny requests under-state scoring cost.
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ids, err := a.Allocate(alloc.Request{Size: 64})
					if err != nil {
						b.Fatal(err)
					}
					a.Release(ids)
				}
				reportMetric(b, "ns_per_alloc", float64(b.Elapsed().Nanoseconds())/float64(b.N))
			})
		}
	}
}

// prefillPacker drives a bin-packer to the same ~80% mixed occupancy as
// prefillAllocator, leaving scattered mixed-size holes in curve-rank
// space so interval enumeration crosses many free runs.
func prefillPacker(b *testing.B, p *binpack.Packer, total int) {
	b.Helper()
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	var live [][]int
	for p.NumFree() > total*3/100 {
		size := 1 + next(32)
		if size > p.NumFree() {
			size = p.NumFree()
		}
		ids, err := p.Allocate(size, binpack.FirstFit)
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, ids)
	}
	for i := 0; i < len(live); i += 5 {
		p.Release(live[i])
	}
}

// BenchmarkBitsetScan times first-fit and best-fit candidate enumeration
// over the word-parallel bitset free map against the retained naive
// rank-by-rank walk, at mixed occupancy on 32x32 and 16x16x16 machines.
// The speedup_word_vs_naive metric in BENCH_7.json is PR 7's >= 3x
// acceptance bar (see BENCH.md).
func BenchmarkBitsetScan(b *testing.B) {
	machines := []struct {
		name string
		dims []int
	}{
		{"32x32", []int{32, 32}},
		{"16x16x16", []int{16, 16, 16}},
	}
	for _, m := range machines {
		order, err := curve.GridOrder(curve.Hilbert{}, m.dims)
		if err != nil {
			b.Fatal(err)
		}
		for _, strat := range []binpack.Strategy{binpack.FirstFit, binpack.BestFit} {
			var wall [2]float64
			for vi, variant := range []string{"word", "naive"} {
				b.Run(fmt.Sprintf("%s/%s/%s", m.name, strat, variant), func(b *testing.B) {
					p := binpack.New(order)
					p.SetWordScan(variant == "word")
					prefillPacker(b, p, len(order))
					// A small request keeps the shared Allocate/Release
					// bookkeeping (id slice, rank marking) from drowning
					// out the interval enumeration under measurement.
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ids, err := p.Allocate(8, strat)
						if err != nil {
							b.Fatal(err)
						}
						p.Release(ids)
					}
					wall[vi] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
					reportMetric(b, "ns_per_alloc", wall[vi])
					if vi == 1 && wall[1] > 0 {
						reportMetric(b, "speedup_word_vs_naive", wall[1]/wall[0])
					}
				})
			}
		}
	}
}

// BenchmarkIncrementalMC times the MC scorer's same-size steady state —
// the workload where cached candidate scores survive between jobs — with
// the incremental score cache on versus the full per-event rescan (the
// PR 3 index path). Both runs allocate bit-identically; only the share
// of candidates rescored per event differs (BENCH_7.json; see BENCH.md).
func BenchmarkIncrementalMC(b *testing.B) {
	machines := []struct {
		name string
		dims []int
	}{
		{"32x32", []int{32, 32}},
		{"16x16x16", []int{16, 16, 16}},
	}
	for _, m := range machines {
		for _, size := range []int{16, 64} {
			var wall [2]float64
			for vi, variant := range []string{"cached", "rescan"} {
				b.Run(fmt.Sprintf("%s/size%d/%s", m.name, size, variant), func(b *testing.B) {
					g := topo.New(m.dims)
					a := alloc.NewMC(g)
					if variant == "rescan" {
						a.SetScoreCache(false)
					}
					prefillAllocator(b, a, g.Size())
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ids, err := a.Allocate(alloc.Request{Size: size})
						if err != nil {
							b.Fatal(err)
						}
						a.Release(ids)
					}
					wall[vi] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
					reportMetric(b, "ns_per_alloc", wall[vi])
					if vi == 1 && wall[1] > 0 {
						reportMetric(b, "speedup_cached_vs_rescan", wall[1]/wall[0])
					}
				})
			}
		}
	}
}

// BenchmarkFaultInjection runs the same workload fault-free and under
// dense exponential node failures for a curve allocator, an MC form
// and the contiguous submesh baseline, reporting goodput, wasted work
// and response degradation — the PR 8 headline numbers (BENCH_8.json;
// see BENCH.md). The fault-free rows double as the regression guard
// that fault plumbing costs the clean path nothing measurable.
func BenchmarkFaultInjection(b *testing.B) {
	tr := benchTrace(250, 128)
	for _, spec := range []string{"hilbert/bestfit", "mc1x1", "submesh"} {
		for _, faulty := range []bool{false, true} {
			name := spec + "/clean"
			if faulty {
				name = spec + "/dense"
			}
			b.Run(name, func(b *testing.B) {
				cfg := sim.Config{
					MeshW: 16, MeshH: 16,
					Alloc: spec, Pattern: "nbody",
					Load: 0.4, TimeScale: 0.01, Seed: 1,
				}
				if faulty {
					cfg.Faults = fault.Config{
						MTBF: fault.Dist{Kind: fault.DistExponential, Mean: 3e5},
						MTTR: fault.Dist{Kind: fault.DistExponential, Mean: 1.5e4},
					}
					cfg.Retry = fault.Retry{
						Kind: fault.RetryBackoff, Base: 60, Cap: 3600, MaxAttempts: 4,
					}
				}
				for i := 0; i < b.N; i++ {
					res, err := sim.Run(cfg, tr)
					if err != nil {
						b.Fatal(err)
					}
					reportMetric(b, "mean_resp_s", res.MeanResponse)
					if faulty {
						reportMetric(b, "goodput_pct", res.GoodputPct)
						reportMetric(b, "wasted_pct", res.WastedPct)
						reportMetric(b, "down_pct", res.DownPct)
						reportMetric(b, "kills", float64(res.Killed))
					}
				}
				reportMetric(b, "ns_per_job", float64(b.Elapsed().Nanoseconds())/float64(b.N*len(tr.Jobs)))
			})
		}
	}
}

// BenchmarkFaultStream times raw failure-schedule generation: one
// simulated year of dense exponential failure/repair churn across a
// 1024-node machine, no simulator attached.
func BenchmarkFaultStream(b *testing.B) {
	cfg := fault.Config{
		Seed: 1,
		MTBF: fault.Dist{Kind: fault.DistExponential, Mean: 3e5},
		MTTR: fault.Dist{Kind: fault.DistExponential, Mean: 1.5e4},
	}
	for i := 0; i < b.N; i++ {
		s, err := fault.NewStream(cfg, 1024)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			ev, ok := s.Next()
			if !ok || ev.T > 365*86400 {
				break
			}
			n++
		}
		if n == 0 {
			b.Fatal("no events")
		}
		reportMetric(b, "events_per_year", float64(n))
	}
}

func BenchmarkNetworkSend(b *testing.B) {
	m := mesh.New(16, 22)
	n := netsim.New(m.Grid(), netsim.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(i%m.Size(), (i*7+13)%m.Size(), float64(i))
	}
}

func BenchmarkNetworkSend3D(b *testing.B) {
	g := topo.New([]int{8, 8, 8})
	n := netsim.New(g, netsim.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(i%g.Size(), (i*7+13)%g.Size(), float64(i))
	}
}

func BenchmarkCurveOrder(b *testing.B) {
	for _, name := range curve.All() {
		b.Run(name, func(b *testing.B) {
			c, err := curve.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if got := c.Order(16, 22); len(got) != 352 {
					b.Fatal("bad order")
				}
			}
		})
	}
}

func BenchmarkBinpackStrategies(b *testing.B) {
	order := curve.Hilbert{}.Order(16, 22)
	for _, s := range []binpack.Strategy{binpack.FreeList, binpack.FirstFit, binpack.BestFit, binpack.SumOfSquares} {
		b.Run(s.String(), func(b *testing.B) {
			p := binpack.New(order)
			for i := 0; i < b.N; i++ {
				ids, err := p.Allocate(24, s)
				if err != nil {
					b.Fatal(err)
				}
				p.Release(ids)
			}
		})
	}
}

func BenchmarkEndToEndSmall(b *testing.B) {
	tr := benchTrace(100, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{
			MeshW: 8, MeshH: 8,
			Alloc: "hilbert/bestfit", Pattern: "alltoall",
			TimeScale: 0.01, Seed: 1,
		}, tr); err != nil {
			b.Fatal(err)
		}
	}
}
