package meshalloc

import "testing"

func TestFacadeQuickstart(t *testing.T) {
	tr := NewSDSCTrace(SDSCConfig{Jobs: 60, MaxSize: 64, Seed: 1})
	res, err := Run(Config{
		MeshW: 8, MeshH: 8,
		Alloc:     "hilbert/bestfit",
		Pattern:   "nbody",
		TimeScale: 0.01,
		Seed:      1,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 60 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.MeanResponse <= 0 {
		t.Fatal("mean response not positive")
	}
}

// TestFacadeEngineStreaming runs the open-system quick start from the
// package documentation through the facade.
func TestFacadeEngineStreaming(t *testing.T) {
	eng, err := NewEngine(Config{
		MeshW: 8, MeshH: 8,
		Alloc: "hilbert/bestfit", Pattern: "nbody",
		Seed:        1,
		KeepRecords: Discard, KeepNodes: Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	eng.Observe(func(r JobRecord) { streamed++ })
	src := LimitSource(NewPoissonSource(500, 64, 1), 200)
	if err := eng.RunSource(src, 0); err != nil {
		t.Fatal(err)
	}
	res := eng.Result()
	if streamed != 200 || res.Jobs != 200 {
		t.Fatalf("streamed %d, Result.Jobs %d, want 200", streamed, res.Jobs)
	}
	if res.Records != nil {
		t.Fatal("Discard run retained records")
	}
	if res.MeanResponse <= 0 || res.MedianResponse <= 0 {
		t.Fatalf("degenerate streaming aggregates: %+v", res)
	}
	// The bursty source drives the same machinery.
	eng2, err := NewEngine(Config{
		MeshW: 8, MeshH: 8, Alloc: "scurve", Pattern: "ring", Seed: 1,
		KeepRecords: Discard, KeepNodes: Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.RunSource(LimitSource(NewBurstySource(200, 3600, 7200, 64, 2), 100), 0); err != nil {
		t.Fatal(err)
	}
	if eng2.Result().Jobs != 100 {
		t.Fatalf("bursty run finished %d jobs", eng2.Result().Jobs)
	}
}

func TestFacadeAllocator(t *testing.T) {
	m := NewMesh(8, 8)
	for _, spec := range Allocators() {
		a, err := NewAllocator(m, spec, 1)
		if err != nil {
			t.Fatalf("NewAllocator(%q): %v", spec, err)
		}
		ids, err := a.Allocate(AllocRequest{Size: 6})
		if err != nil || len(ids) != 6 {
			t.Fatalf("%s: Allocate = %v, %v", spec, ids, err)
		}
	}
}

func TestFacadeListings(t *testing.T) {
	if len(Allocators()) != 9 {
		t.Fatalf("Allocators() = %v", Allocators())
	}
	if len(Curves()) < 4 {
		t.Fatalf("Curves() = %v", Curves())
	}
	if len(Patterns()) < 5 {
		t.Fatalf("Patterns() = %v", Patterns())
	}
	order, err := CurveOrder("hilbert", 4, 4)
	if err != nil || len(order) != 16 {
		t.Fatalf("CurveOrder = %v, %v", order, err)
	}
	if _, err := CurveOrder("nope", 4, 4); err == nil {
		t.Fatal("unknown curve should fail")
	}
}

func TestFacadeMetrics(t *testing.T) {
	m := NewMesh(8, 8)
	d := MeasureDispersal(m, []int{0, 1, 8, 9})
	if !d.Contiguous || d.Components != 1 {
		t.Fatalf("2x2 block dispersal = %+v", d)
	}
	f := MeasureFragmentation(m, []int{0, 1, 8, 9})
	if f.FreeProcs != 60 || f.LargestRect != 48 {
		t.Fatalf("fragmentation = %+v", f)
	}
}

func TestFacadeFigure(t *testing.T) {
	fig, err := ReproduceFigure("6", ExperimentOptions{})
	if err != nil || fig.ID != "fig6" {
		t.Fatalf("ReproduceFigure = %v, %v", fig, err)
	}
}
