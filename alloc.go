package meshalloc

import (
	"meshalloc/internal/alloc"
	"meshalloc/internal/comm"
	"meshalloc/internal/curve"
	"meshalloc/internal/mesh"
)

// Mesh is a 2-D mesh machine description.
type Mesh = mesh.Mesh

// NewMesh returns a width x height mesh.
func NewMesh(width, height int) *Mesh { return mesh.New(width, height) }

// Allocator assigns processor sets to jobs; see the alloc package.
type Allocator = alloc.Allocator

// AllocRequest asks an Allocator for processors.
type AllocRequest = alloc.Request

// NewAllocator builds the allocator named by spec ("mc", "mc1x1",
// "genalg", "random", "<curve>", or "<curve>/<strategy>") over m.
func NewAllocator(m *Mesh, spec string, seed int64) (Allocator, error) {
	return alloc.Spec(m.Grid(), spec, seed)
}

func allocSpecs() []string { return alloc.Specs() }

// Curves returns the available mesh linearizations.
func Curves() []string { return curve.All() }

// Patterns returns the available communication patterns.
func Patterns() []string { return comm.All() }

// CurveOrder returns the node ids of a w x h mesh in the order of the
// named curve.
func CurveOrder(name string, w, h int) ([]int, error) {
	c, err := curve.ByName(name)
	if err != nil {
		return nil, err
	}
	return c.Order(w, h), nil
}
